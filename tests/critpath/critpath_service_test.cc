// Critical-path wiring through the serving layer: the per-query DAG and verdicts land on the
// ticket, the fleet tracker and service profile carry criticality (v4 `crit` lines), the
// governor samples on-path pipelines strictly finer than off-path ones under its overhead
// budget, tier promotion runs on critical-path evidence, and a trace replay reproduces every
// DAG, slack table, and verdict byte for byte.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/critpath/report.h"
#include "src/replay/recorder.h"
#include "src/replay/replayer.h"
#include "src/service/query_service.h"
#include "src/service/service_profile.h"
#include "src/sql/binder.h"
#include "src/tpch/datagen.h"
#include "src/tpch/queries.h"

namespace dfp {
namespace {

ServiceConfig BaseConfig() {
  ServiceConfig config;
  config.parallel.workers = 4;
  config.max_active_sessions = 2;
  config.session_hashtables_bytes = 32ull << 20;
  config.session_output_bytes = 16ull << 20;
  config.session_state_bytes = 512ull * 1024;
  config.profiling.period = 311;
  return config;
}

std::unique_ptr<Database> MakeDb(const ServiceConfig& config) {
  DatabaseConfig db_config;
  db_config.extra_bytes = ServiceArenaBytes(config);
  auto db = std::make_unique<Database>(db_config);
  TpchOptions options;
  options.scale = 0.01;
  GenerateTpch(*db, options);
  return db;
}

TicketId RunOne(QueryService& service, Database& db, const std::string& name) {
  const TicketId id = service.Submit(BuildQueryPlan(db, FindQuery(name)), name);
  service.Drain();
  return id;
}

TEST(CritPathService, TicketTrackerAndProfileCarryTheAnalysis) {
  const ServiceConfig config = BaseConfig();
  auto db = MakeDb(config);
  QueryService service(*db, config);
  const TicketId first = RunOne(service, *db, "q6");
  const TicketId second = RunOne(service, *db, "q6");

  // The completed ticket carries its DAG and verdicts.
  const QueryTicket& ticket = service.ticket(second);
  ASSERT_EQ(ticket.status, TicketStatus::kDone);
  ASSERT_FALSE(ticket.dag.nodes.empty());
  ASSERT_FALSE(ticket.verdicts.empty());
  EXPECT_GT(ticket.dag.critical_work_cycles, 0u);
  EXPECT_EQ(ticket.dag.nodes.size(), ticket.task_boundaries.size());

  // Both executions folded into the tracker under one structural fingerprint.
  const uint64_t fp = service.ticket(first).fingerprint.structure;
  const PlanCriticality* plan = service.criticality().Find(fp);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->executions, 2u);
  EXPECT_GT(plan->critical_work_cycles, 0u);
  EXPECT_GT(plan->top_share_pct, 0u);
  EXPECT_EQ(service.criticality().CriticalWorkCycles(fp), plan->critical_work_cycles);
  const std::string report = RenderCriticalPath(service.criticality());
  EXPECT_NE(report.find("q6"), std::string::npos);
  EXPECT_NE(report.find(BottleneckName(plan->dominant_label())), std::string::npos);

  // The fleet profile carries the rollup and serializes as a v4 stream with a `crit` line.
  const FleetPlanProfile& fleet_plan = service.fleet_profile().plans().at(fp);
  EXPECT_EQ(fleet_plan.critical_cycles, plan->critical_work_cycles);
  EXPECT_FALSE(fleet_plan.bottleneck.empty());
  std::ostringstream out;
  WriteServiceProfile(service.fleet_profile(), service.windows(), out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# dfp service profile v4"), std::string::npos);
  EXPECT_NE(text.find("\ncrit "), std::string::npos);

  // Round trip: the criticality fields reload, and the reloaded state re-serializes
  // byte-identically.
  std::istringstream in(text);
  WindowedProfile windows;
  ServiceProfile reread = ReadServiceProfile(in, &windows);
  EXPECT_EQ(reread.plans().at(fp).critical_cycles, fleet_plan.critical_cycles);
  EXPECT_EQ(reread.plans().at(fp).top_share_pct, fleet_plan.top_share_pct);
  EXPECT_EQ(reread.plans().at(fp).bottleneck, fleet_plan.bottleneck);
  std::ostringstream rewritten;
  WriteServiceProfile(reread, windows, rewritten);
  EXPECT_EQ(rewritten.str(), text);
}

TEST(CritPathService, GovernorSamplesOnPathPipelinesStrictlyFiner) {
  // The acceptance bar of the governor wiring: under the 2% overhead budget, the pipeline
  // that owns the critical path is armed with a strictly shorter period than the base and
  // than every off-path pipeline; below-mean pipelines relax so the redistribution stays
  // budget-neutral.
  ServiceConfig config = BaseConfig();
  config.continuous.governor.enabled = true;  // Default budget: 2%.
  auto db = MakeDb(config);
  QueryService service(*db, config);
  const TicketId id = RunOne(service, *db, "q3");  // Multi-pipeline: builds + probe.
  RunOne(service, *db, "q3");  // Second execution runs with criticality-weighted periods.

  const uint64_t fp = service.ticket(id).fingerprint.structure;
  const GovernorPlanState* state = service.governor().Find(fp);
  ASSERT_NE(state, nullptr);
  ASSERT_GT(state->top_criticality_pct, 0u);
  ASSERT_FALSE(state->pipeline_criticality_pct.empty());

  const uint64_t base = service.governor().PeriodFor(fp, config.profiling.period);
  const std::vector<uint64_t> periods = service.governor().PipelinePeriods(
      fp, base, state->pipeline_criticality_pct.size());
  ASSERT_EQ(periods.size(), state->pipeline_criticality_pct.size());
  uint64_t mean_share = 0;
  for (const uint64_t share : state->pipeline_criticality_pct) {
    mean_share += share;
  }
  mean_share /= state->pipeline_criticality_pct.size();
  for (size_t p = 0; p < periods.size(); ++p) {
    const uint64_t share = state->pipeline_criticality_pct[p];
    if (share > mean_share) {
      EXPECT_LT(periods[p], base) << "pipeline " << p << " owns the critical path";
    } else if (share < mean_share) {
      EXPECT_GT(periods[p], base) << "pipeline " << p << " is off the critical path";
    } else {
      EXPECT_EQ(periods[p], base) << "pipeline " << p << " sits at the mean";
    }
  }
  // The top-share pipeline gets the finest sampling of all, strictly finer than the base and
  // than every off-path (zero-share) pipeline.
  uint32_t top = 0;
  for (size_t p = 1; p < periods.size(); ++p) {
    if (state->pipeline_criticality_pct[p] >
        state->pipeline_criticality_pct[top]) {
      top = static_cast<uint32_t>(p);
    }
  }
  EXPECT_LT(periods[top], base);
  for (size_t p = 0; p < periods.size(); ++p) {
    EXPECT_LE(periods[top], periods[p]);
    if (state->pipeline_criticality_pct[p] == 0) {
      EXPECT_LT(periods[top], periods[p]);
    }
  }
}

TEST(CritPathService, GovernorOffKeepsUniformSampling) {
  const ServiceConfig config = BaseConfig();  // Governor disabled.
  auto db = MakeDb(config);
  QueryService service(*db, config);
  const TicketId id = RunOne(service, *db, "q6");
  const uint64_t fp = service.ticket(id).fingerprint.structure;
  // Criticality is still tracked (reports work), but sampling stays uniform.
  EXPECT_NE(service.criticality().Find(fp), nullptr);
  EXPECT_TRUE(service.governor().PipelinePeriods(fp, config.profiling.period, 4).empty());
}

TEST(CritPathService, ReplayReproducesDagsAndVerdictsByteForByte) {
  ServiceConfig config = BaseConfig();
  config.tiering.enabled = true;

  auto record_db = MakeDb(config);
  WorkloadTrace trace;
  std::vector<std::string> recorded_dags;
  {
    QueryService service(*record_db, config);
    TraceRecorder recorder;
    service.AttachRecorder(recorder);
    service.Submit(BuildQueryPlan(*record_db, FindQuery("q1")), "q1");
    service.Submit(BuildQueryPlan(*record_db, FindQuery("q6")), "q6");
    service.Drain();
    service.Submit(BuildQueryPlan(*record_db, FindQuery("q6")), "q6");
    service.Submit(BuildQueryPlan(*record_db, FindQuery("q3")), "q3");
    service.Drain();
    recorder.Finish(service);
    trace = recorder.trace();
    for (TicketId id = 1; id <= service.ticket_count(); ++id) {
      const QueryTicket& ticket = service.ticket(id);
      if (ticket.status == TicketStatus::kDone) {
        recorded_dags.push_back(SerializeAnalysis(ticket.dag, ticket.verdicts));
      }
    }
  }
  ASSERT_EQ(recorded_dags.size(), 4u);

  // Identity replay on a fresh, identically generated database: every DAG, slack value, and
  // verdict must come back byte for byte.
  auto replay_db = MakeDb(config);
  ReplayOptions options;
  options.keep_dags = true;
  const ReplayRun run = ReplayTrace(*replay_db, trace, options);
  ASSERT_EQ(run.dag_texts.size(), recorded_dags.size());
  for (size_t i = 0; i < recorded_dags.size(); ++i) {
    EXPECT_EQ(run.dag_texts[i], recorded_dags[i]) << "query " << i;
    EXPECT_NE(run.dag_texts[i].find("verdict "), std::string::npos);
  }
}

}  // namespace
}  // namespace dfp
