// Critical-path subsystem: hand-computed slack/critical-path over synthetic task DAGs,
// classifier guards on degenerate inputs, bit-level determinism of the serialized analysis,
// v5 sample-stream round trips that rebuild the identical DAG, and the roofline acceptance
// bar — on the skewed q6 workload the classifier must label the scan pipeline
// remote-DRAM-bound under locality-blind central dispatch and compute-bound once NUMA-aware
// stealing keeps the traffic local.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "src/critpath/classify.h"
#include "src/critpath/dag.h"
#include "src/critpath/report.h"
#include "src/critpath/slack.h"
#include "src/engine/query_engine.h"
#include "src/plan/builder.h"
#include "src/profiling/serialize.h"
#include "src/tpch/datagen.h"
#include "src/tpch/queries.h"

namespace dfp {
namespace {

// Database with date-correlated orders: q6's qualifying rows cluster into one contiguous band
// of lineitem, so locality-blind scheduling leaves most accesses on the wrong NUMA node.
Database* SkewedDb() {
  static Database* db = [] {
    auto* instance = new Database();
    TpchOptions options;
    options.scale = 0.01;
    options.correlated_order_dates = true;
    GenerateTpch(*instance, options);
    return instance;
  }();
  return db;
}

CodegenOptions ParallelOptions() {
  CodegenOptions options;
  options.parallel = true;
  return options;
}

TaskBoundary MakeTask(uint32_t step, uint32_t worker, uint64_t start, uint64_t end,
                      uint32_t pipeline = kNoPipeline) {
  TaskBoundary task;
  task.step = step;
  task.worker_id = worker;
  task.start_tsc = start;
  task.end_tsc = end;
  task.kind = pipeline == kNoPipeline ? TaskKind::kHostStep : TaskKind::kMorsel;
  task.pipeline = pipeline;
  return task;
}

TEST(TaskDag, EmptyInputYieldsEmptyDag) {
  TaskDag dag = BuildTaskDag({});
  EXPECT_TRUE(dag.nodes.empty());
  EXPECT_TRUE(dag.critical_path.empty());
  EXPECT_TRUE(dag.pipelines.empty());
  EXPECT_EQ(dag.wall_cycles, 0u);
  EXPECT_EQ(dag.critical_work_cycles, 0u);
  // Degenerate DAGs must render and serialize without dividing by zero.
  EXPECT_FALSE(SerializeDag(dag).empty());
  EXPECT_FALSE(RenderSlackTable(dag).empty());
  EXPECT_TRUE(ClassifyPipelines(dag).empty());
}

TEST(TaskDag, HandComputedSlackAndCriticalPath) {
  // Step 0: worker 0 runs [0,100), worker 1 runs [0,60). Barrier. Step 1: worker 0 runs
  // [100,150), worker 1 runs [100,180). The critical path is the step-0 task that released the
  // barrier last (A, end 100) followed by the longest step-1 task (D, end 180).
  std::vector<TaskBoundary> tasks;
  tasks.push_back(MakeTask(0, 0, 0, 100, 0));    // A
  tasks.push_back(MakeTask(0, 1, 0, 60, 0));     // B
  tasks.push_back(MakeTask(1, 0, 100, 150, 1));  // C
  tasks.push_back(MakeTask(1, 1, 100, 180, 1));  // D
  TaskDag dag = BuildTaskDag(tasks);
  ASSERT_EQ(dag.nodes.size(), 4u);
  EXPECT_EQ(dag.start_cycles, 0u);
  EXPECT_EQ(dag.wall_cycles, 180u);

  // Canonical order: (step, start, worker) = A, B, C, D.
  EXPECT_EQ(dag.nodes[0].slack, 0u);   // A gates the barrier.
  EXPECT_EQ(dag.nodes[1].slack, 40u);  // B could have ended at 100.
  EXPECT_EQ(dag.nodes[2].slack, 30u);  // C could have ended at 180.
  EXPECT_EQ(dag.nodes[3].slack, 0u);   // D is the sink.
  ASSERT_EQ(dag.critical_path.size(), 2u);
  EXPECT_EQ(dag.critical_path[0], 0u);
  EXPECT_EQ(dag.critical_path[1], 3u);
  EXPECT_TRUE(dag.nodes[0].critical);
  EXPECT_FALSE(dag.nodes[1].critical);
  EXPECT_FALSE(dag.nodes[2].critical);
  EXPECT_TRUE(dag.nodes[3].critical);
  EXPECT_EQ(dag.critical_work_cycles, 180u);  // 100 + 80.
  EXPECT_EQ(dag.critical_idle_cycles, 0u);    // Back-to-back across the barrier.

  // Pipeline 0 contributed 100 of the 180 critical cycles, pipeline 1 the other 80.
  ASSERT_EQ(dag.pipelines.size(), 2u);
  EXPECT_EQ(dag.pipelines[0].pipeline, 0u);
  EXPECT_EQ(dag.pipelines[0].critical_cycles, 100u);
  EXPECT_EQ(dag.pipelines[0].share_pct, 100u * 100 / 180);
  EXPECT_EQ(dag.pipelines[1].pipeline, 1u);
  EXPECT_EQ(dag.pipelines[1].critical_cycles, 80u);
  EXPECT_EQ(dag.pipelines[1].share_pct, 100u * 80 / 180);
}

TEST(TaskDag, SingleWorkerChainIsAllCritical) {
  // One worker, three steps: the whole run is one serial chain; every task is critical and
  // carries zero slack (the degenerate DAG the classifier guards must handle label-stably).
  std::vector<TaskBoundary> tasks;
  tasks.push_back(MakeTask(0, 0, 0, 50, 0));
  tasks.push_back(MakeTask(0, 0, 50, 90, 0));
  tasks.push_back(MakeTask(1, 0, 90, 200, 1));
  tasks.push_back(MakeTask(2, 0, 200, 260));
  TaskDag dag = BuildTaskDag(tasks);
  ASSERT_EQ(dag.nodes.size(), 4u);
  EXPECT_EQ(dag.critical_path.size(), 4u);
  for (const TaskNode& node : dag.nodes) {
    EXPECT_TRUE(node.critical);
    EXPECT_EQ(node.slack, 0u);
  }
  EXPECT_EQ(dag.critical_work_cycles, 260u);
  EXPECT_EQ(dag.critical_idle_cycles, 0u);
}

TEST(TaskDag, EndgameSplitZeroDurationNodesAreCanonical) {
  // Endgame splitting can produce same-start (even zero-duration) morsels of one pipeline on
  // one worker; the canonical order disambiguates by morsel range, so any collection order
  // builds the identical DAG.
  std::vector<TaskBoundary> tasks;
  for (uint64_t begin : {192u, 128u, 64u, 0u}) {
    TaskBoundary task = MakeTask(0, 0, 500, 500, 0);
    task.morsel_begin = begin;
    task.morsel_end = begin + 64;
    tasks.push_back(task);
  }
  TaskBoundary real = MakeTask(0, 1, 0, 700, 0);
  real.morsel_begin = 256;
  real.morsel_end = 1024;
  tasks.push_back(real);

  TaskDag forward = BuildTaskDag(tasks);
  std::reverse(tasks.begin(), tasks.end());
  TaskDag reversed = BuildTaskDag(tasks);
  EXPECT_EQ(SerializeDag(forward), SerializeDag(reversed));
  ASSERT_EQ(forward.nodes.size(), 5u);
  // Zero-duration splits sort by morsel_begin and never divide by zero anywhere downstream.
  EXPECT_EQ(forward.nodes[1].task.morsel_begin, 0u);
  EXPECT_EQ(forward.nodes[2].task.morsel_begin, 64u);
  const std::vector<PipelineVerdict> verdicts = ClassifyPipelines(forward);
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_NE(verdicts[0].label, Bottleneck::kInsufficientData);
}

TEST(Classifier, DegenerateInputsGetInsufficientData) {
  PipelineCriticality empty;
  empty.pipeline = 7;
  PipelineVerdict verdict = ClassifyPipeline(empty);
  EXPECT_EQ(verdict.label, Bottleneck::kInsufficientData);
  EXPECT_EQ(verdict.mem_stall_pct, 0u);
  EXPECT_EQ(verdict.remote_share_pct, 0u);
  EXPECT_EQ(verdict.stolen_pct, 0u);

  // Tasks but zero cycles (all endgame splits): still insufficient, still no division.
  PipelineCriticality zero_cycles;
  zero_cycles.tasks = 3;
  EXPECT_EQ(ClassifyPipeline(zero_cycles).label, Bottleneck::kInsufficientData);
}

TEST(Classifier, RulesFireInDocumentedOrder) {
  ClassifierThresholds t;

  // Steal-starved wins even when the counters also look memory-bound.
  PipelineCriticality starved;
  starved.tasks = 4;
  starved.cycles = 1000;
  starved.stolen_cycles = 600;
  starved.l1_misses = 100;
  starved.l2_misses = 100;
  starved.l3_misses = 100;
  starved.remote_dram = 90;
  EXPECT_EQ(ClassifyPipeline(starved, t).label, Bottleneck::kStealStarved);

  // Stall-bound with the remote-NUMA penalty dominating the estimate: remote-DRAM-bound.
  PipelineCriticality remote;
  remote.tasks = 4;
  remote.cycles = 100000;
  remote.l1_misses = 200;
  remote.l2_misses = 200;
  remote.l3_misses = 200;
  remote.remote_dram = 190;
  EXPECT_EQ(ClassifyPipeline(remote, t).label, Bottleneck::kRemoteDramBound);

  // Stalls from cache-hierarchy hit latency instead (misses stop at L2/L3, traffic stays
  // local): cache-bound.
  PipelineCriticality cache;
  cache.tasks = 4;
  cache.cycles = 100000;
  cache.l1_misses = 2000;
  cache.l2_misses = 500;
  EXPECT_EQ(ClassifyPipeline(cache, t).label, Bottleneck::kCacheBound);

  // The same hierarchy traffic but local DRAM only (a streaming scan at its roofline): the
  // compulsory-DRAM floor is not a reclaimable stall, so the verdict is compute-bound.
  PipelineCriticality streaming;
  streaming.tasks = 4;
  streaming.cycles = 100000;
  streaming.l1_misses = 300;
  streaming.l2_misses = 300;
  streaming.l3_misses = 300;
  EXPECT_EQ(ClassifyPipeline(streaming, t).label, Bottleneck::kComputeBound);

  // Barely any misses: compute-bound.
  PipelineCriticality compute;
  compute.tasks = 4;
  compute.cycles = 100000;
  compute.instructions = 90000;
  compute.l1_misses = 10;
  EXPECT_EQ(ClassifyPipeline(compute, t).label, Bottleneck::kComputeBound);
}

TEST(Classifier, NamesRoundTrip) {
  for (int i = 0; i < kBottleneckLabels; ++i) {
    const Bottleneck label = static_cast<Bottleneck>(i);
    EXPECT_EQ(BottleneckFromName(BottleneckName(label)), label);
  }
  EXPECT_THROW(BottleneckFromName("definitely-not-a-label"), Error);
}

TEST(CritPath, RealRunAnalysisIsByteDeterministic) {
  Database& db = *SkewedDb();
  QueryEngine engine(&db);
  const QuerySpec& spec = FindQuery("q6");
  CompiledQuery query =
      engine.Compile(BuildQueryPlan(db, spec), nullptr, "q6_critdet", ParallelOptions());
  ParallelConfig config;
  config.workers = 4;
  config.scheduler = SchedulerPolicy::kWorkStealing;
  auto analyze = [&] {
    engine.ExecuteParallel(query, config);
    TaskDag dag = BuildTaskDag(engine.last_task_boundaries());
    return SerializeAnalysis(dag, ClassifyPipelines(dag)) + RenderSlackTable(dag) +
           RenderQueryCriticalPath(dag, ClassifyPipelines(dag));
  };
  const std::string first = analyze();
  const std::string second = analyze();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);  // Byte-identical DAG, slack table, verdicts.

  // DAG identity under permutation: BuildTaskDag skips its re-sort when the boundaries
  // already arrive in canonical (step, start, worker) order, so the fast path must be
  // behavior-neutral — a shuffled copy of the same boundaries rebuilds the identical DAG.
  std::vector<TaskBoundary> boundaries = engine.last_task_boundaries();
  ASSERT_FALSE(boundaries.empty());
  const TaskDag canonical = BuildTaskDag(boundaries);
  std::mt19937 rng(20260808u);
  std::shuffle(boundaries.begin(), boundaries.end(), rng);
  const TaskDag shuffled = BuildTaskDag(boundaries);
  EXPECT_EQ(SerializeAnalysis(canonical, ClassifyPipelines(canonical)),
            SerializeAnalysis(shuffled, ClassifyPipelines(shuffled)));
}

TEST(CritPath, RenderOrdersEqualSharePipelinesByIdAscending) {
  // One serial chain: pipeline 3 owns half the critical path; pipelines 0/1/2 land on the
  // same rounded share. The report orders share descending with ascending pipeline id on
  // ties — equal-share pipelines are common once shares round to whole percents, and a
  // flapping order would show up as spurious diffs in double-run report comparisons.
  std::vector<TaskBoundary> tasks;
  tasks.push_back(MakeTask(0, 0, 0, 300, 3));
  tasks.push_back(MakeTask(1, 0, 300, 400, 0));
  tasks.push_back(MakeTask(2, 0, 400, 500, 1));
  tasks.push_back(MakeTask(3, 0, 500, 600, 2));
  const TaskDag dag = BuildTaskDag(tasks);
  CriticalityTracker tracker;
  tracker.Observe(1, "tie", dag, ClassifyPipelines(dag));
  const std::string report = RenderCriticalPath(tracker);
  const size_t p3 = report.find("pipeline  3");
  const size_t p0 = report.find("pipeline  0");
  const size_t p1 = report.find("pipeline  1");
  const size_t p2 = report.find("pipeline  2");
  ASSERT_NE(p3, std::string::npos);
  ASSERT_NE(p0, std::string::npos);
  ASSERT_NE(p1, std::string::npos);
  ASSERT_NE(p2, std::string::npos);
  EXPECT_LT(p3, p0);  // Highest share renders first.
  EXPECT_LT(p0, p1);  // Equal shares ascend by pipeline id.
  EXPECT_LT(p1, p2);
}

TEST(SlackStore, FoldsDagsIntoBucketEwmasAndExpectedCriticalPath) {
  // The hand-computed DAG from HandComputedSlackAndCriticalPath: step 0 tasks A [0,100) and
  // B [0,60) with slacks 0 and 40, rows encoded through morsel ranges.
  std::vector<TaskBoundary> tasks;
  tasks.push_back(MakeTask(0, 0, 0, 100, 0));
  tasks.push_back(MakeTask(0, 1, 0, 60, 0));
  tasks.push_back(MakeTask(1, 0, 100, 180, 1));
  tasks[0].morsel_begin = 0;
  tasks[0].morsel_end = 500;
  tasks[1].morsel_begin = 500;
  tasks[1].morsel_end = 1000;
  const TaskDag dag = BuildTaskDag(tasks);

  SlackStore store;
  EXPECT_EQ(store.ExpectedCriticalPathCycles(7), 0u);  // Unseen: admission must admit.
  store.Observe(7, "hand", dag);
  const PlanSlack* plan = store.Find(7);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->executions, 1u);
  // First fold seeds the EWMA with the raw observation.
  EXPECT_EQ(plan->critical_path_cycles, dag.critical_work_cycles);
  EXPECT_EQ(store.ExpectedCriticalPathCycles(7), dag.critical_work_cycles);
  const StepSlack* step = plan->FindStep(0, 0);
  ASSERT_NE(step, nullptr);
  EXPECT_EQ(step->rows, 1000u);
  // A's begin lands in bucket 0 (per-run minimum slack 0), B's begin in bucket 8 (slack 40);
  // buckets no task began in stay unobserved.
  EXPECT_EQ(step->SlackAt(0), 0u);
  EXPECT_EQ(step->SlackAt(500), 40u);
  EXPECT_EQ(step->SlackAt(999), UINT64_MAX);

  // Second fold: EWMA (3*old + observed) / 4 over the same DAG is a fixed point.
  store.Observe(7, "hand", dag);
  EXPECT_EQ(store.Find(7)->executions, 2u);
  EXPECT_EQ(store.ExpectedCriticalPathCycles(7), dag.critical_work_cycles);
}

TEST(SlackStore, StalePlansAgeOutAfterMaxAgeGenerations) {
  std::vector<TaskBoundary> tasks;
  tasks.push_back(MakeTask(0, 0, 0, 100, 0));
  const TaskDag dag = BuildTaskDag(tasks);
  SlackStore store(2);  // Age out after two generations without a fold.
  store.Observe(1, "stale", dag);
  store.Observe(2, "hot", dag);
  store.Observe(2, "hot", dag);
  EXPECT_NE(store.Find(1), nullptr);  // Exactly max_age generations stale: still alive.
  store.Observe(2, "hot", dag);
  EXPECT_EQ(store.Find(1), nullptr);  // One more: aged out.
  EXPECT_NE(store.Find(2), nullptr);
  EXPECT_EQ(store.ExpectedCriticalPathCycles(1), 0u);
}

TEST(CritPath, V5StreamRebuildsTheIdenticalDag) {
  // The task-boundary block in a v5 stream is the DAG: reading the stream back and rebuilding
  // must reproduce the live analysis byte for byte — profiles stay analyzable offline.
  Database& db = *SkewedDb();
  QueryEngine engine(&db);
  const QuerySpec& spec = FindQuery("q6");
  ProfilingConfig pconfig;
  pconfig.period = 311;
  ProfilingSession session(pconfig);
  CompiledQuery query =
      engine.Compile(BuildQueryPlan(db, spec), &session, "q6_v5", ParallelOptions());
  ParallelConfig config;
  config.workers = 4;
  config.scheduler = SchedulerPolicy::kWorkStealing;
  engine.ExecuteParallel(query, config);
  const std::vector<TaskBoundary> boundaries = engine.last_task_boundaries();
  ASSERT_FALSE(boundaries.empty());

  std::ostringstream out;
  WriteSamples(session.samples(), {}, boundaries, out);
  EXPECT_NE(out.str().find("# dfp samples v5"), std::string::npos);

  std::istringstream in(out.str());
  std::vector<SampleStreamEvent> events;
  std::vector<TaskBoundary> reread;
  std::vector<Sample> samples = ReadSamples(in, &events, &reread);
  EXPECT_EQ(samples.size(), session.samples().size());
  EXPECT_TRUE(events.empty());
  ASSERT_EQ(reread.size(), boundaries.size());

  const TaskDag live = BuildTaskDag(boundaries);
  const TaskDag from_stream = BuildTaskDag(reread);
  EXPECT_EQ(SerializeAnalysis(live, ClassifyPipelines(live)),
            SerializeAnalysis(from_stream, ClassifyPipelines(from_stream)));
}

// The acceptance bar of the classifier (ISSUE: roofline verdicts must track scheduling): the
// same skewed q6 scan is remote-DRAM-bound under locality-blind central dispatch and
// compute-bound once NUMA-aware stealing keeps the band's traffic on its home nodes.
TEST(CritPath, SkewedQ6VerdictTracksScheduler) {
  Database& db = *SkewedDb();
  QueryEngine engine(&db);
  const QuerySpec& spec = FindQuery("q6");
  CompiledQuery query =
      engine.Compile(BuildQueryPlan(db, spec), nullptr, "q6_roofline", ParallelOptions());

  auto top_verdict = [&](SchedulerPolicy policy) {
    ParallelConfig config;
    config.workers = 4;
    config.scheduler = policy;
    engine.ExecuteParallel(query, config);
    TaskDag dag = BuildTaskDag(engine.last_task_boundaries());
    const std::vector<PipelineVerdict> verdicts = ClassifyPipelines(dag);
    // The scan is the pipeline the scheduler fans out: the one with the most morsel tasks.
    // (Single-task pipelines run identically under both policies, so they carry no signal.)
    uint32_t scan = dag.pipelines.empty() ? 0 : dag.pipelines[0].pipeline;
    uint64_t most_tasks = 0;
    for (const PipelineCriticality& p : dag.pipelines) {
      if (p.tasks > most_tasks) {
        most_tasks = p.tasks;
        scan = p.pipeline;
      }
    }
    for (const PipelineVerdict& v : verdicts) {
      if (v.pipeline == scan) {
        return v;
      }
    }
    return PipelineVerdict();
  };

  const PipelineVerdict central = top_verdict(SchedulerPolicy::kCentral);
  EXPECT_EQ(central.label, Bottleneck::kRemoteDramBound)
      << "central: cycles " << central.cycles << " mem_stall " << central.mem_stall_cycles
      << " (" << central.mem_stall_pct << "%) remote " << central.remote_stall_cycles << " ("
      << central.remote_share_pct << "%) stolen " << central.stolen_pct << "%";

  const PipelineVerdict stealing = top_verdict(SchedulerPolicy::kWorkStealing);
  EXPECT_EQ(stealing.label, Bottleneck::kComputeBound)
      << "stealing: cycles " << stealing.cycles << " mem_stall " << stealing.mem_stall_cycles
      << " (" << stealing.mem_stall_pct << "%) remote " << stealing.remote_stall_cycles << " ("
      << stealing.remote_share_pct << "%) stolen " << stealing.stolen_pct << "%";
}

}  // namespace
}  // namespace dfp
