#include <gtest/gtest.h>

#include "src/engine/query_engine.h"
#include "src/interp/interpreter.h"
#include "src/tpch/datagen.h"
#include "src/tpch/queries.h"
#include "src/util/date.h"

namespace dfp {
namespace {

TEST(TpchDatagen, DeterministicAndScaled) {
  Database db1;
  TpchOptions options;
  options.scale = 0.002;
  TpchRowCounts counts1 = GenerateTpch(db1, options);
  EXPECT_EQ(counts1.orders, 3000u);
  EXPECT_GT(counts1.lineitem, counts1.orders);
  EXPECT_EQ(db1.table("nation").row_count(), 25u);
  EXPECT_EQ(db1.table("partsupp").row_count(), db1.table("part").row_count() * 4);

  Database db2;
  TpchRowCounts counts2 = GenerateTpch(db2, options);
  EXPECT_EQ(counts1.lineitem, counts2.lineitem);
  // Same bytes in the same cells.
  const Table& l1 = db1.table("lineitem");
  const Table& l2 = db2.table("lineitem");
  for (uint64_t r = 0; r < 50; ++r) {
    EXPECT_EQ(l1.Get(db1.mem(), 0, r), l2.Get(db2.mem(), 0, r));
    EXPECT_EQ(l1.Get(db1.mem(), 5, r), l2.Get(db2.mem(), 5, r));
  }
}

TEST(TpchDatagen, ForeignKeysResolve) {
  Database db;
  TpchOptions options;
  options.scale = 0.002;
  TpchRowCounts counts = GenerateTpch(db, options);
  const Table& lineitem = db.table("lineitem");
  for (uint64_t r = 0; r < lineitem.row_count(); r += 97) {
    int64_t orderkey = lineitem.Get(db.mem(), 0, r);
    EXPECT_GE(orderkey, 1);
    EXPECT_LE(orderkey, static_cast<int64_t>(counts.orders));
    int64_t partkey = lineitem.Get(db.mem(), 1, r);
    EXPECT_GE(partkey, 1);
    EXPECT_LE(partkey, static_cast<int64_t>(counts.part));
  }
}

TEST(TpchDatagen, LineitemClusteredOnOrderkey) {
  Database db;
  TpchOptions options;
  options.scale = 0.002;
  GenerateTpch(db, options);
  const Table& lineitem = db.table("lineitem");
  for (uint64_t r = 1; r < lineitem.row_count(); ++r) {
    EXPECT_LE(lineitem.Get(db.mem(), 0, r - 1), lineitem.Get(db.mem(), 0, r));
  }
}

TEST(TpchDatagen, CorrelatedDatesGrowWithOrderkey) {
  Database db;
  TpchOptions options;
  options.scale = 0.002;
  options.correlated_order_dates = true;
  GenerateTpch(db, options);
  const Table& orders = db.table("orders");
  for (uint64_t r = 1; r < orders.row_count(); ++r) {
    EXPECT_LE(orders.Get(db.mem(), 4, r - 1), orders.Get(db.mem(), 4, r));
  }
}

// The whole query suite: compiled execution must agree with the Volcano oracle.
class TpchQueryTest : public ::testing::TestWithParam<std::string> {
 protected:
  static Database* db() {
    static Database* instance = [] {
      auto* database = new Database();
      TpchOptions options;
      options.scale = 0.002;
      GenerateTpch(*database, options);
      return database;
    }();
    return instance;
  }
};

TEST_P(TpchQueryTest, CompiledMatchesOracle) {
  const QuerySpec& spec = FindQuery(GetParam());
  QueryEngine engine(db());
  CompiledQuery query = engine.Compile(BuildQueryPlan(*db(), spec), nullptr, spec.name);
  Result compiled = engine.Execute(query);
  Result reference = InterpretPlan(*db(), *query.plan);
  std::string diff;
  EXPECT_TRUE(Result::Equivalent(compiled, reference, spec.ordered_result, &diff))
      << spec.name << ": " << diff;
  // Smoke: the suite's queries are non-trivial on this dataset.
  if (spec.name != "q19") {  // Very selective disjunction may be empty at tiny scale.
    EXPECT_GT(compiled.row_count(), 0u) << spec.name;
  }
}

std::vector<std::string> AllQueryNames() {
  std::vector<std::string> names;
  for (const QuerySpec& spec : TpchQuerySuite()) {
    names.push_back(spec.name);
  }
  return names;
}

INSTANTIATE_TEST_SUITE_P(Suite, TpchQueryTest, ::testing::ValuesIn(AllQueryNames()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

TEST(TpchFig10, BothPlansAgreeAndAlternativeIsFaster) {
  Database db;
  TpchOptions options;
  options.scale = 0.004;
  options.correlated_order_dates = true;
  GenerateTpch(db, options);
  QueryEngine engine(&db);
  const int32_t cutoff = ParseDate("1995-06-01");

  CompiledQuery optimizer_plan =
      engine.Compile(BuildFig10OptimizerPlan(db, cutoff), nullptr, "fig10_opt");
  Result a = engine.Execute(optimizer_plan);
  uint64_t optimizer_cycles = engine.last_cycles();

  CompiledQuery alternative_plan =
      engine.Compile(BuildFig10AlternativePlan(db, cutoff), nullptr, "fig10_alt");
  Result b = engine.Execute(alternative_plan);
  uint64_t alternative_cycles = engine.last_cycles();

  std::string diff;
  EXPECT_TRUE(Result::Equivalent(a, b, /*ordered=*/false, &diff)) << diff;
  // The alternative plan filters the stream before the expensive partsupp probe.
  EXPECT_LT(alternative_cycles, optimizer_cycles);
}

}  // namespace
}  // namespace dfp
