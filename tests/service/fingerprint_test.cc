// Plan fingerprints: stability, literal parameterization, shape sensitivity, and catalog
// versioning.
#include <gtest/gtest.h>

#include "src/service/fingerprint.h"
#include "src/sql/binder.h"
#include "src/tpch/datagen.h"

namespace dfp {
namespace {

Database* TpchDb() {
  static Database* db = [] {
    auto* instance = new Database();
    TpchOptions options;
    options.scale = 0.01;
    GenerateTpch(*instance, options);
    return instance;
  }();
  return db;
}

PlanFingerprint FingerprintSql(const std::string& sql, uint64_t catalog_version = 0) {
  Database& db = *TpchDb();
  PhysicalOpPtr plan = PlanSql(db, sql);
  return FingerprintPlan(*plan, catalog_version);
}

TEST(FingerprintTest, IdenticalQueriesShareBothHalves) {
  const char* sql = "select sum(l_extendedprice) from lineitem where l_quantity < 24";
  PlanFingerprint a = FingerprintSql(sql);
  PlanFingerprint b = FingerprintSql(sql);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.structure, 0u);
}

TEST(FingerprintTest, LiteralChangeKeepsStructure) {
  // The prepared-statement family: same shape, different constant.
  PlanFingerprint a =
      FingerprintSql("select sum(l_extendedprice) from lineitem where l_quantity < 24");
  PlanFingerprint b =
      FingerprintSql("select sum(l_extendedprice) from lineitem where l_quantity < 10");
  EXPECT_EQ(a.structure, b.structure);
  EXPECT_NE(a.literals, b.literals);
  EXPECT_NE(a, b);
}

TEST(FingerprintTest, ShapeChangeChangesStructure) {
  PlanFingerprint base =
      FingerprintSql("select sum(l_extendedprice) from lineitem where l_quantity < 24");
  // Different predicate column: different slot in the filter expression.
  PlanFingerprint column =
      FingerprintSql("select sum(l_extendedprice) from lineitem where l_linenumber < 24");
  // Different aggregate input.
  PlanFingerprint aggregate =
      FingerprintSql("select sum(l_quantity) from lineitem where l_quantity < 24");
  // Different comparison operator.
  PlanFingerprint comparison =
      FingerprintSql("select sum(l_extendedprice) from lineitem where l_quantity > 24");
  EXPECT_NE(base.structure, column.structure);
  EXPECT_NE(base.structure, aggregate.structure);
  EXPECT_NE(base.structure, comparison.structure);
}

TEST(FingerprintTest, JoinPlansFingerprintDeterministically) {
  const char* sql =
      "select o_orderpriority, count(*) from orders, lineitem "
      "where l_orderkey = o_orderkey and l_quantity < 30 group by o_orderpriority";
  PlanFingerprint a = FingerprintSql(sql);
  PlanFingerprint b = FingerprintSql(sql);
  EXPECT_EQ(a, b);
}

TEST(FingerprintTest, CatalogVersionRetiresFingerprints) {
  const char* sql = "select sum(l_extendedprice) from lineitem where l_quantity < 24";
  PlanFingerprint v0 = FingerprintSql(sql, 0);
  PlanFingerprint v1 = FingerprintSql(sql, 1);
  EXPECT_NE(v0.structure, v1.structure);
  // Literals do not depend on the catalog version.
  EXPECT_EQ(v0.literals, v1.literals);
}

TEST(FingerprintTest, KeyRendersStructureHalf) {
  PlanFingerprint fingerprint;
  fingerprint.structure = 0xabcd;
  fingerprint.literals = 0x1234;
  EXPECT_EQ(FingerprintKey(fingerprint), "000000000000abcd");
}

}  // namespace
}  // namespace dfp
