// Profile-feedback scheduling through the serving layer (DESIGN.md §2h): slack-directed deque
// ordering engages from the second execution and keeps results byte-identical to FIFO and
// deterministic across double runs; slack-aware admission bounces infeasible deadlines from
// the expected critical-path length; the SlackStore round-trips through the service state file
// (profile v5); and the guarded placement-repair loop turns a remote-DRAM-bound verdict into
// exactly one re-partition — kept when it wins, reverted when repair_pessimize makes it lose.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/engine/result.h"
#include "src/service/placement_repair.h"
#include "src/service/query_service.h"
#include "src/service/service_profile.h"
#include "src/profiling/serialize.h"
#include "src/sql/binder.h"
#include "src/tpch/datagen.h"
#include "src/tpch/queries.h"
#include "src/vcpu/vmem.h"

namespace dfp {
namespace {

ServiceConfig TestConfig() {
  ServiceConfig config;
  config.parallel.workers = 4;
  config.max_active_sessions = 2;
  config.session_hashtables_bytes = 32ull << 20;
  config.session_output_bytes = 16ull << 20;
  config.session_state_bytes = 512ull * 1024;
  config.profiling.period = 311;
  return config;
}

std::unique_ptr<Database> MakeDb(const ServiceConfig& config) {
  DatabaseConfig db_config;
  db_config.extra_bytes = ServiceArenaBytes(config);
  auto db = std::make_unique<Database>(db_config);
  TpchOptions options;
  options.scale = 0.01;
  GenerateTpch(*db, options);
  return db;
}

TicketId RunOne(QueryService& service, Database& db, const std::string& name) {
  const TicketId id = service.Submit(BuildQueryPlan(db, FindQuery(name)), name);
  service.Drain();
  return id;
}

bool HasEvent(const std::vector<SampleStreamEvent>& events, const std::string& needle) {
  for (const SampleStreamEvent& event : events) {
    if (event.text.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

TEST(SchedFeedback, SlackOrderingKeepsResultsByteIdenticalToFifo) {
  // The slack policy only permutes schedules — morsel order within a scan and steal victims —
  // so a slack-scheduled service must produce bit-identical results to the FIFO one, while its
  // counters prove the policy actually engaged (from the second execution: the first one is
  // what the store learns from).
  ServiceConfig fifo_config = TestConfig();
  ServiceConfig slack_config = TestConfig();
  slack_config.sched.slack_scheduling = true;

  auto fifo_db = MakeDb(fifo_config);
  auto slack_db = MakeDb(slack_config);
  QueryService fifo(*fifo_db, fifo_config);
  QueryService slack(*slack_db, slack_config);

  for (int i = 0; i < 3; ++i) {
    const TicketId f = RunOne(fifo, *fifo_db, "q6");
    const TicketId s = RunOne(slack, *slack_db, "q6");
    ASSERT_EQ(fifo.ticket(f).status, TicketStatus::kDone);
    ASSERT_EQ(slack.ticket(s).status, TicketStatus::kDone);
    std::string diff;
    EXPECT_TRUE(Result::Equivalent(fifo.ticket(f).result, slack.ticket(s).result, true, &diff))
        << "run " << i << ": " << diff;
    EXPECT_EQ(fifo.ticket(f).result.rows(), slack.ticket(s).result.rows()) << "run " << i;
  }

  // FIFO never consults the store; the slack service ordered the scans of runs 2 and 3.
  EXPECT_EQ(fifo.sched_stats().slack_ordered_scans, 0u);
  EXPECT_EQ(fifo.slack().generation(), 0u);
  EXPECT_GE(slack.sched_stats().slack_ordered_scans, 2u);
  EXPECT_GT(slack.sched_stats().slack_hits, 0u);
  EXPECT_EQ(slack.slack().generation(), 3u);
}

TEST(SchedFeedback, DoubleRunSlackSchedulingIsDeterministic) {
  // Steal-victim tie-break determinism: under a flat slack profile every victim comparison
  // falls through to the NUMA-then-lowest-id tie-break, and under a learned one the stable
  // deque sort keeps equal-slack morsels in deal order — either way two identical services
  // must produce byte-identical sample streams, task schedules, and slack stores.
  ServiceConfig config = TestConfig();
  config.sched.slack_scheduling = true;

  auto run_workload = [&config](std::vector<std::string>* streams) {
    auto db = MakeDb(config);
    QueryService service(*db, config);
    for (const char* name : {"q6", "q1", "q6", "q6"}) {
      const TicketId id = RunOne(service, *db, name);
      const QueryTicket& ticket = service.ticket(id);
      EXPECT_EQ(ticket.status, TicketStatus::kDone);
      std::ostringstream out;
      WriteSamples(ticket.session->samples(), {}, ticket.task_boundaries, out);
      streams->push_back(out.str());
    }
    std::ostringstream state;
    WriteServiceState(service.fleet_profile(), service.windows(), service.baseline(),
                      service.ServiceNowCycles(), state, &service.slack());
    streams->push_back(state.str());
    return service.sched_stats();
  };

  std::vector<std::string> first_streams;
  std::vector<std::string> second_streams;
  const SchedStats first = run_workload(&first_streams);
  const SchedStats second = run_workload(&second_streams);
  ASSERT_EQ(first_streams.size(), second_streams.size());
  for (size_t i = 0; i < first_streams.size(); ++i) {
    EXPECT_EQ(first_streams[i], second_streams[i]) << "stream " << i;
  }
  EXPECT_GT(first.slack_ordered_scans, 0u);
  EXPECT_EQ(first.slack_ordered_scans, second.slack_ordered_scans);
  EXPECT_EQ(first.slack_hits, second.slack_hits);
  EXPECT_EQ(first.deferred_morsels, second.deferred_morsels);
  EXPECT_EQ(first.slack_steals, second.slack_steals);
}

TEST(SchedFeedback, DeadlineAdmissionRejectsInfeasibleDeadlines) {
  ServiceConfig config = TestConfig();
  config.sched.deadline_admission = true;
  auto db = MakeDb(config);
  QueryService service(*db, config);

  // First execution: the store is empty (expected == 0), so any deadline is admitted — the
  // run is how admission learns the critical-path length.
  const TicketId first = RunOne(service, *db, "q6");
  ASSERT_EQ(service.ticket(first).status, TicketStatus::kDone);
  const uint64_t fp = service.ticket(first).fingerprint.structure;
  const uint64_t expected = service.slack().ExpectedCriticalPathCycles(fp);
  ASSERT_GT(expected, 0u);

  // A deadline below the expected critical path is infeasible even on an idle pool: bounced
  // at submission, flagged distinctly from a queue-full rejection, logged as a sched event.
  const TicketId infeasible =
      service.Submit(BuildQueryPlan(*db, FindQuery("q6")), "q6", expected / 2);
  EXPECT_EQ(service.ticket(infeasible).status, TicketStatus::kRejected);
  EXPECT_TRUE(service.ticket(infeasible).infeasible_deadline);
  EXPECT_EQ(service.infeasible_rejections(), 1u);
  EXPECT_TRUE(HasEvent(service.sched_events(), "admission"));
  EXPECT_TRUE(HasEvent(service.sched_events(), "infeasible"));

  // A feasible deadline passes admission and completes.
  const TicketId feasible =
      service.Submit(BuildQueryPlan(*db, FindQuery("q6")), "q6", expected * 100);
  service.Drain();
  EXPECT_EQ(service.ticket(feasible).status, TicketStatus::kDone);
  EXPECT_FALSE(service.ticket(feasible).infeasible_deadline);
  EXPECT_EQ(service.infeasible_rejections(), 1u);
}

TEST(SchedFeedback, SlackStoreRoundTripsThroughServiceState) {
  ServiceConfig config = TestConfig();
  config.sched.slack_scheduling = true;
  config.state_path = ::testing::TempDir() + "dfp_sched_state_test.profile";
  std::remove(config.state_path.c_str());

  uint64_t fp = 0;
  uint64_t expected = 0;
  uint64_t generation = 0;
  {
    auto db = MakeDb(config);
    QueryService service(*db, config);
    const TicketId id = RunOne(service, *db, "q6");
    RunOne(service, *db, "q6");
    fp = service.ticket(id).fingerprint.structure;
    expected = service.slack().ExpectedCriticalPathCycles(fp);
    generation = service.slack().generation();
    ASSERT_GT(expected, 0u);
    ASSERT_EQ(generation, 2u);
  }  // Destructor persists the state, slack store included.

  // A slack-carrying state file is profile v5 with the slackgen/slack/slackstep grammar.
  std::ifstream in(config.state_path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  EXPECT_NE(text.find("# dfp service profile v5"), std::string::npos);
  EXPECT_NE(text.find("\nslackgen "), std::string::npos);
  EXPECT_NE(text.find("\nslack "), std::string::npos);
  EXPECT_NE(text.find("\nslackstep "), std::string::npos);

  // Restart: the expected critical path, the generation clock (age-out resumes where the old
  // process stopped), and the per-step profiles all survive — and re-saving without serving
  // anything reproduces the file byte for byte.
  auto db = MakeDb(config);
  QueryService restarted(*db, config);
  EXPECT_EQ(restarted.slack().generation(), generation);
  EXPECT_EQ(restarted.slack().ExpectedCriticalPathCycles(fp), expected);
  const PlanSlack* plan = restarted.slack().Find(fp);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->executions, 2u);
  EXPECT_FALSE(plan->steps.empty());
  restarted.SaveState();
  std::ifstream rein(config.state_path);
  std::stringstream rebuffer;
  rebuffer << rein.rdbuf();
  EXPECT_EQ(rebuffer.str(), text);
  std::remove(config.state_path.c_str());
}

// --- Guarded placement repair -------------------------------------------------------------
//
// The default range partition is consumer-aligned (the deal rule and NumaMap use the same
// row split), so a remote-DRAM-bound scan has to be provoked: the tests install a
// swapped-halves placement on a subset of the lineitem columns q6 reads, which makes every
// access to those columns remote without touching the deal. The repair then re-partitions ALL
// the table's columns toward the observed consumers: the normal map matches consumption (the
// guard keeps it), the pessimized map misplaces every read column — strictly worse than the
// baseline's partial misplacement — and the guard must revert.

ServiceConfig RepairConfig() {
  ServiceConfig config = TestConfig();
  config.parallel.workers = 4;  // Four workers on four nodes: worker i consumes quarter i.
  config.sched.placement_repair = true;
  // A long sampling period keeps the PMU capture overhead from swamping the pipeline cycles
  // the classifier prices (at the 311-cycle period the stall share never clears the
  // remote-DRAM-bound threshold); one window per completion lets the guard's post-apply
  // rollup resolve on the very next execution.
  config.profiling.period = 10007;
  config.continuous.window.width_cycles = 1'000'000;
  // The repair legitimately shifts the operator sample mix, so the mix check is disabled and
  // the guard rides on the remote-share drift the re-partition actually targets. The default
  // 0.10 drift is sized for whole-table migrations; the injected rotation moves the share by
  // ~0.02 (measured deterministically), so the test pins a matching threshold.
  config.continuous.regression.share_drift = 10.0;
  config.continuous.regression.remote_share_drift = 0.015;
  return config;
}

// q6 reads l_quantity(4), l_extendedprice(5), l_discount(6), l_shipdate(10). Three of the
// four go remote: enough traffic to clear the classifier's mem-stall threshold, while the
// untouched fourth keeps the pessimized all-columns-rotated map strictly worse than the
// baseline misplacement.
void MisplaceColumns(Database& db, const std::vector<size_t>& columns) {
  const Table& lineitem = db.table("lineitem");
  const PartitionMap swapped = {{kPlacementDenom / 2, 1}, {kPlacementDenom, 0}};
  for (size_t c : columns) {
    db.mem().SetExtentPlacement(lineitem.column_base(c), swapped);
  }
}

// Runs q6 until the single repair action resolves (or `max_runs` is hit); returns the number
// of completed runs.
int RunUntilResolved(QueryService& service, Database& db, int max_runs) {
  int runs = 0;
  while (runs < max_runs) {
    RunOne(service, db, "q6");
    ++runs;
    const RepairAction* action =
        service.repairs().actions().empty() ? nullptr : &service.repairs().actions().front();
    if (action != nullptr &&
        (action->state == RepairState::kKept || action->state == RepairState::kReverted)) {
      break;
    }
  }
  return runs;
}

TEST(SchedFeedback, RepairKeptWhenRelocationWins) {
  const ServiceConfig config = RepairConfig();
  auto db = MakeDb(config);
  MisplaceColumns(*db, {4, 6, 10});
  QueryService service(*db, config);

  const TicketId first = RunOne(service, *db, "q6");
  ASSERT_EQ(service.ticket(first).status, TicketStatus::kDone);
  // The misplacement must actually show up as a remote-DRAM-bound verdict — that is the
  // trigger the whole loop hangs off.
  bool remote_bound = false;
  for (const PipelineVerdict& v : service.ticket(first).verdicts) {
    remote_bound |= v.label == Bottleneck::kRemoteDramBound;
  }
  ASSERT_TRUE(remote_bound) << "misplaced columns did not produce a remote-DRAM-bound verdict";

  // Exactly one action: decided and applied at the first completion, kept once the guard has
  // post-apply evidence.
  ASSERT_EQ(service.repairs().actions().size(), 1u);
  EXPECT_EQ(service.repairs().actions().front().state, RepairState::kApplied);
  EXPECT_TRUE(HasEvent(service.sched_events(), "decided"));
  EXPECT_TRUE(HasEvent(service.sched_events(), "applied"));

  RunUntilResolved(service, *db, 8);
  ASSERT_EQ(service.repairs().actions().size(), 1u);
  const RepairAction& action = service.repairs().actions().front();
  EXPECT_EQ(action.state, RepairState::kKept);
  EXPECT_EQ(action.table, "lineitem");
  EXPECT_FALSE(action.placement.empty());
  EXPECT_EQ(service.repairs().applied(), 1u);
  EXPECT_EQ(service.repairs().reverted(), 0u);
  EXPECT_TRUE(HasEvent(service.sched_events(), "kept"));

  // The consumer map stays installed on every column of the table.
  const Table& lineitem = db->table("lineitem");
  for (size_t c = 0; c < lineitem.schema().columns.size(); ++c) {
    EXPECT_NE(db->mem().ExtentPlacement(lineitem.column_base(c)), nullptr) << "column " << c;
  }

  // Placement moves data, never results: every run returned the first run's rows.
  const TicketId last = RunOne(service, *db, "q6");
  std::string diff;
  EXPECT_TRUE(Result::Equivalent(service.ticket(first).result, service.ticket(last).result,
                                 true, &diff))
      << diff;

  // The audit trail renders tier-timeline-style.
  const std::string timeline = RenderRepairTimeline(service.repairs());
  EXPECT_NE(timeline.find("lineitem"), std::string::npos);
  EXPECT_NE(timeline.find("kept"), std::string::npos);
}

TEST(SchedFeedback, RepairRevertedWhenPessimized) {
  ServiceConfig config = RepairConfig();
  config.sched.repair_pessimize = true;  // Injected fault: every repair map is rotated a node.
  auto db = MakeDb(config);
  MisplaceColumns(*db, {4, 6, 10});
  QueryService service(*db, config);

  const TicketId first = RunOne(service, *db, "q6");
  ASSERT_EQ(service.ticket(first).status, TicketStatus::kDone);
  ASSERT_EQ(service.repairs().actions().size(), 1u);
  EXPECT_EQ(service.repairs().actions().front().state, RepairState::kApplied);

  RunUntilResolved(service, *db, 8);
  ASSERT_EQ(service.repairs().actions().size(), 1u);
  const RepairAction& action = service.repairs().actions().front();
  EXPECT_EQ(action.state, RepairState::kReverted);
  EXPECT_EQ(service.repairs().applied(), 0u);
  EXPECT_EQ(service.repairs().reverted(), 1u);
  EXPECT_TRUE(HasEvent(service.sched_events(), "reverted"));

  // The revert restored the default placement on every column — including the test's own bad
  // maps, which the apply had overwritten.
  const Table& lineitem = db->table("lineitem");
  for (size_t c = 0; c < lineitem.schema().columns.size(); ++c) {
    EXPECT_EQ(db->mem().ExtentPlacement(lineitem.column_base(c)), nullptr) << "column " << c;
  }

  // A resolved action never re-triggers: the loop must not oscillate.
  RunOne(service, *db, "q6");
  EXPECT_EQ(service.repairs().actions().size(), 1u);

  // Results stayed byte-identical through apply and revert.
  const TicketId last = RunOne(service, *db, "q6");
  std::string diff;
  EXPECT_TRUE(Result::Equivalent(service.ticket(first).result, service.ticket(last).result,
                                 true, &diff))
      << diff;
  const std::string timeline = RenderRepairTimeline(service.repairs());
  EXPECT_NE(timeline.find("reverted"), std::string::npos);
}

}  // namespace
}  // namespace dfp
