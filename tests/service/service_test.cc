// QueryService: plan-cache reuse (zero new code, bit-identical results, attribution-parity
// profiles), concurrent-session profile isolation, admission control, deadlines, LRU eviction,
// catalog invalidation, and fleet profile aggregation.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>

#include "src/engine/query_engine.h"
#include "src/profiling/serialize.h"
#include "src/service/query_service.h"
#include "src/service/service_profile.h"
#include "src/sql/binder.h"
#include "src/tpch/datagen.h"
#include "src/tpch/queries.h"

namespace dfp {
namespace {

ServiceConfig TestConfig() {
  ServiceConfig config;
  config.parallel.workers = 4;
  config.max_active_sessions = 2;
  config.session_hashtables_bytes = 32ull << 20;
  config.session_output_bytes = 16ull << 20;
  config.session_state_bytes = 512ull * 1024;
  config.profiling.period = 311;
  return config;
}

std::unique_ptr<Database> MakeDb(const ServiceConfig& config) {
  DatabaseConfig db_config;
  db_config.extra_bytes = ServiceArenaBytes(config);
  auto db = std::make_unique<Database>(db_config);
  TpchOptions options;
  options.scale = 0.01;
  GenerateTpch(*db, options);
  return db;
}

PhysicalOpPtr Plan(Database& db, const std::string& name) {
  return BuildQueryPlan(db, FindQuery(name));
}

uint64_t TotalCodeIps(const CodeMap& code_map) {
  uint64_t total = 0;
  for (const CodeSegment& segment : code_map.segments()) {
    total += segment.code.size();
  }
  return total;
}

std::string DumpSamples(const ProfilingSession& session) {
  std::ostringstream out;
  WriteSamples(session.samples(), out);
  return out.str();
}

TEST(QueryServiceTest, SessionRegionsAreCacheCongruentToSharedRegions) {
  ServiceConfig config = TestConfig();
  auto db = MakeDb(config);
  QueryService service(*db, config);
  const VMem& mem = db->mem();
  const uint64_t stride = kCacheCongruenceBytes;
  for (const MemRegion& region : mem.regions()) {
    if (region.name.find("session") != 0 || region.name.find(".pad") != std::string::npos) {
      continue;
    }
    uint64_t model_base = 0;
    if (region.name.find("hashtables") != std::string::npos) {
      model_base = mem.region(db->hashtables_region()).base;
    } else if (region.name.find("state") != std::string::npos) {
      model_base = mem.region(db->state_region()).base;
    } else {
      model_base = mem.region(db->output_region()).base;
    }
    EXPECT_EQ(region.base % stride, model_base % stride) << region.name;
  }
}

TEST(QueryServiceTest, WarmHitAddsNoCodeAndMatchesColdRun) {
  ServiceConfig config = TestConfig();
  auto db = MakeDb(config);

  // Sequential baseline from the plain engine, before the service touches anything.
  QueryEngine engine(db.get());
  CompiledQuery sequential = engine.Compile(Plan(*db, "q3"), nullptr, "q3_seq");
  Result expected = engine.Execute(sequential);

  QueryService service(*db, config);
  TicketId cold = service.Submit(Plan(*db, "q3"), "q3");
  service.Drain();
  const size_t segments_after_cold = db->code_map().segments().size();
  const uint64_t code_after_cold = TotalCodeIps(db->code_map());

  TicketId warm = service.Submit(Plan(*db, "q3"), "q3");
  service.Drain();

  // Zero new code-segment bytes on the warm hit.
  EXPECT_EQ(db->code_map().segments().size(), segments_after_cold);
  EXPECT_EQ(TotalCodeIps(db->code_map()), code_after_cold);

  const QueryTicket& cold_ticket = service.ticket(cold);
  const QueryTicket& warm_ticket = service.ticket(warm);
  EXPECT_EQ(cold_ticket.status, TicketStatus::kDone);
  EXPECT_EQ(warm_ticket.status, TicketStatus::kDone);
  EXPECT_FALSE(cold_ticket.cache_hit);
  EXPECT_TRUE(warm_ticket.cache_hit);
  EXPECT_EQ(service.plan_cache().stats().hits, 1u);
  EXPECT_EQ(service.plan_cache().stats().misses, 1u);

  // The warm execution pays only the lookup, not the compile.
  EXPECT_EQ(warm_ticket.compile_cycles, config.compile_costs.cache_lookup_cycles);
  EXPECT_GT(cold_ticket.compile_cycles, 100u * warm_ticket.compile_cycles);

  // Bit-identical results, both equal to the sequential engine's.
  std::string diff;
  EXPECT_TRUE(Result::Equivalent(cold_ticket.result, expected, true, &diff)) << diff;
  EXPECT_EQ(cold_ticket.result.rows(), warm_ticket.result.rows());
}

TEST(QueryServiceTest, WarmProfileIsIdenticalToColdProfile) {
  ServiceConfig config = TestConfig();
  auto db = MakeDb(config);
  QueryService service(*db, config);

  TicketId cold = service.Submit(Plan(*db, "q1"), "q1");
  service.Drain();
  TicketId warm = service.Submit(Plan(*db, "q1"), "q1");
  service.Drain();

  const QueryTicket& cold_ticket = service.ticket(cold);
  const QueryTicket& warm_ticket = service.ticket(warm);
  ASSERT_NE(cold_ticket.session, nullptr);
  ASSERT_NE(warm_ticket.session, nullptr);
  ASSERT_FALSE(cold_ticket.session->samples().empty());

  // Same code, same schedule, same (reset) regions: the warm hit's sample stream and resolved
  // attribution are byte-identical to the cold run's — a cache hit never distorts a profile.
  EXPECT_EQ(DumpSamples(*cold_ticket.session), DumpSamples(*warm_ticket.session));
  const AttributionStats cold_stats = cold_ticket.session->Stats();
  const AttributionStats warm_stats = warm_ticket.session->Stats();
  EXPECT_EQ(cold_stats.total, warm_stats.total);
  EXPECT_EQ(cold_stats.operator_samples, warm_stats.operator_samples);
  EXPECT_EQ(cold_stats.via_tag, warm_stats.via_tag);
  EXPECT_EQ(cold_ticket.execute_cycles, warm_ticket.execute_cycles);
}

TEST(QueryServiceTest, ConcurrentSessionsKeepStandaloneProfiles) {
  ServiceConfig config = TestConfig();
  auto db = MakeDb(config);
  QueryService service(*db, config);

  // Alone: one session at a time (both run on slot 0).
  TicketId q1_alone = service.Submit(Plan(*db, "q1"), "q1");
  service.Drain();
  TicketId q6_alone = service.Submit(Plan(*db, "q6"), "q6");
  service.Drain();

  // Concurrent: both in flight, time-sharing the pool (q1 on slot 0, q6 on slot 1).
  TicketId q1_conc = service.Submit(Plan(*db, "q1"), "q1");
  TicketId q6_conc = service.Submit(Plan(*db, "q6"), "q6");
  service.Drain();

  const QueryTicket& a1 = service.ticket(q1_alone);
  const QueryTicket& c1 = service.ticket(q1_conc);
  const QueryTicket& a6 = service.ticket(q6_alone);
  const QueryTicket& c6 = service.ticket(q6_conc);
  ASSERT_EQ(c1.status, TicketStatus::kDone);
  ASSERT_EQ(c6.status, TicketStatus::kDone);

  // Results are unaffected by concurrency.
  EXPECT_EQ(a1.result.rows(), c1.result.rows());
  EXPECT_EQ(a6.result.rows(), c6.result.rows());

  // q1 runs on the same slot in both schedules: its stream is byte-identical — sharing the pool
  // with q6 left no trace whatsoever.
  ASSERT_FALSE(a1.session->samples().empty());
  EXPECT_EQ(DumpSamples(*a1.session), DumpSamples(*c1.session));
  EXPECT_EQ(a1.execute_cycles, c1.execute_cycles);

  // q6 runs on slot 1 when concurrent: every schedule-visible quantity (timestamps, IPs, worker
  // ids, sample counts) matches the standalone run; only raw pointer-valued registers shift by
  // the slot's base offset, which cache congruence makes behavior-neutral.
  ASSERT_EQ(a6.session->samples().size(), c6.session->samples().size());
  for (size_t i = 0; i < a6.session->samples().size(); ++i) {
    const Sample& alone = a6.session->samples()[i];
    const Sample& conc = c6.session->samples()[i];
    EXPECT_EQ(alone.tsc, conc.tsc) << "sample " << i;
    EXPECT_EQ(alone.ip, conc.ip) << "sample " << i;
    EXPECT_EQ(alone.worker_id, conc.worker_id) << "sample " << i;
    EXPECT_EQ(alone.regs[kTagRegister], conc.regs[kTagRegister]) << "sample " << i;
  }
  EXPECT_EQ(a6.execute_cycles, c6.execute_cycles);

  // Session ids demultiplex the streams.
  for (const Sample& sample : c1.session->samples()) {
    EXPECT_EQ(sample.session_id, q1_conc);
  }
  for (const Sample& sample : c6.session->samples()) {
    EXPECT_EQ(sample.session_id, q6_conc);
  }

  // Resolved attribution agrees exactly.
  const AttributionStats alone_stats = a6.session->Stats();
  const AttributionStats conc_stats = c6.session->Stats();
  EXPECT_EQ(alone_stats.operator_samples, conc_stats.operator_samples);
  EXPECT_EQ(alone_stats.kernel_samples, conc_stats.kernel_samples);
  EXPECT_EQ(alone_stats.unattributed, conc_stats.unattributed);
}

TEST(QueryServiceTest, BoundedQueueRejectsOverflow) {
  ServiceConfig config = TestConfig();
  config.max_active_sessions = 1;
  config.queue_depth = 2;
  auto db = MakeDb(config);
  QueryService service(*db, config);

  TicketId first = service.Submit(Plan(*db, "q6"), "q6");
  TicketId second = service.Submit(Plan(*db, "q6"), "q6");
  TicketId third = service.Submit(Plan(*db, "q6"), "q6");  // Queue full.
  EXPECT_EQ(service.ticket(third).status, TicketStatus::kRejected);

  service.Drain();
  EXPECT_EQ(service.ticket(first).status, TicketStatus::kDone);
  EXPECT_EQ(service.ticket(second).status, TicketStatus::kDone);
  EXPECT_EQ(service.ticket(third).status, TicketStatus::kRejected);

  // Rejected tickets never executed or compiled.
  EXPECT_EQ(service.ticket(third).result.row_count(), 0u);
  EXPECT_EQ(service.plan_cache().stats().misses, 1u);
}

TEST(QueryServiceTest, DeadlineAbortsMidRun) {
  ServiceConfig config = TestConfig();
  auto db = MakeDb(config);
  QueryService service(*db, config);

  TicketId full = service.Submit(Plan(*db, "q1"), "q1");
  service.Drain();
  const uint64_t full_cycles = service.ticket(full).execute_cycles;
  ASSERT_GT(full_cycles, 0u);

  TicketId doomed = service.Submit(Plan(*db, "q1"), "q1", full_cycles / 2);
  service.Drain();
  const QueryTicket& timed_out = service.ticket(doomed);
  EXPECT_EQ(timed_out.status, TicketStatus::kTimedOut);
  EXPECT_GT(timed_out.execute_cycles, full_cycles / 2);
  EXPECT_LT(timed_out.execute_cycles, full_cycles);
  EXPECT_EQ(timed_out.result.row_count(), 0u);

  // The service keeps serving, and the abandoned slot is safely reusable.
  TicketId after = service.Submit(Plan(*db, "q1"), "q1");
  service.Drain();
  EXPECT_EQ(service.ticket(after).status, TicketStatus::kDone);
  EXPECT_EQ(service.ticket(after).result.rows(), service.ticket(full).result.rows());
}

TEST(QueryServiceTest, CodeBudgetEvictsLeastRecentlyUsed) {
  ServiceConfig config = TestConfig();
  config.code_budget_bytes = 1;  // Room for exactly one (always-kept) entry.
  auto db = MakeDb(config);
  QueryService service(*db, config);

  service.Submit(Plan(*db, "q1"), "q1");
  service.Drain();
  service.Submit(Plan(*db, "q6"), "q6");  // Evicts q1.
  service.Drain();
  service.Submit(Plan(*db, "q1"), "q1");  // Recompile: q1 was evicted.
  service.Drain();

  const PlanCacheStats& stats = service.plan_cache().stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.resident_entries, 1u);
}

TEST(QueryServiceTest, CatalogChangeInvalidatesCache) {
  ServiceConfig config = TestConfig();
  auto db = MakeDb(config);
  QueryService service(*db, config);

  TicketId before = service.Submit(Plan(*db, "q6"), "q6");
  service.Drain();

  TableBuilder builder = db->CreateTableBuilder(
      TableSchema{"tiny", {{"a", ColumnType::kInt64}}});
  builder.BeginRow();
  builder.SetI64(0, 1);
  db->AddTable(builder.Finish());

  TicketId after = service.Submit(Plan(*db, "q6"), "q6");
  service.Drain();

  // The schema change retired the fingerprint and flushed the cache.
  EXPECT_NE(service.ticket(before).fingerprint.structure,
            service.ticket(after).fingerprint.structure);
  EXPECT_FALSE(service.ticket(after).cache_hit);
  EXPECT_GE(service.plan_cache().stats().invalidations, 1u);
  EXPECT_EQ(service.plan_cache().stats().hits, 0u);
  EXPECT_EQ(service.ticket(after).result.rows(), service.ticket(before).result.rows());
}

TEST(QueryServiceTest, FleetProfileAggregatesByFingerprint) {
  ServiceConfig config = TestConfig();
  auto db = MakeDb(config);
  QueryService service(*db, config);

  service.Submit(Plan(*db, "q1"), "q1");
  service.Drain();
  service.Submit(Plan(*db, "q1"), "q1");
  service.Drain();
  service.Submit(Plan(*db, "q6"), "q6");
  service.Drain();

  const ServiceProfile& fleet = service.fleet_profile();
  ASSERT_EQ(fleet.plans().size(), 2u);
  uint64_t q1_key = service.ticket(1).fingerprint.structure;
  const FleetPlanProfile& q1_plan = fleet.plans().at(q1_key);
  EXPECT_EQ(q1_plan.executions, 2u);
  EXPECT_EQ(q1_plan.cache_hits, 1u);
  EXPECT_EQ(q1_plan.cache_misses, 1u);
  EXPECT_GT(q1_plan.samples, 0u);
  EXPECT_GT(q1_plan.execute_cycles, 0u);
  EXPECT_FALSE(q1_plan.operators.empty());

  // Top-K is populated and ordered by samples.
  std::vector<FleetHotspot> hotspots = fleet.TopOperators(5);
  ASSERT_FALSE(hotspots.empty());
  for (size_t i = 1; i < hotspots.size(); ++i) {
    EXPECT_GE(hotspots[i - 1].samples, hotspots[i].samples);
  }
  EXPECT_GT(hotspots[0].share, 0.0);

  const std::string report = fleet.Render();
  EXPECT_NE(report.find("q1"), std::string::npos);
  EXPECT_NE(report.find("Hottest operators"), std::string::npos);
  EXPECT_NE(report.find("cache 1 hit"), std::string::npos);
}

TEST(QueryServiceTest, ServiceProfileRoundTripsThroughText) {
  ServiceConfig config = TestConfig();
  auto db = MakeDb(config);
  QueryService service(*db, config);
  service.Submit(Plan(*db, "q1"), "q1");
  service.Submit(Plan(*db, "q6"), "q6");
  service.Drain();

  std::ostringstream first;
  WriteServiceProfile(service.fleet_profile(), first);
  std::istringstream in(first.str());
  ServiceProfile reread = ReadServiceProfile(in);
  std::ostringstream second;
  WriteServiceProfile(reread, second);
  EXPECT_EQ(first.str(), second.str());
  EXPECT_EQ(reread.plans().size(), service.fleet_profile().plans().size());
  EXPECT_EQ(reread.total_operator_samples(), service.fleet_profile().total_operator_samples());
  EXPECT_EQ(reread.total_execute_cycles(), service.fleet_profile().total_execute_cycles());

  // Malformed inputs are rejected, not guessed at.
  std::istringstream bad_header("# not a profile\n");
  EXPECT_THROW(ReadServiceProfile(bad_header), Error);
  std::istringstream orphan_op("# dfp service profile v1\nop 0000000000000001 3 5 scan\n");
  EXPECT_THROW(ReadServiceProfile(orphan_op), Error);
}

TEST(QueryServiceTest, WeightedFairSchedulingLetsHeavySessionsOvertake) {
  // Two identical queries submitted back to back. Under round-robin the first-submitted one
  // completes first; giving the second a weight of 4 hands it four work units per scheduler
  // round, so it overtakes — while the light session still advances every round (starvation
  // bound: one unit per round, so it finishes by the time the pool drains).
  ServiceConfig config = TestConfig();
  auto db = MakeDb(config);
  QueryService service(*db, config);
  const TicketId light = service.Submit(Plan(*db, "q1"), "q1-light", 0, /*weight=*/1);
  const TicketId heavy = service.Submit(Plan(*db, "q1"), "q1-heavy", 0, /*weight=*/4);
  service.Drain();
  EXPECT_EQ(service.ticket(light).status, TicketStatus::kDone);
  EXPECT_EQ(service.ticket(heavy).status, TicketStatus::kDone);
  EXPECT_LT(service.ticket(heavy).completed_at_cycles,
            service.ticket(light).completed_at_cycles);
  // The light session is never starved past the drain: it finishes exactly when the last of
  // the submitted work does.
  EXPECT_EQ(service.ticket(light).completed_at_cycles, service.ServiceNowCycles());

  // Scheduling weight redistributes service time but must not distort the sessions' own
  // measured execution: each run's wall clock matches the round-robin control run.
  auto control_db = MakeDb(config);
  QueryService control(*control_db, config);
  const TicketId first = control.Submit(Plan(*control_db, "q1"), "q1-light");
  const TicketId second = control.Submit(Plan(*control_db, "q1"), "q1-heavy");
  control.Drain();
  EXPECT_LT(control.ticket(first).completed_at_cycles,
            control.ticket(second).completed_at_cycles);
  EXPECT_EQ(service.ticket(light).execute_cycles, control.ticket(first).execute_cycles);
  EXPECT_EQ(service.ticket(heavy).execute_cycles, control.ticket(second).execute_cycles);
  EXPECT_EQ(service.ticket(heavy).result.rows(), control.ticket(second).result.rows());
}

TEST(QueryServiceTest, RestartedServiceResumesRegressionDetection) {
  ServiceConfig config = TestConfig();
  config.state_path = ::testing::TempDir() + "dfp_service_state_test.profile";
  std::remove(config.state_path.c_str());

  const char* shifted_q6 =
      "select sum(l_extendedprice * l_discount) as revenue from lineitem "
      "where l_shipdate >= date '1992-01-01' and l_shipdate < date '1999-01-01' "
      "and l_discount between 0.00 and 0.10 and l_quantity < 100";

  uint64_t clock_at_shutdown = 0;
  uint64_t q6_fingerprint = 0;
  {
    // The database is rebuilt identically after the "restart": generation is deterministic, so
    // fingerprints and profiles line up across processes exactly as they would for one durable
    // database serving both.
    auto db = MakeDb(config);
    QueryService service(*db, config);
    for (int i = 0; i < 4; ++i) {
      const TicketId id = service.Submit(PlanSql(*db, FindQuery("q6").sql), "q6");
      service.Drain();
      q6_fingerprint = service.ticket(id).fingerprint.structure;
    }
    service.SnapshotBaseline();
    service.SaveState();  // Snapshot the baseline into the persisted state explicitly...
    clock_at_shutdown = service.ServiceNowCycles();
  }  // ...and the destructor persists again on shutdown (same content, same clock).

  // Restart: windows, baselines, and the service clock resume where the old process stopped.
  auto db = MakeDb(config);
  QueryService restarted(*db, config);
  EXPECT_EQ(restarted.ServiceNowCycles(), clock_at_shutdown);
  ASSERT_NE(restarted.baseline().Find(q6_fingerprint), nullptr);
  EXPECT_GT(restarted.windows().RollUp(q6_fingerprint).executions, 0u);

  // An identical post-restart workload stays quiet against the pre-restart baseline...
  for (int i = 0; i < 4; ++i) {
    restarted.Submit(PlanSql(*db, FindQuery("q6").sql), "q6");
    restarted.Drain();
  }
  EXPECT_TRUE(restarted.DetectRegressions().empty());

  // ...and the injected literal shift is flagged against that same pre-restart baseline,
  // without any post-restart snapshot.
  for (int i = 0; i < 6; ++i) {
    restarted.Submit(PlanSql(*db, shifted_q6), "q6");
    restarted.Drain();
  }
  const auto findings = restarted.DetectRegressions();
  bool flagged = false;
  for (const auto& finding : findings) {
    flagged |= finding.fingerprint == q6_fingerprint;
  }
  EXPECT_TRUE(flagged);
  std::remove(config.state_path.c_str());
}

// Deferred-patch ordering under back-to-back admits of the same structure with alternating
// literals (the schedule a trace replay drives hardest): a ticket whose admission would patch
// an entry that an in-flight session is still executing must wait at the queue head until that
// session drains, then patch and run — and every result must match the same query run alone.
TEST(QueryServiceTest, DeferredPatchDrainsBlockerThenPatches) {
  ServiceConfig config = TestConfig();
  config.tiering.enabled = true;

  auto variant = [](double lo, int quantity) {
    char buffer[512];
    std::snprintf(buffer, sizeof(buffer),
                  "select sum(l_extendedprice * l_discount) as revenue from lineitem "
                  "where l_shipdate >= date '1994-01-01' and l_shipdate < date '1995-01-01' "
                  "and l_discount between %.2f and %.2f and l_quantity < %d",
                  lo, lo + 0.02, quantity);
    return std::string(buffer);
  };

  // Solo reference results, each variant alone on a fresh service.
  auto solo = [&config, &variant](double lo, int quantity) {
    auto db = MakeDb(config);
    QueryService service(*db, config);
    const TicketId id = service.Submit(PlanSql(*db, variant(lo, quantity)), "q6");
    service.Drain();
    return service.ticket(id).result;
  };
  const Result solo_x = solo(0.05, 24);
  const Result solo_y = solo(0.02, 24);

  // Back-to-back batch: X, Y, X' — same structure, alternating literal bindings, submitted
  // before any admission so the deferral path (not a warm queue) decides the ordering.
  auto db = MakeDb(config);
  QueryService service(*db, config);
  const TicketId a = service.Submit(PlanSql(*db, variant(0.05, 24)), "q6");
  const TicketId b = service.Submit(PlanSql(*db, variant(0.02, 24)), "q6");
  const TicketId c = service.Submit(PlanSql(*db, variant(0.05, 24)), "q6");
  service.Drain();

  // a compiles cold; b needs the entry re-bound while a is executing it, so its admission
  // defers until a drains; c defers behind b the same way. Everyone completes.
  EXPECT_EQ(service.ticket(a).status, TicketStatus::kDone);
  EXPECT_EQ(service.ticket(b).status, TicketStatus::kDone);
  EXPECT_EQ(service.ticket(c).status, TicketStatus::kDone);
  EXPECT_FALSE(service.ticket(a).cache_hit);
  EXPECT_TRUE(service.ticket(b).cache_hit);
  EXPECT_TRUE(service.ticket(c).cache_hit);
  EXPECT_GT(service.ticket(b).patched_sites, 0u);
  EXPECT_GT(service.ticket(c).patched_sites, 0u);
  EXPECT_EQ(service.plan_cache().stats().patched_hits, 2u);

  // Drain-then-patch must be invisible to values: each ticket matches its solo run even though
  // the shared entry was re-bound twice mid-batch.
  std::string diff;
  EXPECT_TRUE(Result::Equivalent(service.ticket(a).result, solo_x, true, &diff)) << diff;
  EXPECT_TRUE(Result::Equivalent(service.ticket(b).result, solo_y, true, &diff)) << diff;
  EXPECT_TRUE(Result::Equivalent(service.ticket(c).result, solo_x, true, &diff)) << diff;

  // The deferral actually happened: with two free slots and three queued tickets, a lone
  // admission per sweep is only explained by the quiescence check holding b (then c) back.
  EXPECT_EQ(service.ticket(b).completed_at_cycles > service.ticket(a).completed_at_cycles, true);
  EXPECT_EQ(service.ticket(c).completed_at_cycles > service.ticket(b).completed_at_cycles, true);
}

TEST(QueryServiceTest, DrainIsDeterministic) {
  ServiceConfig config = TestConfig();
  auto run_once = [&config]() {
    auto db = MakeDb(config);
    QueryService service(*db, config);
    service.Submit(Plan(*db, "q1"), "q1");
    service.Submit(Plan(*db, "q6"), "q6");
    service.Submit(Plan(*db, "q3"), "q3");
    service.Drain();
    std::ostringstream out;
    WriteServiceProfile(service.fleet_profile(), out);
    out << service.ServiceNowCycles();
    for (TicketId id = 1; id <= service.ticket_count(); ++id) {
      out << "\n" << service.ticket(id).execute_cycles << " "
          << service.ticket(id).completed_at_cycles;
    }
    return out.str();
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace dfp
