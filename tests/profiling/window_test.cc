// Time-window drill-down (the paper's "limit the results to the time interval of the hotspot")
// and the machine-level listing.
#include <gtest/gtest.h>

#include "src/engine/query_engine.h"
#include "src/plan/builder.h"
#include "src/profiling/reports.h"
#include "src/util/random.h"
#include "src/vcpu/disasm.h"

namespace dfp {
namespace {

class WindowTest : public ::testing::Test {
 protected:
  WindowTest() : engine(&db) {
    Random rng(17);
    TableBuilder products = db.CreateTableBuilder(
        {"products", {{"id", ColumnType::kInt64}, {"w", ColumnType::kInt64}}});
    for (int i = 0; i < 200; ++i) {
      products.BeginRow();
      products.SetI64(0, i);
      products.SetI64(1, i * 3);
    }
    db.AddTable(products.Finish());
    TableBuilder sales = db.CreateTableBuilder(
        {"sales", {{"id", ColumnType::kInt64}, {"price", ColumnType::kDecimal}}});
    for (int i = 0; i < 20000; ++i) {
      sales.BeginRow();
      sales.SetI64(0, rng.Uniform(0, 199));
      sales.SetDecimal(1, rng.Uniform(1, 1000));
    }
    db.AddTable(sales.Finish());
  }

  CompiledQuery Run(ProfilingSession* session) {
    PlanBuilder products = PlanBuilder::Scan(db.table("products"));
    PlanBuilder sales = PlanBuilder::Scan(db.table("sales"));
    sales.JoinWith(std::move(products), {"id"}, {"id"}, {"w"}, JoinType::kInner, "TheJoin");
    sales.GroupByKeys({"w"}, NamedExprs("n", MakeAggregate(AggOp::kCountStar, nullptr)),
                      "TheGroupBy");
    CompiledQuery query = engine.Compile(sales.Build(), session, "windowed");
    engine.Execute(query);
    session->Resolve(db.code_map());
    return query;
  }

  Database db;
  QueryEngine engine;
};

TEST_F(WindowTest, WindowsPartitionTheProfile) {
  ProfilingConfig config;
  config.period = 200;
  ProfilingSession session(config);
  CompiledQuery query = Run(&session);
  const uint64_t total = session.execution_cycles();

  OperatorProfile whole = BuildOperatorProfile(session, query);
  TimeWindow first_half{0, total / 2};
  TimeWindow second_half{total / 2, ~0ull};
  OperatorProfile early = BuildOperatorProfile(session, query, first_half);
  OperatorProfile late = BuildOperatorProfile(session, query, second_half);

  EXPECT_EQ(early.operator_samples + late.operator_samples, whole.operator_samples);
  EXPECT_GT(early.operator_samples, 0u);
  EXPECT_GT(late.operator_samples, 0u);

  // The build pipeline (products scan) runs first: its samples live in the early window.
  OperatorId scan_products = 0;
  for (PhysicalOp* op : PlanOperators(*query.plan)) {
    if (op->label == "TableScan products") {
      scan_products = op->id;
    }
  }
  const OperatorCost* early_scan = early.Find(scan_products);
  const OperatorCost* late_scan = late.Find(scan_products);
  ASSERT_NE(early_scan, nullptr);
  ASSERT_NE(late_scan, nullptr);
  EXPECT_GE(early_scan->samples, late_scan->samples);
}

TEST_F(WindowTest, WindowedListingShrinks) {
  ProfilingConfig config;
  config.period = 200;
  ProfilingSession session(config);
  CompiledQuery query = Run(&session);
  ListingOptions whole;
  whole.pipeline = static_cast<uint32_t>(query.pipelines.size() - 1);
  ListingOptions narrow = whole;
  narrow.window = TimeWindow{0, session.execution_cycles() / 100};
  std::string whole_listing = RenderAnnotatedListing(session, query, whole);
  std::string narrow_listing = RenderAnnotatedListing(session, query, narrow);
  // Narrow windows see fewer samples; the header counts make this visible.
  EXPECT_NE(whole_listing, narrow_listing);
}

TEST_F(WindowTest, MachineListingShowsSamplesAndIrIds) {
  ProfilingConfig config;
  config.period = 200;
  ProfilingSession session(config);
  CompiledQuery query = Run(&session);
  // Probe pipeline = the one scanning sales.
  uint32_t pipeline = 0;
  for (const PipelineArtifact& artifact : query.pipelines) {
    if (artifact.pipeline.name.find("sales") != std::string::npos) {
      pipeline = artifact.pipeline.id;
    }
  }
  ListingOptions options;
  options.pipeline = pipeline;
  std::string listing = RenderMachineListing(session, query, db.code_map(), options);
  EXPECT_NE(listing.find("machine code"), std::string::npos);
  EXPECT_NE(listing.find("crc32"), std::string::npos);
  EXPECT_NE(listing.find("; ir %"), std::string::npos);
  EXPECT_NE(listing.find("%"), std::string::npos);
  // Hot-only filtering shrinks the listing.
  ListingOptions hot = options;
  hot.hide_cold_lines = true;
  EXPECT_LT(RenderMachineListing(session, query, db.code_map(), hot).size(), listing.size());
}

TEST_F(WindowTest, DisassemblerRendersAllOpcodes) {
  // Smoke-test the disassembler over a real compiled segment: every line non-empty.
  ProfilingConfig config;
  config.enable_sampling = false;
  ProfilingSession session(config);
  CompiledQuery query = Run(&session);
  const CodeSegment& segment = db.code_map().segment(query.pipelines[0].segment);
  std::string text = RenderSegment(segment);
  EXPECT_NE(text.find("segment"), std::string::npos);
  size_t lines = static_cast<size_t>(std::count(text.begin(), text.end(), '\n'));
  EXPECT_EQ(lines, segment.code.size() + 1);
}

}  // namespace
}  // namespace dfp
