// Property test for Register Tagging under concurrency (paper Section 6.3 applied to the
// morsel-parallel engine): with every generated instruction tagged, the IP-derived attribution
// must agree with each worker's own tag register for every sample on every worker — the tag
// register is per-VCPU state, so no worker may ever observe another worker's tag.
#include <gtest/gtest.h>

#include "src/engine/query_engine.h"
#include "src/profiling/validation.h"
#include "src/tpch/datagen.h"
#include "src/tpch/queries.h"

namespace dfp {
namespace {

Database* SuiteDb() {
  static Database* db = [] {
    auto* instance = new Database();
    TpchOptions options;
    options.scale = 0.002;
    GenerateTpch(*instance, options);
    return instance;
  }();
  return db;
}

class ParallelValidation : public ::testing::TestWithParam<std::string> {};

TEST_P(ParallelValidation, ValidationModeCleanOnEveryWorker) {
  const QuerySpec& spec = FindQuery(GetParam());
  Database& db = *SuiteDb();
  QueryEngine engine(&db);

  ProfilingConfig config;
  config.period = 311;
  config.tag_all_instructions = true;
  ProfilingSession session(config);
  CodegenOptions options;
  options.parallel = true;
  CompiledQuery query =
      engine.Compile(BuildQueryPlan(db, spec), &session, spec.name + "_pv", options);

  ParallelConfig pool;
  pool.workers = 4;
  pool.morsel_rows = 256;  // Force multi-morsel dispatch even at test scale.
  engine.ExecuteParallel(query, pool);
  session.Resolve(db.code_map());
  ASSERT_EQ(session.worker_count(), 4u);

  std::vector<ValidationReport> reports = CrossCheckAttributionPerWorker(session, db.code_map());
  ASSERT_EQ(reports.size(), 4u);
  uint64_t workers_with_checks = 0;
  for (size_t w = 0; w < reports.size(); ++w) {
    EXPECT_EQ(reports[w].mismatches, 0u) << spec.name << " worker " << w;
    workers_with_checks += reports[w].checked > 0 ? 1 : 0;
  }
  // The scan is morsel-parallel, so more than one worker must have produced checkable samples.
  EXPECT_GT(workers_with_checks, 1u) << spec.name;

  // The per-worker split is a partition of the whole-session cross-check.
  ValidationReport combined = CrossCheckAttribution(session, db.code_map());
  uint64_t checked = 0;
  uint64_t skipped = 0;
  for (const ValidationReport& report : reports) {
    checked += report.checked;
    skipped += report.skipped;
  }
  EXPECT_EQ(checked, combined.checked) << spec.name;
  EXPECT_EQ(skipped, combined.skipped) << spec.name;
  EXPECT_GT(combined.checked, 0u) << spec.name;
}

std::vector<std::string> Names() {
  std::vector<std::string> names;
  for (const QuerySpec& spec : TpchQuerySuite()) {
    names.push_back(spec.name);
  }
  return names;
}

INSTANTIATE_TEST_SUITE_P(AllQueries, ParallelValidation, ::testing::ValuesIn(Names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

}  // namespace
}  // namespace dfp
