#include <gtest/gtest.h>

#include "src/engine/query_engine.h"
#include "src/plan/builder.h"
#include "src/profiling/reports.h"
#include "src/util/random.h"

namespace dfp {
namespace {

class ReportsTest : public ::testing::Test {
 protected:
  ReportsTest() : engine(&db) {
    Random rng(5);
    TableBuilder products = db.CreateTableBuilder(
        {"products", {{"id", ColumnType::kInt64}, {"category", ColumnType::kString}}});
    for (int i = 0; i < 100; ++i) {
      products.BeginRow();
      products.SetI64(0, i);
      products.SetString(1, i % 2 == 0 ? "Chip" : "Other");
    }
    db.AddTable(products.Finish());
    TableBuilder sales = db.CreateTableBuilder(
        {"sales", {{"id", ColumnType::kInt64}, {"price", ColumnType::kDecimal}}});
    for (int i = 0; i < 10000; ++i) {
      sales.BeginRow();
      sales.SetI64(0, rng.Uniform(0, 99));
      sales.SetDecimal(1, rng.Uniform(100, 10000));
    }
    db.AddTable(sales.Finish());
  }

  CompiledQuery RunProfiled(ProfilingSession* session) {
    PlanBuilder products = PlanBuilder::Scan(db.table("products"));
    PlanBuilder sales = PlanBuilder::Scan(db.table("sales"));
    sales.JoinWith(std::move(products), {"id"}, {"id"}, {"category"}, JoinType::kInner,
                   "TheJoin");
    sales.GroupByKeys({"category"},
                      NamedExprs("total", MakeAggregate(AggOp::kSum, sales.Col("price"))),
                      "TheGroupBy");
    CompiledQuery query = engine.Compile(sales.Build(), session, "report_query");
    engine.Execute(query);
    session->Resolve(db.code_map());
    return query;
  }

  Database db;
  QueryEngine engine;
};

TEST_F(ReportsTest, OperatorProfileSharesSumToOne) {
  ProfilingConfig config;
  config.period = 300;
  ProfilingSession session(config);
  CompiledQuery query = RunProfiled(&session);
  OperatorProfile profile = BuildOperatorProfile(session, query);
  ASSERT_FALSE(profile.operators.empty());
  double total_share = 0;
  uint64_t total_samples = 0;
  for (const OperatorCost& cost : profile.operators) {
    total_share += cost.share;
    total_samples += cost.samples;
  }
  EXPECT_NEAR(total_share, 1.0, 1e-9);
  EXPECT_EQ(total_samples, profile.operator_samples);
  EXPECT_GT(profile.operator_samples, 100u);
}

TEST_F(ReportsTest, AnnotatedPlanMentionsEveryOperator) {
  ProfilingConfig config;
  config.period = 300;
  ProfilingSession session(config);
  CompiledQuery query = RunProfiled(&session);
  OperatorProfile profile = BuildOperatorProfile(session, query);
  std::string plan = RenderAnnotatedPlan(profile, query);
  EXPECT_NE(plan.find("TheJoin"), std::string::npos);
  EXPECT_NE(plan.find("TheGroupBy"), std::string::npos);
  EXPECT_NE(plan.find("TableScan sales"), std::string::npos);
  EXPECT_NE(plan.find("%"), std::string::npos);
}

TEST_F(ReportsTest, AnnotatedListingShowsSamplesAndOwners) {
  ProfilingConfig config;
  config.period = 300;
  ProfilingSession session(config);
  CompiledQuery query = RunProfiled(&session);
  // The probe pipeline scans sales.
  uint32_t pipeline = 0;
  for (const PipelineArtifact& artifact : query.pipelines) {
    if (artifact.pipeline.name.find("sales") != std::string::npos) {
      pipeline = artifact.pipeline.id;
    }
  }
  ListingOptions options;
  options.pipeline = pipeline;
  std::string listing = RenderAnnotatedListing(session, query, options);
  EXPECT_NE(listing.find("TheJoin"), std::string::npos);
  EXPECT_NE(listing.find("crc32"), std::string::npos);
  EXPECT_NE(listing.find("%"), std::string::npos);
  EXPECT_NE(listing.find("loopTuples"), std::string::npos);
  // Hide-cold-lines produces a strictly shorter listing.
  ListingOptions hot_only = options;
  hot_only.hide_cold_lines = true;
  EXPECT_LT(RenderAnnotatedListing(session, query, hot_only).size(), listing.size());
}

TEST_F(ReportsTest, TimelineBucketsCoverAllOperatorSamples) {
  ProfilingConfig config;
  config.period = 300;
  ProfilingSession session(config);
  CompiledQuery query = RunProfiled(&session);
  ActivityTimeline timeline = BuildActivityTimeline(session, query, 24);
  EXPECT_EQ(timeline.bucket_samples.front().size(), 24u);
  double total = 0;
  for (const std::vector<double>& series : timeline.bucket_samples) {
    for (double v : series) {
      total += v;
    }
  }
  AttributionStats stats = session.Stats();
  EXPECT_DOUBLE_EQ(total,
                   static_cast<double>(stats.operator_samples + stats.kernel_samples));
  // CSV export has a header plus one line per bucket.
  std::string csv = ActivityTimelineCsv(timeline);
  size_t lines = static_cast<size_t>(std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(lines, 25u);
  std::string chart = RenderActivityTimeline(timeline);
  EXPECT_NE(chart.find("TheGroupBy"), std::string::npos);
}

TEST_F(ReportsTest, MemoryProfileCapturesScanAndHashSeries) {
  ProfilingConfig config;
  config.event = PmuEvent::kLoads;
  config.period = 100;
  config.capture_address = true;
  ProfilingSession session(config);
  CompiledQuery query = RunProfiled(&session);
  MemoryProfile profile = BuildMemoryProfile(session, query);
  ASSERT_GE(profile.series.size(), 2u);
  for (const MemoryProfileSeries& series : profile.series) {
    EXPECT_FALSE(series.points.empty());
    EXPECT_LE(series.min_addr, series.max_addr);
    for (const auto& [tsc, addr] : series.points) {
      EXPECT_GE(addr, series.min_addr);
      EXPECT_LE(addr, series.max_addr);
      EXPECT_LE(tsc, session.execution_cycles());
    }
  }
  EXPECT_FALSE(RenderMemoryProfile(profile).empty());
}

TEST_F(ReportsTest, AttributionStatsRendering) {
  AttributionStats stats;
  stats.total = 1000;
  stats.operator_samples = 954;
  stats.kernel_samples = 26;
  stats.unattributed = 20;
  std::string table = RenderAttributionStats(stats);
  EXPECT_NE(table.find("95.4%"), std::string::npos);
  EXPECT_NE(table.find("2.6%"), std::string::npos);
  EXPECT_NE(table.find("2.0%"), std::string::npos);
  EXPECT_NE(table.find("98.0%"), std::string::npos);
}

TEST_F(ReportsTest, EmptySessionProducesEmptyButValidReports) {
  ProfilingConfig config;
  config.enable_sampling = false;
  ProfilingSession session(config);
  CompiledQuery query = RunProfiled(&session);
  OperatorProfile profile = BuildOperatorProfile(session, query);
  EXPECT_EQ(profile.operator_samples, 0u);
  EXPECT_FALSE(RenderAnnotatedPlan(profile, query).empty());
  ActivityTimeline timeline = BuildActivityTimeline(session, query, 8);
  EXPECT_EQ(timeline.bucket_samples.front().size(), 8u);
}

}  // namespace
}  // namespace dfp
