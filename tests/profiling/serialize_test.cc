// Serialization round-trips and offline post-processing: a session reconstructed from the
// meta-data file and the sample dump must resolve identically to the live session.
#include <gtest/gtest.h>

#include <sstream>

#include "src/engine/query_engine.h"
#include "src/plan/builder.h"
#include "src/profiling/serialize.h"
#include "src/util/random.h"

namespace dfp {
namespace {

TEST(Serialize, DictionaryRoundTrip) {
  TaggingDictionary dictionary;
  TaskId scan = dictionary.AddTask(0, "scan");
  TaskId probe = dictionary.AddTask(2, "probe of join");
  dictionary.LinkInstr(10, scan);
  dictionary.LinkInstr(11, probe);
  dictionary.LinkInstr(12, scan);
  dictionary.OnAbsorb(12, 11);  // Multi-owner entry.

  std::stringstream stream;
  WriteDictionary(dictionary, stream);
  TaggingDictionary loaded = ReadDictionary(stream);
  EXPECT_EQ(loaded.tasks().size(), 2u);
  EXPECT_EQ(loaded.task(probe).name, "probe of join");
  EXPECT_EQ(loaded.OperatorOf(probe), 2u);
  ASSERT_NE(loaded.TasksOf(12), nullptr);
  EXPECT_EQ(loaded.TasksOf(12)->size(), 2u);
  EXPECT_EQ(loaded.TasksOf(99), nullptr);
}

TEST(Serialize, SamplesRoundTrip) {
  std::vector<Sample> samples;
  Sample plain;
  plain.tsc = 100;
  plain.ip = 0x1000001;
  samples.push_back(plain);
  Sample with_regs;
  with_regs.tsc = 200;
  with_regs.ip = 0x1000002;
  with_regs.addr = 0xBEEF;
  with_regs.has_registers = true;
  for (int i = 0; i < kNumMachineRegs; ++i) {
    with_regs.regs[static_cast<size_t>(i)] = static_cast<uint64_t>(i * 7);
  }
  samples.push_back(with_regs);
  Sample with_stack;
  with_stack.tsc = 300;
  with_stack.ip = 0x1000003;
  with_stack.callstack = {0x2000001, 0x2000002};
  samples.push_back(with_stack);

  std::stringstream stream;
  WriteSamples(samples, stream);
  std::vector<Sample> loaded = ReadSamples(stream);
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded[0].tsc, 100u);
  EXPECT_FALSE(loaded[0].has_registers);
  EXPECT_TRUE(loaded[1].has_registers);
  EXPECT_EQ(loaded[1].regs[15], 105u);
  EXPECT_EQ(loaded[1].addr, 0xBEEFu);
  EXPECT_EQ(loaded[2].callstack.size(), 2u);
  EXPECT_EQ(loaded[2].callstack[1], 0x2000002u);
}

TEST(Serialize, WorkerIdsRoundTripBeyondSingleDigits) {
  // Pools larger than 9 workers produce multi-digit W tokens; sparse ids (a stream filtered to
  // a few workers) must survive as-is.
  std::vector<Sample> samples;
  for (uint32_t worker : {0u, 7u, 12u, 48u}) {
    Sample sample;
    sample.tsc = 100 + worker;
    sample.ip = 0x1000000 + worker;
    sample.worker_id = worker;
    samples.push_back(sample);
  }
  std::stringstream stream;
  WriteSamples(samples, stream);
  EXPECT_NE(stream.str().find("# dfp samples v2"), std::string::npos);
  EXPECT_NE(stream.str().find("W 12"), std::string::npos);
  EXPECT_NE(stream.str().find("W 48"), std::string::npos);
  std::vector<Sample> loaded = ReadSamples(stream);
  ASSERT_EQ(loaded.size(), samples.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(loaded[i].worker_id, samples[i].worker_id) << i;
  }
}

TEST(Serialize, MixedWorkerStreamKeepsPerSampleIds) {
  // A merged parallel stream interleaves worker-0 samples (no W token) with tagged ones;
  // the worker id must reset to 0 between lines rather than sticking.
  std::vector<Sample> samples;
  for (uint32_t worker : {0u, 3u, 0u, 1u, 0u}) {
    Sample sample;
    sample.tsc = 500 + samples.size();
    sample.ip = 0x1000010;
    sample.has_registers = true;
    sample.worker_id = worker;
    samples.push_back(sample);
  }
  std::stringstream stream;
  WriteSamples(samples, stream);
  std::vector<Sample> loaded = ReadSamples(stream);
  ASSERT_EQ(loaded.size(), samples.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(loaded[i].worker_id, samples[i].worker_id) << i;
    EXPECT_TRUE(loaded[i].has_registers) << i;
  }
}

TEST(Serialize, SingleWorkerStreamStaysV1) {
  // Pure worker-0 streams keep the v1 header: dumps from single-threaded runs stay
  // byte-compatible with pre-parallel readers.
  std::vector<Sample> samples(3);
  for (size_t i = 0; i < samples.size(); ++i) {
    samples[i].tsc = i;
    samples[i].ip = 0x1000000;
  }
  std::stringstream stream;
  WriteSamples(samples, stream);
  EXPECT_NE(stream.str().find("# dfp samples v1"), std::string::npos);
  EXPECT_EQ(stream.str().find(" W "), std::string::npos);
}

TEST(Serialize, RejectsWorkerTokenInV1Stream) {
  // A v1 stream is single-threaded by definition; a W token means the file was mislabeled or
  // spliced, and the loader must fail cleanly instead of guessing.
  std::stringstream stream("# dfp samples v1\nsample 100 16777217 0 W 2\n");
  EXPECT_THROW(ReadSamples(stream), Error);
  // The same line under a v2 header is fine.
  std::stringstream ok("# dfp samples v2\nsample 100 16777217 0 W 2\n");
  std::vector<Sample> loaded = ReadSamples(ok);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].worker_id, 2u);
}

TEST(Serialize, LocalityRoundTripIsV3) {
  // Samples carrying NUMA node info or steal flags promote the stream to v3; every per-sample
  // combination of node/remote/stolen must survive the round trip independently.
  std::vector<Sample> samples;
  {
    Sample local;  // Node info, local access.
    local.tsc = 10;
    local.ip = 0x1000001;
    local.mem_node = 0;
    samples.push_back(local);
  }
  {
    Sample remote;  // Remote access off worker 3, node 2.
    remote.tsc = 20;
    remote.ip = 0x1000002;
    remote.worker_id = 3;
    remote.mem_node = 2;
    remote.numa_remote = true;
    samples.push_back(remote);
  }
  {
    Sample stolen;  // Stolen morsel, remote access.
    stolen.tsc = 30;
    stolen.ip = 0x1000003;
    stolen.worker_id = 1;
    stolen.mem_node = 63;
    stolen.numa_remote = true;
    stolen.stolen = true;
    samples.push_back(stolen);
  }
  {
    Sample plain;  // No locality info at all: no N/T tokens on its line.
    plain.tsc = 40;
    plain.ip = 0x1000004;
    samples.push_back(plain);
  }
  std::stringstream stream;
  WriteSamples(samples, stream);
  EXPECT_NE(stream.str().find("# dfp samples v3"), std::string::npos);
  EXPECT_NE(stream.str().find("N 2 1"), std::string::npos);
  EXPECT_NE(stream.str().find(" T"), std::string::npos);
  std::vector<Sample> loaded = ReadSamples(stream);
  ASSERT_EQ(loaded.size(), samples.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(loaded[i].worker_id, samples[i].worker_id) << i;
    EXPECT_EQ(loaded[i].mem_node, samples[i].mem_node) << i;
    EXPECT_EQ(loaded[i].numa_remote, samples[i].numa_remote) << i;
    EXPECT_EQ(loaded[i].stolen, samples[i].stolen) << i;
  }
}

TEST(Serialize, WorkerStreamWithoutLocalityStaysV2) {
  // Parallel streams without locality info keep the v2 header, byte-identical to dumps written
  // before the NUMA fields existed.
  std::vector<Sample> samples(2);
  samples[0].tsc = 1;
  samples[0].ip = 0x1000000;
  samples[1].tsc = 2;
  samples[1].ip = 0x1000000;
  samples[1].worker_id = 5;
  std::stringstream stream;
  WriteSamples(samples, stream);
  EXPECT_NE(stream.str().find("# dfp samples v2"), std::string::npos);
  EXPECT_EQ(stream.str().find(" N "), std::string::npos);
  EXPECT_EQ(stream.str().find(" T"), std::string::npos);
  std::vector<Sample> loaded = ReadSamples(stream);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[1].worker_id, 5u);
  EXPECT_EQ(loaded[0].mem_node, kNoNumaNode);
  EXPECT_FALSE(loaded[1].stolen);
}

TEST(Serialize, V2StreamStillParses) {
  // Backward compatibility: a stream written by the v2 serializer (W tokens, no locality) must
  // load under the v3-aware reader with the locality fields at their defaults.
  std::stringstream stream(
      "# dfp samples v2\n"
      "sample 100 16777217 0\n"
      "sample 200 16777218 48879 W 2\n"
      "sample 300 16777219 0 W 7 S 2 33554433 33554434\n");
  std::vector<Sample> loaded = ReadSamples(stream);
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded[1].worker_id, 2u);
  EXPECT_EQ(loaded[2].callstack.size(), 2u);
  for (const Sample& sample : loaded) {
    EXPECT_EQ(sample.mem_node, kNoNumaNode);
    EXPECT_FALSE(sample.numa_remote);
    EXPECT_FALSE(sample.stolen);
  }
}

TEST(Serialize, RejectsLocalityTokensInPreV3Streams) {
  // N/T tokens under a v1 or v2 header prove the header lies about the version: fail cleanly,
  // exactly like W-in-v1.
  std::stringstream v2n("# dfp samples v2\nsample 100 16777217 0 N 1 0\n");
  EXPECT_THROW(ReadSamples(v2n), Error);
  std::stringstream v2t("# dfp samples v2\nsample 100 16777217 0 T\n");
  EXPECT_THROW(ReadSamples(v2t), Error);
  std::stringstream v1n("# dfp samples v1\nsample 100 16777217 0 N 1 0\n");
  EXPECT_THROW(ReadSamples(v1n), Error);
  // The same lines under a v3 header are fine, and v3 accepts W too.
  std::stringstream ok("# dfp samples v3\nsample 100 16777217 0 W 2 N 1 1 T\n");
  std::vector<Sample> loaded = ReadSamples(ok);
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded[0].worker_id, 2u);
  EXPECT_EQ(loaded[0].mem_node, 1);
  EXPECT_TRUE(loaded[0].numa_remote);
  EXPECT_TRUE(loaded[0].stolen);
}

TEST(Serialize, RejectsMalformedLocalityTokens) {
  // Node ids are one byte and the remote flag is 0/1; anything else is malformed, not clamped.
  std::stringstream big_node("# dfp samples v3\nsample 100 16777217 0 N 300 0\n");
  EXPECT_THROW(ReadSamples(big_node), Error);
  std::stringstream bad_remote("# dfp samples v3\nsample 100 16777217 0 N 1 2\n");
  EXPECT_THROW(ReadSamples(bad_remote), Error);
  std::stringstream truncated("# dfp samples v3\nsample 100 16777217 0 N 1\n");
  EXPECT_THROW(ReadSamples(truncated), Error);
}

TEST(Serialize, RejectsMalformedInput) {
  {
    std::stringstream stream("not a header\n");
    EXPECT_THROW(ReadDictionary(stream), Error);
  }
  {
    std::stringstream stream("# dfp tagging dictionary v1\nbogus 1 2\n");
    EXPECT_THROW(ReadDictionary(stream), Error);
  }
  {
    std::stringstream stream("# dfp samples v1\nsample nope\n");
    EXPECT_THROW(ReadSamples(stream), Error);
  }
}

TEST(Serialize, TierAndEventsRoundTripIsV4) {
  // Samples carrying a compilation tier — or a stream carrying sideband events — promote the
  // stream to v4; both must survive the round trip, with events re-interleaved by tsc.
  std::vector<Sample> samples;
  {
    Sample baseline;
    baseline.tsc = 10;
    baseline.ip = 0x1000001;
    baseline.tier = 1;
    samples.push_back(baseline);
  }
  {
    Sample optimized;  // Tier 0 emits no G token even inside a v4 stream.
    optimized.tsc = 30;
    optimized.ip = 0x1000002;
    samples.push_back(optimized);
  }
  std::vector<SampleStreamEvent> events = {{5, "tier 0000000000000001 baseline optimized decided"},
                                           {20, "tier 0000000000000001 baseline optimized swapped"},
                                           {99, "trailing event"}};

  std::stringstream stream;
  WriteSamples(samples, events, stream);
  const std::string text = stream.str();
  EXPECT_NE(text.find("# dfp samples v4"), std::string::npos);
  // Events land before the first sample whose tsc passes them; the trailing one after all.
  EXPECT_LT(text.find("event 5 "), text.find("sample 10"));
  EXPECT_GT(text.find("event 20 "), text.find("sample 10"));
  EXPECT_LT(text.find("event 20 "), text.find("sample 30"));
  EXPECT_GT(text.find("event 99 "), text.find("sample 30"));

  std::vector<SampleStreamEvent> loaded_events;
  std::vector<Sample> loaded = ReadSamples(stream, &loaded_events);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].tier, 1);
  EXPECT_EQ(loaded[1].tier, 0);
  ASSERT_EQ(loaded_events.size(), 3u);
  EXPECT_EQ(loaded_events[0].tsc, 5u);
  EXPECT_EQ(loaded_events[1].text, "tier 0000000000000001 baseline optimized swapped");
  EXPECT_EQ(loaded_events[2].tsc, 99u);
}

TEST(Serialize, TierFreeStreamsKeepTheirOldVersions) {
  // No tier, no events: the two-argument writer must not move old streams to v4.
  std::vector<Sample> samples;
  Sample plain;
  plain.tsc = 100;
  plain.ip = 0x1000001;
  samples.push_back(plain);
  std::stringstream with_events_api;
  WriteSamples(samples, std::vector<SampleStreamEvent>(), with_events_api);
  std::stringstream classic;
  WriteSamples(samples, classic);
  EXPECT_EQ(with_events_api.str(), classic.str());
  EXPECT_NE(classic.str().find("# dfp samples v1"), std::string::npos);
}

TEST(Serialize, RejectsTierAndEventTokensInPreV4Streams) {
  std::stringstream tier_in_v3("# dfp samples v3\nsample 100 16777217 0 G 1\n");
  EXPECT_THROW(ReadSamples(tier_in_v3), Error);
  std::stringstream event_in_v3(
      "# dfp samples v3\nevent 5 tier promoted\nsample 100 16777217 0\n");
  EXPECT_THROW(ReadSamples(event_in_v3), Error);
  // A v4 stream with events needs an event sink: silently dropping sideband data would make
  // offline post-processing lie about what the service logged.
  std::stringstream no_sink("# dfp samples v4\nevent 5 tier promoted\nsample 100 16777217 0\n");
  EXPECT_THROW(ReadSamples(no_sink), Error);
  // Malformed tier payloads are rejected, not truncated.
  std::stringstream wide_tier("# dfp samples v4\nsample 100 16777217 0 G 300\n");
  EXPECT_THROW(ReadSamples(wide_tier), Error);
}

TEST(Serialize, TaskBoundariesRoundTripIsV5) {
  // Task-boundary records promote the stream to v5 and must survive the round trip field for
  // field, written as a block right after the header in the order given.
  std::vector<Sample> samples;
  Sample plain;
  plain.tsc = 500;
  plain.ip = 0x1000001;
  samples.push_back(plain);

  std::vector<TaskBoundary> tasks;
  {
    TaskBoundary host;
    host.start_tsc = 0;
    host.end_tsc = 120;
    host.worker_id = 0;
    host.kind = TaskKind::kHostStep;
    host.step = 0;
    tasks.push_back(host);
  }
  {
    TaskBoundary morsel;
    morsel.start_tsc = 120;
    morsel.end_tsc = 900;
    morsel.worker_id = 3;
    morsel.kind = TaskKind::kMorsel;
    morsel.step = 1;
    morsel.pipeline = 2;
    morsel.morsel_begin = 4096;
    morsel.morsel_end = 8192;
    morsel.stolen = true;
    morsel.instructions = 7000;
    morsel.loads = 1500;
    morsel.l1_misses = 90;
    morsel.l2_misses = 40;
    morsel.l3_misses = 12;
    morsel.remote_dram = 5;
    tasks.push_back(morsel);
  }

  std::stringstream stream;
  WriteSamples(samples, {}, tasks, stream);
  const std::string text = stream.str();
  EXPECT_NE(text.find("# dfp samples v5"), std::string::npos);
  EXPECT_LT(text.find("task 0 120 "), text.find("sample 500"));

  std::vector<SampleStreamEvent> events;
  std::vector<TaskBoundary> loaded;
  std::vector<Sample> reread = ReadSamples(stream, &events, &loaded);
  ASSERT_EQ(reread.size(), 1u);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].kind, TaskKind::kHostStep);
  EXPECT_EQ(loaded[0].pipeline, kNoPipeline);
  EXPECT_EQ(loaded[1].start_tsc, 120u);
  EXPECT_EQ(loaded[1].end_tsc, 900u);
  EXPECT_EQ(loaded[1].worker_id, 3u);
  EXPECT_EQ(loaded[1].kind, TaskKind::kMorsel);
  EXPECT_EQ(loaded[1].step, 1u);
  EXPECT_EQ(loaded[1].pipeline, 2u);
  EXPECT_EQ(loaded[1].morsel_begin, 4096u);
  EXPECT_EQ(loaded[1].morsel_end, 8192u);
  EXPECT_TRUE(loaded[1].stolen);
  EXPECT_EQ(loaded[1].instructions, 7000u);
  EXPECT_EQ(loaded[1].loads, 1500u);
  EXPECT_EQ(loaded[1].l1_misses, 90u);
  EXPECT_EQ(loaded[1].l2_misses, 40u);
  EXPECT_EQ(loaded[1].l3_misses, 12u);
  EXPECT_EQ(loaded[1].remote_dram, 5u);

  // Task-free streams written through the three-argument API stay byte-identical to the
  // classic writer — old dumps never silently become v5.
  std::stringstream with_tasks_api;
  WriteSamples(samples, {}, std::vector<TaskBoundary>(), with_tasks_api);
  std::stringstream classic;
  WriteSamples(samples, classic);
  EXPECT_EQ(with_tasks_api.str(), classic.str());
}

TEST(Serialize, ReoptLinesRoundTripIsV8) {
  // Re-optimization sideband lines promote the stream to v8 and interleave by tsc after any
  // sched lines at the same timestamp (fixed order keeps double-run streams byte-identical).
  std::vector<Sample> samples;
  Sample plain;
  plain.tsc = 500;
  plain.ip = 0x1000001;
  samples.push_back(plain);

  std::vector<SampleStreamEvent> reopt;
  SampleStreamEvent decided;
  decided.tsc = 100;
  decided.text = "decided fp=12ab divergence=4100";
  reopt.push_back(decided);
  SampleStreamEvent kept;
  kept.tsc = 400;
  kept.text = "kept fp=12ab";
  reopt.push_back(kept);

  std::stringstream stream;
  WriteSamples(samples, {}, {}, {}, reopt, stream);
  const std::string text = stream.str();
  EXPECT_NE(text.find("# dfp samples v8"), std::string::npos);
  EXPECT_LT(text.find("reopt 100 decided fp=12ab divergence=4100"), text.find("sample 500"));

  std::vector<SampleStreamEvent> events;
  std::vector<TaskBoundary> tasks;
  std::vector<SampleStreamEvent> sched;
  std::vector<SampleStreamEvent> loaded;
  std::vector<Sample> reread = ReadSamples(stream, &events, &tasks, &sched, &loaded);
  ASSERT_EQ(reread.size(), 1u);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].tsc, 100u);
  EXPECT_EQ(loaded[0].text, "decided fp=12ab divergence=4100");
  EXPECT_EQ(loaded[1].tsc, 400u);
  EXPECT_EQ(loaded[1].text, "kept fp=12ab");

  // Reopt-free streams written through the five-argument API stay byte-identical to the
  // classic writer — old dumps never silently become v8.
  std::stringstream with_reopt_api;
  WriteSamples(samples, {}, {}, {}, std::vector<SampleStreamEvent>(), with_reopt_api);
  std::stringstream classic;
  WriteSamples(samples, classic);
  EXPECT_EQ(with_reopt_api.str(), classic.str());

  // A v8 stream with reopt lines needs a reopt sink, and reopt lines are rejected in pre-v8
  // streams — the same contract as tasks and sched above.
  std::stringstream no_sink("# dfp samples v8\nreopt 100 decided fp=12ab\nsample 500 16777217 0\n");
  EXPECT_THROW(ReadSamples(no_sink, &events, &tasks, &sched), Error);
  std::stringstream pre_v8("# dfp samples v6\nreopt 100 decided fp=12ab\n");
  EXPECT_THROW(ReadSamples(pre_v8, &events, &tasks, &sched, &loaded), Error);
}

TEST(Serialize, RejectsTaskTokensInPreV5StreamsAndNewerVersions) {
  // A task line in a pre-v5 stream is malformed, not a forward-compatible extension.
  std::stringstream task_in_v4(
      "# dfp samples v4\ntask 0 10 0 0 0 4294967295 0 0 0 0 0 0 0 0 0\nsample 100 16777217 0\n");
  std::vector<SampleStreamEvent> events;
  std::vector<TaskBoundary> tasks;
  EXPECT_THROW(ReadSamples(task_in_v4, &events, &tasks), Error);

  // A v5 stream with tasks needs a task sink: dropping the schedule silently would break the
  // offline DAG reconstruction contract.
  std::stringstream no_sink(
      "# dfp samples v5\ntask 0 10 0 0 0 4294967295 0 0 0 0 0 0 0 0 0\nsample 100 16777217 0\n");
  EXPECT_THROW(ReadSamples(no_sink), Error);

  // Malformed task payloads are rejected: unknown kind, out-of-range stolen flag, end < start.
  std::stringstream bad_kind(
      "# dfp samples v5\ntask 0 10 0 9 0 4294967295 0 0 0 0 0 0 0 0 0\n");
  EXPECT_THROW(ReadSamples(bad_kind, &events, &tasks), Error);
  std::stringstream bad_stolen(
      "# dfp samples v5\ntask 0 10 0 1 0 0 0 64 2 0 0 0 0 0 0\n");
  EXPECT_THROW(ReadSamples(bad_stolen, &events, &tasks), Error);
  std::stringstream backwards(
      "# dfp samples v5\ntask 10 5 0 1 0 0 0 64 0 0 0 0 0 0 0\n");
  EXPECT_THROW(ReadSamples(backwards, &events, &tasks), Error);

  // A v6 stream with sched lines needs a sched sink — same contract as tasks above.
  std::stringstream no_sched_sink(
      "# dfp samples v6\nsched 100 repair 0 applied\nsample 100 16777217 0\n");
  EXPECT_THROW(ReadSamples(no_sched_sink, &events, &tasks), Error);

  // A stream from a newer build is rejected with a clear upgrade message, not a parse error.
  std::stringstream v9("# dfp samples v9\nsample 100 16777217 0\n");
  try {
    ReadSamples(v9, &events, &tasks);
    FAIL() << "v9 stream must be rejected";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("newer than this build"), std::string::npos)
        << e.what();
  }
}

TEST(Serialize, OfflineResolutionMatchesLiveSession) {
  Database db;
  {
    Random rng(3);
    TableBuilder products = db.CreateTableBuilder(
        {"products", {{"id", ColumnType::kInt64}, {"category", ColumnType::kString}}});
    for (int i = 0; i < 50; ++i) {
      products.BeginRow();
      products.SetI64(0, i);
      products.SetString(1, i % 2 == 0 ? "Chip" : "Other");
    }
    db.AddTable(products.Finish());
    TableBuilder sales = db.CreateTableBuilder(
        {"sales", {{"id", ColumnType::kInt64}, {"price", ColumnType::kDecimal}}});
    for (int i = 0; i < 5000; ++i) {
      sales.BeginRow();
      sales.SetI64(0, rng.Uniform(0, 49));
      sales.SetDecimal(1, rng.Uniform(1, 1000));
    }
    db.AddTable(sales.Finish());
  }
  QueryEngine engine(&db);
  ProfilingConfig config;
  config.period = 200;
  ProfilingSession live(config);
  PlanBuilder products = PlanBuilder::Scan(db.table("products"));
  PlanBuilder sales = PlanBuilder::Scan(db.table("sales"));
  sales.JoinWith(std::move(products), {"id"}, {"id"}, {"category"});
  sales.GroupByKeys({"category"},
                    NamedExprs("total", MakeAggregate(AggOp::kSum, sales.Col("price"))));
  CompiledQuery query = engine.Compile(sales.Build(), &live, "offline");
  engine.Execute(query);

  // Serialize the meta-data and samples, then resolve in a fresh session.
  std::stringstream dict_file;
  WriteDictionary(live.dictionary(), dict_file);
  std::stringstream sample_file;
  WriteSamples(live.samples(), sample_file);

  ProfilingSession offline(config);
  offline.LoadForPostProcessing(ReadDictionary(dict_file), ReadSamples(sample_file),
                                live.execution_cycles());

  live.Resolve(db.code_map());
  offline.Resolve(db.code_map());
  ASSERT_EQ(live.resolved().size(), offline.resolved().size());
  for (size_t i = 0; i < live.resolved().size(); ++i) {
    EXPECT_EQ(live.resolved()[i].op, offline.resolved()[i].op) << i;
    EXPECT_EQ(live.resolved()[i].task, offline.resolved()[i].task) << i;
    EXPECT_EQ(static_cast<int>(live.resolved()[i].category),
              static_cast<int>(offline.resolved()[i].category))
        << i;
  }
}

}  // namespace
}  // namespace dfp
