#include <gtest/gtest.h>

#include "src/profiling/abstraction_tracker.h"
#include "src/profiling/tagging_dictionary.h"

namespace dfp {
namespace {

TEST(AbstractionTracker, StackDiscipline) {
  AbstractionTracker<uint32_t> tracker;
  EXPECT_FALSE(tracker.HasActive());
  tracker.Push(1);
  tracker.Push(2);
  EXPECT_EQ(tracker.Active(), 2u);
  tracker.Pop();
  EXPECT_EQ(tracker.Active(), 1u);
  {
    TrackerScope<uint32_t> scope(&tracker, 9);
    EXPECT_EQ(tracker.Active(), 9u);
  }
  EXPECT_EQ(tracker.Active(), 1u);
}

TEST(TaggingDictionary, LogALinksTasksToOperators) {
  TaggingDictionary dict;
  TaskId scan = dict.AddTask(3, "scan");
  TaskId probe = dict.AddTask(7, "probe");
  EXPECT_EQ(dict.OperatorOf(scan), 3u);
  EXPECT_EQ(dict.OperatorOf(probe), 7u);
  EXPECT_EQ(dict.task(probe).name, "probe");
  EXPECT_EQ(dict.log_a_entries(), 2u);
}

TEST(TaggingDictionary, LogBLinksInstructionsToTasks) {
  TaggingDictionary dict;
  TaskId scan = dict.AddTask(0, "scan");
  dict.LinkInstr(100, scan);
  dict.LinkInstr(101, scan);
  ASSERT_NE(dict.TasksOf(100), nullptr);
  EXPECT_EQ(dict.TasksOf(100)->front(), scan);
  EXPECT_EQ(dict.TasksOf(999), nullptr);
  EXPECT_EQ(dict.log_b_entries(), 2u);
}

TEST(TaggingDictionary, RemoveDropsEntries) {
  TaggingDictionary dict;
  TaskId task = dict.AddTask(0, "t");
  dict.LinkInstr(5, task);
  dict.OnRemove(5);
  EXPECT_EQ(dict.TasksOf(5), nullptr);
}

TEST(TaggingDictionary, AbsorbMergesOwners) {
  TaggingDictionary dict;
  TaskId a = dict.AddTask(0, "a");
  TaskId b = dict.AddTask(1, "b");
  dict.LinkInstr(10, a);
  dict.LinkInstr(11, b);
  dict.OnAbsorb(10, 11);  // Instruction 10 now serves both tasks.
  ASSERT_NE(dict.TasksOf(10), nullptr);
  EXPECT_EQ(dict.TasksOf(10)->size(), 2u);
  // Absorbing twice does not duplicate owners.
  dict.OnAbsorb(10, 11);
  EXPECT_EQ(dict.TasksOf(10)->size(), 2u);
}

TEST(TaggingDictionary, AbsorbOfSameTaskKeepsSingleOwner) {
  TaggingDictionary dict;
  TaskId a = dict.AddTask(0, "a");
  dict.LinkInstr(10, a);
  dict.LinkInstr(11, a);
  dict.OnAbsorb(10, 11);
  EXPECT_EQ(dict.TasksOf(10)->size(), 1u);
}

TEST(TaggingDictionary, ByteAccounting) {
  TaggingDictionary dict;
  TaskId task = dict.AddTask(0, "scan");
  for (uint32_t i = 0; i < 100; ++i) {
    dict.LinkInstr(i, task);
  }
  // ~8 bytes per Log B pair plus the Log A row.
  EXPECT_GE(dict.ApproxBytes(), 800u);
  EXPECT_LE(dict.ApproxBytes(), 1000u);
}

}  // namespace
}  // namespace dfp
