// Multi-level tag packing (paper Section 4.2.5): the operator tag rides in the upper half of
// the tag register, so runtime-code samples resolve their operator without consulting Log A.
#include <gtest/gtest.h>

#include "src/engine/query_engine.h"
#include "src/plan/builder.h"
#include "src/profiling/validation.h"
#include "src/util/random.h"

namespace dfp {
namespace {

class PackedTagsTest : public ::testing::Test {
 protected:
  PackedTagsTest() : engine(&db) {
    Random rng(7);
    TableBuilder dims = db.CreateTableBuilder({"dims", {{"id", ColumnType::kInt64}}});
    for (int i = 0; i < 100; ++i) {
      dims.BeginRow();
      dims.SetI64(0, i);
    }
    db.AddTable(dims.Finish());
    TableBuilder facts = db.CreateTableBuilder(
        {"facts", {{"id", ColumnType::kInt64}, {"v", ColumnType::kInt64}}});
    for (int i = 0; i < 10000; ++i) {
      facts.BeginRow();
      facts.SetI64(0, rng.Uniform(0, 99));
      facts.SetI64(1, rng.Uniform(0, 1000));
    }
    db.AddTable(facts.Finish());
  }

  PhysicalOpPtr MakePlan() {
    PlanBuilder dims = PlanBuilder::Scan(db.table("dims"));
    PlanBuilder facts = PlanBuilder::Scan(db.table("facts"));
    facts.JoinWith(std::move(dims), {"id"}, {"id"}, {}, JoinType::kInner, "TheJoin");
    facts.GroupByKeys({"id"}, NamedExprs("s", MakeAggregate(AggOp::kSum, facts.Col("v"))),
                      "TheGroupBy");
    return facts.Build();
  }

  Database db;
  QueryEngine engine;
};

TEST_F(PackedTagsTest, PackedResolutionMatchesLogA) {
  ProfilingConfig config;
  config.period = 150;
  config.packed_tags = true;
  ProfilingSession session(config);
  CompiledQuery query = engine.Compile(MakePlan(), &session, "packed");
  Result packed_result = engine.Execute(query);
  session.Resolve(db.code_map());

  // Every via-tag sample's operator (from the upper chunk) must agree with Log A.
  size_t checked = 0;
  for (const ResolvedSample& sample : session.resolved()) {
    if (sample.via_tag && sample.task != kNoTask) {
      EXPECT_EQ(sample.op, session.dictionary().OperatorOf(sample.task));
      ++checked;
    }
  }
  EXPECT_GT(checked, 10u);

  // Results and per-operator attribution identical to the unpacked mode.
  ProfilingConfig unpacked_config;
  unpacked_config.period = 150;
  ProfilingSession unpacked(unpacked_config);
  CompiledQuery unpacked_query = engine.Compile(MakePlan(), &unpacked, "unpacked");
  Result unpacked_result = engine.Execute(unpacked_query);
  unpacked.Resolve(db.code_map());
  std::string diff;
  EXPECT_TRUE(Result::Equivalent(packed_result, unpacked_result, false, &diff)) << diff;
  AttributionStats a = session.Stats();
  AttributionStats b = unpacked.Stats();
  EXPECT_EQ(a.operator_samples + a.kernel_samples + a.unattributed, a.total);
  // Both attribute essentially everything.
  EXPECT_GT(static_cast<double>(a.operator_samples) / static_cast<double>(a.total), 0.9);
  EXPECT_GT(static_cast<double>(b.operator_samples) / static_cast<double>(b.total), 0.9);
}

TEST_F(PackedTagsTest, ValidationModeStillCleanWithPackedTags) {
  ProfilingConfig config;
  config.period = 211;
  config.packed_tags = true;
  config.tag_all_instructions = true;
  ProfilingSession session(config);
  CompiledQuery query = engine.Compile(MakePlan(), &session, "packed_validate");
  engine.Execute(query);
  session.Resolve(db.code_map());
  // Validation tags are task-only; the cross-check masks the task chunk, so packing must not
  // introduce mismatches.
  ValidationReport report = CrossCheckAttribution(session, db.code_map());
  EXPECT_EQ(report.mismatches, 0u);
}

}  // namespace
}  // namespace dfp
