// Integration tests of Tailored Profiling: compile the paper's example query with a session,
// execute with sampling, and check sample attribution through all abstraction levels.
#include <gtest/gtest.h>

#include <map>

#include "src/engine/query_engine.h"
#include "src/plan/builder.h"
#include "src/profiling/validation.h"
#include "src/util/decimal.h"
#include "src/util/random.h"

namespace dfp {
namespace {

class ProfilingTest : public ::testing::Test {
 protected:
  ProfilingTest() : db(SmallConfig()), engine(&db) {
    Random rng(23);
    {
      TableBuilder products = db.CreateTableBuilder(
          {"products", {{"id", ColumnType::kInt64}, {"category", ColumnType::kString}}});
      for (int i = 0; i < 500; ++i) {
        products.BeginRow();
        products.SetI64(0, i);
        products.SetString(1, i % 3 == 0 ? "Chip" : "Other");
      }
      db.AddTable(products.Finish());
    }
    {
      TableBuilder sales = db.CreateTableBuilder({"sales",
                                                  {{"id", ColumnType::kInt64},
                                                   {"price", ColumnType::kDecimal},
                                                   {"vat_factor", ColumnType::kDecimal},
                                                   {"prod_costs", ColumnType::kDecimal}}});
      for (int i = 0; i < 20000; ++i) {
        sales.BeginRow();
        sales.SetI64(0, rng.Uniform(0, 499));
        sales.SetDecimal(1, rng.Uniform(100, 100000));
        sales.SetDecimal(2, rng.Uniform(100, 125));
        sales.SetDecimal(3, rng.Uniform(100, 5000));
      }
      db.AddTable(sales.Finish());
    }
  }

  static DatabaseConfig SmallConfig() {
    DatabaseConfig config;
    config.columns_bytes = 16ull << 20;
    config.strings_bytes = 1ull << 20;
    config.hashtables_bytes = 32ull << 20;
    config.output_bytes = 32ull << 20;
    return config;
  }

  // The paper's Figure 3 query.
  PhysicalOpPtr MakePaperPlan() {
    PlanBuilder products = PlanBuilder::Scan(db.table("products"));
    products.FilterBy(MakeBinary(
        BinOp::kEq, products.Col("category"),
        MakeLiteral(ColumnType::kString, static_cast<int64_t>(db.strings().Intern("Chip")))));
    PlanBuilder sales = PlanBuilder::Scan(db.table("sales"));
    sales.JoinWith(std::move(products), {"id"}, {"id"}, {}, JoinType::kInner, "HashJoin");
    ExprPtr ratio =
        MakeBinary(BinOp::kDiv,
                   MakeBinary(BinOp::kDiv, sales.Col("price"), sales.Col("vat_factor")),
                   sales.Col("prod_costs"));
    sales.GroupByKeys({"id"}, NamedExprs("r", MakeAggregate(AggOp::kAvg, std::move(ratio))),
                      "GroupBy s.id");
    return sales.Build();
  }

  Database db;
  QueryEngine engine;
};

TEST_F(ProfilingTest, RegisterTaggingAttributesNearlyEverything) {
  ProfilingConfig config;
  config.period = 500;
  ProfilingSession session(config);
  CompiledQuery query = engine.Compile(MakePaperPlan(), &session, "paper");
  engine.Execute(query);
  session.Resolve(db.code_map());

  AttributionStats stats = session.Stats();
  ASSERT_GT(stats.total, 100u);
  // The paper reports 98% attribution (operators + kernel); we should be in that regime.
  double attributed = static_cast<double>(stats.operator_samples + stats.kernel_samples) /
                      static_cast<double>(stats.total);
  EXPECT_GT(attributed, 0.9);
  EXPECT_GT(stats.operator_samples, stats.kernel_samples);
  // Samples inside rt_ht_insert were disambiguated by the tag register.
  EXPECT_GT(stats.via_tag, 0u);
}

TEST_F(ProfilingTest, OperatorCostsMatchExpectations) {
  ProfilingConfig config;
  config.period = 500;
  ProfilingSession session(config);
  CompiledQuery query = engine.Compile(MakePaperPlan(), &session, "paper");
  engine.Execute(query);
  session.Resolve(db.code_map());

  std::map<OperatorId, uint64_t> by_operator;
  for (const ResolvedSample& sample : session.resolved()) {
    if (sample.category == ResolvedSample::Category::kOperator) {
      by_operator[sample.op] += 1;
    }
  }
  // Locate operators by label.
  std::map<std::string, OperatorId> ids;
  for (PhysicalOp* op : PlanOperators(*query.plan)) {
    ids[op->label] = op->id;
  }
  uint64_t groupby = by_operator[ids.at("GroupBy s.id")];
  uint64_t join = by_operator[ids.at("HashJoin")];
  uint64_t scan_products = by_operator[ids.at("TableScan products")];
  // The aggregation (with its divisions) and the join dominate; the tiny filtered scan is cheap.
  EXPECT_GT(groupby, scan_products);
  EXPECT_GT(join, scan_products);
  EXPECT_GT(groupby + join, (scan_products + by_operator[ids.at("TableScan sales")]) / 2);
}

TEST_F(ProfilingTest, CallStackSamplingAttributesSharedCode) {
  ProfilingConfig config;
  config.period = 500;
  config.attribution = AttributionMode::kCallStack;
  ProfilingSession session(config);
  CompiledQuery query = engine.Compile(MakePaperPlan(), &session, "paper_cs");
  engine.Execute(query);
  session.Resolve(db.code_map());
  AttributionStats stats = session.Stats();
  EXPECT_GT(stats.via_callstack, 0u);
  EXPECT_EQ(stats.via_tag, 0u);
  double attributed = static_cast<double>(stats.operator_samples + stats.kernel_samples) /
                      static_cast<double>(stats.total);
  EXPECT_GT(attributed, 0.9);
}

TEST_F(ProfilingTest, CallStackSamplingCostsMoreThanRegisterTagging) {
  auto run = [&](AttributionMode mode) {
    ProfilingConfig config;
    config.period = 2000;
    config.attribution = mode;
    ProfilingSession session(config);
    CompiledQuery query = engine.Compile(MakePaperPlan(), &session, "overhead");
    engine.Execute(query);
    return session.execution_cycles();
  };
  uint64_t tagging = run(AttributionMode::kRegisterTagging);
  uint64_t callstack = run(AttributionMode::kCallStack);
  EXPECT_GT(callstack, tagging + tagging / 2);  // Order-of-magnitude more per sample.
}

TEST_F(ProfilingTest, UnattributedModeLeavesSharedCodeUnresolved) {
  ProfilingConfig config;
  config.period = 200;
  config.attribution = AttributionMode::kNone;
  ProfilingSession session(config);
  CompiledQuery query = engine.Compile(MakePaperPlan(), &session, "none");
  engine.Execute(query);
  session.Resolve(db.code_map());
  // Runtime-segment samples stay unattributed without tags or stacks.
  bool saw_unattributed_runtime = false;
  for (const ResolvedSample& sample : session.resolved()) {
    const CodeSegment* segment = db.code_map().FindByIp(sample.ip);
    if (segment != nullptr && segment->kind == SegmentKind::kRuntime) {
      EXPECT_EQ(sample.category, ResolvedSample::Category::kUnattributed);
      saw_unattributed_runtime = true;
    }
  }
  EXPECT_TRUE(saw_unattributed_runtime);
}

TEST_F(ProfilingTest, ValidationModeHasZeroMismatches) {
  ProfilingConfig config;
  config.period = 197;  // Odd period: samples spread across all code.
  config.tag_all_instructions = true;
  ProfilingSession session(config);
  CompiledQuery query = engine.Compile(MakePaperPlan(), &session, "validate");
  Result tagged_result = engine.Execute(query);
  session.Resolve(db.code_map());

  ValidationReport report = CrossCheckAttribution(session, db.code_map());
  EXPECT_GT(report.checked, 100u);
  EXPECT_EQ(report.mismatches, 0u);

  // Validation tagging must not change results.
  CompiledQuery plain = engine.Compile(MakePaperPlan(), nullptr, "plain");
  Result plain_result = engine.Execute(plain);
  std::string diff;
  EXPECT_TRUE(Result::Equivalent(tagged_result, plain_result, /*ordered=*/false, &diff)) << diff;
}

TEST_F(ProfilingTest, TimestampsAreMonotonicAndPeriodic) {
  ProfilingConfig config;
  config.period = 5000;
  ProfilingSession session(config);
  CompiledQuery query = engine.Compile(MakePaperPlan(), &session, "tsc");
  engine.Execute(query);
  const std::vector<Sample>& samples = session.samples();
  ASSERT_GT(samples.size(), 20u);
  uint64_t sum_delta = 0;
  for (size_t i = 1; i < samples.size(); ++i) {
    EXPECT_GE(samples[i].tsc, samples[i - 1].tsc);
    sum_delta += samples[i].tsc - samples[i - 1].tsc;
  }
  // Mean TSC delta tracks the sampling period (instructions ~ cycles within a small factor
  // because of memory latencies and the per-sample recording cost).
  double mean = static_cast<double>(sum_delta) / static_cast<double>(samples.size() - 1);
  EXPECT_GT(mean, 0.8 * 5000);
  EXPECT_LT(mean, 12.0 * 5000);
}

TEST_F(ProfilingTest, MemoryEventSamplesCarryPlausibleAddresses) {
  ProfilingConfig config;
  config.event = PmuEvent::kLoads;
  config.period = 200;
  config.capture_address = true;
  ProfilingSession session(config);
  CompiledQuery query = engine.Compile(MakePaperPlan(), &session, "mem");
  engine.Execute(query);
  session.Resolve(db.code_map());
  size_t with_address = 0;
  for (const ResolvedSample& sample : session.resolved()) {
    if (sample.addr != 0) {
      ++with_address;
      const MemRegion* region = db.mem().FindRegion(sample.addr);
      ASSERT_NE(region, nullptr) << sample.addr;
      EXPECT_TRUE(region->name == "columns" || region->name == "hashtables" ||
                  region->name == "state" || region->name == "output" ||
                  region->name == "strings")
          << region->name;
    }
  }
  EXPECT_GT(with_address, 50u);
}

TEST_F(ProfilingTest, ProfilingDoesNotChangeResults) {
  CompiledQuery plain = engine.Compile(MakePaperPlan(), nullptr, "plain");
  Result expected = engine.Execute(plain);
  for (AttributionMode mode :
       {AttributionMode::kRegisterTagging, AttributionMode::kCallStack, AttributionMode::kNone}) {
    ProfilingConfig config;
    config.period = 300;
    config.attribution = mode;
    ProfilingSession session(config);
    CompiledQuery query = engine.Compile(MakePaperPlan(), &session, "modes");
    Result result = engine.Execute(query);
    std::string diff;
    EXPECT_TRUE(Result::Equivalent(result, expected, /*ordered=*/false, &diff)) << diff;
  }
}

TEST_F(ProfilingTest, DictionaryCoversAllGeneratedInstructions) {
  ProfilingConfig config;
  ProfilingSession session(config);
  CompiledQuery query = engine.Compile(MakePaperPlan(), &session, "coverage");
  for (const PipelineArtifact& artifact : query.pipelines) {
    const CodeSegment& segment = db.code_map().segment(artifact.segment);
    for (const MInstr& instr : segment.code) {
      EXPECT_NE(session.dictionary().TasksOf(instr.ir_id), nullptr)
          << "uncovered instruction in " << segment.name;
    }
  }
}

}  // namespace
}  // namespace dfp
