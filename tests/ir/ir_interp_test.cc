#include <gtest/gtest.h>

#include "src/ir/builder.h"
#include "src/ir/interp.h"
#include "src/util/hash.h"

namespace dfp {
namespace {

// Builds: f(a, b) = (a + b) * 2 - a / b  (b != 0).
IrFunction BuildArithmetic() {
  IrFunction fn("arith", 2);
  IrIdAllocator ids;
  IrBuilder b(&fn, &ids);
  b.SetInsertPoint(b.CreateBlock("entry"));
  uint32_t sum = b.Add(Value::Reg(0), Value::Reg(1));
  uint32_t twice = b.Mul(Value::Reg(sum), Value::Imm(2));
  uint32_t quot = b.Div(Value::Reg(0), Value::Reg(1));
  uint32_t result = b.Sub(Value::Reg(twice), Value::Reg(quot));
  b.Ret(Value::Reg(result));
  return fn;
}

TEST(IrInterp, Arithmetic) {
  IrFunction fn = BuildArithmetic();
  VMem mem(1 << 16);
  uint64_t args[] = {10, 3};
  EXPECT_EQ(InterpretIr(fn, args, mem), static_cast<uint64_t>((10 + 3) * 2 - 10 / 3));
}

TEST(IrInterp, LoopSumsArray) {
  // f(base, n) = sum of n int64 values at base.
  IrFunction fn("sum", 2);
  IrIdAllocator ids;
  IrBuilder b(&fn, &ids);
  uint32_t entry = b.CreateBlock("entry");
  uint32_t head = b.CreateBlock("head");
  uint32_t body = b.CreateBlock("body");
  uint32_t exit = b.CreateBlock("exit");

  b.SetInsertPoint(entry);
  uint32_t i = b.Const(0);
  uint32_t acc = b.Const(0);
  b.Br(head);

  b.SetInsertPoint(head);
  uint32_t cond = b.CmpLt(Value::Reg(i), Value::Reg(1));
  b.CondBr(Value::Reg(cond), body, exit);

  b.SetInsertPoint(body);
  uint32_t offset = b.Mul(Value::Reg(i), Value::Imm(8));
  uint32_t addr = b.Add(Value::Reg(0), Value::Reg(offset));
  uint32_t value = b.Load(Opcode::kLoad8, Value::Reg(addr));
  // Non-SSA: write back into the accumulator and counter registers.
  b.Assign(acc, Opcode::kAdd, Value::Reg(acc), Value::Reg(value));
  b.Assign(i, Opcode::kAdd, Value::Reg(i), Value::Imm(1));
  b.Br(head);

  b.SetInsertPoint(exit);
  b.Ret(Value::Reg(acc));

  VMem mem(1 << 16);
  uint32_t region = mem.CreateRegion("data", 4096);
  VAddr base = mem.Alloc(region, 10 * 8);
  uint64_t expected = 0;
  for (uint64_t k = 0; k < 10; ++k) {
    mem.Write<uint64_t>(base + k * 8, k * k);
    expected += k * k;
  }
  uint64_t args[] = {base, 10};
  EXPECT_EQ(InterpretIr(fn, args, mem), expected);
}

TEST(IrInterp, CallsGoThroughEnvironment) {
  IrFunction fn("caller", 1);
  IrIdAllocator ids;
  IrBuilder b(&fn, &ids);
  b.SetInsertPoint(b.CreateBlock("entry"));
  uint32_t doubled = b.Call(7, {Value::Reg(0), Value::Imm(2)}, /*has_result=*/true);
  b.Ret(Value::Reg(doubled));

  VMem mem(1 << 16);
  IrInterpEnv env;
  env.call = [](uint32_t callee, std::span<const uint64_t> args) -> uint64_t {
    EXPECT_EQ(callee, 7u);
    return args[0] * args[1];
  };
  uint64_t args[] = {21};
  EXPECT_EQ(InterpretIr(fn, args, mem, &env), 42u);
}

TEST(IrInterp, TagRegisterSemantics) {
  IrFunction fn("tags", 0);
  IrIdAllocator ids;
  IrBuilder b(&fn, &ids);
  b.SetInsertPoint(b.CreateBlock("entry"));
  uint32_t saved = b.GetTag();
  b.SetTag(Value::Imm(42));
  uint32_t current = b.GetTag();
  b.SetTag(Value::Reg(saved));
  b.Ret(Value::Reg(current));
  VMem mem(1 << 16);
  IrInterpEnv env;
  env.tag = 7;
  EXPECT_EQ(InterpretIr(fn, {}, mem, &env), 42u);
  EXPECT_EQ(env.tag, 7u);  // Restored.
}

TEST(IrInterp, Crc32MatchesHost) {
  IrFunction fn("crc", 1);
  IrIdAllocator ids;
  IrBuilder b(&fn, &ids);
  b.SetInsertPoint(b.CreateBlock("entry"));
  uint32_t hash = b.EmitHash(Value::Reg(0));
  b.Ret(Value::Reg(hash));
  VMem mem(1 << 16);
  for (uint64_t key : {0ull, 1ull, 123456789ull, ~0ull}) {
    uint64_t args[] = {key};
    EXPECT_EQ(InterpretIr(fn, args, mem), HashKey(key)) << key;
  }
}

TEST(IrInterp, SelectAndNarrowMemory) {
  IrFunction fn("narrow", 2);
  IrIdAllocator ids;
  IrBuilder b(&fn, &ids);
  b.SetInsertPoint(b.CreateBlock("entry"));
  // Store a 32-bit negative value, reload sign-extended, select on comparison with arg1.
  b.Store(Opcode::kStore4, Value::Imm(-5), Value::Reg(0));
  uint32_t loaded = b.Load(Opcode::kLoad4, Value::Reg(0));
  uint32_t is_neg = b.CmpLt(Value::Reg(loaded), Value::Imm(0));
  uint32_t result = b.Select(Value::Reg(is_neg), Value::Reg(1), Value::Imm(0));
  b.Ret(Value::Reg(result));
  VMem mem(1 << 16);
  uint32_t region = mem.CreateRegion("data", 64);
  VAddr addr = mem.Alloc(region, 8);
  uint64_t args[] = {addr, 99};
  EXPECT_EQ(InterpretIr(fn, args, mem), 99u);
  EXPECT_EQ(mem.Read<int32_t>(addr), -5);
}

}  // namespace
}  // namespace dfp
