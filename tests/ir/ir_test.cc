#include <gtest/gtest.h>

#include "src/ir/builder.h"
#include "src/ir/printer.h"
#include "src/ir/verifier.h"

namespace dfp {
namespace {

TEST(IrBuilder, AssignsUniqueIdsAndRegisters) {
  IrFunction fn("f", 1);
  IrIdAllocator ids;
  IrBuilder b(&fn, &ids);
  b.SetInsertPoint(b.CreateBlock("entry"));
  uint32_t c = b.Const(7);
  uint32_t sum = b.Add(Value::Reg(0), Value::Reg(c));
  b.Ret(Value::Reg(sum));
  EXPECT_EQ(fn.InstrCount(), 3u);
  EXPECT_EQ(ids.count(), 3u);
  EXPECT_NE(c, sum);
  EXPECT_GT(fn.next_vreg(), 2u);
  EXPECT_TRUE(VerifyFunction(fn).empty());
}

TEST(IrBuilder, ObserverSeesEveryInstruction) {
  IrFunction fn("f", 0);
  IrIdAllocator ids;
  IrBuilder b(&fn, &ids);
  int observed = 0;
  b.SetObserver([&](const IrInstr&) { ++observed; });
  b.SetInsertPoint(b.CreateBlock("entry"));
  b.Const(1);
  b.Const(2);
  b.Ret();
  EXPECT_EQ(observed, 3);
}

TEST(IrBuilder, EmitHashMatchesHostHash) {
  // Structural check: the emitted sequence is crc32, crc32, rotr, xor, mul.
  IrFunction fn("f", 1);
  IrIdAllocator ids;
  IrBuilder b(&fn, &ids);
  b.SetInsertPoint(b.CreateBlock("entry"));
  uint32_t hash = b.EmitHash(Value::Reg(0));
  b.Ret(Value::Reg(hash));
  const auto& instrs = fn.block(0).instrs;
  ASSERT_EQ(instrs.size(), 6u);
  EXPECT_EQ(instrs[0].op, Opcode::kCrc32);
  EXPECT_EQ(instrs[1].op, Opcode::kCrc32);
  EXPECT_EQ(instrs[2].op, Opcode::kRotr);
  EXPECT_EQ(instrs[3].op, Opcode::kXor);
  EXPECT_EQ(instrs[4].op, Opcode::kMul);
}

TEST(IrVerifier, DetectsMissingTerminator) {
  IrFunction fn("f", 0);
  IrIdAllocator ids;
  IrBuilder b(&fn, &ids);
  b.SetInsertPoint(b.CreateBlock("entry"));
  b.Const(1);
  EXPECT_FALSE(VerifyFunction(fn).empty());
}

TEST(IrVerifier, DetectsBadBranchTarget) {
  IrFunction fn("f", 0);
  IrIdAllocator ids;
  IrBuilder b(&fn, &ids);
  b.SetInsertPoint(b.CreateBlock("entry"));
  b.Br(0);
  fn.block(0).instrs.back().target0 = 99;
  EXPECT_FALSE(VerifyFunction(fn).empty());
}

TEST(IrVerifier, DetectsMachineOnlyOpcode) {
  IrFunction fn("f", 0);
  IrIdAllocator ids;
  IrBuilder b(&fn, &ids);
  b.SetInsertPoint(b.CreateBlock("entry"));
  b.Ret();
  IrInstr bad;
  bad.op = Opcode::kLoadSpill;
  bad.dst = fn.NewReg();
  bad.id = ids.Next();
  fn.block(0).instrs.insert(fn.block(0).instrs.begin(), bad);
  EXPECT_FALSE(VerifyFunction(fn).empty());
}

TEST(IrVerifier, DetectsDuplicateIds) {
  IrFunction fn("f", 0);
  IrIdAllocator ids;
  IrBuilder b(&fn, &ids);
  b.SetInsertPoint(b.CreateBlock("entry"));
  b.Const(1);
  b.Const(2);
  b.Ret();
  fn.block(0).instrs[1].id = fn.block(0).instrs[0].id;
  EXPECT_FALSE(VerifyFunction(fn).empty());
}

TEST(IrPrinter, ListingHasLinePerInstruction) {
  IrFunction fn("pipeline", 1);
  IrIdAllocator ids;
  IrBuilder b(&fn, &ids);
  uint32_t entry = b.CreateBlock("entry");
  uint32_t exit = b.CreateBlock("exit");
  b.SetInsertPoint(entry);
  uint32_t v = b.Load(Opcode::kLoad4, Value::Reg(0), 8);
  b.CondBr(Value::Reg(v), exit, exit);
  b.SetInsertPoint(exit);
  b.Ret();
  IrListing listing = PrintFunction(fn);
  std::string text = listing.ToString();
  EXPECT_NE(text.find("func pipeline"), std::string::npos);
  EXPECT_NE(text.find("load4"), std::string::npos);
  EXPECT_NE(text.find("condbr"), std::string::npos);
  EXPECT_NE(text.find("entry:"), std::string::npos);
  // Each instruction line carries its instruction id.
  int instr_lines = 0;
  for (const IrListingLine& line : listing.lines) {
    if (line.instr_id != kNoIrId) {
      ++instr_lines;
    }
  }
  EXPECT_EQ(instr_lines, 3);
}

TEST(IrPrinter, CommentsAppearInListing) {
  IrFunction fn("f", 1);
  IrIdAllocator ids;
  IrBuilder b(&fn, &ids);
  b.SetInsertPoint(b.CreateBlock("entry"));
  b.Load(Opcode::kLoad8, Value::Reg(0), 0, "directory lookup");
  b.Ret();
  EXPECT_NE(PrintFunction(fn).ToString().find("directory lookup"), std::string::npos);
}

}  // namespace
}  // namespace dfp
