#include <gtest/gtest.h>

#include <set>

#include "src/ir/builder.h"
#include "tests/testing/vcpu_harness.h"

namespace dfp {
namespace {

// Simple counted loop of `n` iterations with one load per iteration.
IrFunction CountedLoop() {
  IrFunction fn("loop", 2);  // (base, n)
  IrIdAllocator ids;
  IrBuilder b(&fn, &ids);
  uint32_t entry = b.CreateBlock("entry");
  uint32_t head = b.CreateBlock("head");
  uint32_t body = b.CreateBlock("body");
  uint32_t exit = b.CreateBlock("exit");
  b.SetInsertPoint(entry);
  uint32_t i = b.Const(0);
  uint32_t acc = b.Const(0);
  b.Br(head);
  b.SetInsertPoint(head);
  uint32_t more = b.CmpLt(Value::Reg(i), Value::Reg(1));
  b.CondBr(Value::Reg(more), body, exit);
  b.SetInsertPoint(body);
  uint32_t off = b.Binary(Opcode::kShl, Value::Reg(i), Value::Imm(3));
  uint32_t addr = b.Add(Value::Reg(0), Value::Reg(off));
  uint32_t v = b.Load(Opcode::kLoad8, Value::Reg(addr));
  b.Assign(acc, Opcode::kAdd, Value::Reg(acc), Value::Reg(v));
  b.Assign(i, Opcode::kAdd, Value::Reg(i), Value::Imm(1));
  b.Br(head);
  b.SetInsertPoint(exit);
  b.Ret(Value::Reg(acc));
  return fn;
}

TEST(Cpu, CountsEventsAndCycles) {
  VcpuHarness harness;
  uint32_t region = harness.mem.CreateRegion("data", 1 << 16);
  VAddr base = harness.mem.Alloc(region, 1000 * 8);
  IrFunction fn = CountedLoop();
  harness.CompileAndRun(fn, {base, 1000});
  EXPECT_GT(harness.last_cycles, 1000u);
  EXPECT_GE(harness.pmu.counters()[PmuEvent::kLoads], 1000u);
  EXPECT_GT(harness.pmu.counters()[PmuEvent::kInstrRetired], 5000u);
  // Sequential 8-byte loads: one L1 miss per 64-byte line.
  EXPECT_NEAR(static_cast<double>(harness.pmu.counters()[PmuEvent::kL1Miss]), 125.0, 8.0);
}

TEST(Cpu, SamplesArriveAtPeriodWithCorrectIps) {
  VcpuHarness harness;
  SamplingConfig config;
  config.enabled = true;
  config.period = 97;
  harness.pmu.Configure(config);
  uint32_t region = harness.mem.CreateRegion("data", 1 << 16);
  VAddr base = harness.mem.Alloc(region, 500 * 8);
  IrFunction fn = CountedLoop();
  uint32_t fn_id = harness.Compile(fn);
  Cpu cpu(harness.mem, harness.code_map, harness.pmu);
  uint64_t args[] = {base, 500};
  cpu.CallFunction(fn_id, args);
  const std::vector<Sample>& samples = harness.pmu.samples();
  ASSERT_GT(samples.size(), 20u);
  const CodeSegment& segment = harness.code_map.segment(0);
  for (const Sample& sample : samples) {
    EXPECT_GE(sample.ip, segment.base_ip);
    EXPECT_LT(sample.ip, segment.base_ip + segment.code.size());
  }
  // Instruction count / period samples (+-1 for boundary effects).
  uint64_t instr = cpu.stats().instructions;
  EXPECT_NEAR(static_cast<double>(samples.size()), static_cast<double>(instr / 97), 2.0);
}

TEST(Cpu, CallStackCaptureWalksFrames) {
  VcpuHarness harness;
  // inner(x) = x + 1; outer(x) = inner(x) * 2.
  IrFunction inner("inner", 1);
  {
    IrIdAllocator ids;
    IrBuilder b(&inner, &ids);
    b.SetInsertPoint(b.CreateBlock("entry"));
    // Burn instructions so samples land inside.
    uint32_t acc = b.Const(0);
    for (int i = 0; i < 50; ++i) {
      b.Assign(acc, Opcode::kAdd, Value::Reg(acc), Value::Reg(0));
    }
    uint32_t r = b.Add(Value::Reg(acc), Value::Imm(1));
    b.Ret(Value::Reg(r));
  }
  uint32_t inner_id = harness.Compile(inner);
  IrFunction outer("outer", 1);
  {
    IrIdAllocator ids;
    IrBuilder b(&outer, &ids);
    b.SetInsertPoint(b.CreateBlock("entry"));
    uint32_t r = b.Call(inner_id, {Value::Reg(0)}, true);
    uint32_t doubled = b.Mul(Value::Reg(r), Value::Imm(2));
    b.Ret(Value::Reg(doubled));
  }
  uint32_t outer_id = harness.Compile(outer);

  SamplingConfig config;
  config.enabled = true;
  config.period = 7;
  config.capture_callstack = true;
  harness.pmu.Configure(config);
  Cpu cpu(harness.mem, harness.code_map, harness.pmu);
  uint64_t args[] = {5};
  // inner: acc = 50 * x, returns acc + 1; outer doubles it.
  EXPECT_EQ(cpu.CallFunction(outer_id, args), 2u * (50 * 5 + 1));
  const CodeSegment& outer_segment = harness.code_map.segment(
      harness.code_map.function(outer_id).segment);
  bool saw_inner_sample_with_outer_frame = false;
  for (const Sample& sample : harness.pmu.samples()) {
    const CodeSegment* segment = harness.code_map.FindByIp(sample.ip);
    if (segment != nullptr && segment->name == "inner" && !sample.callstack.empty()) {
      const CodeSegment* caller = harness.code_map.FindByIp(sample.callstack[0]);
      ASSERT_NE(caller, nullptr);
      EXPECT_EQ(caller->id, outer_segment.id);
      // The call site IP must hold a call instruction.
      const MInstr& at = caller->code[sample.callstack[0] - caller->base_ip];
      EXPECT_EQ(at.op, Opcode::kCall);
      saw_inner_sample_with_outer_frame = true;
    }
  }
  EXPECT_TRUE(saw_inner_sample_with_outer_frame);
}

TEST(Cpu, BranchMispredictionsCostCycles) {
  // Alternating branch outcomes vs. constant outcomes over the same instruction count.
  auto build = [](bool alternating) {
    IrFunction fn(alternating ? "alt" : "stable", 1);
    IrIdAllocator ids;
    IrBuilder b(&fn, &ids);
    uint32_t entry = b.CreateBlock("entry");
    uint32_t head = b.CreateBlock("head");
    uint32_t body = b.CreateBlock("body");
    uint32_t then_block = b.CreateBlock("then");
    uint32_t cont = b.CreateBlock("cont");
    uint32_t exit = b.CreateBlock("exit");
    b.SetInsertPoint(entry);
    uint32_t i = b.Const(0);
    uint32_t acc = b.Const(0);
    b.Br(head);
    b.SetInsertPoint(head);
    uint32_t more = b.CmpLt(Value::Reg(i), Value::Imm(2000));
    b.CondBr(Value::Reg(more), body, exit);
    b.SetInsertPoint(body);
    uint32_t bit = alternating ? b.Binary(Opcode::kAnd, Value::Reg(i), Value::Imm(1))
                               : b.Binary(Opcode::kAnd, Value::Reg(i), Value::Imm(0));
    b.CondBr(Value::Reg(bit), then_block, cont);
    b.SetInsertPoint(then_block);
    b.Assign(acc, Opcode::kAdd, Value::Reg(acc), Value::Imm(1));
    b.Br(cont);
    b.SetInsertPoint(cont);
    b.Assign(i, Opcode::kAdd, Value::Reg(i), Value::Imm(1));
    b.Br(head);
    b.SetInsertPoint(exit);
    b.Ret(Value::Reg(acc));
    return fn;
  };
  VcpuHarness harness;
  IrFunction alternating = build(true);
  harness.CompileAndRun(alternating, {0});
  uint64_t alternating_cycles = harness.last_cycles;
  uint64_t alternating_misses = harness.pmu.counters()[PmuEvent::kBranchMiss];

  VcpuHarness harness2;
  IrFunction stable = build(false);
  harness2.CompileAndRun(stable, {0});
  uint64_t stable_misses = harness2.pmu.counters()[PmuEvent::kBranchMiss];

  EXPECT_GT(alternating_misses, 900u);  // ~1000 mispredictions of the alternating branch.
  EXPECT_LT(stable_misses, 50u);
  // The alternating variant executes ~1000 extra adds but pays far more in penalties.
  EXPECT_GT(alternating_cycles, harness2.last_cycles + 10000);
}

TEST(Cpu, HostWorkEmitsSamplesInSegmentRange) {
  VcpuHarness harness;
  uint32_t segment = harness.code_map.AddHostSegment(SegmentKind::kKernel, "k", 32);
  SamplingConfig config;
  config.enabled = true;
  config.period = 100;
  harness.pmu.Configure(config);
  Cpu cpu(harness.mem, harness.code_map, harness.pmu);
  cpu.HostWork(segment, 10000);
  EXPECT_EQ(cpu.stats().instructions, 10000u);
  const std::vector<Sample>& samples = harness.pmu.samples();
  EXPECT_NEAR(static_cast<double>(samples.size()), 100.0, 12.0);
  const CodeSegment& seg = harness.code_map.segment(segment);
  std::set<uint64_t> distinct_ips;
  for (const Sample& sample : samples) {
    EXPECT_GE(sample.ip, seg.base_ip);
    EXPECT_LT(sample.ip, seg.base_ip + seg.virtual_size);
    distinct_ips.insert(sample.ip);
  }
  EXPECT_GT(distinct_ips.size(), 5u);  // Synthetic IPs rotate through the range.
}

TEST(Cpu, DivisionByZeroTraps) {
  IrFunction fn("div", 2);
  IrIdAllocator ids;
  IrBuilder b(&fn, &ids);
  b.SetInsertPoint(b.CreateBlock("entry"));
  uint32_t q = b.Div(Value::Reg(0), Value::Reg(1));
  b.Ret(Value::Reg(q));
  VcpuHarness harness;
  EXPECT_EQ(harness.CompileAndRun(fn, {10, 2}), 5u);
  IrFunction fn2 = fn;  // Compiled code already registered; run with zero divisor.
  EXPECT_DEATH(
      {
        VcpuHarness h2;
        IrFunction f("div0", 2);
        IrIdAllocator ids2;
        IrBuilder b2(&f, &ids2);
        b2.SetInsertPoint(b2.CreateBlock("entry"));
        uint32_t q2 = b2.Div(Value::Reg(0), Value::Reg(1));
        b2.Ret(Value::Reg(q2));
        h2.CompileAndRun(f, {10, 0});
      },
      "DFP_CHECK");
}

TEST(Cpu, TagRegisterVisibleInSamples) {
  IrFunction fn("tagged", 0);
  IrIdAllocator ids;
  IrBuilder b(&fn, &ids);
  uint32_t entry = b.CreateBlock("entry");
  uint32_t head = b.CreateBlock("head");
  uint32_t body = b.CreateBlock("body");
  uint32_t exit = b.CreateBlock("exit");
  b.SetInsertPoint(entry);
  b.SetTag(Value::Imm(777));
  uint32_t i = b.Const(0);
  b.Br(head);
  b.SetInsertPoint(head);
  uint32_t more = b.CmpLt(Value::Reg(i), Value::Imm(1000));
  b.CondBr(Value::Reg(more), body, exit);
  b.SetInsertPoint(body);
  b.Assign(i, Opcode::kAdd, Value::Reg(i), Value::Imm(1));
  b.Br(head);
  b.SetInsertPoint(exit);
  b.Ret();
  VcpuHarness harness;
  SamplingConfig config;
  config.enabled = true;
  config.period = 50;
  config.capture_registers = true;
  harness.pmu.Configure(config);
  CompileOptions options;
  options.reserve_tag_register = true;
  harness.CompileAndRun(fn, {}, options);
  ASSERT_GT(harness.pmu.samples().size(), 10u);
  size_t tagged = 0;
  for (const Sample& sample : harness.pmu.samples()) {
    ASSERT_TRUE(sample.has_registers);
    if (sample.regs[kTagRegister] == 777) {
      ++tagged;
    }
  }
  EXPECT_GT(tagged, harness.pmu.samples().size() - 3);  // All but the pre-SetTag prologue.
}

}  // namespace
}  // namespace dfp
