#include <gtest/gtest.h>

#include "src/vcpu/branch_predictor.h"
#include "src/vcpu/cache.h"

namespace dfp {
namespace {

TEST(Cache, FirstAccessMissesThenHits) {
  CacheHierarchy cache;
  CacheAccessResult first = cache.Access(0x1000);
  EXPECT_EQ(first.hit_level, 4);  // Cold: served from memory.
  CacheAccessResult second = cache.Access(0x1000);
  EXPECT_EQ(second.hit_level, 1);
  EXPECT_LT(second.latency, first.latency);
}

TEST(Cache, SameLineHits) {
  CacheHierarchy cache;
  cache.Access(0x1000);
  EXPECT_EQ(cache.Access(0x1004).hit_level, 1);  // Same 64-byte line.
  EXPECT_EQ(cache.Access(0x103F).hit_level, 1);
  EXPECT_EQ(cache.Access(0x1040).hit_level, 4);  // Next line: cold.
}

TEST(Cache, L1EvictionFallsBackToL2) {
  CacheConfig config;
  CacheHierarchy cache(config);
  // Fill one L1 set beyond its associativity: lines mapping to the same set are spaced by
  // (sets * line) = (32KB / 8 ways) = 4KB.
  const uint64_t stride = config.l1.size_bytes / config.l1.ways;
  for (uint64_t i = 0; i < config.l1.ways + 1; ++i) {
    cache.Access(0x10000 + i * stride);
  }
  // The first line was evicted from L1 but still sits in L2.
  EXPECT_EQ(cache.Access(0x10000).hit_level, 2);
}

TEST(Cache, StatsCountMisses) {
  CacheHierarchy cache;
  for (int i = 0; i < 100; ++i) {
    cache.Access(static_cast<uint64_t>(i) * 64);
  }
  EXPECT_EQ(cache.stats().accesses, 100u);
  EXPECT_EQ(cache.stats().l1_misses, 100u);
  cache.Access(0);
  EXPECT_EQ(cache.stats().l1_misses, 100u);  // Hit: no new miss.
}

TEST(Cache, SequentialScanMostlyHits) {
  CacheHierarchy cache;
  uint64_t misses_before = cache.stats().l1_misses;
  for (uint64_t addr = 0; addr < 64 * 1024; addr += 8) {
    cache.Access(addr);
  }
  uint64_t misses = cache.stats().l1_misses - misses_before;
  // One miss per 64-byte line (8 accesses per line).
  EXPECT_EQ(misses, 1024u);
}

TEST(BranchPredictor, LearnsStableBranch) {
  BranchPredictor predictor;
  int misses = 0;
  for (int i = 0; i < 100; ++i) {
    misses += predictor.Branch(0x42, true);
  }
  EXPECT_LE(misses, 2);
}

TEST(BranchPredictor, AlternatingBranchMispredicts) {
  BranchPredictor predictor;
  int misses = 0;
  for (int i = 0; i < 100; ++i) {
    misses += predictor.Branch(0x42, i % 2 == 0);
  }
  EXPECT_GT(misses, 40);
}

TEST(BranchPredictor, IndependentSlots) {
  BranchPredictor predictor;
  for (int i = 0; i < 10; ++i) {
    predictor.Branch(0x100, true);
    predictor.Branch(0x200, false);
  }
  EXPECT_FALSE(predictor.Branch(0x100, true));
  EXPECT_FALSE(predictor.Branch(0x200, false));
}

}  // namespace
}  // namespace dfp
