#include <gtest/gtest.h>

#include "src/vcpu/vmem.h"

namespace dfp {
namespace {

TEST(VMem, RegionCarving) {
  VMem mem(1 << 20);
  uint32_t a = mem.CreateRegion("columns", 4096);
  uint32_t b = mem.CreateRegion("hashtables", 8192);
  EXPECT_NE(mem.region(a).base, 0u);  // Null page reserved.
  EXPECT_EQ(mem.region(b).base, mem.region(a).base + 4096);
  EXPECT_EQ(mem.regions().size(), 2u);
}

TEST(VMem, BumpAllocationRespectsAlignment) {
  VMem mem(1 << 20);
  uint32_t region = mem.CreateRegion("r", 4096);
  VAddr first = mem.Alloc(region, 3, 1);
  VAddr second = mem.Alloc(region, 8, 8);
  EXPECT_EQ(second % 8, 0u);
  EXPECT_GT(second, first);
}

TEST(VMem, ReadWriteRoundTrip) {
  VMem mem(1 << 20);
  uint32_t region = mem.CreateRegion("r", 4096);
  VAddr addr = mem.Alloc(region, 64);
  mem.Write<uint64_t>(addr, 0xDEADBEEFCAFEBABEull);
  EXPECT_EQ(mem.Read<uint64_t>(addr), 0xDEADBEEFCAFEBABEull);
  mem.Write<int32_t>(addr + 8, -42);
  EXPECT_EQ(mem.Read<int32_t>(addr + 8), -42);
  mem.Write<uint8_t>(addr + 12, 0x7F);
  EXPECT_EQ(mem.Read<uint8_t>(addr + 12), 0x7F);
}

TEST(VMem, FindRegion) {
  VMem mem(1 << 20);
  uint32_t a = mem.CreateRegion("columns", 4096);
  VAddr addr = mem.Alloc(a, 16);
  const MemRegion* region = mem.FindRegion(addr);
  ASSERT_NE(region, nullptr);
  EXPECT_EQ(region->name, "columns");
  EXPECT_EQ(mem.FindRegion(1 << 19), nullptr);
}

TEST(VMem, DeathOnRegionOverflow) {
  VMem mem(1 << 20);
  uint32_t region = mem.CreateRegion("tiny", 16);
  mem.Alloc(region, 16);
  EXPECT_DEATH(mem.Alloc(region, 1), "DFP_CHECK");
}

}  // namespace
}  // namespace dfp
