// Cardinality-driven plan rewriting (src/plan/rewrite.h) and the re-optimization bookkeeping
// around it (src/reopt/): join-spine reordering by observed build rows keeps results
// bit-identical through the payload-slot permutation; the semi-join reduction fires only past
// the measured blowup gate; illegal spines (probe keys off a lower join's payload) are left
// alone; the literal-slot permutation recovered by sentinel rebinding maps candidate slots back
// to submission slots (duplicating across a cloned reduction build); and the CardStore's EWMAs,
// divergence ratios, and age-out behave as specified.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/engine/query_engine.h"
#include "src/plan/builder.h"
#include "src/plan/rewrite.h"
#include "src/reopt/cardstore.h"
#include "src/reopt/controller.h"
#include "src/tiering/literals.h"
#include "src/tpch/datagen.h"

namespace dfp {
namespace {

Database* TpchDb() {
  static Database* db = [] {
    auto* instance = new Database();
    TpchOptions options;
    options.scale = 0.01;
    GenerateTpch(*instance, options);
    return instance;
  }();
  return db;
}

// Scan(lineitem) |>< supplier-filter (bottom) |>< part-filter (top): a two-join spine with a
// payload column per join, both probe-keyed on the base stream. The filters carry literals so
// the same plan drives the permutation-recovery tests.
PhysicalOpPtr TwoJoinSpine(Database& db, int64_t supplier_bound, int64_t part_bound) {
  PlanBuilder supplier = PlanBuilder::Scan(db.table("supplier"));
  supplier.FilterBy(MakeBinary(BinOp::kLt, supplier.Col("s_suppkey"),
                               MakeLiteral(ColumnType::kInt64, supplier_bound)));
  PlanBuilder part = PlanBuilder::Scan(db.table("part"));
  part.FilterBy(MakeBinary(BinOp::kLt, part.Col("p_partkey"),
                           MakeLiteral(ColumnType::kInt64, part_bound)));
  PlanBuilder plan = PlanBuilder::Scan(db.table("lineitem"));
  plan.JoinWith(std::move(supplier), {"l_suppkey"}, {"s_suppkey"}, {"s_acctbal"});
  plan.JoinWith(std::move(part), {"l_partkey"}, {"p_partkey"}, {"p_retailprice"});
  return plan.Build();
}

// The (unique) filter op over the named table's scan.
PhysicalOp* FindFilterOver(PhysicalOp& root, const std::string& first_column) {
  for (PhysicalOp* op : PlanOperators(root)) {
    if (op->kind == OpKind::kFilter && !op->children.empty() &&
        !op->child(0)->output.empty() && op->child(0)->output[0].name == first_column) {
      return op;
    }
  }
  return nullptr;
}

Result ExecutePlan(Database& db, const PhysicalOp& plan, const std::string& name) {
  QueryEngine engine(&db);
  CompiledQuery compiled = engine.Compile(ClonePlan(plan), nullptr, name);
  return engine.Execute(compiled);
}

TEST(ReoptRewrite, EstimatedAndInjectedCardinalitiesRoundTrip) {
  Database& db = *TpchDb();
  PhysicalOpPtr plan = TwoJoinSpine(db, 100, 2000);
  CardinalityMap estimates = EstimatedCardinalities(*plan);
  // Finalized default estimates mirror the bounds, for every operator in the tree.
  for (PhysicalOp* op : PlanOperators(*plan)) {
    ASSERT_TRUE(estimates.count(op->id));
    EXPECT_EQ(estimates[op->id], op->bound_rows) << "op " << op->id;
  }
  PhysicalOp* part_filter = FindFilterOver(*plan, "p_partkey");
  ASSERT_NE(part_filter, nullptr);
  CardinalityMap observed;
  observed[part_filter->id] = 37;
  observed[plan->id] = 0;  // Zero observations are clamped so FinalizePlan cannot refill them.
  InjectCardinalities(*plan, observed);
  EXPECT_EQ(part_filter->estimated_rows, 37.0);
  EXPECT_EQ(plan->estimated_rows, 1.0);
}

TEST(ReoptRewrite, ReorderBySmallestObservedBuildKeepsResultsBitIdentical) {
  Database& db = *TpchDb();
  // Estimates rank supplier (100) under part (2000); the measurements disagree: the part
  // filter actually passes 50 rows. The rewrite must hoist the part join to the bottom.
  PhysicalOpPtr original = TwoJoinSpine(db, 100, 50);
  PhysicalOp* part_filter = FindFilterOver(*original, "p_partkey");
  ASSERT_NE(part_filter, nullptr);
  CardinalityMap observed;
  observed[part_filter->id] = 50;

  ReoptRewrite rewrite = ReoptimizePlan(*original, observed);
  ASSERT_TRUE(rewrite.changed);
  EXPECT_TRUE(rewrite.reordered);
  EXPECT_FALSE(rewrite.semi_join);
  EXPECT_EQ(rewrite.description, "reorder 1,0");

  // The payload columns moved with their joins, so a restore projection must put the output
  // schema back; with it in place the candidate's rows are bit-identical in probe order
  // (both join keys are unique, so output order is the filtered base order on both sides).
  bool restored = false;
  for (PhysicalOp* op : PlanOperators(*rewrite.plan)) {
    restored |= op->label == "Map reopt-restore";
  }
  EXPECT_TRUE(restored);
  const Result before = ExecutePlan(db, *original, "reorder_before");
  const Result after = ExecutePlan(db, *rewrite.plan, "reorder_after");
  EXPECT_GT(before.row_count(), 0u);
  std::string diff;
  EXPECT_TRUE(Result::Equivalent(before, after, true, &diff)) << diff;
}

TEST(ReoptRewrite, MeasurementsAgreeingWithPlanChangeNothing) {
  Database& db = *TpchDb();
  PhysicalOpPtr original = TwoJoinSpine(db, 100, 2000);
  PhysicalOp* part_filter = FindFilterOver(*original, "p_partkey");
  ASSERT_NE(part_filter, nullptr);
  CardinalityMap observed;
  observed[part_filter->id] = 2000;  // Exactly the estimate: the order stands.
  ReoptRewrite rewrite = ReoptimizePlan(*original, observed);
  EXPECT_FALSE(rewrite.changed);
  EXPECT_EQ(rewrite.plan, nullptr);
}

TEST(ReoptRewrite, PessimizeRewritesToWorstOrder) {
  Database& db = *TpchDb();
  // Original order already matches the measurements (part 50 at the bottom); pessimize must
  // still produce a candidate — the deliberately worst one — for the guard tests to revert.
  PhysicalOpPtr original = TwoJoinSpine(db, 100, 50);
  PhysicalOp* part_filter = FindFilterOver(*original, "p_partkey");
  PhysicalOp* supplier_filter = FindFilterOver(*original, "s_suppkey");
  ASSERT_NE(part_filter, nullptr);
  ASSERT_NE(supplier_filter, nullptr);
  CardinalityMap observed;
  observed[part_filter->id] = 50;
  observed[supplier_filter->id] = 100;

  ReoptRewrite best = ReoptimizePlan(*original, observed);
  ASSERT_TRUE(best.changed);  // Part join moves down...

  ReoptRewriteOptions pessimize;
  pessimize.pessimize = true;
  PhysicalOpPtr rebest = ClonePlan(*best.plan);
  CardinalityMap observed_best = observed;  // Fresh ids after finalize: re-derive.
  observed_best.clear();
  observed_best[FindFilterOver(*rebest, "p_partkey")->id] = 50;
  observed_best[FindFilterOver(*rebest, "s_suppkey")->id] = 100;
  ReoptRewrite worst = ReoptimizePlan(*rebest, observed_best, pessimize);
  ASSERT_TRUE(worst.changed);  // ...and pessimize moves it back up.
  EXPECT_TRUE(worst.reordered);
  std::string diff;
  EXPECT_TRUE(Result::Equivalent(ExecutePlan(db, *best.plan, "pess_before"),
                                 ExecutePlan(db, *worst.plan, "pess_after"), true, &diff))
      << diff;
}

TEST(ReoptRewrite, SemiJoinReductionGatedOnMeasuredBlowup) {
  Database& db = *TpchDb();
  // The part filter's hand-set estimate claims 10 rows; the measurement says 500 — a 50x
  // build-side blowup. With the reduction enabled the blown-up join is duplicated as a semi
  // filter directly above the base stream.
  PhysicalOpPtr original = TwoJoinSpine(db, 100, 500);
  PhysicalOp* part_filter = FindFilterOver(*original, "p_partkey");
  ASSERT_NE(part_filter, nullptr);
  part_filter->estimated_rows = 10;
  CardinalityMap observed;
  observed[part_filter->id] = 500;

  ReoptRewriteOptions options;
  options.semi_join_reduction = true;
  ReoptRewrite rewrite = ReoptimizePlan(*original, observed, options);
  ASSERT_TRUE(rewrite.changed);
  EXPECT_TRUE(rewrite.semi_join);
  EXPECT_NE(rewrite.description.find("semijoin"), std::string::npos);
  bool reduced = false;
  for (PhysicalOp* op : PlanOperators(*rewrite.plan)) {
    if (op->label.rfind("SemiJoinReduction", 0) == 0) {
      reduced = true;
      EXPECT_EQ(op->join_type, JoinType::kSemi);
    }
  }
  EXPECT_TRUE(reduced);
  std::string diff;
  EXPECT_TRUE(Result::Equivalent(ExecutePlan(db, *original, "semi_before"),
                                 ExecutePlan(db, *rewrite.plan, "semi_after"), true, &diff))
      << diff;

  // Below the blowup gate the reduction stays out (observed 500 vs estimate 250 is only 2x).
  PhysicalOpPtr mild = TwoJoinSpine(db, 100, 500);
  PhysicalOp* mild_filter = FindFilterOver(*mild, "p_partkey");
  mild_filter->estimated_rows = 250;
  CardinalityMap mild_observed;
  mild_observed[mild_filter->id] = 500;
  ReoptRewrite mild_rewrite = ReoptimizePlan(*mild, mild_observed, options);
  if (mild_rewrite.changed) {
    EXPECT_FALSE(mild_rewrite.semi_join);
  }
}

TEST(ReoptRewrite, ForcedOrderSpineIsLeftAlone) {
  Database& db = *TpchDb();
  // The customer join's probe key is the orders join's payload (o_custkey), so the order is
  // forced: no legal reorder exists and the rewrite must decline.
  PlanBuilder orders = PlanBuilder::Scan(db.table("orders"));
  PlanBuilder customer = PlanBuilder::Scan(db.table("customer"));
  PlanBuilder plan = PlanBuilder::Scan(db.table("lineitem"));
  plan.JoinWith(std::move(orders), {"l_orderkey"}, {"o_orderkey"}, {"o_custkey"});
  plan.JoinWith(std::move(customer), {"o_custkey"}, {"c_custkey"}, {"c_acctbal"});
  PhysicalOpPtr original = plan.Build();
  CardinalityMap observed;
  for (PhysicalOp* op : PlanOperators(*original)) {
    observed[op->id] = 1;  // Any measurement: the legality check must win regardless.
  }
  ReoptRewrite rewrite = ReoptimizePlan(*original, observed);
  EXPECT_FALSE(rewrite.changed);
}

TEST(ReoptRewrite, LiteralPermutationTracksReorderedWalkOrder) {
  Database& db = *TpchDb();
  // The extraction walk is pre-order, build side first: the original visits the part filter's
  // literal first (part join on top), the reordered candidate visits the supplier filter's
  // first — so the recovered permutation must swap the two submission slots.
  PhysicalOpPtr original = TwoJoinSpine(db, 100, 50);
  PhysicalOp* part_filter = FindFilterOver(*original, "p_partkey");
  ASSERT_NE(part_filter, nullptr);
  CardinalityMap observed;
  observed[part_filter->id] = 50;
  ASSERT_TRUE(ReoptimizePlan(*original, observed).changed);
  const std::vector<uint32_t> permutation = ReoptLiteralPermutation(*original, observed, {});
  EXPECT_EQ(permutation, (std::vector<uint32_t>{1, 0}));
}

TEST(ReoptRewrite, LiteralPermutationDuplicatesAcrossReductionClone) {
  Database& db = *TpchDb();
  // With the reduction inserted, the cloned build subtree duplicates the part filter's literal
  // site: the candidate extracts [part, supplier, part-clone] against the original's
  // [part, supplier], so slot 2 must map back to submission slot 0.
  PhysicalOpPtr original = TwoJoinSpine(db, 100, 500);
  PhysicalOp* part_filter = FindFilterOver(*original, "p_partkey");
  part_filter->estimated_rows = 10;
  CardinalityMap observed;
  observed[part_filter->id] = 500;
  ReoptRewriteOptions options;
  options.semi_join_reduction = true;
  ReoptRewrite rewrite = ReoptimizePlan(*original, observed, options);
  ASSERT_TRUE(rewrite.changed);
  ASSERT_TRUE(rewrite.semi_join);

  const size_t original_slots = ExtractLiterals(*original).bindings.size();
  const size_t candidate_slots = ExtractLiterals(*rewrite.plan).bindings.size();
  ASSERT_EQ(original_slots, 2u);
  ASSERT_EQ(candidate_slots, 3u);
  const std::vector<uint32_t> permutation =
      ReoptLiteralPermutation(*original, observed, options);
  ASSERT_EQ(permutation.size(), candidate_slots);
  EXPECT_EQ(permutation, (std::vector<uint32_t>{0, 1, 0}));
  for (uint32_t source : permutation) {
    EXPECT_LT(source, original_slots);
  }
  // Rebinding through the permutation must reproduce the candidate's own payloads.
  const PlanLiterals original_literals = ExtractLiterals(*original);
  const PlanLiterals candidate_literals = ExtractLiterals(*rewrite.plan);
  for (size_t j = 0; j < permutation.size(); ++j) {
    EXPECT_EQ(candidate_literals.bindings[j].value,
              original_literals.bindings[permutation[j]].value)
        << "slot " << j;
  }
}

TEST(ReoptCardStore, EwmaDivergenceAndAgeOut) {
  CardStore store;
  CardinalityMap observed;
  observed[3] = 100;
  CardinalityMap estimated;
  estimated[3] = 1000;
  store.Observe(0xabc, "q", observed, estimated);
  const PlanCards* cards = store.Find(0xabc);
  ASSERT_NE(cards, nullptr);
  EXPECT_EQ(cards->executions, 1u);
  EXPECT_EQ(cards->operators.at(3).observed_rows, 100u);  // First observation seeds the EWMA.
  EXPECT_EQ(store.MaxDivergencePct(0xabc), 1000u);        // 10x off, either direction.
  EXPECT_EQ(CardStore::DivergencePct(1000, 100), 1000u);
  EXPECT_EQ(CardStore::DivergencePct(100, 100), 100u);
  EXPECT_EQ(CardStore::DivergencePct(0, 0), 100u);  // Degenerate: clamped, never divides by 0.

  observed[3] = 500;
  store.Observe(0xabc, "q", observed, estimated);
  EXPECT_EQ(store.Find(0xabc)->operators.at(3).observed_rows, (3 * 100 + 500) / 4u);
  EXPECT_EQ(store.generation(), 2u);

  // A plan unobserved for max_age generations ages out; the active plan survives.
  store.max_age = 4;
  store.Observe(0xdef, "r", observed, estimated);
  for (int i = 0; i < 5; ++i) {
    store.Observe(0xdef, "r", observed, estimated);
  }
  EXPECT_EQ(store.Find(0xabc), nullptr);
  ASSERT_NE(store.Find(0xdef), nullptr);
  const std::string rendered = RenderCardStore(store);
  EXPECT_NE(rendered.find("0000000000000def"), std::string::npos);
}

TEST(ReoptController, LogLifecycleAndTimeline) {
  ReoptLog log;
  ReoptAction action;
  action.fingerprint = 0x11;
  action.plan_name = "q_join";
  action.description = "reorder 1,0";
  action.divergence_pct = 400;
  action.decided_tsc = 10;
  log.Add(action);
  EXPECT_EQ(log.applied(), 0u);
  ReoptAction* open = log.Find(0x11);
  ASSERT_NE(open, nullptr);
  open->state = ReoptState::kApplied;
  open->applied_tsc = 20;
  EXPECT_EQ(log.applied(), 1u);
  open->state = ReoptState::kKept;
  open->resolved_tsc = 30;
  EXPECT_EQ(log.kept(), 1u);
  EXPECT_EQ(log.reverted(), 0u);

  ReoptAction second;
  second.fingerprint = 0x22;
  second.plan_name = "q_other";
  second.state = ReoptState::kReverted;
  log.Add(second);
  EXPECT_EQ(log.reverted(), 1u);

  const std::string timeline = RenderReoptTimeline(log);
  EXPECT_NE(timeline.find("q_join"), std::string::npos);
  EXPECT_NE(timeline.find("[kept]"), std::string::npos);
  EXPECT_NE(timeline.find("[reverted]"), std::string::npos);
  EXPECT_NE(timeline.find("reorder 1,0"), std::string::npos);
  EXPECT_NE(timeline.find("divergence=400%"), std::string::npos);

  for (ReoptState state : {ReoptState::kDecided, ReoptState::kApplied, ReoptState::kKept,
                           ReoptState::kReverted}) {
    ReoptState parsed;
    ASSERT_TRUE(ReoptStateFromName(ReoptStateName(state), &parsed));
    EXPECT_EQ(parsed, state);
  }
  ReoptState parsed;
  EXPECT_FALSE(ReoptStateFromName("bogus", &parsed));
}

}  // namespace
}  // namespace dfp
