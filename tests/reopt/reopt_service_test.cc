// The closed re-optimization loop through the serving layer (DESIGN.md §2j): an injected
// misestimate triggers a re-plan whose candidate compiles on the background lane and swaps in
// atomically; the guard keeps a winning candidate and reverts an injected pessimizing rewrite;
// results stay bit-identical through decide, apply, keep, and revert; the CardStore and reopt
// log round-trip through the v6 service profile; reopt sideband lines force v8 sample streams;
// and the whole loop is deterministic across double runs.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/engine/result.h"
#include "src/plan/builder.h"
#include "src/profiling/serialize.h"
#include "src/reopt/cardstore.h"
#include "src/reopt/controller.h"
#include "src/service/query_service.h"
#include "src/service/service_profile.h"
#include "src/tpch/datagen.h"
#include "src/util/check.h"

namespace dfp {
namespace {

ServiceConfig ReoptConfigFor() {
  ServiceConfig config;
  config.parallel.workers = 4;
  config.max_active_sessions = 2;
  config.session_hashtables_bytes = 32ull << 20;
  config.session_output_bytes = 16ull << 20;
  config.session_state_bytes = 512ull * 1024;
  config.profiling.period = 311;
  // Re-optimization rides the tiered cache's swap machinery, so tiering must be on.
  config.tiering.enabled = true;
  config.reopt.enabled = true;
  // One window per completion so the guard's post-swap rollup resolves within a few runs.
  config.continuous.window.width_cycles = 1'000'000;
  return config;
}

std::unique_ptr<Database> MakeDb(const ServiceConfig& config) {
  DatabaseConfig db_config;
  db_config.extra_bytes = ServiceArenaBytes(config);
  auto db = std::make_unique<Database>(db_config);
  TpchOptions options;
  options.scale = 0.01;
  GenerateTpch(*db, options);
  return db;
}

// Scan(lineitem) |>< build joins with one payload column each, both probe-keyed on the base
// stream. `part_first` picks which join sits at the bottom of the spine. The part filter
// passes only `part_bound` of the table's 2000 keys, so its finalized estimate (2000 rows,
// derived from the bound) is the injected misestimate the loop must correct.
PhysicalOpPtr SpinePlan(Database& db, bool part_first, int64_t part_bound) {
  PlanBuilder supplier = PlanBuilder::Scan(db.table("supplier"));
  PlanBuilder part = PlanBuilder::Scan(db.table("part"));
  part.FilterBy(MakeBinary(BinOp::kLt, part.Col("p_partkey"),
                           MakeLiteral(ColumnType::kInt64, part_bound)));
  PlanBuilder plan = PlanBuilder::Scan(db.table("lineitem"));
  if (part_first) {
    plan.JoinWith(std::move(part), {"l_partkey"}, {"p_partkey"}, {"p_retailprice"});
    plan.JoinWith(std::move(supplier), {"l_suppkey"}, {"s_suppkey"}, {"s_acctbal"});
  } else {
    plan.JoinWith(std::move(supplier), {"l_suppkey"}, {"s_suppkey"}, {"s_acctbal"});
    plan.JoinWith(std::move(part), {"l_partkey"}, {"p_partkey"}, {"p_retailprice"});
  }
  return plan.Build();
}

TicketId RunSpine(QueryService& service, Database& db, bool part_first, int64_t part_bound) {
  const TicketId id = service.Submit(SpinePlan(db, part_first, part_bound), "q_spine");
  service.Drain();
  return id;
}

bool HasEvent(const std::vector<SampleStreamEvent>& events, const std::string& needle) {
  for (const SampleStreamEvent& event : events) {
    if (event.text.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

// Runs until the fingerprint's action reaches kKept or kReverted (or max_runs).
int RunUntilResolved(QueryService& service, Database& db, bool part_first, int64_t part_bound,
                     int max_runs) {
  int runs = 0;
  while (runs < max_runs) {
    RunSpine(service, db, part_first, part_bound);
    ++runs;
    const ReoptAction* action = service.reopts().actions().empty()
                                    ? nullptr
                                    : &service.reopts().actions().front();
    if (action != nullptr &&
        (action->state == ReoptState::kKept || action->state == ReoptState::kReverted)) {
      break;
    }
  }
  return runs;
}

TEST(ReoptService, MisestimateTriggersReplanAndGuardKeepsTheWinner) {
  // The plan carries supplier (estimate 100) below part-filter (estimate 2000), matching the
  // estimates; the measurements say the part filter passes ~50 rows, a 40x divergence. The
  // loop must re-plan, hoist the part join down, keep the candidate, and never change a row.
  const ServiceConfig config = ReoptConfigFor();
  auto db = MakeDb(config);
  QueryService service(*db, config);

  const TicketId first = RunSpine(service, *db, false, 50);
  ASSERT_EQ(service.ticket(first).status, TicketStatus::kDone);
  const uint64_t fp = service.ticket(first).fingerprint.structure;

  // Tuple counters feed the store from the first execution.
  const PlanCards* cards = service.cards().Find(fp);
  ASSERT_NE(cards, nullptr);
  EXPECT_EQ(cards->executions, 1u);
  EXPECT_GE(service.cards().MaxDivergencePct(fp), config.reopt.divergence_pct);

  // Not before min_executions: the EWMAs need evidence before re-planning.
  EXPECT_TRUE(service.reopts().actions().empty());
  int runs = 1;
  while (service.reopts().actions().empty() && runs < 8) {
    RunSpine(service, *db, false, 50);
    ++runs;
  }
  ASSERT_FALSE(service.reopts().actions().empty());
  EXPECT_GE(static_cast<uint64_t>(runs), config.reopt.min_executions);
  EXPECT_EQ(service.reopts().actions().front().fingerprint, fp);
  EXPECT_TRUE(service.reopts().actions().front().reordered);
  EXPECT_GE(service.reopts().actions().front().divergence_pct, 400u);
  EXPECT_TRUE(HasEvent(service.reopt_events(), "decided"));

  RunUntilResolved(service, *db, false, 50, 12);
  ASSERT_EQ(service.reopts().actions().size(), 1u);
  const ReoptAction& action = service.reopts().actions().front();
  EXPECT_EQ(action.state, ReoptState::kKept);
  EXPECT_GT(action.applied_tsc, action.decided_tsc);
  EXPECT_GE(action.resolved_tsc, action.applied_tsc);
  EXPECT_EQ(service.reopts().kept(), 1u);
  EXPECT_EQ(service.reopts().reverted(), 0u);
  EXPECT_TRUE(HasEvent(service.reopt_events(), "applied"));
  EXPECT_TRUE(HasEvent(service.reopt_events(), "kept"));

  // The swap changed compiled code, never rows. The work-stealing scheduler appends output in
  // morsel-completion order, which legitimately differs between the two physical plans, so the
  // row multisets compare unordered.
  const TicketId last = RunSpine(service, *db, false, 50);
  std::string diff;
  EXPECT_TRUE(Result::Equivalent(service.ticket(first).result, service.ticket(last).result,
                                 false, &diff))
      << diff;
  EXPECT_GT(service.ticket(last).result.row_count(), 0u);

  // A resolved action never re-triggers (the kept plan re-estimated from its measurements).
  RunSpine(service, *db, false, 50);
  EXPECT_EQ(service.reopts().actions().size(), 1u);

  const std::string timeline = RenderReoptTimeline(service.reopts());
  EXPECT_NE(timeline.find("q_spine"), std::string::npos);
  EXPECT_NE(timeline.find("[kept]"), std::string::npos);
  EXPECT_NE(timeline.find("reorder"), std::string::npos);
}

TEST(ReoptService, GuardRevertsInjectedPessimizingRewrite) {
  // The plan already carries the measured-optimal order (part filter at the bottom kills
  // 97.5% of the stream early); reopt.pessimize rewrites it to the worst order. The guard
  // must catch the regression, re-insert the original entry, and keep results identical.
  ServiceConfig config = ReoptConfigFor();
  config.reopt.pessimize = true;
  auto db = MakeDb(config);
  QueryService service(*db, config);

  const TicketId first = RunSpine(service, *db, true, 50);
  ASSERT_EQ(service.ticket(first).status, TicketStatus::kDone);

  RunUntilResolved(service, *db, true, 50, 16);
  ASSERT_EQ(service.reopts().actions().size(), 1u);
  const ReoptAction& action = service.reopts().actions().front();
  EXPECT_EQ(action.state, ReoptState::kReverted);
  EXPECT_EQ(service.reopts().kept(), 0u);
  EXPECT_EQ(service.reopts().reverted(), 1u);
  EXPECT_TRUE(HasEvent(service.reopt_events(), "decided"));
  EXPECT_TRUE(HasEvent(service.reopt_events(), "reverted"));

  // The revert restored the original entry; the loop must not oscillate.
  RunSpine(service, *db, true, 50);
  EXPECT_EQ(service.reopts().actions().size(), 1u);

  // The row multiset stayed identical through apply and revert (unordered: stealing permutes
  // which morsel appends output first, and the pessimized interlude shifts the interleaving).
  const TicketId last = RunSpine(service, *db, true, 50);
  std::string diff;
  EXPECT_TRUE(Result::Equivalent(service.ticket(first).result, service.ticket(last).result,
                                 false, &diff))
      << diff;
  const std::string timeline = RenderReoptTimeline(service.reopts());
  EXPECT_NE(timeline.find("reverted"), std::string::npos);
}

TEST(ReoptService, ReoptSidebandForcesV8SampleStreams) {
  const ServiceConfig config = ReoptConfigFor();
  auto db = MakeDb(config);
  QueryService service(*db, config);
  RunUntilResolved(service, *db, false, 50, 12);
  ASSERT_FALSE(service.reopt_events().empty());

  const TicketId last = RunSpine(service, *db, false, 50);
  std::ostringstream out;
  WriteSamples(service.ticket(last).session->samples(), {}, {}, {}, service.reopt_events(),
               out);
  const std::string text = out.str();
  EXPECT_EQ(text.rfind("# dfp samples v8", 0), 0u);
  EXPECT_NE(text.find("\nreopt "), std::string::npos);

  // Round trip: the reopt lines come back through the sideband sink, in stream order.
  std::istringstream in(text);
  std::vector<SampleStreamEvent> events;
  std::vector<TaskBoundary> tasks;
  std::vector<SampleStreamEvent> sched;
  std::vector<SampleStreamEvent> reopt;
  ReadSamples(in, &events, &tasks, &sched, &reopt);
  ASSERT_EQ(reopt.size(), service.reopt_events().size());
  for (size_t i = 0; i < reopt.size(); ++i) {
    EXPECT_EQ(reopt[i].tsc, service.reopt_events()[i].tsc);
    EXPECT_EQ(reopt[i].text, service.reopt_events()[i].text);
  }

  // A reader without a reopt sink must reject the stream instead of dropping lines.
  std::istringstream no_sink(text);
  EXPECT_THROW(ReadSamples(no_sink, &events, &tasks, &sched), Error);
}

TEST(ReoptService, CardsAndReoptLogRoundTripThroughServiceProfileV6) {
  ServiceConfig config = ReoptConfigFor();
  config.state_path = ::testing::TempDir() + "dfp_reopt_state_test.profile";
  std::remove(config.state_path.c_str());

  uint64_t fp = 0;
  uint64_t generation = 0;
  uint64_t observed = 0;
  {
    auto db = MakeDb(config);
    QueryService service(*db, config);
    const TicketId id = RunSpine(service, *db, false, 50);
    fp = service.ticket(id).fingerprint.structure;
    RunUntilResolved(service, *db, false, 50, 12);
    ASSERT_EQ(service.reopts().kept(), 1u);
    generation = service.cards().generation();
    const PlanCards* cards = service.cards().Find(fp);
    ASSERT_NE(cards, nullptr);
    ASSERT_FALSE(cards->operators.empty());
    observed = cards->operators.begin()->second.observed_rows;
  }  // Destructor persists the state, cards and reopt log included.

  std::ifstream in(config.state_path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  EXPECT_NE(text.find("# dfp service profile v6"), std::string::npos);
  EXPECT_NE(text.find("\ncardgen "), std::string::npos);
  EXPECT_NE(text.find("\ncardplan "), std::string::npos);
  EXPECT_NE(text.find("\ncard "), std::string::npos);
  EXPECT_NE(text.find("\nreopt "), std::string::npos);

  // Restart: generation clock, per-operator EWMAs, and the kept action all survive — and the
  // kept action still blocks re-triggering. Re-saving without serving reproduces the file
  // byte for byte.
  auto db = MakeDb(config);
  QueryService restarted(*db, config);
  EXPECT_EQ(restarted.cards().generation(), generation);
  const PlanCards* cards = restarted.cards().Find(fp);
  ASSERT_NE(cards, nullptr);
  EXPECT_EQ(cards->operators.begin()->second.observed_rows, observed);
  const ReoptAction* action = restarted.reopts().Find(fp);
  ASSERT_NE(action, nullptr);
  EXPECT_EQ(action->state, ReoptState::kKept);
  EXPECT_EQ(action->previous, nullptr);
  restarted.SaveState();
  std::ifstream rein(config.state_path);
  std::stringstream rebuffer;
  rebuffer << rein.rdbuf();
  EXPECT_EQ(rebuffer.str(), text);
  std::remove(config.state_path.c_str());
}

TEST(ReoptService, DoubleRunReoptLoopIsDeterministic) {
  // The whole loop — counters, EWMAs, trigger, background compile, swap, guard — is a pure
  // function of the submission sequence: two identical services must produce byte-identical
  // sample streams, reopt event text, and state files.
  const ServiceConfig config = ReoptConfigFor();

  auto run_workload = [&config](std::vector<std::string>* artifacts) {
    auto db = MakeDb(config);
    QueryService service(*db, config);
    for (int i = 0; i < 8; ++i) {
      const TicketId id = RunSpine(service, *db, false, 50);
      EXPECT_EQ(service.ticket(id).status, TicketStatus::kDone);
      std::ostringstream out;
      WriteSamples(service.ticket(id).session->samples(), {}, service.ticket(id).task_boundaries,
                   {}, service.reopt_events(), out);
      artifacts->push_back(out.str());
    }
    std::ostringstream state;
    WriteServiceState(service.fleet_profile(), service.windows(), service.baseline(),
                      service.ServiceNowCycles(), state, nullptr, &service.cards(),
                      &service.reopts());
    artifacts->push_back(state.str());
    artifacts->push_back(RenderReoptTimeline(service.reopts()));
    artifacts->push_back(RenderCardStore(service.cards()));
    return service.reopts().kept();
  };

  std::vector<std::string> first;
  std::vector<std::string> second;
  const uint64_t first_kept = run_workload(&first);
  const uint64_t second_kept = run_workload(&second);
  EXPECT_EQ(first_kept, 1u);
  EXPECT_EQ(first_kept, second_kept);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], second[i]) << "artifact " << i;
  }
}

TEST(ReoptService, DisabledByDefaultKeepsCountersOff) {
  ServiceConfig config = ReoptConfigFor();
  config.reopt.enabled = false;
  auto db = MakeDb(config);
  QueryService service(*db, config);
  RunSpine(service, *db, false, 50);
  RunSpine(service, *db, false, 50);
  EXPECT_EQ(service.cards().generation(), 0u);
  EXPECT_TRUE(service.reopts().actions().empty());
  EXPECT_TRUE(service.reopt_events().empty());
}

}  // namespace
}  // namespace dfp
