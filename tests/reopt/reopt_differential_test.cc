// Differential suite for the re-optimization rewrite: 60 seeded random join-spine queries over
// the TPC-H-style schema, each rewritten under seeded random "observed" cardinalities (with
// random reduction/pessimize options) and executed through the compiled engine on both sides.
// The candidate must return bit-identical rows for every seed — the rewrite is pure plan
// surgery, so any divergence pinpoints a slot-permutation, schema-propagation, or reduction
// bug with a reproducible seed.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/engine/query_engine.h"
#include "src/plan/builder.h"
#include "src/plan/rewrite.h"
#include "src/tpch/datagen.h"
#include "src/util/random.h"

namespace dfp {
namespace {

Database* TpchDb() {
  static Database* db = [] {
    auto* instance = new Database();
    TpchOptions options;
    options.scale = 0.005;
    GenerateTpch(*instance, options);
    return instance;
  }();
  return db;
}

// A random join spine over lineitem: 2-3 build sides drawn from {orders, part, supplier}, each
// optionally filtered on its key (the filters make the build cardinalities genuinely differ
// from the bounds), joins inner (with one payload column) or semi, in random order; optionally
// a base filter, and optionally a final aggregation (which parks the slot permutation below a
// schema-fixing operator instead of the result sink).
PhysicalOpPtr RandomSpineQuery(Random& rng, Database& db) {
  struct BuildSide {
    const char* table;
    const char* key;
    const char* probe_key;
    const char* payload;
    int64_t domain;
  };
  const BuildSide sides[] = {
      {"orders", "o_orderkey", "l_orderkey", "o_shippriority", 7500},
      {"part", "p_partkey", "l_partkey", "p_retailprice", 1000},
      {"supplier", "s_suppkey", "l_suppkey", "s_acctbal", 50},
  };
  std::vector<size_t> picked = {0, 1, 2};
  if (rng.Chance(0.4)) {
    picked.erase(picked.begin() + rng.Uniform(0, 2));
  }
  // Random join order (seeded shuffle by repeated draws).
  for (size_t i = picked.size(); i > 1; --i) {
    std::swap(picked[i - 1], picked[static_cast<size_t>(rng.Uniform(
                                 0, static_cast<int64_t>(i) - 1))]);
  }

  PlanBuilder plan = PlanBuilder::Scan(db.table("lineitem"));
  if (rng.Chance(0.5)) {
    plan.FilterBy(MakeBinary(BinOp::kLt, plan.Col("l_linenumber"),
                             MakeLiteral(ColumnType::kInt64, rng.Uniform(2, 6))));
  }
  for (size_t choice : picked) {
    const BuildSide& side = sides[choice];
    PlanBuilder build = PlanBuilder::Scan(db.table(side.table));
    if (rng.Chance(0.6)) {
      build.FilterBy(MakeBinary(BinOp::kLt, build.Col(side.key),
                                MakeLiteral(ColumnType::kInt64,
                                            rng.Uniform(1, side.domain))));
    }
    if (rng.Chance(0.75)) {
      plan.JoinWith(std::move(build), {side.probe_key}, {side.key}, {side.payload});
    } else {
      plan.JoinWith(std::move(build), {side.probe_key}, {side.key}, {}, JoinType::kSemi);
    }
  }
  if (rng.Chance(0.3)) {
    plan.GroupByKeys({"l_returnflag"},
                     NamedExprs("n", MakeAggregate(AggOp::kCountStar, nullptr), "s",
                                MakeAggregate(AggOp::kSum, plan.Col("l_extendedprice"))));
  }
  return plan.Build();
}

class ReoptDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReoptDifferentialTest, RewrittenPlansReturnBitIdenticalRows) {
  Database& db = *TpchDb();
  QueryEngine engine(&db);

  Random rng(GetParam());
  PhysicalOpPtr original = RandomSpineQuery(rng, db);

  // Seeded fake measurements: every operator gets a random observed row count, so the rewrite
  // sees arbitrary contradictions of the estimates (including blowups past the semi-join gate).
  CardinalityMap observed;
  for (PhysicalOp* op : PlanOperators(*original)) {
    observed[op->id] = static_cast<uint64_t>(rng.Uniform(1, 20000));
  }
  ReoptRewriteOptions options;
  options.pessimize = rng.Chance(0.25);  // The worst order must be wrong-order, not wrong-rows.
  options.semi_join_reduction = rng.Chance(0.5);
  options.semi_join_blowup_pct = 150;

  ReoptRewrite rewrite = ReoptimizePlan(*original, observed, options);
  if (!rewrite.changed) {
    // Forced orders and agreeing measurements legitimately decline; the seed still counts as
    // covered (the decline path must not corrupt the original).
    CompiledQuery compiled = engine.Compile(ClonePlan(*original), nullptr, "reopt_diff_same");
    EXPECT_GE(engine.Execute(compiled).row_count(), 0u);
    return;
  }

  const bool grouped = original->child(0)->kind == OpKind::kGroupBy;
  CompiledQuery before = engine.Compile(ClonePlan(*original), nullptr, "reopt_diff_before");
  CompiledQuery after = engine.Compile(ClonePlan(*rewrite.plan), nullptr, "reopt_diff_after");
  const Result expected = engine.Execute(before);
  const Result actual = engine.Execute(after);
  std::string diff;
  // Join spines with unique build keys preserve probe order, so ungrouped results compare in
  // order; aggregation output hashes by group and compares unordered.
  EXPECT_TRUE(Result::Equivalent(expected, actual, !grouped, &diff))
      << "seed " << GetParam() << ": " << diff;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReoptDifferentialTest, ::testing::Range<uint64_t>(1, 61));

}  // namespace
}  // namespace dfp
