// Trace-format unit tests: plan codec round-trips over the whole TPC-H suite, token escaping,
// serialize->parse->serialize fixed points for seeded random traces, version-token rejection
// for future versions, and truncated/corrupt-line error paths.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/replay/plan_codec.h"
#include "src/replay/trace.h"
#include "src/service/fingerprint.h"
#include "src/tpch/datagen.h"
#include "src/tpch/queries.h"
#include "src/util/check.h"

namespace dfp {
namespace {

std::unique_ptr<Database> MakeDb() {
  auto db = std::make_unique<Database>();
  TpchOptions options;
  options.scale = 0.01;
  GenerateTpch(*db, options);
  return db;
}

// Deterministic pseudo-random stream for trace fuzzing (no std::random: seeds must reproduce).
struct Lcg {
  uint64_t state;
  explicit Lcg(uint64_t seed) : state(seed) {}
  uint64_t Next() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 11;
  }
  uint64_t Below(uint64_t bound) { return Next() % bound; }
};

WorkloadTrace RandomTrace(uint64_t seed) {
  Lcg rng(seed);
  WorkloadTrace trace;
  trace.catalog_version = rng.Below(5);
  trace.knobs.workers = 1 + static_cast<uint32_t>(rng.Below(8));
  trace.knobs.scheduler = static_cast<uint8_t>(rng.Below(2));
  trace.knobs.queue_depth = 1 + static_cast<uint32_t>(rng.Below(32));
  trace.knobs.tiering_enabled = rng.Below(2) != 0;
  trace.knobs.break_even_ratio = 0.25 * static_cast<double>(1 + rng.Below(8));
  trace.knobs.governor_budget = 0.01 * static_cast<double>(1 + rng.Below(5));
  trace.knobs.compile_costs.base_cycles = rng.Below(1u << 20);

  PlanTemplate tmpl;
  tmpl.structure = rng.Next();
  tmpl.name = "tmpl with spaces %";
  // A syntactically valid single-op plan block (never parsed against a catalog here).
  tmpl.plan_text = "op 0 1 0 0 0 -1 100 0000000000000000 - % 0 0 0 0 0 0 0\nendplan\n";
  trace.templates.push_back(tmpl);

  const uint32_t queries = 1 + static_cast<uint32_t>(rng.Below(6));
  for (uint32_t seq = 1; seq <= queries; ++seq) {
    TraceQuery q;
    q.seq = seq;
    q.name = "q" + std::to_string(rng.Below(22));
    q.fingerprint.structure = tmpl.structure;
    q.fingerprint.literals = rng.Next();
    q.fingerprint.pinned = rng.Next();
    q.arrival_cycles = rng.Next();
    q.weight = 1 + static_cast<uint32_t>(rng.Below(4));
    q.deadline_cycles = rng.Below(2) != 0 ? rng.Next() : 0;
    // Query 1 is always admitted so every seed's trace carries at least one 'done' line (the
    // corruption tests rewrite it).
    q.outcome = (seq > 1 && rng.Below(4) == 0) ? TraceOutcome::kRejected
                                               : TraceOutcome::kAdmitted;
    const uint64_t bindings = rng.Below(4);
    for (uint64_t i = 0; i < bindings; ++i) {
      LiteralBinding binding;
      switch (rng.Below(3)) {
        case 0:
          binding.kind = LiteralBinding::Kind::kValue;
          binding.value = static_cast<int64_t>(rng.Next()) - (1ll << 40);
          break;
        case 1:
          binding.kind = LiteralBinding::Kind::kPattern;
          binding.pattern = "%pat " + std::to_string(rng.Below(100)) + "%";
          break;
        default:
          binding.kind = LiteralBinding::Kind::kLimit;
          binding.value = static_cast<int64_t>(rng.Below(1000));
          break;
      }
      q.literals.push_back(std::move(binding));
    }
    trace.events.push_back({TraceEvent::Kind::kQuery, seq});
    if (q.outcome == TraceOutcome::kAdmitted) {
      q.completed = true;
      q.status = rng.Below(8) == 0 ? 4 : 2;  // kTimedOut : kDone.
      q.cache_hit = rng.Below(2) != 0;
      q.tier = static_cast<uint8_t>(rng.Below(2));
      q.patched_sites = rng.Below(10);
      q.compile_cycles = rng.Next();
      q.execute_cycles = rng.Next();
      q.completed_at_cycles = rng.Next();
      q.result_rows = rng.Below(10000);
      q.samples = rng.Below(5000);
      q.stream_hash = rng.Next();
    }
    trace.queries.push_back(std::move(q));
    if (trace.queries.back().completed) {
      trace.events.push_back({TraceEvent::Kind::kDone, seq});
    }
    if (rng.Below(3) == 0) {
      trace.events.push_back({TraceEvent::Kind::kDrain, seq});
    }
  }
  trace.events.push_back({TraceEvent::Kind::kDrain, queries});

  TraceSummary& s = trace.summary;
  s.queries = queries;
  for (const TraceQuery& q : trace.queries) {
    if (q.outcome == TraceOutcome::kRejected) {
      ++s.rejected;
    } else if (q.status == 4) {
      ++s.timed_out;
    } else {
      ++s.completed;
    }
    s.samples += q.samples;
  }
  s.service_cycles = rng.Next();
  s.cache_hits = rng.Below(100);
  s.cache_misses = rng.Below(100);
  s.patched_hits = rng.Below(100);
  s.tier_swaps = rng.Below(10);
  s.stream_hash = rng.Next();
  s.tiers.samples = rng.Below(100000);
  s.tiers.baseline_samples = rng.Below(s.tiers.samples + 1);
  s.tiers.optimized_samples = s.tiers.samples - s.tiers.baseline_samples;
  s.tiers.transitions = rng.Below(5);
  s.tiers.swapped = rng.Below(s.tiers.transitions + 1);
  TraceFingerprintSummary fp;
  fp.structure = tmpl.structure;
  fp.name = "q6";
  fp.executions = rng.Below(50);
  fp.execute_cycles = rng.Next();
  fp.latency_p50 = rng.Next();
  fp.latency_p95 = rng.Next();
  fp.latency_max = rng.Next();
  fp.top_operator = "scan lineitem";
  fp.top_operator_samples = rng.Below(10000);
  s.fingerprints.push_back(std::move(fp));
  return trace;
}

TEST(PlanCodecTest, TokenRoundTripAndEdgeCases) {
  const std::vector<std::string> cases = {
      "",      "plain",          "two words",  "tab\there", "new\nline",
      "100%",  "%%",             " leading",   "trailing ", std::string(1, '\0'),
      "\x01\x7f mixed \x1f end", "q6_variant", "%",
  };
  for (const std::string& text : cases) {
    const std::string token = EncodeToken(text);
    EXPECT_EQ(token.find(' '), std::string::npos) << token;
    EXPECT_EQ(token.find('\t'), std::string::npos) << token;
    EXPECT_EQ(token.find('\n'), std::string::npos) << token;
    EXPECT_EQ(DecodeToken(token), text);
  }
  EXPECT_EQ(EncodeToken(""), "%");
  EXPECT_EQ(DecodeToken("%"), "");
  EXPECT_THROW(DecodeToken("bad%"), Error);     // Truncated escape.
  EXPECT_THROW(DecodeToken("bad%2"), Error);    // One hex digit short.
  EXPECT_THROW(DecodeToken("bad%zz"), Error);   // Non-hex escape.
}

TEST(PlanCodecTest, EveryTpchPlanRoundTripsWithIdenticalFingerprint) {
  auto db = MakeDb();
  for (const QuerySpec& spec : TpchQuerySuite()) {
    PhysicalOpPtr original = BuildQueryPlan(*db, spec);
    const PlanFingerprint before = FingerprintPlan(*original, db->catalog_version());
    const std::string text = EncodePlanText(*original);

    PhysicalOpPtr parsed = ParsePlanText(text, *db);
    const PlanFingerprint after = FingerprintPlan(*parsed, db->catalog_version());
    EXPECT_EQ(before.structure, after.structure) << spec.name;
    EXPECT_EQ(before.literals, after.literals) << spec.name;
    EXPECT_EQ(before.pinned, after.pinned) << spec.name;

    // Serialization is a fixed point: re-encoding the parsed plan is byte-identical.
    EXPECT_EQ(EncodePlanText(*parsed), text) << spec.name;
  }
}

TEST(PlanCodecTest, MalformedPlansThrow) {
  auto db = MakeDb();
  PhysicalOpPtr plan = BuildQueryPlan(*db, FindQuery("q6"));
  const std::string text = EncodePlanText(*plan);

  // Truncation at every line boundary must throw, never crash or mis-parse.
  size_t newlines = 0;
  for (size_t pos = 0; pos < text.size(); ++pos) {
    if (text[pos] != '\n' || pos + 1 == text.size()) {
      continue;
    }
    ++newlines;
    EXPECT_THROW(ParsePlanText(text.substr(0, pos + 1), *db), Error) << "line " << newlines;
  }
  ASSERT_GT(newlines, 2u);

  EXPECT_THROW(ParsePlanText("nonsense 1 2 3\n", *db), Error);
  // Unknown table name.
  std::string bad = text;
  const size_t at = bad.find("lineitem");
  ASSERT_NE(at, std::string::npos);
  bad.replace(at, 8, "notatable");
  EXPECT_THROW(ParsePlanText(bad, *db), Error);
  // Out-of-range enum value.
  EXPECT_THROW(ParsePlanText("op 250 1 0 0 0 -1 0 0000000000000000 - % 0 0 0 0 0 0 0\nendplan\n",
                             *db),
               Error);
  // Trailing tokens on an otherwise valid line.
  EXPECT_THROW(
      ParsePlanText("op 0 1 0 0 0 -1 0 0000000000000000 - % 0 0 0 0 0 0 0 junk\nendplan\n", *db),
      Error);
  // Missing endplan terminator.
  EXPECT_THROW(ParsePlanText("op 0 1 0 0 0 -1 0 0000000000000000 - % 0 0 0 0 0 0 0\n", *db),
               Error);
}

TEST(TraceFormatTest, SeededRandomTracesReachSerializationFixedPoint) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const WorkloadTrace original = RandomTrace(seed);
    const std::string text = EncodeTraceText(original);

    std::istringstream in(text);
    const WorkloadTrace parsed = ReadTrace(in);

    // parse(write(t)) preserves everything write serializes...
    EXPECT_TRUE(parsed.knobs == original.knobs) << "seed " << seed;
    ASSERT_EQ(parsed.queries.size(), original.queries.size()) << "seed " << seed;
    ASSERT_EQ(parsed.events.size(), original.events.size()) << "seed " << seed;
    for (size_t i = 0; i < parsed.queries.size(); ++i) {
      EXPECT_EQ(parsed.queries[i].literals, original.queries[i].literals)
          << "seed " << seed << " query " << i;
      EXPECT_EQ(parsed.queries[i].stream_hash, original.queries[i].stream_hash);
      EXPECT_EQ(parsed.queries[i].arrival_cycles, original.queries[i].arrival_cycles);
    }
    // ...and write(parse(text)) == text: the canonical form is a fixed point.
    EXPECT_EQ(EncodeTraceText(parsed), text) << "seed " << seed;
  }
}

TEST(TraceFormatTest, FutureVersionsAreRejected) {
  const WorkloadTrace trace = RandomTrace(7);
  std::string text = EncodeTraceText(trace);
  ASSERT_EQ(text.rfind("# dfp trace v1\n", 0), 0u);

  for (const std::string version : {"4", "17", "999"}) {
    std::string future = "# dfp trace v" + version + text.substr(text.find('\n'));
    std::istringstream in(future);
    try {
      ReadTrace(in);
      FAIL() << "v" << version << " accepted";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("newer"), std::string::npos) << e.what();
    }
  }
  // Non-trace input is rejected up front.
  std::istringstream not_a_trace("# dfp samples v4\n");
  EXPECT_THROW(ReadTrace(not_a_trace), Error);
  std::istringstream empty("");
  EXPECT_THROW(ReadTrace(empty), Error);
}

TEST(TraceFormatTest, ReoptKnobLineRoundTripsAsV3) {
  // Content-driven versioning: the reopt knob line (and only it) promotes a trace to v3, so
  // traces recorded with re-optimization off stay byte-identical v1/v2 files.
  WorkloadTrace trace = RandomTrace(3);
  ASSERT_EQ(EncodeTraceText(trace).rfind("# dfp trace v1\n", 0), 0u);

  trace.knobs.reopt_enabled = true;
  trace.knobs.reopt_divergence_pct = 250;
  trace.knobs.reopt_min_executions = 5;
  trace.knobs.reopt_semi_join_reduction = true;
  trace.knobs.reopt_semi_join_blowup_pct = 175;
  trace.knobs.reopt_pessimize = true;
  // Guard doubles must survive bit-exactly (they are IEEE-754 hex on the wire), including
  // values with no short decimal form.
  trace.knobs.reopt_guard.cycles_per_row_ratio = 1.0 + 1.0 / 3.0;
  trace.knobs.reopt_guard.remote_share_drift = 0.07;
  trace.knobs.reopt_guard.min_samples = 11;
  const std::string text = EncodeTraceText(trace);
  ASSERT_EQ(text.rfind("# dfp trace v3\n", 0), 0u);
  EXPECT_NE(text.find("\nreopt 1 250 5 1 175 1 "), std::string::npos);

  std::istringstream in(text);
  const WorkloadTrace parsed = ReadTrace(in);
  EXPECT_TRUE(parsed.knobs == trace.knobs);
  EXPECT_EQ(parsed.knobs.reopt_guard.cycles_per_row_ratio, 1.0 + 1.0 / 3.0);
  EXPECT_EQ(EncodeTraceText(parsed), text);

  // A corrupt reopt line throws instead of silently reverting to defaults.
  std::string bad = text;
  const size_t at = bad.find("\nreopt 1 250");
  ASSERT_NE(at, std::string::npos);
  bad.replace(at, 12, "\nreopt 1 bad");
  std::istringstream bad_in(bad);
  EXPECT_THROW(ReadTrace(bad_in), Error);

  // Non-default guard thresholds alone (reopt disabled) still force the v3 line: a replayed
  // keep/revert verdict must judge by the recorded bar, not the current build's default.
  WorkloadTrace guard_only = RandomTrace(4);
  guard_only.knobs.reopt_guard.min_samples = 40;
  const std::string guard_text = EncodeTraceText(guard_only);
  ASSERT_EQ(guard_text.rfind("# dfp trace v3\n", 0), 0u);
  std::istringstream guard_in(guard_text);
  EXPECT_EQ(ReadTrace(guard_in).knobs.reopt_guard.min_samples, 40u);
}

TEST(TraceFormatTest, TruncationAndCorruptionThrow) {
  const WorkloadTrace trace = RandomTrace(11);
  const std::string text = EncodeTraceText(trace);

  // Truncation at every line boundary (dropping the rest of the file) must throw: the 'end'
  // marker, the summary block, or a mid-stream line will be missing.
  for (size_t pos = text.find('\n'); pos + 1 < text.size(); pos = text.find('\n', pos + 1)) {
    std::istringstream in(text.substr(0, pos + 1));
    EXPECT_THROW(ReadTrace(in), Error);
  }

  // Corrupt individual lines.
  auto corrupt = [&text](const std::string& from, const std::string& to) {
    std::string bad = text;
    const size_t at = bad.find(from);
    EXPECT_NE(at, std::string::npos) << from;
    bad.replace(at, from.size(), to);
    std::istringstream in(bad);
    EXPECT_THROW(ReadTrace(in), Error) << from << " -> " << to;
  };
  corrupt("catalog ", "catalog notanumber");
  corrupt("\nknobs ", "\nknobs 4 bogus ");
  corrupt("\nsummary ", "\nbogus_keyword ");
  corrupt("\nquery 1 ", "\nquery 99 ");   // Out-of-order seq.
  corrupt("\ndone 1 ", "\ndone 9999 ");   // Unknown seq reference.
  corrupt("\nend\n", "\n");               // Missing end marker.
}

TEST(TraceFormatTest, KnobsRoundTripThroughServiceConfig) {
  ServiceConfig config;
  config.parallel.workers = 7;
  config.parallel.scheduler = SchedulerPolicy::kCentral;
  config.max_active_sessions = 5;
  config.queue_depth = 42;
  config.profiling.period = 917;
  config.profiling.packed_tags = true;
  config.continuous.governor.enabled = true;
  config.continuous.governor.overhead_budget = 0.035;
  config.tiering.enabled = true;
  config.tiering.break_even_ratio = 2.5;
  config.tiering.min_executions = 3;
  config.compile_costs.patch_per_site_cycles = 1234;
  config.reopt.enabled = true;
  config.reopt.divergence_pct = 300;
  config.reopt.min_executions = 4;
  config.reopt.semi_join_reduction = true;
  config.reopt.guard.cycles_per_row_ratio = 1.5;
  config.reopt.guard.min_samples = 25;

  const TraceKnobs knobs = CaptureKnobs(config);
  const ServiceConfig rebuilt = ApplyKnobs(knobs);
  EXPECT_TRUE(CaptureKnobs(rebuilt) == knobs);
  EXPECT_EQ(rebuilt.parallel.workers, 7u);
  EXPECT_EQ(rebuilt.parallel.scheduler, SchedulerPolicy::kCentral);
  EXPECT_EQ(rebuilt.queue_depth, 42u);
  EXPECT_EQ(rebuilt.profiling.period, 917u);
  EXPECT_TRUE(rebuilt.profiling.packed_tags);
  EXPECT_EQ(rebuilt.continuous.governor.overhead_budget, 0.035);
  EXPECT_EQ(rebuilt.tiering.break_even_ratio, 2.5);
  EXPECT_EQ(rebuilt.tiering.min_executions, 3u);
  EXPECT_EQ(rebuilt.compile_costs.patch_per_site_cycles, 1234u);
  EXPECT_TRUE(rebuilt.reopt.enabled);
  EXPECT_EQ(rebuilt.reopt.divergence_pct, 300u);
  EXPECT_EQ(rebuilt.reopt.min_executions, 4u);
  EXPECT_TRUE(rebuilt.reopt.semi_join_reduction);
  EXPECT_EQ(rebuilt.reopt.guard.cycles_per_row_ratio, 1.5);
  EXPECT_EQ(rebuilt.reopt.guard.min_samples, 25u);
}

TEST(TraceFormatTest, Fnv1a64MatchesReferenceVectors) {
  // Reference values of the 64-bit FNV-1a test vectors.
  EXPECT_EQ(Fnv1a64(""), 14695981039346656037ull);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(Fnv1a64("foobar"), 0x85944171f73967e8ull);
}

}  // namespace
}  // namespace dfp
