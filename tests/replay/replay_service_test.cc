// Differential replay tests: recording a mixed warm/cold/tiered workload and replaying it on
// the same build must reproduce every observation — byte-identical sample streams, identical
// service-profile text, identical tier timelines, an all-zero ReplayReport. What-if knobs must
// flag exactly their intended delta, and scaled replays must degrade through admission
// control, not crashes.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/replay/recorder.h"
#include "src/replay/replayer.h"
#include "src/replay/trace.h"
#include "src/service/service_profile.h"
#include "src/sql/binder.h"
#include "src/tiering/report.h"
#include "src/tpch/datagen.h"
#include "src/tpch/queries.h"
#include "src/util/check.h"

namespace dfp {
namespace {

ServiceConfig TestConfig() {
  ServiceConfig config;
  config.parallel.workers = 4;
  config.max_active_sessions = 2;
  config.session_hashtables_bytes = 32ull << 20;
  config.session_output_bytes = 16ull << 20;
  config.session_state_bytes = 512ull * 1024;
  config.profiling.period = 311;
  config.tiering.enabled = true;
  return config;
}

// Recording and replaying MUST use separate, identically generated databases: the service
// compiles code and carves session regions out of its database, so replaying into the
// recording database would shift every address (and therefore every sample stream).
std::unique_ptr<Database> MakeDb(const ServiceConfig& config) {
  DatabaseConfig db_config;
  db_config.extra_bytes = ServiceArenaBytes(config);
  auto db = std::make_unique<Database>(db_config);
  TpchOptions options;
  options.scale = 0.01;
  GenerateTpch(*db, options);
  return db;
}

std::string Q6Variant(double lo, double hi, int quantity) {
  char buffer[512];
  std::snprintf(buffer, sizeof(buffer),
                "select sum(l_extendedprice * l_discount) as revenue from lineitem "
                "where l_shipdate >= date '1994-01-01' and l_shipdate < date '1995-01-01' "
                "and l_discount between %.2f and %.2f and l_quantity < %d",
                lo, hi, quantity);
  return buffer;
}

struct Recording {
  WorkloadTrace trace;
  std::vector<std::string> streams;
  std::string profile_text;
  std::string timeline_text;
};

// Mixed workload: cold distinct structures (q1, q3), a warm exact repeat (q1), and a q6
// literal family driving parameterized patch hits, baseline-tier compiles, and a background
// promotion with an atomic swap — every serving mode the replayer must reproduce.
Recording RecordMixedWorkload(Database& db, const ServiceConfig& config) {
  QueryService service(db, config);
  TraceRecorder recorder;
  recorder.set_keep_streams(true);
  service.AttachRecorder(recorder);

  service.Submit(BuildQueryPlan(db, FindQuery("q1")), "q1");
  service.Submit(BuildQueryPlan(db, FindQuery("q3")), "q3");
  service.Drain();

  service.Submit(BuildQueryPlan(db, FindQuery("q1")), "q1");
  for (double lo : {0.02, 0.03, 0.04, 0.05}) {
    service.Submit(PlanSql(db, Q6Variant(lo, lo + 0.02, 24)), "q6");
  }
  service.Drain();

  for (double lo : {0.02, 0.03, 0.04}) {
    service.Submit(PlanSql(db, Q6Variant(lo, lo + 0.02, 24)), "q6");
  }
  service.Drain();

  recorder.Finish(service);
  Recording recording;
  recording.trace = recorder.trace();
  recording.streams = recorder.streams();
  std::ostringstream profile;
  WriteServiceProfile(service.fleet_profile(), service.windows(), profile);
  recording.profile_text = profile.str();
  recording.timeline_text = RenderTierTimeline(service.windows(), service.tier_controller());
  return recording;
}

TEST(ReplayServiceTest, ZeroDiffReplayReproducesEveryObservation) {
  const ServiceConfig config = TestConfig();
  auto record_db = MakeDb(config);
  const Recording recording = RecordMixedWorkload(*record_db, config);

  // The workload genuinely mixes serving modes; otherwise the zero-diff claim is hollow.
  const TraceSummary& summary = recording.trace.summary;
  EXPECT_EQ(summary.queries, 10u);
  EXPECT_EQ(summary.completed, 10u);
  EXPECT_GT(summary.cache_hits, 0u);
  EXPECT_GT(summary.cache_misses, 0u);
  EXPECT_GT(summary.patched_hits, 0u);
  EXPECT_GT(summary.tier_swaps, 0u);
  EXPECT_GT(summary.samples, 0u);

  // Round-trip through the text format, as a persisted trace would.
  const std::string text = EncodeTraceText(recording.trace);
  std::istringstream in(text);
  const WorkloadTrace parsed = ReadTrace(in);
  EXPECT_EQ(EncodeTraceText(parsed), text);

  auto replay_db = MakeDb(config);
  ReplayOptions options;
  options.keep_streams = true;
  const ReplayRun run = ReplayTrace(*replay_db, parsed, options);

  const ReplayReport report = DiffTraces(recording.trace, run.trace);
  EXPECT_TRUE(report.identical) << RenderReplayReport(report);
  EXPECT_TRUE(report.knobs_identical);
  EXPECT_TRUE(report.streams_identical);
  EXPECT_TRUE(report.tiers_identical);
  EXPECT_EQ(report.queries_diverged, 0u);
  EXPECT_EQ(report.results_diverged, 0u);

  // Byte-identical sample streams, per query.
  ASSERT_EQ(run.sample_streams.size(), recording.streams.size());
  for (size_t i = 0; i < recording.streams.size(); ++i) {
    EXPECT_FALSE(recording.trace.queries[i].completed && recording.streams[i].empty());
    EXPECT_EQ(run.sample_streams[i], recording.streams[i]) << "query " << i + 1;
  }
  // Identical rendered service views.
  EXPECT_EQ(run.service_profile_text, recording.profile_text);
  EXPECT_EQ(run.tier_timeline_text, recording.timeline_text);
  // The replayed run's own trace re-serializes to the exact recorded text.
  EXPECT_EQ(EncodeTraceText(run.trace), text);
}

TEST(ReplayServiceTest, MutatedKnobReplayFlagsIntendedDeltaAndNothingElse) {
  const ServiceConfig config = TestConfig();
  auto record_db = MakeDb(config);
  const Recording recording = RecordMixedWorkload(*record_db, config);
  ASSERT_GT(recording.trace.summary.tier_swaps, 0u);

  // What-if: disable tiered compilation. The intended delta is the tier ladder disappearing —
  // no baseline compiles, no swaps, an empty baseline slice in the timeline.
  auto replay_db = MakeDb(config);
  ReplayOptions options;
  options.knobs.tiering_enabled = 0;
  const ReplayRun run = ReplayTrace(*replay_db, recording.trace, options);
  const ReplayReport report = DiffTraces(recording.trace, run.trace);

  EXPECT_FALSE(report.identical);
  EXPECT_FALSE(report.knobs_identical);
  EXPECT_GT(report.recorded_tier_swaps, 0u);
  EXPECT_EQ(report.replayed_tier_swaps, 0u);
  EXPECT_EQ(report.replayed_tiers.baseline_samples, 0u);
  EXPECT_FALSE(report.tiers_identical);

  // ...and nothing else: same admission outcomes, same completions, same result row counts.
  EXPECT_EQ(report.replayed_queries, report.recorded_queries);
  EXPECT_EQ(report.replayed_completed, report.recorded_completed);
  EXPECT_EQ(report.replayed_rejected, report.recorded_rejected);
  EXPECT_EQ(report.replayed_timed_out, report.recorded_timed_out);
  EXPECT_EQ(report.results_diverged, 0u);
}

TEST(ReplayServiceTest, TenXSessionMultiplierDegradesThroughAdmissionControl) {
  const ServiceConfig config = TestConfig();
  auto record_db = MakeDb(config);
  const Recording recording = RecordMixedWorkload(*record_db, config);

  auto replay_db = MakeDb(config);
  ReplayOptions options;
  options.knobs.session_multiplier = 10;
  const ReplayRun run = ReplayTrace(*replay_db, recording.trace, options);
  ReplayReport report = DiffTraces(recording.trace, run.trace);
  report.session_multiplier = options.knobs.session_multiplier;

  EXPECT_FALSE(report.identical);
  EXPECT_EQ(report.replayed_queries, 10 * report.recorded_queries);
  // The bounded queue sheds the surplus instead of falling over...
  EXPECT_GT(report.replayed_rejected, report.recorded_rejected);
  // ...and everything admitted still finishes.
  EXPECT_EQ(report.replayed_completed + report.replayed_rejected + report.replayed_timed_out,
            report.replayed_queries);
  EXPECT_GT(report.replayed_completed, report.recorded_completed);
}

TEST(ReplayServiceTest, SchedulerWhatIfKeepsResultsWhileTimingShifts) {
  const ServiceConfig config = TestConfig();
  ASSERT_EQ(config.parallel.scheduler, SchedulerPolicy::kWorkStealing);
  auto record_db = MakeDb(config);
  const Recording recording = RecordMixedWorkload(*record_db, config);

  auto replay_db = MakeDb(config);
  ReplayOptions options;
  options.knobs.scheduler = static_cast<int>(SchedulerPolicy::kCentral);
  const ReplayRun run = ReplayTrace(*replay_db, recording.trace, options);
  const ReplayReport report = DiffTraces(recording.trace, run.trace);

  EXPECT_FALSE(report.knobs_identical);
  EXPECT_EQ(report.replayed_completed, report.recorded_completed);
  EXPECT_EQ(report.replayed_rejected, report.recorded_rejected);
  EXPECT_EQ(report.results_diverged, 0u);  // Same values out, whatever the schedule.
}

TEST(ReplayServiceTest, CatalogVersionMismatchThrows) {
  const ServiceConfig config = TestConfig();
  auto record_db = MakeDb(config);
  const Recording recording = RecordMixedWorkload(*record_db, config);

  auto replay_db = MakeDb(config);
  WorkloadTrace doctored = recording.trace;
  doctored.catalog_version += 1;
  EXPECT_THROW(ReplayTrace(*replay_db, doctored), Error);
}

TEST(ReplayServiceTest, AttachingRecorderToWarmedServiceThrows) {
  ServiceConfig config = TestConfig();
  config.state_path = ::testing::TempDir() + "dfp_replay_attach_test.profile";
  std::remove(config.state_path.c_str());
  auto db = MakeDb(config);
  {
    QueryService service(*db, config);
    service.Submit(BuildQueryPlan(*db, FindQuery("q6")), "q6");
    service.Drain();
  }  // Destructor persists the service clock.

  // A restarted service resumes a nonzero clock; replay traces must start from zero.
  auto db2 = MakeDb(config);
  QueryService warmed(*db2, config);
  TraceRecorder recorder;
  EXPECT_THROW(warmed.AttachRecorder(recorder), Error);
  std::remove(config.state_path.c_str());
}

TEST(ReplayServiceTest, MissingTemplateThrows) {
  const ServiceConfig config = TestConfig();
  auto record_db = MakeDb(config);
  const Recording recording = RecordMixedWorkload(*record_db, config);

  auto replay_db = MakeDb(config);
  WorkloadTrace doctored = recording.trace;
  doctored.templates.clear();
  EXPECT_THROW(ReplayTrace(*replay_db, doctored), Error);
}

}  // namespace
}  // namespace dfp
