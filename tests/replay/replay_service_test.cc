// Differential replay tests: recording a mixed warm/cold/tiered workload and replaying it on
// the same build must reproduce every observation — byte-identical sample streams, identical
// service-profile text, identical tier timelines, an all-zero ReplayReport. What-if knobs must
// flag exactly their intended delta, and scaled replays must degrade through admission
// control, not crashes.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/plan/builder.h"
#include "src/plan/physical.h"
#include "src/replay/recorder.h"
#include "src/replay/replayer.h"
#include "src/replay/trace.h"
#include "src/service/service_profile.h"
#include "src/sql/binder.h"
#include "src/tiering/report.h"
#include "src/tpch/datagen.h"
#include "src/tpch/queries.h"
#include "src/util/check.h"

namespace dfp {
namespace {

ServiceConfig TestConfig() {
  ServiceConfig config;
  config.parallel.workers = 4;
  config.max_active_sessions = 2;
  config.session_hashtables_bytes = 32ull << 20;
  config.session_output_bytes = 16ull << 20;
  config.session_state_bytes = 512ull * 1024;
  config.profiling.period = 311;
  config.tiering.enabled = true;
  return config;
}

// Recording and replaying MUST use separate, identically generated databases: the service
// compiles code and carves session regions out of its database, so replaying into the
// recording database would shift every address (and therefore every sample stream).
std::unique_ptr<Database> MakeDb(const ServiceConfig& config) {
  DatabaseConfig db_config;
  db_config.extra_bytes = ServiceArenaBytes(config);
  auto db = std::make_unique<Database>(db_config);
  TpchOptions options;
  options.scale = 0.01;
  GenerateTpch(*db, options);
  return db;
}

std::string Q6Variant(double lo, double hi, int quantity) {
  char buffer[512];
  std::snprintf(buffer, sizeof(buffer),
                "select sum(l_extendedprice * l_discount) as revenue from lineitem "
                "where l_shipdate >= date '1994-01-01' and l_shipdate < date '1995-01-01' "
                "and l_discount between %.2f and %.2f and l_quantity < %d",
                lo, hi, quantity);
  return buffer;
}

struct Recording {
  WorkloadTrace trace;
  std::vector<std::string> streams;
  std::string profile_text;
  std::string timeline_text;
};

// Mixed workload: cold distinct structures (q1, q3), a warm exact repeat (q1), and a q6
// literal family driving parameterized patch hits, baseline-tier compiles, and a background
// promotion with an atomic swap — every serving mode the replayer must reproduce.
Recording RecordMixedWorkload(Database& db, const ServiceConfig& config) {
  QueryService service(db, config);
  TraceRecorder recorder;
  recorder.set_keep_streams(true);
  service.AttachRecorder(recorder);

  service.Submit(BuildQueryPlan(db, FindQuery("q1")), "q1");
  service.Submit(BuildQueryPlan(db, FindQuery("q3")), "q3");
  service.Drain();

  service.Submit(BuildQueryPlan(db, FindQuery("q1")), "q1");
  for (double lo : {0.02, 0.03, 0.04, 0.05}) {
    service.Submit(PlanSql(db, Q6Variant(lo, lo + 0.02, 24)), "q6");
  }
  service.Drain();

  for (double lo : {0.02, 0.03, 0.04}) {
    service.Submit(PlanSql(db, Q6Variant(lo, lo + 0.02, 24)), "q6");
  }
  service.Drain();

  recorder.Finish(service);
  Recording recording;
  recording.trace = recorder.trace();
  recording.streams = recorder.streams();
  std::ostringstream profile;
  WriteServiceProfile(service.fleet_profile(), service.windows(), profile);
  recording.profile_text = profile.str();
  recording.timeline_text = RenderTierTimeline(service.windows(), service.tier_controller());
  return recording;
}

TEST(ReplayServiceTest, ZeroDiffReplayReproducesEveryObservation) {
  const ServiceConfig config = TestConfig();
  auto record_db = MakeDb(config);
  const Recording recording = RecordMixedWorkload(*record_db, config);

  // The workload genuinely mixes serving modes; otherwise the zero-diff claim is hollow.
  const TraceSummary& summary = recording.trace.summary;
  EXPECT_EQ(summary.queries, 10u);
  EXPECT_EQ(summary.completed, 10u);
  EXPECT_GT(summary.cache_hits, 0u);
  EXPECT_GT(summary.cache_misses, 0u);
  EXPECT_GT(summary.patched_hits, 0u);
  EXPECT_GT(summary.tier_swaps, 0u);
  EXPECT_GT(summary.samples, 0u);

  // Round-trip through the text format, as a persisted trace would.
  const std::string text = EncodeTraceText(recording.trace);
  std::istringstream in(text);
  const WorkloadTrace parsed = ReadTrace(in);
  EXPECT_EQ(EncodeTraceText(parsed), text);

  auto replay_db = MakeDb(config);
  ReplayOptions options;
  options.keep_streams = true;
  const ReplayRun run = ReplayTrace(*replay_db, parsed, options);

  const ReplayReport report = DiffTraces(recording.trace, run.trace);
  EXPECT_TRUE(report.identical) << RenderReplayReport(report);
  EXPECT_TRUE(report.knobs_identical);
  EXPECT_TRUE(report.streams_identical);
  EXPECT_TRUE(report.tiers_identical);
  EXPECT_EQ(report.queries_diverged, 0u);
  EXPECT_EQ(report.results_diverged, 0u);

  // Byte-identical sample streams, per query.
  ASSERT_EQ(run.sample_streams.size(), recording.streams.size());
  for (size_t i = 0; i < recording.streams.size(); ++i) {
    EXPECT_FALSE(recording.trace.queries[i].completed && recording.streams[i].empty());
    EXPECT_EQ(run.sample_streams[i], recording.streams[i]) << "query " << i + 1;
  }
  // Identical rendered service views.
  EXPECT_EQ(run.service_profile_text, recording.profile_text);
  EXPECT_EQ(run.tier_timeline_text, recording.timeline_text);
  // The replayed run's own trace re-serializes to the exact recorded text.
  EXPECT_EQ(EncodeTraceText(run.trace), text);
}

TEST(ReplayServiceTest, MutatedKnobReplayFlagsIntendedDeltaAndNothingElse) {
  const ServiceConfig config = TestConfig();
  auto record_db = MakeDb(config);
  const Recording recording = RecordMixedWorkload(*record_db, config);
  ASSERT_GT(recording.trace.summary.tier_swaps, 0u);

  // What-if: disable tiered compilation. The intended delta is the tier ladder disappearing —
  // no baseline compiles, no swaps, an empty baseline slice in the timeline.
  auto replay_db = MakeDb(config);
  ReplayOptions options;
  options.knobs.tiering_enabled = 0;
  const ReplayRun run = ReplayTrace(*replay_db, recording.trace, options);
  const ReplayReport report = DiffTraces(recording.trace, run.trace);

  EXPECT_FALSE(report.identical);
  EXPECT_FALSE(report.knobs_identical);
  EXPECT_GT(report.recorded_tier_swaps, 0u);
  EXPECT_EQ(report.replayed_tier_swaps, 0u);
  EXPECT_EQ(report.replayed_tiers.baseline_samples, 0u);
  EXPECT_FALSE(report.tiers_identical);

  // ...and nothing else: same admission outcomes, same completions, same result row counts.
  EXPECT_EQ(report.replayed_queries, report.recorded_queries);
  EXPECT_EQ(report.replayed_completed, report.recorded_completed);
  EXPECT_EQ(report.replayed_rejected, report.recorded_rejected);
  EXPECT_EQ(report.replayed_timed_out, report.recorded_timed_out);
  EXPECT_EQ(report.results_diverged, 0u);
}

TEST(ReplayServiceTest, TenXSessionMultiplierDegradesThroughAdmissionControl) {
  const ServiceConfig config = TestConfig();
  auto record_db = MakeDb(config);
  const Recording recording = RecordMixedWorkload(*record_db, config);

  auto replay_db = MakeDb(config);
  ReplayOptions options;
  options.knobs.session_multiplier = 10;
  const ReplayRun run = ReplayTrace(*replay_db, recording.trace, options);
  ReplayReport report = DiffTraces(recording.trace, run.trace);
  report.session_multiplier = options.knobs.session_multiplier;

  EXPECT_FALSE(report.identical);
  EXPECT_EQ(report.replayed_queries, 10 * report.recorded_queries);
  // The bounded queue sheds the surplus instead of falling over...
  EXPECT_GT(report.replayed_rejected, report.recorded_rejected);
  // ...and everything admitted still finishes.
  EXPECT_EQ(report.replayed_completed + report.replayed_rejected + report.replayed_timed_out,
            report.replayed_queries);
  EXPECT_GT(report.replayed_completed, report.recorded_completed);
}

TEST(ReplayServiceTest, SchedulerWhatIfKeepsResultsWhileTimingShifts) {
  const ServiceConfig config = TestConfig();
  ASSERT_EQ(config.parallel.scheduler, SchedulerPolicy::kWorkStealing);
  auto record_db = MakeDb(config);
  const Recording recording = RecordMixedWorkload(*record_db, config);

  auto replay_db = MakeDb(config);
  ReplayOptions options;
  options.knobs.scheduler = static_cast<int>(SchedulerPolicy::kCentral);
  const ReplayRun run = ReplayTrace(*replay_db, recording.trace, options);
  const ReplayReport report = DiffTraces(recording.trace, run.trace);

  EXPECT_FALSE(report.knobs_identical);
  EXPECT_EQ(report.replayed_completed, report.recorded_completed);
  EXPECT_EQ(report.replayed_rejected, report.recorded_rejected);
  EXPECT_EQ(report.results_diverged, 0u);  // Same values out, whatever the schedule.
}

TEST(ReplayServiceTest, CatalogVersionMismatchThrows) {
  const ServiceConfig config = TestConfig();
  auto record_db = MakeDb(config);
  const Recording recording = RecordMixedWorkload(*record_db, config);

  auto replay_db = MakeDb(config);
  WorkloadTrace doctored = recording.trace;
  doctored.catalog_version += 1;
  EXPECT_THROW(ReplayTrace(*replay_db, doctored), Error);
}

TEST(ReplayServiceTest, AttachingRecorderToWarmedServiceThrows) {
  ServiceConfig config = TestConfig();
  config.state_path = ::testing::TempDir() + "dfp_replay_attach_test.profile";
  std::remove(config.state_path.c_str());
  auto db = MakeDb(config);
  {
    QueryService service(*db, config);
    service.Submit(BuildQueryPlan(*db, FindQuery("q6")), "q6");
    service.Drain();
  }  // Destructor persists the service clock.

  // A restarted service resumes a nonzero clock; replay traces must start from zero.
  auto db2 = MakeDb(config);
  QueryService warmed(*db2, config);
  TraceRecorder recorder;
  EXPECT_THROW(warmed.AttachRecorder(recorder), Error);
  std::remove(config.state_path.c_str());
}

// One q6 execution whose scan estimate is optionally hand-set (the SQL binder's join-ordering
// scenario): ResolveMorselRows sizes morsels from the estimate, so a tuned estimate genuinely
// changes the execution schedule and therefore the sample stream.
Recording RecordTunedQ6(Database& db, const ServiceConfig& config, double scan_estimate) {
  QueryService service(db, config);
  TraceRecorder recorder;
  recorder.set_keep_streams(true);
  service.AttachRecorder(recorder);

  PhysicalOpPtr plan = BuildQueryPlan(db, FindQuery("q6"));
  if (scan_estimate > 0) {
    for (PhysicalOp* op : PlanOperators(*plan)) {
      if (op->kind == OpKind::kTableScan) {
        op->estimated_rows = scan_estimate;
      }
    }
  }
  service.Submit(std::move(plan), "q6_tuned");
  service.Drain();

  recorder.Finish(service);
  Recording recording;
  recording.trace = recorder.trace();
  recording.streams = recorder.streams();
  return recording;
}

TEST(ReplayServiceTest, HandSetEstimatesSurviveReplayRefinalization) {
  // Regression test: the replayer re-finalizes each cloned template after re-binding literals,
  // and must reset only default-derived estimates (estimate == bound). Zeroing unconditionally
  // would clobber hand-set estimates and silently diverge the replayed morsel schedule.
  const ServiceConfig config = TestConfig();
  auto stock_db = MakeDb(config);
  const Recording stock = RecordTunedQ6(*stock_db, config, 0);
  auto tuned_db = MakeDb(config);
  const Recording tuned = RecordTunedQ6(*tuned_db, config, 500);

  // The hand-set estimate is load-bearing: it shrinks the morsels, which moves every task
  // boundary and sample, so the tuned recording's stream differs from the stock one.
  ASSERT_EQ(stock.streams.size(), 1u);
  ASSERT_EQ(tuned.streams.size(), 1u);
  ASSERT_NE(tuned.streams[0], stock.streams[0]);

  auto replay_db = MakeDb(config);
  ReplayOptions options;
  options.keep_streams = true;
  const ReplayRun run = ReplayTrace(*replay_db, tuned.trace, options);
  const ReplayReport report = DiffTraces(tuned.trace, run.trace);
  EXPECT_TRUE(report.identical) << RenderReplayReport(report);
  ASSERT_EQ(run.sample_streams.size(), 1u);
  EXPECT_EQ(run.sample_streams[0], tuned.streams[0]);
}

// The misestimated join spine from the reopt service tests: supplier (estimate 100) sits below
// the part filter (estimate 2000, measured ~50), so with re-optimization on, the loop re-plans
// and swaps within a few executions.
PhysicalOpPtr MisestimatedSpine(Database& db) {
  PlanBuilder supplier = PlanBuilder::Scan(db.table("supplier"));
  PlanBuilder part = PlanBuilder::Scan(db.table("part"));
  part.FilterBy(
      MakeBinary(BinOp::kLt, part.Col("p_partkey"), MakeLiteral(ColumnType::kInt64, 50)));
  PlanBuilder plan = PlanBuilder::Scan(db.table("lineitem"));
  plan.JoinWith(std::move(supplier), {"l_suppkey"}, {"s_suppkey"}, {"s_acctbal"});
  plan.JoinWith(std::move(part), {"l_partkey"}, {"p_partkey"}, {"p_retailprice"});
  return plan.Build();
}

Recording RecordReoptWorkload(Database& db, const ServiceConfig& config, int runs,
                              uint64_t* kept) {
  QueryService service(db, config);
  TraceRecorder recorder;
  recorder.set_keep_streams(true);
  service.AttachRecorder(recorder);
  for (int i = 0; i < runs; ++i) {
    service.Submit(MisestimatedSpine(db), "q_spine");
    service.Drain();
  }
  recorder.Finish(service);
  *kept = service.reopts().kept();
  Recording recording;
  recording.trace = recorder.trace();
  recording.streams = recorder.streams();
  std::ostringstream profile;
  WriteServiceProfile(service.fleet_profile(), service.windows(), profile);
  recording.profile_text = profile.str();
  recording.timeline_text = RenderTierTimeline(service.windows(), service.tier_controller());
  return recording;
}

TEST(ReplayServiceTest, ReoptClosedLoopReplaysByteIdentical) {
  // A recording that decides, applies, and keeps a re-optimized plan mid-trace is still a pure
  // function of (config, submission sequence): identity replay reproduces the whole loop —
  // including the swap point — bit for bit.
  ServiceConfig config = TestConfig();
  config.reopt.enabled = true;
  config.continuous.window.width_cycles = 1'000'000;
  auto record_db = MakeDb(config);
  uint64_t kept = 0;
  const Recording recording = RecordReoptWorkload(*record_db, config, 14, &kept);
  ASSERT_EQ(kept, 1u);  // The recording genuinely swapped a candidate in and kept it.

  // The reopt knobs (trigger thresholds and guard bar) ride the trace as its v3 line.
  const std::string text = EncodeTraceText(recording.trace);
  ASSERT_EQ(text.rfind("# dfp trace v3\n", 0), 0u);
  std::istringstream in(text);
  const WorkloadTrace parsed = ReadTrace(in);

  auto replay_db = MakeDb(config);
  ReplayOptions options;
  options.keep_streams = true;
  const ReplayRun run = ReplayTrace(*replay_db, parsed, options);
  const ReplayReport report = DiffTraces(recording.trace, run.trace);
  EXPECT_TRUE(report.identical) << RenderReplayReport(report);
  EXPECT_TRUE(report.streams_identical);
  ASSERT_EQ(run.sample_streams.size(), recording.streams.size());
  for (size_t i = 0; i < recording.streams.size(); ++i) {
    EXPECT_EQ(run.sample_streams[i], recording.streams[i]) << "query " << i + 1;
  }
  EXPECT_EQ(run.service_profile_text, recording.profile_text);
  EXPECT_EQ(run.tier_timeline_text, recording.timeline_text);
}

TEST(ReplayServiceTest, ReoptWhatIfChangesCodeButNeverResults) {
  // "What if re-optimization had been on?" against traffic recorded with it off: the replayed
  // loop re-plans and swaps, so post-swap queries run different compiled code (streams and
  // cycles diverge) — but a rewritten plan computes the same relation, so the gate is
  // results_diverged == 0.
  ServiceConfig config = TestConfig();
  config.continuous.window.width_cycles = 1'000'000;
  auto record_db = MakeDb(config);
  uint64_t kept = 0;
  const Recording recording = RecordReoptWorkload(*record_db, config, 14, &kept);
  ASSERT_EQ(kept, 0u);  // Off by default: the recording never re-planned.

  auto replay_db = MakeDb(config);
  ReplayOptions options;
  options.knobs.reopt = 1;
  const ReplayRun run = ReplayTrace(*replay_db, recording.trace, options);
  const ReplayReport report = DiffTraces(recording.trace, run.trace);
  EXPECT_FALSE(report.knobs_identical);
  EXPECT_GT(report.queries_diverged, 0u);
  EXPECT_EQ(report.results_diverged, 0u);
  EXPECT_EQ(report.replayed_completed, report.recorded_completed);
  EXPECT_EQ(report.replayed_rejected, report.recorded_rejected);
}

TEST(ReplayServiceTest, MissingTemplateThrows) {
  const ServiceConfig config = TestConfig();
  auto record_db = MakeDb(config);
  const Recording recording = RecordMixedWorkload(*record_db, config);

  auto replay_db = MakeDb(config);
  WorkloadTrace doctored = recording.trace;
  doctored.templates.clear();
  EXPECT_THROW(ReplayTrace(*replay_db, doctored), Error);
}

}  // namespace
}  // namespace dfp
