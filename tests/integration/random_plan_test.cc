// Property test: randomly generated physical plans (filters, maps, joins, aggregations, sorts)
// over random data — compiled execution must agree with the Volcano oracle for every seed.
#include <gtest/gtest.h>

#include "src/engine/query_engine.h"
#include "src/interp/interpreter.h"
#include "src/plan/builder.h"
#include "src/util/random.h"

namespace dfp {
namespace {

// One shared database with two random tables.
Database* RandomDb() {
  static Database* db = [] {
    auto* instance = new Database();
    Random rng(4242);
    TableBuilder dims = instance->CreateTableBuilder({"d",
                                                      {{"k", ColumnType::kInt64},
                                                       {"grp", ColumnType::kInt64},
                                                       {"label", ColumnType::kString}}});
    for (int i = 0; i < 300; ++i) {
      dims.BeginRow();
      dims.SetI64(0, i);
      dims.SetI64(1, rng.Uniform(0, 9));
      dims.SetString(2, rng.Chance(0.3) ? "hot" : "cold");
    }
    instance->AddTable(dims.Finish());
    TableBuilder facts = instance->CreateTableBuilder({"f",
                                                       {{"k", ColumnType::kInt64},
                                                        {"a", ColumnType::kInt64},
                                                        {"m", ColumnType::kDecimal},
                                                        {"x", ColumnType::kDouble}}});
    for (int i = 0; i < 8000; ++i) {
      facts.BeginRow();
      facts.SetI64(0, rng.Uniform(0, 399));  // 25% of keys miss `d`.
      facts.SetI64(1, rng.Uniform(-50, 50));
      facts.SetDecimal(2, rng.Uniform(-10000, 10000));
      facts.SetDouble(3, static_cast<double>(rng.Uniform(-1000, 1000)) / 8.0);
    }
    instance->AddTable(facts.Finish());
    return instance;
  }();
  return db;
}

// Random boolean predicate over the current schema (int/decimal comparisons, conjunctions).
ExprPtr RandomPredicate(Random& rng, const PlanBuilder& plan, int depth) {
  if (depth > 0 && rng.Chance(0.4)) {
    BinOp op = rng.Chance(0.6) ? BinOp::kAnd : BinOp::kOr;
    return MakeBinary(op, RandomPredicate(rng, plan, depth - 1),
                      RandomPredicate(rng, plan, depth - 1));
  }
  // Leaf: compare a random comparable column against a literal.
  std::vector<int> candidates;
  for (size_t i = 0; i < plan.schema().size(); ++i) {
    ColumnType type = plan.schema()[i].type;
    if (type == ColumnType::kInt64 || type == ColumnType::kDecimal) {
      candidates.push_back(static_cast<int>(i));
    }
  }
  int slot = candidates[static_cast<size_t>(rng.Uniform(
      0, static_cast<int64_t>(candidates.size()) - 1))];
  ColumnType type = plan.schema()[static_cast<size_t>(slot)].type;
  BinOp ops[] = {BinOp::kLt, BinOp::kLe, BinOp::kGt, BinOp::kGe, BinOp::kEq, BinOp::kNe};
  BinOp op = ops[rng.Uniform(0, 5)];
  int64_t payload = type == ColumnType::kDecimal ? rng.Uniform(-8000, 8000) : rng.Uniform(-40, 300);
  return MakeBinary(op, MakeColumnRef(slot, type), MakeLiteral(type, payload));
}

PhysicalOpPtr RandomPlan(Random& rng, Database& db) {
  PlanBuilder plan = PlanBuilder::Scan(db.table("f"));
  if (rng.Chance(0.7)) {
    plan.FilterBy(RandomPredicate(rng, plan, 2));
  }
  if (rng.Chance(0.5)) {
    plan.MapTo(NamedExprs(
        "derived", MakeBinary(rng.Chance(0.5) ? BinOp::kAdd : BinOp::kMul,
                              plan.Col("a"), MakeLiteral(ColumnType::kInt64, rng.Uniform(1, 5)))));
  }
  bool joined = rng.Chance(0.7);
  if (joined) {
    PlanBuilder dims = PlanBuilder::Scan(db.table("d"));
    if (rng.Chance(0.5)) {
      dims.FilterBy(MakeBinary(BinOp::kLt, dims.Col("k"),
                               MakeLiteral(ColumnType::kInt64, rng.Uniform(50, 300))));
    }
    int64_t join_kind = rng.Uniform(0, 2);
    if (join_kind == 0) {
      plan.JoinWith(std::move(dims), {"k"}, {"k"}, {"grp", "label"});
    } else if (join_kind == 1) {
      plan.JoinWith(std::move(dims), {"k"}, {"k"}, {}, JoinType::kSemi);
    } else {
      plan.JoinWith(std::move(dims), {"k"}, {"k"}, {}, JoinType::kAnti);
    }
  }
  int64_t shape = rng.Uniform(0, 2);
  if (shape == 0) {
    // Aggregation over a small-cardinality key.
    std::string key = joined && rng.Chance(0.5) &&
                              plan.schema().size() > 4  // grp present on inner joins only.
                          ? "a"
                          : "a";
    plan.GroupByKeys({key},
                     NamedExprs("n", MakeAggregate(AggOp::kCountStar, nullptr), "s",
                                MakeAggregate(AggOp::kSum, plan.Col("m")), "mx",
                                MakeAggregate(AggOp::kMax, plan.Col("x"))));
    if (rng.Chance(0.5)) {
      plan.FilterBy(MakeBinary(BinOp::kGt, plan.Col("n"), MakeLiteral(ColumnType::kInt64, 2)));
    }
  } else if (shape == 1) {
    plan.OrderBy({{"m", rng.Chance(0.5)}, {"k", false}},
                 rng.Chance(0.5) ? rng.Uniform(1, 50) : -1);
  } else {
    plan.Project({"k", "m"});
    if (rng.Chance(0.3)) {
      plan.LimitTo(rng.Uniform(1, 1000));
    }
  }
  return plan.Build();
}

class RandomPlanTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomPlanTest, CompiledMatchesOracle) {
  Random rng(GetParam());
  Database& db = *RandomDb();
  QueryEngine engine(&db);
  PhysicalOpPtr plan = RandomPlan(rng, db);
  const bool ordered = plan->child(0)->kind == OpKind::kSort;
  CompiledQuery query = engine.Compile(std::move(plan), nullptr, "random");
  Result compiled = engine.Execute(query);
  Result reference = InterpretPlan(db, *query.plan);
  std::string diff;
  EXPECT_TRUE(Result::Equivalent(compiled, reference, ordered, &diff))
      << "seed " << GetParam() << ": " << diff;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPlanTest, ::testing::Range<uint64_t>(1, 41));

}  // namespace
}  // namespace dfp
