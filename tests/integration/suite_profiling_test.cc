// Integration: the full TPC-H-derived query suite under every profiling configuration —
// results must be identical to unprofiled execution and attribution must stay in the paper's
// regime across the board.
#include <gtest/gtest.h>

#include "src/engine/query_engine.h"
#include "src/profiling/validation.h"
#include "src/tpch/datagen.h"
#include "src/tpch/queries.h"

namespace dfp {
namespace {

Database* SuiteDb() {
  static Database* db = [] {
    auto* instance = new Database();
    TpchOptions options;
    options.scale = 0.002;
    GenerateTpch(*instance, options);
    return instance;
  }();
  return db;
}

class SuiteProfiling : public ::testing::TestWithParam<std::string> {};

TEST_P(SuiteProfiling, AllModesAgreeAndAttribute) {
  const QuerySpec& spec = FindQuery(GetParam());
  Database& db = *SuiteDb();
  QueryEngine engine(&db);

  CompiledQuery plain = engine.Compile(BuildQueryPlan(db, spec), nullptr, spec.name);
  Result expected = engine.Execute(plain);
  const uint64_t plain_cycles = engine.last_cycles();

  for (AttributionMode mode :
       {AttributionMode::kRegisterTagging, AttributionMode::kCallStack}) {
    ProfilingConfig config;
    config.period = 700;
    config.attribution = mode;
    ProfilingSession session(config);
    CompiledQuery query =
        engine.Compile(BuildQueryPlan(db, spec), &session, spec.name + "_p");
    Result result = engine.Execute(query);
    std::string diff;
    EXPECT_TRUE(Result::Equivalent(result, expected, spec.ordered_result, &diff))
        << spec.name << " mode " << static_cast<int>(mode) << ": " << diff;
    // Profiling costs time, never saves it.
    EXPECT_GE(engine.last_cycles(), plain_cycles);
    session.Resolve(db.code_map());
    AttributionStats stats = session.Stats();
    if (stats.total > 50) {
      double attributed =
          static_cast<double>(stats.operator_samples + stats.kernel_samples) /
          static_cast<double>(stats.total);
      EXPECT_GT(attributed, 0.9) << spec.name;
    }
  }
}

TEST_P(SuiteProfiling, ValidationModeCleanAcrossSuite) {
  const QuerySpec& spec = FindQuery(GetParam());
  Database& db = *SuiteDb();
  QueryEngine engine(&db);
  ProfilingConfig config;
  config.period = 311;
  config.tag_all_instructions = true;
  ProfilingSession session(config);
  CompiledQuery query = engine.Compile(BuildQueryPlan(db, spec), &session, spec.name + "_v");
  engine.Execute(query);
  session.Resolve(db.code_map());
  ValidationReport report = CrossCheckAttribution(session, db.code_map());
  EXPECT_EQ(report.mismatches, 0u) << spec.name;
  EXPECT_GT(report.checked, 0u) << spec.name;
}

std::vector<std::string> Names() {
  std::vector<std::string> names;
  for (const QuerySpec& spec : TpchQuerySuite()) {
    names.push_back(spec.name);
  }
  return names;
}

INSTANTIATE_TEST_SUITE_P(AllQueries, SuiteProfiling, ::testing::ValuesIn(Names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

}  // namespace
}  // namespace dfp
