// Hand-computed ground truth: both the compiling engine AND the Volcano oracle are checked
// against results worked out by hand on a tiny dataset — guarding against a bug common to both.
#include <gtest/gtest.h>

#include <bit>

#include "src/engine/query_engine.h"
#include "src/interp/interpreter.h"
#include "src/sql/binder.h"
#include "src/util/date.h"
#include "src/util/decimal.h"

namespace dfp {
namespace {

class HandComputedTest : public ::testing::Test {
 protected:
  HandComputedTest() : engine(&db) {
    // items: (1, 10.00, 'a', 2000-01-05) (2, 20.00, 'b', 2001-03-05) (3, 30.00, 'a', 2001-07-01)
    //        (4, 40.00, 'b', 2002-02-02) (5, 50.50, 'a', 2002-12-31)
    TableBuilder items = db.CreateTableBuilder({"items",
                                                {{"id", ColumnType::kInt64},
                                                 {"price", ColumnType::kDecimal},
                                                 {"grp", ColumnType::kString},
                                                 {"d", ColumnType::kDate}}});
    struct RowSpec {
      int64_t id;
      int64_t cents;
      const char* grp;
      const char* date;
    };
    const RowSpec rows[] = {{1, 1000, "a", "2000-01-05"},
                            {2, 2000, "b", "2001-03-05"},
                            {3, 3000, "a", "2001-07-01"},
                            {4, 4000, "b", "2002-02-02"},
                            {5, 5050, "a", "2002-12-31"}};
    for (const RowSpec& row : rows) {
      items.BeginRow();
      items.SetI64(0, row.id);
      items.SetDecimal(1, row.cents);
      items.SetString(2, row.grp);
      items.SetDate(3, ParseDate(row.date));
    }
    db.AddTable(items.Finish());

    // refs: (1, 7) (3, 9) (3, 11) — id 3 appears twice (multi-match probe), ids 2,4,5 missing.
    TableBuilder refs = db.CreateTableBuilder(
        {"refs", {{"item_id", ColumnType::kInt64}, {"w", ColumnType::kInt64}}});
    for (auto [item, w] : {std::pair<int64_t, int64_t>{1, 7}, {3, 9}, {3, 11}}) {
      refs.BeginRow();
      refs.SetI64(0, item);
      refs.SetI64(1, w);
    }
    db.AddTable(refs.Finish());
  }

  // Runs the SQL through BOTH engines; verifies they agree; returns the compiled result.
  Result Run(const std::string& sql, bool ordered) {
    CompiledQuery query = engine.Compile(PlanSql(db, sql), nullptr, "hand");
    Result compiled = engine.Execute(query);
    Result reference = InterpretPlan(db, *query.plan);
    std::string diff;
    EXPECT_TRUE(Result::Equivalent(compiled, reference, ordered, &diff)) << sql << ": " << diff;
    return compiled;
  }

  Database db;
  QueryEngine engine;
};

TEST_F(HandComputedTest, GroupedAggregates) {
  // Group 'a': prices 10.00, 30.00, 50.50 -> sum 90.50, min 10.00, max 50.50, avg 30.1666...
  // Group 'b': prices 20.00, 40.00 -> sum 60.00, min 20.00, max 40.00, avg 30.0.
  Result r = Run(
      "select grp, count(*) n, sum(price) s, min(price) lo, max(price) hi, avg(price) a "
      "from items group by grp order by grp",
      true);
  ASSERT_EQ(r.row_count(), 2u);
  EXPECT_EQ(r.CellToString(db.strings(), 0, 0), "a");
  EXPECT_EQ(r.at(0, 1), 3);
  EXPECT_EQ(r.at(0, 2), 9050);
  EXPECT_EQ(r.at(0, 3), 1000);
  EXPECT_EQ(r.at(0, 4), 5050);
  EXPECT_NEAR(std::bit_cast<double>(static_cast<uint64_t>(r.at(0, 5))), 90.50 / 3.0, 1e-12);
  EXPECT_EQ(r.CellToString(db.strings(), 1, 0), "b");
  EXPECT_EQ(r.at(1, 1), 2);
  EXPECT_EQ(r.at(1, 2), 6000);
  EXPECT_NEAR(std::bit_cast<double>(static_cast<uint64_t>(r.at(1, 5))), 30.0, 1e-12);
}

TEST_F(HandComputedTest, DecimalArithmetic) {
  // price * 1.10 truncated to cents: 10.00->11.00, 20.00->22.00, 30.00->33.00, 40.00->44.00,
  // 50.50->55.55.
  Result r = Run("select id, price * 1.10 taxed from items order by id", true);
  ASSERT_EQ(r.row_count(), 5u);
  EXPECT_EQ(r.at(0, 1), 1100);
  EXPECT_EQ(r.at(4, 1), 5555);
  // Division: 50.50 / 3 = 16.83 (truncating scale-2).
  Result q = Run("select price / 3 third from items where id = 5", false);
  EXPECT_EQ(q.at(0, 0), 1683);
}

TEST_F(HandComputedTest, JoinWithMultiMatch) {
  // Inner join: id 1 matches (w 7), id 3 matches twice (w 9, 11) -> 3 rows; sum w = 27.
  Result r = Run(
      "select sum(r.w) total, count(*) n from items i, refs r where i.id = r.item_id", false);
  ASSERT_EQ(r.row_count(), 1u);
  EXPECT_EQ(r.at(0, 0), 27);
  EXPECT_EQ(r.at(0, 1), 3);
}

TEST_F(HandComputedTest, YearExtractionExactDates) {
  Result r = Run("select id, year(d) y from items order by id", true);
  const int64_t expected[] = {2000, 2001, 2001, 2002, 2002};
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(r.at(i, 1), expected[i]) << i;
  }
  // Grouping by year: 2000 -> 1 row, 2001 -> 2, 2002 -> 2.
  Result g = Run("select year(d) y, count(*) n from items group by year(d) order by y", true);
  ASSERT_EQ(g.row_count(), 3u);
  EXPECT_EQ(g.at(0, 0), 2000);
  EXPECT_EQ(g.at(0, 1), 1);
  EXPECT_EQ(g.at(2, 0), 2002);
  EXPECT_EQ(g.at(2, 1), 2);
}

TEST_F(HandComputedTest, YearBoundaryDates) {
  // Leap years, year boundaries, century rules.
  TableBuilder t = db.CreateTableBuilder({"edge_dates", {{"d", ColumnType::kDate}}});
  const char* dates[] = {"1999-12-31", "2000-01-01", "2000-02-29", "2000-12-31",
                         "2100-01-01", "1970-01-01", "1992-02-29"};
  for (const char* date : dates) {
    t.BeginRow();
    t.SetDate(0, ParseDate(date));
  }
  db.AddTable(t.Finish());
  Result r = Run("select year(d) y from edge_dates", true);
  const int64_t expected[] = {1999, 2000, 2000, 2000, 2100, 1970, 1992};
  ASSERT_EQ(r.row_count(), 7u);
  for (size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(r.at(i, 0), expected[i]) << dates[i];
  }
}

TEST_F(HandComputedTest, CaseBetweenInLike) {
  Result r = Run(
      "select id, case when price between 15.00 and 45.00 then 1 else 0 end mid "
      "from items where grp like 'a%' and id in (1, 3, 5) order by id",
      true);
  ASSERT_EQ(r.row_count(), 3u);
  EXPECT_EQ(r.at(0, 0), 1);
  EXPECT_EQ(r.at(0, 1), 0);  // 10.00 not in [15, 45].
  EXPECT_EQ(r.at(1, 0), 3);
  EXPECT_EQ(r.at(1, 1), 1);  // 30.00 in range.
  EXPECT_EQ(r.at(2, 0), 5);
  EXPECT_EQ(r.at(2, 1), 0);  // 50.50 above.
}

TEST_F(HandComputedTest, HavingAndTopK) {
  Result r = Run(
      "select grp, sum(price) s from items group by grp having count(*) > 2 "
      "order by s desc limit 1",
      true);
  ASSERT_EQ(r.row_count(), 1u);
  EXPECT_EQ(r.CellToString(db.strings(), 0, 0), "a");
  EXPECT_EQ(r.at(0, 1), 9050);
}

}  // namespace
}  // namespace dfp
