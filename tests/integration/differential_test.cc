// Differential test harness: seeded random queries over the TPC-H-style schema, each executed
// through three independent paths — the Volcano interpreter, the single-threaded compiled
// engine, and the morsel-parallel engine at 2 and 4 workers. All four results must be
// equivalent for every seed; any divergence pinpoints a codegen or parallel-execution bug with
// a reproducible seed.
#include <gtest/gtest.h>

#include "src/engine/query_engine.h"
#include "src/interp/interpreter.h"
#include "src/plan/builder.h"
#include "src/tpch/datagen.h"
#include "src/util/random.h"

namespace dfp {
namespace {

Database* TpchDb() {
  static Database* db = [] {
    auto* instance = new Database();
    TpchOptions options;
    options.scale = 0.002;
    GenerateTpch(*instance, options);
    return instance;
  }();
  return db;
}

// Random boolean predicate over the current schema (int/decimal comparisons, conjunctions) —
// same shape as the random-plan property test, instantiated over TPC-H columns.
ExprPtr RandomPredicate(Random& rng, const PlanBuilder& plan, int depth) {
  if (depth > 0 && rng.Chance(0.4)) {
    BinOp op = rng.Chance(0.6) ? BinOp::kAnd : BinOp::kOr;
    return MakeBinary(op, RandomPredicate(rng, plan, depth - 1),
                      RandomPredicate(rng, plan, depth - 1));
  }
  std::vector<int> candidates;
  for (size_t i = 0; i < plan.schema().size(); ++i) {
    ColumnType type = plan.schema()[i].type;
    if (type == ColumnType::kInt64 || type == ColumnType::kDecimal) {
      candidates.push_back(static_cast<int>(i));
    }
  }
  int slot = candidates[static_cast<size_t>(rng.Uniform(
      0, static_cast<int64_t>(candidates.size()) - 1))];
  ColumnType type = plan.schema()[static_cast<size_t>(slot)].type;
  BinOp ops[] = {BinOp::kLt, BinOp::kLe, BinOp::kGt, BinOp::kGe, BinOp::kEq, BinOp::kNe};
  BinOp op = ops[rng.Uniform(0, 5)];
  // Decimal columns (quantity, prices, discounts) live in the fixed-point domain; int columns
  // (keys, line numbers) in a range that makes selective but non-empty filters likely.
  int64_t payload =
      type == ColumnType::kDecimal ? rng.Uniform(0, 600000) : rng.Uniform(0, 4000);
  return MakeBinary(op, MakeColumnRef(slot, type), MakeLiteral(type, payload));
}

// A random pipeline over lineitem: optional filter and map, optional join against orders
// (inner / semi / anti), then one of aggregation, sort(+limit), or projection(+limit).
// Deterministic in the seed, so the same plan can be regenerated for a second compilation.
PhysicalOpPtr RandomQuery(Random& rng, Database& db) {
  PlanBuilder plan = PlanBuilder::Scan(db.table("lineitem"));
  if (rng.Chance(0.7)) {
    plan.FilterBy(RandomPredicate(rng, plan, 2));
  }
  if (rng.Chance(0.5)) {
    plan.MapTo(NamedExprs("derived",
                          MakeBinary(rng.Chance(0.5) ? BinOp::kAdd : BinOp::kSub,
                                     plan.Col("l_extendedprice"), plan.Col("l_discount"))));
  }
  if (rng.Chance(0.6)) {
    PlanBuilder orders = PlanBuilder::Scan(db.table("orders"));
    if (rng.Chance(0.5)) {
      orders.FilterBy(MakeBinary(BinOp::kLt, orders.Col("o_orderkey"),
                                 MakeLiteral(ColumnType::kInt64, rng.Uniform(100, 3000))));
    }
    int64_t join_kind = rng.Uniform(0, 2);
    if (join_kind == 0) {
      plan.JoinWith(std::move(orders), {"l_orderkey"}, {"o_orderkey"}, {"o_shippriority"});
    } else if (join_kind == 1) {
      plan.JoinWith(std::move(orders), {"l_orderkey"}, {"o_orderkey"}, {}, JoinType::kSemi);
    } else {
      plan.JoinWith(std::move(orders), {"l_orderkey"}, {"o_orderkey"}, {}, JoinType::kAnti);
    }
  }
  int64_t shape = rng.Uniform(0, 2);
  if (shape == 0) {
    std::string key = rng.Chance(0.5) ? "l_linenumber" : "l_returnflag";
    plan.GroupByKeys({key},
                     NamedExprs("n", MakeAggregate(AggOp::kCountStar, nullptr), "s",
                                MakeAggregate(AggOp::kSum, plan.Col("l_extendedprice")), "mx",
                                MakeAggregate(AggOp::kMax, plan.Col("l_quantity"))));
    if (rng.Chance(0.5)) {
      plan.FilterBy(MakeBinary(BinOp::kGt, plan.Col("n"), MakeLiteral(ColumnType::kInt64, 2)));
    }
  } else if (shape == 1) {
    plan.OrderBy({{"l_extendedprice", rng.Chance(0.5)}, {"l_orderkey", false},
                  {"l_linenumber", false}},
                 rng.Chance(0.5) ? rng.Uniform(1, 100) : -1);
  } else {
    plan.Project({"l_orderkey", "l_linenumber", "l_extendedprice"});
    if (rng.Chance(0.3)) {
      plan.LimitTo(rng.Uniform(1, 2000));
    }
  }
  return plan.Build();
}

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, InterpreterCompiledParallelAgree) {
  Database& db = *TpchDb();
  QueryEngine engine(&db);

  Random rng(GetParam());
  PhysicalOpPtr plan = RandomQuery(rng, db);
  const bool ordered = plan->child(0)->kind == OpKind::kSort;
  CompiledQuery sequential = engine.Compile(std::move(plan), nullptr, "diff_seq");
  Result compiled = engine.Execute(sequential);
  Result reference = InterpretPlan(db, *sequential.plan);
  std::string diff;
  ASSERT_TRUE(Result::Equivalent(compiled, reference, ordered, &diff))
      << "seed " << GetParam() << " (compiled vs interpreter): " << diff;

  // Regenerate the identical plan from the same seed for the parallel compilation; one
  // parallel-compiled query serves every worker count.
  Random rng_par(GetParam());
  CodegenOptions par_options;
  par_options.parallel = true;
  CompiledQuery parallel =
      engine.Compile(RandomQuery(rng_par, db), nullptr, "diff_par", par_options);
  for (uint32_t workers : {2u, 4u}) {
    ParallelConfig config;
    config.workers = workers;
    config.morsel_rows = 256;  // Small morsels: many dispatches even at test scale.
    Result result = engine.ExecuteParallel(parallel, config);
    EXPECT_TRUE(Result::Equivalent(result, reference, ordered, &diff))
        << "seed " << GetParam() << " (" << workers << " workers vs interpreter): " << diff;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest, ::testing::Range<uint64_t>(1, 61));

}  // namespace
}  // namespace dfp
