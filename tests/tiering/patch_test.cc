// Immediate patching: a cached compiled plan re-bound to new literals must behave exactly like
// a fresh compile of the variant — across literal widths (8/32/64-bit payloads), fixed-point
// decimals, LIKE patterns (runtime re-registration), IN-list members, and CSE'd duplicate
// literals whose register-tagging disambiguation must keep slots separable. A seeded
// differential sweep closes the loop: twenty random literal variants, each patched and compared
// bit-for-bit against its own cold compile.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>

#include "src/engine/query_engine.h"
#include "src/service/fingerprint.h"
#include "src/service/plan_cache.h"
#include "src/sql/binder.h"
#include "src/tiering/literals.h"
#include "src/tiering/patch.h"
#include "src/tpch/datagen.h"
#include "src/util/random.h"

namespace dfp {
namespace {

Database* TpchDb() {
  static Database* db = [] {
    auto* instance = new Database();
    TpchOptions options;
    options.scale = 0.002;
    GenerateTpch(*instance, options);
    return instance;
  }();
  return db;
}

// Compiles `sql` with its literals parameterized out (slot-tagged immediates + relocation
// table), the way the tiered service compiles every entry.
CachedPlan CompileParameterized(Database& db, const std::string& sql, bool optimize) {
  PhysicalOpPtr plan = PlanSql(db, sql);
  CachedPlan entry;
  entry.fingerprint = FingerprintPlan(*plan, db.catalog_version());
  PlanLiterals literals = ExtractLiterals(*plan);
  CodegenOptions options;
  options.optimize_ir = optimize;
  options.literals = &literals;
  entry.query = CompileQuery(db, std::move(plan), nullptr, "patch_test", options);
  entry.literals = std::move(literals);  // expr_slots stay valid: entry.query owns the plan.
  return entry;
}

// Patches `entry` to serve `variant_sql` (asserting the structural fingerprint matches) and
// returns the number of rewritten sites.
uint64_t PatchTo(Database& db, CachedPlan& entry, const std::string& variant_sql) {
  PhysicalOpPtr plan = PlanSql(db, variant_sql);
  const PlanFingerprint fingerprint = FingerprintPlan(*plan, db.catalog_version());
  EXPECT_EQ(fingerprint.structure, entry.fingerprint.structure);
  EXPECT_EQ(fingerprint.pinned, entry.fingerprint.pinned);
  const PlanLiterals incoming = ExtractLiterals(*plan);
  return PatchCachedPlan(db, entry, incoming, fingerprint.literals);
}

// The patched entry and a fresh compile of the same SQL must produce bit-identical rows.
void ExpectMatchesFreshCompile(Database& db, CachedPlan& entry, const std::string& sql) {
  QueryEngine engine(&db);
  const Result patched = engine.Execute(entry.query);
  const Result fresh = engine.Run(PlanSql(db, sql));
  EXPECT_EQ(patched.rows(), fresh.rows()) << "patched result diverged for: " << sql;
}

std::string NarrowWideSql(int64_t linenumber, int64_t orderkey) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "select sum(l_extendedprice) as s from lineitem "
                "where l_linenumber < %lld and l_orderkey < %lld",
                static_cast<long long>(linenumber), static_cast<long long>(orderkey));
  return buffer;
}

TEST(PatchTest, RebindsNarrowAndWideIntegerImmediates) {
  Database& db = *TpchDb();
  // 8-bit payload (line number) alongside a 64-bit payload far beyond the 32-bit range.
  CachedPlan entry = CompileParameterized(db, NarrowWideSql(3, 4'000'000'000ll), true);
  EXPECT_FALSE(entry.literals.bindings.empty());

  // 8-bit + 32-bit magnitudes.
  std::string variant = NarrowWideSql(5, 2'000'000'000ll);
  EXPECT_GT(PatchTo(db, entry, variant), 0u);
  ExpectMatchesFreshCompile(db, entry, variant);

  // Full 64-bit magnitude (2^62) — the immediate must carry all high bits.
  variant = NarrowWideSql(2, 4'611'686'018'427'387'904ll);
  EXPECT_GT(PatchTo(db, entry, variant), 0u);
  ExpectMatchesFreshCompile(db, entry, variant);

  // Re-binding back to the original literals restores the original behavior.
  variant = NarrowWideSql(3, 4'000'000'000ll);
  EXPECT_GT(PatchTo(db, entry, variant), 0u);
  ExpectMatchesFreshCompile(db, entry, variant);

  // An exact repeat is a zero-site patch.
  EXPECT_EQ(PatchTo(db, entry, variant), 0u);
}

std::string DiscountSql(const char* lo, const char* hi) {
  return std::string("select sum(l_extendedprice * l_discount) as revenue from lineitem "
                     "where l_discount between ") +
         lo + " and " + hi;
}

TEST(PatchTest, RebindsDecimalImmediates) {
  Database& db = *TpchDb();
  CachedPlan entry = CompileParameterized(db, DiscountSql("0.05", "0.07"), true);
  const std::string variant = DiscountSql("0.02", "0.09");
  EXPECT_GT(PatchTo(db, entry, variant), 0u);
  ExpectMatchesFreshCompile(db, entry, variant);
}

TEST(PatchTest, RebindsLikePatternThroughRuntimeRegistration) {
  Database& db = *TpchDb();
  const std::string base =
      "select sum(p_retailprice) as s from part where p_type like 'PROMO%'";
  const std::string variant =
      "select sum(p_retailprice) as s from part where p_type like 'STANDARD%'";
  CachedPlan entry = CompileParameterized(db, base, true);
  EXPECT_GT(PatchTo(db, entry, variant), 0u);
  ExpectMatchesFreshCompile(db, entry, variant);
  // And back: the original pattern id is re-registered (or reused) and rewritten in.
  EXPECT_GT(PatchTo(db, entry, base), 0u);
  ExpectMatchesFreshCompile(db, entry, base);
}

TEST(PatchTest, RebindsInListMembersOfEqualArity) {
  Database& db = *TpchDb();
  const std::string base = "select sum(l_extendedprice) as s from lineitem "
                           "where l_shipmode in ('MAIL', 'SHIP')";
  const std::string variant = "select sum(l_extendedprice) as s from lineitem "
                              "where l_shipmode in ('AIR', 'RAIL')";
  CachedPlan entry = CompileParameterized(db, base, true);
  EXPECT_GT(PatchTo(db, entry, variant), 0u);
  ExpectMatchesFreshCompile(db, entry, variant);
}

TEST(PatchTest, CseDuplicateLiteralsKeepSeparableSlots) {
  Database& db = *TpchDb();
  // Both predicates carry the same payload (25): value-numbering would have folded the two
  // immediates into one register if slots did not disambiguate them. Patch only the upper
  // bound; the lower must keep its original value.
  const std::string base = "select sum(l_extendedprice) as s from lineitem "
                           "where l_quantity >= 25 and l_quantity <= 25";
  const std::string variant = "select sum(l_extendedprice) as s from lineitem "
                              "where l_quantity >= 25 and l_quantity <= 30";
  CachedPlan entry = CompileParameterized(db, base, /*optimize=*/true);
  EXPECT_GT(PatchTo(db, entry, variant), 0u);
  ExpectMatchesFreshCompile(db, entry, variant);
  // And the mirrored patch: only the lower bound moves.
  const std::string variant2 = "select sum(l_extendedprice) as s from lineitem "
                               "where l_quantity >= 10 and l_quantity <= 30";
  EXPECT_GT(PatchTo(db, entry, variant2), 0u);
  ExpectMatchesFreshCompile(db, entry, variant2);
}

TEST(PatchTest, TwentySeededVariantsMatchFreshCompilesBitForBit) {
  Database& db = *TpchDb();
  auto q6_like = [](int64_t lo, int64_t hi, int64_t quantity) {
    char buffer[320];
    std::snprintf(buffer, sizeof(buffer),
                  "select sum(l_extendedprice * l_discount) as revenue from lineitem "
                  "where l_discount between 0.0%lld and 0.0%lld and l_quantity < %lld",
                  static_cast<long long>(lo), static_cast<long long>(hi),
                  static_cast<long long>(quantity));
    return std::string(buffer);
  };
  CachedPlan entry = CompileParameterized(db, q6_like(5, 7, 24), true);
  Random rng(20260806);
  for (int i = 0; i < 20; ++i) {
    const int64_t lo = rng.Uniform(0, 4);
    const int64_t hi = rng.Uniform(5, 9);
    const int64_t quantity = rng.Uniform(5, 50);
    const std::string variant = q6_like(lo, hi, quantity);
    PatchTo(db, entry, variant);  // May be zero sites if the draw repeats — still must match.
    ExpectMatchesFreshCompile(db, entry, variant);
  }
}

}  // namespace
}  // namespace dfp
