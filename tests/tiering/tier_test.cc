// Tier ladder end-to-end: cold compiles land on the baseline tier, the controller promotes a
// hot fingerprint once the windowed cycles cross break-even, the background recompilation
// swaps in atomically with bit-identical results, literal variants patch instead of compiling,
// admission defers while a patch target is busy, and the tier timeline / sample-stream events
// account for every sample and transition.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>

#include "src/profiling/serialize.h"
#include "src/service/query_service.h"
#include "src/sql/binder.h"
#include "src/tiering/report.h"
#include "src/tpch/datagen.h"
#include "src/tpch/queries.h"

namespace dfp {
namespace {

ServiceConfig TieredConfig() {
  ServiceConfig config;
  config.parallel.workers = 4;
  config.max_active_sessions = 2;
  config.session_hashtables_bytes = 32ull << 20;
  config.session_output_bytes = 16ull << 20;
  config.session_state_bytes = 512ull * 1024;
  config.profiling.period = 311;
  config.tiering.enabled = true;
  return config;
}

std::unique_ptr<Database> MakeDb(const ServiceConfig& config) {
  DatabaseConfig db_config;
  db_config.extra_bytes = ServiceArenaBytes(config);
  auto db = std::make_unique<Database>(db_config);
  TpchOptions options;
  options.scale = 0.01;
  GenerateTpch(*db, options);
  return db;
}

std::string Q6Variant(int lo, int hi, int quantity) {
  char buffer[320];
  std::snprintf(buffer, sizeof(buffer),
                "select sum(l_extendedprice * l_discount) as revenue from lineitem "
                "where l_discount between 0.0%d and 0.0%d and l_quantity < %d",
                lo, hi, quantity);
  return buffer;
}

// Submits one query and drains; returns its ticket id.
TicketId RunOne(QueryService& service, Database& db, const std::string& sql,
                const char* name) {
  const TicketId id = service.Submit(PlanSql(db, sql), name);
  service.Drain();
  return id;
}

TEST(TierLadderTest, ColdCompilesStartOnBaselineTier) {
  ServiceConfig config = TieredConfig();
  auto db = MakeDb(config);
  QueryService service(*db, config);
  const TicketId id = RunOne(service, *db, Q6Variant(5, 7, 24), "q6");
  EXPECT_EQ(service.ticket(id).tier, PlanTier::kBaseline);
  EXPECT_FALSE(service.ticket(id).cache_hit);
}

TEST(TierLadderTest, LiteralVariantsPatchInsteadOfCompiling) {
  ServiceConfig config = TieredConfig();
  // Park the tier controller far from break-even so a background swap cannot change the
  // resident code bytes mid-test; this test isolates the patching path.
  config.tiering.break_even_ratio = 1e9;
  auto db = MakeDb(config);
  QueryService service(*db, config);
  RunOne(service, *db, Q6Variant(5, 7, 24), "q6");
  const uint64_t resident = service.plan_cache().stats().resident_code_bytes;

  const TicketId warm = RunOne(service, *db, Q6Variant(2, 8, 30), "q6");
  EXPECT_TRUE(service.ticket(warm).cache_hit);
  EXPECT_GT(service.ticket(warm).patched_sites, 0u);
  EXPECT_EQ(service.plan_cache().stats().resident_code_bytes, resident);
  EXPECT_EQ(service.plan_cache().stats().patched_hits, 1u);

  // The patched execution must match a cold compile of the same variant in a fresh service.
  auto db2 = MakeDb(config);
  QueryService cold(*db2, config);
  const TicketId reference = RunOne(cold, *db2, Q6Variant(2, 8, 30), "q6");
  EXPECT_EQ(service.ticket(warm).result.rows(), cold.ticket(reference).result.rows());
}

TEST(TierLadderTest, BreakEvenPromotionSwapsInBackgroundWithIdenticalResults) {
  ServiceConfig config = TieredConfig();
  auto db = MakeDb(config);
  QueryService service(*db, config);

  const std::string sql = Q6Variant(5, 7, 24);
  const TicketId first = RunOne(service, *db, sql, "q6");
  const Result baseline_result = service.ticket(first).result;
  EXPECT_EQ(service.ticket(first).tier, PlanTier::kBaseline);

  int runs = 1;
  while (service.plan_cache().stats().tier_swaps == 0 && runs < 48) {
    RunOne(service, *db, sql, "q6");
    ++runs;
  }
  ASSERT_GE(service.plan_cache().stats().tier_swaps, 1u) << "never promoted after " << runs;
  EXPECT_EQ(service.pending_recompiles(), 0u);

  // The transition log records the decision and the swap, in causal order.
  ASSERT_EQ(service.tier_controller().transitions().size(), 1u);
  const TierTransition& transition = service.tier_controller().transitions()[0];
  EXPECT_EQ(transition.from, PlanTier::kBaseline);
  EXPECT_EQ(transition.to, PlanTier::kOptimized);
  EXPECT_GT(transition.decided_at_cycles, 0u);
  EXPECT_GE(transition.swapped_at_cycles, transition.decided_at_cycles);
  EXPECT_GE(transition.rollup_cycles, transition.threshold_cycles);

  // Post-swap execution runs the optimizing-tier code; results are bit-identical.
  const TicketId after = RunOne(service, *db, sql, "q6");
  EXPECT_EQ(service.ticket(after).tier, PlanTier::kOptimized);
  EXPECT_TRUE(service.ticket(after).cache_hit);
  EXPECT_EQ(service.ticket(after).result.rows(), baseline_result.rows());

  // Both "decided" and "swapped" events were logged against the structure fingerprint.
  ASSERT_EQ(service.tier_events().size(), 2u);
  EXPECT_NE(service.tier_events()[0].text.find("decided"), std::string::npos);
  EXPECT_NE(service.tier_events()[1].text.find("swapped"), std::string::npos);
  EXPECT_LE(service.tier_events()[0].tsc, service.tier_events()[1].tsc);
}

TEST(TierLadderTest, ConcurrentVariantsDeferPatchUntilEntryDrains) {
  ServiceConfig config = TieredConfig();
  auto db = MakeDb(config);
  QueryService service(*db, config);
  // Warm the entry, then submit two different-literal variants back to back: the second needs a
  // patch while the first still runs, so admission defers until the entry drains. Both must
  // come back correct.
  RunOne(service, *db, Q6Variant(5, 7, 24), "q6");
  const TicketId a = service.Submit(PlanSql(*db, Q6Variant(1, 8, 40)), "q6");
  const TicketId b = service.Submit(PlanSql(*db, Q6Variant(3, 6, 12)), "q6");
  service.Drain();
  EXPECT_EQ(service.ticket(a).status, TicketStatus::kDone);
  EXPECT_EQ(service.ticket(b).status, TicketStatus::kDone);

  auto db2 = MakeDb(config);
  QueryService cold(*db2, config);
  const TicketId ra = RunOne(cold, *db2, Q6Variant(1, 8, 40), "q6");
  const TicketId rb = RunOne(cold, *db2, Q6Variant(3, 6, 12), "q6");
  EXPECT_EQ(service.ticket(a).result.rows(), cold.ticket(ra).result.rows());
  EXPECT_EQ(service.ticket(b).result.rows(), cold.ticket(rb).result.rows());
}

TEST(TierLadderTest, TimelineAttributesEverySampleToATier) {
  ServiceConfig config = TieredConfig();
  auto db = MakeDb(config);
  QueryService service(*db, config);
  const std::string sql = Q6Variant(5, 7, 24);
  for (int i = 0; i < 10; ++i) {
    RunOne(service, *db, sql, "q6");
  }
  RunOne(service, *db, FindQuery("q1").sql, "q1");  // A second plan family in the windows.

  const TierTimelineTotals totals =
      SummarizeTierTimeline(service.windows(), service.tier_controller());
  EXPECT_GT(totals.samples, 0u);
  EXPECT_EQ(totals.samples, totals.baseline_samples + totals.optimized_samples);
  const std::string report =
      RenderTierTimeline(service.windows(), service.tier_controller());
  EXPECT_NE(report.find("q6"), std::string::npos);
  if (totals.transitions > 0) {
    EXPECT_NE(report.find("promote baseline -> optimized"), std::string::npos);
  }
}

TEST(TierLadderTest, TieredSamplesRoundTripWithEvents) {
  ServiceConfig config = TieredConfig();
  auto db = MakeDb(config);
  QueryService service(*db, config);
  const std::string sql = Q6Variant(5, 7, 24);
  TicketId last = 0;
  for (int i = 0; i < 24 && service.plan_cache().stats().tier_swaps == 0; ++i) {
    last = RunOne(service, *db, sql, "q6");
  }
  ASSERT_GE(service.plan_cache().stats().tier_swaps, 1u);
  ASSERT_NE(service.ticket(last).session, nullptr);

  // Baseline-tier samples carry their tier through serialization, alongside the service's
  // tier-transition events.
  std::ostringstream out;
  WriteSamples(service.ticket(last).session->samples(), service.tier_events(), out);
  EXPECT_NE(out.str().find("# dfp samples v4"), std::string::npos);
  EXPECT_NE(out.str().find("event "), std::string::npos);

  std::istringstream in(out.str());
  std::vector<SampleStreamEvent> events;
  const std::vector<Sample> samples = ReadSamples(in, &events);
  ASSERT_EQ(events.size(), service.tier_events().size());
  EXPECT_EQ(events[0].text, service.tier_events()[0].text);
  ASSERT_EQ(samples.size(), service.ticket(last).session->samples().size());
  for (size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i].tier, service.ticket(last).session->samples()[i].tier);
  }
  for (const Sample& sample : samples) {
    EXPECT_EQ(sample.tier, static_cast<uint8_t>(PlanTier::kBaseline));
  }
}

TEST(TierControllerTest, CriticalPathEvidencePicksPromotionsByLatency) {
  TieringConfig tiering;
  tiering.enabled = true;
  tiering.min_executions = 1;
  tiering.break_even_ratio = 1.0;
  WindowedProfile windows;  // Empty windows: the legacy path falls back to cumulative cycles.

  // A wide-but-slack plan: it burns 10k cycles per execution but only 100 of them ever sit on
  // a query's critical path. Raw-cycle evidence would promote immediately; critical-path
  // evidence holds until the path work itself crosses break-even.
  TierController by_path(tiering);
  EXPECT_FALSE(by_path.Observe(0x1, "wide", windows, 10'000, 5'000, 1,
                               /*critical_path_cycles=*/100));
  EXPECT_TRUE(by_path.Observe(0x1, "wide", windows, 10'000, 5'000, 2,
                              /*critical_path_cycles=*/6'000));
  ASSERT_EQ(by_path.transitions().size(), 1u);
  EXPECT_EQ(by_path.transitions()[0].rollup_cycles, 6'000u);

  // Same inputs with the flag off: raw-cycle evidence promotes on the first observation.
  tiering.promote_by_critical_path = false;
  TierController legacy(tiering);
  EXPECT_TRUE(legacy.Observe(0x1, "wide", windows, 10'000, 5'000, 1, 100));

  // Callers that pass no critical-path evidence keep the raw-cycle behavior even when the
  // flag is on (zero means "no analysis available", never "free promotion").
  tiering.promote_by_critical_path = true;
  TierController no_evidence(tiering);
  EXPECT_TRUE(no_evidence.Observe(0x1, "wide", windows, 10'000, 5'000, 1));
}

TEST(TierLadderTest, TieringOffKeepsOptimizedTierAndNoEvents) {
  ServiceConfig config = TieredConfig();
  config.tiering.enabled = false;
  auto db = MakeDb(config);
  QueryService service(*db, config);
  const TicketId id = RunOne(service, *db, Q6Variant(5, 7, 24), "q6");
  EXPECT_EQ(service.ticket(id).tier, PlanTier::kOptimized);
  EXPECT_EQ(service.ticket(id).patched_sites, 0u);
  EXPECT_TRUE(service.tier_events().empty());
  EXPECT_TRUE(service.tier_controller().transitions().empty());
  // A different-literal resubmission is a structure hit but a cache miss (exact keying).
  const TicketId variant = RunOne(service, *db, Q6Variant(2, 8, 30), "q6");
  EXPECT_FALSE(service.ticket(variant).cache_hit);
}

}  // namespace
}  // namespace dfp
