#include <gtest/gtest.h>

#include "src/ir/builder.h"
#include "src/ir/interp.h"
#include "src/ir/printer.h"
#include "tests/testing/vcpu_harness.h"

namespace dfp {
namespace {

// f(a, b) = (a + b) * 3 - b.
void BuildSimple(IrFunction& fn) {
  IrIdAllocator ids;
  IrBuilder b(&fn, &ids);
  b.SetInsertPoint(b.CreateBlock("entry"));
  uint32_t sum = b.Add(Value::Reg(0), Value::Reg(1));
  uint32_t scaled = b.Mul(Value::Reg(sum), Value::Imm(3));
  uint32_t result = b.Sub(Value::Reg(scaled), Value::Reg(1));
  b.Ret(Value::Reg(result));
}

TEST(BackendExec, SimpleArithmetic) {
  IrFunction fn("simple", 2);
  BuildSimple(fn);
  VcpuHarness harness;
  EXPECT_EQ(harness.CompileAndRun(fn, {10, 4}), 38u);
}

TEST(BackendExec, UnoptimizedMatchesOptimized) {
  IrFunction a("a", 2);
  BuildSimple(a);
  IrFunction b("b", 2);
  BuildSimple(b);
  VcpuHarness harness;
  CompileOptions no_opt;
  no_opt.optimize = false;
  EXPECT_EQ(harness.CompileAndRun(a, {123, 456}, no_opt), harness.CompileAndRun(b, {123, 456}));
}

// Loop summing n 64-bit values at base, with an in-loop conditional (skip odd values).
void BuildLoop(IrFunction& fn) {
  IrIdAllocator ids;
  IrBuilder b(&fn, &ids);
  uint32_t entry = b.CreateBlock("entry");
  uint32_t head = b.CreateBlock("head");
  uint32_t body = b.CreateBlock("body");
  uint32_t add_block = b.CreateBlock("add");
  uint32_t cont = b.CreateBlock("cont");
  uint32_t exit = b.CreateBlock("exit");

  b.SetInsertPoint(entry);
  uint32_t i = b.Const(0);
  uint32_t acc = b.Const(0);
  b.Br(head);

  b.SetInsertPoint(head);
  uint32_t cond = b.CmpLt(Value::Reg(i), Value::Reg(1));
  b.CondBr(Value::Reg(cond), body, exit);

  b.SetInsertPoint(body);
  uint32_t offset = b.Mul(Value::Reg(i), Value::Imm(8));
  uint32_t addr = b.Add(Value::Reg(0), Value::Reg(offset));
  uint32_t value = b.Load(Opcode::kLoad8, Value::Reg(addr));
  uint32_t odd = b.Binary(Opcode::kAnd, Value::Reg(value), Value::Imm(1));
  b.CondBr(Value::Reg(odd), cont, add_block);

  b.SetInsertPoint(add_block);
  b.Assign(acc, Opcode::kAdd, Value::Reg(acc), Value::Reg(value));
  b.Br(cont);

  b.SetInsertPoint(cont);
  b.Assign(i, Opcode::kAdd, Value::Reg(i), Value::Imm(1));
  b.Br(head);

  b.SetInsertPoint(exit);
  b.Ret(Value::Reg(acc));
}

TEST(BackendExec, LoopWithBranches) {
  IrFunction fn("loop", 2);
  BuildLoop(fn);
  VcpuHarness harness;
  uint32_t region = harness.mem.CreateRegion("data", 4096);
  VAddr base = harness.mem.Alloc(region, 32 * 8);
  uint64_t expected = 0;
  for (uint64_t k = 0; k < 32; ++k) {
    harness.mem.Write<uint64_t>(base + k * 8, k * 3);
    if ((k * 3) % 2 == 0) {
      expected += k * 3;
    }
  }
  EXPECT_EQ(harness.CompileAndRun(fn, {base, 32}), expected);
}

TEST(BackendExec, RegisterPressureForcesSpillsButStaysCorrect) {
  // Compute sum of 24 live values: forces spilling with 12-13 allocatable registers.
  IrFunction fn("pressure", 1);
  IrIdAllocator ids;
  IrBuilder b(&fn, &ids);
  b.SetInsertPoint(b.CreateBlock("entry"));
  std::vector<uint32_t> values;
  for (int i = 0; i < 24; ++i) {
    values.push_back(b.Mul(Value::Reg(0), Value::Imm(i + 1)));
  }
  // Sum them in reverse so every value stays live until used.
  uint32_t acc = b.Const(0);
  for (int i = 23; i >= 0; --i) {
    b.Assign(acc, Opcode::kAdd, Value::Reg(acc), Value::Reg(values[static_cast<size_t>(i)]));
  }
  b.Ret(Value::Reg(acc));

  CompileStats stats;
  CompileOptions options;
  IrFunction copy = fn;  // CompileFunction mutates; keep a pristine copy for the interpreter.
  EmittedFunction emitted = CompileFunction(copy, options, &stats);
  EXPECT_GT(stats.spilled_vregs, 0u);

  VcpuHarness harness;
  uint64_t compiled = harness.CompileAndRun(fn, {7});
  uint64_t expected = 0;
  for (int i = 1; i <= 24; ++i) {
    expected += 7ull * static_cast<uint64_t>(i);
  }
  EXPECT_EQ(compiled, expected);
}

TEST(BackendExec, ReservedTagRegisterStillCorrectAndSlower) {
  auto build = [](IrFunction& fn) {
    IrIdAllocator ids;
    IrBuilder b(&fn, &ids);
    b.SetInsertPoint(b.CreateBlock("entry"));
    std::vector<uint32_t> values;
    for (int i = 0; i < 16; ++i) {
      values.push_back(b.Add(Value::Reg(0), Value::Imm(i)));
    }
    uint32_t acc = b.Const(0);
    for (int i = 15; i >= 0; --i) {
      b.Assign(acc, Opcode::kAdd, Value::Reg(acc), Value::Reg(values[static_cast<size_t>(i)]));
    }
    b.Ret(Value::Reg(acc));
  };
  IrFunction with_tag("with_tag", 1);
  build(with_tag);
  IrFunction without_tag("without_tag", 1);
  build(without_tag);

  VcpuHarness harness;
  CompileOptions reserve;
  reserve.reserve_tag_register = true;
  uint64_t r1 = harness.CompileAndRun(with_tag, {100}, reserve);
  uint64_t cycles_reserved = harness.last_cycles;
  uint64_t r2 = harness.CompileAndRun(without_tag, {100});
  uint64_t cycles_free = harness.last_cycles;
  EXPECT_EQ(r1, r2);
  EXPECT_GE(cycles_reserved, cycles_free);  // One register less can only hurt.
}

TEST(BackendExec, CallsBetweenCompiledFunctions) {
  VcpuHarness harness;
  // Callee: g(x) = x * x + 1.
  IrFunction callee("g", 1);
  {
    IrIdAllocator ids;
    IrBuilder b(&callee, &ids);
    b.SetInsertPoint(b.CreateBlock("entry"));
    uint32_t sq = b.Mul(Value::Reg(0), Value::Reg(0));
    uint32_t r = b.Add(Value::Reg(sq), Value::Imm(1));
    b.Ret(Value::Reg(r));
  }
  uint32_t callee_id = harness.Compile(callee);

  // Caller: f(a, b) = g(a) + g(b) + b (checks caller registers survive the register window).
  IrFunction caller("f", 2);
  {
    IrIdAllocator ids;
    IrBuilder b(&caller, &ids);
    b.SetInsertPoint(b.CreateBlock("entry"));
    uint32_t ga = b.Call(callee_id, {Value::Reg(0)}, /*has_result=*/true);
    uint32_t gb = b.Call(callee_id, {Value::Reg(1)}, /*has_result=*/true);
    uint32_t sum = b.Add(Value::Reg(ga), Value::Reg(gb));
    uint32_t total = b.Add(Value::Reg(sum), Value::Reg(1));
    b.Ret(Value::Reg(total));
  }
  uint32_t caller_id = harness.Compile(caller);
  EXPECT_EQ(harness.Run(caller_id, {3, 5}), (9u + 1) + (25u + 1) + 5);
}

TEST(BackendExec, HostFunctionCalls) {
  VcpuHarness harness;
  uint32_t host_segment = harness.code_map.AddHostSegment(SegmentKind::kKernel, "host_mul", 16);
  uint32_t host_id2 = harness.code_map.AddHostFunction(
      "host_mul", host_segment,
      [host_segment](Cpu& cpu, std::span<const uint64_t> args) -> uint64_t {
        cpu.HostWork(host_segment, 10);
        return args[0] * args[1];
      },
      2);

  IrFunction caller("f", 2);
  {
    IrIdAllocator ids;
    IrBuilder b(&caller, &ids);
    b.SetInsertPoint(b.CreateBlock("entry"));
    uint32_t r = b.Call(host_id2, {Value::Reg(0), Value::Reg(1)}, /*has_result=*/true);
    b.Ret(Value::Reg(r));
  }
  uint32_t caller_id = harness.Compile(caller);
  EXPECT_EQ(harness.Run(caller_id, {6, 7}), 42u);
}

TEST(BackendExec, TagRegisterSurvivesCalls) {
  VcpuHarness harness;
  // Callee reads the global tag register.
  IrFunction callee("read_tag", 0);
  {
    IrIdAllocator ids;
    IrBuilder b(&callee, &ids);
    b.SetInsertPoint(b.CreateBlock("entry"));
    uint32_t tag = b.GetTag();
    b.Ret(Value::Reg(tag));
  }
  CompileOptions reserve;
  reserve.reserve_tag_register = true;
  uint32_t callee_id = harness.Compile(callee, reserve);

  // Caller: set tag, call, restore, return callee's observation.
  IrFunction caller("set_and_call", 0);
  {
    IrIdAllocator ids;
    IrBuilder b(&caller, &ids);
    b.SetInsertPoint(b.CreateBlock("entry"));
    uint32_t saved = b.GetTag();
    b.SetTag(Value::Imm(1234));
    uint32_t seen = b.Call(callee_id, {}, /*has_result=*/true);
    b.SetTag(Value::Reg(saved));
    b.Ret(Value::Reg(seen));
  }
  uint32_t caller_id = harness.Compile(caller, reserve);
  EXPECT_EQ(harness.Run(caller_id, {}), 1234u);
}

TEST(BackendExec, DebugInfoCoversAllInstructions) {
  IrFunction fn("loop", 2);
  BuildLoop(fn);
  CompileOptions options;
  EmittedFunction emitted = CompileFunction(fn, options);
  for (const MInstr& instr : emitted.code) {
    EXPECT_NE(instr.ir_id, kNoIrId);
  }
}

}  // namespace
}  // namespace dfp
