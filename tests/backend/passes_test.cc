#include <gtest/gtest.h>

#include "src/backend/passes.h"

#include "src/util/hash.h"
#include "src/ir/builder.h"
#include "src/ir/interp.h"
#include "src/ir/verifier.h"

namespace dfp {
namespace {

// Lineage listener that records events for assertions.
class RecordingLineage : public LineageListener {
 public:
  void OnRemove(uint32_t ir_id) override { removed.push_back(ir_id); }
  void OnAbsorb(uint32_t kept, uint32_t absorbed) override {
    absorbed_pairs.emplace_back(kept, absorbed);
  }

  std::vector<uint32_t> removed;
  std::vector<std::pair<uint32_t, uint32_t>> absorbed_pairs;
};

TEST(ConstantFold, FoldsAndPropagates) {
  IrFunction fn("f", 0);
  IrIdAllocator ids;
  IrBuilder b(&fn, &ids);
  b.SetInsertPoint(b.CreateBlock("entry"));
  uint32_t two = b.Const(2);
  uint32_t three = b.Const(3);
  uint32_t sum = b.Add(Value::Reg(two), Value::Reg(three));      // Folds to 5.
  uint32_t prod = b.Mul(Value::Reg(sum), Value::Imm(10));        // Folds to 50.
  b.Ret(Value::Reg(prod));
  ConstantFoldPass(fn, nullptr);
  const IrInstr& folded = fn.block(0).instrs[3];
  EXPECT_EQ(folded.op, Opcode::kConst);
  EXPECT_EQ(folded.a.imm, 50);
  EXPECT_TRUE(VerifyFunction(fn).empty());
}

TEST(ConstantFold, DoesNotFoldDivisionByZero) {
  IrFunction fn("f", 0);
  IrIdAllocator ids;
  IrBuilder b(&fn, &ids);
  b.SetInsertPoint(b.CreateBlock("entry"));
  uint32_t q = b.Binary(Opcode::kDiv, Value::Imm(10), Value::Imm(0));
  b.Ret(Value::Reg(q));
  ConstantFoldPass(fn, nullptr);
  EXPECT_EQ(fn.block(0).instrs[0].op, Opcode::kDiv);  // Trap preserved.
}

TEST(ConstantFold, StopsAtRedefinition) {
  IrFunction fn("f", 1);
  IrIdAllocator ids;
  IrBuilder b(&fn, &ids);
  b.SetInsertPoint(b.CreateBlock("entry"));
  uint32_t x = b.Const(7);
  b.Assign(x, Opcode::kAdd, Value::Reg(0), Value::Imm(1));  // x redefined from runtime input.
  uint32_t use = b.Add(Value::Reg(x), Value::Imm(0));
  b.Ret(Value::Reg(use));
  ConstantFoldPass(fn, nullptr);
  // `use` must not have been folded to 7: x is no longer constant.
  EXPECT_NE(fn.block(0).instrs[2].op, Opcode::kConst);
  VMem mem(1 << 12);
  uint64_t args[] = {4};
  EXPECT_EQ(InterpretIr(fn, args, mem), 5u);
}

TEST(Combine, StrengthReducesMultiplyByPowerOfTwo) {
  IrFunction fn("f", 1);
  IrIdAllocator ids;
  IrBuilder b(&fn, &ids);
  b.SetInsertPoint(b.CreateBlock("entry"));
  uint32_t r = b.Mul(Value::Reg(0), Value::Imm(8));
  b.Ret(Value::Reg(r));
  CombineInstrsPass(fn, nullptr);
  EXPECT_EQ(fn.block(0).instrs[0].op, Opcode::kShl);
  EXPECT_EQ(fn.block(0).instrs[0].b.imm, 3);
  VMem mem(1 << 12);
  uint64_t args[] = {5};
  EXPECT_EQ(InterpretIr(fn, args, mem), 40u);
}

TEST(Combine, FoldsAddressArithmeticIntoDisplacement) {
  IrFunction fn("f", 1);
  IrIdAllocator ids;
  IrBuilder b(&fn, &ids);
  b.SetInsertPoint(b.CreateBlock("entry"));
  uint32_t addr = b.Add(Value::Reg(0), Value::Imm(16));
  uint32_t v = b.Load(Opcode::kLoad8, Value::Reg(addr), 8);
  b.Ret(Value::Reg(v));
  RecordingLineage lineage;
  CombineInstrsPass(fn, &lineage);
  const IrInstr& load = fn.block(0).instrs[1];
  EXPECT_EQ(load.a.vreg, 0u);
  EXPECT_EQ(load.disp, 24);
  ASSERT_EQ(lineage.absorbed_pairs.size(), 1u);
  EXPECT_EQ(lineage.absorbed_pairs[0].first, load.id);

  VMem mem(1 << 12);
  uint32_t region = mem.CreateRegion("d", 64);
  VAddr base = mem.Alloc(region, 40);
  mem.Write<uint64_t>(base + 24, 777);
  uint64_t args[] = {base};
  EXPECT_EQ(InterpretIr(fn, args, mem), 777u);
}

TEST(Combine, AddressFoldingRespectsRedefinition) {
  IrFunction fn("f", 1);
  IrIdAllocator ids;
  IrBuilder b(&fn, &ids);
  b.SetInsertPoint(b.CreateBlock("entry"));
  uint32_t addr = b.Add(Value::Reg(0), Value::Imm(16));
  b.Assign(0, Opcode::kAdd, Value::Reg(0), Value::Imm(100));  // Base redefined!
  uint32_t v = b.Load(Opcode::kLoad8, Value::Reg(addr), 0);
  b.Ret(Value::Reg(v));
  CombineInstrsPass(fn, nullptr);
  // Folding would read from the new base; it must not happen.
  EXPECT_EQ(fn.block(0).instrs[2].a.vreg, addr);
  EXPECT_EQ(fn.block(0).instrs[2].disp, 0);
}

TEST(Cse, EliminatesDuplicateHashes) {
  IrFunction fn("f", 1);
  IrIdAllocator ids;
  IrBuilder b(&fn, &ids);
  b.SetInsertPoint(b.CreateBlock("entry"));
  uint32_t h1 = b.EmitHash(Value::Reg(0));
  uint32_t h2 = b.EmitHash(Value::Reg(0));  // Identical computation.
  uint32_t sum = b.Add(Value::Reg(h1), Value::Reg(h2));
  b.Ret(Value::Reg(sum));
  RecordingLineage lineage;
  int changed = CommonSubexprPass(fn, &lineage);
  EXPECT_EQ(changed, 5);  // The whole second hash chain collapses to moves.
  EXPECT_EQ(lineage.absorbed_pairs.size(), 5u);
  VMem mem(1 << 12);
  uint64_t args[] = {12345};
  uint64_t h = HashKey(12345);
  EXPECT_EQ(InterpretIr(fn, args, mem), h + h);
}

TEST(Cse, RespectsOperandRedefinition) {
  IrFunction fn("f", 1);
  IrIdAllocator ids;
  IrBuilder b(&fn, &ids);
  b.SetInsertPoint(b.CreateBlock("entry"));
  uint32_t first = b.Add(Value::Reg(0), Value::Imm(1));
  b.Assign(0, Opcode::kAdd, Value::Reg(0), Value::Imm(50));
  uint32_t second = b.Add(Value::Reg(0), Value::Imm(1));  // Not a duplicate: arg changed.
  uint32_t sum = b.Add(Value::Reg(first), Value::Reg(second));
  b.Ret(Value::Reg(sum));
  CommonSubexprPass(fn, nullptr);
  VMem mem(1 << 12);
  uint64_t args[] = {10};
  EXPECT_EQ(InterpretIr(fn, args, mem), 11u + 61u);
}

TEST(Cse, ResultRegisterOverwriteInvalidatesAvailability) {
  IrFunction fn("f", 1);
  IrIdAllocator ids;
  IrBuilder b(&fn, &ids);
  b.SetInsertPoint(b.CreateBlock("entry"));
  uint32_t first = b.Add(Value::Reg(0), Value::Imm(1));
  b.Assign(first, Opcode::kMov, Value::Imm(0));  // Holder overwritten.
  uint32_t second = b.Add(Value::Reg(0), Value::Imm(1));
  uint32_t sum = b.Add(Value::Reg(first), Value::Reg(second));
  b.Ret(Value::Reg(sum));
  CommonSubexprPass(fn, nullptr);
  VMem mem(1 << 12);
  uint64_t args[] = {10};
  EXPECT_EQ(InterpretIr(fn, args, mem), 0u + 11u);
}

TEST(Dce, RemovesDeadCodeAndReports) {
  IrFunction fn("f", 1);
  IrIdAllocator ids;
  IrBuilder b(&fn, &ids);
  b.SetInsertPoint(b.CreateBlock("entry"));
  uint32_t live = b.Add(Value::Reg(0), Value::Imm(1));
  b.Mul(Value::Reg(0), Value::Imm(3));  // Dead.
  b.EmitHash(Value::Reg(0));            // Dead chain of 5.
  b.Ret(Value::Reg(live));
  RecordingLineage lineage;
  int removed = DeadCodeElimPass(fn, &lineage);
  EXPECT_EQ(removed, 6);
  EXPECT_EQ(lineage.removed.size(), 6u);
  EXPECT_EQ(fn.InstrCount(), 2u);
}

TEST(Dce, KeepsStoresCallsAndLoopState) {
  IrFunction fn("f", 2);
  IrIdAllocator ids;
  IrBuilder b(&fn, &ids);
  uint32_t entry = b.CreateBlock("entry");
  uint32_t head = b.CreateBlock("head");
  uint32_t body = b.CreateBlock("body");
  uint32_t exit = b.CreateBlock("exit");
  b.SetInsertPoint(entry);
  uint32_t i = b.Const(0);
  b.Br(head);
  b.SetInsertPoint(head);
  uint32_t cond = b.CmpLt(Value::Reg(i), Value::Reg(1));
  b.CondBr(Value::Reg(cond), body, exit);
  b.SetInsertPoint(body);
  b.Store(Opcode::kStore8, Value::Reg(i), Value::Reg(0));
  b.Assign(i, Opcode::kAdd, Value::Reg(i), Value::Imm(1));
  b.Br(head);
  b.SetInsertPoint(exit);
  b.Ret(Value::Reg(i));
  size_t before = fn.InstrCount();
  DeadCodeElimPass(fn, nullptr);
  EXPECT_EQ(fn.InstrCount(), before);  // Everything is live.
}

TEST(Pipeline, PreservesSemanticsOnMixedFunction) {
  auto build = [](IrFunction& fn) {
    IrIdAllocator ids;
    IrBuilder b(&fn, &ids);
    b.SetInsertPoint(b.CreateBlock("entry"));
    uint32_t base = b.Add(Value::Reg(0), Value::Imm(8));
    uint32_t x = b.Load(Opcode::kLoad8, Value::Reg(base), 0);
    uint32_t h1 = b.EmitHash(Value::Reg(x));
    uint32_t h2 = b.EmitHash(Value::Reg(x));
    uint32_t mixed = b.Binary(Opcode::kXor, Value::Reg(h1), Value::Reg(h2));
    uint32_t scaled = b.Mul(Value::Reg(mixed), Value::Imm(16));
    uint32_t c = b.Add(Value::Imm(2), Value::Imm(5));
    uint32_t result = b.Add(Value::Reg(scaled), Value::Reg(c));
    b.EmitHash(Value::Reg(result));  // Dead.
    b.Ret(Value::Reg(result));
  };
  IrFunction plain("plain", 1);
  build(plain);
  IrFunction optimized("optimized", 1);
  build(optimized);
  RunOptimizationPipeline(optimized, nullptr);
  EXPECT_LT(optimized.InstrCount(), plain.InstrCount());
  EXPECT_TRUE(VerifyFunction(optimized).empty());

  VMem mem(1 << 12);
  uint32_t region = mem.CreateRegion("d", 64);
  VAddr addr = mem.Alloc(region, 16);
  mem.Write<uint64_t>(addr + 8, 987654321);
  uint64_t args[] = {addr};
  EXPECT_EQ(InterpretIr(plain, args, mem), InterpretIr(optimized, args, mem));
}

}  // namespace
}  // namespace dfp
