#include <gtest/gtest.h>

#include "src/backend/liveness.h"
#include "src/backend/regalloc.h"
#include "src/ir/builder.h"

namespace dfp {
namespace {

TEST(Liveness, StraightLine) {
  IrFunction fn("f", 1);
  IrIdAllocator ids;
  IrBuilder b(&fn, &ids);
  b.SetInsertPoint(b.CreateBlock("entry"));
  uint32_t x = b.Add(Value::Reg(0), Value::Imm(1));
  uint32_t y = b.Mul(Value::Reg(x), Value::Imm(2));
  b.Ret(Value::Reg(y));
  LivenessInfo info = ComputeLiveness(fn);
  // Argument 0 is upward-exposed in the entry block.
  EXPECT_TRUE(info.LiveIn(0, 0));
  EXPECT_FALSE(info.LiveOut(0, y));  // No successors.
}

TEST(Liveness, LoopCarriedValueIsLiveAroundTheLoop) {
  IrFunction fn("f", 1);
  IrIdAllocator ids;
  IrBuilder b(&fn, &ids);
  uint32_t entry = b.CreateBlock("entry");
  uint32_t head = b.CreateBlock("head");
  uint32_t body = b.CreateBlock("body");
  uint32_t exit = b.CreateBlock("exit");
  b.SetInsertPoint(entry);
  uint32_t acc = b.Const(0);
  uint32_t i = b.Const(0);
  b.Br(head);
  b.SetInsertPoint(head);
  uint32_t cond = b.CmpLt(Value::Reg(i), Value::Reg(0));
  b.CondBr(Value::Reg(cond), body, exit);
  b.SetInsertPoint(body);
  b.Assign(acc, Opcode::kAdd, Value::Reg(acc), Value::Reg(i));
  b.Assign(i, Opcode::kAdd, Value::Reg(i), Value::Imm(1));
  b.Br(head);
  b.SetInsertPoint(exit);
  b.Ret(Value::Reg(acc));
  LivenessInfo info = ComputeLiveness(fn);
  // The accumulator is live into and out of every loop block.
  EXPECT_TRUE(info.LiveIn(head, acc));
  EXPECT_TRUE(info.LiveOut(body, acc));
  EXPECT_TRUE(info.LiveIn(body, acc));
  EXPECT_TRUE(info.LiveOut(head, acc));
}

TEST(Liveness, BlockSuccessors) {
  IrFunction fn("f", 0);
  IrIdAllocator ids;
  IrBuilder b(&fn, &ids);
  uint32_t entry = b.CreateBlock("entry");
  uint32_t a = b.CreateBlock("a");
  uint32_t c = b.CreateBlock("c");
  b.SetInsertPoint(entry);
  uint32_t cond = b.Const(1);
  b.CondBr(Value::Reg(cond), a, c);
  b.SetInsertPoint(a);
  b.Ret();
  b.SetInsertPoint(c);
  b.Ret();
  std::vector<uint32_t> successors = BlockSuccessors(fn.block(entry));
  EXPECT_EQ(successors.size(), 2u);
  EXPECT_TRUE(BlockSuccessors(fn.block(a)).empty());
}

IrFunction ManyLiveValues(int count) {
  IrFunction fn("f", 1);
  IrIdAllocator ids;
  IrBuilder b(&fn, &ids);
  b.SetInsertPoint(b.CreateBlock("entry"));
  std::vector<uint32_t> values;
  for (int i = 0; i < count; ++i) {
    values.push_back(b.Add(Value::Reg(0), Value::Imm(i)));
  }
  uint32_t acc = b.Const(0);
  for (int i = count - 1; i >= 0; --i) {
    b.Assign(acc, Opcode::kAdd, Value::Reg(acc), Value::Reg(values[static_cast<size_t>(i)]));
  }
  b.Ret(Value::Reg(acc));
  return fn;
}

TEST(RegAlloc, NoSpillsUnderLowPressure) {
  IrFunction fn = ManyLiveValues(8);
  Allocation allocation = AllocateRegisters(fn, /*reserve_tag_register=*/false);
  EXPECT_EQ(allocation.spilled_vregs, 0u);
}

TEST(RegAlloc, SpillsUnderHighPressure) {
  IrFunction fn = ManyLiveValues(30);
  Allocation allocation = AllocateRegisters(fn, /*reserve_tag_register=*/false);
  EXPECT_GT(allocation.spilled_vregs, 0u);
  EXPECT_EQ(allocation.spill_slot_count, allocation.spilled_vregs);
  // Spilled vregs get distinct slots; allocated ones get valid registers.
  std::set<uint16_t> slots;
  for (uint32_t v = 0; v < fn.next_vreg(); ++v) {
    const VRegLocation& loc = allocation.loc(v);
    if (!loc.allocated) {
      continue;
    }
    if (loc.spilled) {
      EXPECT_TRUE(slots.insert(loc.slot).second);
    } else {
      EXPECT_TRUE(loc.preg <= kLastAllocatable || loc.preg == kTagReg);
      EXPECT_NE(loc.preg, kScratch0);
      EXPECT_NE(loc.preg, kScratch1);
      EXPECT_NE(loc.preg, kScratch2);
    }
  }
}

TEST(RegAlloc, ReservingTagRegisterIncreasesSpills) {
  IrFunction with = ManyLiveValues(16);
  IrFunction without = ManyLiveValues(16);
  Allocation reserved = AllocateRegisters(with, /*reserve_tag_register=*/true);
  Allocation free_alloc = AllocateRegisters(without, /*reserve_tag_register=*/false);
  EXPECT_GE(reserved.spilled_vregs, free_alloc.spilled_vregs);
  // r15 never assigned when reserved.
  for (uint32_t v = 0; v < with.next_vreg(); ++v) {
    if (reserved.loc(v).allocated && !reserved.loc(v).spilled) {
      EXPECT_NE(reserved.loc(v).preg, kTagReg);
    }
  }
}

TEST(RegAlloc, TagRegisterNeverHostsCallCrossingRanges) {
  // A value live across a call must not land in r15 (callees may use it).
  IrFunction fn("f", 1);
  IrIdAllocator ids;
  IrBuilder b(&fn, &ids);
  b.SetInsertPoint(b.CreateBlock("entry"));
  // 13 values live across the call: saturates r0..r12, tempting the allocator with r15.
  std::vector<uint32_t> values;
  for (int i = 0; i < 13; ++i) {
    values.push_back(b.Add(Value::Reg(0), Value::Imm(i)));
  }
  b.Call(0, {Value::Reg(values[0])}, /*has_result=*/false);
  uint32_t acc = b.Const(0);
  for (uint32_t v : values) {
    b.Assign(acc, Opcode::kAdd, Value::Reg(acc), Value::Reg(v));
  }
  b.Ret(Value::Reg(acc));
  Allocation allocation = AllocateRegisters(fn, /*reserve_tag_register=*/false);
  for (uint32_t v : values) {
    if (allocation.loc(v).allocated && !allocation.loc(v).spilled) {
      EXPECT_NE(allocation.loc(v).preg, kTagReg) << "vreg " << v;
    }
  }
}

TEST(RegAlloc, ArgumentsPreferTheirIncomingRegisters) {
  IrFunction fn("f", 3);
  IrIdAllocator ids;
  IrBuilder b(&fn, &ids);
  b.SetInsertPoint(b.CreateBlock("entry"));
  uint32_t sum = b.Add(Value::Reg(0), Value::Reg(1));
  uint32_t total = b.Add(Value::Reg(sum), Value::Reg(2));
  b.Ret(Value::Reg(total));
  Allocation allocation = AllocateRegisters(fn, false);
  EXPECT_EQ(allocation.loc(0).preg, 0);
  EXPECT_EQ(allocation.loc(1).preg, 1);
  EXPECT_EQ(allocation.loc(2).preg, 2);
}

TEST(RegAlloc, DisjointLifetimesShareRegisters) {
  // Sequential short-lived values reuse a small number of registers.
  IrFunction fn("f", 1);
  IrIdAllocator ids;
  IrBuilder b(&fn, &ids);
  b.SetInsertPoint(b.CreateBlock("entry"));
  uint32_t acc = b.Const(0);
  for (int i = 0; i < 40; ++i) {
    uint32_t t = b.Add(Value::Reg(0), Value::Imm(i));  // Dead right after the next add.
    b.Assign(acc, Opcode::kAdd, Value::Reg(acc), Value::Reg(t));
  }
  b.Ret(Value::Reg(acc));
  Allocation allocation = AllocateRegisters(fn, false);
  EXPECT_EQ(allocation.spilled_vregs, 0u);
}

}  // namespace
}  // namespace dfp
