// Property tests: for randomly generated VIR programs, the optimized + register-allocated +
// machine-lowered execution on the VCPU must compute exactly what the IR interpreter computes,
// under every compilation configuration.
#include <gtest/gtest.h>

#include "src/ir/builder.h"
#include "src/ir/interp.h"
#include "src/util/random.h"
#include "tests/testing/vcpu_harness.h"

namespace dfp {
namespace {

// Generates a random function of `num_args` arguments: a mix of arithmetic over live values,
// memory traffic into a scratch buffer, and a reduction loop. Division is made safe by OR-ing
// divisors with 1.
IrFunction GenerateProgram(uint64_t seed, int size) {
  Random rng(seed);
  IrFunction fn("prog", 2);  // args: scratch buffer base, loop count
  IrIdAllocator ids;
  IrBuilder b(&fn, &ids);
  uint32_t entry = b.CreateBlock("entry");
  uint32_t head = b.CreateBlock("head");
  uint32_t body = b.CreateBlock("body");
  uint32_t exit = b.CreateBlock("exit");

  b.SetInsertPoint(entry);
  std::vector<uint32_t> pool = {0, 1};
  pool.push_back(b.Const(rng.Uniform(-100, 100)));
  pool.push_back(b.Const(rng.Uniform(1, 1000)));

  auto pick = [&]() { return Value::Reg(pool[static_cast<size_t>(rng.Uniform(
                          0, static_cast<int64_t>(pool.size()) - 1))]); };

  // Straight-line section.
  for (int i = 0; i < size; ++i) {
    switch (rng.Uniform(0, 9)) {
      case 0:
        pool.push_back(b.Add(pick(), pick()));
        break;
      case 1:
        pool.push_back(b.Sub(pick(), pick()));
        break;
      case 2:
        pool.push_back(b.Mul(pick(), Value::Imm(rng.Uniform(-8, 8))));
        break;
      case 3: {
        uint32_t divisor = b.Binary(Opcode::kOr, pick(), Value::Imm(1));
        pool.push_back(b.Div(pick(), Value::Reg(divisor)));
        break;
      }
      case 4:
        pool.push_back(b.Binary(Opcode::kXor, pick(), pick()));
        break;
      case 5:
        pool.push_back(b.Binary(Opcode::kShr, pick(), Value::Imm(rng.Uniform(0, 63))));
        break;
      case 6:
        pool.push_back(b.Crc32(pick(), pick()));
        break;
      case 7: {
        uint32_t cond = b.CmpLt(pick(), pick());
        pool.push_back(b.Select(Value::Reg(cond), pick(), pick()));
        break;
      }
      case 8: {
        // Store then load back through the scratch buffer.
        int32_t slot = static_cast<int32_t>(rng.Uniform(0, 15)) * 8;
        b.Store(Opcode::kStore8, pick(), Value::Reg(0), slot);
        pool.push_back(b.Load(Opcode::kLoad8, Value::Reg(0), slot));
        break;
      }
      case 9:
        pool.push_back(b.Unary(Opcode::kNot, pick()));
        break;
    }
  }
  uint32_t loop_acc = b.Const(0);
  uint32_t i = b.Const(0);
  b.Br(head);

  b.SetInsertPoint(head);
  uint32_t cond = b.CmpLt(Value::Reg(i), Value::Reg(1));
  b.CondBr(Value::Reg(cond), body, exit);

  b.SetInsertPoint(body);
  uint32_t mixed = b.Crc32(Value::Reg(loop_acc), pick());
  b.Assign(loop_acc, Opcode::kAdd, Value::Reg(mixed), Value::Reg(i));
  b.Assign(i, Opcode::kAdd, Value::Reg(i), Value::Imm(1));
  b.Br(head);

  b.SetInsertPoint(exit);
  // Fold the last few pool values into the result so most of the program is live.
  uint32_t result = loop_acc;
  for (size_t k = pool.size() >= 6 ? pool.size() - 6 : 0; k < pool.size(); ++k) {
    uint32_t next = b.Binary(Opcode::kXor, Value::Reg(result), Value::Reg(pool[k]));
    result = next;
  }
  b.Ret(Value::Reg(result));
  return fn;
}

struct PropertyCase {
  uint64_t seed;
  int size;
  bool optimize;
  bool reserve_tag;
};

class BackendProperty : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(BackendProperty, CompiledMatchesInterpreted) {
  const PropertyCase& param = GetParam();
  IrFunction reference = GenerateProgram(param.seed, param.size);
  IrFunction compiled = GenerateProgram(param.seed, param.size);

  // Interpreter run on its own memory.
  VMem interp_mem(1 << 16);
  uint32_t interp_region = interp_mem.CreateRegion("scratch", 4096);
  VAddr interp_base = interp_mem.Alloc(interp_region, 256);
  uint64_t args[] = {interp_base, 13};
  uint64_t expected = InterpretIr(reference, args, interp_mem);

  // Compiled run on the VCPU with its own memory.
  VcpuHarness harness;
  uint32_t region = harness.mem.CreateRegion("scratch", 4096);
  VAddr base = harness.mem.Alloc(region, 256);
  CompileOptions options;
  options.optimize = param.optimize;
  options.reserve_tag_register = param.reserve_tag;
  uint64_t actual = harness.CompileAndRun(compiled, {base, 13}, options);

  EXPECT_EQ(actual, expected) << "seed=" << param.seed << " size=" << param.size
                              << " optimize=" << param.optimize
                              << " reserve=" << param.reserve_tag;

  // Memory effects must match, too.
  for (int slot = 0; slot < 16; ++slot) {
    EXPECT_EQ(harness.mem.Read<uint64_t>(base + static_cast<uint64_t>(slot) * 8),
              interp_mem.Read<uint64_t>(interp_base + static_cast<uint64_t>(slot) * 8))
        << "slot " << slot;
  }
}

std::vector<PropertyCase> MakeCases() {
  std::vector<PropertyCase> cases;
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    for (int size : {5, 30, 120}) {
      cases.push_back({seed, size, true, false});
      cases.push_back({seed, size, true, true});
      cases.push_back({seed, size, false, false});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, BackendProperty, ::testing::ValuesIn(MakeCases()));

}  // namespace
}  // namespace dfp
