#include <gtest/gtest.h>

#include "src/sql/binder.h"
#include "src/sql/lexer.h"
#include "src/sql/parser.h"
#include "src/engine/query_engine.h"
#include "src/util/date.h"

namespace dfp {
namespace {

TEST(Lexer, TokenizesBasics) {
  std::vector<Token> tokens = Tokenize("select a, b1 from t where x >= 1.50 and y = 'it''s'");
  ASSERT_GE(tokens.size(), 12u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kKeyword);
  EXPECT_EQ(tokens[0].text, "select");
  EXPECT_EQ(tokens[1].kind, TokenKind::kIdent);
  // ">=" is one token.
  bool found_ge = false;
  bool found_decimal = false;
  bool found_string = false;
  for (const Token& token : tokens) {
    if (token.kind == TokenKind::kSymbol && token.text == ">=") {
      found_ge = true;
    }
    if (token.kind == TokenKind::kDecimal) {
      found_decimal = true;
      EXPECT_EQ(token.decimal_value, 150);
    }
    if (token.kind == TokenKind::kString) {
      found_string = true;
      EXPECT_EQ(token.text, "it's");
    }
  }
  EXPECT_TRUE(found_ge);
  EXPECT_TRUE(found_decimal);
  EXPECT_TRUE(found_string);
  EXPECT_EQ(tokens.back().kind, TokenKind::kEnd);
}

TEST(Lexer, KeywordsAreCaseInsensitive) {
  std::vector<Token> tokens = Tokenize("SELECT X FROM T");
  EXPECT_EQ(tokens[0].kind, TokenKind::kKeyword);
  EXPECT_EQ(tokens[0].text, "select");
  EXPECT_EQ(tokens[1].text, "x");
}

TEST(Lexer, RejectsUnterminatedString) {
  EXPECT_THROW(Tokenize("select 'oops"), Error);
  EXPECT_THROW(Tokenize("select #"), Error);
}

TEST(Parser, ParsesFullSelect) {
  SelectStatement stmt = ParseSelect(
      "select a.x, sum(b.y) as total from t1 a, t2 b "
      "where a.id = b.id and a.x > 5 group by a.x having sum(b.y) > 10 "
      "order by total desc limit 7;");
  EXPECT_EQ(stmt.select_list.size(), 2u);
  EXPECT_EQ(stmt.select_list[1].alias, "total");
  EXPECT_EQ(stmt.from.size(), 2u);
  EXPECT_EQ(stmt.from[0].alias, "a");
  ASSERT_NE(stmt.where, nullptr);
  EXPECT_EQ(stmt.group_by.size(), 1u);
  ASSERT_NE(stmt.having, nullptr);
  EXPECT_EQ(stmt.order_by.size(), 1u);
  EXPECT_TRUE(stmt.order_by[0].descending);
  EXPECT_EQ(stmt.limit, 7);
}

TEST(Parser, OperatorPrecedence) {
  SelectStatement stmt = ParseSelect("select a + b * c from t");
  const SqlExpr& expr = *stmt.select_list[0].expr;
  ASSERT_EQ(expr.kind, SqlExprKind::kBinary);
  EXPECT_EQ(expr.bin, SqlBinOp::kAdd);
  EXPECT_EQ(expr.right->bin, SqlBinOp::kMul);
}

TEST(Parser, AndBindsTighterThanOr) {
  SelectStatement stmt = ParseSelect("select 1 from t where a = 1 or b = 2 and c = 3");
  const SqlExpr& where = *stmt.where;
  EXPECT_EQ(where.bin, SqlBinOp::kOr);
  EXPECT_EQ(where.right->bin, SqlBinOp::kAnd);
}

TEST(Parser, BetweenLikeInCase) {
  SelectStatement stmt = ParseSelect(
      "select case when x between 1 and 2 then 'low' else 'high' end "
      "from t where name like 'ab%' and k in (1, 2, 3)");
  EXPECT_EQ(stmt.select_list[0].expr->kind, SqlExprKind::kCase);
  const SqlExpr& where = *stmt.where;
  EXPECT_EQ(where.bin, SqlBinOp::kAnd);
  EXPECT_EQ(where.left->kind, SqlExprKind::kLike);
  EXPECT_EQ(where.right->kind, SqlExprKind::kInList);
  EXPECT_EQ(where.right->list.size(), 3u);
}

TEST(Parser, DateLiteral) {
  SelectStatement stmt = ParseSelect("select 1 from t where d < date '1995-04-01'");
  EXPECT_EQ(stmt.where->right->kind, SqlExprKind::kDateLit);
  EXPECT_EQ(stmt.where->right->int_value, ParseDate("1995-04-01"));
}

TEST(Parser, CountStar) {
  SelectStatement stmt = ParseSelect("select count(*) from t");
  EXPECT_EQ(stmt.select_list[0].expr->kind, SqlExprKind::kAggregate);
  EXPECT_EQ(stmt.select_list[0].expr->agg, SqlAgg::kCountStar);
}

TEST(Parser, Errors) {
  EXPECT_THROW(ParseSelect("from t"), Error);
  EXPECT_THROW(ParseSelect("select"), Error);
  EXPECT_THROW(ParseSelect("select a from"), Error);
  EXPECT_THROW(ParseSelect("select a from t where"), Error);
  EXPECT_THROW(ParseSelect("select a from t where 1 = "), Error);
  EXPECT_THROW(ParseSelect("select case else 1 end from t"), Error);
}

class BinderTest : public ::testing::Test {
 protected:
  BinderTest() {
    {
      TableBuilder t = db.CreateTableBuilder({"items",
                                              {{"id", ColumnType::kInt64},
                                               {"price", ColumnType::kDecimal},
                                               {"name", ColumnType::kString}}});
      for (int i = 0; i < 50; ++i) {
        t.BeginRow();
        t.SetI64(0, i);
        t.SetDecimal(1, i * 100);
        t.SetString(2, i % 2 == 0 ? "even" : "odd");
      }
      db.AddTable(t.Finish());
    }
    {
      TableBuilder t = db.CreateTableBuilder(
          {"orders2", {{"id", ColumnType::kInt64}, {"item_id", ColumnType::kInt64}}});
      for (int i = 0; i < 100; ++i) {
        t.BeginRow();
        t.SetI64(0, i);
        t.SetI64(1, i % 50);
      }
      db.AddTable(t.Finish());
    }
  }

  Database db;
};

TEST_F(BinderTest, BindsSimpleSelect) {
  PhysicalOpPtr plan = PlanSql(db, "select id, price from items where price > 10.00");
  EXPECT_EQ(plan->kind, OpKind::kResultSink);
  EXPECT_EQ(plan->output.size(), 2u);
  EXPECT_EQ(plan->output[0].name, "id");
  EXPECT_EQ(plan->output[1].type, ColumnType::kDecimal);
}

TEST_F(BinderTest, BindsJoinWithQualifiedNames) {
  PhysicalOpPtr plan = PlanSql(
      db, "select o.id, i.name from orders2 o, items i where o.item_id = i.id");
  EXPECT_EQ(plan->output.size(), 2u);
  // There must be a hash join in the plan.
  bool has_join = false;
  for (PhysicalOp* op : PlanOperators(*plan)) {
    if (op->kind == OpKind::kHashJoin) {
      has_join = true;
    }
  }
  EXPECT_TRUE(has_join);
}

TEST_F(BinderTest, GlobalAggregateWithoutGroupBy) {
  PhysicalOpPtr plan = PlanSql(db, "select sum(price), count(*) from items");
  bool has_groupby = false;
  for (PhysicalOp* op : PlanOperators(*plan)) {
    if (op->kind == OpKind::kGroupBy) {
      has_groupby = true;
      EXPECT_TRUE(op->group_keys.empty());
    }
  }
  EXPECT_TRUE(has_groupby);
}

TEST_F(BinderTest, ErrorsOnBadInput) {
  EXPECT_THROW(PlanSql(db, "select x from items"), Error);           // Unknown column.
  EXPECT_THROW(PlanSql(db, "select id from nosuch"), Error);         // Unknown table.
  EXPECT_THROW(PlanSql(db, "select i.id from items i, orders2 o"), Error);  // Cross join.
  EXPECT_THROW(PlanSql(db, "select id from items i, items i"), Error);      // Duplicate alias.
  EXPECT_THROW(PlanSql(db, "select id from items where sum(price) > 1"), Error);
  EXPECT_THROW(PlanSql(db, "select id from items having count(*) > 1 "), Error);
  // Ambiguous unqualified column across two tables.
  EXPECT_THROW(
      PlanSql(db, "select id from orders2 o, items i where o.item_id = i.id"), Error);
}

TEST_F(BinderTest, FilterPushdownReachesScans) {
  PhysicalOpPtr plan = PlanSql(db,
                               "select o.id from orders2 o, items i "
                               "where o.item_id = i.id and i.price > 10.00 and o.id < 90");
  // Both single-table predicates sit below the join.
  std::vector<PhysicalOp*> ops = PlanOperators(*plan);
  int filters_below_join = 0;
  bool in_join_subtree = false;
  for (PhysicalOp* op : ops) {
    if (op->kind == OpKind::kHashJoin) {
      in_join_subtree = true;
    }
    if (op->kind == OpKind::kFilter && in_join_subtree) {
      ++filters_below_join;
    }
  }
  EXPECT_EQ(filters_below_join, 2);
}

TEST(Parser, YearAndDistinct) {
  SelectStatement stmt = ParseSelect("select distinct year(d) from t group by year(d)");
  EXPECT_TRUE(stmt.distinct);
  EXPECT_EQ(stmt.select_list[0].expr->kind, SqlExprKind::kYear);
  EXPECT_EQ(stmt.group_by[0]->kind, SqlExprKind::kYear);
}

TEST_F(BinderTest, YearExtraction) {
  // Add a dated table for the year() tests.
  TableBuilder t = db.CreateTableBuilder(
      {"events", {{"id", ColumnType::kInt64}, {"d", ColumnType::kDate}}});
  for (int i = 0; i < 40; ++i) {
    t.BeginRow();
    t.SetI64(0, i);
    t.SetDate(1, DateFromYmd(1992 + i % 5, 1 + i % 12, 1 + i % 28));
  }
  db.AddTable(t.Finish());
  QueryEngine engine(&db);
  CompiledQuery query = engine.Compile(
      PlanSql(db, "select year(d) as y, count(*) as n from events group by year(d) order by y"),
      nullptr, "years");
  Result result = engine.Execute(query);
  ASSERT_EQ(result.row_count(), 5u);
  EXPECT_EQ(result.at(0, 0), 1992);
  EXPECT_EQ(result.at(4, 0), 1996);
  int64_t total = 0;
  for (size_t r = 0; r < result.row_count(); ++r) {
    total += result.at(r, 1);
  }
  EXPECT_EQ(total, 40);
  // year() of a non-date errors.
  EXPECT_THROW(PlanSql(db, "select year(id) from events"), Error);
}

TEST_F(BinderTest, DistinctDeduplicates) {
  QueryEngine engine(&db);
  CompiledQuery query = engine.Compile(
      PlanSql(db, "select distinct name from items order by name"), nullptr, "distinct");
  Result result = engine.Execute(query);
  ASSERT_EQ(result.row_count(), 2u);
  EXPECT_EQ(result.CellToString(db.strings(), 0, 0), "even");
  EXPECT_EQ(result.CellToString(db.strings(), 1, 0), "odd");
}

TEST_F(BinderTest, GroupByExpressionMatchedInSelectAndOrder) {
  QueryEngine engine(&db);
  // Group by a computed expression; select and order refer to it structurally.
  CompiledQuery query = engine.Compile(
      PlanSql(db, "select id % 5 as bucket, count(*) as n from items "
                  "group by id % 5 order by bucket"),
      nullptr, "expr_keys");
  Result result = engine.Execute(query);
  ASSERT_EQ(result.row_count(), 5u);
  for (size_t r = 0; r < result.row_count(); ++r) {
    EXPECT_EQ(result.at(r, 0), static_cast<int64_t>(r));
    EXPECT_EQ(result.at(r, 1), 10);
  }
}

}  // namespace
}  // namespace dfp
