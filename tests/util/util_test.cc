#include <gtest/gtest.h>

#include <set>

#include "src/util/chart.h"
#include "src/util/date.h"
#include "src/util/decimal.h"
#include "src/util/hash.h"
#include "src/util/random.h"
#include "src/util/str.h"
#include "src/util/table_printer.h"

namespace dfp {
namespace {

TEST(Hash, Crc32IsDeterministicAndSeedSensitive) {
  EXPECT_EQ(Crc32u64(0, 0x1234567890ABCDEFull), Crc32u64(0, 0x1234567890ABCDEFull));
  EXPECT_NE(Crc32u64(0, 1), Crc32u64(0, 2));
  EXPECT_NE(Crc32u64(1, 42), Crc32u64(2, 42));
}

TEST(Hash, Crc32ZeroOfZeroSeed) {
  // CRC of all-zero input with zero seed is zero for this table-driven implementation.
  EXPECT_EQ(Crc32u64(0, 0), 0u);
}

TEST(Hash, HashKeySpreadsHighBits) {
  // Directory indexing uses the hash's high bits (as the paper's generated code does with
  // `shr %11, 16`): sequential keys must land in many distinct buckets of a 1024-entry directory.
  std::set<uint64_t> buckets;
  for (uint64_t key = 0; key < 1000; ++key) {
    buckets.insert(HashKey(key) >> 54);
  }
  EXPECT_GT(buckets.size(), 550u);
}

TEST(Hash, HashCombineDiffersFromInputs) {
  uint64_t a = HashKey(1);
  uint64_t b = HashKey(2);
  EXPECT_NE(HashCombine(a, b), a);
  EXPECT_NE(HashCombine(a, b), b);
  EXPECT_NE(HashCombine(a, b), HashCombine(b, a));
}

TEST(Date, RoundTrip) {
  for (int year : {1970, 1992, 1998, 2000, 2024}) {
    for (int month : {1, 2, 6, 12}) {
      for (int day : {1, 15, 28}) {
        int32_t days = DateFromYmd(year, month, day);
        int y = 0;
        int m = 0;
        int d = 0;
        YmdFromDate(days, &y, &m, &d);
        EXPECT_EQ(y, year);
        EXPECT_EQ(m, month);
        EXPECT_EQ(d, day);
      }
    }
  }
}

TEST(Date, EpochIsZero) { EXPECT_EQ(DateFromYmd(1970, 1, 1), 0); }

TEST(Date, ParseAndFormat) {
  EXPECT_EQ(DateToString(ParseDate("1995-04-01")), "1995-04-01");
  EXPECT_LT(ParseDate("1995-03-31"), ParseDate("1995-04-01"));
  EXPECT_THROW(ParseDate("not-a-date"), Error);
  EXPECT_THROW(ParseDate("1995-13-01"), Error);
}

TEST(Decimal, Arithmetic) {
  int64_t a = MakeDecimal(12, 34);  // 12.34
  int64_t b = MakeDecimal(2, 0);    // 2.00
  EXPECT_EQ(DecimalToString(a), "12.34");
  EXPECT_EQ(DecimalMul(a, b), MakeDecimal(24, 68));
  EXPECT_EQ(DecimalDiv(a, b), MakeDecimal(6, 17));
  EXPECT_EQ(DecimalToString(MakeDecimal(-3, 5)), "-3.05");
  EXPECT_DOUBLE_EQ(DecimalToDouble(a), 12.34);
}

TEST(Random, DeterministicPerSeed) {
  Random a(42);
  Random b(42);
  Random c(43);
  bool differs = false;
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    if (va != c.Next()) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Random, UniformInRange) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(Random, AlphaStringHasRequestedLength) {
  Random rng(7);
  EXPECT_EQ(rng.AlphaString(12).size(), 12u);
  for (char c : rng.AlphaString(64)) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

TEST(Str, LikeMatch) {
  EXPECT_TRUE(LikeMatch("chip", "chip"));
  EXPECT_TRUE(LikeMatch("microchip", "%chip"));
  EXPECT_TRUE(LikeMatch("chipset", "chip%"));
  EXPECT_TRUE(LikeMatch("a chip here", "%chip%"));
  EXPECT_TRUE(LikeMatch("chap", "ch_p"));
  EXPECT_FALSE(LikeMatch("chop", "chip"));
  EXPECT_FALSE(LikeMatch("chi", "chip%"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_FALSE(LikeMatch("", "_"));
  EXPECT_TRUE(LikeMatch("abcabc", "%abc"));
}

TEST(Str, Format) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(PercentString(0.123), "12.3%");
  EXPECT_EQ(PadLeft("ab", 4), "  ab");
  EXPECT_EQ(PadRight("ab", 4), "ab  ");
  EXPECT_EQ(ToLower("AbC"), "abc");
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter printer({"name", "value"});
  printer.SetRightAlign(1, true);
  printer.AddRow({"a", "1"});
  printer.AddRow({"long-name", "12345"});
  std::string out = printer.Render();
  EXPECT_NE(out.find("long-name"), std::string::npos);
  EXPECT_NE(out.find("value"), std::string::npos);
  // Right-aligned numbers end at the same column.
  EXPECT_NE(out.find("    1\n"), std::string::npos);
}

TEST(Chart, BarChartRendersAllEntries) {
  std::string out = RenderBarChart({{"join", 0.58}, {"scan", 0.04}}, 30);
  EXPECT_NE(out.find("join"), std::string::npos);
  EXPECT_NE(out.find("58.0%"), std::string::npos);
  EXPECT_NE(out.find("scan"), std::string::npos);
}

TEST(Chart, ScatterPlotBounds) {
  ScatterPlot plot;
  plot.x_max = 10;
  plot.y_max = 10;
  plot.points = {{0, 0}, {9.9, 9.9}, {5, 5}};
  std::string out = RenderScatterPlot(plot);
  EXPECT_NE(out.find('.'), std::string::npos);
}

}  // namespace
}  // namespace dfp
