// Regression detection: baseline snapshots, drift thresholds, quietness on identical reruns,
// and the end-to-end service scenario (injected plan-mix shift on a shared fingerprint).
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/continuous/regression.h"
#include "src/service/query_service.h"
#include "src/sql/binder.h"
#include "src/tpch/datagen.h"
#include "src/tpch/queries.h"

namespace dfp {
namespace {

OperatorProfile MakeProfile(std::vector<std::tuple<OperatorId, std::string, uint64_t>> ops) {
  OperatorProfile profile;
  for (auto& [op, label, samples] : ops) {
    OperatorCost cost;
    cost.op = op;
    cost.label = std::move(label);
    cost.samples = samples;
    profile.operator_samples += samples;
    profile.operators.push_back(std::move(cost));
  }
  return profile;
}

PmuCounters MakeCounters(uint64_t loads, uint64_t remote) {
  PmuCounters counters;
  counters.values[static_cast<int>(PmuEvent::kLoads)] = loads;
  counters.values[static_cast<int>(PmuEvent::kRemoteDram)] = remote;
  return counters;
}

WindowConfig SmallConfig() {
  WindowConfig config;
  config.width_cycles = 1000;
  config.ring_windows = 4;
  return config;
}

TEST(RegressionDetector, QuietOnIdenticalMix) {
  WindowedProfile windows(SmallConfig());
  OperatorProfile mix = MakeProfile({{1, "Scan", 70}, {2, "HashJoin", 30}});
  windows.Record(0x1, "q", 10, mix, MakeCounters(100, 2), 5000, 50, 100);

  BaselineStore baseline;
  baseline.Snapshot(windows);
  ASSERT_FALSE(baseline.empty());

  // Same mix lands in a later window: nothing drifted.
  windows.Record(0x1, "q", 1010, mix, MakeCounters(100, 2), 5000, 50, 100);
  EXPECT_TRUE(DetectRegressions(baseline, windows).empty());
}

TEST(RegressionDetector, FiresOnOperatorShareShift) {
  WindowedProfile windows(SmallConfig());
  windows.Record(0x1, "q", 10, MakeProfile({{1, "Scan", 790}, {2, "HashJoin probe", 210}}),
                 MakeCounters(100, 2), 5000, 50, 100);
  BaselineStore baseline;
  baseline.Snapshot(windows);

  // The probe's share jumps 21% -> 38% in the next window, with enough sample mass that the
  // drift clears the noise margin.
  windows.Record(0x1, "q", 1010, MakeProfile({{1, "Scan", 620}, {2, "HashJoin probe", 380}}),
                 MakeCounters(100, 2), 5000, 50, 100);
  auto findings = DetectRegressions(baseline, windows);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(findings[0].share_regressed);
  ASSERT_EQ(findings[0].drifts.size(), 2u);
  const OperatorDrift& probe = findings[0].drifts[1];
  EXPECT_EQ(probe.label, "HashJoin probe");
  EXPECT_TRUE(probe.flagged);
  EXPECT_NEAR(probe.baseline_share, 0.21, 1e-9);
  EXPECT_NEAR(probe.current_share, 0.38, 1e-9);

  const std::string report = RenderRegressionReport(findings);
  EXPECT_NE(report.find("HashJoin probe"), std::string::npos);
  EXPECT_NE(report.find("mix"), std::string::npos);
  EXPECT_NE(report.find("+17.0pp"), std::string::npos);
}

TEST(RegressionDetector, FiresOnCyclesPerRowAndRemoteShare) {
  WindowedProfile windows(SmallConfig());
  OperatorProfile mix = MakeProfile({{1, "Scan", 100}});
  windows.Record(0x1, "q", 10, mix, MakeCounters(100, 1), 5000, 50, 100);
  BaselineStore baseline;
  baseline.Snapshot(windows);

  // Same mix, but 2x the cycles per row and a remote-DRAM surge.
  windows.Record(0x1, "q", 1010, mix, MakeCounters(100, 30), 10000, 50, 100);
  auto findings = DetectRegressions(baseline, windows);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_FALSE(findings[0].share_regressed);
  EXPECT_TRUE(findings[0].cycles_per_row_regressed);
  EXPECT_TRUE(findings[0].remote_regressed);
  const std::string report = RenderRegressionReport(findings);
  EXPECT_NE(report.find("cycles/row"), std::string::npos);
  EXPECT_NE(report.find("+remote"), std::string::npos);
}

TEST(RegressionDetector, FindingsCarryTheShardIdIntoTheAlertHook) {
  WindowedProfile windows(SmallConfig());
  OperatorProfile mix = MakeProfile({{1, "Scan", 100}});
  windows.Record(0x1, "q", 10, mix, MakeCounters(100, 1), 5000, 50, 100);
  BaselineStore baseline;
  baseline.Snapshot(windows);
  windows.Record(0x1, "q", 1010, mix, MakeCounters(100, 30), 10000, 50, 100);

  // The shard id is stamped on the finding BEFORE the alert hook fires, so fleet-wide sinks
  // can name the regressed node.
  std::vector<RegressionFinding> alerted;
  auto findings = DetectRegressions(
      baseline, windows, RegressionThresholds(),
      [&alerted](const RegressionFinding& finding) { alerted.push_back(finding); }, 3);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].shard_id, 3u);
  ASSERT_EQ(alerted.size(), 1u);
  EXPECT_EQ(alerted[0].shard_id, 3u);

  // The unsharded default keeps shard_id 0 (no suffix in the default alert line).
  EXPECT_EQ(DetectRegressions(baseline, windows)[0].shard_id, 0u);
}

TEST(RegressionDetector, NoiseMarginSuppressesSparseSampleJitter) {
  WindowedProfile windows(SmallConfig());
  // Dense baseline: Scan at 30% of 1000 samples.
  windows.Record(0x1, "q", 10, MakeProfile({{1, "Scan", 300}, {2, "Agg", 700}}),
                 MakeCounters(100, 2), 5000, 50, 100);
  BaselineStore baseline;
  baseline.Snapshot(windows);

  // Sparse current window (50 samples): Scan measures 18% — a 12pp apparent drift, but at
  // this sample mass the two-proportion error alone is ~7pp, so z=3 suppresses it.
  windows.Record(0x1, "q", 1010, MakeProfile({{1, "Scan", 9}, {2, "Agg", 41}}),
                 MakeCounters(100, 2), 5000, 50, 100);
  EXPECT_TRUE(DetectRegressions(baseline, windows).empty());

  // The same 12pp drift with dense evidence on both sides fires.
  WindowedProfile dense(SmallConfig());
  dense.Record(0x2, "q", 10, MakeProfile({{1, "Scan", 3000}, {2, "Agg", 7000}}),
               MakeCounters(100, 2), 5000, 50, 100);
  BaselineStore dense_baseline;
  dense_baseline.Snapshot(dense);
  dense.Record(0x2, "q", 1010, MakeProfile({{1, "Scan", 1800}, {2, "Agg", 8200}}),
               MakeCounters(100, 2), 5000, 50, 100);
  auto findings = DetectRegressions(dense_baseline, dense);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(findings[0].share_regressed);
}

TEST(RegressionDetector, MinSamplesSuppressesQuantizationNoise) {
  WindowedProfile windows(SmallConfig());
  windows.Record(0x1, "q", 10, MakeProfile({{1, "Scan", 800}, {2, "Agg", 200}}),
                 MakeCounters(10, 0), 1000, 10, 100);
  BaselineStore baseline;
  baseline.Snapshot(windows);

  // Three samples total: shares are garbage, and below min_samples the window is skipped.
  windows.Record(0x1, "q", 1010, MakeProfile({{1, "Scan", 1}, {2, "Agg", 2}}),
                 MakeCounters(10, 0), 1000, 10, 100);
  RegressionThresholds thresholds;
  thresholds.min_samples = 20;
  EXPECT_TRUE(DetectRegressions(baseline, windows, thresholds).empty());
}

TEST(RegressionDetector, DisappearedAndNewOperatorsBothDiff) {
  WindowedProfile windows(SmallConfig());
  windows.Record(0x1, "q", 10, MakeProfile({{1, "Scan", 50}, {2, "Sort", 50}}),
                 MakeCounters(10, 0), 1000, 10, 100);
  BaselineStore baseline;
  baseline.Snapshot(windows);
  windows.Record(0x1, "q", 1010, MakeProfile({{1, "Scan", 50}, {3, "HashAgg", 50}}),
                 MakeCounters(10, 0), 1000, 10, 100);
  auto findings = DetectRegressions(baseline, windows);
  ASSERT_EQ(findings.size(), 1u);
  // Sort (50% -> 0) and HashAgg (0 -> 50%) both appear, flagged.
  ASSERT_EQ(findings[0].drifts.size(), 3u);
  EXPECT_EQ(findings[0].drifts[1].label, "Sort");
  EXPECT_TRUE(findings[0].drifts[1].flagged);
  EXPECT_DOUBLE_EQ(findings[0].drifts[1].current_share, 0.0);
  EXPECT_EQ(findings[0].drifts[2].label, "HashAgg");
  EXPECT_TRUE(findings[0].drifts[2].flagged);
}

// --- End-to-end: the service scenario the continuous-smoke CI job runs ---

ServiceConfig ServiceTestConfig() {
  ServiceConfig config;
  config.parallel.workers = 4;
  config.max_active_sessions = 2;
  config.session_hashtables_bytes = 32ull << 20;
  config.session_output_bytes = 16ull << 20;
  config.session_state_bytes = 512ull * 1024;
  config.profiling.period = 311;
  config.continuous.window.width_cycles = 5'000'000;
  return config;
}

std::unique_ptr<Database> MakeDb(const ServiceConfig& config) {
  DatabaseConfig db_config;
  db_config.extra_bytes = ServiceArenaBytes(config);
  auto db = std::make_unique<Database>(db_config);
  TpchOptions options;
  options.scale = 0.01;
  GenerateTpch(*db, options);
  return db;
}

// q6 with much wider literals: same plan structure (same fingerprint), drastically different
// selectivity — the injected plan-mix shift.
constexpr const char* kShiftedQ6 =
    "select sum(l_extendedprice * l_discount) as revenue "
    "from lineitem "
    "where l_shipdate >= date '1992-01-01' and l_shipdate < date '1999-01-01' "
    "and l_discount between 0.00 and 0.10 and l_quantity < 100";

TEST(RegressionDetector, ServiceFlagsInjectedShiftAndStaysQuietOnRerun) {
  ServiceConfig config = ServiceTestConfig();
  auto db = MakeDb(config);
  QueryService service(*db, config);

  auto run_batch = [&](const std::string& sql, int count) {
    for (int i = 0; i < count; ++i) {
      service.Submit(PlanSql(*db, sql), "q6");
      service.Drain();
    }
  };

  const std::string baseline_sql = FindQuery("q6").sql;
  run_batch(baseline_sql, 4);
  service.SnapshotBaseline();
  ASSERT_FALSE(service.baseline().empty());

  // Identical rerun first: the mix reproduces exactly, so the detector must stay quiet.
  run_batch(baseline_sql, 4);
  EXPECT_TRUE(service.DetectRegressions().empty());

  // Both SQL texts bind to the same structural fingerprint (literals parameterized out).
  const TicketId before = service.Submit(PlanSql(*db, baseline_sql), "q6");
  const TicketId shifted = service.Submit(PlanSql(*db, kShiftedQ6), "q6");
  service.Drain();
  ASSERT_EQ(service.ticket(before).fingerprint.structure,
            service.ticket(shifted).fingerprint.structure);

  // Injected shift: the wide-literal variant dominates recent windows.
  run_batch(kShiftedQ6, 4);
  auto findings = service.DetectRegressions();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].fingerprint, service.ticket(before).fingerprint.structure);
  EXPECT_TRUE(findings[0].share_regressed || findings[0].cycles_per_row_regressed ||
              findings[0].remote_regressed);
  EXPECT_NE(RenderRegressionReport(findings).find("q6"), std::string::npos);
}

}  // namespace
}  // namespace dfp
