// SamplingGovernor: analytic convergence to the overhead budget on steady and bursty loads,
// clamping, and the zero-sample recovery path.
#include <gtest/gtest.h>

#include <cstdint>

#include "src/continuous/governor.h"

namespace dfp {
namespace {

constexpr uint64_t kCps = 6700;  // PmuCosts::record_base: capture cost per sample.

// One simulated execution: with period `p` armed, `events` armed-event occurrences over
// `base` useful cycles cost (events / p) samples at kCps cycles each.
SamplingOverhead Simulate(uint64_t events, uint64_t p, uint64_t* busy, uint64_t base) {
  SamplingOverhead overhead;
  overhead.samples = events / p;
  overhead.capture_cycles = overhead.samples * kCps;
  *busy = base + overhead.total_cycles();
  return overhead;
}

GovernorConfig EnabledConfig() {
  GovernorConfig config;
  config.enabled = true;
  return config;
}

TEST(SamplingGovernor, DisabledGovernorPassesDefaultPeriodThrough) {
  SamplingGovernor governor;  // Default config: disabled.
  EXPECT_FALSE(governor.enabled());
  EXPECT_EQ(governor.PeriodFor(0x1, 5000), 5000u);
  SamplingOverhead overhead;
  governor.Observe(0x1, "q", overhead, 1000, 1000, 5000);
  EXPECT_TRUE(governor.plans().empty());
}

TEST(SamplingGovernor, ConvergesToBudgetOnSteadyLoad) {
  SamplingGovernor governor(EnabledConfig());
  const uint64_t events = 2'000'000;
  const uint64_t base = 200'000'000;
  uint64_t period = governor.PeriodFor(0x1, 5000);
  for (int round = 0; round < 6; ++round) {
    uint64_t busy = 0;
    SamplingOverhead overhead = Simulate(events, period, &busy, base);
    governor.Observe(0x1, "q6", overhead, busy, events, period);
    period = governor.PeriodFor(0x1, 5000);
  }
  const GovernorPlanState* state = governor.Find(0x1);
  ASSERT_NE(state, nullptr);
  // Analytic optimum: events * cps / (budget * base) = 3350.
  EXPECT_NEAR(static_cast<double>(state->period), 3350.0, 100.0);
  // The last observed overhead share is within half a point of the 2% budget.
  EXPECT_NEAR(state->last_share, 0.02, 0.005);
}

TEST(SamplingGovernor, ConvergesToBudgetOnBurstyLoad) {
  SamplingGovernor governor(EnabledConfig());
  const uint64_t base = 200'000'000;
  uint64_t period = governor.PeriodFor(0x1, 5000);
  double last_share = 0;
  for (int round = 0; round < 24; ++round) {
    // Event density alternates 4x between bursts and quiet phases.
    const uint64_t events = (round % 2 == 0) ? 4'000'000 : 1'000'000;
    uint64_t busy = 0;
    SamplingOverhead overhead = Simulate(events, period, &busy, base);
    governor.Observe(0x1, "q6", overhead, busy, events, period);
    period = governor.PeriodFor(0x1, 5000);
    last_share = governor.Find(0x1)->last_share;
  }
  // The EWMA settles between the two phases' optima instead of oscillating to the rails, and
  // the cumulative overhead share lands within half a point of the budget.
  const GovernorPlanState* state = governor.Find(0x1);
  EXPECT_GT(state->period, 1675u);
  EXPECT_LT(state->period, 6700u);
  EXPECT_NEAR(state->OverheadShare(), 0.02, 0.005);
  EXPECT_NEAR(last_share, 0.02, 0.015);
}

TEST(SamplingGovernor, ClampsSolvedPeriodToConfiguredRange) {
  GovernorConfig config = EnabledConfig();
  config.min_period = 1000;
  config.max_period = 10'000;
  SamplingGovernor governor(config);

  // Absurdly expensive samples push the solve far above max_period; the EWMA walks the period
  // up against the ceiling.
  SamplingOverhead costly;
  costly.samples = 100;
  costly.capture_cycles = 100ull * 10'000'000;
  for (int i = 0; i < 10; ++i) {
    governor.Observe(0x1, "q", costly, 2'000'000'000, 1'000'000, 5000);
  }
  EXPECT_GT(governor.Find(0x1)->period, 9'000u);
  EXPECT_LE(governor.Find(0x1)->period, 10'000u);

  // Nearly free samples pull it below min_period.
  SamplingOverhead cheap;
  cheap.samples = 1000;
  cheap.capture_cycles = 1000;
  for (int i = 0; i < 8; ++i) {
    governor.Observe(0x2, "q", cheap, 2'000'000'000, 1'000'000, 1000);
  }
  EXPECT_EQ(governor.Find(0x2)->period, 1000u);
}

TEST(SamplingGovernor, HalvesPeriodWhenNoSamplesLanded) {
  SamplingGovernor governor(EnabledConfig());
  SamplingOverhead none;  // Period longer than the execution: zero samples.
  governor.Observe(0x1, "q", none, 1'000'000, 400'000, 1'000'000);
  // Target = 500000, blended with the initial 1000000 at 0.7: 650000.
  EXPECT_EQ(governor.Find(0x1)->period, 650'000u);
}

TEST(SamplingGovernor, TracksPerFingerprintStateIndependently) {
  SamplingGovernor governor(EnabledConfig());
  uint64_t busy = 0;
  SamplingOverhead a = Simulate(1'000'000, 5000, &busy, 100'000'000);
  governor.Observe(0x1, "small", a, busy, 1'000'000, 5000);
  SamplingOverhead b = Simulate(8'000'000, 5000, &busy, 100'000'000);
  governor.Observe(0x2, "large", b, busy, 8'000'000, 5000);
  ASSERT_EQ(governor.plans().size(), 2u);
  // The denser plan needs a coarser period for the same budget.
  EXPECT_GT(governor.Find(0x2)->period, governor.Find(0x1)->period);
  EXPECT_GT(governor.OverallShare(), 0.0);
}

TEST(SamplingGovernor, CriticalityWeightsPipelinePeriodsStrictly) {
  // Under a fixed budget, the pipeline that owns the critical path must be sampled at a
  // STRICTLY shorter period than the base and than every off-path pipeline — the acceptance
  // bar of the critical-path wiring. Shares mean-center (mean of {62, 0, 7} is 23), so the
  // redistribution is budget-neutral: below-mean pipelines give up exactly the sampling rate
  // the above-mean ones gain.
  SamplingGovernor governor(EnabledConfig());
  governor.ObserveCriticality(0x1, "q3", {62, 0, 7});
  const uint64_t base = 5000;
  const std::vector<uint64_t> periods = governor.PipelinePeriods(0x1, base, 3);
  ASSERT_EQ(periods.size(), 3u);
  EXPECT_LT(periods[0], base);   // 39 points above the mean: finest sampling.
  EXPECT_GT(periods[1], base);   // Off the path, 23 below the mean: relaxed beyond the base.
  EXPECT_GT(periods[2], base);   // Barely on the path, still below the mean: relaxed too.
  EXPECT_LT(periods[0], periods[2]);  // Higher share, strictly shorter period.
  EXPECT_LT(periods[2], periods[1]);  // ... at every rank of the share ordering.
  EXPECT_EQ(periods[0], base * 100 / 139);  // d = +39.
  EXPECT_EQ(periods[1], base * 100 / 77);   // d = -23.
  EXPECT_EQ(governor.Find(0x1)->top_criticality_pct, 62u);
}

TEST(SamplingGovernor, PipelinePeriodsEmptyWithoutSignalOrWhenDisabled) {
  // No criticality observed yet: uniform sampling (empty vector).
  SamplingGovernor fresh(EnabledConfig());
  EXPECT_TRUE(fresh.PipelinePeriods(0x1, 5000, 4).empty());

  // A degenerate all-zero observation (empty DAG) keeps sampling uniform too.
  fresh.ObserveCriticality(0x1, "q", {0, 0});
  EXPECT_TRUE(fresh.PipelinePeriods(0x1, 5000, 2).empty());

  // Weighting off: criticality is tracked but never shapes periods.
  GovernorConfig unweighted = EnabledConfig();
  unweighted.criticality_weighting = false;
  SamplingGovernor governor(unweighted);
  governor.ObserveCriticality(0x1, "q", {80});
  EXPECT_TRUE(governor.PipelinePeriods(0x1, 5000, 1).empty());

  // Disabled governor: ObserveCriticality is a no-op.
  SamplingGovernor disabled;
  disabled.ObserveCriticality(0x1, "q", {80});
  EXPECT_TRUE(disabled.plans().empty());
  EXPECT_TRUE(disabled.PipelinePeriods(0x1, 5000, 1).empty());
}

TEST(SamplingGovernor, OffPathPeriodRespectsClampCeiling) {
  GovernorConfig config = EnabledConfig();
  config.max_period = 5200;
  SamplingGovernor governor(config);
  governor.ObserveCriticality(0x1, "q", {90, 0});
  const std::vector<uint64_t> periods = governor.PipelinePeriods(0x1, 5000, 2);
  ASSERT_EQ(periods.size(), 2u);
  EXPECT_EQ(periods[1], 5200u);  // 5000 * 100/55 = 9090, clamped to the ceiling.
  EXPECT_GT(periods[1], 5000u);  // Still strictly above the base.
  EXPECT_LT(periods[0], 5000u);  // The critical pipeline is unaffected by the ceiling.
}

}  // namespace
}  // namespace dfp
