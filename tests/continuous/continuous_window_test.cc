// WindowedProfile: ring bounds, quantiles, roll-up, deterministic JSON, and the v2
// service-profile round-trip (with v1 backward compatibility).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/continuous/regression.h"
#include "src/continuous/window.h"
#include "src/service/service_profile.h"

namespace dfp {
namespace {

OperatorProfile MakeProfile(std::vector<std::tuple<OperatorId, std::string, uint64_t>> ops) {
  OperatorProfile profile;
  for (auto& [op, label, samples] : ops) {
    OperatorCost cost;
    cost.op = op;
    cost.label = std::move(label);
    cost.samples = samples;
    profile.operator_samples += samples;
    profile.operators.push_back(std::move(cost));
  }
  return profile;
}

PmuCounters MakeCounters(uint64_t loads, uint64_t l3, uint64_t remote) {
  PmuCounters counters;
  counters.values[static_cast<int>(PmuEvent::kLoads)] = loads;
  counters.values[static_cast<int>(PmuEvent::kL3Miss)] = l3;
  counters.values[static_cast<int>(PmuEvent::kRemoteDram)] = remote;
  return counters;
}

WindowConfig SmallConfig() {
  WindowConfig config;
  config.width_cycles = 1000;
  config.ring_windows = 3;
  return config;
}

TEST(WindowedProfile, ExecutionsFoldIntoTheWindowOfTheirCompletionTime) {
  WindowedProfile windows(SmallConfig());
  OperatorProfile profile = MakeProfile({{1, "Scan", 10}, {2, "HashJoin", 30}});
  windows.Record(0xabc, "q", 100, profile, MakeCounters(50, 5, 1), 4000, 20, 311);
  windows.Record(0xabc, "q", 900, profile, MakeCounters(50, 5, 1), 6000, 20, 311);

  const ProfileWindow* window = windows.LatestWindow(0xabc);
  ASSERT_NE(window, nullptr);
  EXPECT_EQ(window->index, 0u);
  EXPECT_EQ(window->executions, 2u);
  EXPECT_EQ(window->samples, 80u);
  EXPECT_EQ(window->execute_cycles, 10000u);
  EXPECT_EQ(window->rows, 40u);
  EXPECT_EQ(window->loads, 100u);
  EXPECT_EQ(window->l3_misses, 10u);
  EXPECT_EQ(window->remote_dram, 2u);
  EXPECT_EQ(window->operators.at(2).samples, 60u);
  EXPECT_EQ(window->operators.at(2).sample_cycles, 60u * 311u);

  // A later completion opens a new window; the old one stays retained.
  windows.Record(0xabc, "q", 1500, profile, MakeCounters(50, 5, 1), 5000, 20, 311);
  EXPECT_EQ(windows.LatestWindow(0xabc)->index, 1u);
  EXPECT_EQ(windows.plans().at(0xabc).windows.size(), 2u);
}

TEST(WindowedProfile, RingEvictsOldestBeyondConfiguredDepth) {
  WindowedProfile windows(SmallConfig());
  OperatorProfile profile = MakeProfile({{1, "Scan", 1}});
  for (uint64_t w = 0; w < 5; ++w) {
    windows.Record(0x1, "q", w * 1000 + 10, profile, PmuCounters(), 100, 1, 100);
  }
  const auto& series = windows.plans().at(0x1);
  ASSERT_EQ(series.windows.size(), 3u);  // ring_windows = 3.
  EXPECT_EQ(series.windows.front().index, 2u);
  EXPECT_EQ(series.windows.back().index, 4u);
}

TEST(WindowedProfile, LatencyQuantilesAreNearestRank) {
  WindowedProfile windows(SmallConfig());
  OperatorProfile profile = MakeProfile({{1, "Scan", 1}});
  // 20 executions with latencies 100, 200, ..., 2000 — all in window 0.
  for (uint64_t i = 1; i <= 20; ++i) {
    windows.Record(0x1, "q", 10, profile, PmuCounters(), i * 100, 1, 100);
  }
  const ProfileWindow* window = windows.LatestWindow(0x1);
  ASSERT_NE(window, nullptr);
  EXPECT_EQ(window->latency_p50, 1000u);
  EXPECT_EQ(window->latency_p95, 1900u);
  EXPECT_EQ(window->latency_max, 2000u);
}

TEST(WindowedProfile, RollUpAggregatesRetainedWindows) {
  WindowedProfile windows(SmallConfig());
  OperatorProfile scan_heavy = MakeProfile({{1, "Scan", 90}, {2, "Agg", 10}});
  OperatorProfile agg_heavy = MakeProfile({{1, "Scan", 10}, {2, "Agg", 90}});
  windows.Record(0x7, "q", 10, scan_heavy, MakeCounters(10, 1, 0), 1000, 10, 100);
  windows.Record(0x7, "q", 1010, agg_heavy, MakeCounters(10, 1, 4), 3000, 10, 100);

  WindowRollup rollup = windows.RollUp(0x7);
  EXPECT_EQ(rollup.window_count, 2u);
  EXPECT_EQ(rollup.executions, 2u);
  EXPECT_EQ(rollup.samples, 200u);
  EXPECT_EQ(rollup.execute_cycles, 4000u);
  EXPECT_DOUBLE_EQ(rollup.OperatorShare(1), 0.5);
  EXPECT_DOUBLE_EQ(rollup.OperatorShare(2), 0.5);
  EXPECT_DOUBLE_EQ(rollup.CyclesPerRow(), 200.0);
  EXPECT_DOUBLE_EQ(rollup.RemoteDramShare(), 0.2);
  EXPECT_EQ(rollup.latency_max, 3000u);

  // Unknown fingerprints roll up empty instead of throwing.
  EXPECT_EQ(windows.RollUp(0xdead).executions, 0u);
}

TEST(WindowedProfile, JsonExportIsDeterministic) {
  auto build = [] {
    WindowedProfile windows(SmallConfig());
    OperatorProfile profile = MakeProfile({{1, "Scan", 10}, {2, "HashJoin", 5}});
    windows.Record(0xfeed, "q3", 10, profile, MakeCounters(7, 3, 1), 1234, 5, 311);
    windows.Record(0xfeed, "q3", 1200, profile, MakeCounters(7, 3, 1), 4321, 5, 311);
    std::ostringstream out;
    windows.WriteJson(out);
    return out.str();
  };
  const std::string a = build();
  const std::string b = build();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"fingerprint\":\"000000000000feed\""), std::string::npos);
  EXPECT_NE(a.find("\"latency_max\":4321"), std::string::npos);
  // Integers only: no scientific notation or decimal points from double formatting.
  EXPECT_EQ(a.find('.'), std::string::npos);
}

TEST(ServiceProfileV2, WindowsRoundTripThroughTextFormat) {
  ServiceProfile fleet;
  FleetPlanProfile plan;
  plan.fingerprint = 0x42;
  plan.name = "q6";
  plan.executions = 3;
  plan.execute_cycles = 999;
  fleet.AddLoadedPlan(plan);
  FleetOperatorCost cost;
  cost.op = 1;
  cost.samples = 17;
  cost.label = "TableScan lineitem";
  fleet.AddLoadedOperator(0x42, cost);

  WindowedProfile windows(SmallConfig());
  OperatorProfile profile =
      MakeProfile({{1, "TableScan lineitem", 12}, {2, "HashAgg", 5}});
  windows.Record(0x42, "q6", 10, profile, MakeCounters(9, 2, 1), 333, 7, 311);
  windows.Record(0x42, "q6", 1500, profile, MakeCounters(9, 2, 1), 444, 7, 311);

  std::ostringstream out;
  WriteServiceProfile(fleet, windows, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# dfp service profile v2"), std::string::npos);
  EXPECT_NE(text.find("windowcfg 1000 3"), std::string::npos);

  std::istringstream in(text);
  WindowedProfile loaded;
  ServiceProfile fleet2 = ReadServiceProfile(in, &loaded);
  EXPECT_EQ(fleet2.plans().at(0x42).executions, 3u);
  EXPECT_EQ(fleet2.plans().at(0x42).samples, 17u);
  EXPECT_EQ(loaded.config().width_cycles, 1000u);
  EXPECT_EQ(loaded.config().ring_windows, 3u);

  // Loaded windows render and re-serialize identically to the originals.
  EXPECT_EQ(loaded.Render(), windows.Render());
  std::ostringstream rewritten;
  WriteServiceProfile(fleet2, loaded, rewritten);
  EXPECT_EQ(rewritten.str(), text);
}


TEST(WindowedProfile, TierCountsFoldIntoWindowsAndRollups) {
  WindowedProfile windows(SmallConfig());
  OperatorProfile profile = MakeProfile({{1, "Scan", 10}});
  windows.Record(0xabc, "q", 100, profile, MakeCounters(5, 1, 0), 4000, 20, 311,
                 PlanTier::kBaseline);
  windows.Record(0xabc, "q", 200, profile, MakeCounters(5, 1, 0), 4000, 20, 311,
                 PlanTier::kOptimized);
  windows.Record(0xabc, "q", 1500, profile, MakeCounters(5, 1, 0), 4000, 20, 311,
                 PlanTier::kBaseline);

  const auto& ring = windows.plans().at(0xabc).windows;
  ASSERT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring[0].executions, 2u);
  EXPECT_EQ(ring[0].baseline_executions, 1u);
  EXPECT_EQ(ring[0].baseline_samples, 10u);
  EXPECT_EQ(ring[1].baseline_executions, 1u);

  const WindowRollup rollup = windows.RollUp(0xabc);
  EXPECT_EQ(rollup.executions, 3u);
  EXPECT_EQ(rollup.baseline_executions, 2u);
  EXPECT_EQ(rollup.baseline_samples, 20u);

  // Tier counts surface in the rendering and the JSON export.
  EXPECT_NE(windows.Render().find("baseline 1/2 exec 10 samples"), std::string::npos);
  std::ostringstream json;
  windows.WriteJson(json);
  EXPECT_NE(json.str().find("\"baseline_executions\":1"), std::string::npos);
}

TEST(WindowedProfile, TierFreeRenderingIsUnchanged) {
  // Windows recorded without a tier argument must render without any baseline annotation —
  // the historical output, byte for byte.
  WindowedProfile windows(SmallConfig());
  OperatorProfile profile = MakeProfile({{1, "Scan", 10}});
  windows.Record(0xabc, "q", 100, profile, MakeCounters(5, 1, 0), 4000, 20, 311);
  EXPECT_EQ(windows.Render().find("baseline"), std::string::npos);
}

TEST(ServiceProfileV3, StateRoundTripsWithClockTiersAndBaselines) {
  ServiceProfile fleet;
  FleetPlanProfile plan;
  plan.fingerprint = 0x42;
  plan.name = "q6";
  plan.executions = 2;
  plan.execute_cycles = 777;
  fleet.AddLoadedPlan(plan);

  WindowedProfile windows(SmallConfig());
  OperatorProfile profile = MakeProfile({{1, "TableScan lineitem", 30}});
  windows.Record(0x42, "q6", 10, profile, MakeCounters(9, 2, 1), 333, 7, 311,
                 PlanTier::kBaseline);
  windows.Record(0x42, "q6", 1500, profile, MakeCounters(9, 2, 1), 444, 7, 311);
  BaselineStore baselines;
  baselines.Snapshot(windows);

  std::ostringstream out;
  WriteServiceState(fleet, windows, baselines, /*service_clock_cycles=*/123456, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# dfp service profile v3"), std::string::npos);
  EXPECT_NE(text.find("clock 123456"), std::string::npos);
  EXPECT_NE(text.find("baseline 0000000000000042"), std::string::npos);
  EXPECT_NE(text.find("bop 0000000000000042"), std::string::npos);

  std::istringstream in(text);
  WindowedProfile loaded_windows;
  BaselineStore loaded_baselines;
  uint64_t clock = 0;
  ServiceProfile loaded_fleet =
      ReadServiceProfile(in, &loaded_windows, &loaded_baselines, &clock);
  EXPECT_EQ(clock, 123456u);
  ASSERT_NE(loaded_baselines.Find(0x42), nullptr);
  EXPECT_EQ(loaded_baselines.Find(0x42)->watermark, baselines.Find(0x42)->watermark);
  EXPECT_EQ(loaded_windows.RollUp(0x42).baseline_executions, 1u);

  std::ostringstream rewritten;
  WriteServiceState(loaded_fleet, loaded_windows, loaded_baselines, clock, rewritten);
  EXPECT_EQ(rewritten.str(), text);
}

TEST(ServiceProfileV3, StateLinesAreRejectedInOlderVersions) {
  std::istringstream clock_in_v2("# dfp service profile v2\nclock 5\n");
  EXPECT_THROW(ReadServiceProfile(clock_in_v2), Error);
  std::istringstream orphan_bop(
      "# dfp service profile v3\nclock 5\nbop 0000000000000001 1 2 3 scan\n");
  BaselineStore sink;
  EXPECT_THROW(ReadServiceProfile(orphan_bop, nullptr, &sink), Error);
}

TEST(ServiceProfileV2, V1FormatStillParses) {
  const std::string v1 =
      "# dfp service profile v1\n"
      "plan 0000000000000042 2 1 1 5000 12345 q6\n"
      "op 0000000000000042 1 17 TableScan lineitem\n";
  std::istringstream in(v1);
  WindowedProfile windows;
  ServiceProfile profile = ReadServiceProfile(in, &windows);
  EXPECT_EQ(profile.plans().at(0x42).executions, 2u);
  EXPECT_EQ(profile.plans().at(0x42).operators.at(1).label, "TableScan lineitem");
  EXPECT_TRUE(windows.empty());

  // The two-argument writer still emits v1, byte-compatible with old readers.
  std::ostringstream out;
  WriteServiceProfile(profile, out);
  EXPECT_EQ(out.str(), v1);
}

TEST(ServiceProfileV2, WindowLinesInV1FileAreMalformed) {
  const std::string bad =
      "# dfp service profile v1\n"
      "window 0000000000000042 0 1 1 1 1 1 1 1 1 1 1 1 1\n";
  std::istringstream in(bad);
  EXPECT_THROW(ReadServiceProfile(in), Error);
}

TEST(ServiceProfileV2, WopWithoutWindowIsMalformed) {
  const std::string bad =
      "# dfp service profile v2\n"
      "windowcfg 1000 3\n"
      "plan 0000000000000042 1 0 1 10 10 q\n"
      "wop 0000000000000042 0 1 5 500 Scan\n";
  std::istringstream in(bad);
  WindowedProfile windows;
  EXPECT_THROW(ReadServiceProfile(in, &windows), Error);
}

}  // namespace
}  // namespace dfp
