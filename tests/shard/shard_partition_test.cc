// Range-partitioned shard catalogs: slices must reassemble to the reference dataset, the
// orders/lineitem split must be co-partitioned by order key, replicated tables must be
// cell-identical on every shard (including packed string references, via intern-sequence
// replay), and a 1-shard catalog must be indistinguishable from a plain database.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/shard/partition.h"
#include "src/tpch/datagen.h"

namespace dfp {
namespace {

DatabaseConfig SmallDbConfig() {
  DatabaseConfig config;
  config.columns_bytes = 64ull << 20;
  config.strings_bytes = 8ull << 20;
  config.hashtables_bytes = 16ull << 20;
  config.output_bytes = 16ull << 20;
  return config;
}

ShardCatalogConfig SmallCatalog(uint32_t shards) {
  ShardCatalogConfig config;
  config.shards = shards;
  config.db = SmallDbConfig();
  config.tpch.scale = 0.01;
  return config;
}

int64_t Cell(const Database& db, const std::string& table, const std::string& column,
             uint64_t row) {
  const Table& t = db.table(table);
  const int slot = t.schema().FindColumn(column);
  EXPECT_GE(slot, 0) << table << "." << column;
  return t.Get(const_cast<Database&>(db).mem(), static_cast<size_t>(slot), row);
}

TEST(ShardCatalog, SlicesReassembleToTheReferenceDataset) {
  ShardCatalog catalog(SmallCatalog(3));
  const TpchRowCounts& counts = catalog.counts();

  uint64_t orders = 0;
  uint64_t lineitem = 0;
  for (uint32_t s = 0; s < catalog.shards(); ++s) {
    orders += catalog.db(s).table("orders").row_count();
    lineitem += catalog.db(s).table("lineitem").row_count();
    EXPECT_EQ(catalog.db(s).table("orders").row_count(), catalog.order_rows(s));
    // Replicated tables carry the full row count everywhere.
    EXPECT_EQ(catalog.db(s).table("customer").row_count(), counts.customer);
    EXPECT_EQ(catalog.db(s).table("part").row_count(), counts.part);
    EXPECT_EQ(catalog.db(s).table("nation").row_count(),
              catalog.db(0).table("nation").row_count());
  }
  EXPECT_EQ(orders, counts.orders);
  EXPECT_EQ(lineitem, counts.lineitem);
  EXPECT_GT(catalog.order_rows(0), 0u);
  EXPECT_GT(catalog.order_rows(2), 0u);
}

TEST(ShardCatalog, OrderKeyOwnershipIsCoPartitioned) {
  ShardCatalog catalog(SmallCatalog(3));
  EXPECT_EQ(catalog.OwnerOfOrderKey(1), 0u);
  EXPECT_EQ(catalog.OwnerOfOrderKey(static_cast<int64_t>(catalog.counts().orders)), 2u);
  // Out-of-range keys clamp instead of crashing.
  EXPECT_EQ(catalog.OwnerOfOrderKey(-5), 0u);
  EXPECT_EQ(catalog.OwnerOfOrderKey(1 << 30), 2u);

  for (uint32_t s = 0; s < catalog.shards(); ++s) {
    const Table& orders = catalog.db(s).table("orders");
    const Table& lineitem = catalog.db(s).table("lineitem");
    // Every order key resident on shard s — in both fact tables — must be owned by shard s.
    for (uint64_t r = 0; r < orders.row_count(); r += 97) {
      EXPECT_EQ(catalog.OwnerOfOrderKey(Cell(catalog.db(s), "orders", "o_orderkey", r)), s);
    }
    for (uint64_t r = 0; r < lineitem.row_count(); r += 997) {
      EXPECT_EQ(catalog.OwnerOfOrderKey(Cell(catalog.db(s), "lineitem", "l_orderkey", r)), s);
    }
  }

  EXPECT_TRUE(ShardCatalog::IsPartitionedTable("orders"));
  EXPECT_TRUE(ShardCatalog::IsPartitionedTable("lineitem"));
  EXPECT_FALSE(ShardCatalog::IsPartitionedTable("customer"));
}

TEST(ShardCatalog, ReplicatedStringCellsShareBitsAcrossShards) {
  ShardCatalog catalog(SmallCatalog(2));
  // The intern-sequence replay makes packed string references absolute-address-identical
  // across shard heaps, so string cells compare bit for bit and resolve to the same text.
  for (uint64_t r = 0; r < catalog.db(0).table("nation").row_count(); ++r) {
    const int64_t a = Cell(catalog.db(0), "nation", "n_name", r);
    const int64_t b = Cell(catalog.db(1), "nation", "n_name", r);
    EXPECT_EQ(a, b);
    EXPECT_EQ(catalog.db(0).strings().Get(static_cast<uint64_t>(a)),
              catalog.db(1).strings().Get(static_cast<uint64_t>(b)));
  }
  // Partitioned rows keep reference cell bytes too: shard 1's first order is the row right
  // after shard 0's slice, with its o_orderkey = rows-on-shard-0 + 1.
  EXPECT_EQ(Cell(catalog.db(1), "orders", "o_orderkey", 0),
            static_cast<int64_t>(catalog.order_rows(0)) + 1);
}

TEST(ShardCatalog, OneShardCatalogMatchesPlainDatabase) {
  ShardCatalog catalog(SmallCatalog(1));
  auto plain = std::make_unique<Database>(SmallDbConfig());
  TpchOptions options;
  options.scale = 0.01;
  const TpchRowCounts counts = GenerateTpch(*plain, options);

  EXPECT_EQ(catalog.counts().orders, counts.orders);
  EXPECT_EQ(catalog.counts().lineitem, counts.lineitem);
  EXPECT_EQ(catalog.catalog_version(), plain->catalog_version());
  EXPECT_EQ(catalog.order_rows(0), counts.orders);
  for (uint64_t r = 0; r < counts.orders; r += 501) {
    EXPECT_EQ(Cell(catalog.db(0), "orders", "o_totalprice", r),
              Cell(*plain, "orders", "o_totalprice", r));
    EXPECT_EQ(Cell(catalog.db(0), "orders", "o_orderpriority", r),
              Cell(*plain, "orders", "o_orderpriority", r));
  }
}

}  // namespace
}  // namespace dfp
