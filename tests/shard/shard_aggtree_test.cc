// Hierarchical profile aggregation tree: the roll-up must be a pure function of the leaf SET —
// pairwise merges commute and associate, shuffled shard orders render byte-identically, and the
// modeled per-level cost depends only on (levels, union size), never on aggregation order.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "src/shard/aggtree.h"

namespace dfp {
namespace {

FleetAggregate MakeLeaf(uint64_t fingerprint, const std::string& name, uint64_t executions,
                        uint64_t samples, uint64_t latency) {
  FleetAggregate leaf;
  leaf.leaves = 1;
  FleetPlanRollup& plan = leaf.plans[fingerprint];
  plan.fingerprint = fingerprint;
  plan.name = name;
  plan.executions = executions;
  plan.cache_hits = executions / 2;
  plan.compile_cycles = 1000 * executions;
  plan.execute_cycles = 7777 * executions;
  plan.samples = samples;
  FleetOperatorCost& scan = plan.operators[3];
  scan.op = 3;
  scan.label = "TableScan";
  scan.samples = samples;
  plan.latency.Add(latency);
  plan.latency_max = latency;
  return leaf;
}

std::vector<FleetAggregate> MakeLeaves() {
  // Five leaves with overlapping plan sets: fingerprint 0xA everywhere, 0xB on two leaves,
  // 0xC on one — the union the root must report regardless of merge order.
  std::vector<FleetAggregate> leaves;
  leaves.push_back(MakeLeaf(0xA, "q6", 4, 100, 5000));
  leaves.push_back(MakeLeaf(0xA, "q6", 2, 50, 9000));
  FleetAggregate third = MakeLeaf(0xA, "", 1, 10, 400);  // Name only known elsewhere.
  FleetAggregate b = MakeLeaf(0xB, "q1", 3, 70, 12000);
  third = MergePair(std::move(third), b);
  third.leaves = 1;
  leaves.push_back(std::move(third));
  leaves.push_back(MakeLeaf(0xB, "q1", 1, 30, 15000));
  leaves.push_back(MakeLeaf(0xC, "q12", 5, 200, 800));
  return leaves;
}

std::string JsonOf(const FleetAggregate& fleet) {
  std::ostringstream out;
  WriteFleetAggregateJson(fleet, out);
  return out.str();
}

TEST(LatencySketch, QuantileAndMerge) {
  LatencySketch sketch;
  for (uint64_t latency : {100, 100, 100, 800, 100000}) {
    sketch.Add(latency);
  }
  EXPECT_EQ(sketch.total(), 5u);
  // p50 lands in the bucket holding 100 (bit_width 7 -> upper bound 127).
  EXPECT_EQ(sketch.Quantile(50), 127u);
  EXPECT_GE(sketch.Quantile(100), 100000u);

  LatencySketch other;
  other.Add(100);
  other.Merge(sketch);
  EXPECT_EQ(other.total(), 6u);
  EXPECT_EQ(other.Quantile(50), 127u);
}

TEST(AggTree, MergePairCommutesAndAssociates) {
  std::vector<FleetAggregate> leaves = MakeLeaves();
  const FleetAggregate& a = leaves[0];
  const FleetAggregate& b = leaves[2];
  const FleetAggregate& c = leaves[4];

  const FleetAggregate ab_c = MergePair(MergePair(a, b), c);
  const FleetAggregate a_bc = MergePair(a, MergePair(b, c));
  const FleetAggregate c_ba = MergePair(MergePair(c, b), a);
  EXPECT_EQ(RenderFleetAggregate(ab_c), RenderFleetAggregate(a_bc));
  EXPECT_EQ(RenderFleetAggregate(ab_c), RenderFleetAggregate(c_ba));
  EXPECT_EQ(JsonOf(ab_c), JsonOf(a_bc));
  EXPECT_EQ(ab_c.leaves, 3u);
}

TEST(AggTree, ShuffledShardOrderRendersByteIdentical) {
  const FleetAggregate reference = AggregateShards(MakeLeaves(), kRollupCyclesPerEntry);
  const std::string reference_render = RenderFleetAggregate(reference);
  const std::string reference_json = JsonOf(reference);

  std::vector<size_t> order = {0, 1, 2, 3, 4};
  // Every rotation plus a few swapped orders: all must produce the same root.
  for (int shuffle = 0; shuffle < 8; ++shuffle) {
    std::rotate(order.begin(), order.begin() + 1, order.end());
    if (shuffle >= 5) {
      std::swap(order[0], order[3]);
    }
    std::vector<FleetAggregate> base = MakeLeaves();
    std::vector<FleetAggregate> shuffled;
    for (size_t index : order) {
      shuffled.push_back(base[index]);
    }
    const FleetAggregate root = AggregateShards(std::move(shuffled), kRollupCyclesPerEntry);
    EXPECT_EQ(RenderFleetAggregate(root), reference_render);
    EXPECT_EQ(JsonOf(root), reference_json);
  }
}

TEST(AggTree, LevelsAndRollupCostArePureFunctionsOfTheLeafSet) {
  std::vector<FleetAggregate> one;
  one.push_back(MakeLeaf(0xA, "q6", 1, 1, 1));
  const FleetAggregate single = AggregateShards(std::move(one), 500);
  EXPECT_EQ(single.levels, 0u);
  EXPECT_EQ(single.rollup_cycles, 0u);
  EXPECT_EQ(single.leaves, 1u);

  // Five leaves: 5 -> 3 -> 2 -> 1, three pairwise-merge rounds; cost = levels x union x rate.
  const FleetAggregate root = AggregateShards(MakeLeaves(), 500);
  EXPECT_EQ(root.leaves, 5u);
  EXPECT_EQ(root.levels, 3u);
  EXPECT_EQ(root.plans.size(), 3u);
  EXPECT_EQ(root.rollup_cycles, 3u * 3u * 500u);
}

TEST(AggTree, MergeTakesLexicographicMinNameAndMaxBottleneck) {
  FleetAggregate anon = MakeLeaf(0xA, "", 1, 1, 1);
  FleetAggregate named = MakeLeaf(0xA, "q6", 1, 1, 1);
  named.plans[0xA].top_share_pct = 40;
  named.plans[0xA].bottleneck = "dram";
  FleetAggregate louder = MakeLeaf(0xA, "zz-alias", 1, 1, 1);
  louder.plans[0xA].top_share_pct = 70;
  louder.plans[0xA].bottleneck = "compute";

  const FleetAggregate merged = MergePair(MergePair(anon, named), louder);
  const FleetPlanRollup& plan = merged.plans.at(0xA);
  EXPECT_EQ(plan.name, "q6");  // Lexicographic-min non-empty.
  EXPECT_EQ(plan.top_share_pct, 70u);
  EXPECT_EQ(plan.bottleneck, "compute");
  EXPECT_EQ(plan.executions, 3u);
}

}  // namespace
}  // namespace dfp
