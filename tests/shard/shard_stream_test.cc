// Sample stream v7: shard attribution (D tokens) and cross-node locality (X tokens). The
// header is content-driven — shard-free streams keep their pre-v7 headers byte-identically —
// and pre-v7 readers of the new tokens must fail loudly, never silently drop attribution.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/pmu/sample.h"
#include "src/profiling/serialize.h"
#include "src/util/check.h"

namespace dfp {
namespace {

std::string Write(const std::vector<Sample>& samples) {
  std::ostringstream out;
  WriteSamples(samples, out);
  return out.str();
}

TEST(ShardStream, V7RoundTripPreservesShardAndCrossNode) {
  std::vector<Sample> samples(3);
  samples[0].tsc = 10;
  samples[0].ip = 0x1000;
  samples[0].shard_id = 2;
  samples[1].tsc = 20;
  samples[1].ip = 0x1010;
  samples[1].addr = 0x9000;
  samples[1].worker_id = 1;
  samples[1].shard_id = 3;
  samples[1].cross_node = true;
  samples[1].mem_node = 1;  // Owning machine node, recorded through the X token.
  samples[2].tsc = 30;
  samples[2].ip = 0x1020;  // Shard-less coordinator sample in the same stream.

  const std::string text = Write(samples);
  EXPECT_EQ(text.substr(0, text.find('\n')), "# dfp samples v7");
  EXPECT_NE(text.find(" D 2"), std::string::npos);
  EXPECT_NE(text.find(" X 1"), std::string::npos);

  std::istringstream in(text);
  const std::vector<Sample> read = ReadSamples(in);
  ASSERT_EQ(read.size(), samples.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(read[i].tsc, samples[i].tsc);
    EXPECT_EQ(read[i].shard_id, samples[i].shard_id);
    EXPECT_EQ(read[i].cross_node, samples[i].cross_node);
    EXPECT_EQ(read[i].mem_node, samples[i].mem_node);
    EXPECT_EQ(read[i].worker_id, samples[i].worker_id);
  }

  // Byte-stable: writing what was read reproduces the stream exactly.
  EXPECT_EQ(Write(read), text);
}

TEST(ShardStream, ShardFreeStreamsKeepPreV7Headers) {
  // A worker-0, shard-0 sample is the original v1 format; adding a worker id moves to v2,
  // NUMA locality to v3 — never to v7. Pre-shard archives stay byte-identical.
  std::vector<Sample> plain(1);
  plain[0].tsc = 5;
  plain[0].ip = 0x2000;
  EXPECT_EQ(Write(plain).substr(0, 16), "# dfp samples v1");

  plain[0].worker_id = 2;
  EXPECT_EQ(Write(plain).substr(0, 16), "# dfp samples v2");

  plain[0].mem_node = 0;
  plain[0].numa_remote = true;
  const std::string v3 = Write(plain);
  EXPECT_EQ(v3.substr(0, 16), "# dfp samples v3");
  EXPECT_EQ(v3.find(" D "), std::string::npos);
  EXPECT_EQ(v3.find(" X "), std::string::npos);
}

TEST(ShardStream, PreV7CompatStreamsStillParse) {
  const char* streams[] = {
      "# dfp samples v1\nsample 1 4096 0\n",
      "# dfp samples v2\nsample 1 4096 0 W 3\n",
      "# dfp samples v3\nsample 1 4096 36864 W 1 N 0 1 T\n",
  };
  for (const char* text : streams) {
    std::istringstream in(text);
    const std::vector<Sample> read = ReadSamples(in);
    ASSERT_EQ(read.size(), 1u) << text;
    EXPECT_EQ(read[0].shard_id, 0u);
    EXPECT_FALSE(read[0].cross_node);
  }
}

TEST(ShardStream, ShardTokensRejectedInPreV7Streams) {
  std::istringstream shard_in("# dfp samples v6\nsample 1 4096 0 D 1\n");
  EXPECT_THROW(ReadSamples(shard_in), Error);
  std::istringstream cross_in("# dfp samples v6\nsample 1 4096 4096 X 1\n");
  EXPECT_THROW(ReadSamples(cross_in), Error);
}

TEST(ShardStream, FutureVersionsRejected) {
  std::istringstream in("# dfp samples v9\nsample 1 4096 0\n");
  EXPECT_THROW(ReadSamples(in), Error);
}

TEST(ShardStream, ZeroShardIdNeverSerialized) {
  // shard_id 0 means "no shard" — it must not emit a D token (that would force v7 on every
  // unsharded stream and break pre-shard byte-identity).
  std::vector<Sample> samples(1);
  samples[0].tsc = 1;
  samples[0].ip = 0x3000;
  samples[0].shard_id = 0;
  EXPECT_EQ(Write(samples).find(" D "), std::string::npos);
}

}  // namespace
}  // namespace dfp
