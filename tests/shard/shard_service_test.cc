// ShardedService: fan-out results must be identical to the unsharded engine, routed queries
// must stay whole on one shard, the coordinator's Merge operator and CROSS_NODE traffic must
// be observable, catalog-version bumps must invalidate every shard's plan cache in one step,
// the 1-shard tower must be byte-identical to a plain QueryService, and a shard_count what-if
// replay of a recorded trace must never move a result.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/engine/result.h"
#include "src/replay/recorder.h"
#include "src/replay/replayer.h"
#include "src/replay/trace.h"
#include "src/shard/coordinator.h"
#include "src/sql/binder.h"
#include "src/tpch/datagen.h"
#include "src/tpch/queries.h"
#include "src/util/check.h"

namespace dfp {
namespace {

constexpr double kScale = 0.01;

ServiceConfig TestServiceConfig() {
  ServiceConfig config;
  config.parallel.workers = 2;
  config.max_active_sessions = 2;
  config.session_hashtables_bytes = 32ull << 20;
  config.session_output_bytes = 16ull << 20;
  config.profiling.period = 311;
  return config;
}

ShardServiceConfig TestShardConfig() {
  ShardServiceConfig config;
  config.service = TestServiceConfig();
  config.merge_sampling = DefaultMergeSampling();
  return config;
}

DatabaseConfig TestDbConfig(uint32_t shards) {
  DatabaseConfig config;
  config.columns_bytes = 64ull << 20;
  config.strings_bytes = 8ull << 20;
  config.hashtables_bytes = 16ull << 20;
  config.output_bytes = 16ull << 20;
  config.extra_bytes = ShardArenaBytes(TestShardConfig(), shards);
  return config;
}

ShardCatalog MakeCatalog(uint32_t shards) {
  ShardCatalogConfig config;
  config.shards = shards;
  config.db = TestDbConfig(shards);
  config.tpch.scale = kScale;
  return ShardCatalog(config);
}

ShardedService::PlanBuilder Builder(const std::string& name) {
  return [name](Database& db) { return BuildQueryPlan(db, FindQuery(name)); };
}

// The fan-out slice of the suite: ungrouped aggregation (q6), grouped AVG + full-key sort
// (q1), a co-partitioned join with CASE sums (q12), post-aggregation arithmetic (q14), and a
// co-partitioned semi join (q4).
const std::vector<std::string>& FanoutWorkload() {
  static const std::vector<std::string> workload = {"q6", "q1", "q12", "q14", "q4"};
  return workload;
}

TEST(ShardedService, FanoutResultsMatchUnshardedEngine) {
  ShardCatalog catalog = MakeCatalog(2);
  ShardedService sharded(catalog, TestShardConfig());

  auto plain_db = std::make_unique<Database>(TestDbConfig(2));
  TpchOptions options;
  options.scale = kScale;
  GenerateTpch(*plain_db, options);
  QueryService plain(*plain_db, TestServiceConfig());

  std::vector<TicketId> sharded_ids;
  std::vector<TicketId> plain_ids;
  for (const std::string& name : FanoutWorkload()) {
    sharded_ids.push_back(sharded.Submit(name, Builder(name)));
    plain_ids.push_back(plain.Submit(BuildQueryPlan(*plain_db, FindQuery(name)), name));
  }
  sharded.Drain();
  plain.Drain();

  for (size_t i = 0; i < sharded_ids.size(); ++i) {
    const ShardTicket& ticket = sharded.ticket(sharded_ids[i]);
    EXPECT_EQ(ticket.status, TicketStatus::kDone) << FanoutWorkload()[i];
    EXPECT_TRUE(ticket.fanout) << FanoutWorkload()[i];
    std::string diff;
    EXPECT_TRUE(Result::Equivalent(ticket.result, plain.ticket(plain_ids[i]).result, true,
                                   &diff))
        << FanoutWorkload()[i] << ": " << diff;
    // The stitched timing must include the coordinator merge on top of the slowest shard.
    EXPECT_GT(ticket.merge_cycles, 0u) << FanoutWorkload()[i];
    EXPECT_GE(ticket.execute_cycles, ticket.merge_cycles);
    EXPECT_GE(ticket.critical_cycles, ticket.merge_cycles);
  }
  EXPECT_EQ(sharded.fanout_queries(), FanoutWorkload().size());
  EXPECT_EQ(sharded.routed_queries(), 0u);

  // Fan-out staged remote partials across the shard fabric: visible as CROSS_NODE PMU events
  // and cross-node NUMA traffic on the coordinator, and as bytes in the ticket accounting.
  EXPECT_GT(sharded.cross_node_bytes(), 0u);
  EXPECT_GT(sharded.coordinator_counters()[PmuEvent::kCrossNode], 0u);
  EXPECT_GT(sharded.coordinator_numa_stats().cross_node_accesses, 0u);

  // The Merge operator is part of the fleet profile's operator breakdown.
  const FleetAggregate fleet = sharded.AggregateFleet();
  EXPECT_EQ(fleet.leaves, 3u);  // Two shards + the coordinator leaf.
  bool merge_listed = false;
  for (const auto& [fingerprint, plan] : fleet.plans) {
    (void)fingerprint;
    merge_listed |= plan.operators.count(kMergeOperatorId) != 0;
  }
  EXPECT_TRUE(merge_listed);
}

TEST(ShardedService, RoutedQueriesStayWholeOnOneShard) {
  ShardCatalog catalog = MakeCatalog(2);
  ShardedService sharded(catalog, TestShardConfig());

  auto plain_db = std::make_unique<Database>(TestDbConfig(2));
  TpchOptions options;
  options.scale = kScale;
  GenerateTpch(*plain_db, options);
  QueryService plain(*plain_db, TestServiceConfig());

  // q16 touches only replicated tables (part, partsupp): no fan-out, no merge, no staging.
  const TicketId sharded_id = sharded.Submit("q16", Builder("q16"));
  const TicketId plain_id = plain.Submit(BuildQueryPlan(*plain_db, FindQuery("q16")), "q16");
  sharded.Drain();
  plain.Drain();

  const ShardTicket& ticket = sharded.ticket(sharded_id);
  EXPECT_FALSE(ticket.fanout);
  EXPECT_EQ(ticket.shard_tickets.size(), 1u);
  EXPECT_EQ(ticket.merge_cycles, 0u);
  EXPECT_EQ(sharded.routed_queries(), 1u);
  EXPECT_EQ(sharded.fanout_queries(), 0u);
  EXPECT_EQ(sharded.cross_node_bytes(), 0u);
  std::string diff;
  EXPECT_TRUE(Result::Equivalent(ticket.result, plain.ticket(plain_id).result, true, &diff))
      << diff;

  // Repeats of the family land on the same shard's plan cache.
  sharded.Submit("q16", Builder("q16"));
  sharded.Drain();
  const QueryService& owner = sharded.shard(ticket.owner_shard);
  EXPECT_GE(owner.plan_cache().stats().hits, 1u);
}

TEST(ShardedService, CoordinatedInvalidationDropsEveryShardCache) {
  ShardCatalog catalog = MakeCatalog(2);
  ShardedService sharded(catalog, TestShardConfig());
  sharded.Submit("q6", Builder("q6"));
  sharded.Drain();
  EXPECT_EQ(sharded.coordinated_invalidations(), 0u);

  // Warm repeat: both shards hit their caches.
  sharded.Submit("q6", Builder("q6"));
  sharded.Drain();
  EXPECT_GE(sharded.shard(0).plan_cache().stats().hits, 1u);
  EXPECT_GE(sharded.shard(1).plan_cache().stats().hits, 1u);

  // DDL on every shard bumps the shared catalog version; the next submission must run the
  // coordinated invalidation and recompile on every shard.
  for (uint32_t s = 0; s < catalog.shards(); ++s) {
    TableBuilder builder = catalog.db(s).CreateTableBuilder(
        TableSchema{"ddl_probe", {{"x", ColumnType::kInt64}}});
    catalog.db(s).AddTable(builder.Finish());
  }
  const uint64_t misses_before =
      sharded.shard(0).plan_cache().stats().misses + sharded.shard(1).plan_cache().stats().misses;
  const TicketId after_ddl = sharded.Submit("q6", Builder("q6"));
  sharded.Drain();
  EXPECT_EQ(sharded.coordinated_invalidations(), 1u);
  EXPECT_EQ(sharded.ticket(after_ddl).status, TicketStatus::kDone);
  const uint64_t misses_after =
      sharded.shard(0).plan_cache().stats().misses + sharded.shard(1).plan_cache().stats().misses;
  EXPECT_EQ(misses_after, misses_before + 2);  // One recompile per shard.
}

TEST(ShardedService, OneShardTowerIsByteIdenticalToPlainService) {
  ShardCatalog catalog = MakeCatalog(1);
  ShardedService tower(catalog, TestShardConfig());

  auto plain_db = std::make_unique<Database>(TestDbConfig(1));
  TpchOptions options;
  options.scale = kScale;
  GenerateTpch(*plain_db, options);
  QueryService plain(*plain_db, TestServiceConfig());

  const std::vector<std::string> workload = {"q6", "q1", "q16", "q6"};
  std::vector<TicketId> tower_ids;
  std::vector<TicketId> plain_ids;
  for (const std::string& name : workload) {
    tower_ids.push_back(tower.Submit(name, Builder(name)));
    plain_ids.push_back(plain.Submit(BuildQueryPlan(*plain_db, FindQuery(name)), name));
  }
  tower.Drain();
  plain.Drain();

  for (size_t i = 0; i < workload.size(); ++i) {
    std::string diff;
    EXPECT_TRUE(Result::Equivalent(tower.ticket(tower_ids[i]).result,
                                   plain.ticket(plain_ids[i]).result, true, &diff))
        << workload[i] << ": " << diff;
    EXPECT_FALSE(tower.ticket(tower_ids[i]).fanout);
  }
  // The degenerate tower has no merger and no cross-node machinery; its single shard behaves
  // byte-identically to the plain service (same profiles, same clocks, same streams).
  EXPECT_EQ(tower.fanout_queries(), 0u);
  EXPECT_EQ(tower.cross_node_bytes(), 0u);
  EXPECT_EQ(tower.merge_sample_count(), 0u);
  EXPECT_EQ(tower.shard(0).fleet_profile().Render(), plain.fleet_profile().Render());
  EXPECT_EQ(tower.shard(0).ServiceNowCycles(), plain.ServiceNowCycles());

  const FleetAggregate fleet = tower.AggregateFleet();
  EXPECT_EQ(fleet.leaves, 1u);
  EXPECT_EQ(fleet.levels, 0u);
  EXPECT_EQ(fleet.rollup_cycles, 0u);
}

TEST(ShardedService, FleetRegressionSweepNamesTheRegressedShards) {
  // A fan-out plan executes on every shard, so an injected plan-mix shift regresses every
  // shard's windows at once. The coordinator sweep must surface each shard's finding stamped
  // with its 1-based shard id, so a fleet alert sink can tell WHERE the plan regressed.
  ShardServiceConfig config = TestShardConfig();
  config.service.continuous.window.width_cycles = 2'500'000;
  ShardCatalog catalog = MakeCatalog(2);
  ShardedService sharded(catalog, config);

  auto run_batch = [&](const std::string& sql, int count) {
    for (int i = 0; i < count; ++i) {
      sharded.Submit("q6", [&sql](Database& db) { return PlanSql(db, sql); });
      sharded.Drain();
    }
  };
  // q6 with much wider literals: same structure (and therefore the same fingerprint on every
  // shard), drastically different selectivity — the injected shift.
  const std::string baseline_sql = FindQuery("q6").sql;
  const std::string shifted_sql =
      "select sum(l_extendedprice * l_discount) as revenue from lineitem "
      "where l_shipdate >= date '1992-01-01' and l_shipdate < date '1999-01-01' "
      "and l_discount between 0.00 and 0.10 and l_quantity < 100";

  run_batch(baseline_sql, 4);
  sharded.SnapshotBaselines();

  // Identical rerun: every shard's mix reproduces, the fleet sweep stays quiet.
  run_batch(baseline_sql, 4);
  EXPECT_TRUE(sharded.DetectRegressions().empty());

  run_batch(shifted_sql, 4);
  std::vector<RegressionFinding> findings = sharded.DetectRegressions();
  ASSERT_EQ(findings.size(), 2u);
  // Shard order: the sweep visits shard 1 then shard 2; both flagged the same structure.
  EXPECT_EQ(findings[0].shard_id, 1u);
  EXPECT_EQ(findings[1].shard_id, 2u);
  EXPECT_EQ(findings[0].fingerprint, findings[1].fingerprint);
  for (const RegressionFinding& finding : findings) {
    EXPECT_TRUE(finding.share_regressed || finding.cycles_per_row_regressed ||
                finding.remote_regressed);
  }
}

TEST(ShardedService, FleetAggregateIsDeterministicAcrossIdenticalRuns) {
  auto run = [] {
    ShardCatalog catalog = MakeCatalog(2);
    ShardedService sharded(catalog, TestShardConfig());
    for (const std::string& name : FanoutWorkload()) {
      sharded.Submit(name, Builder(name));
    }
    sharded.Drain();
    std::ostringstream json;
    WriteFleetAggregateJson(sharded.AggregateFleet(), json);
    return json.str();
  };
  EXPECT_EQ(run(), run());
}

TEST(ShardReplay, ShardCountWhatIfNeverMovesResults) {
  // Record a mixed fan-out workload (literal variants included) on a plain service.
  const ServiceConfig record_config = TestServiceConfig();
  DatabaseConfig record_db_config = TestDbConfig(1);
  record_db_config.extra_bytes = ServiceArenaBytes(record_config);
  auto record_db = std::make_unique<Database>(record_db_config);
  TpchOptions options;
  options.scale = kScale;
  GenerateTpch(*record_db, options);
  WorkloadTrace trace;
  {
    QueryService recorded(*record_db, record_config);
    TraceRecorder recorder;
    recorded.AttachRecorder(recorder);
    recorded.Submit(BuildQueryPlan(*record_db, FindQuery("q1")), "q1");
    recorded.Submit(BuildQueryPlan(*record_db, FindQuery("q6")), "q6");
    recorded.Drain();
    recorded.Submit(BuildQueryPlan(*record_db, FindQuery("q12")), "q12");
    recorded.Submit(BuildQueryPlan(*record_db, FindQuery("q16")), "q16");
    recorded.Drain();
    recorder.Finish(recorded);
    trace = recorder.trace();
  }

  WhatIfKnobs knobs;
  knobs.shard_count = 2;
  EXPECT_FALSE(knobs.IsIdentity());

  // The shard catalog is mandatory for a shard-count what-if.
  {
    auto bare_db = std::make_unique<Database>(TestDbConfig(1));
    GenerateTpch(*bare_db, options);
    ReplayOptions missing;
    missing.knobs = knobs;
    EXPECT_THROW(ReplayTrace(*bare_db, trace, missing), Error);
  }

  ShardCatalog catalog = MakeCatalog(2);
  ReplayOptions replay_options;
  replay_options.knobs = knobs;
  replay_options.shards = &catalog;
  const ReplayRun run = ReplayTrace(catalog.db(0), trace, replay_options);
  const ReplayReport report = DiffTraces(trace, run.trace);

  // Sharding re-partitions execution (fan-out + merge, different streams and timing) but must
  // not move a single result: zero result divergence, every recorded query completed.
  EXPECT_EQ(report.results_diverged, 0u);
  EXPECT_EQ(report.replayed_queries, report.recorded_queries);
  EXPECT_EQ(report.replayed_completed, report.recorded_completed);
  // Note knobs_identical stays true: each shard runs the RECORDED service configuration —
  // shard_count changes topology, not knobs.
  EXPECT_TRUE(report.knobs_identical);
  EXPECT_FALSE(run.service_profile_text.empty());
}

}  // namespace
}  // namespace dfp
