// Shared test harness: compiles VIR functions and runs them on a fresh VCPU.
#ifndef DFP_TESTS_TESTING_VCPU_HARNESS_H_
#define DFP_TESTS_TESTING_VCPU_HARNESS_H_

#include <memory>
#include <vector>

#include "src/backend/compiler.h"
#include "src/pmu/pmu.h"
#include "src/vcpu/cpu.h"
#include "src/vcpu/vmem.h"

namespace dfp {

class VcpuHarness {
 public:
  explicit VcpuHarness(uint64_t mem_capacity = 16ull << 20) : mem(mem_capacity) {}

  // Compiles the function, registers it, and returns its global function id.
  uint32_t Compile(IrFunction& function, const CompileOptions& options = CompileOptions()) {
    EmittedFunction emitted = CompileFunction(function, options);
    uint32_t segment =
        code_map.AddSegment(SegmentKind::kGenerated, function.name(), std::move(emitted.code));
    return code_map.AddFunction(function.name(), segment, 0, emitted.spill_slots,
                                emitted.num_args);
  }

  // Runs a previously compiled (or host) function on a fresh CPU.
  uint64_t Run(uint32_t func_id, std::vector<uint64_t> args) {
    Cpu cpu(mem, code_map, pmu);
    uint64_t result = cpu.CallFunction(func_id, args);
    last_cycles = cpu.tsc();
    last_instructions = cpu.stats().instructions;
    return result;
  }

  uint64_t CompileAndRun(IrFunction& function, std::vector<uint64_t> args,
                         const CompileOptions& options = CompileOptions()) {
    return Run(Compile(function, options), std::move(args));
  }

  VMem mem;
  CodeMap code_map;
  Pmu pmu;
  uint64_t last_cycles = 0;
  uint64_t last_instructions = 0;
};

}  // namespace dfp

#endif  // DFP_TESTS_TESTING_VCPU_HARNESS_H_
