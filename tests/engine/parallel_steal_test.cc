// NUMA-aware work-stealing scheduler: result equivalence with the sequential engine, steals on
// skewed morsel distributions with equal-or-better cycles than central dispatch, correct
// attribution of stolen morsels, locality-stamped samples, order preservation for bare-LIMIT
// pipelines, and bit-level determinism of the stealing schedule.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/engine/query_engine.h"
#include "src/plan/builder.h"
#include "src/profiling/serialize.h"
#include "src/tpch/datagen.h"
#include "src/tpch/queries.h"

namespace dfp {
namespace {

Database* TpchDb() {
  static Database* db = [] {
    auto* instance = new Database();
    TpchOptions options;
    options.scale = 0.01;
    GenerateTpch(*instance, options);
    return instance;
  }();
  return db;
}

// Database with date-correlated orders: q6's qualifying rows cluster into one contiguous band
// of lineitem, so the nodes owning the band run long and the rest of the pool must steal.
Database* SkewedDb() {
  static Database* db = [] {
    auto* instance = new Database();
    TpchOptions options;
    options.scale = 0.01;
    options.correlated_order_dates = true;
    GenerateTpch(*instance, options);
    return instance;
  }();
  return db;
}

CodegenOptions ParallelOptions() {
  CodegenOptions options;
  options.parallel = true;
  return options;
}

TEST(ParallelSteal, MatchesSequentialAcrossQueries) {
  Database& db = *TpchDb();
  QueryEngine engine(&db);
  for (const char* name : {"q1", "q3", "q6", "q18", "qgj"}) {
    const QuerySpec& spec = FindQuery(name);
    CompiledQuery sequential = engine.Compile(BuildQueryPlan(db, spec), nullptr, spec.name);
    Result expected = engine.Execute(sequential);
    CompiledQuery parallel = engine.Compile(BuildQueryPlan(db, spec), nullptr,
                                            spec.name + "_steal", ParallelOptions());
    for (uint32_t workers : {2u, 4u}) {
      ParallelConfig config;
      config.workers = workers;
      config.scheduler = SchedulerPolicy::kWorkStealing;
      Result result = engine.ExecuteParallel(parallel, config);
      std::string diff;
      EXPECT_TRUE(Result::Equivalent(result, expected, spec.ordered_result, &diff))
          << spec.name << " at " << workers << " workers: " << diff;
    }
  }
}

TEST(ParallelSteal, SkewedScanStealsAndBeatsCentral) {
  Database& db = *SkewedDb();
  QueryEngine engine(&db);
  const QuerySpec& spec = FindQuery("q6");
  CompiledQuery sequential = engine.Compile(BuildQueryPlan(db, spec), nullptr, "q6_seq");
  Result expected = engine.Execute(sequential);
  CompiledQuery parallel =
      engine.Compile(BuildQueryPlan(db, spec), nullptr, "q6_steal", ParallelOptions());

  ParallelConfig central;
  central.workers = 4;
  central.scheduler = SchedulerPolicy::kCentral;
  engine.ExecuteParallel(parallel, central);
  const uint64_t central_cycles = engine.last_cycles();
  uint64_t central_local = 0;
  uint64_t central_remote = 0;
  for (const WorkerMetrics& w : engine.last_worker_metrics()) {
    EXPECT_EQ(w.steals, 0u) << "central dispatch must never steal (worker " << w.worker_id
                            << ")";
    central_local += w.numa_stats.local_accesses;
    central_remote += w.numa_stats.remote_accesses;
  }

  ParallelConfig stealing;
  stealing.workers = 4;
  stealing.scheduler = SchedulerPolicy::kWorkStealing;
  Result result = engine.ExecuteParallel(parallel, stealing);
  const uint64_t stealing_cycles = engine.last_cycles();
  uint64_t steals = 0;
  uint64_t local = 0;
  uint64_t remote = 0;
  for (const WorkerMetrics& w : engine.last_worker_metrics()) {
    EXPECT_EQ(w.node, w.worker_id % 4) << "one node per worker by default";
    steals += w.steals;
    local += w.numa_stats.local_accesses;
    remote += w.numa_stats.remote_accesses;
  }

  std::string diff;
  EXPECT_TRUE(Result::Equivalent(result, expected, spec.ordered_result, &diff)) << diff;
  // The acceptance bar of the scheduler: the skew must actually trigger steals, and paying for
  // them must still be no worse than the locality-blind central schedule.
  EXPECT_GT(steals, 0u);
  EXPECT_LE(stealing_cycles, central_cycles)
      << "stealing " << stealing_cycles << " vs central " << central_cycles;
  // Node-local deques must raise the local share of NUMA-managed traffic well above the
  // locality-blind central schedule (the sequential pipeline tail keeps hitting interleaved
  // state/output regions under both policies, so a flat local-majority bound would overreach).
  const double central_share =
      static_cast<double>(central_local) / static_cast<double>(central_local + central_remote);
  const double stealing_share =
      static_cast<double>(local) / static_cast<double>(local + remote);
  EXPECT_GT(stealing_share, central_share + 0.1)
      << "stealing " << stealing_share << " local share vs central " << central_share;
}

TEST(ParallelSteal, StolenSamplesCarryLocalityAndAttribute) {
  Database& db = *SkewedDb();
  QueryEngine engine(&db);
  const QuerySpec& spec = FindQuery("q6");
  ProfilingConfig pconfig;
  pconfig.event = PmuEvent::kLoads;
  pconfig.period = 200;
  pconfig.capture_address = true;
  ProfilingSession session(pconfig);
  CompiledQuery query = engine.Compile(BuildQueryPlan(db, spec), &session, "q6_locprof",
                                       ParallelOptions());
  ParallelConfig config;
  config.workers = 4;
  config.scheduler = SchedulerPolicy::kWorkStealing;
  engine.ExecuteParallel(query, config);
  session.Resolve(db.code_map());

  uint64_t stolen = 0;
  uint64_t stolen_attributed = 0;
  uint64_t with_node = 0;
  uint64_t remote = 0;
  for (const ResolvedSample& sample : session.resolved()) {
    if (sample.stolen) {
      ++stolen;
      if (sample.category == ResolvedSample::Category::kOperator) {
        ++stolen_attributed;
      }
    }
    if (sample.mem_node != kNoNumaNode) {
      ++with_node;
      remote += sample.numa_remote ? 1 : 0;
    }
  }
  // The skewed scan steals, and the Tagging Dictionary attributes stolen morsels exactly like
  // any other: the thief runs the same tagged code.
  ASSERT_GT(stolen, 0u);
  EXPECT_EQ(stolen, stolen_attributed);
  // Address capture on a NUMA run stamps home nodes; both localities must occur.
  ASSERT_GT(with_node, 0u);
  EXPECT_GT(remote, 0u);
  EXPECT_GT(with_node, remote);

  // The locality fields survive the v3 serialization round trip sample-for-sample.
  std::ostringstream out;
  WriteSamples(session.samples(), out);
  EXPECT_NE(out.str().find("# dfp samples v3"), std::string::npos);
  std::istringstream in(out.str());
  std::vector<Sample> reread = ReadSamples(in);
  ASSERT_EQ(reread.size(), session.samples().size());
  for (size_t i = 0; i < reread.size(); ++i) {
    EXPECT_EQ(reread[i].stolen, session.samples()[i].stolen) << i;
    EXPECT_EQ(reread[i].mem_node, session.samples()[i].mem_node) << i;
    EXPECT_EQ(reread[i].numa_remote, session.samples()[i].numa_remote) << i;
  }
}

TEST(ParallelSteal, StealingScheduleIsDeterministic) {
  Database& db = *SkewedDb();
  QueryEngine engine(&db);
  const QuerySpec& spec = FindQuery("q6");
  ProfilingConfig pconfig;
  pconfig.period = 311;
  ProfilingSession session(pconfig);
  CompiledQuery query =
      engine.Compile(BuildQueryPlan(db, spec), &session, "q6_det", ParallelOptions());
  ParallelConfig config;
  config.workers = 4;
  config.scheduler = SchedulerPolicy::kWorkStealing;
  auto run = [&] {
    engine.ExecuteParallel(query, config);
    uint64_t steals = 0;
    for (const WorkerMetrics& w : engine.last_worker_metrics()) {
      steals += w.steals;
    }
    std::ostringstream out;
    WriteSamples(session.samples(), out);
    return std::make_pair(steals, out.str());
  };
  const auto [steals1, stream1] = run();
  const auto [steals2, stream2] = run();
  EXPECT_EQ(steals1, steals2);
  EXPECT_EQ(stream1, stream2);  // Byte-identical merged sample streams.
  EXPECT_EQ(engine.last_cycles(), engine.last_cycles());
}

TEST(ParallelSteal, BareLimitKeepsTableOrder) {
  // A bare LIMIT over a scan returns "the first N rows in table order". Stealing would permute
  // which morsel appends first, so limit pipelines must fall back to central dispatch — the
  // result has to match sequential execution row for row.
  Database& db = *TpchDb();
  QueryEngine engine(&db);
  auto build = [&] {
    PlanBuilder scan = PlanBuilder::Scan(db.table("lineitem"));
    scan.LimitTo(1000);
    return scan.Build();
  };
  CompiledQuery sequential = engine.Compile(build(), nullptr, "limit_seq");
  Result expected = engine.Execute(sequential);
  CompiledQuery parallel = engine.Compile(build(), nullptr, "limit_par", ParallelOptions());
  for (uint32_t workers : {2u, 4u}) {
    ParallelConfig config;
    config.workers = workers;
    config.scheduler = SchedulerPolicy::kWorkStealing;
    Result result = engine.ExecuteParallel(parallel, config);
    std::string diff;
    EXPECT_TRUE(Result::Equivalent(result, expected, /*ordered=*/true, &diff))
        << workers << " workers: " << diff;
    for (const WorkerMetrics& w : engine.last_worker_metrics()) {
      EXPECT_EQ(w.steals, 0u) << "order-sensitive pipelines must not steal";
    }
  }
}

TEST(ParallelSteal, SingleNodeTopologyHasNoRemoteTraffic) {
  // numa_nodes = 1 collapses the topology: everything is local, nothing pays the penalty, and
  // stealing still works purely as load balancing.
  Database& db = *SkewedDb();
  QueryEngine engine(&db);
  const QuerySpec& spec = FindQuery("q6");
  CompiledQuery parallel =
      engine.Compile(BuildQueryPlan(db, spec), nullptr, "q6_flat", ParallelOptions());
  ParallelConfig config;
  config.workers = 4;
  config.numa_nodes = 1;
  engine.ExecuteParallel(parallel, config);
  uint64_t local = 0;
  uint64_t remote = 0;
  for (const WorkerMetrics& w : engine.last_worker_metrics()) {
    EXPECT_EQ(w.node, 0u);
    local += w.numa_stats.local_accesses;
    remote += w.numa_stats.remote_accesses;
  }
  EXPECT_GT(local, 0u);
  EXPECT_EQ(remote, 0u);
}

}  // namespace
}  // namespace dfp
