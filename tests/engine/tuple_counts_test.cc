// EXPLAIN-ANALYZE-style per-task tuple counters (CodegenOptions::count_tuples).
#include <gtest/gtest.h>

#include "src/engine/query_engine.h"
#include "src/interp/interpreter.h"
#include "src/plan/builder.h"
#include "src/profiling/reports.h"
#include "src/util/random.h"

namespace dfp {
namespace {

class TupleCountsTest : public ::testing::Test {
 protected:
  TupleCountsTest() : engine(&db) {
    Random rng(31);
    TableBuilder dims = db.CreateTableBuilder(
        {"dims", {{"id", ColumnType::kInt64}, {"w", ColumnType::kInt64}}});
    for (int i = 0; i < 100; ++i) {
      dims.BeginRow();
      dims.SetI64(0, i);
      dims.SetI64(1, i % 7);
    }
    db.AddTable(dims.Finish());
    TableBuilder facts = db.CreateTableBuilder(
        {"facts", {{"id", ColumnType::kInt64}, {"v", ColumnType::kInt64}}});
    for (int i = 0; i < 5000; ++i) {
      facts.BeginRow();
      facts.SetI64(0, rng.Uniform(0, 199));  // Half the ids miss the dims table.
      facts.SetI64(1, rng.Uniform(0, 100));
    }
    db.AddTable(facts.Finish());
  }

  Database db;
  QueryEngine engine;
};

TEST_F(TupleCountsTest, CountsMatchSemantics) {
  PlanBuilder dims = PlanBuilder::Scan(db.table("dims"));
  dims.FilterBy(MakeBinary(BinOp::kLt, dims.Col("id"), MakeLiteral(ColumnType::kInt64, 50)),
                "DimFilter");
  PlanBuilder facts = PlanBuilder::Scan(db.table("facts"));
  facts.FilterBy(MakeBinary(BinOp::kGe, facts.Col("v"), MakeLiteral(ColumnType::kInt64, 10)),
                 "FactFilter");
  facts.JoinWith(std::move(dims), {"id"}, {"id"}, {"w"}, JoinType::kInner, "TheJoin");
  facts.GroupByKeys({"w"}, NamedExprs("n", MakeAggregate(AggOp::kCountStar, nullptr)),
                    "TheGroupBy");

  ProfilingConfig config;
  config.enable_sampling = false;
  ProfilingSession session(config);
  CodegenOptions options;
  options.count_tuples = true;
  CompiledQuery query = engine.Compile(facts.Build(), &session, "counted", options);
  Result result = engine.Execute(query);

  // Reference counts from the oracle.
  Result reference = InterpretPlan(db, *query.plan);
  std::string diff;
  ASSERT_TRUE(Result::Equivalent(result, reference, false, &diff)) << diff;

  // Gather counts by task name.
  std::map<std::string, uint64_t> by_name;
  for (const auto& [task, count] : query.tuple_counts) {
    by_name[session.dictionary().task(task).name] += count;
  }
  ASSERT_FALSE(by_name.empty());
  // Scans see every base tuple (two scan tasks share the name "scan").
  EXPECT_EQ(by_name.at("scan"), 5000u + 100u);
  // The dim filter passes ids 0..49; the build inserts exactly those.
  EXPECT_EQ(by_name.at("build"), 50u);
  // Aggregate consumes exactly the join's matches; output writes one row per group.
  EXPECT_EQ(by_name.at("output"), result.row_count());
  EXPECT_GT(by_name.at("probe"), 0u);
  EXPECT_EQ(by_name.at("aggregate"), by_name.at("probe"));
  EXPECT_EQ(by_name.at("scan groups"), result.row_count());

  // Rendered table mentions tasks and counts.
  std::string table = RenderTaskTupleCounts(query, session.dictionary());
  EXPECT_NE(table.find("probe"), std::string::npos);
  EXPECT_NE(table.find("TheJoin"), std::string::npos);
}

TEST_F(TupleCountsTest, CountersDoNotChangeResults) {
  auto make = [&]() {
    PlanBuilder facts = PlanBuilder::Scan(db.table("facts"));
    facts.GroupByKeys({"id"}, NamedExprs("s", MakeAggregate(AggOp::kSum, facts.Col("v"))));
    return facts.Build();
  };
  CompiledQuery plain = engine.Compile(make(), nullptr, "plain");
  Result expected = engine.Execute(plain);
  uint64_t plain_cycles = engine.last_cycles();

  ProfilingConfig config;
  config.enable_sampling = false;
  ProfilingSession session(config);
  CodegenOptions options;
  options.count_tuples = true;
  CompiledQuery counted = engine.Compile(make(), &session, "counted", options);
  Result actual = engine.Execute(counted);
  std::string diff;
  EXPECT_TRUE(Result::Equivalent(actual, expected, false, &diff)) << diff;
  // Counting costs a little, never nothing.
  EXPECT_GT(engine.last_cycles(), plain_cycles);
}

}  // namespace
}  // namespace dfp
