#include <gtest/gtest.h>

#include "src/engine/query_engine.h"
#include "src/interp/interpreter.h"
#include "src/plan/builder.h"
#include "src/util/date.h"
#include "src/util/decimal.h"
#include "src/util/random.h"

namespace dfp {
namespace {

// Builds the paper's running-example schema (Figure 3): sales and products.
class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : db(SmallConfig()), engine(&db) {
    Random rng(11);
    {
      TableBuilder products = db.CreateTableBuilder(
          {"products",
           {{"id", ColumnType::kInt64}, {"category", ColumnType::kString}}});
      for (int i = 0; i < 200; ++i) {
        products.BeginRow();
        products.SetI64(0, i);
        products.SetString(1, i % 4 == 0 ? "Chip" : (i % 4 == 1 ? "Board" : "Cable"));
      }
      db.AddTable(products.Finish());
    }
    {
      TableBuilder sales = db.CreateTableBuilder({"sales",
                                                  {{"id", ColumnType::kInt64},
                                                   {"price", ColumnType::kDecimal},
                                                   {"vat_factor", ColumnType::kDecimal},
                                                   {"prod_costs", ColumnType::kDecimal},
                                                   {"day", ColumnType::kDate}}});
      for (int i = 0; i < 3000; ++i) {
        sales.BeginRow();
        sales.SetI64(0, rng.Uniform(0, 199));
        sales.SetDecimal(1, rng.Uniform(100, 100000));
        sales.SetDecimal(2, rng.Uniform(100, 125));  // 1.00 .. 1.25
        sales.SetDecimal(3, rng.Uniform(100, 5000));
        sales.SetDate(4, DateFromYmd(1995, 1, 1) + static_cast<int32_t>(rng.Uniform(0, 365)));
      }
      db.AddTable(sales.Finish());
    }
  }

  static DatabaseConfig SmallConfig() {
    DatabaseConfig config;
    config.columns_bytes = 8ull << 20;
    config.strings_bytes = 1ull << 20;
    config.hashtables_bytes = 16ull << 20;
    config.output_bytes = 16ull << 20;
    return config;
  }

  void ExpectMatchesOracle(CompiledQuery& query, bool ordered) {
    Result compiled = engine.Execute(query);
    Result reference = InterpretPlan(db, *query.plan);
    std::string diff;
    EXPECT_TRUE(Result::Equivalent(compiled, reference, ordered, &diff))
        << diff << "\ncompiled:\n"
        << compiled.ToString(db.strings()) << "\nreference:\n"
        << reference.ToString(db.strings());
  }

  Database db;
  QueryEngine engine;
};

TEST_F(EngineTest, ScanFilterProject) {
  PlanBuilder plan = PlanBuilder::Scan(db.table("sales"));
  plan.FilterBy(MakeBinary(BinOp::kGt, plan.Col("price"), MakeLiteral(ColumnType::kDecimal,
                                                                      MakeDecimal(500, 0))));
  plan.Project({"id", "price"});
  CompiledQuery query = engine.Compile(plan.Build(), nullptr, "scan_filter");
  ExpectMatchesOracle(query, /*ordered=*/true);
}

TEST_F(EngineTest, MapArithmetic) {
  PlanBuilder plan = PlanBuilder::Scan(db.table("sales"));
  ExprPtr margin = MakeBinary(BinOp::kSub, plan.Col("price"), plan.Col("prod_costs"));
  plan.MapTo(NamedExprs("margin", std::move(margin)));
  plan.Project({"id", "margin"});
  CompiledQuery query = engine.Compile(plan.Build(), nullptr, "map_arith");
  ExpectMatchesOracle(query, /*ordered=*/true);
}

TEST_F(EngineTest, PaperExampleQuery) {
  // Select s.id, avg(s.price / s.vat_factor / s.prod_costs)
  // From sales s, products p Where s.id = p.id and p.category = 'Chip' Group By s.id.
  PlanBuilder products = PlanBuilder::Scan(db.table("products"));
  products.FilterBy(MakeBinary(
      BinOp::kEq, products.Col("category"),
      MakeLiteral(ColumnType::kString,
                  static_cast<int64_t>(db.strings().Intern("Chip")))));

  PlanBuilder sales = PlanBuilder::Scan(db.table("sales"));
  sales.JoinWith(std::move(products), {"id"}, {"id"}, {}, JoinType::kInner, "HashJoin p.id=s.id");
  ExprPtr ratio = MakeBinary(
      BinOp::kDiv,
      MakeBinary(BinOp::kDiv, sales.Col("price"), sales.Col("vat_factor")),
      sales.Col("prod_costs"));
  sales.GroupByKeys({"id"}, NamedExprs("avg_ratio", MakeAggregate(AggOp::kAvg, std::move(ratio))));
  CompiledQuery query = engine.Compile(sales.Build(), nullptr, "paper_example");
  Result compiled = engine.Execute(query);
  EXPECT_GT(compiled.row_count(), 0u);
  Result reference = InterpretPlan(db, *query.plan);
  std::string diff;
  EXPECT_TRUE(Result::Equivalent(compiled, reference, /*ordered=*/false, &diff)) << diff;
}

TEST_F(EngineTest, InnerJoinWithPayload) {
  PlanBuilder products = PlanBuilder::Scan(db.table("products"));
  PlanBuilder sales = PlanBuilder::Scan(db.table("sales"));
  sales.JoinWith(std::move(products), {"id"}, {"id"}, {"category"});
  sales.Project({"id", "price", "category"});
  CompiledQuery query = engine.Compile(sales.Build(), nullptr, "join_payload");
  ExpectMatchesOracle(query, /*ordered=*/false);
}

TEST_F(EngineTest, SemiAndAntiJoin) {
  {
    PlanBuilder chips = PlanBuilder::Scan(db.table("products"));
    chips.FilterBy(MakeBinary(
        BinOp::kEq, chips.Col("category"),
        MakeLiteral(ColumnType::kString,
                    static_cast<int64_t>(db.strings().Intern("Chip")))));
    PlanBuilder sales = PlanBuilder::Scan(db.table("sales"));
    sales.JoinWith(std::move(chips), {"id"}, {"id"}, {}, JoinType::kSemi);
    CompiledQuery query = engine.Compile(sales.Build(), nullptr, "semi");
    ExpectMatchesOracle(query, /*ordered=*/false);
  }
  {
    PlanBuilder chips = PlanBuilder::Scan(db.table("products"));
    chips.FilterBy(MakeBinary(
        BinOp::kEq, chips.Col("category"),
        MakeLiteral(ColumnType::kString,
                    static_cast<int64_t>(db.strings().Intern("Chip")))));
    PlanBuilder sales = PlanBuilder::Scan(db.table("sales"));
    sales.JoinWith(std::move(chips), {"id"}, {"id"}, {}, JoinType::kAnti);
    CompiledQuery query = engine.Compile(sales.Build(), nullptr, "anti");
    ExpectMatchesOracle(query, /*ordered=*/false);
  }
}

TEST_F(EngineTest, GroupByAggregates) {
  PlanBuilder plan = PlanBuilder::Scan(db.table("sales"));
  plan.GroupByKeys(
      {"id"},
      NamedExprs("n", MakeAggregate(AggOp::kCountStar, nullptr),
                 "total", MakeAggregate(AggOp::kSum, plan.Col("price")),
                 "cheapest", MakeAggregate(AggOp::kMin, plan.Col("price")),
                 "priciest", MakeAggregate(AggOp::kMax, plan.Col("price")),
                 "avg_costs", MakeAggregate(AggOp::kAvg, plan.Col("prod_costs"))));
  CompiledQuery query = engine.Compile(plan.Build(), nullptr, "groupby");
  ExpectMatchesOracle(query, /*ordered=*/false);
}

TEST_F(EngineTest, SortWithLimitTopK) {
  PlanBuilder plan = PlanBuilder::Scan(db.table("sales"));
  plan.Project({"id", "price", "day"});
  plan.OrderBy({{"price", true}, {"id", false}}, /*limit=*/25);
  CompiledQuery query = engine.Compile(plan.Build(), nullptr, "topk");
  ExpectMatchesOracle(query, /*ordered=*/true);
}

TEST_F(EngineTest, StandaloneLimit) {
  PlanBuilder plan = PlanBuilder::Scan(db.table("sales"));
  plan.Project({"id"});
  plan.LimitTo(10);
  CompiledQuery query = engine.Compile(plan.Build(), nullptr, "limit");
  Result compiled = engine.Execute(query);
  EXPECT_EQ(compiled.row_count(), 10u);
}

TEST_F(EngineTest, GroupJoinMatchesGroupByPlusJoin) {
  // GroupJoin(products, sales): per product, count and sum of sales.
  PlanBuilder products = PlanBuilder::Scan(db.table("products"));
  PlanBuilder sales = PlanBuilder::Scan(db.table("sales"));
  sales.GroupJoinWith(std::move(products), {"id"}, {"id"}, {"id", "category"},
                      NamedExprs("n", MakeAggregate(AggOp::kCountStar, nullptr),
                                 "total", MakeAggregate(AggOp::kSum, sales.Col("price"))));
  CompiledQuery query = engine.Compile(sales.Build(), nullptr, "groupjoin");
  ExpectMatchesOracle(query, /*ordered=*/false);
}

TEST_F(EngineTest, CaseAndInListAndLike) {
  PlanBuilder plan = PlanBuilder::Scan(db.table("products"));
  ExprPtr is_chip = MakeLike(plan.Col("category"), "Chi%");
  std::vector<std::pair<ExprPtr, ExprPtr>> whens;
  whens.emplace_back(std::move(is_chip), MakeLiteral(ColumnType::kInt64, 1));
  ExprPtr tag = MakeCase(std::move(whens), MakeLiteral(ColumnType::kInt64, 0));
  plan.MapTo(NamedExprs("is_chip", std::move(tag)));
  plan.FilterBy(MakeInList(plan.Col("id"), {1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144}));
  plan.Project({"id", "is_chip"});
  CompiledQuery query = engine.Compile(plan.Build(), nullptr, "case_like");
  ExpectMatchesOracle(query, /*ordered=*/true);
}

TEST_F(EngineTest, DateFilters) {
  PlanBuilder plan = PlanBuilder::Scan(db.table("sales"));
  ExprPtr after = MakeBinary(BinOp::kGe, plan.Col("day"),
                             MakeLiteral(ColumnType::kDate, DateFromYmd(1995, 4, 1)));
  ExprPtr before = MakeBinary(BinOp::kLt, plan.Col("day"),
                              MakeLiteral(ColumnType::kDate, DateFromYmd(1995, 7, 1)));
  plan.FilterBy(MakeBinary(BinOp::kAnd, std::move(after), std::move(before)));
  plan.Project({"id", "day"});
  CompiledQuery query = engine.Compile(plan.Build(), nullptr, "dates");
  ExpectMatchesOracle(query, /*ordered=*/true);
}

TEST_F(EngineTest, UnoptimizedCodegenAgrees) {
  auto make_plan = [&]() {
    PlanBuilder plan = PlanBuilder::Scan(db.table("sales"));
    plan.GroupByKeys({"id"}, NamedExprs("total", MakeAggregate(AggOp::kSum, plan.Col("price"))));
    return plan.Build();
  };
  CodegenOptions no_opt;
  no_opt.optimize_ir = false;
  CompiledQuery unoptimized = engine.Compile(make_plan(), nullptr, "agg_noopt", no_opt);
  Result a = engine.Execute(unoptimized);
  CompiledQuery optimized = engine.Compile(make_plan(), nullptr, "agg_opt");
  Result b = engine.Execute(optimized);
  std::string diff;
  EXPECT_TRUE(Result::Equivalent(a, b, /*ordered=*/false, &diff)) << diff;
}

TEST_F(EngineTest, ExecutionIsDeterministic) {
  auto make_plan = [&]() {
    PlanBuilder plan = PlanBuilder::Scan(db.table("sales"));
    plan.GroupByKeys({"id"}, NamedExprs("total", MakeAggregate(AggOp::kSum, plan.Col("price"))));
    return plan.Build();
  };
  CompiledQuery q1 = engine.Compile(make_plan(), nullptr, "det1");
  engine.Execute(q1);
  uint64_t cycles1 = engine.last_cycles();
  CompiledQuery q2 = engine.Compile(make_plan(), nullptr, "det2");
  engine.Execute(q2);
  EXPECT_EQ(cycles1, engine.last_cycles());
}

}  // namespace
}  // namespace dfp
