// Morsel-driven parallel execution: result equivalence with the sequential engine, scaling,
// determinism of the merged per-worker sample stream, worker-id round-tripping through the
// serialized sample format, and attribution parity with single-threaded profiling.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/engine/query_engine.h"
#include "src/profiling/serialize.h"
#include "src/tpch/datagen.h"
#include "src/tpch/queries.h"

namespace dfp {
namespace {

Database* TpchDb() {
  static Database* db = [] {
    auto* instance = new Database();
    TpchOptions options;
    options.scale = 0.01;
    GenerateTpch(*instance, options);
    return instance;
  }();
  return db;
}

CodegenOptions ParallelOptions() {
  CodegenOptions options;
  options.parallel = true;
  return options;
}

TEST(ParallelTest, MatchesSequentialAcrossWorkerCounts) {
  Database& db = *TpchDb();
  QueryEngine engine(&db);
  for (const char* name : {"q1", "q3", "q18", "qgj"}) {
    const QuerySpec& spec = FindQuery(name);
    CompiledQuery sequential = engine.Compile(BuildQueryPlan(db, spec), nullptr, spec.name);
    Result expected = engine.Execute(sequential);
    CompiledQuery parallel =
        engine.Compile(BuildQueryPlan(db, spec), nullptr, spec.name + "_par", ParallelOptions());
    for (uint32_t workers : {1u, 2u, 4u}) {
      ParallelConfig config;
      config.workers = workers;
      Result result = engine.ExecuteParallel(parallel, config);
      std::string diff;
      EXPECT_TRUE(Result::Equivalent(result, expected, spec.ordered_result, &diff))
          << spec.name << " at " << workers << " workers: " << diff;
    }
  }
}

TEST(ParallelTest, ScanHeavyQuerySpeedsUpAtFourWorkers) {
  Database& db = *TpchDb();
  QueryEngine engine(&db);
  const QuerySpec& spec = FindQuery("q1");
  CompiledQuery sequential = engine.Compile(BuildQueryPlan(db, spec), nullptr, "q1_seq");
  engine.Execute(sequential);
  const uint64_t sequential_cycles = engine.last_cycles();

  CompiledQuery parallel =
      engine.Compile(BuildQueryPlan(db, spec), nullptr, "q1_par", ParallelOptions());
  ParallelConfig config;
  config.workers = 4;
  engine.ExecuteParallel(parallel, config);
  const uint64_t parallel_cycles = engine.last_cycles();

  // Acceptance bar for the morsel engine: at least 1.7x simulated-cycle speedup on a
  // scan-heavy query with 4 workers.
  EXPECT_GE(static_cast<double>(sequential_cycles),
            1.7 * static_cast<double>(parallel_cycles))
      << "sequential " << sequential_cycles << " vs 4-worker " << parallel_cycles;
}

TEST(ParallelTest, WorkerMetricsAccountForWallClock) {
  Database& db = *TpchDb();
  QueryEngine engine(&db);
  const QuerySpec& spec = FindQuery("q1");
  CompiledQuery parallel =
      engine.Compile(BuildQueryPlan(db, spec), nullptr, "q1_metrics", ParallelOptions());
  ParallelConfig config;
  config.workers = 4;
  engine.ExecuteParallel(parallel, config);

  const auto& metrics = engine.last_worker_metrics();
  ASSERT_EQ(metrics.size(), 4u);
  const uint64_t wall = engine.last_cycles();
  for (const WorkerMetrics& w : metrics) {
    // The final barrier aligns every worker to the wall clock, so busy + idle covers it.
    EXPECT_EQ(w.busy_cycles + w.idle_cycles, wall) << "worker " << w.worker_id;
    EXPECT_GT(w.busy_cycles, 0u) << "worker " << w.worker_id;
    EXPECT_GT(w.morsels, 0u) << "worker " << w.worker_id;
  }

  // Sequential execution leaves no per-worker metrics behind.
  CompiledQuery sequential = engine.Compile(BuildQueryPlan(db, spec), nullptr, "q1_seq2");
  engine.Execute(sequential);
  EXPECT_TRUE(engine.last_worker_metrics().empty());
}

TEST(ParallelTest, MergedSampleStreamIsDeterministic) {
  Database& db = *TpchDb();
  QueryEngine engine(&db);
  const QuerySpec& spec = FindQuery("q1");
  ProfilingConfig pconfig;
  pconfig.period = 311;
  ProfilingSession session(pconfig);
  CompiledQuery query =
      engine.Compile(BuildQueryPlan(db, spec), &session, "q1_prof", ParallelOptions());

  ParallelConfig config;
  config.workers = 4;
  auto dump = [&] {
    engine.ExecuteParallel(query, config);
    std::ostringstream out;
    WriteSamples(session.samples(), out);
    return out.str();
  };
  const std::string first = dump();
  const std::string second = dump();
  // Same compiled code, same schedule, same per-worker PMU phases: byte-identical streams.
  EXPECT_EQ(first, second);

  // The stream is TSC-sorted and genuinely multi-worker.
  EXPECT_EQ(session.worker_count(), 4u);
  bool beyond_worker0 = false;
  uint64_t prev_tsc = 0;
  for (const Sample& sample : session.samples()) {
    beyond_worker0 |= sample.worker_id > 0;
    EXPECT_LE(prev_tsc, sample.tsc);
    prev_tsc = sample.tsc;
  }
  EXPECT_TRUE(beyond_worker0);
}

TEST(ParallelTest, SerializationRoundTripsWorkerIds) {
  Database& db = *TpchDb();
  QueryEngine engine(&db);
  const QuerySpec& spec = FindQuery("q6");
  ProfilingConfig pconfig;
  pconfig.period = 311;
  ProfilingSession session(pconfig);
  CompiledQuery query =
      engine.Compile(BuildQueryPlan(db, spec), &session, "q6_prof", ParallelOptions());
  ParallelConfig config;
  config.workers = 3;
  engine.ExecuteParallel(query, config);
  ASSERT_FALSE(session.samples().empty());

  std::ostringstream out;
  WriteSamples(session.samples(), out);
  std::istringstream in(out.str());
  std::vector<Sample> reread = ReadSamples(in);
  ASSERT_EQ(reread.size(), session.samples().size());
  for (size_t i = 0; i < reread.size(); ++i) {
    EXPECT_EQ(reread[i].worker_id, session.samples()[i].worker_id) << "sample " << i;
    EXPECT_EQ(reread[i].tsc, session.samples()[i].tsc) << "sample " << i;
    EXPECT_EQ(reread[i].ip, session.samples()[i].ip) << "sample " << i;
  }

  // A reconstituted session recovers the pool size from the worker ids.
  ProfilingSession offline;
  std::ostringstream dict;
  WriteDictionary(session.dictionary(), dict);
  std::istringstream dict_in(dict.str());
  offline.LoadForPostProcessing(ReadDictionary(dict_in), std::move(reread),
                                session.execution_cycles());
  EXPECT_EQ(offline.worker_count(), 3u);
}

TEST(ParallelTest, AttributionMatchesSingleThreaded) {
  Database& db = *TpchDb();
  QueryEngine engine(&db);
  const QuerySpec& spec = FindQuery("q1");
  ProfilingConfig pconfig;
  pconfig.period = 311;

  ProfilingSession seq_session(pconfig);
  CompiledQuery sequential =
      engine.Compile(BuildQueryPlan(db, spec), &seq_session, "q1_seqprof");
  engine.Execute(sequential);
  seq_session.Resolve(db.code_map());
  AttributionStats seq_stats = seq_session.Stats();
  ASSERT_GT(seq_stats.total, 100u);

  ProfilingSession par_session(pconfig);
  CompiledQuery parallel = engine.Compile(BuildQueryPlan(db, spec), &par_session, "q1_parprof",
                                          ParallelOptions());
  ParallelConfig config;
  config.workers = 4;
  engine.ExecuteParallel(parallel, config);
  par_session.Resolve(db.code_map());
  AttributionStats par_stats = par_session.Stats();
  ASSERT_GT(par_stats.total, 100u);

  // Same query, same sampling period: the attributed fraction must agree within a percent —
  // the merged multi-worker stream loses nothing to parallelism.
  auto attributed = [](const AttributionStats& stats) {
    return static_cast<double>(stats.operator_samples + stats.kernel_samples) /
           static_cast<double>(stats.total);
  };
  EXPECT_NEAR(attributed(seq_stats), attributed(par_stats), 0.01);
  EXPECT_GT(attributed(par_stats), 0.9);
}

}  // namespace
}  // namespace dfp
