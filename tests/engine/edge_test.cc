// Engine edge cases: empty inputs, all-filtered pipelines, multi-key joins, string group keys,
// repeated self-joins, and degenerate limits — each checked against the Volcano oracle.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "src/engine/query_engine.h"
#include "src/interp/interpreter.h"
#include "src/plan/builder.h"
#include "src/util/random.h"

namespace dfp {
namespace {

class EdgeTest : public ::testing::Test {
 protected:
  EdgeTest() : engine(&db) {
    Random rng(99);
    {
      TableBuilder t = db.CreateTableBuilder({"empty_table",
                                              {{"a", ColumnType::kInt64},
                                               {"b", ColumnType::kDecimal}}});
      db.AddTable(t.Finish());
    }
    {
      TableBuilder t = db.CreateTableBuilder({"one_row", {{"a", ColumnType::kInt64}}});
      t.BeginRow();
      t.SetI64(0, 42);
      db.AddTable(t.Finish());
    }
    {
      TableBuilder t = db.CreateTableBuilder({"pairs",
                                              {{"x", ColumnType::kInt64},
                                               {"y", ColumnType::kInt64},
                                               {"tag", ColumnType::kString},
                                               {"v", ColumnType::kDecimal}}});
      for (int i = 0; i < 2000; ++i) {
        t.BeginRow();
        t.SetI64(0, rng.Uniform(0, 20));
        t.SetI64(1, rng.Uniform(0, 20));
        t.SetString(2, rng.Chance(0.5) ? "left" : "right");
        t.SetDecimal(3, rng.Uniform(-5000, 5000));
      }
      db.AddTable(t.Finish());
    }
  }

  void CheckAgainstOracle(PhysicalOpPtr plan, bool ordered, const char* name) {
    CompiledQuery query = engine.Compile(std::move(plan), nullptr, name);
    Result compiled = engine.Execute(query);
    Result reference = InterpretPlan(db, *query.plan);
    std::string diff;
    EXPECT_TRUE(Result::Equivalent(compiled, reference, ordered, &diff)) << name << ": " << diff;
  }

  Database db;
  QueryEngine engine;
};

TEST_F(EdgeTest, ScanOfEmptyTable) {
  PlanBuilder plan = PlanBuilder::Scan(db.table("empty_table"));
  CheckAgainstOracle(plan.Build(), true, "empty_scan");
}

TEST_F(EdgeTest, GroupByOverEmptyInputYieldsNoGroups) {
  PlanBuilder plan = PlanBuilder::Scan(db.table("empty_table"));
  plan.GroupByKeys({"a"}, NamedExprs("s", MakeAggregate(AggOp::kSum, plan.Col("b"))));
  CompiledQuery query = engine.Compile(plan.Build(), nullptr, "empty_group");
  EXPECT_EQ(engine.Execute(query).row_count(), 0u);
}

TEST_F(EdgeTest, JoinWithEmptyBuildSide) {
  PlanBuilder build = PlanBuilder::Scan(db.table("empty_table"));
  PlanBuilder probe = PlanBuilder::Scan(db.table("pairs"));
  probe.JoinWith(std::move(build), {"x"}, {"a"}, {"b"});
  CheckAgainstOracle(probe.Build(), false, "empty_build");
}

TEST_F(EdgeTest, AntiJoinWithEmptyBuildSideKeepsEverything) {
  PlanBuilder build = PlanBuilder::Scan(db.table("empty_table"));
  PlanBuilder probe = PlanBuilder::Scan(db.table("pairs"));
  probe.JoinWith(std::move(build), {"x"}, {"a"}, {}, JoinType::kAnti);
  CompiledQuery query = engine.Compile(probe.Build(), nullptr, "anti_empty");
  EXPECT_EQ(engine.Execute(query).row_count(), db.table("pairs").row_count());
}

TEST_F(EdgeTest, FilterEliminatingEverything) {
  PlanBuilder plan = PlanBuilder::Scan(db.table("pairs"));
  plan.FilterBy(MakeBinary(BinOp::kGt, plan.Col("x"), MakeLiteral(ColumnType::kInt64, 1000)));
  plan.GroupByKeys({"y"}, NamedExprs("n", MakeAggregate(AggOp::kCountStar, nullptr)));
  CheckAgainstOracle(plan.Build(), false, "filter_all");
}

TEST_F(EdgeTest, MultiKeyJoin) {
  PlanBuilder build = PlanBuilder::Scan(db.table("pairs"));
  build.FilterBy(MakeBinary(BinOp::kEq, build.Col("tag"),
                            MakeLiteral(ColumnType::kString,
                                        static_cast<int64_t>(db.strings().Intern("left")))));
  PlanBuilder probe = PlanBuilder::Scan(db.table("pairs"));
  probe.JoinWith(std::move(build), {"x", "y"}, {"x", "y"}, {"v"});
  probe.GroupByKeys({"x"}, NamedExprs("total", MakeAggregate(AggOp::kSum, probe.Col("v"))));
  CheckAgainstOracle(probe.Build(), false, "multikey");
}

TEST_F(EdgeTest, StringGroupKeys) {
  PlanBuilder plan = PlanBuilder::Scan(db.table("pairs"));
  plan.GroupByKeys({"tag"}, NamedExprs("n", MakeAggregate(AggOp::kCountStar, nullptr), "avg_v",
                                       MakeAggregate(AggOp::kAvg, plan.Col("v"))));
  CheckAgainstOracle(plan.Build(), false, "string_keys");
}

TEST_F(EdgeTest, SelfJoinTwice) {
  // pairs joined with itself twice through different keys: three scans of one table.
  PlanBuilder first = PlanBuilder::Scan(db.table("pairs"));
  PlanBuilder second = PlanBuilder::Scan(db.table("pairs"));
  PlanBuilder probe = PlanBuilder::Scan(db.table("one_row"));
  // one_row.a = 42 never matches x in [0,20]: exercises fully-missing probes through two joins.
  probe.JoinWith(std::move(first), {"a"}, {"x"}, {"v"});
  probe.JoinWith(std::move(second), {"a"}, {"y"}, {"tag"});
  CheckAgainstOracle(probe.Build(), false, "self_join");
}

TEST_F(EdgeTest, SortEmptyAndSingleRow) {
  {
    PlanBuilder plan = PlanBuilder::Scan(db.table("empty_table"));
    plan.OrderBy({{"a", false}});
    CheckAgainstOracle(plan.Build(), true, "sort_empty");
  }
  {
    PlanBuilder plan = PlanBuilder::Scan(db.table("one_row"));
    plan.OrderBy({{"a", true}});
    CheckAgainstOracle(plan.Build(), true, "sort_one");
  }
}

TEST_F(EdgeTest, SortByStringAndDecimal) {
  PlanBuilder plan = PlanBuilder::Scan(db.table("pairs"));
  plan.OrderBy({{"tag", false}, {"v", true}, {"x", false}, {"y", false}});
  CheckAgainstOracle(plan.Build(), true, "sort_multi");
}

TEST_F(EdgeTest, LimitLargerThanInput) {
  PlanBuilder plan = PlanBuilder::Scan(db.table("one_row"));
  plan.LimitTo(100);
  CompiledQuery query = engine.Compile(plan.Build(), nullptr, "big_limit");
  EXPECT_EQ(engine.Execute(query).row_count(), 1u);
}

TEST_F(EdgeTest, TopKLargerThanInput) {
  PlanBuilder plan = PlanBuilder::Scan(db.table("pairs"));
  plan.OrderBy({{"v", false}}, /*limit=*/100000);
  CheckAgainstOracle(plan.Build(), true, "big_topk");
}

TEST_F(EdgeTest, GroupJoinWithUnmatchedGroupsYieldsNaNAverages) {
  // one_row (a=42) never matches pairs.x: the single group has count 0 and a NaN average,
  // identically in compiled and interpreted execution.
  PlanBuilder build = PlanBuilder::Scan(db.table("one_row"));
  PlanBuilder probe = PlanBuilder::Scan(db.table("pairs"));
  probe.GroupJoinWith(std::move(build), {"x"}, {"a"}, {"a"},
                      NamedExprs("avg_v", MakeAggregate(AggOp::kAvg, probe.Col("v"))));
  CompiledQuery query = engine.Compile(probe.Build(), nullptr, "nan_group");
  Result compiled = engine.Execute(query);
  ASSERT_EQ(compiled.row_count(), 1u);
  EXPECT_TRUE(std::isnan(std::bit_cast<double>(static_cast<uint64_t>(compiled.at(0, 1)))));
  Result reference = InterpretPlan(db, *query.plan);
  std::string diff;
  EXPECT_TRUE(Result::Equivalent(compiled, reference, false, &diff)) << diff;
}

TEST_F(EdgeTest, ChainedMapsAndProjections) {
  PlanBuilder plan = PlanBuilder::Scan(db.table("pairs"));
  plan.MapTo(NamedExprs("sum_xy", MakeBinary(BinOp::kAdd, plan.Col("x"), plan.Col("y"))));
  plan.MapTo(NamedExprs("sq", MakeBinary(BinOp::kMul, plan.Col("sum_xy"), plan.Col("sum_xy"))));
  plan.Project({"sq", "tag"});
  plan.MapTo(NamedExprs("neg", MakeUnary(UnOp::kNeg, plan.Col("sq"))));
  CheckAgainstOracle(plan.Build(), true, "chained_maps");
}

}  // namespace
}  // namespace dfp
