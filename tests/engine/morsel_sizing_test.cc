// Edge cases of the automatic morsel sizing heuristic (ResolveMorselRows): unknown or zero
// cardinality estimates, tables smaller than one morsel, the tail-balance cap boundary, and the
// clamps at both ends. The heuristic only reads the source operator's estimate and the compiled
// pipeline's machine instruction count, so the fixtures are built by hand.
#include <gtest/gtest.h>

#include "src/engine/parallel.h"
#include "src/plan/physical.h"

namespace dfp {
namespace {

struct SizingFixture {
  PhysicalOp op;
  PipelineArtifact artifact{IrFunction("sizing_test", 0)};

  SizingFixture(double estimated_rows, uint32_t machine_instrs) {
    op.estimated_rows = estimated_rows;
    PipelineStep step;
    step.role = PipelineStep::Role::kScanSource;
    step.op = &op;
    artifact.pipeline.steps.push_back(step);
    artifact.stats.machine_instrs = machine_instrs;
  }
};

TEST(MorselSizing, FixedSizeOverridesHeuristic) {
  SizingFixture fixture(/*estimated_rows=*/1e6, /*machine_instrs=*/100);
  ParallelConfig config;
  config.morsel_rows = 777;
  EXPECT_EQ(ResolveMorselRows(config, fixture.artifact, 1000000, 4), 777u);
  // Even outside the auto-sizing clamps: a forced size is taken literally.
  config.morsel_rows = 7;
  EXPECT_EQ(ResolveMorselRows(config, fixture.artifact, 1000000, 4), 7u);
}

TEST(MorselSizing, ZeroEstimateFallsBackToTrueRowCount) {
  // An optimizer estimate of 0 (unknown) must not collapse the morsel size to the minimum when
  // the scan itself is large: the true row count takes over.
  SizingFixture unknown(/*estimated_rows=*/0, /*machine_instrs=*/1200);
  SizingFixture known(/*estimated_rows=*/100000, /*machine_instrs=*/1200);
  ParallelConfig config;
  EXPECT_EQ(ResolveMorselRows(config, unknown.artifact, 100000, 4),
            ResolveMorselRows(config, known.artifact, 100000, 4));
}

TEST(MorselSizing, EmptyScanWithUnknownEstimateGivesMinimumMorsel) {
  // Nothing to size against: both the estimate and the table are empty. The result must still
  // be a legal morsel size (the lower clamp), not zero or a division artifact.
  SizingFixture fixture(/*estimated_rows=*/0, /*machine_instrs=*/0);
  ParallelConfig config;
  EXPECT_EQ(ResolveMorselRows(config, fixture.artifact, 0, 4), 64u);
}

TEST(MorselSizing, TableSmallerThanOneMorselClampsToMinimum) {
  // A 100-row table can never fill the 64-row minimum morsel per worker; the tail-balance cap
  // would ask for 3-row morsels, but the lower clamp wins — one or two morsels total is fine
  // for a scan this small.
  SizingFixture fixture(/*estimated_rows=*/100, /*machine_instrs=*/400);
  ParallelConfig config;
  EXPECT_EQ(ResolveMorselRows(config, fixture.artifact, 100, 4), 64u);
}

TEST(MorselSizing, TailBalanceCapBoundsMorselsPerWorker) {
  // machine_instrs = 1200 gives 600 estimated cycles/row, so the amortization target is
  // exactly 100 rows. The cap est/(8*workers) crosses 100 at est = 3200 (4 workers): above the
  // boundary amortization wins, below it the cap shrinks morsels to keep ~8 per worker.
  ParallelConfig config;
  {
    SizingFixture at_boundary(/*estimated_rows=*/3200, /*machine_instrs=*/1200);
    EXPECT_EQ(ResolveMorselRows(config, at_boundary.artifact, 3200, 4), 100u);
  }
  {
    SizingFixture below_boundary(/*estimated_rows=*/3168, /*machine_instrs=*/1200);
    EXPECT_EQ(ResolveMorselRows(config, below_boundary.artifact, 3168, 4), 99u);
  }
  {
    SizingFixture above_boundary(/*estimated_rows=*/100000, /*machine_instrs=*/1200);
    EXPECT_EQ(ResolveMorselRows(config, above_boundary.artifact, 100000, 4), 1562u);
  }
}

TEST(MorselSizing, HugeCheapScanClampsToMaximum) {
  // A cheap per-row path over a huge estimate asks for multi-million-row morsels; the upper
  // clamp keeps the schedule responsive.
  SizingFixture fixture(/*estimated_rows=*/1e8, /*machine_instrs=*/16);
  ParallelConfig config;
  EXPECT_EQ(ResolveMorselRows(config, fixture.artifact, 100000000, 4), uint64_t{1} << 16);
}

TEST(MorselSizing, MoreWorkersShrinkTheCap) {
  // The tail-balance cap scales with the pool: the same scan gets finer morsels on a larger
  // pool so every worker still sees several.
  SizingFixture fixture(/*estimated_rows=*/40000, /*machine_instrs=*/1200);
  ParallelConfig config;
  const uint64_t at4 = ResolveMorselRows(config, fixture.artifact, 40000, 4);
  const uint64_t at16 = ResolveMorselRows(config, fixture.artifact, 40000, 16);
  EXPECT_GT(at4, at16);
  EXPECT_GE(at16, 64u);
}

}  // namespace
}  // namespace dfp
