#include <gtest/gtest.h>

#include "src/pmu/pmu.h"

namespace dfp {
namespace {

TEST(Pmu, CountsAllEventsRegardlessOfArming) {
  Pmu pmu;
  pmu.Tick(PmuEvent::kInstrRetired, 10);
  pmu.Tick(PmuEvent::kLoads, 3);
  EXPECT_EQ(pmu.counters()[PmuEvent::kInstrRetired], 10u);
  EXPECT_EQ(pmu.counters()[PmuEvent::kLoads], 3u);
}

TEST(Pmu, SamplingFiresAtPeriod) {
  Pmu pmu;
  SamplingConfig config;
  config.enabled = true;
  config.event = PmuEvent::kInstrRetired;
  config.period = 100;
  pmu.Configure(config);
  int fired = 0;
  for (int i = 0; i < 1000; ++i) {
    fired += pmu.Tick(PmuEvent::kInstrRetired);
  }
  EXPECT_EQ(fired, 10);
}

TEST(Pmu, DisabledSamplingNeverFires) {
  Pmu pmu;
  for (int i = 0; i < 10000; ++i) {
    EXPECT_FALSE(pmu.Tick(PmuEvent::kInstrRetired));
  }
}

TEST(Pmu, OnlyArmedEventTriggers) {
  Pmu pmu;
  SamplingConfig config;
  config.enabled = true;
  config.event = PmuEvent::kLoads;
  config.period = 10;
  pmu.Configure(config);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(pmu.Tick(PmuEvent::kInstrRetired));
  }
  int fired = 0;
  for (int i = 0; i < 100; ++i) {
    fired += pmu.Tick(PmuEvent::kLoads);
  }
  EXPECT_EQ(fired, 10);
}

TEST(Pmu, RecordCostsGrowWithCapturedState) {
  PmuCosts costs;
  Pmu base(costs);
  SamplingConfig config;
  config.enabled = true;
  base.Configure(config);
  uint64_t plain = base.Record(Sample{});

  SamplingConfig reg_config = config;
  reg_config.capture_registers = true;
  Pmu with_regs(costs);
  with_regs.Configure(reg_config);
  uint64_t with_registers = with_regs.Record(Sample{});

  SamplingConfig stack_config = config;
  stack_config.capture_callstack = true;
  Pmu with_stack(costs);
  with_stack.Configure(stack_config);
  Sample stack_sample;
  stack_sample.callstack = {1, 2, 3};
  uint64_t with_callstack = with_stack.Record(std::move(stack_sample));

  EXPECT_LT(plain, with_registers);
  EXPECT_LT(with_registers, with_callstack);
  EXPECT_GT(with_callstack, 10 * with_registers);  // Order-of-magnitude gap, as in the paper.
}

TEST(Pmu, BufferFlushChargedPeriodically) {
  PmuCosts costs;
  costs.buffer_capacity = 4;
  Pmu pmu(costs);
  SamplingConfig config;
  config.enabled = true;
  pmu.Configure(config);
  uint64_t total = 0;
  for (int i = 0; i < 8; ++i) {
    total += pmu.Record(Sample{});
  }
  EXPECT_EQ(total, 8 * costs.record_base + 2 * costs.flush_cost);
}

TEST(Pmu, SampleBytesAccounting) {
  SamplingConfig config;
  EXPECT_EQ(config.SampleBytes(), 16u);
  config.capture_address = true;
  EXPECT_EQ(config.SampleBytes(), 24u);
  config.capture_registers = true;
  EXPECT_EQ(config.SampleBytes(), 24u + 128u);
  config.capture_callstack = true;
  EXPECT_EQ(config.SampleBytes(5), 24u + 128u + 8u + 40u);
}

TEST(Pmu, TakeSamplesDrains) {
  Pmu pmu;
  SamplingConfig config;
  config.enabled = true;
  pmu.Configure(config);
  pmu.Record(Sample{});
  pmu.Record(Sample{});
  EXPECT_EQ(pmu.TakeSamples().size(), 2u);
  EXPECT_TRUE(pmu.samples().empty());
}

}  // namespace
}  // namespace dfp
