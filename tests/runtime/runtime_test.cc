#include <gtest/gtest.h>

#include <map>

#include "src/backend/compiler.h"
#include "src/ir/builder.h"
#include "src/runtime/hashtable.h"
#include "src/runtime/runtime.h"
#include "src/storage/stringheap.h"
#include "src/util/hash.h"
#include "src/util/random.h"
#include "src/vcpu/cpu.h"

namespace dfp {
namespace {

class RuntimeTest : public ::testing::Test {
 protected:
  RuntimeTest() : mem(64ull << 20) {
    ht_region = mem.CreateRegion("hashtables", 16ull << 20);
    string_region = mem.CreateRegion("strings", 1ull << 20);
    runtime = std::make_unique<Runtime>(&mem, &code_map, ht_region);
  }

  Cpu MakeCpu() { return Cpu(mem, code_map, pmu); }

  VMem mem;
  CodeMap code_map;
  Pmu pmu;
  uint32_t ht_region = 0;
  uint32_t string_region = 0;
  std::unique_ptr<Runtime> runtime;
};

TEST_F(RuntimeTest, InsertLinksEntriesAndCounts) {
  VAddr table = CreateHashTable(mem, ht_region, 64, 16);
  Cpu cpu = MakeCpu();
  std::map<uint64_t, VAddr> inserted;
  for (uint64_t key = 0; key < 50; ++key) {
    uint64_t hash = HashKey(key);
    uint64_t args[] = {table, hash};
    VAddr entry = cpu.CallFunction(runtime->ht_insert_fn(), args);
    ASSERT_NE(entry, 0u);
    // Payload: store the key so we can validate chains later.
    mem.Write<uint64_t>(entry + kHtEntryPayload, key);
    inserted[hash] = entry;
  }
  HashTableView view(mem, table);
  EXPECT_EQ(view.count(), 50u);
  EXPECT_EQ(view.Entries().size(), 50u);
  for (const auto& [hash, entry] : inserted) {
    std::vector<VAddr> chain = view.Chain(hash);
    EXPECT_NE(std::find(chain.begin(), chain.end(), entry), chain.end());
  }
}

TEST_F(RuntimeTest, LookupFindsInsertedHashes) {
  VAddr table = CreateHashTable(mem, ht_region, 32, 8);
  Cpu cpu = MakeCpu();
  for (uint64_t key = 100; key < 120; ++key) {
    uint64_t args[] = {table, HashKey(key)};
    VAddr entry = cpu.CallFunction(runtime->ht_insert_fn(), args);
    mem.Write<uint64_t>(entry + kHtEntryPayload, key);
  }
  for (uint64_t key = 100; key < 120; ++key) {
    uint64_t args[] = {table, HashKey(key)};
    VAddr entry = cpu.CallFunction(runtime->ht_lookup_fn(), args);
    ASSERT_NE(entry, 0u) << key;
    EXPECT_EQ(mem.Read<uint64_t>(entry + kHtEntryHash), HashKey(key));
  }
  uint64_t missing[] = {table, HashKey(9999)};
  EXPECT_EQ(cpu.CallFunction(runtime->ht_lookup_fn(), missing), 0u);
}

TEST_F(RuntimeTest, GrowthExtendsCapacity) {
  VAddr table = CreateHashTable(mem, ht_region, 4, 8);  // Tiny: forces growth.
  Cpu cpu = MakeCpu();
  for (uint64_t key = 0; key < 100; ++key) {
    uint64_t args[] = {table, HashKey(key)};
    ASSERT_NE(cpu.CallFunction(runtime->ht_insert_fn(), args), 0u);
  }
  HashTableView view(mem, table);
  EXPECT_EQ(view.count(), 100u);
  // Every inserted hash must still be reachable through its chain.
  for (uint64_t key = 0; key < 100; ++key) {
    uint64_t args[] = {table, HashKey(key)};
    EXPECT_NE(cpu.CallFunction(runtime->ht_lookup_fn(), args), 0u) << key;
  }
}

TEST_F(RuntimeTest, InsertPreservesTagRegister) {
  // A sample inside rt_ht_insert must observe the caller's tag: the compiled function may not
  // clobber r15. Call insert from a wrapper that sets a tag and returns it afterwards.
  VAddr table = CreateHashTable(mem, ht_region, 8, 8);
  IrFunction wrapper("wrapper", 2);
  IrIdAllocator ids;
  IrBuilder b(&wrapper, &ids);
  b.SetInsertPoint(b.CreateBlock("entry"));
  b.SetTag(Value::Imm(777));
  b.Call(runtime->ht_insert_fn(), {Value::Reg(0), Value::Reg(1)}, /*has_result=*/true);
  uint32_t tag = b.GetTag();
  b.Ret(Value::Reg(tag));
  CompileOptions options;
  options.reserve_tag_register = true;
  EmittedFunction emitted = CompileFunction(wrapper, options);
  uint32_t segment = code_map.AddSegment(SegmentKind::kGenerated, "wrapper", std::move(emitted.code));
  uint32_t fn = code_map.AddFunction("wrapper", segment, 0, emitted.spill_slots, 2);
  Cpu cpu = MakeCpu();
  uint64_t args[] = {table, HashKey(1)};
  EXPECT_EQ(cpu.CallFunction(fn, args), 777u);
}

TEST_F(RuntimeTest, SortOrdersRowsByIntKey) {
  uint32_t scratch = mem.CreateRegion("scratch", 1 << 20);
  const uint64_t rows = 200;
  const uint64_t row_size = 16;  // [key i64][payload i64]
  VAddr buffer = mem.Alloc(scratch, rows * row_size);
  Random rng(3);
  for (uint64_t i = 0; i < rows; ++i) {
    mem.Write<int64_t>(buffer + i * row_size, rng.Uniform(-1000, 1000));
    mem.Write<int64_t>(buffer + i * row_size + 8, static_cast<int64_t>(i));
  }
  SortSpec spec;
  spec.row_size = row_size;
  spec.keys = {{0, ColumnType::kInt64, false}};
  uint32_t spec_id = runtime->RegisterSortSpec(spec);
  Cpu cpu = MakeCpu();
  uint64_t args[] = {buffer, rows, spec_id};
  cpu.CallFunction(runtime->sort_fn(), args);
  for (uint64_t i = 1; i < rows; ++i) {
    EXPECT_LE(mem.Read<int64_t>(buffer + (i - 1) * row_size), mem.Read<int64_t>(buffer + i * row_size));
  }
  EXPECT_GT(cpu.tsc(), 0u);
}

TEST_F(RuntimeTest, SortDescendingAndSecondaryKey) {
  uint32_t scratch = mem.CreateRegion("scratch2", 1 << 20);
  const uint64_t rows = 50;
  const uint64_t row_size = 16;
  VAddr buffer = mem.Alloc(scratch, rows * row_size);
  Random rng(5);
  for (uint64_t i = 0; i < rows; ++i) {
    mem.Write<int64_t>(buffer + i * row_size, rng.Uniform(0, 5));
    mem.Write<int64_t>(buffer + i * row_size + 8, rng.Uniform(0, 100));
  }
  SortSpec spec;
  spec.row_size = row_size;
  spec.keys = {{0, ColumnType::kInt64, true}, {8, ColumnType::kInt64, false}};
  uint32_t spec_id = runtime->RegisterSortSpec(spec);
  Cpu cpu = MakeCpu();
  uint64_t args[] = {buffer, rows, spec_id};
  cpu.CallFunction(runtime->sort_fn(), args);
  for (uint64_t i = 1; i < rows; ++i) {
    int64_t prev_key = mem.Read<int64_t>(buffer + (i - 1) * row_size);
    int64_t key = mem.Read<int64_t>(buffer + i * row_size);
    EXPECT_GE(prev_key, key);
    if (prev_key == key) {
      EXPECT_LE(mem.Read<int64_t>(buffer + (i - 1) * row_size + 8),
                mem.Read<int64_t>(buffer + i * row_size + 8));
    }
  }
}

TEST_F(RuntimeTest, StringCompareAndLike) {
  StringHeap heap(&mem, string_region);
  uint64_t apple = heap.Intern("apple");
  uint64_t banana = heap.Intern("banana");
  uint64_t chip = heap.Intern("microchip");
  Cpu cpu = MakeCpu();
  uint64_t ab[] = {apple, banana};
  EXPECT_EQ(static_cast<int64_t>(cpu.CallFunction(runtime->str_cmp_fn(), ab)), -1);
  uint64_t ba[] = {banana, apple};
  EXPECT_EQ(static_cast<int64_t>(cpu.CallFunction(runtime->str_cmp_fn(), ba)), 1);
  uint64_t aa[] = {apple, apple};
  EXPECT_EQ(cpu.CallFunction(runtime->str_cmp_fn(), aa), 0u);

  uint32_t pattern = runtime->RegisterPattern("%chip%");
  uint64_t like_args[] = {chip, pattern};
  EXPECT_EQ(cpu.CallFunction(runtime->str_like_fn(), like_args), 1u);
  uint64_t not_args[] = {apple, pattern};
  EXPECT_EQ(cpu.CallFunction(runtime->str_like_fn(), not_args), 0u);
}

TEST_F(RuntimeTest, SyslibSamplesLandInSyslibSegment) {
  StringHeap heap(&mem, string_region);
  uint64_t s = heap.Intern("some-longer-string-for-cost");
  SamplingConfig config;
  config.enabled = true;
  config.period = 5;
  pmu.Configure(config);
  Cpu cpu = MakeCpu();
  uint32_t pattern = runtime->RegisterPattern("%x%");
  for (int i = 0; i < 100; ++i) {
    uint64_t args[] = {s, pattern};
    cpu.CallFunction(runtime->str_like_fn(), args);
  }
  ASSERT_FALSE(pmu.samples().empty());
  int syslib_samples = 0;
  for (const Sample& sample : pmu.samples()) {
    const CodeSegment* segment = code_map.FindByIp(sample.ip);
    ASSERT_NE(segment, nullptr);
    if (segment->kind == SegmentKind::kSyslib) {
      ++syslib_samples;
    }
  }
  EXPECT_GT(syslib_samples, 0);
}

}  // namespace
}  // namespace dfp
