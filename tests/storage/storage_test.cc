#include <gtest/gtest.h>

#include "src/storage/stringheap.h"
#include "src/storage/table.h"
#include "src/util/date.h"
#include "src/util/decimal.h"

namespace dfp {
namespace {

class StorageTest : public ::testing::Test {
 protected:
  StorageTest() : mem(16ull << 20) {
    columns = mem.CreateRegion("columns", 8ull << 20);
    strings = mem.CreateRegion("strings", 1ull << 20);
    heap = std::make_unique<StringHeap>(&mem, strings);
  }

  VMem mem;
  uint32_t columns = 0;
  uint32_t strings = 0;
  std::unique_ptr<StringHeap> heap;
};

TEST_F(StorageTest, StringHeapInternsAndReads) {
  uint64_t a = heap->Intern("hello");
  uint64_t b = heap->Intern("world");
  uint64_t a2 = heap->Intern("hello");
  EXPECT_EQ(a, a2);  // Interned: same packed reference.
  EXPECT_NE(a, b);
  EXPECT_EQ(heap->Get(a), "hello");
  EXPECT_EQ(heap->Get(b), "world");
  EXPECT_EQ(StringRefLen(a), 5u);
  EXPECT_EQ(heap->interned_count(), 2u);
}

TEST_F(StorageTest, EmptyStringHasValidRef) {
  uint64_t e = heap->Intern("");
  EXPECT_EQ(StringRefLen(e), 0u);
  EXPECT_EQ(heap->Get(e), "");
}

TEST_F(StorageTest, TableBuilderRoundTrip) {
  TableSchema schema{"sales",
                     {{"id", ColumnType::kInt64},
                      {"price", ColumnType::kDecimal},
                      {"day", ColumnType::kDate},
                      {"note", ColumnType::kString},
                      {"ratio", ColumnType::kDouble}}};
  TableBuilder builder(schema, &mem, columns, heap.get());
  for (int i = 0; i < 100; ++i) {
    builder.BeginRow();
    builder.SetI64(0, i);
    builder.SetDecimal(1, MakeDecimal(10 + i, 25));
    builder.SetDate(2, DateFromYmd(1995, 4, 1) + i);
    builder.SetString(3, i % 2 == 0 ? "even" : "odd");
    builder.SetDouble(4, i * 0.5);
  }
  Table table = builder.Finish();
  EXPECT_EQ(table.row_count(), 100u);
  EXPECT_EQ(table.Get(mem, 0, 42), 42);
  EXPECT_EQ(table.Get(mem, 1, 42), MakeDecimal(52, 25));
  EXPECT_EQ(table.Get(mem, 2, 42), DateFromYmd(1995, 4, 1) + 42);
  EXPECT_EQ(heap->Get(static_cast<uint64_t>(table.Get(mem, 3, 42))), "even");
  EXPECT_DOUBLE_EQ(std::bit_cast<double>(static_cast<uint64_t>(table.Get(mem, 4, 42))), 21.0);
}

TEST_F(StorageTest, DateColumnsAreFourBytes) {
  TableSchema schema{"t", {{"d", ColumnType::kDate}, {"x", ColumnType::kInt64}}};
  TableBuilder builder(schema, &mem, columns, heap.get());
  for (int i = 0; i < 10; ++i) {
    builder.BeginRow();
    builder.SetDate(0, 1000 + i);
    builder.SetI64(1, i);
  }
  Table table = builder.Finish();
  // Physical stride of the date column is 4 bytes.
  EXPECT_EQ(mem.Read<int32_t>(table.column_base(0)), 1000);
  EXPECT_EQ(mem.Read<int32_t>(table.column_base(0) + 4), 1001);
}

TEST_F(StorageTest, StringEqualityIsPayloadEquality) {
  TableSchema schema{"t", {{"s", ColumnType::kString}}};
  TableBuilder builder(schema, &mem, columns, heap.get());
  builder.BeginRow();
  builder.SetString(0, "chip");
  builder.BeginRow();
  builder.SetString(0, "chip");
  builder.BeginRow();
  builder.SetString(0, "other");
  Table table = builder.Finish();
  EXPECT_EQ(table.Get(mem, 0, 0), table.Get(mem, 0, 1));
  EXPECT_NE(table.Get(mem, 0, 0), table.Get(mem, 0, 2));
}

TEST_F(StorageTest, SchemaFindColumn) {
  TableSchema schema{"t", {{"a", ColumnType::kInt64}, {"b", ColumnType::kDate}}};
  EXPECT_EQ(schema.FindColumn("a"), 0);
  EXPECT_EQ(schema.FindColumn("b"), 1);
  EXPECT_EQ(schema.FindColumn("missing"), -1);
}

}  // namespace
}  // namespace dfp
