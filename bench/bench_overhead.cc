// Reproduces Figure 13: profiling overhead vs. sampling frequency for the three capture
// configurations (IP+Callstack, IP+Time, IP+Time+Registers), plus the paper's headline numbers
// at the default 5000-event period (35% / 38% / 529%).
#include "bench/common.h"
#include "src/util/table_printer.h"
#include "src/vcpu/cost_model.h"

namespace dfp {
namespace {

uint64_t RunOnce(QueryEngine& engine, Database& db, ProfilingSession* session) {
  CompiledQuery query = engine.Compile(BuildFig9Plan(db), session, "overhead");
  engine.Execute(query);
  return engine.last_cycles();
}

int Main() {
  PrintHeader("Profiling overhead vs. sampling frequency", "Figure 13 + Section 6.2 numbers");
  std::unique_ptr<Database> db = MakeTpchDatabase(BenchScale());
  QueryEngine engine(db.get());

  // Baseline: no profiling at all.
  const uint64_t baseline = RunOnce(engine, *db, nullptr);
  std::printf("\nBaseline (no profiling): %llu cycles = %.2f ms simulated\n",
              static_cast<unsigned long long>(baseline), CyclesToMs(baseline));

  struct Mode {
    const char* name;
    AttributionMode attribution;
  };
  const Mode kModes[] = {
      {"IP, Callstack", AttributionMode::kCallStack},
      {"IP, Time", AttributionMode::kNone},
      {"IP, Time, Registers", AttributionMode::kRegisterTagging},
  };

  // Sampling frequency = clock / period (events approximate cycles at IPC ~ 1).
  const uint64_t kPeriods[] = {420000, 140000, 42000, 14000, 5000, 4200};

  TablePrinter table({"Frequency", "Period", "IP, Callstack", "IP, Time",
                      "IP, Time, Registers"});
  for (size_t c = 1; c <= 4; ++c) {
    table.SetRightAlign(c, true);
  }
  for (uint64_t period : kPeriods) {
    std::vector<std::string> row;
    double freq_khz = kClockGhz * 1e6 / static_cast<double>(period);
    row.push_back(freq_khz >= 1000 ? StrFormat("%.2f MHz", freq_khz / 1000)
                                   : StrFormat("%.0f kHz", freq_khz));
    row.push_back(StrFormat("%llu", static_cast<unsigned long long>(period)));
    for (const Mode& mode : kModes) {
      ProfilingConfig config;
      config.period = period;
      config.attribution = mode.attribution;
      ProfilingSession session(config);
      uint64_t cycles = RunOnce(engine, *db, &session);
      double overhead = static_cast<double>(cycles) / static_cast<double>(baseline) - 1.0;
      row.push_back(StrFormat("%.1f%%", overhead * 100));
    }
    table.AddRow(std::move(row));
  }
  std::printf("\nOverhead relative to the unprofiled run:\n%s\n", table.Render().c_str());

  std::printf(
      "Paper reference points at period 5000 (~0.8 MHz): IP+Time 35%%, IP+Time+Registers 38%%\n"
      "(+3%% for register capture), IP+Callstack 529%%. The shapes to check: overhead grows\n"
      "linearly with frequency, registers add a few percent, call-stack sampling is an order\n"
      "of magnitude costlier.\n");

  // Measured (not estimated) sampling cost: the PMU reports exactly the capture and flush
  // cycles it charged to the simulated TSC — the same counters the adaptive sampling governor
  // budgets against. Cross-check: measured cycles must equal the end-to-end delta vs. the
  // unprofiled baseline (IP+Time mode has no other source of overhead).
  std::printf("--- Measured sampling cost (IP, Time): PMU-charged capture/flush cycles ---\n");
  TablePrinter measured({"Period", "Samples", "Capture cyc", "Flush cyc", "Measured", "Delta"});
  for (size_t c = 0; c <= 5; ++c) {
    measured.SetRightAlign(c, true);
  }
  bool measured_matches = true;
  for (uint64_t period : kPeriods) {
    ProfilingConfig config;
    config.period = period;
    config.attribution = AttributionMode::kNone;
    ProfilingSession session(config);
    const uint64_t cycles = RunOnce(engine, *db, &session);
    const SamplingOverhead& overhead = engine.last_sampling_overhead();
    const uint64_t delta = cycles - baseline;
    measured_matches &= overhead.total_cycles() == delta;
    measured.AddRow({StrFormat("%llu", static_cast<unsigned long long>(period)),
                     StrFormat("%llu", static_cast<unsigned long long>(overhead.samples)),
                     StrFormat("%llu", static_cast<unsigned long long>(overhead.capture_cycles)),
                     StrFormat("%llu", static_cast<unsigned long long>(overhead.flush_cycles)),
                     StrFormat("%llu", static_cast<unsigned long long>(overhead.total_cycles())),
                     StrFormat("%llu", static_cast<unsigned long long>(delta))});
  }
  std::printf("%s\nmeasured == end-to-end delta: %s\n", measured.Render().c_str(),
              measured_matches ? "[ok]" : "[FAIL]");
  return measured_matches ? 0 : 1;
}

}  // namespace
}  // namespace dfp

int main(int argc, char** argv) {
  dfp::BenchInit(argc, argv);
  return dfp::Main();
}
