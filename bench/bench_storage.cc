// Reproduces the Section 6.2 storage-overhead measurements: bytes per sample under each capture
// configuration, sample data rate at the default frequency, and Tagging Dictionary sizes
// (the paper: 54 B / 265 B samples, 77 MB/s at 0.7 MHz, ~24 B per dictionary entry, ~1320 IR
// instructions per TPC-H query, ~30 kB dictionary).
#include "bench/common.h"
#include "src/util/table_printer.h"
#include "src/vcpu/cost_model.h"

namespace dfp {
namespace {

int Main() {
  PrintHeader("Storage overhead of samples and the Tagging Dictionary", "Section 6.2");
  std::unique_ptr<Database> db = MakeTpchDatabase(BenchScale(0.005));
  QueryEngine engine(db.get());

  // --- Sample sizes per configuration ---
  {
    TablePrinter table({"Configuration", "Bytes/sample", "MB/s at 0.84 MHz"});
    table.SetRightAlign(1, true);
    table.SetRightAlign(2, true);
    struct Config {
      const char* name;
      bool addr;
      bool regs;
      bool stack;
      uint64_t depth;
    };
    const Config kConfigs[] = {
        {"IP, Time", false, false, false, 0},
        {"IP, Time, Address", true, false, false, 0},
        {"IP, Time, Registers", false, true, false, 0},
        {"IP, Time, Callstack(d=6)", false, false, true, 6},
    };
    const double samples_per_second = kClockGhz * 1e9 / 5000.0;
    for (const Config& config : kConfigs) {
      SamplingConfig sampling;
      sampling.capture_address = config.addr;
      sampling.capture_registers = config.regs;
      sampling.capture_callstack = config.stack;
      uint64_t bytes = sampling.SampleBytes(config.depth);
      table.AddRow({config.name, StrFormat("%llu", static_cast<unsigned long long>(bytes)),
                    StrFormat("%.1f", samples_per_second * static_cast<double>(bytes) / 1e6)});
    }
    std::printf("\n%s", table.Render().c_str());
    std::printf(
        "(Paper: 54 B with registers, 265 B with call stacks, 77 MB/s at 0.7 MHz. Our samples\n"
        " record all 16 registers instead of a selected subset, hence the larger size; the\n"
        " shape — registers add a fixed chunk, stacks multiply the size — is preserved.)\n\n");
  }

  // --- Tagging Dictionary sizes per query ---
  TablePrinter table({"Query", "IR instrs", "Log A tasks", "Log B entries", "Dict bytes"});
  for (size_t c = 1; c <= 4; ++c) {
    table.SetRightAlign(c, true);
  }
  uint64_t total_instrs = 0;
  uint64_t total_bytes = 0;
  size_t count = 0;
  for (const QuerySpec& spec : TpchQuerySuite()) {
    ProfilingConfig config;
    config.enable_sampling = false;
    ProfilingSession session(config);
    CompiledQuery query = engine.Compile(BuildQueryPlan(*db, spec), &session, spec.name);
    const TaggingDictionary& dictionary = session.dictionary();
    total_instrs += query.TotalIrInstrs();
    total_bytes += dictionary.ApproxBytes();
    ++count;
    table.AddRow({spec.name,
                  StrFormat("%llu", static_cast<unsigned long long>(query.TotalIrInstrs())),
                  StrFormat("%zu", dictionary.log_a_entries()),
                  StrFormat("%zu", dictionary.log_b_entries()),
                  StrFormat("%llu", static_cast<unsigned long long>(dictionary.ApproxBytes()))});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("Average per query: %.0f IR instructions, %.1f kB dictionary\n",
              static_cast<double>(total_instrs) / static_cast<double>(count),
              static_cast<double>(total_bytes) / static_cast<double>(count) / 1024.0);
  std::printf("(Paper: ~1320 LLVM IR instructions and ~30 kB dictionary per TPC-H query.)\n");
  return 0;
}

}  // namespace
}  // namespace dfp

int main(int argc, char** argv) {
  dfp::BenchInit(argc, argv);
  return dfp::Main();
}
