// Reproduces the Section 6.2 Register Tagging cost measurements across the whole query suite:
//  - reserving the tag register (the compiler loses one register): paper reports 2.8% average,
//  - writing the tags around shared calls on top of that: paper reports ~3%.
// Both are measured WITHOUT sampling so the code-generation effects are isolated.
#include "bench/common.h"
#include "src/util/table_printer.h"

namespace dfp {
namespace {

int Main() {
  PrintHeader("Register Tagging code overhead across the query suite",
              "Section 6.2 (2.8% register reservation, ~3% tag writes)");
  std::unique_ptr<Database> db = MakeTpchDatabase(BenchScale(0.005));
  QueryEngine engine(db.get());

  TablePrinter table({"Query", "Plain cycles", "Reserve ovh", "Tagging ovh", "Spilled vregs"});
  for (size_t c = 1; c <= 4; ++c) {
    table.SetRightAlign(c, true);
  }
  double reserve_sum = 0;
  double tagging_sum = 0;
  int count = 0;
  for (const QuerySpec& spec : TpchQuerySuite()) {
    // 1. Plain compilation (all registers available, no tags).
    CompiledQuery plain = engine.Compile(BuildQueryPlan(*db, spec), nullptr, spec.name);
    engine.Execute(plain);
    const uint64_t plain_cycles = engine.last_cycles();
    uint32_t plain_spills = 0;
    for (const PipelineArtifact& artifact : plain.pipelines) {
      plain_spills += artifact.stats.spilled_vregs;
    }

    // 2. Reservation only: r15 withheld from the allocator, no tag writes.
    CodegenOptions reserve_only;
    reserve_only.force_reserve_tag_register = true;
    CompiledQuery reserved = engine.Compile(BuildQueryPlan(*db, spec), nullptr,
                                            spec.name + "_rsv", reserve_only);
    engine.Execute(reserved);
    const uint64_t reserved_cycles = engine.last_cycles();
    uint32_t reserved_spills = 0;
    for (const PipelineArtifact& artifact : reserved.pipelines) {
      reserved_spills += artifact.stats.spilled_vregs;
    }

    // 3. Full Register Tagging: reservation + save/set/restore around shared calls.
    ProfilingConfig tagging_config;
    tagging_config.enable_sampling = false;
    ProfilingSession tagging_session(tagging_config);
    CompiledQuery tagged =
        engine.Compile(BuildQueryPlan(*db, spec), &tagging_session, spec.name + "_tag");
    engine.Execute(tagged);
    const uint64_t tagged_cycles = engine.last_cycles();

    const double reserve_ovh =
        static_cast<double>(reserved_cycles) / static_cast<double>(plain_cycles) - 1.0;
    const double tagging_ovh =
        static_cast<double>(tagged_cycles) / static_cast<double>(plain_cycles) - 1.0;
    reserve_sum += reserve_ovh;
    tagging_sum += tagging_ovh;
    ++count;
    table.AddRow({spec.name, StrFormat("%llu", static_cast<unsigned long long>(plain_cycles)),
                  StrFormat("%+.2f%%", reserve_ovh * 100),
                  StrFormat("%+.2f%%", tagging_ovh * 100),
                  StrFormat("%u -> %u", plain_spills, reserved_spills)});
  }
  std::printf("\n%s\n", table.Render().c_str());
  std::printf("Average overhead: reservation-only %+.2f%%, full Register Tagging %+.2f%%\n",
              reserve_sum / count * 100, tagging_sum / count * 100);
  std::printf(
      "Paper reference: 2.8%% average for reserving one register across the TPC-H queries;\n"
      "tag writes add a few percent more on pipelines that call shared code per tuple.\n");
  return 0;
}

}  // namespace
}  // namespace dfp

int main(int argc, char** argv) {
  dfp::BenchInit(argc, argv);
  return dfp::Main();
}
