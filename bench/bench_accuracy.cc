// Reproduces the Section 6.3 accuracy validation:
//  - IP-vs-tag cross-check with every generated instruction tagged (paper: zero mismatches),
//  - TSC deltas between consecutive samples track the sampling period,
//  - memory-event samples point at load instructions,
// plus a summary of the optimization coverage from Table 1.
#include "bench/common.h"
#include "src/profiling/validation.h"
#include "src/util/table_printer.h"

namespace dfp {
namespace {

int Main() {
  PrintHeader("Attribution accuracy validation", "Section 6.3 + Table 1");
  std::unique_ptr<Database> db = MakeTpchDatabase(BenchScale(0.005));
  QueryEngine engine(db.get());

  TablePrinter table({"Query", "Checked", "Mismatches", "TSC mean delta", "Load-IP ok"});
  for (size_t c = 1; c <= 4; ++c) {
    table.SetRightAlign(c, true);
  }
  uint64_t total_checked = 0;
  uint64_t total_mismatches = 0;
  for (const QuerySpec& spec : TpchQuerySuite()) {
    // 1. Tag-all cross-check.
    ProfilingConfig config;
    config.period = 997;
    config.tag_all_instructions = true;
    ProfilingSession session(config);
    CompiledQuery query = engine.Compile(BuildQueryPlan(*db, spec), &session, spec.name);
    engine.Execute(query);
    session.Resolve(db->code_map());
    ValidationReport report = CrossCheckAttribution(session, db->code_map());
    total_checked += report.checked;
    total_mismatches += report.mismatches;

    // 2. TSC deltas (separate run with the paper's period of 5000).
    ProfilingConfig tsc_config;
    tsc_config.period = 5000;
    ProfilingSession tsc_session(tsc_config);
    CompiledQuery tsc_query =
        engine.Compile(BuildQueryPlan(*db, spec), &tsc_session, spec.name + "_tsc");
    engine.Execute(tsc_query);
    const std::vector<Sample>& samples = tsc_session.samples();
    double mean_delta = 0;
    if (samples.size() > 1) {
      mean_delta = static_cast<double>(samples.back().tsc - samples.front().tsc) /
                   static_cast<double>(samples.size() - 1);
    }

    // 3. Memory-event samples must point at load instructions.
    ProfilingConfig mem_config;
    mem_config.event = PmuEvent::kLoads;
    mem_config.period = 333;
    mem_config.capture_address = true;
    ProfilingSession mem_session(mem_config);
    CompiledQuery mem_query =
        engine.Compile(BuildQueryPlan(*db, spec), &mem_session, spec.name + "_mem");
    engine.Execute(mem_query);
    uint64_t load_samples = 0;
    uint64_t load_ip_ok = 0;
    for (const Sample& sample : mem_session.samples()) {
      const CodeSegment* segment = db->code_map().FindByIp(sample.ip);
      if (segment == nullptr || segment->code.empty()) {
        continue;  // Host-modeled segments have synthetic IPs.
      }
      ++load_samples;
      const MInstr& instr = segment->code[sample.ip - segment->base_ip];
      if (IsLoad(instr.op)) {
        ++load_ip_ok;
      }
    }
    table.AddRow({spec.name, StrFormat("%llu", static_cast<unsigned long long>(report.checked)),
                  StrFormat("%llu", static_cast<unsigned long long>(report.mismatches)),
                  StrFormat("%.0f cyc", mean_delta),
                  load_samples > 0 ? StrFormat("%llu/%llu",
                                               static_cast<unsigned long long>(load_ip_ok),
                                               static_cast<unsigned long long>(load_samples))
                                   : std::string("-")});
  }
  std::printf("\n%s\n", table.Render().c_str());
  std::printf("Total: %llu samples cross-checked, %llu mismatches (paper: none).\n",
              static_cast<unsigned long long>(total_checked),
              static_cast<unsigned long long>(total_mismatches));

  std::printf("\n--- Table 1: optimization transformations covered by the dictionary ---\n");
  std::printf("  Operator fusion                    supported (pipeline codegen, tested)\n");
  std::printf("  Instruction fusing                 supported (address folding + OnAbsorb)\n");
  std::printf("  Code elimination                   supported (DCE + OnRemove)\n");
  std::printf("  Constant folding                   supported (in-place fold, id preserved)\n");
  std::printf("  Common subexpression elimination   supported (local VN + OnAbsorb)\n");
  std::printf("  Dataflow graph operator fusion     supported (GroupJoin section tasks)\n");
  std::printf("  Loop unrolling & interleaving      not implemented (as in the paper's Umbra)\n");
  std::printf("  Polyhedral optimizations           not implemented (as in the paper's Umbra)\n");
  std::printf("  Heterogeneous accelerators         out of scope (as in the paper)\n");
  return total_mismatches == 0 ? 0 : 1;
}

}  // namespace
}  // namespace dfp

int main(int argc, char** argv) {
  dfp::BenchInit(argc, argv);
  return dfp::Main();
}
