// Reproduces Figure 7 (operator activity over the query runtime) and Figure 11 (activity of the
// optimizer's plan vs. the faster alternative plan on date-correlated data).
#include "bench/common.h"
#include "src/profiling/reports.h"
#include "src/util/date.h"

namespace dfp {
namespace {

void RunTimeline(QueryEngine& engine, Database& db, PhysicalOpPtr plan, const char* name) {
  ProfilingConfig config;
  config.period = 2000;
  ProfilingSession session(config);
  CompiledQuery query = engine.Compile(std::move(plan), &session, name);
  engine.Execute(query);
  session.Resolve(db.code_map());
  ActivityTimeline timeline = BuildActivityTimeline(session, query, 60);
  std::printf("%s  (total %.2f ms simulated)\n%s\n", name,
              CyclesToMs(session.execution_cycles()),
              RenderActivityTimeline(timeline).c_str());
}

int Main() {
  PrintHeader("Operator activity over time", "Figure 7 and Figure 11");

  {
    std::unique_ptr<Database> db = MakeTpchDatabase(BenchScale());
    QueryEngine engine(db.get());
    std::printf("\n--- Figure 7: activity for the Figure 9 query ---\n");
    RunTimeline(engine, *db, BuildFig9Plan(*db), "fig9");
  }

  {
    // Figure 11 needs lineitem clustered on the join key with date-correlated orders: probe
    // matches arrive clustered in time (all matches first, then none).
    std::unique_ptr<Database> db = MakeTpchDatabase(BenchScale(), /*correlated_dates=*/true);
    QueryEngine engine(db.get());
    const int32_t cutoff = ParseDate("1995-06-01");
    std::printf("\n--- Figure 11: optimizer's plan (probe partsupp, then orders) ---\n");
    RunTimeline(engine, *db, BuildFig10OptimizerPlan(*db, cutoff), "Opt. Plan");
    std::printf("--- Figure 11: alternative plan (probe orders, then partsupp) ---\n");
    RunTimeline(engine, *db, BuildFig10AlternativePlan(*db, cutoff), "Alt. Plan");
    std::printf(
        "Expected shape (paper): the alternative plan is faster overall; its orders join\n"
        "dominates the early phase and the partsupp probe disappears in the late phase, because\n"
        "the date filter eliminates every tuple once the scan passes the cutoff orderkey.\n");
  }
  return 0;
}

}  // namespace
}  // namespace dfp

int main(int argc, char** argv) {
  dfp::BenchInit(argc, argv);
  return dfp::Main();
}
