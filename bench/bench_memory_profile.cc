// Reproduces Figure 12: per-operator memory access patterns (address vs. time) for the Figure 9
// query, sampled on MEM_LOADS with address capture.
#include <cmath>

#include "bench/common.h"
#include "src/profiling/reports.h"

namespace dfp {
namespace {

int Main() {
  PrintHeader("Per-operator memory access patterns", "Figure 12");
  std::unique_ptr<Database> db = MakeTpchDatabase(BenchScale());
  QueryEngine engine(db.get());

  ProfilingConfig config;
  config.event = PmuEvent::kLoads;
  config.period = 1000;  // A sample every 1000 loads, as in the paper.
  config.capture_address = true;
  ProfilingSession session(config);
  CompiledQuery query = engine.Compile(BuildFig9Plan(*db), &session, "fig9_mem");
  engine.Execute(query);
  session.Resolve(db->code_map());

  MemoryProfile profile = BuildMemoryProfile(session, query);
  std::printf("\n%s", RenderMemoryProfile(profile).c_str());
  std::printf(
      "Expected shape (paper): table scans show a rising linear address pattern over time;\n"
      "the join and the aggregation spread across their hash tables' address ranges.\n");

  // Quantitative check: a scan's accesses within each COLUMN array rise linearly with time
  // (Pearson r near 1, the paper's parallel rising lines); the hash operators' accesses spread
  // over their tables without temporal order (r near 0).
  auto correlation = [](const std::vector<std::pair<uint64_t, uint64_t>>& points) {
    double n = static_cast<double>(points.size());
    double sum_t = 0;
    double sum_a = 0;
    double sum_tt = 0;
    double sum_aa = 0;
    double sum_ta = 0;
    for (const auto& [tsc, addr] : points) {
      double t = static_cast<double>(tsc);
      double a = static_cast<double>(addr);
      sum_t += t;
      sum_a += a;
      sum_tt += t * t;
      sum_aa += a * a;
      sum_ta += t * a;
    }
    double cov = sum_ta / n - (sum_t / n) * (sum_a / n);
    double var_t = sum_tt / n - (sum_t / n) * (sum_t / n);
    double var_a = sum_aa / n - (sum_a / n) * (sum_a / n);
    return (var_t > 0 && var_a > 0) ? cov / std::sqrt(var_t * var_a) : 0.0;
  };

  std::printf("\nAddress-vs-time correlation per operator (per column array for scans):\n");
  std::vector<PhysicalOp*> operators = PlanOperators(*query.plan);
  for (const MemoryProfileSeries& series : profile.series) {
    if (series.points.size() < 16) {
      continue;
    }
    const PhysicalOp* op = nullptr;
    for (PhysicalOp* candidate : operators) {
      if (candidate->id == series.op) {
        op = candidate;
      }
    }
    if (op != nullptr && op->kind == OpKind::kTableScan) {
      // Split samples by the column array they fall into.
      double weighted_r = 0;
      size_t counted = 0;
      for (size_t c = 0; c < op->table->schema().columns.size(); ++c) {
        const VAddr base = op->table->column_base(c);
        const VAddr end = base + op->table->row_count() *
                                     ColumnWidth(op->table->schema().columns[c].type);
        std::vector<std::pair<uint64_t, uint64_t>> column_points;
        for (const auto& point : series.points) {
          if (point.second >= base && point.second < end) {
            column_points.push_back(point);
          }
        }
        if (column_points.size() >= 8) {
          weighted_r += correlation(column_points) * static_cast<double>(column_points.size());
          counted += column_points.size();
        }
      }
      if (counted > 0) {
        std::printf("  %-28s r = %+.3f  (%zu samples, per-column)\n", series.label.c_str(),
                    weighted_r / static_cast<double>(counted), series.points.size());
      }
      continue;
    }
    std::printf("  %-28s r = %+.3f  (%zu samples)\n", series.label.c_str(),
                correlation(series.points), series.points.size());
  }

  // Second section: the same view armed on L1 cache misses instead of loads — "a memory access
  // profile with cache-miss information" (paper Section 6.1). Misses concentrate in the hash
  // operators; the prefetcher-friendly scans nearly vanish.
  {
    ProfilingConfig miss_config;
    miss_config.event = PmuEvent::kL1Miss;
    miss_config.period = 200;
    miss_config.capture_address = true;
    ProfilingSession miss_session(miss_config);
    CompiledQuery miss_query = engine.Compile(BuildFig9Plan(*db), &miss_session, "fig9_miss");
    engine.Execute(miss_query);
    miss_session.Resolve(db->code_map());
    MemoryProfile misses = BuildMemoryProfile(miss_session, miss_query);
    std::printf("\n--- Cache-miss profile (event = L1_MISS) ---\n");
    uint64_t total_miss_samples = 0;
    for (const MemoryProfileSeries& series : misses.series) {
      total_miss_samples += series.points.size();
    }
    for (const MemoryProfileSeries& series : misses.series) {
      std::printf("  %-28s %5zu miss samples (%4.1f%%), span %.1f MB\n", series.label.c_str(),
                  series.points.size(),
                  100.0 * static_cast<double>(series.points.size()) /
                      static_cast<double>(std::max<uint64_t>(1, total_miss_samples)),
                  static_cast<double>(series.max_addr - series.min_addr) / (1024.0 * 1024.0));
    }
    std::printf("Expected shape: the hash-table operators own most miss samples.\n");
  }
  return 0;
}

}  // namespace
}  // namespace dfp

int main(int argc, char** argv) {
  dfp::BenchInit(argc, argv);
  return dfp::Main();
}
