// Query service experiment: throughput of a warm compiled-plan cache against cold compilation,
// plus the fleet-level profile the service aggregates while serving.
//
// A repeating workload of TPC-H-style queries is pushed through the QueryService twice: the
// first pass compiles every distinct plan (cold), the second hits the cache for all of them
// (warm). In a compiling engine serving short queries, compilation dominates end-to-end cost,
// so the warm pass sustains a multiple of the cold pass's throughput — the economic argument
// for a plan cache. The fleet profile report shows the per-fingerprint aggregation (hit/miss
// counters, compile-vs-execute split, hottest operators across the whole workload).
#include "bench/common.h"
#include "src/service/query_service.h"

namespace dfp {
namespace {

int Main() {
  PrintHeader("Query service: plan cache and fleet profiling",
              "Section 5.2 production framing, extended to a serving process");

  ServiceConfig config;
  config.parallel.workers = 4;
  config.max_active_sessions = 2;
  config.session_hashtables_bytes = 32ull << 20;
  config.session_output_bytes = 16ull << 20;
  config.profiling.period = 5000;

  DatabaseConfig db_config;
  db_config.extra_bytes = ServiceArenaBytes(config);
  auto db = std::make_unique<Database>(db_config);
  TpchOptions options;
  options.scale = BenchScale();
  TpchRowCounts counts = GenerateTpch(*db, options);
  std::printf("# TPC-H-style dataset: scale %.4g, %llu lineitem rows\n", options.scale,
              static_cast<unsigned long long>(counts.lineitem));

  QueryService service(*db, config);
  // Six distinct plans: the cold pass compiles each one, the warm pass hits on all of them.
  const std::vector<std::string> workload = {"q6", "q1", "q3", "q14", "q4", "q12"};

  auto run_pass = [&](const char* label) {
    const uint64_t before = service.ServiceNowCycles();
    for (const std::string& name : workload) {
      service.Submit(BuildQueryPlan(*db, FindQuery(name)), name);
    }
    service.Drain();
    const uint64_t cycles = service.ServiceNowCycles() - before;
    std::printf("%-6s %zu queries in %12llu cycles (%8.3f ms simulated, %.2f queries/ms)\n",
                label, workload.size(), static_cast<unsigned long long>(cycles),
                CyclesToMs(cycles),
                static_cast<double>(workload.size()) / CyclesToMs(cycles));
    return cycles;
  };

  std::printf("\n--- Throughput: %zu-query workload, %u workers, %u concurrent sessions ---\n",
              workload.size(), config.parallel.workers, config.max_active_sessions);
  const uint64_t cold_cycles = run_pass("cold");
  const uint64_t warm_cycles = run_pass("warm");
  const double speedup = static_cast<double>(cold_cycles) / static_cast<double>(warm_cycles);
  std::printf("warm/cold throughput: %.2fx\n", speedup);

  const PlanCacheStats& cache = service.plan_cache().stats();
  std::printf("\n--- Plan cache ---\n");
  std::printf("hits %llu  misses %llu  evictions %llu  resident %llu entries / %llu code bytes\n",
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses),
              static_cast<unsigned long long>(cache.evictions),
              static_cast<unsigned long long>(cache.resident_entries),
              static_cast<unsigned long long>(cache.resident_code_bytes));

  std::printf("\n%s\n", service.fleet_profile().Render().c_str());

  if (GlobalBenchOptions().json) {
    JsonWriter json;
    json.BeginObject();
    json.Field("queries_per_pass", static_cast<uint64_t>(workload.size()));
    json.Field("workers", static_cast<uint64_t>(config.parallel.workers));
    json.Field("max_active_sessions", static_cast<uint64_t>(config.max_active_sessions));
    json.Field("cold_cycles", cold_cycles);
    json.Field("warm_cycles", warm_cycles);
    json.Field("warm_speedup", speedup);
    json.Field("cache_hits", cache.hits);
    json.Field("cache_misses", cache.misses);
    json.BeginArray("plans");
    for (const auto& [fingerprint, plan] : service.fleet_profile().plans()) {
      (void)fingerprint;
      json.BeginObject();
      json.Field("name", plan.name);
      json.Field("fingerprint", FingerprintKey({plan.fingerprint, 0}));
      json.Field("executions", plan.executions);
      json.Field("cache_hits", plan.cache_hits);
      json.Field("cache_misses", plan.cache_misses);
      json.Field("compile_cycles", plan.compile_cycles);
      json.Field("execute_cycles", plan.execute_cycles);
      json.Field("samples", plan.samples);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
    json.WriteTo("BENCH_service.json");
  }

  std::printf(
      "Expected shape: the warm pass serves every query from the plan cache, so its\n"
      "throughput exceeds the cold pass by at least 2x at small scales where compilation\n"
      "dominates; the gap narrows as data volume grows and execution takes over.\n");
  return speedup >= 2.0 ? 0 : 1;
}

}  // namespace
}  // namespace dfp

int main(int argc, char** argv) {
  dfp::BenchInit(argc, argv);
  return dfp::Main();
}
