// Query service experiment: throughput of a warm compiled-plan cache against cold compilation,
// plus the fleet-level profile the service aggregates while serving — and the continuous
// profiling layer on top of it:
//
//  - A repeating workload of TPC-H-style queries is pushed through the QueryService twice: the
//    first pass compiles every distinct plan (cold), the second hits the cache for all of them
//    (warm). In a compiling engine serving short queries, compilation dominates end-to-end
//    cost, so the warm pass sustains a multiple of the cold pass's throughput.
//  - The adaptive sampling governor runs with a 2% overhead budget; after a few convergence
//    passes the final pass's measured sampling cost (capture + flush cycles the PMU actually
//    charged) must land within half a point of the budget, and the windowed operator rankings
//    must agree with the cumulative fleet profile on this steady workload.
//  - A regression scenario: baseline snapshot, one identical pass (must flag nothing — zero
//    false positives), then a q6 variant with much wider literals sharing the structural
//    fingerprint (must flag the shift).
//  - Fleet record/replay: a mixed workload is recorded into a text trace, replayed twice on
//    fresh services (zero diff both times, byte-identical JSON reports — the replay-smoke CI
//    gate), then replayed under what-if knobs: 10x session load must degrade through
//    admission rejections, and a scheduler swap must shift timing without touching results.
//  - Sharded multi-node service (src/shard/): fan-out queries over a 4-shard range-partitioned
//    catalog must return results identical to the unsharded engine, the coordinator's Merge
//    operator and CROSS_NODE traffic must show up in the hierarchical fleet aggregate (whose
//    JSON renders byte-identically across runs — the shard-smoke CI gate), a 1-shard tower
//    must be byte-identical to a plain QueryService, a catalog-version bump must invalidate
//    every shard's plan cache in one step, and a shard_count=4 what-if replay of the recorded
//    trace must complete with zero result divergence.
//  - Closed-loop re-optimization (src/reopt/): a join spine with a 40x cardinality misestimate
//    is served repeatedly with the feedback loop on; measured cardinalities must trigger
//    exactly one re-plan (divergence >= 400%), the guard must keep the reordered plan and its
//    measured execute cycles must beat a reopt-off control on identical results, an injected
//    pessimizing rewrite must be reverted, and a double run must emit byte-identical reopt
//    JSON (the reopt-smoke CI gate).
#include <cmath>
#include <fstream>
#include <sstream>

#include "bench/common.h"
#include "src/critpath/report.h"
#include "src/engine/result.h"
#include "src/plan/builder.h"
#include "src/profiling/reports.h"
#include "src/reopt/cardstore.h"
#include "src/reopt/controller.h"
#include "src/replay/recorder.h"
#include "src/replay/replayer.h"
#include "src/replay/trace.h"
#include "src/service/placement_repair.h"
#include "src/service/query_service.h"
#include "src/shard/coordinator.h"
#include "src/sql/binder.h"
#include "src/tiering/report.h"
#include "src/vcpu/vmem.h"

namespace dfp {
namespace {

// q6 with much wider literals: same plan structure (and fingerprint), drastically different
// selectivity — the injected plan-mix shift.
constexpr const char* kShiftedQ6 =
    "select sum(l_extendedprice * l_discount) as revenue "
    "from lineitem "
    "where l_shipdate >= date '1992-01-01' and l_shipdate < date '1999-01-01' "
    "and l_discount between 0.00 and 0.10 and l_quantity < 100";

// q6 with parameterized literals: every variant shares the structural fingerprint, so under
// tiering they all bind to one cached artifact via immediate patching.
std::string Q6Variant(double lo, double hi, int quantity) {
  char buffer[512];
  std::snprintf(buffer, sizeof(buffer),
                "select sum(l_extendedprice * l_discount) as revenue from lineitem "
                "where l_shipdate >= date '1994-01-01' and l_shipdate < date '1995-01-01' "
                "and l_discount between %.2f and %.2f and l_quantity < %d",
                lo, hi, quantity);
  return buffer;
}

// Top operator label of one execution's resolved profile ("" when unprofiled/idle).
std::string TopOperatorLabel(const QueryTicket& ticket) {
  if (ticket.session == nullptr || ticket.plan == nullptr) {
    return "";
  }
  const OperatorProfile profile = BuildOperatorProfile(*ticket.session, ticket.plan->query);
  const OperatorCost* top = nullptr;
  for (const OperatorCost& cost : profile.operators) {
    if (top == nullptr || cost.samples > top->samples) {
      top = &cost;
    }
  }
  return top != nullptr ? top->label : "";
}

int Main() {
  PrintHeader("Query service: plan cache and fleet profiling",
              "Section 5.2 production framing, extended to a serving process");

  ServiceConfig config;
  config.parallel.workers = 4;
  config.max_active_sessions = 2;
  config.session_hashtables_bytes = 32ull << 20;
  config.session_output_bytes = 16ull << 20;
  config.profiling.period = 5000;
  config.continuous.governor.enabled = true;
  config.continuous.governor.overhead_budget = 0.02;

  DatabaseConfig db_config;
  db_config.extra_bytes = ServiceArenaBytes(config);
  auto db = std::make_unique<Database>(db_config);
  TpchOptions options;
  options.scale = BenchScale();
  TpchRowCounts counts = GenerateTpch(*db, options);
  std::printf("# TPC-H-style dataset: scale %.4g, %llu lineitem rows\n", options.scale,
              static_cast<unsigned long long>(counts.lineitem));

  QueryService service(*db, config);
  // Six distinct plans: the cold pass compiles each one, the warm pass hits on all of them.
  const std::vector<std::string> workload = {"q6", "q1", "q3", "q14", "q4", "q12"};

  auto run_pass = [&](const char* label) {
    const uint64_t before = service.ServiceNowCycles();
    for (const std::string& name : workload) {
      service.Submit(BuildQueryPlan(*db, FindQuery(name)), name);
    }
    service.Drain();
    const uint64_t cycles = service.ServiceNowCycles() - before;
    std::printf("%-6s %zu queries in %12llu cycles (%8.3f ms simulated, %.2f queries/ms)\n",
                label, workload.size(), static_cast<unsigned long long>(cycles),
                CyclesToMs(cycles),
                static_cast<double>(workload.size()) / CyclesToMs(cycles));
    return cycles;
  };

  std::printf("\n--- Throughput: %zu-query workload, %u workers, %u concurrent sessions ---\n",
              workload.size(), config.parallel.workers, config.max_active_sessions);
  const uint64_t cold_cycles = run_pass("cold");
  const uint64_t warm_cycles = run_pass("warm");
  const double speedup = static_cast<double>(cold_cycles) / static_cast<double>(warm_cycles);
  std::printf("warm/cold throughput: %.2fx\n", speedup);

  const PlanCacheStats& cache = service.plan_cache().stats();
  std::printf("\n--- Plan cache ---\n");
  std::printf("hits %llu  misses %llu  evictions %llu  resident %llu entries / %llu code bytes\n",
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses),
              static_cast<unsigned long long>(cache.evictions),
              static_cast<unsigned long long>(cache.resident_entries),
              static_cast<unsigned long long>(cache.resident_code_bytes));

  std::printf("\n%s\n", service.fleet_profile().Render().c_str());

  // --- Adaptive sampling governor: convergence and measured overhead ---
  std::printf("--- Sampling governor: %.1f%% budget, convergence passes ---\n",
              100.0 * config.continuous.governor.overhead_budget);
  for (int pass = 0; pass < 5; ++pass) {
    run_pass("tune");
  }
  // Final measured pass: aggregate share = total charged sampling cycles over total useful
  // (non-overhead) busy cycles of the pass's tickets.
  const TicketId final_first = static_cast<TicketId>(service.ticket_count() + 1);
  run_pass("final");
  uint64_t final_overhead = 0;
  uint64_t final_busy = 0;
  for (TicketId id = final_first; id <= service.ticket_count(); ++id) {
    final_overhead += service.ticket(id).sampling_overhead.total_cycles();
    final_busy += service.ticket(id).busy_cycles;
  }
  const double measured_share =
      final_busy > final_overhead
          ? static_cast<double>(final_overhead) /
                static_cast<double>(final_busy - final_overhead)
          : 0;
  const double budget = config.continuous.governor.overhead_budget;
  const bool governor_ok = std::abs(measured_share - budget) <= 0.005;
  std::printf("final pass: overhead %llu cycles over %llu useful -> %.3f%% (budget %.1f%%) %s\n",
              static_cast<unsigned long long>(final_overhead),
              static_cast<unsigned long long>(final_busy - final_overhead),
              100.0 * measured_share, 100.0 * budget, governor_ok ? "[ok]" : "[FAIL]");
  std::printf("\n%s\n", service.governor().Render().c_str());

  // Windowed vs. cumulative: on a steady workload both views must rank operators identically.
  bool rankings_agree = true;
  for (const auto& [fingerprint, plan] : service.fleet_profile().plans()) {
    OperatorId fleet_top = kNoOperator;
    uint64_t fleet_samples = 0;
    for (const auto& [op, cost] : plan.operators) {
      if (cost.samples > fleet_samples) {
        fleet_samples = cost.samples;
        fleet_top = op;
      }
    }
    WindowRollup rollup = service.windows().RollUp(fingerprint);
    OperatorId window_top = kNoOperator;
    uint64_t window_samples = 0;
    for (const auto& [op, stats] : rollup.operators) {
      if (stats.samples > window_samples) {
        window_samples = stats.samples;
        window_top = op;
      }
    }
    if (fleet_samples > 0 && window_samples > 0 && fleet_top != window_top) {
      rankings_agree = false;
      std::printf("ranking mismatch on %s: cumulative top op %llu vs windowed %llu\n",
                  plan.name.c_str(), static_cast<unsigned long long>(fleet_top),
                  static_cast<unsigned long long>(window_top));
    }
  }
  std::printf("cumulative vs windowed operator rankings: %s\n",
              rankings_agree ? "agree [ok]" : "[FAIL]");

  std::printf("\n%s\n", service.windows().Render().c_str());

  // --- Critical-path analysis: which pipeline gates each plan's latency, and why ---
  std::printf("--- Critical-path analysis ---\n");
  std::printf("%s\n", RenderCriticalPath(service.criticality()).c_str());
  uint64_t critpath_critical_cycles = 0;
  uint64_t critpath_wall_cycles = 0;
  uint64_t critpath_label_counts[kBottleneckLabels] = {};
  bool critpath_ok = !service.criticality().plans().empty();
  for (const auto& [fingerprint, plan] : service.criticality().plans()) {
    (void)fingerprint;
    critpath_critical_cycles += plan.critical_work_cycles;
    critpath_wall_cycles += plan.wall_cycles;
    for (int label = 0; label < kBottleneckLabels; ++label) {
      critpath_label_counts[label] += plan.label_counts[label];
    }
    // Every served plan must carry a critical path and a top pipeline that owns a nonzero
    // share of it — a zero here means the DAG reconstruction lost the schedule.
    critpath_ok = critpath_ok && plan.executions > 0 && plan.critical_work_cycles > 0 &&
                  plan.top_share_pct > 0;
  }
  std::printf("critical-path rollup: %zu plans, %llu critical cycles of %llu wall %s\n",
              service.criticality().plans().size(),
              static_cast<unsigned long long>(critpath_critical_cycles),
              static_cast<unsigned long long>(critpath_wall_cycles),
              critpath_ok ? "[ok]" : "[FAIL: plan without critical-path evidence]");

  // --- Regression detection: identical rerun must be quiet, injected shift must fire ---
  std::printf("--- Regression detection ---\n");
  service.SnapshotBaseline();
  run_pass("same");
  const auto rerun_findings = service.DetectRegressions();
  const size_t false_positives = rerun_findings.size();
  std::printf("identical rerun: %zu finding(s) %s\n", false_positives,
              false_positives == 0 ? "[ok]" : "[FAIL: false positive]");
  if (false_positives > 0) {
    std::printf("%s", RenderRegressionReport(rerun_findings).c_str());
  }

  const TicketId shift_probe = service.Submit(PlanSql(*db, FindQuery("q6").sql), "q6");
  service.Drain();
  const uint64_t q6_fingerprint = service.ticket(shift_probe).fingerprint.structure;
  // Refresh the baseline so the post-watermark aggregate holds only the shifted executions.
  service.SnapshotBaseline();
  for (int i = 0; i < 6; ++i) {
    service.Submit(PlanSql(*db, kShiftedQ6), "q6");
    service.Drain();
  }
  auto findings = service.DetectRegressions();
  bool shift_flagged = false;
  for (const auto& finding : findings) {
    shift_flagged |= finding.fingerprint == q6_fingerprint;
  }
  std::printf("injected q6 literal shift: %zu finding(s), q6 %s\n", findings.size(),
              shift_flagged ? "flagged [ok]" : "[FAIL: not flagged]");
  std::printf("\n%s\n", RenderRegressionReport(findings).c_str());

  // --- Tiered compilation: parameterized reuse, background promotion, tier timeline ---
  std::printf("--- Tiered compilation: parameterized reuse and background promotion ---\n");
  ServiceConfig tier_config;
  tier_config.parallel.workers = 4;
  tier_config.max_active_sessions = 2;
  tier_config.session_hashtables_bytes = 32ull << 20;
  tier_config.session_output_bytes = 16ull << 20;
  tier_config.profiling.period = 5000;
  tier_config.tiering.enabled = true;
  DatabaseConfig tier_db_config;
  tier_db_config.extra_bytes = ServiceArenaBytes(tier_config);

  // (a) Literal-variant warm hits, measured with the tier controller parked far from break-even
  // so a background swap cannot replace the resident code mid-measurement: the cold structure
  // miss compiles once (baseline tier), each variant then re-binds the same machine code by
  // patching immediates — zero new code bytes.
  const std::vector<double> variant_los = {0.04, 0.05, 0.06};
  uint64_t tier_cold_cost = 0;
  uint64_t tier_warm_avg = 0;
  uint64_t tier_code_resident = 0;
  uint64_t tier_code_after = 0;
  uint64_t tier_patched_hits = 0;
  bool tier_zero_new_code = false;
  {
    ServiceConfig patch_config = tier_config;
    patch_config.tiering.break_even_ratio = 1e9;
    auto patch_db = std::make_unique<Database>(tier_db_config);
    GenerateTpch(*patch_db, options);
    QueryService patched(*patch_db, patch_config);
    const TicketId cold_id =
        patched.Submit(PlanSql(*patch_db, Q6Variant(0.05, 0.07, 24)), "q6");
    patched.Drain();
    const QueryTicket& cold = patched.ticket(cold_id);
    tier_cold_cost = cold.compile_cycles + cold.execute_cycles;
    tier_code_resident = patched.plan_cache().stats().resident_code_bytes;
    uint64_t warm_cost = 0;
    for (double lo : variant_los) {
      const TicketId id =
          patched.Submit(PlanSql(*patch_db, Q6Variant(lo, lo + 0.02, 25)), "q6");
      patched.Drain();
      const QueryTicket& warm = patched.ticket(id);
      warm_cost += warm.compile_cycles + warm.execute_cycles;
    }
    tier_warm_avg = warm_cost / variant_los.size();
    tier_code_after = patched.plan_cache().stats().resident_code_bytes;
    tier_patched_hits = patched.plan_cache().stats().patched_hits;
    tier_zero_new_code =
        tier_code_after == tier_code_resident && tier_patched_hits >= variant_los.size();
  }

  // Control: the same variants against the exact-keyed cache (tiering off) — every literal
  // variant is a structure hit but a cache miss, so it pays a full optimizing-tier compile.
  // That is the cost the patched warm hit must beat, and the ratio is scale-invariant (both
  // sides carry the same execute cycles).
  uint64_t tier_control_avg = 0;
  {
    ServiceConfig control_config = tier_config;
    control_config.tiering.enabled = false;
    auto control_db = std::make_unique<Database>(tier_db_config);
    GenerateTpch(*control_db, options);
    QueryService control(*control_db, control_config);
    control.Submit(PlanSql(*control_db, Q6Variant(0.05, 0.07, 24)), "q6");
    control.Drain();
    uint64_t control_cost = 0;
    for (double lo : variant_los) {
      const TicketId id =
          control.Submit(PlanSql(*control_db, Q6Variant(lo, lo + 0.02, 25)), "q6");
      control.Drain();
      const QueryTicket& miss = control.ticket(id);
      control_cost += miss.compile_cycles + miss.execute_cycles;
    }
    tier_control_avg = control_cost / variant_los.size();
  }
  const double tier_warm_speedup =
      static_cast<double>(tier_control_avg) / static_cast<double>(tier_warm_avg);
  std::printf("cold structure miss (baseline tier): %llu cycles; exact-keyed variant "
              "recompile: %llu cycles avg\n",
              static_cast<unsigned long long>(tier_cold_cost),
              static_cast<unsigned long long>(tier_control_avg));
  std::printf("patched warm hit: %llu cycles avg — %.1fx vs variant recompile %s\n",
              static_cast<unsigned long long>(tier_warm_avg), tier_warm_speedup,
              tier_warm_speedup >= 2.0 ? "[ok]" : "[FAIL]");
  std::printf("code bytes across %zu literal variants: %llu -> %llu, %llu patched hits %s\n",
              variant_los.size(), static_cast<unsigned long long>(tier_code_resident),
              static_cast<unsigned long long>(tier_code_after),
              static_cast<unsigned long long>(tier_patched_hits),
              tier_zero_new_code ? "[ok]" : "[FAIL: new code compiled]");

  // (b) A fresh tiered service with the default break-even: keep executing the hot fingerprint
  // until the controller fires and the background recompilation swaps in the optimizing-tier
  // entry.
  auto tier_db = std::make_unique<Database>(tier_db_config);
  GenerateTpch(*tier_db, options);
  QueryService tiered(*tier_db, tier_config);
  const TicketId pre_swap_id =
      tiered.Submit(PlanSql(*tier_db, Q6Variant(0.05, 0.07, 24)), "q6");
  tiered.Drain();
  const Result pre_swap_result = tiered.ticket(pre_swap_id).result;
  const std::string pre_swap_top = TopOperatorLabel(tiered.ticket(pre_swap_id));

  size_t tier_promotion_runs = 0;
  for (int i = 0; i < 64 && tiered.plan_cache().stats().tier_swaps == 0; ++i) {
    tiered.Submit(PlanSql(*tier_db, Q6Variant(0.05, 0.07, 24)), "q6");
    tiered.Drain();
    ++tier_promotion_runs;
  }
  const bool tier_promoted = tiered.plan_cache().stats().tier_swaps >= 1 &&
                             tiered.pending_recompiles() == 0;
  std::printf("background promotion after %zu hot executions: %llu swap(s) %s\n",
              tier_promotion_runs,
              static_cast<unsigned long long>(tiered.plan_cache().stats().tier_swaps),
              tier_promoted ? "[ok]" : "[FAIL: never promoted]");

  // Post-swap execution with the pre-swap literals: results must be bit-identical and the
  // profile must attribute to the same operators (parity across the tier swap).
  const TicketId post_swap_id =
      tiered.Submit(PlanSql(*tier_db, Q6Variant(0.05, 0.07, 24)), "q6");
  tiered.Drain();
  const QueryTicket& post_swap = tiered.ticket(post_swap_id);
  const bool post_swap_optimized = post_swap.tier == PlanTier::kOptimized;
  const bool tier_results_identical = post_swap.result.rows() == pre_swap_result.rows();
  const std::string post_swap_top = TopOperatorLabel(post_swap);
  const bool tier_attribution_parity = !pre_swap_top.empty() && pre_swap_top == post_swap_top;
  std::printf("post-swap run: tier %s, results %s, top operator %s vs %s %s\n",
              TierName(post_swap.tier),
              tier_results_identical ? "bit-identical [ok]" : "[FAIL: drifted]",
              pre_swap_top.c_str(), post_swap_top.c_str(),
              tier_attribution_parity ? "[ok]" : "[FAIL: attribution drifted]");

  // (c) Tier timeline: every window-attributed sample must belong to a tier.
  const TierTimelineTotals timeline =
      SummarizeTierTimeline(tiered.windows(), tiered.tier_controller());
  const bool tier_timeline_complete =
      timeline.samples > 0 &&
      timeline.samples == timeline.baseline_samples + timeline.optimized_samples &&
      timeline.transitions >= 1 && timeline.swapped >= 1;
  std::printf("tier timeline: %llu samples = %llu baseline + %llu optimized, "
              "%llu promotion(s) (%llu swapped) %s\n",
              static_cast<unsigned long long>(timeline.samples),
              static_cast<unsigned long long>(timeline.baseline_samples),
              static_cast<unsigned long long>(timeline.optimized_samples),
              static_cast<unsigned long long>(timeline.transitions),
              static_cast<unsigned long long>(timeline.swapped),
              tier_timeline_complete ? "[ok]" : "[FAIL]");
  std::printf("\n%s\n", RenderTierTimeline(tiered.windows(), tiered.tier_controller()).c_str());

  const bool tiering_ok = tier_warm_speedup >= 2.0 && tier_zero_new_code && tier_promoted &&
                          post_swap_optimized && tier_results_identical &&
                          tier_attribution_parity && tier_timeline_complete;

  // --- Fleet record/replay: zero-diff determinism gate and what-if scaling ---
  std::printf("\n--- Fleet record/replay: zero-diff gate and what-if scaling ---\n");
  ServiceConfig replay_config = tier_config;
  replay_config.profiling.period = 311;
  WorkloadTrace recorded_trace;
  {
    // Record a mixed workload (cold compiles, warm hits, a patched q6 literal family, a
    // background tier promotion) through an attached TraceRecorder. Scoped so the recording
    // database's arena is released before the replay databases are carved.
    DatabaseConfig record_db_config;
    record_db_config.extra_bytes = ServiceArenaBytes(replay_config);
    auto record_db = std::make_unique<Database>(record_db_config);
    GenerateTpch(*record_db, options);
    QueryService recorded(*record_db, replay_config);
    TraceRecorder recorder;
    recorded.AttachRecorder(recorder);
    recorded.Submit(BuildQueryPlan(*record_db, FindQuery("q1")), "q1");
    recorded.Submit(BuildQueryPlan(*record_db, FindQuery("q3")), "q3");
    recorded.Drain();
    recorded.Submit(BuildQueryPlan(*record_db, FindQuery("q1")), "q1");
    for (double lo : {0.02, 0.03, 0.04, 0.05}) {
      recorded.Submit(PlanSql(*record_db, Q6Variant(lo, lo + 0.02, 24)), "q6");
    }
    recorded.Drain();
    for (double lo : {0.02, 0.03, 0.04}) {
      recorded.Submit(PlanSql(*record_db, Q6Variant(lo, lo + 0.02, 24)), "q6");
    }
    recorded.Drain();
    recorder.Finish(recorded);
    recorded_trace = recorder.trace();
  }
  // Replay what a persisted trace file round-trips to, not the in-memory object.
  const std::string trace_text = EncodeTraceText(recorded_trace);
  std::istringstream trace_in(trace_text);
  const WorkloadTrace trace = ReadTrace(trace_in);
  std::printf("recorded %llu queries (%llu completed), trace text %zu bytes\n",
              static_cast<unsigned long long>(trace.summary.queries),
              static_cast<unsigned long long>(trace.summary.completed), trace_text.size());

  // Each replay runs against its own identically generated database: the service compiles
  // code and carves session regions out of its database, so reusing one would shift every
  // address (and therefore every sample stream).
  auto run_replay = [&](const WhatIfKnobs& knobs) {
    DatabaseConfig replay_db_config;
    replay_db_config.extra_bytes = ServiceArenaBytes(ReplayServiceConfig(trace, knobs));
    auto replay_db = std::make_unique<Database>(replay_db_config);
    GenerateTpch(*replay_db, options);
    ReplayOptions replay_options;
    replay_options.knobs = knobs;
    const ReplayRun run = ReplayTrace(*replay_db, trace, replay_options);
    ReplayReport report = DiffTraces(trace, run.trace);
    report.session_multiplier = knobs.session_multiplier;
    return report;
  };

  // (a) Determinism gate: two identity replays must both be zero-diff, and their JSON reports
  // must be byte-identical (the replay-smoke CI job diffs these two files).
  const ReplayReport replay1 = run_replay({});
  const ReplayReport replay2 = run_replay({});
  std::ostringstream replay_json1;
  std::ostringstream replay_json2;
  WriteReplayReportJson(replay1, replay_json1);
  WriteReplayReportJson(replay2, replay_json2);
  const bool replay_reports_match = replay_json1.str() == replay_json2.str();
  std::printf("identity replay: %s; repeated replay report %s\n",
              replay1.identical ? "zero diff [ok]" : "[FAIL: diverged]",
              replay_reports_match ? "byte-identical [ok]" : "[FAIL: non-deterministic]");
  if (!replay1.identical) {
    std::printf("%s", RenderReplayReport(replay1).c_str());
  }

  // (b) What breaks at 10x sessions? Every recorded query submitted ten times back to back:
  // the bounded admission queue must shed the surplus (rejections, not crashes or timeouts),
  // and everything admitted must still finish.
  WhatIfKnobs tenx;
  tenx.session_multiplier = 10;
  const ReplayReport replay_10x = run_replay(tenx);
  const bool replay_10x_ok =
      replay_10x.replayed_queries == 10 * replay_10x.recorded_queries &&
      replay_10x.replayed_rejected > replay_10x.recorded_rejected &&
      replay_10x.replayed_completed + replay_10x.replayed_rejected +
              replay_10x.replayed_timed_out ==
          replay_10x.replayed_queries;
  std::printf("what-if 10x sessions: %llu queries -> %llu completed, %llu rejected, "
              "%llu timed out %s\n",
              static_cast<unsigned long long>(replay_10x.replayed_queries),
              static_cast<unsigned long long>(replay_10x.replayed_completed),
              static_cast<unsigned long long>(replay_10x.replayed_rejected),
              static_cast<unsigned long long>(replay_10x.replayed_timed_out),
              replay_10x_ok ? "[ok]" : "[FAIL: load not shed through admission control]");

  // (c) Scheduler A/B on recorded traffic: a central run queue changes timing, never results.
  WhatIfKnobs central;
  central.scheduler = static_cast<int>(SchedulerPolicy::kCentral);
  const ReplayReport replay_sched = run_replay(central);
  const bool replay_sched_ok = replay_sched.results_diverged == 0 &&
                               replay_sched.replayed_completed == replay_sched.recorded_completed;
  std::printf("what-if central scheduler: cycles %llu -> %llu, results %s\n",
              static_cast<unsigned long long>(replay_sched.recorded_cycles),
              static_cast<unsigned long long>(replay_sched.replayed_cycles),
              replay_sched_ok ? "identical [ok]" : "[FAIL: results diverged]");

  // (d) Slack scheduling flipped on over the recorded traffic: the store learns across the
  // trace's repeated q6 variants and reorders their later scans — timing may move, results
  // must not.
  WhatIfKnobs slack_knobs;
  slack_knobs.slack_scheduling = 1;
  const ReplayReport replay_slack = run_replay(slack_knobs);
  const bool replay_slack_ok = replay_slack.results_diverged == 0 &&
                               replay_slack.replayed_completed == replay_slack.recorded_completed;
  std::printf("what-if slack scheduling: cycles %llu -> %llu, results %s\n",
              static_cast<unsigned long long>(replay_slack.recorded_cycles),
              static_cast<unsigned long long>(replay_slack.replayed_cycles),
              replay_slack_ok ? "identical [ok]" : "[FAIL: results diverged]");

  const bool replay_ok = replay1.identical && replay_reports_match && replay_10x_ok &&
                         replay_sched_ok && replay_slack_ok;
  if (GlobalBenchOptions().json) {
    std::ofstream replay_out1("BENCH_replay1.json");
    replay_out1 << replay_json1.str();
    std::printf("# wrote BENCH_replay1.json\n");
    std::ofstream replay_out2("BENCH_replay2.json");
    replay_out2 << replay_json2.str();
    std::printf("# wrote BENCH_replay2.json\n");
  }

  // --- Slack-directed scheduling: the profile-feedback loop through the service ---
  //
  // Both sub-experiments run at a fixed scale: the placement-repair thresholds below were
  // calibrated against this dataset's deterministic stall/remote shares, and --smoke must not
  // silently move them off the classifier's trigger point.
  std::printf("\n--- Slack-directed scheduling: profile feedback through the service ---\n");
  TpchOptions sched_options;
  sched_options.scale = 0.01;

  // (a) Slack ordering + deadline admission. The store learns q6's DAG on the first run, the
  // later runs execute slack-ordered, and the learned expected critical path prices deadline
  // feasibility at submission.
  SchedStats sched_stats;
  uint64_t sched_infeasible = 0;
  uint64_t sched_expected_critical = 0;
  bool sched_slack_ok = false;
  bool sched_admission_ok = false;
  bool sched_results_identical = false;
  {
    ServiceConfig sched_config;
    sched_config.parallel.workers = 4;
    sched_config.max_active_sessions = 2;
    sched_config.session_hashtables_bytes = 32ull << 20;
    sched_config.session_output_bytes = 16ull << 20;
    sched_config.profiling.period = 311;
    sched_config.sched.slack_scheduling = true;
    sched_config.sched.deadline_admission = true;
    DatabaseConfig sched_db_config;
    sched_db_config.extra_bytes = ServiceArenaBytes(sched_config);
    auto sched_db = std::make_unique<Database>(sched_db_config);
    GenerateTpch(*sched_db, sched_options);
    QueryService sched(*sched_db, sched_config);
    TicketId first_id = 0;
    TicketId last_id = 0;
    for (int i = 0; i < 3; ++i) {
      last_id = sched.Submit(BuildQueryPlan(*sched_db, FindQuery("q6")), "q6");
      sched.Drain();
      if (i == 0) {
        first_id = last_id;
      }
    }
    const uint64_t q6_fp = sched.ticket(first_id).fingerprint.structure;
    sched_expected_critical = sched.slack().ExpectedCriticalPathCycles(q6_fp);
    // Infeasible on an idle machine: no schedule can beat the expected critical path.
    const TicketId bounced = sched.Submit(BuildQueryPlan(*sched_db, FindQuery("q6")), "q6",
                                          sched_expected_critical / 2);
    const TicketId admitted = sched.Submit(BuildQueryPlan(*sched_db, FindQuery("q6")), "q6",
                                           sched_expected_critical * 100);
    sched.Drain();
    sched_stats = sched.sched_stats();
    sched_infeasible = sched.infeasible_rejections();
    sched_slack_ok = sched_stats.slack_ordered_scans >= 2 && sched_stats.slack_hits > 0;
    sched_admission_ok = sched.ticket(bounced).status == TicketStatus::kRejected &&
                         sched.ticket(bounced).infeasible_deadline &&
                         sched.ticket(admitted).status == TicketStatus::kDone &&
                         sched_infeasible == 1;
    std::string sched_diff;
    sched_results_identical = Result::Equivalent(sched.ticket(first_id).result,
                                                 sched.ticket(last_id).result, true, &sched_diff);
    std::printf("slack ordering: %llu ordered scan(s), %llu hint hits, %llu deferred, "
                "%llu slack steals, results %s\n",
                static_cast<unsigned long long>(sched_stats.slack_ordered_scans),
                static_cast<unsigned long long>(sched_stats.slack_hits),
                static_cast<unsigned long long>(sched_stats.deferred_morsels),
                static_cast<unsigned long long>(sched_stats.slack_steals),
                sched_results_identical ? "identical [ok]" : "[FAIL: diverged]");
    std::printf("deadline admission: expected critical path %llu cycles, deadline/2 %s, "
                "%llu infeasible rejection(s) %s\n",
                static_cast<unsigned long long>(sched_expected_critical),
                sched.ticket(bounced).status == TicketStatus::kRejected ? "bounced" : "ADMITTED",
                static_cast<unsigned long long>(sched_infeasible),
                sched_admission_ok ? "[ok]" : "[FAIL]");
  }

  // (b) Guarded placement repair: three of q6's four lineitem columns are misplaced onto the
  // wrong half of the machine, the classifier's remote-DRAM-bound verdict triggers exactly one
  // consumer-directed re-partition, and the regression guard keeps it once the post-apply
  // windows show the remote share falling. Thresholds mirror the sched test suite's calibrated
  // values (see tests/service/sched_feedback_test.cc for the measurements).
  uint64_t sched_repairs_applied = 0;
  uint64_t sched_repairs_reverted = 0;
  bool sched_repair_ok = false;
  {
    ServiceConfig repair_config;
    repair_config.parallel.workers = 4;
    repair_config.max_active_sessions = 2;
    repair_config.session_hashtables_bytes = 32ull << 20;
    repair_config.session_output_bytes = 16ull << 20;
    repair_config.session_state_bytes = 512ull * 1024;
    repair_config.sched.placement_repair = true;
    repair_config.profiling.period = 10007;
    repair_config.continuous.window.width_cycles = 1'000'000;
    repair_config.continuous.regression.share_drift = 10.0;
    repair_config.continuous.regression.remote_share_drift = 0.015;
    DatabaseConfig repair_db_config;
    repair_db_config.extra_bytes = ServiceArenaBytes(repair_config);
    auto repair_db = std::make_unique<Database>(repair_db_config);
    GenerateTpch(*repair_db, sched_options);
    const Table& lineitem = repair_db->table("lineitem");
    const PartitionMap swapped = {{kPlacementDenom / 2, 1}, {kPlacementDenom, 0}};
    for (size_t c : {size_t{4}, size_t{6}, size_t{10}}) {
      repair_db->mem().SetExtentPlacement(lineitem.column_base(c), swapped);
    }
    QueryService repair(*repair_db, repair_config);
    int repair_runs = 0;
    while (repair_runs < 8) {
      repair.Submit(BuildQueryPlan(*repair_db, FindQuery("q6")), "q6");
      repair.Drain();
      ++repair_runs;
      if (!repair.repairs().actions().empty() &&
          (repair.repairs().actions().front().state == RepairState::kKept ||
           repair.repairs().actions().front().state == RepairState::kReverted)) {
        break;
      }
    }
    sched_repairs_applied = repair.repairs().applied();
    sched_repairs_reverted = repair.repairs().reverted();
    sched_repair_ok = repair.repairs().actions().size() == 1 &&
                      repair.repairs().actions().front().state == RepairState::kKept &&
                      sched_repairs_applied == 1 && sched_repairs_reverted == 0;
    std::printf("placement repair: %d run(s), %llu applied, %llu reverted %s\n", repair_runs,
                static_cast<unsigned long long>(sched_repairs_applied),
                static_cast<unsigned long long>(sched_repairs_reverted),
                sched_repair_ok ? "[ok]" : "[FAIL: repair not kept]");
    std::printf("\n%s\n", RenderRepairTimeline(repair.repairs()).c_str());
  }
  const bool sched_ok =
      sched_slack_ok && sched_admission_ok && sched_results_identical && sched_repair_ok;

  // --- Sharded multi-node service: fan-out fidelity, aggregation tree, degenerate tower ---
  //
  // Fixed scale like the sched scenarios: the fan-out/merge identity gates compare against a
  // reference run over the same dataset, and --smoke must not move either side.
  std::printf("\n--- Sharded service: fan-out, fleet aggregation tree, 1-shard identity ---\n");
  TpchOptions shard_options;
  shard_options.scale = 0.01;
  ServiceConfig shard_service_config;
  shard_service_config.parallel.workers = 4;
  shard_service_config.max_active_sessions = 2;
  shard_service_config.session_hashtables_bytes = 32ull << 20;
  shard_service_config.session_output_bytes = 16ull << 20;
  shard_service_config.profiling.period = 311;
  ShardServiceConfig shard_config;
  shard_config.service = shard_service_config;
  shard_config.merge_sampling = DefaultMergeSampling();
  constexpr uint32_t kBenchShards = 4;
  // One DatabaseConfig for every database in this scenario (shards, 1-shard tower, unsharded
  // reference): the 1-shard byte-identity gate requires identical region layouts, and the
  // trimmed regions let seven databases coexist. Sized for the 4-shard coordinator (the
  // staging-ring head room is unused elsewhere — ShardArenaBytes degenerates to
  // ServiceArenaBytes at 1 shard).
  DatabaseConfig shard_db_config;
  shard_db_config.columns_bytes = 64ull << 20;
  shard_db_config.strings_bytes = 8ull << 20;
  shard_db_config.hashtables_bytes = 64ull << 20;
  shard_db_config.output_bytes = 32ull << 20;
  shard_db_config.extra_bytes = ShardArenaBytes(shard_config, kBenchShards);
  // Six fan-out plans (they scan the range-partitioned fact tables) plus one routed plan
  // (q16 touches only replicated tables, so it runs whole on one shard).
  const std::vector<std::string> shard_workload = {"q6", "q1", "q3", "q14", "q4", "q12", "q16"};

  // Unsharded reference: the same workload through a plain QueryService over the same dataset.
  auto shard_ref_db = std::make_unique<Database>(shard_db_config);
  GenerateTpch(*shard_ref_db, shard_options);
  QueryService shard_ref(*shard_ref_db, shard_service_config);
  std::vector<TicketId> shard_ref_ids;
  for (const std::string& name : shard_workload) {
    shard_ref_ids.push_back(
        shard_ref.Submit(BuildQueryPlan(*shard_ref_db, FindQuery(name)), name));
  }
  shard_ref.Drain();
  const std::string shard_ref_profile = shard_ref.fleet_profile().Render();

  // One full 4-shard run; called twice, so the fleet-aggregate JSON doubles as the in-process
  // determinism gate (the shard-smoke CI job diffs it across two bench invocations instead).
  struct ShardRunOutcome {
    bool results_ok = true;
    bool merge_visible = false;
    bool invalidation_ok = false;
    uint64_t fanout = 0;
    uint64_t routed = 0;
    uint64_t invalidations = 0;
    uint64_t cross_bytes = 0;
    uint64_t cross_events = 0;
    uint64_t merge_samples = 0;
    uint64_t rollup_cycles = 0;
    uint32_t levels = 0;
    uint64_t leaves = 0;
    uint64_t fleet_plans = 0;
    std::string fleet_json;
  };
  auto run_sharded = [&]() {
    ShardRunOutcome out;
    ShardCatalogConfig catalog_config;
    catalog_config.shards = kBenchShards;
    catalog_config.db = shard_db_config;
    catalog_config.tpch = shard_options;
    ShardCatalog catalog(catalog_config);
    ShardedService sharded(catalog, shard_config);
    std::vector<TicketId> ids;
    for (const std::string& name : shard_workload) {
      ids.push_back(sharded.Submit(
          name, [&](Database& sdb) { return BuildQueryPlan(sdb, FindQuery(name)); }));
    }
    sharded.Drain();
    for (size_t i = 0; i < ids.size(); ++i) {
      std::string diff;
      if (!Result::Equivalent(sharded.ticket(ids[i]).result,
                              shard_ref.ticket(shard_ref_ids[i]).result, true, &diff)) {
        out.results_ok = false;
        std::printf("shard mismatch on %s: %s\n", shard_workload[i].c_str(), diff.c_str());
      }
    }
    // Coordinated invalidation: registering a table on every shard bumps the shared catalog
    // version; the next submission must drop every shard's plan cache in one step and the
    // re-submitted fan-out must recompile (misses) to the same answer.
    for (uint32_t s = 0; s < catalog.shards(); ++s) {
      TableBuilder builder = catalog.db(s).CreateTableBuilder(
          TableSchema{"shard_ddl", {{"x", ColumnType::kInt64}}});
      catalog.db(s).AddTable(builder.Finish());
    }
    uint64_t misses_before = 0;
    for (uint32_t s = 0; s < catalog.shards(); ++s) {
      misses_before += sharded.shard(s).plan_cache().stats().misses;
    }
    const TicketId ddl_q6 = sharded.Submit(
        "q6", [&](Database& sdb) { return BuildQueryPlan(sdb, FindQuery("q6")); });
    sharded.Drain();
    uint64_t misses_after = 0;
    for (uint32_t s = 0; s < catalog.shards(); ++s) {
      misses_after += sharded.shard(s).plan_cache().stats().misses;
    }
    std::string ddl_diff;
    out.invalidation_ok = sharded.coordinated_invalidations() == 1 &&
                          misses_after > misses_before &&
                          Result::Equivalent(sharded.ticket(ddl_q6).result,
                                             shard_ref.ticket(shard_ref_ids[0]).result, true,
                                             &ddl_diff);
    const FleetAggregate fleet = sharded.AggregateFleet();
    for (const auto& [fingerprint, plan] : fleet.plans) {
      (void)fingerprint;
      const auto it = plan.operators.find(kMergeOperatorId);
      out.merge_visible |= it != plan.operators.end() && it->second.samples > 0;
    }
    out.fanout = sharded.fanout_queries();
    out.routed = sharded.routed_queries();
    out.invalidations = sharded.coordinated_invalidations();
    out.cross_bytes = sharded.cross_node_bytes();
    out.cross_events = sharded.coordinator_counters()[PmuEvent::kCrossNode];
    out.merge_samples = sharded.merge_sample_count();
    out.rollup_cycles = fleet.rollup_cycles;
    out.levels = fleet.levels;
    out.leaves = fleet.leaves;
    out.fleet_plans = fleet.plans.size();
    std::ostringstream fleet_json;
    WriteFleetAggregateJson(fleet, fleet_json);
    out.fleet_json = fleet_json.str();
    return out;
  };
  const ShardRunOutcome shard_run = run_sharded();
  const ShardRunOutcome shard_rerun = run_sharded();
  const bool shard_fleet_match = shard_run.fleet_json == shard_rerun.fleet_json;
  std::printf("4-shard fan-out: %llu fan-out + %llu routed queries, results %s\n",
              static_cast<unsigned long long>(shard_run.fanout),
              static_cast<unsigned long long>(shard_run.routed),
              shard_run.results_ok ? "identical to unsharded [ok]"
                                   : "[FAIL: diverged from unsharded]");
  std::printf("cross-node fabric: %llu bytes staged, %llu CROSS_NODE events, %llu merge "
              "samples, Merge operator %s\n",
              static_cast<unsigned long long>(shard_run.cross_bytes),
              static_cast<unsigned long long>(shard_run.cross_events),
              static_cast<unsigned long long>(shard_run.merge_samples),
              shard_run.merge_visible ? "visible in fleet profile [ok]"
                                      : "[FAIL: invisible]");
  std::printf("aggregation tree: %llu leaves, %u levels, %llu plans, rollup %llu cycles, "
              "re-run JSON %s\n",
              static_cast<unsigned long long>(shard_run.leaves), shard_run.levels,
              static_cast<unsigned long long>(shard_run.fleet_plans),
              static_cast<unsigned long long>(shard_run.rollup_cycles),
              shard_fleet_match ? "byte-identical [ok]" : "[FAIL: non-deterministic]");
  std::printf("coordinated invalidation: %llu invalidation(s) %s\n",
              static_cast<unsigned long long>(shard_run.invalidations),
              shard_run.invalidation_ok ? "[ok]" : "[FAIL]");

  // Degenerate tower: a 1-shard ShardedService must be byte-identical to the plain service —
  // same dataset bytes, shard_id 0 (pre-v7 streams), same profiles, same results.
  bool shard_one_identical = false;
  {
    ShardCatalogConfig tower_config;
    tower_config.shards = 1;
    tower_config.db = shard_db_config;
    tower_config.tpch = shard_options;
    ShardCatalog tower_catalog(tower_config);
    ShardedService tower(tower_catalog, shard_config);
    std::vector<TicketId> tower_ids;
    for (const std::string& name : shard_workload) {
      tower_ids.push_back(tower.Submit(
          name, [&](Database& sdb) { return BuildQueryPlan(sdb, FindQuery(name)); }));
    }
    tower.Drain();
    bool tower_results = true;
    for (size_t i = 0; i < tower_ids.size(); ++i) {
      std::string diff;
      tower_results = tower_results &&
                      Result::Equivalent(tower.ticket(tower_ids[i]).result,
                                         shard_ref.ticket(shard_ref_ids[i]).result, true, &diff);
    }
    const FleetAggregate tower_fleet = tower.AggregateFleet();
    const bool tower_profile_identical =
        tower.shard(0).fleet_profile().Render() == shard_ref_profile;
    shard_one_identical = tower_results && tower_profile_identical &&
                          tower_fleet.leaves == 1 && tower_fleet.levels == 0 &&
                          tower_fleet.rollup_cycles == 0 && tower.fanout_queries() == 0;
    std::printf("1-shard tower: results %s, service profile %s (fleet: %llu leaf, %u levels)\n",
                tower_results ? "identical [ok]" : "[FAIL]",
                tower_profile_identical ? "byte-identical [ok]" : "[FAIL: drifted]",
                static_cast<unsigned long long>(tower_fleet.leaves), tower_fleet.levels);
  }

  // Shard-count what-if: the recorded trace from the replay section, re-executed on a 4-shard
  // topology. Sharding re-partitions execution (fan-out, merges, different streams) but must
  // never move a result: the gate is zero result divergence with every query completing.
  ReplayReport shard_replay;
  {
    WhatIfKnobs shard_knobs;
    shard_knobs.shard_count = kBenchShards;
    ShardServiceConfig shard_replay_config;
    shard_replay_config.service = ReplayServiceConfig(trace, shard_knobs);
    shard_replay_config.merge_sampling = DefaultMergeSampling();
    ShardCatalogConfig replay_catalog_config;
    replay_catalog_config.shards = kBenchShards;
    // Default regions: the shard heaps must reproduce the recording database's region layout
    // for the recorded literal bindings' packed string references to stay valid.
    replay_catalog_config.db.extra_bytes =
        ShardArenaBytes(shard_replay_config, kBenchShards);
    replay_catalog_config.tpch = options;
    ShardCatalog replay_catalog(replay_catalog_config);
    ReplayOptions shard_replay_options;
    shard_replay_options.knobs = shard_knobs;
    shard_replay_options.shards = &replay_catalog;
    const ReplayRun shard_replay_run =
        ReplayTrace(replay_catalog.db(0), trace, shard_replay_options);
    shard_replay = DiffTraces(trace, shard_replay_run.trace);
  }
  const bool shard_replay_ok = shard_replay.results_diverged == 0 &&
                               shard_replay.replayed_queries == shard_replay.recorded_queries &&
                               shard_replay.replayed_completed == shard_replay.recorded_completed;
  std::printf("what-if shard_count=4 replay: %llu queries, %llu completed, %llu result "
              "divergence(s) %s\n",
              static_cast<unsigned long long>(shard_replay.replayed_queries),
              static_cast<unsigned long long>(shard_replay.replayed_completed),
              static_cast<unsigned long long>(shard_replay.results_diverged),
              shard_replay_ok ? "[ok]" : "[FAIL: sharding moved results]");

  const bool shard_ok = shard_run.results_ok && shard_run.merge_visible &&
                        shard_run.invalidation_ok && shard_fleet_match &&
                        shard_run.fanout == 7 && shard_run.routed == 1 &&
                        shard_run.cross_bytes > 0 && shard_run.cross_events > 0 &&
                        shard_run.merge_samples > 0 && shard_one_identical && shard_replay_ok &&
                        shard_run.fleet_json == shard_rerun.fleet_json;

  // --- Closed-loop re-optimization (src/reopt/): measured cardinalities drive the planner, ---
  // --- guarded by the regression detector. -------------------------------------------------
  std::printf("\nClosed-loop re-optimization (profile-guided re-planning)\n");

  // The misestimated join spine: supplier (estimate = its row count) sits below the part
  // filter, whose finalized estimate is the full part table even though the bound passes only
  // ~1/40th of it — a 40x divergence the tuple counters must surface.
  const int64_t part_bound = std::max<int64_t>(1, static_cast<int64_t>(counts.part) / 40);
  auto spine_plan = [part_bound](Database& sdb, bool part_first) {
    PlanBuilder supplier = PlanBuilder::Scan(sdb.table("supplier"));
    PlanBuilder part = PlanBuilder::Scan(sdb.table("part"));
    part.FilterBy(MakeBinary(BinOp::kLt, part.Col("p_partkey"),
                             MakeLiteral(ColumnType::kInt64, part_bound)));
    PlanBuilder plan = PlanBuilder::Scan(sdb.table("lineitem"));
    if (part_first) {
      plan.JoinWith(std::move(part), {"l_partkey"}, {"p_partkey"}, {"p_retailprice"});
      plan.JoinWith(std::move(supplier), {"l_suppkey"}, {"s_suppkey"}, {"s_acctbal"});
    } else {
      plan.JoinWith(std::move(supplier), {"l_suppkey"}, {"s_suppkey"}, {"s_acctbal"});
      plan.JoinWith(std::move(part), {"l_partkey"}, {"p_partkey"}, {"p_retailprice"});
    }
    return plan.Build();
  };
  auto make_reopt_config = [](bool enabled, bool pessimize) {
    ServiceConfig rc;
    rc.parallel.workers = 4;
    rc.max_active_sessions = 2;
    rc.session_hashtables_bytes = 32ull << 20;
    rc.session_output_bytes = 16ull << 20;
    rc.session_state_bytes = 512ull * 1024;
    rc.profiling.period = 311;
    rc.tiering.enabled = true;  // The candidate swap rides the tiered cache's machinery.
    rc.reopt.enabled = enabled;
    rc.reopt.pessimize = pessimize;
    rc.continuous.window.width_cycles = 1'000'000;
    return rc;
  };
  constexpr int kReoptRuns = 14;
  struct ReoptOutcome {
    uint64_t actions = 0;
    uint64_t kept = 0;
    uint64_t reverted = 0;
    uint64_t divergence_pct = 0;
    bool reordered = false;
    uint64_t final_execute = 0;
    Result first_result;
    Result final_result;
    std::string json;  // Deterministic artifact: the double-run gate diffs it byte for byte.
  };
  auto run_reopt_loop = [&](bool enabled, bool pessimize, bool part_first) {
    const ServiceConfig rc = make_reopt_config(enabled, pessimize);
    DatabaseConfig rdb_config;
    rdb_config.extra_bytes = ServiceArenaBytes(rc);
    auto rdb = std::make_unique<Database>(rdb_config);
    GenerateTpch(*rdb, options);
    QueryService rservice(*rdb, rc);

    ReoptOutcome out;
    TicketId first = 0;
    TicketId last = 0;
    for (int i = 0; i < kReoptRuns; ++i) {
      last = rservice.Submit(spine_plan(*rdb, part_first), "q_reopt_spine");
      rservice.Drain();
      if (i == 0) {
        first = last;
      }
    }
    out.actions = rservice.reopts().actions().size();
    out.kept = rservice.reopts().kept();
    out.reverted = rservice.reopts().reverted();
    if (!rservice.reopts().actions().empty()) {
      out.divergence_pct = rservice.reopts().actions().front().divergence_pct;
      out.reordered = rservice.reopts().actions().front().reordered;
    }
    out.final_execute = rservice.ticket(last).execute_cycles;
    out.first_result = rservice.ticket(first).result;
    out.final_result = rservice.ticket(last).result;
    std::ostringstream json;
    json << "{\"reopt_actions\": " << out.actions << ", \"reopt_kept\": " << out.kept
         << ", \"reopt_reverted\": " << out.reverted
         << ", \"reopt_divergence_pct\": " << out.divergence_pct
         << ", \"reopt_final_execute_cycles\": " << out.final_execute
         << ", \"reopt_timeline_hash\": \""
         << FingerprintKey({Fnv1a64(RenderReoptTimeline(rservice.reopts())), 0})
         << "\", \"reopt_cardstore_hash\": \""
         << FingerprintKey({Fnv1a64(RenderCardStore(rservice.cards())), 0}) << "\"}";
    out.json = json.str();
    return out;
  };

  // Gate 1+2: the injected misestimate (supplier below part-filter, contradicted by the tuple
  // counters) must trigger a re-plan whose kept candidate beats the reopt-off control — both
  // end promoted to the same tier, so the residual gap is purely the measured join order.
  const ReoptOutcome reopt_run = run_reopt_loop(true, false, false);
  const ReoptOutcome reopt_control = run_reopt_loop(false, false, false);
  const bool reopt_triggered = reopt_run.actions == 1 && reopt_run.reordered &&
                               reopt_run.divergence_pct >= 400 && reopt_run.kept == 1 &&
                               reopt_run.reverted == 0 && reopt_control.actions == 0;
  std::string reopt_diff;
  // Work stealing appends output in morsel-completion order, which differs across physical
  // plans, so results compare as multisets.
  const bool reopt_results_identical =
      Result::Equivalent(reopt_run.first_result, reopt_run.final_result, false, &reopt_diff) &&
      Result::Equivalent(reopt_control.final_result, reopt_run.final_result, false,
                         &reopt_diff);
  const double reopt_speedup = reopt_run.final_execute > 0
                                   ? static_cast<double>(reopt_control.final_execute) /
                                         static_cast<double>(reopt_run.final_execute)
                                   : 0.0;
  const bool reopt_improved =
      reopt_run.final_execute < reopt_control.final_execute && reopt_results_identical;
  std::printf("misestimate trigger: %llu action(s), divergence %llu%%, reordered %s %s\n",
              static_cast<unsigned long long>(reopt_run.actions),
              static_cast<unsigned long long>(reopt_run.divergence_pct),
              reopt_run.reordered ? "yes" : "no",
              reopt_triggered ? "[ok]" : "[FAIL: no re-plan]");
  std::printf("kept plan: execute %llu vs control %llu cycles (%.2fx), results %s %s\n",
              static_cast<unsigned long long>(reopt_run.final_execute),
              static_cast<unsigned long long>(reopt_control.final_execute), reopt_speedup,
              reopt_results_identical ? "identical" : "DIVERGED",
              reopt_improved ? "[ok]" : "[FAIL: no measured win]");

  // Gate 3: fault injection — the pessimize knob rewrites the already-optimal spine to the
  // worst measured order; the guard must catch the regression and revert the swap.
  const ReoptOutcome reopt_bad = run_reopt_loop(true, true, true);
  std::string reopt_bad_diff;
  const bool reopt_revert_ok =
      reopt_bad.actions == 1 && reopt_bad.kept == 0 && reopt_bad.reverted == 1 &&
      Result::Equivalent(reopt_bad.first_result, reopt_bad.final_result, false,
                         &reopt_bad_diff);
  std::printf("injected pessimizing rewrite: %llu reverted, %llu kept %s\n",
              static_cast<unsigned long long>(reopt_bad.reverted),
              static_cast<unsigned long long>(reopt_bad.kept),
              reopt_revert_ok ? "[ok]" : "[FAIL: guard did not revert]");

  // Gate 4: the whole closed loop is deterministic — an identical second run produces a
  // byte-identical reopt artifact (the reopt-smoke CI job diffs the JSON across two whole
  // bench invocations).
  const ReoptOutcome reopt_rerun = run_reopt_loop(true, false, false);
  const bool reopt_deterministic = reopt_run.json == reopt_rerun.json;
  std::printf("double run: reopt JSON %s\n",
              reopt_deterministic ? "byte-identical [ok]" : "[FAIL: non-deterministic]");

  const bool reopt_ok =
      reopt_triggered && reopt_improved && reopt_revert_ok && reopt_deterministic;

  if (GlobalBenchOptions().json) {
    std::ofstream reopt_out("BENCH_reopt.json");
    reopt_out << reopt_run.json << "\n";
    std::printf("# wrote BENCH_reopt.json\n");
  }

  if (GlobalBenchOptions().json) {
    JsonWriter json;
    json.BeginObject();
    json.Field("queries_per_pass", static_cast<uint64_t>(workload.size()));
    json.Field("workers", static_cast<uint64_t>(config.parallel.workers));
    json.Field("max_active_sessions", static_cast<uint64_t>(config.max_active_sessions));
    json.Field("cold_cycles", cold_cycles);
    json.Field("warm_cycles", warm_cycles);
    json.Field("warm_speedup", speedup);
    json.Field("cache_hits", cache.hits);
    json.Field("cache_misses", cache.misses);
    json.BeginArray("plans");
    for (const auto& [fingerprint, plan] : service.fleet_profile().plans()) {
      (void)fingerprint;
      json.BeginObject();
      json.Field("name", plan.name);
      json.Field("fingerprint", FingerprintKey({plan.fingerprint, 0}));
      json.Field("executions", plan.executions);
      json.Field("cache_hits", plan.cache_hits);
      json.Field("cache_misses", plan.cache_misses);
      json.Field("compile_cycles", plan.compile_cycles);
      json.Field("execute_cycles", plan.execute_cycles);
      json.Field("samples", plan.samples);
      json.EndObject();
    }
    json.EndArray();
    json.Field("governor_budget", budget);
    json.Field("governor_measured_share", measured_share);
    json.Field("governor_within_budget", governor_ok);
    json.BeginArray("governor_plans");
    for (const auto& [fingerprint, state] : service.governor().plans()) {
      json.BeginObject();
      json.Field("fingerprint", FingerprintKey({fingerprint, 0}));
      json.Field("name", state.name);
      json.Field("period", state.period);
      json.Field("observations", state.observations);
      json.Field("samples", state.samples);
      json.Field("overhead_share", state.OverheadShare());
      json.EndObject();
    }
    json.EndArray();
    json.BeginArray("window_rollups");
    for (const WindowRollup& rollup : service.windows().RollUpAll()) {
      json.BeginObject();
      json.Field("fingerprint", FingerprintKey({rollup.fingerprint, 0}));
      json.Field("name", rollup.name);
      json.Field("windows", rollup.window_count);
      json.Field("executions", rollup.executions);
      json.Field("samples", rollup.samples);
      json.Field("latency_p50", rollup.latency_p50);
      json.Field("latency_p95", rollup.latency_p95);
      json.Field("latency_max", rollup.latency_max);
      json.EndObject();
    }
    json.EndArray();
    json.Field("critpath_plans", static_cast<uint64_t>(service.criticality().plans().size()));
    json.Field("critpath_critical_cycles", critpath_critical_cycles);
    json.Field("critpath_wall_cycles", critpath_wall_cycles);
    json.Field("critpath_complete", critpath_ok);
    json.BeginArray("critpath_label_counts");
    for (int label = 0; label < kBottleneckLabels; ++label) {
      json.BeginObject();
      json.Field("label", BottleneckName(static_cast<Bottleneck>(label)));
      json.Field("pipelines", critpath_label_counts[label]);
      json.EndObject();
    }
    json.EndArray();
    json.BeginArray("critpath_plans_detail");
    for (const auto& [fingerprint, plan] : service.criticality().plans()) {
      json.BeginObject();
      json.Field("name", plan.name);
      json.Field("fingerprint", FingerprintKey({fingerprint, 0}));
      json.Field("executions", plan.executions);
      json.Field("critical_cycles", plan.critical_work_cycles);
      json.Field("top_pipeline", static_cast<uint64_t>(plan.top_pipeline));
      json.Field("top_share_pct", plan.top_share_pct);
      json.Field("bottleneck", BottleneckName(plan.dominant_label()));
      json.EndObject();
    }
    json.EndArray();
    json.Field("regression_false_positives", static_cast<uint64_t>(false_positives));
    json.Field("regressions_fired", static_cast<uint64_t>(findings.size()));
    json.Field("injected_shift_flagged", shift_flagged);
    json.Field("tier_cold_cost_cycles", tier_cold_cost);
    json.Field("tier_warm_avg_cycles", tier_warm_avg);
    json.Field("tier_control_variant_avg_cycles", tier_control_avg);
    json.Field("tier_warm_speedup", tier_warm_speedup);
    json.Field("tier_zero_new_code", tier_zero_new_code);
    json.Field("tier_patched_hits", tier_patched_hits);
    json.Field("tier_swaps", tiered.plan_cache().stats().tier_swaps);
    json.Field("tier_promotion_runs", static_cast<uint64_t>(tier_promotion_runs));
    json.Field("tier_results_identical", tier_results_identical);
    json.Field("tier_attribution_parity", tier_attribution_parity);
    json.Field("tier_timeline_samples", timeline.samples);
    json.Field("tier_timeline_baseline_samples", timeline.baseline_samples);
    json.Field("tier_timeline_optimized_samples", timeline.optimized_samples);
    json.Field("tier_transitions", timeline.transitions);
    json.Field("tier_events", static_cast<uint64_t>(tiered.tier_events().size()));
    json.Field("replay_identical", replay1.identical);
    json.Field("replay_reports_match", replay_reports_match);
    json.Field("replay_recorded_queries", replay1.recorded_queries);
    json.Field("replay_10x_queries", replay_10x.replayed_queries);
    json.Field("replay_10x_completed", replay_10x.replayed_completed);
    json.Field("replay_10x_rejected", replay_10x.replayed_rejected);
    json.Field("replay_10x_timed_out", replay_10x.replayed_timed_out);
    json.Field("replay_scheduler_results_diverged", replay_sched.results_diverged);
    json.Field("replay_scheduler_cycles", replay_sched.replayed_cycles);
    json.Field("replay_slack_results_diverged", replay_slack.results_diverged);
    json.Field("replay_slack_cycles", replay_slack.replayed_cycles);
    json.Field("sched_slack_ordered_scans", sched_stats.slack_ordered_scans);
    json.Field("sched_slack_hits", sched_stats.slack_hits);
    json.Field("sched_deferred_morsels", sched_stats.deferred_morsels);
    json.Field("sched_slack_steals", sched_stats.slack_steals);
    json.Field("sched_expected_critical_cycles", sched_expected_critical);
    json.Field("sched_infeasible_rejections", sched_infeasible);
    json.Field("sched_repartitions_applied", sched_repairs_applied);
    json.Field("sched_repartitions_reverted", sched_repairs_reverted);
    json.Field("sched_results_identical", sched_results_identical);
    json.Field("sched_ok", sched_ok);
    json.Field("shard_count", static_cast<uint64_t>(kBenchShards));
    json.Field("shard_fanout_queries", shard_run.fanout);
    json.Field("shard_routed_queries", shard_run.routed);
    json.Field("shard_coordinated_invalidations", shard_run.invalidations);
    json.Field("shard_cross_node_bytes", shard_run.cross_bytes);
    json.Field("shard_cross_node_events", shard_run.cross_events);
    json.Field("shard_merge_samples", shard_run.merge_samples);
    json.Field("shard_fleet_leaves", shard_run.leaves);
    json.Field("shard_fleet_levels", static_cast<uint64_t>(shard_run.levels));
    json.Field("shard_fleet_plans", shard_run.fleet_plans);
    json.Field("shard_rollup_cycles", shard_run.rollup_cycles);
    json.Field("shard_results_identical", shard_run.results_ok);
    json.Field("shard_merge_operator_visible", shard_run.merge_visible);
    json.Field("shard_fleet_rollup_match", shard_fleet_match);
    json.Field("shard_one_identical", shard_one_identical);
    json.Field("shard_replay_results_diverged", shard_replay.results_diverged);
    json.Field("shard_replay_completed", shard_replay.replayed_completed);
    json.Field("shard_ok", shard_ok);
    json.Field("reopt_actions", reopt_run.actions);
    json.Field("reopt_kept", reopt_run.kept);
    json.Field("reopt_reverted_injected", reopt_bad.reverted);
    json.Field("reopt_divergence_pct", reopt_run.divergence_pct);
    json.Field("reopt_final_execute_cycles", reopt_run.final_execute);
    json.Field("reopt_control_execute_cycles", reopt_control.final_execute);
    json.Field("reopt_speedup", reopt_speedup);
    json.Field("reopt_results_identical", reopt_results_identical);
    json.Field("reopt_deterministic", reopt_deterministic);
    json.Field("reopt_ok", reopt_ok);
    json.EndObject();
    json.WriteTo("BENCH_service.json");
  }
  if (GlobalBenchOptions().json) {
    // The shard-smoke CI job runs the bench twice and diffs this file byte for byte: the
    // hierarchical roll-up must be a pure function of the submission sequence.
    std::ofstream fleet_out("BENCH_shard_fleet.json");
    fleet_out << shard_run.fleet_json;
    std::printf("# wrote BENCH_shard_fleet.json\n");
  }

  std::printf(
      "Expected shape: the warm pass serves every query from the plan cache, so its\n"
      "throughput exceeds the cold pass by at least 2x at small scales where compilation\n"
      "dominates; the governor holds measured sampling overhead within half a point of its\n"
      "budget; the regression detector flags only the injected literal shift; under tiering,\n"
      "literal variants patch into the cached code (zero new bytes, >=2x cheaper than an\n"
      "exact-keyed variant recompile) and the hot fingerprint is promoted in the background\n"
      "with bit-identical results and a fully tier-attributed timeline; replaying a recorded\n"
      "trace on this build reproduces the recording bit for bit, and the 10x what-if sheds\n"
      "surplus load through admission rejections rather than failures; the slack feedback\n"
      "loop reorders learned scans and bounces infeasible deadlines without moving a single\n"
      "result byte, and the misplaced-column scenario resolves as exactly one kept repair;\n"
      "the 4-shard service answers every fan-out query identically to the unsharded engine\n"
      "with its Merge operator and CROSS_NODE traffic visible in a deterministic fleet\n"
      "aggregate, the 1-shard tower is byte-identical to the plain service, and the\n"
      "shard-count what-if replay moves streams and timing but not one result; the closed\n"
      "reopt loop re-plans the misestimated spine once, the guard keeps the faster join\n"
      "order and reverts an injected pessimizing rewrite, and the loop replays to the\n"
      "same bytes.\n");
  const bool ok = speedup >= 2.0 && governor_ok && rankings_agree && critpath_ok &&
                  false_positives == 0 && shift_flagged && tiering_ok && replay_ok &&
                  sched_ok && shard_ok && reopt_ok;
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace dfp

int main(int argc, char** argv) {
  dfp::BenchInit(argc, argv);
  return dfp::Main();
}
