// Query service experiment: throughput of a warm compiled-plan cache against cold compilation,
// plus the fleet-level profile the service aggregates while serving — and the continuous
// profiling layer on top of it:
//
//  - A repeating workload of TPC-H-style queries is pushed through the QueryService twice: the
//    first pass compiles every distinct plan (cold), the second hits the cache for all of them
//    (warm). In a compiling engine serving short queries, compilation dominates end-to-end
//    cost, so the warm pass sustains a multiple of the cold pass's throughput.
//  - The adaptive sampling governor runs with a 2% overhead budget; after a few convergence
//    passes the final pass's measured sampling cost (capture + flush cycles the PMU actually
//    charged) must land within half a point of the budget, and the windowed operator rankings
//    must agree with the cumulative fleet profile on this steady workload.
//  - A regression scenario: baseline snapshot, one identical pass (must flag nothing — zero
//    false positives), then a q6 variant with much wider literals sharing the structural
//    fingerprint (must flag the shift).
#include <cmath>

#include "bench/common.h"
#include "src/service/query_service.h"
#include "src/sql/binder.h"

namespace dfp {
namespace {

// q6 with much wider literals: same plan structure (and fingerprint), drastically different
// selectivity — the injected plan-mix shift.
constexpr const char* kShiftedQ6 =
    "select sum(l_extendedprice * l_discount) as revenue "
    "from lineitem "
    "where l_shipdate >= date '1992-01-01' and l_shipdate < date '1999-01-01' "
    "and l_discount between 0.00 and 0.10 and l_quantity < 100";

int Main() {
  PrintHeader("Query service: plan cache and fleet profiling",
              "Section 5.2 production framing, extended to a serving process");

  ServiceConfig config;
  config.parallel.workers = 4;
  config.max_active_sessions = 2;
  config.session_hashtables_bytes = 32ull << 20;
  config.session_output_bytes = 16ull << 20;
  config.profiling.period = 5000;
  config.continuous.governor.enabled = true;
  config.continuous.governor.overhead_budget = 0.02;

  DatabaseConfig db_config;
  db_config.extra_bytes = ServiceArenaBytes(config);
  auto db = std::make_unique<Database>(db_config);
  TpchOptions options;
  options.scale = BenchScale();
  TpchRowCounts counts = GenerateTpch(*db, options);
  std::printf("# TPC-H-style dataset: scale %.4g, %llu lineitem rows\n", options.scale,
              static_cast<unsigned long long>(counts.lineitem));

  QueryService service(*db, config);
  // Six distinct plans: the cold pass compiles each one, the warm pass hits on all of them.
  const std::vector<std::string> workload = {"q6", "q1", "q3", "q14", "q4", "q12"};

  auto run_pass = [&](const char* label) {
    const uint64_t before = service.ServiceNowCycles();
    for (const std::string& name : workload) {
      service.Submit(BuildQueryPlan(*db, FindQuery(name)), name);
    }
    service.Drain();
    const uint64_t cycles = service.ServiceNowCycles() - before;
    std::printf("%-6s %zu queries in %12llu cycles (%8.3f ms simulated, %.2f queries/ms)\n",
                label, workload.size(), static_cast<unsigned long long>(cycles),
                CyclesToMs(cycles),
                static_cast<double>(workload.size()) / CyclesToMs(cycles));
    return cycles;
  };

  std::printf("\n--- Throughput: %zu-query workload, %u workers, %u concurrent sessions ---\n",
              workload.size(), config.parallel.workers, config.max_active_sessions);
  const uint64_t cold_cycles = run_pass("cold");
  const uint64_t warm_cycles = run_pass("warm");
  const double speedup = static_cast<double>(cold_cycles) / static_cast<double>(warm_cycles);
  std::printf("warm/cold throughput: %.2fx\n", speedup);

  const PlanCacheStats& cache = service.plan_cache().stats();
  std::printf("\n--- Plan cache ---\n");
  std::printf("hits %llu  misses %llu  evictions %llu  resident %llu entries / %llu code bytes\n",
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses),
              static_cast<unsigned long long>(cache.evictions),
              static_cast<unsigned long long>(cache.resident_entries),
              static_cast<unsigned long long>(cache.resident_code_bytes));

  std::printf("\n%s\n", service.fleet_profile().Render().c_str());

  // --- Adaptive sampling governor: convergence and measured overhead ---
  std::printf("--- Sampling governor: %.1f%% budget, convergence passes ---\n",
              100.0 * config.continuous.governor.overhead_budget);
  for (int pass = 0; pass < 5; ++pass) {
    run_pass("tune");
  }
  // Final measured pass: aggregate share = total charged sampling cycles over total useful
  // (non-overhead) busy cycles of the pass's tickets.
  const TicketId final_first = static_cast<TicketId>(service.ticket_count() + 1);
  run_pass("final");
  uint64_t final_overhead = 0;
  uint64_t final_busy = 0;
  for (TicketId id = final_first; id <= service.ticket_count(); ++id) {
    final_overhead += service.ticket(id).sampling_overhead.total_cycles();
    final_busy += service.ticket(id).busy_cycles;
  }
  const double measured_share =
      final_busy > final_overhead
          ? static_cast<double>(final_overhead) /
                static_cast<double>(final_busy - final_overhead)
          : 0;
  const double budget = config.continuous.governor.overhead_budget;
  const bool governor_ok = std::abs(measured_share - budget) <= 0.005;
  std::printf("final pass: overhead %llu cycles over %llu useful -> %.3f%% (budget %.1f%%) %s\n",
              static_cast<unsigned long long>(final_overhead),
              static_cast<unsigned long long>(final_busy - final_overhead),
              100.0 * measured_share, 100.0 * budget, governor_ok ? "[ok]" : "[FAIL]");
  std::printf("\n%s\n", service.governor().Render().c_str());

  // Windowed vs. cumulative: on a steady workload both views must rank operators identically.
  bool rankings_agree = true;
  for (const auto& [fingerprint, plan] : service.fleet_profile().plans()) {
    OperatorId fleet_top = kNoOperator;
    uint64_t fleet_samples = 0;
    for (const auto& [op, cost] : plan.operators) {
      if (cost.samples > fleet_samples) {
        fleet_samples = cost.samples;
        fleet_top = op;
      }
    }
    WindowRollup rollup = service.windows().RollUp(fingerprint);
    OperatorId window_top = kNoOperator;
    uint64_t window_samples = 0;
    for (const auto& [op, stats] : rollup.operators) {
      if (stats.samples > window_samples) {
        window_samples = stats.samples;
        window_top = op;
      }
    }
    if (fleet_samples > 0 && window_samples > 0 && fleet_top != window_top) {
      rankings_agree = false;
      std::printf("ranking mismatch on %s: cumulative top op %llu vs windowed %llu\n",
                  plan.name.c_str(), static_cast<unsigned long long>(fleet_top),
                  static_cast<unsigned long long>(window_top));
    }
  }
  std::printf("cumulative vs windowed operator rankings: %s\n",
              rankings_agree ? "agree [ok]" : "[FAIL]");

  std::printf("\n%s\n", service.windows().Render().c_str());

  // --- Regression detection: identical rerun must be quiet, injected shift must fire ---
  std::printf("--- Regression detection ---\n");
  service.SnapshotBaseline();
  run_pass("same");
  const auto rerun_findings = service.DetectRegressions();
  const size_t false_positives = rerun_findings.size();
  std::printf("identical rerun: %zu finding(s) %s\n", false_positives,
              false_positives == 0 ? "[ok]" : "[FAIL: false positive]");
  if (false_positives > 0) {
    std::printf("%s", RenderRegressionReport(rerun_findings).c_str());
  }

  const TicketId shift_probe = service.Submit(PlanSql(*db, FindQuery("q6").sql), "q6");
  service.Drain();
  const uint64_t q6_fingerprint = service.ticket(shift_probe).fingerprint.structure;
  // Refresh the baseline so the post-watermark aggregate holds only the shifted executions.
  service.SnapshotBaseline();
  for (int i = 0; i < 6; ++i) {
    service.Submit(PlanSql(*db, kShiftedQ6), "q6");
    service.Drain();
  }
  auto findings = service.DetectRegressions();
  bool shift_flagged = false;
  for (const auto& finding : findings) {
    shift_flagged |= finding.fingerprint == q6_fingerprint;
  }
  std::printf("injected q6 literal shift: %zu finding(s), q6 %s\n", findings.size(),
              shift_flagged ? "flagged [ok]" : "[FAIL: not flagged]");
  std::printf("\n%s\n", RenderRegressionReport(findings).c_str());

  if (GlobalBenchOptions().json) {
    JsonWriter json;
    json.BeginObject();
    json.Field("queries_per_pass", static_cast<uint64_t>(workload.size()));
    json.Field("workers", static_cast<uint64_t>(config.parallel.workers));
    json.Field("max_active_sessions", static_cast<uint64_t>(config.max_active_sessions));
    json.Field("cold_cycles", cold_cycles);
    json.Field("warm_cycles", warm_cycles);
    json.Field("warm_speedup", speedup);
    json.Field("cache_hits", cache.hits);
    json.Field("cache_misses", cache.misses);
    json.BeginArray("plans");
    for (const auto& [fingerprint, plan] : service.fleet_profile().plans()) {
      (void)fingerprint;
      json.BeginObject();
      json.Field("name", plan.name);
      json.Field("fingerprint", FingerprintKey({plan.fingerprint, 0}));
      json.Field("executions", plan.executions);
      json.Field("cache_hits", plan.cache_hits);
      json.Field("cache_misses", plan.cache_misses);
      json.Field("compile_cycles", plan.compile_cycles);
      json.Field("execute_cycles", plan.execute_cycles);
      json.Field("samples", plan.samples);
      json.EndObject();
    }
    json.EndArray();
    json.Field("governor_budget", budget);
    json.Field("governor_measured_share", measured_share);
    json.Field("governor_within_budget", governor_ok);
    json.BeginArray("governor_plans");
    for (const auto& [fingerprint, state] : service.governor().plans()) {
      json.BeginObject();
      json.Field("fingerprint", FingerprintKey({fingerprint, 0}));
      json.Field("name", state.name);
      json.Field("period", state.period);
      json.Field("observations", state.observations);
      json.Field("samples", state.samples);
      json.Field("overhead_share", state.OverheadShare());
      json.EndObject();
    }
    json.EndArray();
    json.BeginArray("window_rollups");
    for (const WindowRollup& rollup : service.windows().RollUpAll()) {
      json.BeginObject();
      json.Field("fingerprint", FingerprintKey({rollup.fingerprint, 0}));
      json.Field("name", rollup.name);
      json.Field("windows", rollup.window_count);
      json.Field("executions", rollup.executions);
      json.Field("samples", rollup.samples);
      json.Field("latency_p50", rollup.latency_p50);
      json.Field("latency_p95", rollup.latency_p95);
      json.Field("latency_max", rollup.latency_max);
      json.EndObject();
    }
    json.EndArray();
    json.Field("regression_false_positives", static_cast<uint64_t>(false_positives));
    json.Field("regressions_fired", static_cast<uint64_t>(findings.size()));
    json.Field("injected_shift_flagged", shift_flagged);
    json.EndObject();
    json.WriteTo("BENCH_service.json");
  }

  std::printf(
      "Expected shape: the warm pass serves every query from the plan cache, so its\n"
      "throughput exceeds the cold pass by at least 2x at small scales where compilation\n"
      "dominates; the governor holds measured sampling overhead within half a point of its\n"
      "budget; the regression detector flags only the injected literal shift.\n");
  const bool ok = speedup >= 2.0 && governor_ok && rankings_agree && false_positives == 0 &&
                  shift_flagged;
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace dfp

int main(int argc, char** argv) {
  dfp::BenchInit(argc, argv);
  return dfp::Main();
}
