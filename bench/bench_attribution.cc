// Reproduces Table 2: share of samples attributed to operators / kernel tasks / unattributed
// system libraries, aggregated over the whole query suite with Register Tagging.
#include "bench/common.h"
#include "src/profiling/reports.h"
#include "src/util/table_printer.h"

namespace dfp {
namespace {

int Main() {
  PrintHeader("Sample attribution over the query suite", "Table 2");
  std::unique_ptr<Database> db = MakeTpchDatabase(BenchScale(0.005));
  QueryEngine engine(db.get());

  AttributionStats total;
  TablePrinter per_query({"Query", "Samples", "Operators", "Kernel", "Unattributed", "Via tag"});
  for (size_t c = 1; c <= 5; ++c) {
    per_query.SetRightAlign(c, true);
  }
  for (const QuerySpec& spec : TpchQuerySuite()) {
    ProfilingConfig config;
    config.period = 1000;
    ProfilingSession session(config);
    CompiledQuery query = engine.Compile(BuildQueryPlan(*db, spec), &session, spec.name);
    engine.Execute(query);
    session.Resolve(db->code_map());
    AttributionStats stats = session.Stats();
    total.total += stats.total;
    total.operator_samples += stats.operator_samples;
    total.kernel_samples += stats.kernel_samples;
    total.unattributed += stats.unattributed;
    total.ambiguous += stats.ambiguous;
    total.via_tag += stats.via_tag;
    auto pct = [&](uint64_t n) {
      return stats.total > 0
                 ? PercentString(static_cast<double>(n) / static_cast<double>(stats.total))
                 : std::string("-");
    };
    per_query.AddRow({spec.name, StrFormat("%llu", static_cast<unsigned long long>(stats.total)),
                      pct(stats.operator_samples), pct(stats.kernel_samples),
                      pct(stats.unattributed), pct(stats.via_tag)});
  }
  std::printf("\nPer-query breakdown:\n%s\n", per_query.Render().c_str());
  std::printf("--- Table 2: aggregate over the suite ---\n%s\n",
              RenderAttributionStats(total).c_str());
  std::printf(
      "Paper reference: 98.0%% attributed to the engine (95.4%% operators + 2.6%% kernel tasks),\n"
      "2.0%% unattributed system libraries (string routines, for which tagging is not applied).\n");
  std::printf("Ambiguous multi-owner samples: %llu of %llu\n",
              static_cast<unsigned long long>(total.ambiguous),
              static_cast<unsigned long long>(total.total));
  return 0;
}

}  // namespace
}  // namespace dfp

int main(int argc, char** argv) {
  dfp::BenchInit(argc, argv);
  return dfp::Main();
}
