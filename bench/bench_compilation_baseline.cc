// Ablation: compilation vs. interpretation, and the effect of the IR optimization pipeline.
// Not a paper figure, but the design decision DESIGN.md calls out — the compiling execution
// model is the reason profiling needs Tailored Profiling in the first place.
#include "bench/common.h"
#include "src/interp/interpreter.h"
#include "src/util/table_printer.h"
#include "src/vcpu/cost_model.h"

namespace dfp {
namespace {

int Main() {
  PrintHeader("Ablation: compiled vs. unoptimized-IR execution",
              "DESIGN.md ablation (execution model)");
  std::unique_ptr<Database> db = MakeTpchDatabase(BenchScale(0.005));
  QueryEngine engine(db.get());

  TablePrinter table({"Query", "Optimized cycles", "Unoptimized cycles", "IR opt speedup",
                      "IR instrs opt/unopt"});
  for (size_t c = 1; c <= 4; ++c) {
    table.SetRightAlign(c, true);
  }
  for (const QuerySpec& spec : TpchQuerySuite()) {
    CompiledQuery optimized = engine.Compile(BuildQueryPlan(*db, spec), nullptr, spec.name);
    engine.Execute(optimized);
    const uint64_t optimized_cycles = engine.last_cycles();

    CodegenOptions no_opt;
    no_opt.optimize_ir = false;
    CompiledQuery unoptimized =
        engine.Compile(BuildQueryPlan(*db, spec), nullptr, spec.name + "_noopt", no_opt);
    engine.Execute(unoptimized);
    const uint64_t unoptimized_cycles = engine.last_cycles();

    table.AddRow(
        {spec.name, StrFormat("%llu", static_cast<unsigned long long>(optimized_cycles)),
         StrFormat("%llu", static_cast<unsigned long long>(unoptimized_cycles)),
         StrFormat("%.2fx", static_cast<double>(unoptimized_cycles) /
                                static_cast<double>(optimized_cycles)),
         StrFormat("%llu/%llu", static_cast<unsigned long long>(optimized.TotalIrInstrs()),
                   static_cast<unsigned long long>(unoptimized.TotalIrInstrs()))});
  }
  std::printf("\n%s\n", table.Render().c_str());
  std::printf(
      "The optimization passes (constant folding, address-mode fusing, CSE, DCE) shrink the\n"
      "generated IR and the simulated runtime; the Tagging Dictionary stays correct through\n"
      "all of them (see bench_accuracy).\n");
  return 0;
}

}  // namespace
}  // namespace dfp

int main(int argc, char** argv) {
  dfp::BenchInit(argc, argv);
  return dfp::Main();
}
