// Reproduces Figure 6a / Figure 9b (cost-annotated query plan) and Figure 6b (operator-annotated
// IR listing) for the paper's Figure 9 use-case query.
#include "bench/common.h"
#include "src/profiling/reports.h"
#include "src/util/chart.h"

namespace dfp {
namespace {

int Main() {
  PrintHeader("Per-operator cost profile of the Figure 9 query",
              "Figure 6a / Figure 9b (annotated plan), Figure 6b (annotated IR listing)");
  std::unique_ptr<Database> db = MakeTpchDatabase(BenchScale());
  QueryEngine engine(db.get());

  ProfilingConfig config;
  config.period = 5000;  // INST_RETIRED every 5000 events, as in the paper.
  ProfilingSession session(config);
  CompiledQuery query = engine.Compile(BuildFig9Plan(*db), &session, "fig9");
  Result result = engine.Execute(query);
  session.Resolve(db->code_map());

  std::printf("\nQuery: Select l_orderkey, avg(l_extendedprice) From lineitem, orders\n");
  std::printf("       Where o_orderdate < '1995-04-01' and o_orderkey = l_orderkey\n");
  std::printf("       Group By l_orderkey   (%zu result groups)\n\n", result.row_count());

  OperatorProfile profile = BuildOperatorProfile(session, query);
  std::printf("--- Figure 9b: query plan annotated with per-operator cost ---\n%s\n",
              RenderAnnotatedPlan(profile, query).c_str());

  std::vector<std::pair<std::string, double>> bars;
  for (const OperatorCost& cost : profile.operators) {
    bars.emplace_back(cost.label, cost.share);
  }
  std::printf("%s\n", RenderBarChart(bars, 40).c_str());

  // The probe pipeline (scan lineitem -> probe -> aggregate) is the interesting one: find the
  // pipeline whose source scans lineitem.
  uint32_t probe_pipeline = 0;
  for (const PipelineArtifact& artifact : query.pipelines) {
    if (artifact.pipeline.name.find("lineitem") != std::string::npos) {
      probe_pipeline = artifact.pipeline.id;
    }
  }
  ListingOptions listing;
  listing.pipeline = probe_pipeline;
  std::printf("--- Figure 6b: probe pipeline IR annotated with samples and operators ---\n%s\n",
              RenderAnnotatedListing(session, query, listing).c_str());

  std::printf("--- Attribution ---\n%s\n", RenderAttributionStats(session.Stats()).c_str());
  std::printf(
      "Expected shape (paper): aggregation >~ join >> scans; the directory-lookup load and the\n"
      "per-tuple divisions are the hottest lines of the probe pipeline.\n");
  return 0;
}

}  // namespace
}  // namespace dfp

int main(int argc, char** argv) {
  dfp::BenchInit(argc, argv);
  return dfp::Main();
}
