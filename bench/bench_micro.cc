// Google-benchmark microbenchmarks of the substrate itself (wall-clock, not simulated cycles):
// hashing, cache model, hash-table insert through the compiled runtime, query compilation, and
// end-to-end pipeline execution throughput of the VCPU.
#include <benchmark/benchmark.h>

#include "src/engine/query_engine.h"
#include "src/plan/builder.h"
#include "src/runtime/hashtable.h"
#include "src/tpch/datagen.h"
#include "src/tpch/queries.h"
#include "src/util/hash.h"
#include "src/vcpu/cpu.h"

namespace dfp {
namespace {

void BM_HashKey(benchmark::State& state) {
  uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(HashKey(++key));
  }
}
BENCHMARK(BM_HashKey);

void BM_CacheAccessSequential(benchmark::State& state) {
  CacheHierarchy cache;
  uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Access(addr += 8));
  }
}
BENCHMARK(BM_CacheAccessSequential);

void BM_CacheAccessRandom(benchmark::State& state) {
  CacheHierarchy cache;
  uint64_t x = 88172645463325252ull;
  for (auto _ : state) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    benchmark::DoNotOptimize(cache.Access(x & ((64u << 20) - 1)));
  }
}
BENCHMARK(BM_CacheAccessRandom);

struct RuntimeFixture {
  RuntimeFixture() : mem(64ull << 20) {
    region = mem.CreateRegion("ht", 48ull << 20);
    runtime = std::make_unique<Runtime>(&mem, &code_map, region);
  }
  VMem mem;
  CodeMap code_map;
  Pmu pmu;
  uint32_t region;
  std::unique_ptr<Runtime> runtime;
};

void BM_CompiledHashTableInsert(benchmark::State& state) {
  RuntimeFixture fixture;
  constexpr uint64_t kCapacity = 1 << 20;
  VAddr table = CreateHashTable(fixture.mem, fixture.region, kCapacity, 16);
  Cpu cpu(fixture.mem, fixture.code_map, fixture.pmu);
  uint64_t key = 0;
  uint64_t inserted = 0;
  for (auto _ : state) {
    if (inserted == kCapacity) {  // Recycle: the benchmark may run past one table's capacity.
      fixture.mem.ResetRegion(fixture.region);
      table = CreateHashTable(fixture.mem, fixture.region, kCapacity, 16);
      inserted = 0;
    }
    uint64_t args[] = {table, HashKey(++key)};
    benchmark::DoNotOptimize(cpu.CallFunction(fixture.runtime->ht_insert_fn(), args));
    ++inserted;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CompiledHashTableInsert);

struct EngineFixture {
  EngineFixture() {
    db = std::make_unique<Database>();
    TpchOptions options;
    options.scale = 0.002;
    GenerateTpch(*db, options);
  }
  std::unique_ptr<Database> db;
};

EngineFixture& SharedEngine() {
  static EngineFixture fixture;
  return fixture;
}

void BM_CompileFig9(benchmark::State& state) {
  EngineFixture& fixture = SharedEngine();
  QueryEngine engine(fixture.db.get());
  for (auto _ : state) {
    CompiledQuery query = engine.Compile(BuildFig9Plan(*fixture.db), nullptr, "bench");
    benchmark::DoNotOptimize(query.pipelines.size());
  }
}
BENCHMARK(BM_CompileFig9);

void BM_ExecuteFig9(benchmark::State& state) {
  EngineFixture& fixture = SharedEngine();
  QueryEngine engine(fixture.db.get());
  CompiledQuery query = engine.Compile(BuildFig9Plan(*fixture.db), nullptr, "bench");
  uint64_t simulated = 0;
  uint64_t instructions = 0;
  for (auto _ : state) {
    Result result = engine.Execute(query);
    benchmark::DoNotOptimize(result.row_count());
    simulated += engine.last_cycles();
    instructions += engine.last_cpu_stats().instructions;
  }
  state.counters["sim_instr/s"] = benchmark::Counter(static_cast<double>(instructions),
                                                     benchmark::Counter::kIsRate);
  state.counters["sim_cycles_per_run"] =
      static_cast<double>(simulated) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_ExecuteFig9)->Unit(benchmark::kMillisecond);

void BM_ExecuteFig9Profiled(benchmark::State& state) {
  EngineFixture& fixture = SharedEngine();
  QueryEngine engine(fixture.db.get());
  ProfilingConfig config;
  config.period = 5000;
  for (auto _ : state) {
    ProfilingSession session(config);
    CompiledQuery query = engine.Compile(BuildFig9Plan(*fixture.db), &session, "bench");
    Result result = engine.Execute(query);
    session.Resolve(fixture.db->code_map());
    benchmark::DoNotOptimize(session.resolved().size());
  }
}
BENCHMARK(BM_ExecuteFig9Profiled)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dfp

BENCHMARK_MAIN();
