// Shared setup for the benchmark/experiment binaries.
#ifndef DFP_BENCH_COMMON_H_
#define DFP_BENCH_COMMON_H_

#include <cstdio>
#include <memory>
#include <string>

#include "src/engine/query_engine.h"
#include "src/tpch/datagen.h"
#include "src/tpch/queries.h"
#include "src/util/str.h"

namespace dfp {

// Default experiment scale: large enough for stable sample counts, small enough to keep the
// whole experiment suite in seconds. Override with the DFP_SCALE environment variable.
inline double BenchScale(double fallback = 0.01) {
  const char* env = std::getenv("DFP_SCALE");
  if (env != nullptr) {
    return std::atof(env);
  }
  return fallback;
}

inline std::unique_ptr<Database> MakeTpchDatabase(double scale, bool correlated_dates = false) {
  auto db = std::make_unique<Database>();
  TpchOptions options;
  options.scale = scale;
  options.correlated_order_dates = correlated_dates;
  TpchRowCounts counts = GenerateTpch(*db, options);
  std::printf("# TPC-H-style dataset: scale %.4g, %llu orders, %llu lineitem rows%s\n", scale,
              static_cast<unsigned long long>(counts.orders),
              static_cast<unsigned long long>(counts.lineitem),
              correlated_dates ? " (correlated order dates)" : "");
  return db;
}

inline void PrintHeader(const char* experiment, const char* paper_ref) {
  std::printf("==================================================================\n");
  std::printf("Experiment: %s\n", experiment);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("==================================================================\n");
}

}  // namespace dfp

#endif  // DFP_BENCH_COMMON_H_
