// Shared setup for the benchmark/experiment binaries.
#ifndef DFP_BENCH_COMMON_H_
#define DFP_BENCH_COMMON_H_

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "src/engine/query_engine.h"
#include "src/tpch/datagen.h"
#include "src/tpch/queries.h"
#include "src/util/str.h"

namespace dfp {

// Flags shared by all experiment binaries:
//   --smoke  quick CI pass: smallest useful scale, unchanged logic.
//   --json   additionally write the machine-readable BENCH_<name>.json (where supported).
struct BenchOptions {
  bool smoke = false;
  bool json = false;
};

inline BenchOptions& GlobalBenchOptions() {
  static BenchOptions options;
  return options;
}

// Call first from main(). Unknown flags abort with usage, so CI typos fail loudly.
inline void BenchInit(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      GlobalBenchOptions().smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      GlobalBenchOptions().json = true;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json]\n", argv[0]);
      std::exit(2);
    }
  }
}

// Default experiment scale: large enough for stable sample counts, small enough to keep the
// whole experiment suite in seconds. Override with the DFP_SCALE environment variable;
// --smoke drops to the smallest scale that still exercises every code path.
inline double BenchScale(double fallback = 0.01) {
  const char* env = std::getenv("DFP_SCALE");
  if (env != nullptr) {
    return std::atof(env);
  }
  if (GlobalBenchOptions().smoke) {
    return 0.002;
  }
  return fallback;
}

// Minimal JSON emitter for the BENCH_*.json artifacts: objects/arrays of numbers and strings,
// enough for plotting scripts — not a general serializer.
class JsonWriter {
 public:
  void BeginObject() { Open('{'); }
  void EndObject() { Close('}'); }
  void BeginArray(const std::string& key) {
    Key(key);
    Open('[');
  }
  void BeginArray() { Open('['); }
  void EndArray() { Close(']'); }
  void BeginObject(const std::string& key) {
    Key(key);
    Open('{');
  }

  void Field(const std::string& key, const std::string& value) {
    Key(key);
    out_ += '"';
    out_ += value;
    out_ += '"';
  }
  // Without this overload a string literal would pick the bool conversion
  // (built-in pointer->bool beats the user-defined std::string constructor).
  void Field(const std::string& key, const char* value) {
    Field(key, std::string(value));
  }
  void Field(const std::string& key, double value) {
    Key(key);
    out_ += StrFormat("%.6g", value);
  }
  void Field(const std::string& key, uint64_t value) {
    Key(key);
    out_ += StrFormat("%llu", static_cast<unsigned long long>(value));
  }
  void Field(const std::string& key, bool value) {
    Key(key);
    out_ += value ? "true" : "false";
  }

  // Writes to `path` and reports where the artifact landed.
  void WriteTo(const std::string& path) {
    out_ += '\n';
    FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      std::exit(1);
    }
    std::fwrite(out_.data(), 1, out_.size(), file);
    std::fclose(file);
    std::printf("# wrote %s\n", path.c_str());
  }

 private:
  void Separator() {
    if (!out_.empty() && out_.back() != '{' && out_.back() != '[' && out_.back() != ':') {
      out_ += ',';
    }
  }
  void Key(const std::string& key) {
    Separator();
    out_ += '"';
    out_ += key;
    out_ += "\":";
  }
  void Open(char c) {
    Separator();
    out_ += c;
  }
  void Close(char c) { out_ += c; }

  std::string out_;
};

inline std::unique_ptr<Database> MakeTpchDatabase(double scale, bool correlated_dates = false) {
  auto db = std::make_unique<Database>();
  TpchOptions options;
  options.scale = scale;
  options.correlated_order_dates = correlated_dates;
  TpchRowCounts counts = GenerateTpch(*db, options);
  std::printf("# TPC-H-style dataset: scale %.4g, %llu orders, %llu lineitem rows%s\n", scale,
              static_cast<unsigned long long>(counts.orders),
              static_cast<unsigned long long>(counts.lineitem),
              correlated_dates ? " (correlated order dates)" : "");
  return db;
}

inline void PrintHeader(const char* experiment, const char* paper_ref) {
  std::printf("==================================================================\n");
  std::printf("Experiment: %s\n", experiment);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("==================================================================\n");
}

}  // namespace dfp

#endif  // DFP_BENCH_COMMON_H_
