// Morsel-driven scaling experiment: the same compiled query executed on worker pools of
// 1/2/4/8 simulated cores. Reports simulated-cycle speedup and per-worker busy/idle shares,
// then drills into the 4-worker run with the multi-level profiles — per-worker activity
// timeline, merged cost-annotated plan, and attribution statistics — to show that every
// Tailored Profiling report works unchanged on the merged multi-worker sample stream.
#include "bench/common.h"
#include "src/profiling/reports.h"

namespace dfp {
namespace {

CompiledQuery CompileParallel(QueryEngine& engine, Database& db, const QuerySpec& spec,
                              ProfilingSession* session, const std::string& name) {
  CodegenOptions options;
  options.parallel = true;
  return engine.Compile(BuildQueryPlan(db, spec), session, name, options);
}

int Main() {
  PrintHeader("Morsel-driven scaling", "Section 3.1 of the morsel-driven execution extension");
  std::unique_ptr<Database> db = MakeTpchDatabase(BenchScale());
  QueryEngine engine(db.get());
  JsonWriter json;
  json.BeginObject();
  json.BeginArray("scaling");

  for (const char* name : {"q1", "q6", "qgj"}) {
    const QuerySpec& spec = FindQuery(name);
    CompiledQuery sequential = engine.Compile(BuildQueryPlan(*db, spec), nullptr, spec.name);
    engine.Execute(sequential);
    const uint64_t base_cycles = engine.last_cycles();
    std::printf("\n--- %s: %llu single-threaded cycles (%.2f ms simulated) ---\n", name,
                static_cast<unsigned long long>(base_cycles), CyclesToMs(base_cycles));
    std::printf("%-8s %14s %9s %s\n", "workers", "cycles", "speedup", "per-worker busy%");

    CompiledQuery parallel = CompileParallel(engine, *db, spec, nullptr, spec.name + "_par");
    for (uint32_t workers : {1u, 2u, 4u, 8u}) {
      ParallelConfig config;
      config.workers = workers;
      engine.ExecuteParallel(parallel, config);
      const uint64_t cycles = engine.last_cycles();
      std::string busy;
      uint64_t morsels = 0;
      for (const WorkerMetrics& w : engine.last_worker_metrics()) {
        busy += StrFormat("%s%.0f%%", busy.empty() ? "" : " ",
                          100.0 * static_cast<double>(w.busy_cycles) /
                              static_cast<double>(std::max<uint64_t>(1, cycles)));
        morsels += w.morsels;
      }
      std::printf("%-8u %14llu %8.2fx %s  (%llu dispatches)\n", workers,
                  static_cast<unsigned long long>(cycles),
                  static_cast<double>(base_cycles) / static_cast<double>(cycles), busy.c_str(),
                  static_cast<unsigned long long>(morsels));
      json.BeginObject();
      json.Field("query", std::string(name));
      json.Field("workers", static_cast<uint64_t>(workers));
      json.Field("cycles", cycles);
      json.Field("sequential_cycles", base_cycles);
      json.Field("speedup", static_cast<double>(base_cycles) / static_cast<double>(cycles));
      json.Field("dispatches", morsels);
      json.EndObject();
    }
  }

  json.EndArray();

  // Morsel sizing: the fixed legacy size against the cardinality-derived automatic size.
  // Cheap scans (q6) want chunky morsels to amortize the dispatch cost; the auto sizing
  // derives that from the estimate and the per-row path length instead of a magic constant.
  std::printf("\n--- Morsel sizing at 4 workers: fixed 1024 rows vs auto ---\n");
  std::printf("%-8s %10s %14s %12s %10s\n", "query", "morsel", "cycles", "dispatches",
              "vs fixed");
  json.BeginArray("morsel_sizing");
  for (const char* name : {"q1", "q6", "qgj"}) {
    const QuerySpec& spec = FindQuery(name);
    CompiledQuery parallel = CompileParallel(engine, *db, spec, nullptr,
                                             spec.name + "_sizing");
    uint64_t fixed_cycles = 0;
    for (uint64_t morsel_rows : {uint64_t{1024}, uint64_t{0}}) {
      ParallelConfig config;
      config.workers = 4;
      config.morsel_rows = morsel_rows;
      engine.ExecuteParallel(parallel, config);
      const uint64_t cycles = engine.last_cycles();
      uint64_t morsels = 0;
      for (const WorkerMetrics& w : engine.last_worker_metrics()) {
        morsels += w.morsels;
      }
      const bool fixed = morsel_rows != 0;
      if (fixed) {
        fixed_cycles = cycles;
      }
      std::printf("%-8s %10s %14llu %12llu %9.3fx\n", name,
                  fixed ? "1024" : "auto",
                  static_cast<unsigned long long>(cycles),
                  static_cast<unsigned long long>(morsels),
                  static_cast<double>(fixed_cycles) / static_cast<double>(cycles));
      json.BeginObject();
      json.Field("query", std::string(name));
      json.Field("morsel_rows", fixed ? std::string("1024") : std::string("auto"));
      json.Field("cycles", cycles);
      json.Field("dispatches", morsels);
      json.EndObject();
    }
  }
  json.EndArray();

  // Drill-down: profile the 4-worker run of q1 and render the merged multi-level reports.
  {
    const QuerySpec& spec = FindQuery("q1");
    ProfilingConfig pconfig;
    pconfig.period = 2000;
    ProfilingSession session(pconfig);
    CompiledQuery query = CompileParallel(engine, *db, spec, &session, "q1_profiled");
    ParallelConfig config;
    config.workers = 4;
    engine.ExecuteParallel(query, config);
    session.Resolve(db->code_map());

    std::printf("\n--- q1 at 4 workers: per-worker activity (one lane per worker) ---\n");
    ActivityTimeline lanes = BuildWorkerActivityTimeline(session, 60);
    std::printf("%s\n", RenderActivityTimeline(lanes).c_str());

    std::printf("--- q1 at 4 workers: cost-annotated plan from the merged stream ---\n");
    OperatorProfile profile = BuildOperatorProfile(session, query);
    std::printf("%s\n", RenderAnnotatedPlan(profile, query).c_str());

    std::printf("--- q1 at 4 workers: attribution statistics ---\n");
    std::printf("%s\n", RenderAttributionStats(session.Stats()).c_str());
  }

  std::printf(
      "Expected shape: scan-heavy queries (q1, qgj) approach linear scaling until the\n"
      "sequential pipelines (group scan, output) and barriers dominate; q6's cheap scan\n"
      "saturates earlier. Idle share grows with the pool when morsel supply runs short.\n"
      "Auto-sized morsels cut dispatch counts on cheap scans at equal or better cycles.\n");

  if (GlobalBenchOptions().json) {
    json.EndObject();
    json.WriteTo("BENCH_scaling.json");
  }
  return 0;
}

}  // namespace
}  // namespace dfp

int main(int argc, char** argv) {
  dfp::BenchInit(argc, argv);
  return dfp::Main();
}
