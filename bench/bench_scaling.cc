// Morsel-driven scaling experiment: the same compiled query executed on worker pools of
// 1/2/4/8 simulated cores. Reports simulated-cycle speedup and per-worker busy/idle shares,
// then drills into the 4-worker run with the multi-level profiles — per-worker activity
// timeline, merged cost-annotated plan, and attribution statistics — to show that every
// Tailored Profiling report works unchanged on the merged multi-worker sample stream.
#include <map>

#include "bench/common.h"
#include "src/critpath/dag.h"
#include "src/critpath/slack.h"
#include "src/profiling/reports.h"

namespace dfp {
namespace {

CompiledQuery CompileParallel(QueryEngine& engine, Database& db, const QuerySpec& spec,
                              ProfilingSession* session, const std::string& name) {
  CodegenOptions options;
  options.parallel = true;
  return engine.Compile(BuildQueryPlan(db, spec), session, name, options);
}

int Main() {
  PrintHeader("Morsel-driven scaling", "Section 3.1 of the morsel-driven execution extension");
  std::unique_ptr<Database> db = MakeTpchDatabase(BenchScale());
  QueryEngine engine(db.get());
  JsonWriter json;
  json.BeginObject();
  json.BeginArray("scaling");

  for (const char* name : {"q1", "q6", "qgj"}) {
    const QuerySpec& spec = FindQuery(name);
    CompiledQuery sequential = engine.Compile(BuildQueryPlan(*db, spec), nullptr, spec.name);
    engine.Execute(sequential);
    const uint64_t base_cycles = engine.last_cycles();
    std::printf("\n--- %s: %llu single-threaded cycles (%.2f ms simulated) ---\n", name,
                static_cast<unsigned long long>(base_cycles), CyclesToMs(base_cycles));
    std::printf("%-8s %14s %9s %s\n", "workers", "cycles", "speedup", "per-worker busy%");

    CompiledQuery parallel = CompileParallel(engine, *db, spec, nullptr, spec.name + "_par");
    for (uint32_t workers : {1u, 2u, 4u, 8u}) {
      ParallelConfig config;
      config.workers = workers;
      engine.ExecuteParallel(parallel, config);
      const uint64_t cycles = engine.last_cycles();
      std::string busy;
      uint64_t morsels = 0;
      uint64_t steals = 0;
      for (const WorkerMetrics& w : engine.last_worker_metrics()) {
        busy += StrFormat("%s%.0f%%", busy.empty() ? "" : " ",
                          100.0 * static_cast<double>(w.busy_cycles) /
                              static_cast<double>(std::max<uint64_t>(1, cycles)));
        morsels += w.morsels;
        steals += w.steals;
      }
      std::printf("%-8u %14llu %8.2fx %s  (%llu dispatches, %llu steals)\n", workers,
                  static_cast<unsigned long long>(cycles),
                  static_cast<double>(base_cycles) / static_cast<double>(cycles), busy.c_str(),
                  static_cast<unsigned long long>(morsels),
                  static_cast<unsigned long long>(steals));
      json.BeginObject();
      json.Field("query", std::string(name));
      json.Field("workers", static_cast<uint64_t>(workers));
      json.Field("cycles", cycles);
      json.Field("sequential_cycles", base_cycles);
      json.Field("speedup", static_cast<double>(base_cycles) / static_cast<double>(cycles));
      json.Field("dispatches", morsels);
      json.Field("steals", steals);
      json.EndObject();
    }
  }

  json.EndArray();

  // Morsel sizing: the fixed legacy size against the cardinality-derived automatic size.
  // Cheap scans (q6) want chunky morsels to amortize the dispatch cost; the auto sizing
  // derives that from the estimate and the per-row path length instead of a magic constant.
  std::printf("\n--- Morsel sizing at 4 workers: fixed 1024 rows vs auto ---\n");
  std::printf("%-8s %10s %14s %12s %10s\n", "query", "morsel", "cycles", "dispatches",
              "vs fixed");
  json.BeginArray("morsel_sizing");
  for (const char* name : {"q1", "q6", "qgj"}) {
    const QuerySpec& spec = FindQuery(name);
    CompiledQuery parallel = CompileParallel(engine, *db, spec, nullptr,
                                             spec.name + "_sizing");
    uint64_t fixed_cycles = 0;
    for (uint64_t morsel_rows : {uint64_t{1024}, uint64_t{0}}) {
      ParallelConfig config;
      config.workers = 4;
      config.morsel_rows = morsel_rows;
      engine.ExecuteParallel(parallel, config);
      const uint64_t cycles = engine.last_cycles();
      uint64_t morsels = 0;
      for (const WorkerMetrics& w : engine.last_worker_metrics()) {
        morsels += w.morsels;
      }
      const bool fixed = morsel_rows != 0;
      if (fixed) {
        fixed_cycles = cycles;
      }
      std::printf("%-8s %10s %14llu %12llu %9.3fx\n", name,
                  fixed ? "1024" : "auto",
                  static_cast<unsigned long long>(cycles),
                  static_cast<unsigned long long>(morsels),
                  static_cast<double>(fixed_cycles) / static_cast<double>(cycles));
      json.BeginObject();
      json.Field("query", std::string(name));
      json.Field("morsel_rows", fixed ? std::string("1024") : std::string("auto"));
      json.Field("cycles", cycles);
      json.Field("dispatches", morsels);
      json.EndObject();
    }
  }
  json.EndArray();

  // Work stealing vs central dispatch on a skewed morsel distribution. Correlated order dates
  // cluster q6's qualifying rows into one contiguous band of lineitem, so the band's morsels
  // carry the aggregation work while the rest only evaluate (and reject) the filter: the nodes
  // owning the band run long and everyone else goes stealing. Central dispatch balances the
  // clocks perfectly but ignores locality, paying the remote-DRAM penalty on ~ (nodes-1)/nodes
  // of its column traffic; the stealing scheduler keeps morsels node-local and eats remote
  // traffic only for the morsels it actually steals.
  {
    std::unique_ptr<Database> skew_db =
        MakeTpchDatabase(BenchScale(), /*correlated_dates=*/true);
    QueryEngine skew_engine(skew_db.get());
    const QuerySpec& spec = FindQuery("q6");
    CompiledQuery parallel =
        CompileParallel(skew_engine, *skew_db, spec, nullptr, spec.name + "_steal");
    std::printf("\n--- Scheduler policies: q6 on date-skewed lineitem, 4 workers ---\n");
    std::printf("%-10s %14s %12s %8s %12s %12s\n", "policy", "cycles", "dispatches", "steals",
                "local", "remote");
    json.BeginArray("stealing");
    uint64_t central_cycles = 0;
    uint64_t stealing_cycles = 0;
    uint64_t stealing_steals = 0;
    for (SchedulerPolicy policy : {SchedulerPolicy::kCentral, SchedulerPolicy::kWorkStealing}) {
      const bool stealing = policy == SchedulerPolicy::kWorkStealing;
      ParallelConfig config;
      config.workers = 4;
      config.scheduler = policy;
      skew_engine.ExecuteParallel(parallel, config);
      const uint64_t cycles = skew_engine.last_cycles();
      uint64_t dispatches = 0;
      uint64_t steals = 0;
      uint64_t local = 0;
      uint64_t remote = 0;
      // Per-node traffic: workers pinned to the same node sum into one bucket.
      std::map<uint32_t, NumaStats> per_node;
      for (const WorkerMetrics& w : skew_engine.last_worker_metrics()) {
        dispatches += w.morsels;
        steals += w.steals;
        local += w.numa_stats.local_accesses;
        remote += w.numa_stats.remote_accesses;
        NumaStats& node = per_node[w.node];
        node.local_accesses += w.numa_stats.local_accesses;
        node.remote_accesses += w.numa_stats.remote_accesses;
        node.remote_dram += w.numa_stats.remote_dram;
      }
      if (stealing) {
        stealing_cycles = cycles;
        stealing_steals = steals;
      } else {
        central_cycles = cycles;
      }
      std::printf("%-10s %14llu %12llu %8llu %12llu %12llu\n",
                  stealing ? "stealing" : "central",
                  static_cast<unsigned long long>(cycles),
                  static_cast<unsigned long long>(dispatches),
                  static_cast<unsigned long long>(steals),
                  static_cast<unsigned long long>(local),
                  static_cast<unsigned long long>(remote));
      json.BeginObject();
      json.Field("query", std::string("q6_skewed"));
      json.Field("policy", std::string(stealing ? "stealing" : "central"));
      json.Field("workers", static_cast<uint64_t>(4));
      json.Field("cycles", cycles);
      json.Field("dispatches", dispatches);
      json.Field("steals", steals);
      json.Field("local_accesses", local);
      json.Field("remote_accesses", remote);
      json.BeginArray("nodes");
      for (const auto& [node, stats] : per_node) {
        json.BeginObject();
        json.Field("node", static_cast<uint64_t>(node));
        json.Field("local_accesses", stats.local_accesses);
        json.Field("remote_accesses", stats.remote_accesses);
        json.Field("remote_dram", stats.remote_dram);
        json.EndObject();
      }
      json.EndArray();
      json.EndObject();
    }
    json.EndArray();
    std::printf("stealing vs central: %.3fx cycles, %llu steals\n",
                static_cast<double>(stealing_cycles) / static_cast<double>(central_cycles),
                static_cast<unsigned long long>(stealing_steals));
    if (stealing_cycles > central_cycles || stealing_steals == 0) {
      std::fprintf(stderr,
                   "FAIL: stealing must be equal-or-better than central on the skewed scan "
                   "(stealing=%llu central=%llu) with nonzero steals (%llu)\n",
                   static_cast<unsigned long long>(stealing_cycles),
                   static_cast<unsigned long long>(central_cycles),
                   static_cast<unsigned long long>(stealing_steals));
      return 1;
    }

    // Locality drill-down on the stealing run: sample loads with address capture so every
    // sample carries its access's home node, then render the per-operator local/remote table
    // and the locality timeline (steal-induced remote spikes show in the third lane).
    ProfilingConfig pconfig;
    pconfig.event = PmuEvent::kLoads;
    pconfig.period = 500;
    pconfig.capture_address = true;
    ProfilingSession session(pconfig);
    CompiledQuery profiled =
        CompileParallel(skew_engine, *skew_db, spec, &session, spec.name + "_locality");
    ParallelConfig config;
    config.workers = 4;
    skew_engine.ExecuteParallel(profiled, config);
    session.Resolve(skew_db->code_map());
    MemoryProfile mem_profile = BuildMemoryProfile(session, profiled);
    std::printf("\n--- q6 stealing run: per-operator NUMA locality (sampled loads) ---\n");
    std::printf("%s\n", RenderMemoryLocality(mem_profile).c_str());
    std::printf("--- q6 stealing run: locality over time ---\n");
    ActivityTimeline locality = BuildLocalityTimeline(session, 60);
    std::printf("%s\n", RenderActivityTimeline(locality).c_str());
    json.BeginArray("locality");
    for (const MemoryProfileSeries& series : mem_profile.series) {
      json.BeginObject();
      json.Field("operator", series.label);
      json.Field("local_accesses", series.local_accesses);
      json.Field("remote_accesses", series.remote_accesses);
      json.Field("stolen_remote", series.stolen_remote);
      json.EndObject();
    }
    json.EndArray();

    // Slack-directed scheduling vs FIFO deques on the same skewed scan. Two FIFO runs feed the
    // SlackStore (the second stabilizes the EWMA), then the learned profile orders the third
    // run's deques so the skew band's zero-slack morsels start first and the cheap tail defers
    // to thieves. The policy only permutes the schedule: the gate demands an equal-or-better
    // critical path AND byte-identical results (the sched-smoke CI job additionally double-runs
    // this section and diffs the JSON, so every number here must be deterministic).
    std::printf("\n--- Slack-directed scheduling vs FIFO: q6 on date-skewed lineitem ---\n");
    CompiledQuery sched_query =
        CompileParallel(skew_engine, *skew_db, spec, nullptr, spec.name + "_slack");
    ParallelConfig sched_config;
    sched_config.workers = 4;
    SlackStore store;
    constexpr uint64_t kSchedFp = 1;  // Engine-level run: any stable store key works.
    Result fifo_result;
    uint64_t fifo_wall = 0;
    uint64_t fifo_critical = 0;
    for (int pass = 0; pass < 2; ++pass) {
      fifo_result = skew_engine.ExecuteParallel(sched_query, sched_config);
      fifo_wall = skew_engine.last_cycles();
      const TaskDag dag = BuildTaskDag(skew_engine.last_task_boundaries());
      fifo_critical = dag.critical_work_cycles;
      store.Observe(kSchedFp, spec.name + "_slack", dag);
    }
    const Result slack_result =
        skew_engine.ExecuteParallel(sched_query, sched_config, store.Find(kSchedFp));
    const uint64_t slack_wall = skew_engine.last_cycles();
    const TaskDag slack_dag = BuildTaskDag(skew_engine.last_task_boundaries());
    const SchedStats sched_stats = skew_engine.last_sched_stats();
    std::string sched_diff;
    const bool sched_results_identical =
        Result::Equivalent(fifo_result, slack_result, true, &sched_diff);
    const bool sched_critical_ok = slack_dag.critical_work_cycles <= fifo_critical;
    std::printf("%-8s %14s %14s\n", "policy", "wall cycles", "critical path");
    std::printf("%-8s %14llu %14llu\n", "fifo", static_cast<unsigned long long>(fifo_wall),
                static_cast<unsigned long long>(fifo_critical));
    std::printf("%-8s %14llu %14llu\n", "slack", static_cast<unsigned long long>(slack_wall),
                static_cast<unsigned long long>(slack_dag.critical_work_cycles));
    std::printf("slack policy: %llu ordered scan(s), %llu hint hits, %llu deferred, "
                "%llu slack steals; critical path %.3fx %s, results %s\n",
                static_cast<unsigned long long>(sched_stats.slack_ordered_scans),
                static_cast<unsigned long long>(sched_stats.slack_hits),
                static_cast<unsigned long long>(sched_stats.deferred_morsels),
                static_cast<unsigned long long>(sched_stats.slack_steals),
                static_cast<double>(slack_dag.critical_work_cycles) /
                    static_cast<double>(std::max<uint64_t>(1, fifo_critical)),
                sched_critical_ok ? "[ok]" : "[FAIL]",
                sched_results_identical ? "identical [ok]" : "[FAIL: diverged]");
    json.BeginObject("slack_scheduling");
    json.Field("query", std::string("q6_skewed"));
    json.Field("workers", static_cast<uint64_t>(sched_config.workers));
    json.Field("fifo_wall_cycles", fifo_wall);
    json.Field("fifo_critical_cycles", fifo_critical);
    json.Field("slack_wall_cycles", slack_wall);
    json.Field("slack_critical_cycles", slack_dag.critical_work_cycles);
    json.Field("slack_ordered_scans", sched_stats.slack_ordered_scans);
    json.Field("slack_hits", sched_stats.slack_hits);
    json.Field("deferred_morsels", sched_stats.deferred_morsels);
    json.Field("slack_steals", sched_stats.slack_steals);
    json.Field("results_identical", sched_results_identical);
    json.Field("critical_path_ok", sched_critical_ok);
    json.EndObject();
    if (!sched_critical_ok || !sched_results_identical ||
        sched_stats.slack_ordered_scans == 0) {
      std::fprintf(stderr,
                   "FAIL: slack scheduling must engage (%llu ordered scans) with "
                   "equal-or-better critical path (slack=%llu fifo=%llu) and identical "
                   "results\n%s",
                   static_cast<unsigned long long>(sched_stats.slack_ordered_scans),
                   static_cast<unsigned long long>(slack_dag.critical_work_cycles),
                   static_cast<unsigned long long>(fifo_critical), sched_diff.c_str());
      return 1;
    }
  }

  // Drill-down: profile the 4-worker run of q1 and render the merged multi-level reports.
  {
    const QuerySpec& spec = FindQuery("q1");
    ProfilingConfig pconfig;
    pconfig.period = 2000;
    ProfilingSession session(pconfig);
    CompiledQuery query = CompileParallel(engine, *db, spec, &session, "q1_profiled");
    ParallelConfig config;
    config.workers = 4;
    engine.ExecuteParallel(query, config);
    session.Resolve(db->code_map());

    std::printf("\n--- q1 at 4 workers: per-worker activity (one lane per worker) ---\n");
    ActivityTimeline lanes = BuildWorkerActivityTimeline(session, 60);
    std::printf("%s\n", RenderActivityTimeline(lanes).c_str());

    std::printf("--- q1 at 4 workers: cost-annotated plan from the merged stream ---\n");
    OperatorProfile profile = BuildOperatorProfile(session, query);
    std::printf("%s\n", RenderAnnotatedPlan(profile, query).c_str());

    std::printf("--- q1 at 4 workers: attribution statistics ---\n");
    std::printf("%s\n", RenderAttributionStats(session.Stats()).c_str());
  }

  std::printf(
      "Expected shape: scan-heavy queries (q1, qgj) approach linear scaling until the\n"
      "sequential pipelines (group scan, output) and barriers dominate; q6's cheap scan\n"
      "saturates earlier. Idle share grows with the pool when morsel supply runs short.\n"
      "Auto-sized morsels cut dispatch counts on cheap scans at equal or better cycles.\n");

  if (GlobalBenchOptions().json) {
    json.EndObject();
    json.WriteTo("BENCH_scaling.json");
  }
  return 0;
}

}  // namespace
}  // namespace dfp

int main(int argc, char** argv) {
  dfp::BenchInit(argc, argv);
  return dfp::Main();
}
