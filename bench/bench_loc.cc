// Reproduces Table 3: implementation size per component. Counts this repository's non-blank
// source lines, split into the profiling additions vs. the host system, mirroring the paper's
// breakdown (their prototype: 56 lines in the code generator, ~1.7k of profiling/visualization,
// on top of ~22k lines of engine).
#include <dirent.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/util/table_printer.h"

namespace dfp {
namespace {

size_t CountLines(const std::string& path) {
  std::ifstream in(path);
  size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    bool blank = true;
    for (char c : line) {
      if (!std::isspace(static_cast<unsigned char>(c))) {
        blank = false;
        break;
      }
    }
    if (!blank) {
      ++lines;
    }
  }
  return lines;
}

size_t CountDir(const std::string& dir) {
  size_t total = 0;
  DIR* handle = opendir(dir.c_str());
  if (handle == nullptr) {
    return 0;
  }
  while (dirent* entry = readdir(handle)) {
    std::string name = entry->d_name;
    if (name == "." || name == "..") {
      continue;
    }
    std::string path = dir + "/" + name;
    if (entry->d_type == DT_DIR) {
      total += CountDir(path);
    } else if (name.size() > 3 &&
               (name.ends_with(".cc") || name.ends_with(".h") || name.ends_with(".cpp"))) {
      total += CountLines(path);
    }
  }
  closedir(handle);
  return total;
}

int Main(int argc, char** argv) {
  std::string root = argc > 1 ? argv[1] : DFP_SOURCE_ROOT;
  std::printf("==================================================================\n");
  std::printf("Experiment: implementation size per component\n");
  std::printf("Reproduces: Table 3\n");
  std::printf("==================================================================\n\n");

  struct Component {
    const char* label;
    const char* dir;
    bool profiling;  // Part of the Tailored Profiling additions.
  };
  const Component kComponents[] = {
      {"Profiling core (dictionary/session/reports)", "src/profiling", true},
      {"PMU (sampling unit)", "src/pmu", true},
      {"Engine code generation", "src/engine", false},
      {"Backend (passes/regalloc/emitter)", "src/backend", false},
      {"VIR", "src/ir", false},
      {"VCPU (memory/cache/execution)", "src/vcpu", false},
      {"Runtime (shared functions, kernel, syslib)", "src/runtime", false},
      {"Storage", "src/storage", false},
      {"Plans and expressions", "src/plan", false},
      {"SQL front end", "src/sql", false},
      {"Volcano oracle", "src/interp", false},
      {"TPC-H data and queries", "src/tpch", false},
      {"Utilities", "src/util", false},
      {"Tests", "tests", false},
      {"Experiments", "bench", false},
      {"Examples", "examples", false},
  };
  TablePrinter table({"Component", "Non-blank lines", "Category"});
  table.SetRightAlign(1, true);
  size_t profiling_total = 0;
  size_t system_total = 0;
  for (const Component& component : kComponents) {
    size_t lines = CountDir(root + "/" + component.dir);
    (component.profiling ? profiling_total : system_total) += lines;
    table.AddRow({component.label, std::to_string(lines),
                  component.profiling ? "Tailored Profiling" : "host system"});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("Tailored Profiling additions: %zu lines; host system + tests: %zu lines\n",
              profiling_total, system_total);
  std::printf(
      "(Paper, Table 3: 56 lines added to Umbra's code generator, 1686 lines of sample\n"
      " processing + visualization, on top of ~22k lines of engine. Our host system is built\n"
      " from scratch, so the \"engine\" share is the whole substrate.)\n");
  return 0;
}

}  // namespace
}  // namespace dfp

int main(int argc, char** argv) { return dfp::Main(argc, argv); }
