file(REMOVE_RECURSE
  "libdfp.a"
)
