
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/backend/compiler.cc" "src/CMakeFiles/dfp.dir/backend/compiler.cc.o" "gcc" "src/CMakeFiles/dfp.dir/backend/compiler.cc.o.d"
  "/root/repo/src/backend/emitter.cc" "src/CMakeFiles/dfp.dir/backend/emitter.cc.o" "gcc" "src/CMakeFiles/dfp.dir/backend/emitter.cc.o.d"
  "/root/repo/src/backend/liveness.cc" "src/CMakeFiles/dfp.dir/backend/liveness.cc.o" "gcc" "src/CMakeFiles/dfp.dir/backend/liveness.cc.o.d"
  "/root/repo/src/backend/passes.cc" "src/CMakeFiles/dfp.dir/backend/passes.cc.o" "gcc" "src/CMakeFiles/dfp.dir/backend/passes.cc.o.d"
  "/root/repo/src/backend/regalloc.cc" "src/CMakeFiles/dfp.dir/backend/regalloc.cc.o" "gcc" "src/CMakeFiles/dfp.dir/backend/regalloc.cc.o.d"
  "/root/repo/src/engine/codegen.cc" "src/CMakeFiles/dfp.dir/engine/codegen.cc.o" "gcc" "src/CMakeFiles/dfp.dir/engine/codegen.cc.o.d"
  "/root/repo/src/engine/database.cc" "src/CMakeFiles/dfp.dir/engine/database.cc.o" "gcc" "src/CMakeFiles/dfp.dir/engine/database.cc.o.d"
  "/root/repo/src/engine/query_engine.cc" "src/CMakeFiles/dfp.dir/engine/query_engine.cc.o" "gcc" "src/CMakeFiles/dfp.dir/engine/query_engine.cc.o.d"
  "/root/repo/src/engine/result.cc" "src/CMakeFiles/dfp.dir/engine/result.cc.o" "gcc" "src/CMakeFiles/dfp.dir/engine/result.cc.o.d"
  "/root/repo/src/interp/interpreter.cc" "src/CMakeFiles/dfp.dir/interp/interpreter.cc.o" "gcc" "src/CMakeFiles/dfp.dir/interp/interpreter.cc.o.d"
  "/root/repo/src/ir/builder.cc" "src/CMakeFiles/dfp.dir/ir/builder.cc.o" "gcc" "src/CMakeFiles/dfp.dir/ir/builder.cc.o.d"
  "/root/repo/src/ir/interp.cc" "src/CMakeFiles/dfp.dir/ir/interp.cc.o" "gcc" "src/CMakeFiles/dfp.dir/ir/interp.cc.o.d"
  "/root/repo/src/ir/opcode.cc" "src/CMakeFiles/dfp.dir/ir/opcode.cc.o" "gcc" "src/CMakeFiles/dfp.dir/ir/opcode.cc.o.d"
  "/root/repo/src/ir/printer.cc" "src/CMakeFiles/dfp.dir/ir/printer.cc.o" "gcc" "src/CMakeFiles/dfp.dir/ir/printer.cc.o.d"
  "/root/repo/src/ir/verifier.cc" "src/CMakeFiles/dfp.dir/ir/verifier.cc.o" "gcc" "src/CMakeFiles/dfp.dir/ir/verifier.cc.o.d"
  "/root/repo/src/plan/builder.cc" "src/CMakeFiles/dfp.dir/plan/builder.cc.o" "gcc" "src/CMakeFiles/dfp.dir/plan/builder.cc.o.d"
  "/root/repo/src/plan/eval.cc" "src/CMakeFiles/dfp.dir/plan/eval.cc.o" "gcc" "src/CMakeFiles/dfp.dir/plan/eval.cc.o.d"
  "/root/repo/src/plan/expr.cc" "src/CMakeFiles/dfp.dir/plan/expr.cc.o" "gcc" "src/CMakeFiles/dfp.dir/plan/expr.cc.o.d"
  "/root/repo/src/plan/physical.cc" "src/CMakeFiles/dfp.dir/plan/physical.cc.o" "gcc" "src/CMakeFiles/dfp.dir/plan/physical.cc.o.d"
  "/root/repo/src/pmu/pmu.cc" "src/CMakeFiles/dfp.dir/pmu/pmu.cc.o" "gcc" "src/CMakeFiles/dfp.dir/pmu/pmu.cc.o.d"
  "/root/repo/src/profiling/reports.cc" "src/CMakeFiles/dfp.dir/profiling/reports.cc.o" "gcc" "src/CMakeFiles/dfp.dir/profiling/reports.cc.o.d"
  "/root/repo/src/profiling/serialize.cc" "src/CMakeFiles/dfp.dir/profiling/serialize.cc.o" "gcc" "src/CMakeFiles/dfp.dir/profiling/serialize.cc.o.d"
  "/root/repo/src/profiling/session.cc" "src/CMakeFiles/dfp.dir/profiling/session.cc.o" "gcc" "src/CMakeFiles/dfp.dir/profiling/session.cc.o.d"
  "/root/repo/src/profiling/tagging_dictionary.cc" "src/CMakeFiles/dfp.dir/profiling/tagging_dictionary.cc.o" "gcc" "src/CMakeFiles/dfp.dir/profiling/tagging_dictionary.cc.o.d"
  "/root/repo/src/profiling/validation.cc" "src/CMakeFiles/dfp.dir/profiling/validation.cc.o" "gcc" "src/CMakeFiles/dfp.dir/profiling/validation.cc.o.d"
  "/root/repo/src/runtime/hashtable.cc" "src/CMakeFiles/dfp.dir/runtime/hashtable.cc.o" "gcc" "src/CMakeFiles/dfp.dir/runtime/hashtable.cc.o.d"
  "/root/repo/src/runtime/runtime.cc" "src/CMakeFiles/dfp.dir/runtime/runtime.cc.o" "gcc" "src/CMakeFiles/dfp.dir/runtime/runtime.cc.o.d"
  "/root/repo/src/sql/binder.cc" "src/CMakeFiles/dfp.dir/sql/binder.cc.o" "gcc" "src/CMakeFiles/dfp.dir/sql/binder.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/CMakeFiles/dfp.dir/sql/lexer.cc.o" "gcc" "src/CMakeFiles/dfp.dir/sql/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/dfp.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/dfp.dir/sql/parser.cc.o.d"
  "/root/repo/src/storage/stringheap.cc" "src/CMakeFiles/dfp.dir/storage/stringheap.cc.o" "gcc" "src/CMakeFiles/dfp.dir/storage/stringheap.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/dfp.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/dfp.dir/storage/table.cc.o.d"
  "/root/repo/src/tpch/datagen.cc" "src/CMakeFiles/dfp.dir/tpch/datagen.cc.o" "gcc" "src/CMakeFiles/dfp.dir/tpch/datagen.cc.o.d"
  "/root/repo/src/tpch/queries.cc" "src/CMakeFiles/dfp.dir/tpch/queries.cc.o" "gcc" "src/CMakeFiles/dfp.dir/tpch/queries.cc.o.d"
  "/root/repo/src/util/chart.cc" "src/CMakeFiles/dfp.dir/util/chart.cc.o" "gcc" "src/CMakeFiles/dfp.dir/util/chart.cc.o.d"
  "/root/repo/src/util/date.cc" "src/CMakeFiles/dfp.dir/util/date.cc.o" "gcc" "src/CMakeFiles/dfp.dir/util/date.cc.o.d"
  "/root/repo/src/util/hash.cc" "src/CMakeFiles/dfp.dir/util/hash.cc.o" "gcc" "src/CMakeFiles/dfp.dir/util/hash.cc.o.d"
  "/root/repo/src/util/str.cc" "src/CMakeFiles/dfp.dir/util/str.cc.o" "gcc" "src/CMakeFiles/dfp.dir/util/str.cc.o.d"
  "/root/repo/src/util/table_printer.cc" "src/CMakeFiles/dfp.dir/util/table_printer.cc.o" "gcc" "src/CMakeFiles/dfp.dir/util/table_printer.cc.o.d"
  "/root/repo/src/vcpu/cache.cc" "src/CMakeFiles/dfp.dir/vcpu/cache.cc.o" "gcc" "src/CMakeFiles/dfp.dir/vcpu/cache.cc.o.d"
  "/root/repo/src/vcpu/code_map.cc" "src/CMakeFiles/dfp.dir/vcpu/code_map.cc.o" "gcc" "src/CMakeFiles/dfp.dir/vcpu/code_map.cc.o.d"
  "/root/repo/src/vcpu/cpu.cc" "src/CMakeFiles/dfp.dir/vcpu/cpu.cc.o" "gcc" "src/CMakeFiles/dfp.dir/vcpu/cpu.cc.o.d"
  "/root/repo/src/vcpu/disasm.cc" "src/CMakeFiles/dfp.dir/vcpu/disasm.cc.o" "gcc" "src/CMakeFiles/dfp.dir/vcpu/disasm.cc.o.d"
  "/root/repo/src/vcpu/vmem.cc" "src/CMakeFiles/dfp.dir/vcpu/vmem.cc.o" "gcc" "src/CMakeFiles/dfp.dir/vcpu/vmem.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
