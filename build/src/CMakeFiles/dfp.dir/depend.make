# Empty dependencies file for dfp.
# This may be replaced when dependencies are built.
