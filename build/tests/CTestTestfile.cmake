# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/vmem_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/pmu_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/ir_interp_test[1]_include.cmake")
include("/root/repo/build/tests/backend_passes_test[1]_include.cmake")
include("/root/repo/build/tests/backend_exec_test[1]_include.cmake")
include("/root/repo/build/tests/backend_property_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/dictionary_test[1]_include.cmake")
include("/root/repo/build/tests/profiling_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/tpch_test[1]_include.cmake")
include("/root/repo/build/tests/reports_test[1]_include.cmake")
include("/root/repo/build/tests/regalloc_test[1]_include.cmake")
include("/root/repo/build/tests/cpu_test[1]_include.cmake")
include("/root/repo/build/tests/edge_test[1]_include.cmake")
include("/root/repo/build/tests/tuple_counts_test[1]_include.cmake")
include("/root/repo/build/tests/suite_profiling_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/window_test[1]_include.cmake")
include("/root/repo/build/tests/random_plan_test[1]_include.cmake")
include("/root/repo/build/tests/packed_tags_test[1]_include.cmake")
include("/root/repo/build/tests/hand_computed_test[1]_include.cmake")
