file(REMOVE_RECURSE
  "CMakeFiles/backend_property_test.dir/backend/property_test.cc.o"
  "CMakeFiles/backend_property_test.dir/backend/property_test.cc.o.d"
  "backend_property_test"
  "backend_property_test.pdb"
  "backend_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backend_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
