# Empty dependencies file for backend_property_test.
# This may be replaced when dependencies are built.
