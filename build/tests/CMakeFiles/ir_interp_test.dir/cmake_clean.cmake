file(REMOVE_RECURSE
  "CMakeFiles/ir_interp_test.dir/ir/ir_interp_test.cc.o"
  "CMakeFiles/ir_interp_test.dir/ir/ir_interp_test.cc.o.d"
  "ir_interp_test"
  "ir_interp_test.pdb"
  "ir_interp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_interp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
