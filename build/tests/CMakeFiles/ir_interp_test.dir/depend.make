# Empty dependencies file for ir_interp_test.
# This may be replaced when dependencies are built.
