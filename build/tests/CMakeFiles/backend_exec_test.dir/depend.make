# Empty dependencies file for backend_exec_test.
# This may be replaced when dependencies are built.
