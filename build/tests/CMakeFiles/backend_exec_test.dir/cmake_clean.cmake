file(REMOVE_RECURSE
  "CMakeFiles/backend_exec_test.dir/backend/exec_test.cc.o"
  "CMakeFiles/backend_exec_test.dir/backend/exec_test.cc.o.d"
  "backend_exec_test"
  "backend_exec_test.pdb"
  "backend_exec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backend_exec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
