file(REMOVE_RECURSE
  "CMakeFiles/packed_tags_test.dir/profiling/packed_tags_test.cc.o"
  "CMakeFiles/packed_tags_test.dir/profiling/packed_tags_test.cc.o.d"
  "packed_tags_test"
  "packed_tags_test.pdb"
  "packed_tags_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packed_tags_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
