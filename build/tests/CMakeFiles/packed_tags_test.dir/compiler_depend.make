# Empty compiler generated dependencies file for packed_tags_test.
# This may be replaced when dependencies are built.
