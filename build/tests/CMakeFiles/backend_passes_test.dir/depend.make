# Empty dependencies file for backend_passes_test.
# This may be replaced when dependencies are built.
