file(REMOVE_RECURSE
  "CMakeFiles/backend_passes_test.dir/backend/passes_test.cc.o"
  "CMakeFiles/backend_passes_test.dir/backend/passes_test.cc.o.d"
  "backend_passes_test"
  "backend_passes_test.pdb"
  "backend_passes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backend_passes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
