# Empty dependencies file for hand_computed_test.
# This may be replaced when dependencies are built.
