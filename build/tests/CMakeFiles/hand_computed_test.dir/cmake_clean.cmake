file(REMOVE_RECURSE
  "CMakeFiles/hand_computed_test.dir/integration/hand_computed_test.cc.o"
  "CMakeFiles/hand_computed_test.dir/integration/hand_computed_test.cc.o.d"
  "hand_computed_test"
  "hand_computed_test.pdb"
  "hand_computed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hand_computed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
