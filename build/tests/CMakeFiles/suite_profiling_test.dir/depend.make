# Empty dependencies file for suite_profiling_test.
# This may be replaced when dependencies are built.
