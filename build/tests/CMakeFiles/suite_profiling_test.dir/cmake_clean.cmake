file(REMOVE_RECURSE
  "CMakeFiles/suite_profiling_test.dir/integration/suite_profiling_test.cc.o"
  "CMakeFiles/suite_profiling_test.dir/integration/suite_profiling_test.cc.o.d"
  "suite_profiling_test"
  "suite_profiling_test.pdb"
  "suite_profiling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/suite_profiling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
