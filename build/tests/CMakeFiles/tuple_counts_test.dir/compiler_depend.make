# Empty compiler generated dependencies file for tuple_counts_test.
# This may be replaced when dependencies are built.
