file(REMOVE_RECURSE
  "CMakeFiles/tuple_counts_test.dir/engine/tuple_counts_test.cc.o"
  "CMakeFiles/tuple_counts_test.dir/engine/tuple_counts_test.cc.o.d"
  "tuple_counts_test"
  "tuple_counts_test.pdb"
  "tuple_counts_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuple_counts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
