# Empty compiler generated dependencies file for bench_compilation_baseline.
# This may be replaced when dependencies are built.
