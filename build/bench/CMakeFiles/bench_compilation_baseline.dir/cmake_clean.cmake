file(REMOVE_RECURSE
  "CMakeFiles/bench_compilation_baseline.dir/bench_compilation_baseline.cc.o"
  "CMakeFiles/bench_compilation_baseline.dir/bench_compilation_baseline.cc.o.d"
  "bench_compilation_baseline"
  "bench_compilation_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compilation_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
