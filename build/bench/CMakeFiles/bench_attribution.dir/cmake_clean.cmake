file(REMOVE_RECURSE
  "CMakeFiles/bench_attribution.dir/bench_attribution.cc.o"
  "CMakeFiles/bench_attribution.dir/bench_attribution.cc.o.d"
  "bench_attribution"
  "bench_attribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_attribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
