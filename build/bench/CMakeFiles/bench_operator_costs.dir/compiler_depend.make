# Empty compiler generated dependencies file for bench_operator_costs.
# This may be replaced when dependencies are built.
