file(REMOVE_RECURSE
  "CMakeFiles/bench_operator_costs.dir/bench_operator_costs.cc.o"
  "CMakeFiles/bench_operator_costs.dir/bench_operator_costs.cc.o.d"
  "bench_operator_costs"
  "bench_operator_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_operator_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
