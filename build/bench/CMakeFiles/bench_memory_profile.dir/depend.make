# Empty dependencies file for bench_memory_profile.
# This may be replaced when dependencies are built.
