# Empty compiler generated dependencies file for bench_register_tagging.
# This may be replaced when dependencies are built.
