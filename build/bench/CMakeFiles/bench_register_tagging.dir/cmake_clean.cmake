file(REMOVE_RECURSE
  "CMakeFiles/bench_register_tagging.dir/bench_register_tagging.cc.o"
  "CMakeFiles/bench_register_tagging.dir/bench_register_tagging.cc.o.d"
  "bench_register_tagging"
  "bench_register_tagging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_register_tagging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
