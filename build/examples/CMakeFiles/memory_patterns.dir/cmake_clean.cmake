file(REMOVE_RECURSE
  "CMakeFiles/memory_patterns.dir/memory_patterns.cpp.o"
  "CMakeFiles/memory_patterns.dir/memory_patterns.cpp.o.d"
  "memory_patterns"
  "memory_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
