# Empty dependencies file for memory_patterns.
# This may be replaced when dependencies are built.
