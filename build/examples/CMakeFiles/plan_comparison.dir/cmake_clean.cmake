file(REMOVE_RECURSE
  "CMakeFiles/plan_comparison.dir/plan_comparison.cpp.o"
  "CMakeFiles/plan_comparison.dir/plan_comparison.cpp.o.d"
  "plan_comparison"
  "plan_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
