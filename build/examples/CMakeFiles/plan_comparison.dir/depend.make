# Empty dependencies file for plan_comparison.
# This may be replaced when dependencies are built.
