file(REMOVE_RECURSE
  "CMakeFiles/explain_profile.dir/explain_profile.cpp.o"
  "CMakeFiles/explain_profile.dir/explain_profile.cpp.o.d"
  "explain_profile"
  "explain_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explain_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
