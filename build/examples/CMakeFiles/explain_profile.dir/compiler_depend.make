# Empty compiler generated dependencies file for explain_profile.
# This may be replaced when dependencies are built.
