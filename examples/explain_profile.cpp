// Domain-expert scenario (paper Section 6.1, first use case): a database user investigates why a
// query is slower than expected. Tailored Profiling aggregates samples to the query-plan level —
// unlike EXPLAIN-style tuple counts, the profile shows where the TIME actually goes.
#include <cstdio>

#include "src/engine/query_engine.h"
#include "src/interp/interpreter.h"
#include "src/profiling/reports.h"
#include "src/tpch/datagen.h"
#include "src/tpch/queries.h"
#include "src/util/chart.h"
#include "src/util/str.h"

int main() {
  using namespace dfp;
  Database db;
  TpchOptions options;
  options.scale = 0.01;
  GenerateTpch(db, options);
  QueryEngine engine(&db);

  std::printf("The user's slow query (the paper's Figure 9):\n");
  std::printf("  Select l_orderkey, avg(l_extendedprice) From lineitem, orders\n");
  std::printf("  Where o_orderdate < '1995-04-01' and o_orderkey = l_orderkey\n");
  std::printf("  Group By l_orderkey\n\n");

  ProfilingConfig config;
  config.period = 5000;
  ProfilingSession session(config);
  CodegenOptions codegen;
  codegen.count_tuples = true;  // EXPLAIN-ANALYZE-style counters, for the comparison below.
  CompiledQuery query = engine.Compile(BuildFig9Plan(db), &session, "fig9", codegen);
  Result result = engine.Execute(query);
  session.Resolve(db.code_map());

  std::printf("What EXPLAIN ANALYZE would show — tuples processed per task:\n%s\n",
              RenderTaskTupleCounts(query, session.dictionary()).c_str());

  // Tuple counts (what EXPLAIN ANALYZE would show) vs. sampled time.
  std::printf("Row bounds vs. sampled compute time per operator:\n");
  OperatorProfile profile = BuildOperatorProfile(session, query);
  std::function<std::string(const PhysicalOp&)> annotate = [&](const PhysicalOp& op) {
    const OperatorCost* cost = profile.Find(op.id);
    std::string share = cost != nullptr ? PercentString(cost->share) : std::string("-");
    return StrFormat("[<= %llu rows] (%s of time)",
                     static_cast<unsigned long long>(op.bound_rows), share.c_str());
  };
  std::printf("%s\n", RenderPlanTree(*query.plan, annotate).c_str());

  std::printf(
      "Even though the join and the aggregation see the same tuples, the profile shows where\n"
      "the cycles go — the paper's point: with 65%%/32%% splits a user can decide whether an\n"
      "index (attacking the join) or pre-aggregation (attacking the group-by) pays off.\n\n");

  std::printf("Result sanity check against the reference interpreter: %s\n",
              [&] {
                Result reference = InterpretPlan(db, *query.plan);
                std::string diff;
                return Result::Equivalent(result, reference, false, &diff) ? "OK"
                                                                           : diff.c_str();
              }());
  return 0;
}
