// Operator-developer scenario (paper Section 6.1, third use case): per-operator memory access
// profiles. Sampling on retired loads with address capture yields, per operator, the (time,
// address) scatter of Figure 12 — linear ramps for scans, hash-table spread for joins/group-bys.
#include <cstdio>

#include "src/engine/query_engine.h"
#include "src/profiling/reports.h"
#include "src/tpch/datagen.h"
#include "src/tpch/queries.h"

int main() {
  using namespace dfp;
  Database db;
  TpchOptions options;
  options.scale = 0.01;
  GenerateTpch(db, options);
  QueryEngine engine(&db);

  ProfilingConfig config;
  config.event = PmuEvent::kLoads;  // MEM_INST_RETIRED.ALL_LOADS analogue.
  config.period = 1000;
  config.capture_address = true;
  ProfilingSession session(config);
  CompiledQuery query = engine.Compile(BuildFig9Plan(db), &session, "fig9_mem");
  engine.Execute(query);
  session.Resolve(db.code_map());

  MemoryProfile profile = BuildMemoryProfile(session, query);
  std::printf("Memory access profile of the Figure 9 query (one panel per operator):\n\n%s",
              RenderMemoryProfile(profile).c_str());

  std::printf("Cache behaviour for context (whole query):\n");
  const CacheStats& cache = engine.last_cache_stats();
  std::printf("  %llu accesses, L1 miss %.2f%%, L2 miss %.2f%%, L3 miss %.2f%%\n",
              static_cast<unsigned long long>(cache.accesses),
              100.0 * static_cast<double>(cache.l1_misses) /
                  static_cast<double>(cache.accesses),
              100.0 * static_cast<double>(cache.l2_misses) /
                  static_cast<double>(cache.accesses),
              100.0 * static_cast<double>(cache.l3_misses) /
                  static_cast<double>(cache.accesses));
  std::printf(
      "\nHow an operator developer reads this (paper Section 6.1): the scans' linear ramps are\n"
      "prefetcher-friendly; the join's and group-by's spread across their hash tables is where\n"
      "cache misses come from — a starting point for partitioning or layout changes.\n");
  return 0;
}
