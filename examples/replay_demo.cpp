// Fleet record/replay walkthrough: record live traffic once, then re-ask questions of it
// forever. A serving process records every admitted query — plan template, literal bindings,
// arrival cycle, session weight/deadline, admission outcome — into a versioned text trace.
// Replaying that trace on the same build reproduces the recording bit for bit (the service is
// a pure function of its configuration and submission sequence), which turns "did this commit
// change serving behavior?" into a diff of two replay reports. What-if knobs then answer
// capacity questions offline: here, "what breaks at 10x the recorded session load?" — the
// bounded admission queue must shed the surplus as rejections, not crashes.
//
// The demo exits nonzero if the identity replay is not zero-diff or the 10x replay fails to
// degrade through admission control, so CI can run it as a smoke check.
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

#include "src/replay/recorder.h"
#include "src/replay/replayer.h"
#include "src/replay/trace.h"
#include "src/service/query_service.h"
#include "src/sql/binder.h"
#include "src/tpch/datagen.h"
#include "src/tpch/queries.h"

namespace {

std::string Q6Variant(double lo, double hi, int quantity) {
  char buffer[512];
  std::snprintf(buffer, sizeof(buffer),
                "select sum(l_extendedprice * l_discount) as revenue from lineitem "
                "where l_shipdate >= date '1994-01-01' and l_shipdate < date '1995-01-01' "
                "and l_discount between %.2f and %.2f and l_quantity < %d",
                lo, hi, quantity);
  return buffer;
}

// Recording and replaying use separate, identically generated databases: the service compiles
// code and carves session regions out of its database, so replaying into the recording
// database would shift every address and therefore every sample stream.
std::unique_ptr<dfp::Database> MakeDb(const dfp::ServiceConfig& config) {
  dfp::DatabaseConfig db_config;
  db_config.extra_bytes = dfp::ServiceArenaBytes(config);
  auto db = std::make_unique<dfp::Database>(db_config);
  dfp::TpchOptions options;
  options.scale = 0.01;
  dfp::GenerateTpch(*db, options);
  return db;
}

}  // namespace

int main() {
  using namespace dfp;

  ServiceConfig config;
  config.parallel.workers = 4;
  config.max_active_sessions = 2;
  config.session_hashtables_bytes = 32ull << 20;
  config.session_output_bytes = 16ull << 20;
  config.profiling.period = 311;
  config.tiering.enabled = true;

  // --- Record: a mixed workload through an attached recorder ---
  std::printf("=== Recording a mixed workload ===\n");
  std::string trace_text;
  {
    auto db = MakeDb(config);
    QueryService service(*db, config);
    TraceRecorder recorder;
    service.AttachRecorder(recorder);

    service.Submit(BuildQueryPlan(*db, FindQuery("q1")), "q1");
    service.Submit(BuildQueryPlan(*db, FindQuery("q3")), "q3");
    service.Drain();
    service.Submit(BuildQueryPlan(*db, FindQuery("q1")), "q1");
    for (double lo : {0.02, 0.03, 0.04, 0.05}) {
      service.Submit(PlanSql(*db, Q6Variant(lo, lo + 0.02, 24)), "q6");
    }
    service.Drain();
    for (double lo : {0.02, 0.03, 0.04}) {
      service.Submit(PlanSql(*db, Q6Variant(lo, lo + 0.02, 24)), "q6");
    }
    service.Drain();

    recorder.Finish(service);
    trace_text = EncodeTraceText(recorder.trace());
    std::printf("recorded %llu queries into a %zu-byte trace\n",
                static_cast<unsigned long long>(recorder.trace().summary.queries),
                trace_text.size());
  }

  // Persist and re-read, as a production trace would be.
  const char* trace_path = "dfp_trace.txt";
  {
    std::ofstream out(trace_path);
    out << trace_text;
  }
  std::ifstream in(trace_path);
  const WorkloadTrace trace = ReadTrace(in);
  std::printf("wrote and re-read %s\n\n", trace_path);

  // --- Replay 1: identity knobs — must reproduce the recording bit for bit ---
  std::printf("=== Identity replay (zero-diff contract) ===\n");
  ReplayReport identity;
  {
    auto db = MakeDb(config);
    const ReplayRun run = ReplayTrace(*db, trace);
    identity = DiffTraces(trace, run.trace);
    std::printf("%s\n", RenderReplayReport(identity).c_str());
  }

  // --- Replay 2: what breaks at 10x sessions? ---
  std::printf("=== What-if: 10x session load ===\n");
  ReplayReport scaled;
  {
    WhatIfKnobs knobs;
    knobs.session_multiplier = 10;
    DatabaseConfig db_config;
    db_config.extra_bytes = ServiceArenaBytes(ReplayServiceConfig(trace, knobs));
    auto db = std::make_unique<Database>(db_config);
    TpchOptions options;
    options.scale = 0.01;
    GenerateTpch(*db, options);
    ReplayOptions replay_options;
    replay_options.knobs = knobs;
    const ReplayRun run = ReplayTrace(*db, trace, replay_options);
    scaled = DiffTraces(trace, run.trace);
    scaled.session_multiplier = knobs.session_multiplier;
    std::printf("%s\n", RenderReplayReport(scaled).c_str());
  }

  const bool scaled_ok =
      scaled.replayed_rejected > scaled.recorded_rejected &&
      scaled.replayed_completed + scaled.replayed_rejected + scaled.replayed_timed_out ==
          scaled.replayed_queries;
  std::printf("identity replay %s, 10x load shed through admission control %s\n",
              identity.identical ? "zero-diff [ok]" : "[FAIL]",
              scaled_ok ? "[ok]" : "[FAIL]");
  return identity.identical && scaled_ok ? 0 : 1;
}
