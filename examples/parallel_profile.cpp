// Parallel-execution scenario: a developer profiles the same query single-threaded and on a
// 4-worker morsel-parallel pool. Each simulated core has its own PMU and tag register; the
// engine merges the per-worker sample streams by timestamp, so every Tailored Profiling report
// works unchanged — plus a per-worker activity timeline that makes idle phases visible.
#include <cstdio>

#include "src/engine/query_engine.h"
#include "src/profiling/reports.h"
#include "src/tpch/datagen.h"
#include "src/tpch/queries.h"

int main() {
  using namespace dfp;
  Database db;
  TpchOptions options;
  options.scale = 0.01;
  GenerateTpch(db, options);
  QueryEngine engine(&db);
  const QuerySpec& spec = FindQuery("q1");

  std::printf("Query q1 (TPC-H Q1 shape: scan lineitem, filter, group, sort).\n\n");

  // Baseline: single-threaded profiled run.
  ProfilingConfig pconfig;
  pconfig.period = 5000;
  ProfilingSession seq_session(pconfig);
  CompiledQuery sequential = engine.Compile(BuildQueryPlan(db, spec), &seq_session, "q1");
  engine.Execute(sequential);
  const uint64_t seq_cycles = engine.last_cycles();

  // The same plan compiled in morsel-parallel mode: pipeline functions take (state,
  // morsel_begin, morsel_end), cursors move through the shared state block, and hash-table
  // inserts go through the lock-striped runtime kernel.
  ProfilingSession par_session(pconfig);
  CodegenOptions codegen;
  codegen.parallel = true;
  CompiledQuery parallel = engine.Compile(BuildQueryPlan(db, spec), &par_session, "q1_par",
                                          codegen);
  ParallelConfig pool;
  pool.workers = 4;
  engine.ExecuteParallel(parallel, pool);
  const uint64_t par_cycles = engine.last_cycles();

  std::printf("single-threaded: %10llu simulated cycles\n",
              static_cast<unsigned long long>(seq_cycles));
  std::printf("4 workers:       %10llu simulated cycles (%.2fx speedup)\n\n",
              static_cast<unsigned long long>(par_cycles),
              static_cast<double>(seq_cycles) / static_cast<double>(par_cycles));

  std::printf("Per-worker execution metrics:\n");
  for (const WorkerMetrics& w : engine.last_worker_metrics()) {
    std::printf("  worker %u: %3llu dispatches, %5.1f%% busy, %llu samples\n", w.worker_id,
                static_cast<unsigned long long>(w.morsels),
                100.0 * static_cast<double>(w.busy_cycles) / static_cast<double>(par_cycles),
                static_cast<unsigned long long>(w.samples));
  }

  par_session.Resolve(db.code_map());
  std::printf("\nPer-worker activity (one lane per worker; the tail is the sequential\n");
  std::printf("group-scan/sort phase, which only worker 0 executes):\n%s\n",
              RenderActivityTimeline(BuildWorkerActivityTimeline(par_session, 60)).c_str());

  std::printf("Cost-annotated plan from the merged 4-worker sample stream:\n%s\n",
              RenderAnnotatedPlan(BuildOperatorProfile(par_session, parallel), parallel).c_str());
  return 0;
}
