// Quickstart: build a tiny database, run the paper's example query (Figure 3) with Tailored
// Profiling, and print the cost-annotated plan — the fastest tour of the public API.
//
//   1. Create a Database (this compiles the shared runtime functions).
//   2. Load tables through TableBuilder.
//   3. Express a query in SQL (or with PlanBuilder).
//   4. Attach a ProfilingSession, compile, execute.
//   5. Resolve the samples and render reports.
#include <cstdio>

#include "src/engine/query_engine.h"
#include "src/profiling/reports.h"
#include "src/sql/binder.h"
#include "src/util/decimal.h"
#include "src/util/random.h"

int main() {
  using namespace dfp;

  // 1. The database owns the simulated memory, the code map, and the compiled runtime.
  Database db;
  QueryEngine engine(&db);

  // 2. Load the paper's example tables: products and sales.
  {
    TableBuilder products = db.CreateTableBuilder(
        {"products", {{"id", ColumnType::kInt64}, {"category", ColumnType::kString}}});
    for (int i = 0; i < 1000; ++i) {
      products.BeginRow();
      products.SetI64(0, i);
      products.SetString(1, i % 5 == 0 ? "Chip" : (i % 5 == 1 ? "Board" : "Cable"));
    }
    db.AddTable(products.Finish());
  }
  {
    Random rng(42);
    TableBuilder sales = db.CreateTableBuilder({"sales",
                                                {{"id", ColumnType::kInt64},
                                                 {"price", ColumnType::kDecimal},
                                                 {"vat_factor", ColumnType::kDecimal},
                                                 {"prod_costs", ColumnType::kDecimal}}});
    for (int i = 0; i < 100000; ++i) {
      sales.BeginRow();
      sales.SetI64(0, rng.Uniform(0, 999));
      sales.SetDecimal(1, rng.Uniform(100, 100000));
      sales.SetDecimal(2, rng.Uniform(100, 125));
      sales.SetDecimal(3, rng.Uniform(100, 5000));
    }
    db.AddTable(sales.Finish());
  }

  // 3. The paper's Figure 3 query, straight from SQL.
  const char* sql =
      "select s.id, avg(s.price / s.vat_factor / s.prod_costs) as avg_ratio "
      "from sales s, products p "
      "where s.id = p.id and p.category = 'Chip' "
      "group by s.id";
  std::printf("Query:\n  %s\n\n", sql);

  // 4. Attach a profiling session (Register Tagging, sampling every 5000 instructions).
  ProfilingConfig config;
  config.period = 5000;
  ProfilingSession session(config);
  CompiledQuery query = engine.Compile(PlanSql(db, sql), &session, "quickstart");
  Result result = engine.Execute(query);
  std::printf("First rows of the result:\n%s\n", result.ToString(db.strings(), 5).c_str());

  // 5. Post-process the samples bottom-up through the Tagging Dictionary and report.
  session.Resolve(db.code_map());
  OperatorProfile profile = BuildOperatorProfile(session, query);
  std::printf("Cost-annotated plan (the paper's Figure 9b view):\n%s\n",
              RenderAnnotatedPlan(profile, query).c_str());
  std::printf("%s\n", RenderAttributionStats(session.Stats()).c_str());
  std::printf("Simulated execution: %.2f ms at 4.2 GHz (%llu cycles), %zu samples\n",
              CyclesToMs(session.execution_cycles()),
              static_cast<unsigned long long>(session.execution_cycles()),
              session.samples().size());
  return 0;
}
