// Critical-path analysis walkthrough: why "which pipeline burns the most cycles" and "which
// pipeline gates this query's latency" are different questions, and how the bottleneck
// classifier turns per-task PMU counters into a remedy.
//
// The demo executes the skewed q6 workload (date-correlated orders: the qualifying lineitem
// rows cluster into one contiguous band, so locality-blind scheduling leaves most DRAM traffic
// on the wrong NUMA node) twice — once under central table-order dispatch and once under
// NUMA-aware work stealing — and for each run reconstructs the task DAG from the executor's
// boundary records, computes per-task slack and the critical path, and classifies every
// pipeline. The scan pipeline must flip from remote-DRAM-bound (central) to compute-bound
// (stealing): the fix the classifier named is the fix the scheduler applied.
//
// The analysis is a pure function of the recorded schedule, so the exported JSON is
// byte-identical across process runs — the critpath-smoke CI job runs this demo twice and
// diffs the files; the demo itself exits nonzero if the verdicts do not flip.
#include <cstdio>
#include <fstream>

#include "src/critpath/classify.h"
#include "src/critpath/dag.h"
#include "src/critpath/report.h"
#include "src/engine/query_engine.h"
#include "src/plan/builder.h"
#include "src/tpch/datagen.h"
#include "src/tpch/queries.h"

int main() {
  using namespace dfp;

  Database db;
  TpchOptions options;
  options.scale = 0.01;
  options.correlated_order_dates = true;
  GenerateTpch(db, options);

  QueryEngine engine(&db);
  CodegenOptions codegen;
  codegen.parallel = true;
  CompiledQuery query =
      engine.Compile(BuildQueryPlan(db, FindQuery("q6")), nullptr, "q6_critpath", codegen);

  // The scan is the pipeline the scheduler fans out into morsels — the only one whose
  // schedule (and therefore verdict) can react to the scheduling policy.
  auto scan_label = [](const TaskDag& dag, const std::vector<PipelineVerdict>& verdicts) {
    uint32_t scan = 0;
    uint64_t most_tasks = 0;
    for (const PipelineCriticality& p : dag.pipelines) {
      if (p.tasks > most_tasks) {
        most_tasks = p.tasks;
        scan = p.pipeline;
      }
    }
    for (const PipelineVerdict& v : verdicts) {
      if (v.pipeline == scan) {
        return v.label;
      }
    }
    return Bottleneck::kInsufficientData;
  };

  std::ofstream json("critpath_analysis.json");
  json << "{\n\"central\": ";
  Bottleneck central_label = Bottleneck::kInsufficientData;
  Bottleneck stealing_label = Bottleneck::kInsufficientData;
  for (SchedulerPolicy policy : {SchedulerPolicy::kCentral, SchedulerPolicy::kWorkStealing}) {
    ParallelConfig config;
    config.workers = 4;
    config.scheduler = policy;
    engine.ExecuteParallel(query, config);

    const TaskDag dag = BuildTaskDag(engine.last_task_boundaries());
    const std::vector<PipelineVerdict> verdicts = ClassifyPipelines(dag);
    std::printf("=== %s ===\n%s\n%s\n",
                policy == SchedulerPolicy::kCentral ? "central table-order dispatch"
                                                    : "NUMA-aware work stealing",
                RenderQueryCriticalPath(dag, verdicts).c_str(),
                RenderSlackTable(dag).c_str());
    if (policy == SchedulerPolicy::kCentral) {
      central_label = scan_label(dag, verdicts);
      WriteCritPathJson(dag, verdicts, json);
      json << ",\n\"stealing\": ";
    } else {
      stealing_label = scan_label(dag, verdicts);
      WriteCritPathJson(dag, verdicts, json);
      json << "}\n";
    }
  }
  json.close();
  std::printf("wrote critpath_analysis.json\n");

  const bool flipped = central_label == Bottleneck::kRemoteDramBound &&
                       stealing_label == Bottleneck::kComputeBound;
  std::printf("scan pipeline verdict: %s (central) -> %s (stealing) %s\n",
              BottleneckName(central_label), BottleneckName(stealing_label),
              flipped ? "[ok]" : "[FAIL: classifier did not track the scheduler]");
  return flipped ? 0 : 1;
}
