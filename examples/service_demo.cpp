// Query-service scenario: a long-lived serving process handles a stream of queries from
// several "applications". The service fingerprints every incoming plan, serves repeats from
// the compiled-plan cache (zero new generated code, bit-identical results, correctly
// attributed profiles), schedules up to two sessions concurrently on the shared worker pool,
// and aggregates a fleet-level profile across everything it served — the always-on production
// framing of Section 5.2, extended to a multi-query process.
//
// The continuous-profiling layer runs on top: the adaptive sampling governor bounds measured
// profiling cost to its budget, the windowed fleet profile buckets the same stream by service
// time, and a baseline snapshot plus an identical rerun demonstrates the regression detector's
// quietness (any finding on the rerun is a false positive and fails the process — the
// continuous-smoke CI job runs this demo twice and also diffs the exported window JSON for
// determinism).
#include <cstdio>
#include <fstream>

#include "src/service/query_service.h"
#include "src/sql/binder.h"
#include "src/tpch/datagen.h"
#include "src/tpch/queries.h"

int main() {
  using namespace dfp;

  ServiceConfig config;
  config.parallel.workers = 4;
  config.max_active_sessions = 2;
  config.session_hashtables_bytes = 32ull << 20;
  config.session_output_bytes = 16ull << 20;
  config.profiling.period = 5000;
  config.continuous.governor.enabled = true;
  config.continuous.governor.overhead_budget = 0.02;
  // Push-style alerting: DetectRegressions() invokes this once per finding, so a drifted plan
  // surfaces as a one-line alert without anyone polling the findings list.
  int alerts_fired = 0;
  config.continuous.regression_alert = [&alerts_fired](const RegressionFinding& finding) {
    ++alerts_fired;
    std::printf("ALERT: plan %s (%016llx) drifted — cycles/row %.1f -> %.1f\n",
                finding.name.c_str(), static_cast<unsigned long long>(finding.fingerprint),
                finding.baseline_cycles_per_row, finding.current_cycles_per_row);
  };

  DatabaseConfig db_config;
  db_config.extra_bytes = ServiceArenaBytes(config);  // Per-session scratch arenas.
  Database db(db_config);
  TpchOptions options;
  options.scale = 0.01;
  GenerateTpch(db, options);

  QueryService service(db, config);

  // A serving day in miniature: three applications issue overlapping workloads, so the same
  // plan shapes recur. Only the first occurrence of each shape compiles.
  const char* stream[] = {"q6", "q1", "q6", "q3", "q1", "q6", "q14", "q1", "q6"};
  std::printf("Submitting %zu queries (4 distinct plan shapes)...\n\n",
              sizeof(stream) / sizeof(stream[0]));
  for (const char* name : stream) {
    TicketId id = service.Submit(BuildQueryPlan(db, FindQuery(name)), name);
    (void)id;
  }
  service.Drain();

  std::printf("Per-ticket outcome (hit = served from the plan cache):\n");
  for (uint32_t id = 1; id <= service.ticket_count(); ++id) {
    const QueryTicket& t = service.ticket(id);
    std::printf("  #%u %-4s %-4s compile %9llu cycles, execute %9llu cycles, %llu result rows\n",
                t.id, t.name.c_str(), t.cache_hit ? "hit" : "miss",
                static_cast<unsigned long long>(t.compile_cycles),
                static_cast<unsigned long long>(t.execute_cycles),
                static_cast<unsigned long long>(t.result.rows().size()));
  }

  const PlanCacheStats& cache = service.plan_cache().stats();
  std::printf("\nPlan cache: %llu hits, %llu misses, %llu code bytes resident\n",
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses),
              static_cast<unsigned long long>(cache.resident_code_bytes));

  // The fleet profile aggregates per-fingerprint: every execution of q6 — hit or miss —
  // contributes to the same plan entry, so the hottest-operator ranking reflects the whole
  // serving period, not a single run.
  std::printf("\n%s\n", service.fleet_profile().Render(/*top_k=*/5).c_str());

  // Continuous layer: replay the stream a few times so the governor converges on its 2%
  // budget, then freeze a baseline and replay once more — identical input, so the regression
  // detector must stay quiet.
  auto run_stream = [&] {
    for (const char* name : stream) {
      service.Submit(BuildQueryPlan(db, FindQuery(name)), name);
    }
    service.Drain();
  };
  for (int pass = 0; pass < 3; ++pass) {
    run_stream();
  }
  std::printf("%s\n", service.governor().Render().c_str());
  std::printf("%s\n", service.windows().Render().c_str());

  service.SnapshotBaseline();
  run_stream();
  const auto findings = service.DetectRegressions();
  std::printf("identical rerun after baseline snapshot: %zu regression finding(s)%s\n",
              findings.size(), findings.empty() ? "" : " [FALSE POSITIVE]");
  if (!findings.empty()) {
    std::printf("%s", RenderRegressionReport(findings).c_str());
  }

  // Injected plan-mix shift: a q6 variant with far wider literals shares q6's structural
  // fingerprint but does much more work per row. The detector must flag it, and the alert hook
  // above must have pushed its one-liner.
  const char* shifted_q6 =
      "select sum(l_extendedprice * l_discount) as revenue from lineitem "
      "where l_shipdate >= date '1992-01-01' and l_shipdate < date '1999-01-01' "
      "and l_discount between 0.00 and 0.10 and l_quantity < 100";
  const TicketId probe = service.Submit(PlanSql(db, FindQuery("q6").sql), "q6");
  service.Drain();
  const uint64_t q6_fingerprint = service.ticket(probe).fingerprint.structure;
  service.SnapshotBaseline();
  for (int i = 0; i < 6; ++i) {
    service.Submit(PlanSql(db, shifted_q6), "q6");
    service.Drain();
  }
  alerts_fired = 0;
  const auto shift_findings = service.DetectRegressions();
  bool shift_flagged = false;
  for (const auto& finding : shift_findings) {
    shift_flagged |= finding.fingerprint == q6_fingerprint;
  }
  std::printf("injected q6 literal shift: %sflagged, %d alert(s) pushed\n",
              shift_flagged ? "" : "NOT ", alerts_fired);

  // Deterministic window export: two runs of this demo must produce byte-identical JSON.
  {
    std::ofstream out("service_windows.json");
    service.windows().WriteJson(out);
  }
  std::printf("windowed profile written to service_windows.json\n");
  return (findings.empty() && shift_flagged && alerts_fired >= 1) ? 0 : 1;
}
