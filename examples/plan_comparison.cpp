// Optimizer-developer scenario (paper Section 6.1, second use case): two plans with identical
// intermediate-result sizes behave very differently at runtime. The activity-over-time view
// (Figure 11) reveals why: on data where lineitem is clustered on the join key and the orders
// filter correlates with it, probe outcomes arrive clustered in time.
#include <cstdio>

#include "src/engine/query_engine.h"
#include "src/profiling/reports.h"
#include "src/tpch/datagen.h"
#include "src/tpch/queries.h"
#include "src/util/date.h"

int main() {
  using namespace dfp;
  Database db;
  TpchOptions options;
  options.scale = 0.01;
  options.correlated_order_dates = true;  // The data layout behind the paper's observation.
  GenerateTpch(db, options);
  QueryEngine engine(&db);
  const int32_t cutoff = ParseDate("1995-06-01");

  auto run = [&](PhysicalOpPtr plan, const char* name) {
    ProfilingConfig config;
    config.period = 2000;
    ProfilingSession session(config);
    CompiledQuery query = engine.Compile(std::move(plan), &session, name);
    engine.Execute(query);
    session.Resolve(db.code_map());
    std::printf("=== %s — %.2f ms simulated, %llu branch misses ===\n", name,
                CyclesToMs(session.execution_cycles()),
                static_cast<unsigned long long>(
                    session.counters()[PmuEvent::kBranchMiss]));
    ActivityTimeline timeline = BuildActivityTimeline(session, query, 64);
    std::printf("%s\n", RenderActivityTimeline(timeline).c_str());
    return session.execution_cycles();
  };

  std::printf("Both plans join lineitem with a date-filtered orders and a filtered partsupp;\n");
  std::printf("their intermediate result sizes are identical, so a cost model based on\n");
  std::printf("cardinalities alone could pick either (the paper's Figure 10).\n\n");

  uint64_t optimizer = run(BuildFig10OptimizerPlan(db, cutoff), "Optimizer's plan (partsupp first)");
  uint64_t alternative = run(BuildFig10AlternativePlan(db, cutoff), "Alternative plan (orders first)");

  std::printf("Alternative plan is %.1f%% faster.\n",
              (1.0 - static_cast<double>(alternative) / static_cast<double>(optimizer)) * 100);
  std::printf(
      "Reading the timelines (as the paper's optimizer developer does): in the alternative\n"
      "plan the orders join eliminates every tuple once the scan passes the date cutoff, so\n"
      "the partsupp probe stops appearing — prompting a cost-model extension for data-layout\n"
      "properties like clustering and branch predictability.\n");
  return 0;
}
