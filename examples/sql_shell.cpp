// Batch SQL shell over the TPC-H-style dataset: runs queries from the command line or stdin,
// optionally with a full Tailored Profiling report per query.
//
// Usage:
//   sql_shell [--scale S] [--profile] [--listing] ["SQL..." ...]
// Without SQL arguments, statements are read from stdin (semicolon- or newline-terminated).
// Meta commands: \tables, \suite (run the whole built-in query suite), \q.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "src/engine/query_engine.h"
#include "src/profiling/reports.h"
#include "src/sql/binder.h"
#include "src/tpch/datagen.h"
#include "src/tpch/queries.h"

namespace {

using namespace dfp;

struct ShellOptions {
  double scale = 0.005;
  bool profile = false;
  bool listing = false;
};

void RunStatement(Database& db, QueryEngine& engine, const ShellOptions& options,
                  const std::string& sql) {
  try {
    std::unique_ptr<ProfilingSession> session;
    if (options.profile) {
      ProfilingConfig config;
      config.period = 2000;
      session = std::make_unique<ProfilingSession>(config);
    }
    CompiledQuery query = engine.Compile(PlanSql(db, sql), session.get(), "shell");
    Result result = engine.Execute(query);
    std::printf("%s", result.ToString(db.strings(), 25).c_str());
    std::printf("-- %.3f ms simulated (%llu instructions)\n",
                CyclesToMs(engine.last_cycles()),
                static_cast<unsigned long long>(engine.last_cpu_stats().instructions));
    if (session != nullptr) {
      session->Resolve(db.code_map());
      OperatorProfile profile = BuildOperatorProfile(*session, query);
      std::printf("\n%s", RenderAnnotatedPlan(profile, query).c_str());
      std::printf("%s", RenderAttributionStats(session->Stats()).c_str());
      if (options.listing) {
        for (const PipelineArtifact& artifact : query.pipelines) {
          ListingOptions listing_options;
          listing_options.pipeline = artifact.pipeline.id;
          std::printf("\n%s", RenderAnnotatedListing(*session, query, listing_options).c_str());
        }
      }
    }
    std::printf("\n");
  } catch (const Error& error) {
    std::printf("error: %s\n\n", error.what());
  }
}

void RunSuite(Database& db, QueryEngine& engine, const ShellOptions& options) {
  for (const QuerySpec& spec : TpchQuerySuite()) {
    std::printf("=== %s: %s ===\n", spec.name.c_str(), spec.description.c_str());
    if (!spec.sql.empty()) {
      RunStatement(db, engine, options, spec.sql);
    } else {
      CompiledQuery query = engine.Compile(BuildQueryPlan(db, spec), nullptr, spec.name);
      Result result = engine.Execute(query);
      std::printf("%s-- %.3f ms simulated\n\n", result.ToString(db.strings(), 10).c_str(),
                  CyclesToMs(engine.last_cycles()));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  ShellOptions options;
  std::vector<std::string> statements;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      options.scale = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      options.profile = true;
    } else if (std::strcmp(argv[i], "--listing") == 0) {
      options.listing = true;
      options.profile = true;
    } else {
      statements.emplace_back(argv[i]);
    }
  }

  Database db;
  TpchOptions tpch;
  tpch.scale = options.scale;
  TpchRowCounts counts = GenerateTpch(db, tpch);
  QueryEngine engine(&db);
  std::printf("dfp sql shell — TPC-H-style data at scale %g (%llu lineitem rows)\n",
              options.scale, static_cast<unsigned long long>(counts.lineitem));

  if (!statements.empty()) {
    for (const std::string& sql : statements) {
      RunStatement(db, engine, options, sql);
    }
    return 0;
  }

  std::printf("Enter SQL (one statement per line), \\tables, \\suite, or \\q.\n");
  std::string line;
  while (std::printf("dfp> "), std::fflush(stdout), std::getline(std::cin, line)) {
    if (line.empty()) {
      continue;
    }
    if (line == "\\q") {
      break;
    }
    if (line == "\\tables") {
      for (const char* name :
           {"region", "nation", "supplier", "customer", "part", "partsupp", "orders",
            "lineitem"}) {
        const Table& table = db.table(name);
        std::printf("  %-10s %10llu rows, %zu columns\n", name,
                    static_cast<unsigned long long>(table.row_count()),
                    table.schema().columns.size());
      }
      continue;
    }
    if (line == "\\suite") {
      RunSuite(db, engine, options);
      continue;
    }
    RunStatement(db, engine, options, line);
  }
  return 0;
}
