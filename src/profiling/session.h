// ProfilingSession: configuration, compile-time collection, and post-processing state of one
// Tailored Profiling run.
//
// A session is attached to a query compilation (populating the Tagging Dictionary through the
// Abstraction Trackers and the IRBuilder observer, and driving Register Tagging emission) and to
// its execution (PMU sampling). Afterwards, Resolve() maps every sample bottom-up:
//   native IP -> machine instruction -> (debug info) IR instruction -> (Log B) task ->
//   (Log A) operator,
// using the tag register or the call stack to disambiguate shared code, exactly as in Figure 5
// of the paper.
#ifndef DFP_SRC_PROFILING_SESSION_H_
#define DFP_SRC_PROFILING_SESSION_H_

#include <cstdint>
#include <vector>

#include "src/pmu/pmu.h"
#include "src/profiling/abstraction_tracker.h"
#include "src/profiling/tagging_dictionary.h"
#include "src/vcpu/code_map.h"

namespace dfp {

enum class AttributionMode : uint8_t {
  kNone,             // Samples are collected but shared code stays unattributed.
  kRegisterTagging,  // The paper's lightweight mechanism (default).
  kCallStack,        // The expensive baseline.
};

struct ProfilingConfig {
  PmuEvent event = PmuEvent::kInstrRetired;
  uint64_t period = 5000;
  bool capture_address = false;  // For memory-access profiles (Figure 12).
  AttributionMode attribution = AttributionMode::kRegisterTagging;
  // Validation mode (Section 6.3): tag every generated instruction so the IP-based attribution
  // can be cross-checked against the tag register sample by sample.
  bool tag_all_instructions = false;
  // When false, the compile-time machinery (dictionary, tag emission, register reservation)
  // stays active but the PMU never samples — used to isolate Register Tagging's code overhead
  // from the sampling overhead (Section 6.2).
  bool enable_sampling = true;
  // Multi-level tag packing (paper Section 4.2.5): instead of one register per abstraction
  // level, the operator-level tag is packed into the upper 32 bits of the tag register and the
  // task-level tag into the lower 32 bits. Resolution then reads the operator directly from the
  // sample without consulting Log A.
  bool packed_tags = false;
};

struct ResolvedSample {
  enum class Category : uint8_t { kOperator, kKernel, kUnattributed };

  Category category = Category::kUnattributed;
  OperatorId op = kNoOperator;
  TaskId task = kNoTask;
  uint32_t ir_id = kNoIrId;
  uint32_t segment = 0xFFFFFFFFu;
  uint64_t tsc = 0;
  uint64_t ip = 0;
  uint64_t addr = 0;
  uint32_t worker_id = 0;  // VCPU that took the sample (0 on single-threaded runs).
  uint8_t mem_node = kNoNumaNode;  // NUMA home node of `addr` (kNoNumaNode if unmanaged).
  uint8_t tier = 0;            // Compilation tier of the sampled code (PlanTier value).
  bool numa_remote = false;    // The access crossed to another node's memory.
  bool stolen = false;         // Taken while executing a stolen morsel.
  bool ambiguous = false;      // Multi-owner instruction without tag evidence.
  bool via_tag = false;        // Disambiguated through the tag register.
  bool via_callstack = false;  // Disambiguated by walking the call stack.
};

struct AttributionStats {
  uint64_t total = 0;
  uint64_t operator_samples = 0;
  uint64_t kernel_samples = 0;
  uint64_t unattributed = 0;
  uint64_t ambiguous = 0;
  uint64_t via_tag = 0;
  uint64_t via_callstack = 0;
};

class ProfilingSession {
 public:
  explicit ProfilingSession(ProfilingConfig config = ProfilingConfig());

  const ProfilingConfig& config() const { return config_; }
  // Derives the PMU configuration: register capture for tagging, stack capture for the baseline.
  SamplingConfig MakeSamplingConfig() const;

  TaggingDictionary& dictionary() { return dictionary_; }
  const TaggingDictionary& dictionary() const { return dictionary_; }
  AbstractionTracker<OperatorId>& operator_tracker() { return operator_tracker_; }
  AbstractionTracker<TaskId>& task_tracker() { return task_tracker_; }

  bool use_register_tagging() const {
    return config_.attribution == AttributionMode::kRegisterTagging;
  }

  // Recorded by the engine after execution. For parallel runs `samples` is the per-worker
  // streams merged by (tsc, worker_id) and `worker_count` the pool size; single-threaded
  // executions use the default of one worker.
  void RecordExecution(std::vector<Sample> samples, uint64_t cycles, PmuCounters counters,
                       uint32_t worker_count = 1);

  // Number of workers that produced the recorded samples (1 for single-threaded runs).
  uint32_t worker_count() const { return worker_count_; }

  // Offline post-processing: reconstitute a session from a serialized Tagging Dictionary and
  // sample dump (see src/profiling/serialize.h), mirroring the paper's decoupled pipeline of
  // meta-data file + perf script output.
  void LoadForPostProcessing(TaggingDictionary dictionary, std::vector<Sample> samples,
                             uint64_t cycles);
  uint64_t execution_cycles() const { return execution_cycles_; }
  const std::vector<Sample>& samples() const { return samples_; }
  const PmuCounters& counters() const { return counters_; }

  // Post-processing: maps all samples to abstraction levels. Idempotent.
  void Resolve(const CodeMap& code_map);
  const std::vector<ResolvedSample>& resolved() const { return resolved_; }
  AttributionStats Stats() const;

 private:
  ResolvedSample ResolveOne(const Sample& sample, const CodeMap& code_map) const;

  ProfilingConfig config_;
  TaggingDictionary dictionary_;
  AbstractionTracker<OperatorId> operator_tracker_;
  AbstractionTracker<TaskId> task_tracker_;
  std::vector<Sample> samples_;
  std::vector<ResolvedSample> resolved_;
  PmuCounters counters_;
  uint64_t execution_cycles_ = 0;
  uint32_t worker_count_ = 1;
  bool resolved_done_ = false;
};

}  // namespace dfp

#endif  // DFP_SRC_PROFILING_SESSION_H_
