// The Tagging Dictionary (paper Section 4.2.2).
//
// One log per lowering step:
//   Log A: pipeline task -> dataflow-graph operator (populated during pipeline construction).
//   Log B: Machine IR instruction id -> pipeline task(s) (populated during code generation
//          through the IRBuilder observer).
// The third lowering step (Machine IR -> machine instructions) is covered by the backend's debug
// info (per-machine-instruction IR ids), the analogue of DWARF in the paper's prototype.
//
// The dictionary is a LineageListener: optimization passes report eliminated and absorbed
// instructions so the mapping stays correct under code motion (Table 1). An instruction that
// absorbed work from another task has multiple owners; samples on it are disambiguated at
// post-processing time via the tag register when available.
#ifndef DFP_SRC_PROFILING_TAGGING_DICTIONARY_H_
#define DFP_SRC_PROFILING_TAGGING_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/backend/lineage.h"
#include "src/plan/physical.h"

namespace dfp {

using TaskId = uint32_t;
inline constexpr TaskId kNoTask = 0xFFFFFFFFu;
inline constexpr OperatorId kNoOperator = 0xFFFFFFFFu;

struct TaskInfo {
  TaskId id = kNoTask;
  OperatorId op = kNoOperator;
  std::string name;  // "probe", "build", "aggregate", ...
};

class TaggingDictionary : public LineageListener {
 public:
  // --- Log A ---
  TaskId AddTask(OperatorId op, std::string name);
  const TaskInfo& task(TaskId id) const { return tasks_[id]; }
  const std::vector<TaskInfo>& tasks() const { return tasks_; }
  OperatorId OperatorOf(TaskId id) const { return tasks_[id].op; }

  // --- Log B ---
  void LinkInstr(uint32_t ir_id, TaskId task);
  // Owning tasks of an instruction (usually one; several after CSE/fusing across tasks).
  // Returns nullptr for unknown instructions (e.g. runtime-function code).
  const std::vector<TaskId>* TasksOf(uint32_t ir_id) const;

  // --- Lineage (Table 1) ---
  void OnRemove(uint32_t ir_id) override;
  void OnAbsorb(uint32_t kept_id, uint32_t absorbed_id) override;

  // All Log B entries (for serialization and diagnostics).
  const std::unordered_map<uint32_t, std::vector<TaskId>>& entries() const {
    return instr_tasks_;
  }

  // --- Storage accounting (Section 6.2) ---
  size_t log_a_entries() const { return tasks_.size(); }
  size_t log_b_entries() const { return instr_tasks_.size(); }
  // Approximate serialized size: Log A rows + one (ir id, task) pair per Log B owner entry.
  uint64_t ApproxBytes() const;

 private:
  std::vector<TaskInfo> tasks_;
  std::unordered_map<uint32_t, std::vector<TaskId>> instr_tasks_;
};

}  // namespace dfp

#endif  // DFP_SRC_PROFILING_TAGGING_DICTIONARY_H_
