#include "src/profiling/serialize.h"

#include <algorithm>
#include <cstdint>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>

#include "src/util/check.h"

namespace dfp {
namespace {

constexpr const char* kDictionaryHeader = "# dfp tagging dictionary v1";
constexpr const char* kSamplesHeaderPrefix = "# dfp samples v";
constexpr int kMaxSamplesVersion = 8;

[[noreturn]] void Malformed(const std::string& line) {
  throw Error("malformed profiling meta-data line: '" + line + "'");
}

// Parses `# dfp samples v<N>` and returns N, throwing for non-sample files and — distinctly —
// for sample streams written by a newer build than this one.
int ParseSamplesVersion(const std::string& header) {
  const std::string prefix = kSamplesHeaderPrefix;
  if (header.compare(0, prefix.size(), prefix) != 0) {
    throw Error("not a dfp samples file");
  }
  int version = 0;
  std::istringstream stream(header.substr(prefix.size()));
  if (!(stream >> version) || !stream.eof() || version < 1) {
    throw Error("not a dfp samples file");
  }
  if (version > kMaxSamplesVersion) {
    throw Error("sample stream version v" + std::to_string(version) +
                " is newer than this build (reads up to v" +
                std::to_string(kMaxSamplesVersion) + "); upgrade to read it");
  }
  return version;
}

}  // namespace

void WriteDictionary(const TaggingDictionary& dictionary, std::ostream& out) {
  out << kDictionaryHeader << "\n";
  for (const TaskInfo& task : dictionary.tasks()) {
    out << "task " << task.id << " " << task.op << " " << task.name << "\n";
  }
  // Log B entries, ordered by instruction id for a stable file.
  std::vector<uint32_t> ids;
  ids.reserve(dictionary.entries().size());
  for (const auto& [ir_id, owners] : dictionary.entries()) {
    (void)owners;
    ids.push_back(ir_id);
  }
  std::sort(ids.begin(), ids.end());
  for (uint32_t ir_id : ids) {
    out << "link " << ir_id;
    for (TaskId task : *dictionary.TasksOf(ir_id)) {
      out << " " << task;
    }
    out << "\n";
  }
}

TaggingDictionary ReadDictionary(std::istream& in) {
  TaggingDictionary dictionary;
  std::string line;
  if (!std::getline(in, line) || line != kDictionaryHeader) {
    throw Error("not a dfp tagging dictionary file");
  }
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream stream(line);
    std::string kind;
    stream >> kind;
    if (kind == "task") {
      TaskId id = 0;
      OperatorId op = 0;
      std::string name;
      if (!(stream >> id >> op)) {
        Malformed(line);
      }
      std::getline(stream, name);
      if (!name.empty() && name.front() == ' ') {
        name.erase(name.begin());
      }
      TaskId assigned = dictionary.AddTask(op, name);
      if (assigned != id) {
        throw Error("tagging dictionary tasks out of order");
      }
    } else if (kind == "link") {
      uint32_t ir_id = 0;
      if (!(stream >> ir_id)) {
        Malformed(line);
      }
      TaskId task = 0;
      bool any = false;
      while (stream >> task) {
        dictionary.LinkInstr(ir_id, task);
        any = true;
      }
      if (!any) {
        Malformed(line);
      }
    } else {
      Malformed(line);
    }
  }
  return dictionary;
}

void WriteSamples(const std::vector<Sample>& samples, std::ostream& out) {
  WriteSamples(samples, {}, {}, out);
}

void WriteSamples(const std::vector<Sample>& samples,
                  const std::vector<SampleStreamEvent>& events, std::ostream& out) {
  WriteSamples(samples, events, {}, out);
}

void WriteSamples(const std::vector<Sample>& samples,
                  const std::vector<SampleStreamEvent>& events,
                  const std::vector<TaskBoundary>& tasks, std::ostream& out) {
  WriteSamples(samples, events, tasks, {}, out);
}

void WriteSamples(const std::vector<Sample>& samples,
                  const std::vector<SampleStreamEvent>& events,
                  const std::vector<TaskBoundary>& tasks,
                  const std::vector<SampleStreamEvent>& sched, std::ostream& out) {
  WriteSamples(samples, events, tasks, sched, {}, out);
}

void WriteSamples(const std::vector<Sample>& samples,
                  const std::vector<SampleStreamEvent>& events,
                  const std::vector<TaskBoundary>& tasks,
                  const std::vector<SampleStreamEvent>& sched,
                  const std::vector<SampleStreamEvent>& reopt, std::ostream& out) {
  // The version is chosen by content so older dumps stay byte-identical: streams carrying
  // re-optimization sideband lines are v8, streams carrying shard attribution or cross-node
  // locality are v7, streams carrying scheduling-action sideband lines are v6, streams
  // carrying task boundaries are v5, streams carrying tier attribution or sideband events are
  // v4, streams carrying NUMA locality or steal flags are v3, streams carrying worker ids are
  // v2, and pure worker-0 streams keep the v1 header so dumps from single-threaded runs stay
  // byte-compatible with pre-parallel readers.
  bool multi_worker = false;
  bool locality = false;
  bool tiered = !events.empty();
  bool sharded = false;
  const bool tasked = !tasks.empty();
  const bool scheduled = !sched.empty();
  const bool reopted = !reopt.empty();
  for (const Sample& sample : samples) {
    multi_worker |= sample.worker_id != 0;
    locality |= sample.mem_node != kNoNumaNode || sample.numa_remote || sample.stolen;
    tiered |= sample.tier != 0;
    sharded |= sample.shard_id != 0 || sample.cross_node;
  }
  out << kSamplesHeaderPrefix
      << (reopted        ? 8
          : sharded      ? 7
          : scheduled    ? 6
          : tasked       ? 5
          : tiered       ? 4
          : locality     ? 3
          : multi_worker ? 2
                         : 1)
      << "\n";
  // Task boundaries come first, in execution order: they describe the schedule the samples were
  // taken under, and a reader rebuilding the task DAG should not have to scan the whole stream.
  for (const TaskBoundary& task : tasks) {
    out << "task " << task.start_tsc << " " << task.end_tsc << " " << task.worker_id << " "
        << static_cast<uint32_t>(task.kind) << " " << task.step << " " << task.pipeline << " "
        << task.morsel_begin << " " << task.morsel_end << " " << (task.stolen ? 1 : 0) << " "
        << task.instructions << " " << task.loads << " " << task.l1_misses << " "
        << task.l2_misses << " " << task.l3_misses << " " << task.remote_dram << "\n";
  }
  // Events interleave in timestamp order: each precedes the first sample whose tsc passes its
  // own. `events` must already be ascending by tsc (they are appended as the service clock
  // advances).
  size_t next_event = 0;
  size_t next_sched = 0;
  size_t next_reopt = 0;
  auto flush_events = [&](uint64_t up_to_tsc) {
    // Three sideband channels with independent cursors; at equal tsc, `event` lines precede
    // `sched` lines precede `reopt` lines (fixed order keeps double-run streams
    // byte-identical).
    while (next_event < events.size() && events[next_event].tsc <= up_to_tsc) {
      out << "event " << events[next_event].tsc << " " << events[next_event].text << "\n";
      ++next_event;
    }
    while (next_sched < sched.size() && sched[next_sched].tsc <= up_to_tsc) {
      out << "sched " << sched[next_sched].tsc << " " << sched[next_sched].text << "\n";
      ++next_sched;
    }
    while (next_reopt < reopt.size() && reopt[next_reopt].tsc <= up_to_tsc) {
      out << "reopt " << reopt[next_reopt].tsc << " " << reopt[next_reopt].text << "\n";
      ++next_reopt;
    }
  };
  for (const Sample& sample : samples) {
    flush_events(sample.tsc);
    out << "sample " << sample.tsc << " " << sample.ip << " " << sample.addr;
    if (sample.worker_id != 0) {
      // Written only for samples off worker 0, so v2 streams stay close to the v1 layout.
      out << " W " << sample.worker_id;
    }
    if (sample.cross_node) {
      // Cross-machine access: `mem_node` holds the owning machine node, not a socket, so the
      // X token replaces the N token rather than accompanying it.
      out << " X " << static_cast<uint32_t>(sample.mem_node);
    } else if (sample.mem_node != kNoNumaNode || sample.numa_remote) {
      out << " N " << static_cast<uint32_t>(sample.mem_node) << " "
          << (sample.numa_remote ? 1 : 0);
    }
    if (sample.stolen) {
      out << " T";
    }
    if (sample.tier != 0) {
      out << " G " << static_cast<uint32_t>(sample.tier);
    }
    if (sample.shard_id != 0) {
      out << " D " << sample.shard_id;
    }
    if (sample.has_registers) {
      out << " R";
      for (uint64_t reg : sample.regs) {
        out << " " << reg;
      }
    }
    if (!sample.callstack.empty()) {
      out << " S " << sample.callstack.size();
      for (uint64_t ip : sample.callstack) {
        out << " " << ip;
      }
    }
    out << "\n";
  }
  flush_events(UINT64_MAX);
}

std::vector<Sample> ReadSamples(std::istream& in) { return ReadSamples(in, nullptr, nullptr); }

std::vector<Sample> ReadSamples(std::istream& in, std::vector<SampleStreamEvent>* events) {
  return ReadSamples(in, events, nullptr);
}

std::vector<Sample> ReadSamples(std::istream& in, std::vector<SampleStreamEvent>* events,
                                std::vector<TaskBoundary>* tasks) {
  return ReadSamples(in, events, tasks, nullptr);
}

std::vector<Sample> ReadSamples(std::istream& in, std::vector<SampleStreamEvent>* events,
                                std::vector<TaskBoundary>* tasks,
                                std::vector<SampleStreamEvent>* sched) {
  return ReadSamples(in, events, tasks, sched, nullptr);
}

std::vector<Sample> ReadSamples(std::istream& in, std::vector<SampleStreamEvent>* events,
                                std::vector<TaskBoundary>* tasks,
                                std::vector<SampleStreamEvent>* sched,
                                std::vector<SampleStreamEvent>* reopt) {
  std::vector<Sample> samples;
  std::string line;
  if (!std::getline(in, line)) {
    throw Error("not a dfp samples file");
  }
  const int version = ParseSamplesVersion(line);
  const bool accept_reopt = version >= 8;
  const bool accept_shards = version >= 7;
  const bool accept_sched = version >= 6;
  const bool accept_tasks = version >= 5;
  const bool accept_tiers = version >= 4;
  const bool accept_locality = version >= 3;
  const bool accept_worker_ids = version >= 2;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream stream(line);
    std::string kind;
    stream >> kind;
    if (kind == "task") {
      if (!accept_tasks) {
        // Same policy as the other tokens: a task line proves the header lies about the
        // version, and older readers must reject it rather than guess.
        throw Error("task-boundary line in a pre-v5 sample stream: '" + line + "'");
      }
      if (tasks == nullptr) {
        throw Error("sample stream carries task boundaries but the reader has no task sink: '" +
                    line + "'");
      }
      TaskBoundary task;
      uint32_t task_kind = 0;
      uint32_t stolen = 0;
      if (!(stream >> task.start_tsc >> task.end_tsc >> task.worker_id >> task_kind >>
            task.step >> task.pipeline >> task.morsel_begin >> task.morsel_end >> stolen >>
            task.instructions >> task.loads >> task.l1_misses >> task.l2_misses >>
            task.l3_misses >> task.remote_dram) ||
          task_kind > static_cast<uint32_t>(TaskKind::kSort) || stolen > 1 ||
          task.end_tsc < task.start_tsc) {
        Malformed(line);
      }
      task.kind = static_cast<TaskKind>(task_kind);
      task.stolen = stolen != 0;
      tasks->push_back(task);
      continue;
    }
    if (kind == "reopt") {
      if (!accept_reopt) {
        throw Error("reopt line in a pre-v8 sample stream: '" + line + "'");
      }
      if (reopt == nullptr) {
        throw Error("sample stream carries reopt lines but the reader has no reopt sink: '" +
                    line + "'");
      }
      SampleStreamEvent event;
      if (!(stream >> event.tsc)) {
        Malformed(line);
      }
      std::getline(stream, event.text);
      if (!event.text.empty() && event.text.front() == ' ') {
        event.text.erase(event.text.begin());
      }
      reopt->push_back(std::move(event));
      continue;
    }
    if (kind == "sched") {
      if (!accept_sched) {
        throw Error("sched line in a pre-v6 sample stream: '" + line + "'");
      }
      if (sched == nullptr) {
        throw Error("sample stream carries sched lines but the reader has no sched sink: '" +
                    line + "'");
      }
      SampleStreamEvent event;
      if (!(stream >> event.tsc)) {
        Malformed(line);
      }
      std::getline(stream, event.text);
      if (!event.text.empty() && event.text.front() == ' ') {
        event.text.erase(event.text.begin());
      }
      sched->push_back(std::move(event));
      continue;
    }
    if (kind == "event") {
      if (!accept_tiers) {
        throw Error("event line in a pre-v4 sample stream: '" + line + "'");
      }
      if (events == nullptr) {
        // The stream has sideband data the caller would silently lose — make it explicit.
        throw Error("sample stream carries events but the reader has no event sink: '" + line +
                    "'");
      }
      SampleStreamEvent event;
      if (!(stream >> event.tsc)) {
        Malformed(line);
      }
      std::getline(stream, event.text);
      if (!event.text.empty() && event.text.front() == ' ') {
        event.text.erase(event.text.begin());
      }
      events->push_back(std::move(event));
      continue;
    }
    if (kind != "sample") {
      Malformed(line);
    }
    Sample sample;
    if (!(stream >> sample.tsc >> sample.ip >> sample.addr)) {
      Malformed(line);
    }
    std::string section;
    while (stream >> section) {
      if (section == "W") {
        if (!accept_worker_ids) {
          // A v1 stream is single-threaded by definition; a worker-id token indicates a stream
          // mislabeled (or truncated/spliced) rather than something to guess at.
          throw Error("worker-id token in a v1 sample stream: '" + line + "'");
        }
        if (!(stream >> sample.worker_id)) {
          Malformed(line);
        }
      } else if (section == "N") {
        if (!accept_locality) {
          // Same policy as W-in-v1: locality tokens prove the header lies about the version.
          throw Error("NUMA token in a pre-v3 sample stream: '" + line + "'");
        }
        uint32_t node = 0;
        uint32_t remote = 0;
        if (!(stream >> node >> remote) || node > 0xFF || remote > 1) {
          Malformed(line);
        }
        sample.mem_node = static_cast<uint8_t>(node);
        sample.numa_remote = remote != 0;
      } else if (section == "T") {
        if (!accept_locality) {
          throw Error("steal token in a pre-v3 sample stream: '" + line + "'");
        }
        sample.stolen = true;
      } else if (section == "G") {
        if (!accept_tiers) {
          throw Error("tier token in a pre-v4 sample stream: '" + line + "'");
        }
        uint32_t tier = 0;
        if (!(stream >> tier) || tier > 0xFF) {
          Malformed(line);
        }
        sample.tier = static_cast<uint8_t>(tier);
      } else if (section == "D") {
        if (!accept_shards) {
          throw Error("shard token in a pre-v7 sample stream: '" + line + "'");
        }
        if (!(stream >> sample.shard_id) || sample.shard_id == 0) {
          Malformed(line);
        }
      } else if (section == "X") {
        if (!accept_shards) {
          throw Error("cross-node token in a pre-v7 sample stream: '" + line + "'");
        }
        uint32_t machine = 0;
        if (!(stream >> machine) || machine > 0xFF) {
          Malformed(line);
        }
        sample.mem_node = static_cast<uint8_t>(machine);
        sample.cross_node = true;
      } else if (section == "R") {
        sample.has_registers = true;
        for (uint64_t& reg : sample.regs) {
          if (!(stream >> reg)) {
            Malformed(line);
          }
        }
      } else if (section == "S") {
        size_t depth = 0;
        if (!(stream >> depth)) {
          Malformed(line);
        }
        sample.callstack.resize(depth);
        for (uint64_t& ip : sample.callstack) {
          if (!(stream >> ip)) {
            Malformed(line);
          }
        }
      } else {
        Malformed(line);
      }
    }
    samples.push_back(std::move(sample));
  }
  return samples;
}

}  // namespace dfp
