// Report generation: Tailored Profiling's developer-facing views.
//
//  - Cost-annotated query plan (Figures 6a / 9b): per-operator sample shares on the dataflow
//    graph, the domain expert's and optimizer developer's view.
//  - Annotated IR listing (Figure 6b): per-line sample counts with operator/task attribution and
//    per-block subtotals, the operator developer's view.
//  - Operator activity over time (Figures 7 / 11): per-time-bucket operator shares.
//  - Memory access profile (Figure 12): per-operator (time, address) samples.
//  - Attribution statistics (Table 2).
#ifndef DFP_SRC_PROFILING_REPORTS_H_
#define DFP_SRC_PROFILING_REPORTS_H_

#include <map>
#include <string>
#include <vector>

#include "src/engine/exec_plan.h"
#include "src/profiling/session.h"

namespace dfp {

// Restricts a report to a time interval of the query's execution — the paper's drill-down:
// "narrow down on the next lower abstraction level, i.e., limit the results to the time interval
// of the hotspot". Default: the whole run.
struct TimeWindow {
  uint64_t begin_cycles = 0;
  uint64_t end_cycles = ~0ull;

  bool Contains(uint64_t tsc) const { return tsc >= begin_cycles && tsc < end_cycles; }
};

// --- Per-operator aggregation ---

struct OperatorCost {
  OperatorId op = kNoOperator;
  std::string label;
  uint64_t samples = 0;
  double share = 0;  // Of all operator-attributed samples.
};

struct OperatorProfile {
  std::vector<OperatorCost> operators;  // Ordered by operator id.
  uint64_t operator_samples = 0;
  uint64_t kernel_samples = 0;
  uint64_t unattributed_samples = 0;

  const OperatorCost* Find(OperatorId op) const;
};

// Aggregates a resolved session per operator. `query` supplies operator labels.
OperatorProfile BuildOperatorProfile(const ProfilingSession& session, const CompiledQuery& query,
                                     const TimeWindow& window = TimeWindow());

// Renders the plan tree annotated with each operator's cost share (Figure 9b).
std::string RenderAnnotatedPlan(const OperatorProfile& profile, const CompiledQuery& query);

// --- Annotated IR listing (Figure 6b) ---

struct ListingOptions {
  uint32_t pipeline = 0;
  bool hide_cold_lines = false;  // Omit lines without samples.
  TimeWindow window;
};

// Renders one pipeline's optimized VIR with per-line sample percentage and task/operator
// attribution, plus per-block subtotals.
std::string RenderAnnotatedListing(const ProfilingSession& session, const CompiledQuery& query,
                                   const ListingOptions& options = ListingOptions());

// --- Operator activity over time (Figures 7 / 11) ---

struct ActivityTimeline {
  std::vector<std::string> series_names;            // One per operator (+ kernel).
  std::vector<std::vector<double>> bucket_samples;  // [series][bucket], sample counts.
  uint64_t bucket_cycles = 0;
  uint64_t total_cycles = 0;
};

ActivityTimeline BuildActivityTimeline(const ProfilingSession& session,
                                       const CompiledQuery& query, size_t buckets);

// Activity timeline with one lane per worker instead of one per operator: each series counts
// that worker's samples per bucket, making idle phases (barrier waits, sequential pipelines)
// visible on parallel runs. Works on any resolved session; single-threaded runs get one lane.
ActivityTimeline BuildWorkerActivityTimeline(const ProfilingSession& session, size_t buckets);

// Renders the timeline as an ASCII intensity chart; also exportable as CSV.
std::string RenderActivityTimeline(const ActivityTimeline& timeline);
std::string ActivityTimelineCsv(const ActivityTimeline& timeline);

// --- Memory access profile (Figure 12) ---

struct MemoryProfileSeries {
  std::string label;            // Operator label.
  OperatorId op = kNoOperator;
  uint64_t min_addr = 0;        // Lowest address touched (series baseline).
  uint64_t max_addr = 0;
  std::vector<std::pair<uint64_t, uint64_t>> points;  // (tsc, addr).
  // NUMA locality of this operator's sampled accesses (0/0 on single-node runs or streams
  // without node info). `stolen_remote` isolates the remote traffic caused by work stealing.
  uint64_t local_accesses = 0;
  uint64_t remote_accesses = 0;
  uint64_t stolen_remote = 0;
};

struct MemoryProfile {
  std::vector<MemoryProfileSeries> series;
  uint64_t total_cycles = 0;
};

// Requires a session sampled on a memory event with capture_address.
MemoryProfile BuildMemoryProfile(const ProfilingSession& session, const CompiledQuery& query,
                                 const TimeWindow& window = TimeWindow());

std::string RenderMemoryProfile(const MemoryProfile& profile);

// Per-operator NUMA locality table: sampled local/remote access counts, remote share, and how
// much of the remote traffic happened inside stolen morsels. The tabular companion to the
// memory-access scatter plots for the locality drill-down.
std::string RenderMemoryLocality(const MemoryProfile& profile);

// Activity timeline with one lane each for local accesses, remote accesses, and remote accesses
// taken inside stolen morsels — makes steal-induced remote spikes visible over time. Counts only
// samples that carry node information (memory-event sessions on a NUMA-modeled run).
ActivityTimeline BuildLocalityTimeline(const ProfilingSession& session, size_t buckets);

// --- Machine-code level (the traditional profiler's view, for comparison) ---

// Renders one pipeline's machine code with per-instruction sample percentages, spill/tagging
// markers, and the IR id each instruction was lowered from. This is the level a conventional
// profiler stops at; the annotated IR listing and plan views are what Tailored Profiling adds.
std::string RenderMachineListing(const ProfilingSession& session, const CompiledQuery& query,
                                 const CodeMap& code_map,
                                 const ListingOptions& options = ListingOptions());

// --- Attribution statistics (Table 2) ---

std::string RenderAttributionStats(const AttributionStats& stats);

// --- Side-by-side cost diff ---

// One operator row of a before/after comparison between two cost-annotated profiles of the
// same plan (e.g. a regression baseline vs. the current window).
struct CostDiffRow {
  std::string label;
  double before_share = 0;  // Share of attributed samples, [0, 1].
  double after_share = 0;
  bool flagged = false;  // Marked with '!' in the rendered table.
};

// Renders the rows as an aligned side-by-side table with a signed delta column. `before_name`
// and `after_name` caption the two columns.
std::string RenderCostDiff(const std::vector<CostDiffRow>& rows, const std::string& before_name,
                           const std::string& after_name);

// --- EXPLAIN-ANALYZE-style tuple counts ---

// Renders the per-task tuple counters of a query compiled with CodegenOptions::count_tuples,
// next to each task's operator — the statistic the paper contrasts with sampled time ("even
// though the tuple count is a decent approximation, our sampling approach captures the actual
// time spent in each operator").
std::string RenderTaskTupleCounts(const CompiledQuery& query, const TaggingDictionary& dictionary);

}  // namespace dfp

#endif  // DFP_SRC_PROFILING_REPORTS_H_
