#include "src/profiling/tagging_dictionary.h"

#include <algorithm>

#include "src/util/check.h"

namespace dfp {

TaskId TaggingDictionary::AddTask(OperatorId op, std::string name) {
  TaskInfo info;
  info.id = static_cast<TaskId>(tasks_.size());
  info.op = op;
  info.name = std::move(name);
  tasks_.push_back(std::move(info));
  return tasks_.back().id;
}

void TaggingDictionary::LinkInstr(uint32_t ir_id, TaskId task) {
  DFP_CHECK(task < tasks_.size());
  std::vector<TaskId>& owners = instr_tasks_[ir_id];
  if (std::find(owners.begin(), owners.end(), task) == owners.end()) {
    owners.push_back(task);
  }
}

const std::vector<TaskId>* TaggingDictionary::TasksOf(uint32_t ir_id) const {
  auto it = instr_tasks_.find(ir_id);
  return it == instr_tasks_.end() ? nullptr : &it->second;
}

void TaggingDictionary::OnRemove(uint32_t ir_id) { instr_tasks_.erase(ir_id); }

void TaggingDictionary::OnAbsorb(uint32_t kept_id, uint32_t absorbed_id) {
  auto absorbed = instr_tasks_.find(absorbed_id);
  if (absorbed == instr_tasks_.end()) {
    return;  // Absorbed instruction was not covered (e.g. runtime code); nothing to merge.
  }
  std::vector<TaskId>& kept = instr_tasks_[kept_id];
  for (TaskId task : absorbed->second) {
    if (std::find(kept.begin(), kept.end(), task) == kept.end()) {
      kept.push_back(task);
    }
  }
}

uint64_t TaggingDictionary::ApproxBytes() const {
  uint64_t bytes = 0;
  for (const TaskInfo& task : tasks_) {
    bytes += 8 /* task id + operator id */ + task.name.size();
  }
  for (const auto& [ir_id, owners] : instr_tasks_) {
    (void)ir_id;
    bytes += 8ull * owners.size();  // (ir id, task) pairs.
  }
  return bytes;
}

}  // namespace dfp
