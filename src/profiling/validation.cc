#include "src/profiling/validation.h"

#include <algorithm>

#include "src/util/check.h"

namespace dfp {

std::vector<MInstr> ApplyValidationTags(std::vector<MInstr> code,
                                        const TaggingDictionary& dictionary) {
  // Decide which instructions receive a preceding tag write.
  std::vector<bool> tagged(code.size(), false);
  for (size_t i = 0; i < code.size(); ++i) {
    const std::vector<TaskId>* owners = dictionary.TasksOf(code[i].ir_id);
    tagged[i] = owners != nullptr && owners->size() == 1 && !code[i].is_tag;
  }
  // Offsets of each old instruction in the rewritten stream (pointing at its tag when present,
  // so branch targets land on the tag write).
  std::vector<uint32_t> new_offset(code.size() + 1, 0);
  uint32_t cursor = 0;
  for (size_t i = 0; i < code.size(); ++i) {
    new_offset[i] = cursor;
    cursor += tagged[i] ? 2 : 1;
  }
  new_offset[code.size()] = cursor;

  std::vector<MInstr> out;
  out.reserve(cursor);
  for (size_t i = 0; i < code.size(); ++i) {
    if (tagged[i]) {
      const std::vector<TaskId>* owners = dictionary.TasksOf(code[i].ir_id);
      MInstr tag;
      tag.op = Opcode::kSetTag;
      tag.a_is_imm = true;
      tag.imm = static_cast<int64_t>(owners->front()) + 1;
      tag.is_tag = true;
      tag.ir_id = code[i].ir_id;
      out.push_back(tag);
    }
    MInstr instr = std::move(code[i]);
    if (instr.op == Opcode::kBr || instr.op == Opcode::kCondBr) {
      instr.target0 = new_offset[instr.target0];
      if (instr.op == Opcode::kCondBr) {
        instr.target1 = new_offset[instr.target1];
      }
    }
    out.push_back(std::move(instr));
  }
  return out;
}

namespace {

// Classifies one sample into `report`: checked/mismatch when both an IP attribution and a tag
// are available, skipped otherwise.
void CrossCheckOne(const ProfilingSession& session, const CodeMap& code_map,
                   const Sample& sample, ValidationReport* report) {
  const CodeSegment* segment = code_map.FindByIp(sample.ip);
  if (segment == nullptr || segment->kind != SegmentKind::kGenerated ||
      !sample.has_registers) {
    ++report->skipped;
    return;
  }
  const MInstr& instr = segment->code[sample.ip - segment->base_ip];
  const std::vector<TaskId>* owners = session.dictionary().TasksOf(instr.ir_id);
  if (owners == nullptr || owners->size() != 1) {
    ++report->skipped;
    return;
  }
  const uint64_t tag = sample.regs[kTagRegister] & 0xFFFFFFFFull;  // Task-level chunk.
  if (tag == 0) {
    ++report->skipped;  // Sample before the first tag write (function prologue).
    return;
  }
  ++report->checked;
  if (tag != static_cast<uint64_t>(owners->front()) + 1) {
    ++report->mismatches;
  }
}

}  // namespace

ValidationReport CrossCheckAttribution(const ProfilingSession& session,
                                       const CodeMap& code_map) {
  ValidationReport report;
  for (const Sample& sample : session.samples()) {
    CrossCheckOne(session, code_map, sample, &report);
  }
  return report;
}

std::vector<ValidationReport> CrossCheckAttributionPerWorker(const ProfilingSession& session,
                                                             const CodeMap& code_map) {
  std::vector<ValidationReport> reports(std::max<uint32_t>(1, session.worker_count()));
  for (const Sample& sample : session.samples()) {
    const size_t worker = std::min<size_t>(reports.size() - 1, sample.worker_id);
    CrossCheckOne(session, code_map, sample, &reports[worker]);
  }
  return reports;
}

}  // namespace dfp
