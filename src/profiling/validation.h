// Accuracy validation (paper Section 6.3): tag EVERY generated instruction and cross-check the
// sampled instruction pointer's attribution against the tag register, sample by sample.
#ifndef DFP_SRC_PROFILING_VALIDATION_H_
#define DFP_SRC_PROFILING_VALIDATION_H_

#include <cstdint>
#include <vector>

#include "src/profiling/session.h"
#include "src/profiling/tagging_dictionary.h"
#include "src/vcpu/minstr.h"

namespace dfp {

// Rewrites machine code so that every instruction with a uniquely-owned IR id is preceded by a
// SetTag of its task. Branch targets are fixed up. Used when
// ProfilingConfig::tag_all_instructions is set.
std::vector<MInstr> ApplyValidationTags(std::vector<MInstr> code,
                                        const TaggingDictionary& dictionary);

struct ValidationReport {
  uint64_t checked = 0;     // Samples with both an IP attribution and a tag to compare.
  uint64_t mismatches = 0;  // IP-derived task != tag-register task.
  uint64_t skipped = 0;     // Samples outside generated code or with multi-owner instructions.
};

// Compares IP-based attribution against the tag register for all resolved samples of a session
// whose query was compiled with tag_all_instructions.
ValidationReport CrossCheckAttribution(const ProfilingSession& session, const CodeMap& code_map);

// Same cross-check, split by the worker that took each sample: index w holds worker w's report.
// The vector covers session.worker_count() workers (one entry for single-threaded runs), so a
// parallel run can assert zero mismatches on every worker, not just worker 0.
std::vector<ValidationReport> CrossCheckAttributionPerWorker(const ProfilingSession& session,
                                                             const CodeMap& code_map);

}  // namespace dfp

#endif  // DFP_SRC_PROFILING_VALIDATION_H_
