#include "src/profiling/reports.h"

#include <algorithm>
#include <unordered_map>

#include "src/util/chart.h"
#include "src/util/check.h"
#include "src/util/str.h"
#include "src/util/table_printer.h"
#include "src/vcpu/disasm.h"
#include "src/vcpu/cost_model.h"

namespace dfp {

const OperatorCost* OperatorProfile::Find(OperatorId op) const {
  for (const OperatorCost& cost : operators) {
    if (cost.op == op) {
      return &cost;
    }
  }
  return nullptr;
}

OperatorProfile BuildOperatorProfile(const ProfilingSession& session, const CompiledQuery& query,
                                     const TimeWindow& window) {
  OperatorProfile profile;
  std::unordered_map<OperatorId, uint64_t> counts;
  for (const ResolvedSample& sample : session.resolved()) {
    if (!window.Contains(sample.tsc)) {
      continue;
    }
    switch (sample.category) {
      case ResolvedSample::Category::kOperator:
        ++counts[sample.op];
        ++profile.operator_samples;
        break;
      case ResolvedSample::Category::kKernel:
        ++profile.kernel_samples;
        break;
      case ResolvedSample::Category::kUnattributed:
        ++profile.unattributed_samples;
        break;
    }
  }
  for (PhysicalOp* op : PlanOperators(*query.plan)) {
    OperatorCost cost;
    cost.op = op->id;
    cost.label = op->label.empty() ? OpKindName(op->kind) : op->label;
    cost.samples = counts.count(op->id) != 0 ? counts[op->id] : 0;
    cost.share = profile.operator_samples > 0
                     ? static_cast<double>(cost.samples) /
                           static_cast<double>(profile.operator_samples)
                     : 0.0;
    profile.operators.push_back(std::move(cost));
  }
  std::sort(profile.operators.begin(), profile.operators.end(),
            [](const OperatorCost& a, const OperatorCost& b) { return a.op < b.op; });
  return profile;
}

std::string RenderAnnotatedPlan(const OperatorProfile& profile, const CompiledQuery& query) {
  return RenderPlanTree(*query.plan, [&](const PhysicalOp& op) {
    const OperatorCost* cost = profile.Find(op.id);
    if (cost == nullptr) {
      return std::string();
    }
    return StrFormat("(%s)", PercentString(cost->share).c_str());
  });
}

std::string RenderAnnotatedListing(const ProfilingSession& session, const CompiledQuery& query,
                                   const ListingOptions& options) {
  DFP_CHECK(options.pipeline < query.pipelines.size());
  const PipelineArtifact& artifact = query.pipelines[options.pipeline];

  // Per-IR-instruction sample counts for this pipeline's segment.
  std::unordered_map<uint32_t, uint64_t> per_instr;
  uint64_t pipeline_samples = 0;
  for (const ResolvedSample& sample : session.resolved()) {
    if (!options.window.Contains(sample.tsc)) {
      continue;
    }
    if (sample.segment == artifact.segment && sample.ir_id != kNoIrId) {
      ++per_instr[sample.ir_id];
      ++pipeline_samples;
    }
  }
  const TaggingDictionary& dictionary = session.dictionary();

  // Per-block subtotals keyed by block id.
  std::unordered_map<uint32_t, uint64_t> per_block;
  for (const IrListingLine& line : artifact.listing.lines) {
    if (line.instr_id != kNoIrId && per_instr.count(line.instr_id) != 0) {
      per_block[line.block] += per_instr[line.instr_id];
    }
  }

  auto percent = [&](uint64_t count) {
    return pipeline_samples > 0
               ? PercentString(static_cast<double>(count) /
                               static_cast<double>(pipeline_samples))
               : std::string("0.0%");
  };

  std::string out;
  out += StrFormat("=== %s — %zu samples in this pipeline ===\n", artifact.pipeline.name.c_str(),
                   static_cast<size_t>(pipeline_samples));
  for (const IrListingLine& line : artifact.listing.lines) {
    if (line.instr_id == kNoIrId) {
      // Block labels get a subtotal annotation, like "loopTuples: (hash join 45.7%)".
      if (line.block != kNoBlock && per_block.count(line.block) != 0) {
        out += StrFormat("%-8s %s  (block: %s)\n", "", line.text.c_str(),
                         percent(per_block[line.block]).c_str());
      } else {
        out += StrFormat("%-8s %s\n", "", line.text.c_str());
      }
      continue;
    }
    const uint64_t count = per_instr.count(line.instr_id) != 0 ? per_instr[line.instr_id] : 0;
    if (count == 0 && options.hide_cold_lines) {
      continue;
    }
    // Operator attribution through Log B + Log A.
    std::string owner;
    const std::vector<TaskId>* tasks = dictionary.TasksOf(line.instr_id);
    if (tasks != nullptr) {
      for (TaskId task : *tasks) {
        if (!owner.empty()) {
          owner += "+";
        }
        OperatorId op = dictionary.OperatorOf(task);
        const PhysicalOp* node = nullptr;
        for (PhysicalOp* candidate : PlanOperators(*query.plan)) {
          if (candidate->id == op) {
            node = candidate;
            break;
          }
        }
        owner += node != nullptr ? node->label : dictionary.task(task).name;
      }
    }
    out += StrFormat("%-8s %-70s %s\n", count > 0 ? percent(count).c_str() : "",
                     line.text.c_str(), owner.c_str());
  }
  return out;
}

ActivityTimeline BuildActivityTimeline(const ProfilingSession& session,
                                       const CompiledQuery& query, size_t buckets) {
  DFP_CHECK(buckets > 0);
  ActivityTimeline timeline;
  timeline.total_cycles = session.execution_cycles();
  timeline.bucket_cycles = std::max<uint64_t>(1, timeline.total_cycles / buckets + 1);

  std::vector<PhysicalOp*> operators = PlanOperators(*query.plan);
  std::unordered_map<OperatorId, size_t> series_of;
  for (PhysicalOp* op : operators) {
    series_of[op->id] = timeline.series_names.size();
    timeline.series_names.push_back(op->label.empty() ? OpKindName(op->kind) : op->label);
  }
  const size_t kernel_series = timeline.series_names.size();
  timeline.series_names.push_back("kernel");
  timeline.bucket_samples.assign(timeline.series_names.size(),
                                 std::vector<double>(buckets, 0.0));

  for (const ResolvedSample& sample : session.resolved()) {
    const size_t bucket =
        std::min(buckets - 1, static_cast<size_t>(sample.tsc / timeline.bucket_cycles));
    if (sample.category == ResolvedSample::Category::kOperator) {
      timeline.bucket_samples[series_of[sample.op]][bucket] += 1.0;
    } else if (sample.category == ResolvedSample::Category::kKernel) {
      timeline.bucket_samples[kernel_series][bucket] += 1.0;
    }
  }
  return timeline;
}

ActivityTimeline BuildWorkerActivityTimeline(const ProfilingSession& session, size_t buckets) {
  DFP_CHECK(buckets > 0);
  ActivityTimeline timeline;
  timeline.total_cycles = session.execution_cycles();
  timeline.bucket_cycles = std::max<uint64_t>(1, timeline.total_cycles / buckets + 1);

  const size_t lanes = std::max<uint32_t>(1, session.worker_count());
  for (size_t w = 0; w < lanes; ++w) {
    timeline.series_names.push_back(StrFormat("worker %zu", w));
  }
  timeline.bucket_samples.assign(lanes, std::vector<double>(buckets, 0.0));

  for (const ResolvedSample& sample : session.resolved()) {
    const size_t bucket =
        std::min(buckets - 1, static_cast<size_t>(sample.tsc / timeline.bucket_cycles));
    const size_t lane = std::min<size_t>(lanes - 1, sample.worker_id);
    timeline.bucket_samples[lane][bucket] += 1.0;
  }
  return timeline;
}

std::string RenderActivityTimeline(const ActivityTimeline& timeline) {
  TimeSeriesChart chart;
  chart.series_names = timeline.series_names;
  chart.values = timeline.bucket_samples;
  chart.total_duration_ms = CyclesToMs(timeline.total_cycles);
  return RenderTimeSeriesChart(chart);
}

std::string ActivityTimelineCsv(const ActivityTimeline& timeline) {
  std::string out = "bucket,start_ms";
  for (const std::string& name : timeline.series_names) {
    out += ",";
    out += name;
  }
  out += "\n";
  const size_t buckets = timeline.bucket_samples.empty() ? 0 : timeline.bucket_samples[0].size();
  for (size_t b = 0; b < buckets; ++b) {
    out += StrFormat("%zu,%.4f", b, CyclesToMs(b * timeline.bucket_cycles));
    for (const std::vector<double>& series : timeline.bucket_samples) {
      out += StrFormat(",%g", series[b]);
    }
    out += "\n";
  }
  return out;
}

MemoryProfile BuildMemoryProfile(const ProfilingSession& session, const CompiledQuery& query,
                                 const TimeWindow& window) {
  MemoryProfile profile;
  profile.total_cycles = session.execution_cycles();
  std::unordered_map<OperatorId, size_t> series_of;
  for (PhysicalOp* op : PlanOperators(*query.plan)) {
    series_of[op->id] = profile.series.size();
    MemoryProfileSeries series;
    series.label = op->label.empty() ? OpKindName(op->kind) : op->label;
    series.op = op->id;
    series.min_addr = ~0ull;
    profile.series.push_back(std::move(series));
  }
  for (const ResolvedSample& sample : session.resolved()) {
    if (sample.category != ResolvedSample::Category::kOperator || sample.addr == 0 ||
        !window.Contains(sample.tsc)) {
      continue;
    }
    MemoryProfileSeries& series = profile.series[series_of[sample.op]];
    series.points.emplace_back(sample.tsc, sample.addr);
    series.min_addr = std::min(series.min_addr, sample.addr);
    series.max_addr = std::max(series.max_addr, sample.addr);
    if (sample.mem_node != kNoNumaNode) {
      if (sample.numa_remote) {
        ++series.remote_accesses;
        if (sample.stolen) {
          ++series.stolen_remote;
        }
      } else {
        ++series.local_accesses;
      }
    }
  }
  // Drop operators without memory samples.
  profile.series.erase(std::remove_if(profile.series.begin(), profile.series.end(),
                                      [](const MemoryProfileSeries& series) {
                                        return series.points.empty();
                                      }),
                       profile.series.end());
  return profile;
}

std::string RenderMemoryProfile(const MemoryProfile& profile) {
  std::string out;
  for (const MemoryProfileSeries& series : profile.series) {
    ScatterPlot plot;
    const uint64_t located = series.local_accesses + series.remote_accesses;
    std::string locality;
    if (located > 0) {
      locality = StrFormat(", %.0f%% remote",
                           100.0 * static_cast<double>(series.remote_accesses) /
                               static_cast<double>(located));
    }
    plot.title = StrFormat("%s  (%zu samples, %.1f MB span%s)", series.label.c_str(),
                           series.points.size(),
                           static_cast<double>(series.max_addr - series.min_addr) /
                               (1024.0 * 1024.0),
                           locality.c_str());
    plot.x_label = "time (ms)";
    plot.y_label = "address offset";
    plot.x_max = CyclesToMs(profile.total_cycles);
    plot.y_max = static_cast<double>(series.max_addr - series.min_addr) + 1.0;
    plot.height = 8;
    for (const auto& [tsc, addr] : series.points) {
      plot.points.emplace_back(CyclesToMs(tsc), static_cast<double>(addr - series.min_addr));
    }
    out += RenderScatterPlot(plot);
    out += "\n";
  }
  return out;
}

std::string RenderMemoryLocality(const MemoryProfile& profile) {
  TablePrinter printer({"Operator", "Local", "Remote", "Remote %", "Stolen remote"});
  for (int c = 1; c <= 4; ++c) {
    printer.SetRightAlign(c, true);
  }
  for (const MemoryProfileSeries& series : profile.series) {
    const uint64_t located = series.local_accesses + series.remote_accesses;
    printer.AddRow(
        {series.label,
         StrFormat("%llu", static_cast<unsigned long long>(series.local_accesses)),
         StrFormat("%llu", static_cast<unsigned long long>(series.remote_accesses)),
         located > 0 ? StrFormat("%.1f", 100.0 * static_cast<double>(series.remote_accesses) /
                                             static_cast<double>(located))
                     : std::string("-"),
         StrFormat("%llu", static_cast<unsigned long long>(series.stolen_remote))});
  }
  return printer.Render();
}

ActivityTimeline BuildLocalityTimeline(const ProfilingSession& session, size_t buckets) {
  DFP_CHECK(buckets > 0);
  ActivityTimeline timeline;
  timeline.total_cycles = session.execution_cycles();
  timeline.bucket_cycles = std::max<uint64_t>(1, timeline.total_cycles / buckets + 1);
  timeline.series_names = {"local", "remote", "remote (stolen)"};
  timeline.bucket_samples.assign(timeline.series_names.size(),
                                 std::vector<double>(buckets, 0.0));
  for (const ResolvedSample& sample : session.resolved()) {
    if (sample.mem_node == kNoNumaNode) {
      continue;  // No node info: single-node run or a pre-v3 stream.
    }
    const size_t bucket =
        std::min(buckets - 1, static_cast<size_t>(sample.tsc / timeline.bucket_cycles));
    if (!sample.numa_remote) {
      timeline.bucket_samples[0][bucket] += 1.0;
    } else {
      timeline.bucket_samples[1][bucket] += 1.0;
      if (sample.stolen) {
        timeline.bucket_samples[2][bucket] += 1.0;
      }
    }
  }
  return timeline;
}

std::string RenderTaskTupleCounts(const CompiledQuery& query,
                                  const TaggingDictionary& dictionary) {
  TablePrinter printer({"Task", "Operator", "Tuples"});
  printer.SetRightAlign(2, true);
  for (const auto& [task, offset] : query.tuple_count_slots) {
    (void)offset;
    const TaskInfo& info = dictionary.task(task);
    std::string op_label;
    for (PhysicalOp* op : PlanOperators(*query.plan)) {
      if (op->id == info.op) {
        op_label = op->label;
      }
    }
    auto it = query.tuple_counts.find(task);
    printer.AddRow({info.name, op_label,
                    it != query.tuple_counts.end()
                        ? StrFormat("%llu", static_cast<unsigned long long>(it->second))
                        : std::string("-")});
  }
  return printer.Render();
}

std::string RenderMachineListing(const ProfilingSession& session, const CompiledQuery& query,
                                 const CodeMap& code_map, const ListingOptions& options) {
  DFP_CHECK(options.pipeline < query.pipelines.size());
  const PipelineArtifact& artifact = query.pipelines[options.pipeline];
  const CodeSegment& segment = code_map.segment(artifact.segment);

  std::unordered_map<uint64_t, uint64_t> per_offset;
  uint64_t total = 0;
  for (const ResolvedSample& sample : session.resolved()) {
    if (sample.segment == artifact.segment && options.window.Contains(sample.tsc)) {
      ++per_offset[sample.ip - segment.base_ip];
      ++total;
    }
  }
  std::string out = StrFormat("=== machine code of %s — %llu samples ===\n",
                              artifact.pipeline.name.c_str(),
                              static_cast<unsigned long long>(total));
  for (size_t offset = 0; offset < segment.code.size(); ++offset) {
    const uint64_t count = per_offset.count(offset) != 0 ? per_offset[offset] : 0;
    if (count == 0 && options.hide_cold_lines) {
      continue;
    }
    std::string share =
        count > 0 && total > 0
            ? PercentString(static_cast<double>(count) / static_cast<double>(total))
            : std::string();
    const MInstr& instr = segment.code[offset];
    out += StrFormat("%-7s @%-5zu %-56s ; ir %%%u\n", share.c_str(), offset,
                     MInstrToString(instr).c_str(), instr.ir_id);
  }
  return out;
}

std::string RenderAttributionStats(const AttributionStats& stats) {
  TablePrinter printer({"Attribution", "Samples", "Share"});
  printer.SetRightAlign(1, true);
  printer.SetRightAlign(2, true);
  auto share = [&](uint64_t count) {
    return stats.total > 0
               ? PercentString(static_cast<double>(count) / static_cast<double>(stats.total))
               : std::string("-");
  };
  printer.AddRow({"Engine total", StrFormat("%llu", static_cast<unsigned long long>(
                                                        stats.operator_samples +
                                                        stats.kernel_samples)),
                  share(stats.operator_samples + stats.kernel_samples)});
  printer.AddRow({"-> Operators",
                  StrFormat("%llu", static_cast<unsigned long long>(stats.operator_samples)),
                  share(stats.operator_samples)});
  printer.AddRow({"-> Kernel tasks",
                  StrFormat("%llu", static_cast<unsigned long long>(stats.kernel_samples)),
                  share(stats.kernel_samples)});
  printer.AddRow({"No attribution",
                  StrFormat("%llu", static_cast<unsigned long long>(stats.unattributed)),
                  share(stats.unattributed)});
  return printer.Render();
}

std::string RenderCostDiff(const std::vector<CostDiffRow>& rows, const std::string& before_name,
                           const std::string& after_name) {
  TablePrinter printer({"Operator", before_name, after_name, "Delta", ""});
  printer.SetRightAlign(1, true);
  printer.SetRightAlign(2, true);
  printer.SetRightAlign(3, true);
  for (const CostDiffRow& row : rows) {
    const double delta = row.after_share - row.before_share;
    printer.AddRow({row.label, PercentString(row.before_share), PercentString(row.after_share),
                    StrFormat("%+.1fpp", 100.0 * delta), row.flagged ? "!" : ""});
  }
  return printer.Render();
}

}  // namespace dfp
