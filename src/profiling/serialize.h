// Serialization of profiling meta-data and samples.
//
// The paper's prototype writes the Tagging Dictionary to a meta-data file at the end of
// compilation and feeds samples through `perf script` into a decoupled post-processing phase.
// These functions provide the same decoupling: a dictionary and a sample stream written by one
// process can be resolved by another (or archived next to a recorded profile).
#ifndef DFP_SRC_PROFILING_SERIALIZE_H_
#define DFP_SRC_PROFILING_SERIALIZE_H_

#include <iosfwd>
#include <vector>

#include "src/pmu/sample.h"
#include "src/profiling/tagging_dictionary.h"

namespace dfp {

// Line-oriented text format:
//   # dfp tagging dictionary v1
//   task <task-id> <operator-id> <name...>
//   link <ir-id> <task-id> [<task-id>...]
void WriteDictionary(const TaggingDictionary& dictionary, std::ostream& out);

// Inverse of WriteDictionary. Throws dfp::Error on malformed input.
TaggingDictionary ReadDictionary(std::istream& in);

// perf-script-like sample dump. Streams that carry worker ids (any sample from a worker other
// than 0) are written with a v2 header; pure single-threaded dumps keep the v1 header and
// layout, so files produced before the parallel engine read back unchanged:
//   # dfp samples v1        (single-threaded: no W tokens allowed)
//   # dfp samples v2        (parallel: W present on samples from workers other than 0)
//   sample <tsc> <ip> <addr> [W <worker>] [R <16 register values>] [S <depth> <return-ips...>]
// A session id is never written: dumped streams are per-session by construction (see
// src/pmu/sample.h).
void WriteSamples(const std::vector<Sample>& samples, std::ostream& out);

// Inverse of WriteSamples. Throws dfp::Error on malformed input.
std::vector<Sample> ReadSamples(std::istream& in);

}  // namespace dfp

#endif  // DFP_SRC_PROFILING_SERIALIZE_H_
