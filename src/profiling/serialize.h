// Serialization of profiling meta-data and samples.
//
// The paper's prototype writes the Tagging Dictionary to a meta-data file at the end of
// compilation and feeds samples through `perf script` into a decoupled post-processing phase.
// These functions provide the same decoupling: a dictionary and a sample stream written by one
// process can be resolved by another (or archived next to a recorded profile).
#ifndef DFP_SRC_PROFILING_SERIALIZE_H_
#define DFP_SRC_PROFILING_SERIALIZE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/pmu/sample.h"
#include "src/profiling/tagging_dictionary.h"

namespace dfp {

// One timestamped annotation interleaved with a sample stream — the vehicle for tier-transition
// events ("tier <fingerprint-hex> baseline optimized decided|swapped"), mirroring perf's
// sideband records. `text` is a single line without newlines.
struct SampleStreamEvent {
  uint64_t tsc = 0;
  std::string text;
};

// Line-oriented text format:
//   # dfp tagging dictionary v1
//   task <task-id> <operator-id> <name...>
//   link <ir-id> <task-id> [<task-id>...]
void WriteDictionary(const TaggingDictionary& dictionary, std::ostream& out);

// Inverse of WriteDictionary. Throws dfp::Error on malformed input.
TaggingDictionary ReadDictionary(std::istream& in);

// perf-script-like sample dump. The header version is chosen by content so older dumps stay
// byte-identical: streams carrying task boundaries are v5, streams carrying tier attribution
// or events are v4, streams carrying NUMA locality or steal flags are v3, streams carrying
// worker ids are v2, and pure worker-0 streams keep the v1 header, so files produced before
// each extension read back unchanged:
//   # dfp samples v1        (single-threaded: no W tokens allowed)
//   # dfp samples v2        (parallel: W present on samples from workers other than 0)
//   # dfp samples v3        (adds N <node> <remote> and T locality tokens)
//   # dfp samples v4        (adds G <tier> tokens and interleaved `event` lines)
//   # dfp samples v5        (adds `task` lines — executor task boundaries, in execution order)
//   # dfp samples v6        (adds interleaved `sched` lines — scheduling-action sideband:
//                            placement repairs decided/applied/kept/reverted, admission
//                            rejections by infeasible deadline)
//   # dfp samples v7        (adds D <shard> shard-attribution tokens and X <machine-node>
//                            cross-node locality tokens; X replaces N — for a cross-machine
//                            access the recorded node is the owning machine, not a socket)
//   # dfp samples v8        (adds interleaved `reopt` lines — re-optimization sideband:
//                            candidates decided/applied/kept/reverted by the guarded
//                            closed loop, src/reopt/)
//   task <start-tsc> <end-tsc> <worker> <kind> <step> <pipeline> <morsel-begin> <morsel-end>
//        <stolen> <instrs> <loads> <l1-miss> <l2-miss> <l3-miss> <remote-dram>
//   sample <tsc> <ip> <addr> [W <worker>] [N <node> <remote> | X <machine-node>] [T] [G <tier>]
//          [D <shard>] [R <16 register values>] [S <depth> <return-ips...>]
//   event <tsc> <text...>
//   sched <tsc> <text...>
//   reopt <tsc> <text...>
// Task lines are written as a block right after the header (they are a schedule, not a sample
// timeline), in the executor's deterministic execution order, which makes the per-query task
// DAG (src/critpath/) recoverable from a recorded stream alone. A session id is never written:
// dumped streams are per-session by construction (see src/pmu/sample.h).
void WriteSamples(const std::vector<Sample>& samples, std::ostream& out);

// Same, with sideband events merged into the stream in timestamp order (an event precedes the
// first sample with a tsc past its own). Any event forces the v4 header.
void WriteSamples(const std::vector<Sample>& samples,
                  const std::vector<SampleStreamEvent>& events, std::ostream& out);

// Same, with executor task boundaries. Any task forces the v5 header.
void WriteSamples(const std::vector<Sample>& samples,
                  const std::vector<SampleStreamEvent>& events,
                  const std::vector<TaskBoundary>& tasks, std::ostream& out);

// Same, with scheduling-action sideband lines (`sched <tsc> <text>`: placement repairs,
// admission rejections — src/service/). Any sched line forces the v6 header.
void WriteSamples(const std::vector<Sample>& samples,
                  const std::vector<SampleStreamEvent>& events,
                  const std::vector<TaskBoundary>& tasks,
                  const std::vector<SampleStreamEvent>& sched, std::ostream& out);

// Same, with re-optimization sideband lines (`reopt <tsc> <text>`: candidates decided,
// applied, kept, reverted — src/reopt/). Any reopt line forces the v8 header.
void WriteSamples(const std::vector<Sample>& samples,
                  const std::vector<SampleStreamEvent>& events,
                  const std::vector<TaskBoundary>& tasks,
                  const std::vector<SampleStreamEvent>& sched,
                  const std::vector<SampleStreamEvent>& reopt, std::ostream& out);

// Inverse of WriteSamples. Throws dfp::Error on malformed input. Events (and task boundaries,
// and sched/reopt lines) are appended to the caller's sinks in stream order when passed, and
// rejected as malformed when the stream has them but the caller reads without a sink. A stream
// whose header names a version newer than this build's (currently v8) is rejected with a clear
// "newer build" error rather than a generic parse failure.
std::vector<Sample> ReadSamples(std::istream& in);
std::vector<Sample> ReadSamples(std::istream& in, std::vector<SampleStreamEvent>* events);
std::vector<Sample> ReadSamples(std::istream& in, std::vector<SampleStreamEvent>* events,
                                std::vector<TaskBoundary>* tasks);
std::vector<Sample> ReadSamples(std::istream& in, std::vector<SampleStreamEvent>* events,
                                std::vector<TaskBoundary>* tasks,
                                std::vector<SampleStreamEvent>* sched);
std::vector<Sample> ReadSamples(std::istream& in, std::vector<SampleStreamEvent>* events,
                                std::vector<TaskBoundary>* tasks,
                                std::vector<SampleStreamEvent>* sched,
                                std::vector<SampleStreamEvent>* reopt);

}  // namespace dfp

#endif  // DFP_SRC_PROFILING_SERIALIZE_H_
