// Serialization of profiling meta-data and samples.
//
// The paper's prototype writes the Tagging Dictionary to a meta-data file at the end of
// compilation and feeds samples through `perf script` into a decoupled post-processing phase.
// These functions provide the same decoupling: a dictionary and a sample stream written by one
// process can be resolved by another (or archived next to a recorded profile).
#ifndef DFP_SRC_PROFILING_SERIALIZE_H_
#define DFP_SRC_PROFILING_SERIALIZE_H_

#include <iosfwd>
#include <vector>

#include "src/pmu/sample.h"
#include "src/profiling/tagging_dictionary.h"

namespace dfp {

// Line-oriented text format:
//   # dfp tagging dictionary v1
//   task <task-id> <operator-id> <name...>
//   link <ir-id> <task-id> [<task-id>...]
void WriteDictionary(const TaggingDictionary& dictionary, std::ostream& out);

// Inverse of WriteDictionary. Throws dfp::Error on malformed input.
TaggingDictionary ReadDictionary(std::istream& in);

// perf-script-like sample dump (`W` appears only for samples from workers other than 0, so
// single-threaded dumps are unchanged):
//   # dfp samples v1
//   sample <tsc> <ip> <addr> [W <worker>] [R <16 register values>] [S <depth> <return-ips...>]
void WriteSamples(const std::vector<Sample>& samples, std::ostream& out);

// Inverse of WriteSamples. Throws dfp::Error on malformed input.
std::vector<Sample> ReadSamples(std::istream& in);

}  // namespace dfp

#endif  // DFP_SRC_PROFILING_SERIALIZE_H_
