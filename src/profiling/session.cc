#include "src/profiling/session.h"

#include <algorithm>

namespace dfp {

ProfilingSession::ProfilingSession(ProfilingConfig config) : config_(config) {}

SamplingConfig ProfilingSession::MakeSamplingConfig() const {
  SamplingConfig sampling;
  sampling.enabled = config_.enable_sampling;
  sampling.event = config_.event;
  sampling.period = config_.period;
  sampling.capture_address = config_.capture_address;
  sampling.capture_registers = config_.attribution == AttributionMode::kRegisterTagging ||
                               config_.tag_all_instructions;
  sampling.capture_callstack = config_.attribution == AttributionMode::kCallStack;
  return sampling;
}

void ProfilingSession::RecordExecution(std::vector<Sample> samples, uint64_t cycles,
                                       PmuCounters counters, uint32_t worker_count) {
  samples_ = std::move(samples);
  execution_cycles_ = cycles;
  counters_ = counters;
  worker_count_ = worker_count;
  resolved_.clear();
  resolved_done_ = false;
}

void ProfilingSession::LoadForPostProcessing(TaggingDictionary dictionary,
                                             std::vector<Sample> samples, uint64_t cycles) {
  dictionary_ = std::move(dictionary);
  samples_ = std::move(samples);
  execution_cycles_ = cycles;
  // The pool size is not serialized; recover it from the sample stream.
  worker_count_ = 1;
  for (const Sample& sample : samples_) {
    worker_count_ = std::max(worker_count_, sample.worker_id + 1);
  }
  resolved_.clear();
  resolved_done_ = false;
}

void ProfilingSession::Resolve(const CodeMap& code_map) {
  if (resolved_done_) {
    return;
  }
  resolved_.clear();
  resolved_.reserve(samples_.size());
  for (const Sample& sample : samples_) {
    resolved_.push_back(ResolveOne(sample, code_map));
  }
  resolved_done_ = true;
}

ResolvedSample ProfilingSession::ResolveOne(const Sample& sample,
                                            const CodeMap& code_map) const {
  ResolvedSample out;
  out.tsc = sample.tsc;
  out.ip = sample.ip;
  out.addr = sample.addr;
  out.worker_id = sample.worker_id;
  out.mem_node = sample.mem_node;
  out.numa_remote = sample.numa_remote;
  out.stolen = sample.stolen;
  out.tier = sample.tier;
  const CodeSegment* segment = code_map.FindByIp(sample.ip);
  if (segment == nullptr) {
    return out;  // Unattributed.
  }
  out.segment = segment->id;

  // Task-level tag in the register's lower half; with packed_tags the operator tag sits in the
  // upper half (Section 4.2.5 chunking).
  const uint64_t task_tag =
      sample.has_registers ? (sample.regs[kTagRegister] & 0xFFFFFFFFull) : 0;
  const uint64_t op_tag =
      sample.has_registers && config_.packed_tags ? (sample.regs[kTagRegister] >> 32) : 0;
  const bool tag_valid = task_tag != 0 && task_tag <= dictionary_.tasks().size();

  // Attributes a sample landing at generated query code via debug info and Log B.
  auto resolve_generated = [&](const CodeSegment& seg, uint64_t ip, ResolvedSample* dst) {
    const MInstr& instr = seg.code[ip - seg.base_ip];
    dst->ir_id = instr.ir_id;
    const std::vector<TaskId>* owners = dictionary_.TasksOf(instr.ir_id);
    if (owners == nullptr || owners->empty()) {
      return false;
    }
    TaskId task = owners->front();
    if (owners->size() > 1) {
      // Multi-owner instruction (CSE / fusing across tasks): the tag register decides when
      // available, otherwise the first owner wins and the sample is flagged.
      if (tag_valid) {
        task = static_cast<TaskId>(task_tag - 1);
        dst->via_tag = true;
      } else {
        dst->ambiguous = true;
      }
    }
    dst->task = task;
    dst->op = dictionary_.OperatorOf(task);
    dst->category = ResolvedSample::Category::kOperator;
    return true;
  };

  switch (segment->kind) {
    case SegmentKind::kGenerated:
      resolve_generated(*segment, sample.ip, &out);
      return out;

    case SegmentKind::kRuntime: {
      // Shared source location: disambiguate via the tag register (Register Tagging) or by
      // walking the call stack to the innermost generated-code frame.
      if (tag_valid) {
        out.task = static_cast<TaskId>(task_tag - 1);
        // With packed tags the operator comes straight from the register's upper half; without
        // packing it is looked up through Log A.
        out.op = op_tag != 0 ? static_cast<OperatorId>(op_tag - 1)
                             : dictionary_.OperatorOf(out.task);
        out.category = ResolvedSample::Category::kOperator;
        out.via_tag = true;
        return out;
      }
      for (uint64_t caller_ip : sample.callstack) {
        const CodeSegment* caller = code_map.FindByIp(caller_ip);
        if (caller != nullptr && caller->kind == SegmentKind::kGenerated) {
          if (resolve_generated(*caller, caller_ip, &out)) {
            out.via_callstack = true;
            out.ir_id = kNoIrId;  // The sample itself is in runtime code.
          }
          return out;
        }
      }
      return out;  // Unattributed shared code.
    }

    case SegmentKind::kKernel:
      out.category = ResolvedSample::Category::kKernel;
      return out;

    case SegmentKind::kSyslib:
      return out;  // System libraries are not covered by tagging: unattributed.
  }
  return out;
}

AttributionStats ProfilingSession::Stats() const {
  AttributionStats stats;
  stats.total = resolved_.size();
  for (const ResolvedSample& sample : resolved_) {
    switch (sample.category) {
      case ResolvedSample::Category::kOperator:
        ++stats.operator_samples;
        break;
      case ResolvedSample::Category::kKernel:
        ++stats.kernel_samples;
        break;
      case ResolvedSample::Category::kUnattributed:
        ++stats.unattributed;
        break;
    }
    stats.ambiguous += sample.ambiguous;
    stats.via_tag += sample.via_tag;
    stats.via_callstack += sample.via_callstack;
  }
  return stats;
}

}  // namespace dfp
