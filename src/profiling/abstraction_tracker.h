// Abstraction Trackers (paper Section 4.2.4).
//
// During each lowering step, an Abstraction Tracker is a stack holding the higher-level
// component currently being lowered. The engine pushes/pops around produce/consume calls
// (operator tracker) and around task code generation (task tracker); whenever a lower-level
// component is created, the active tracker entry identifies its owner for the Tagging Dictionary.
#ifndef DFP_SRC_PROFILING_ABSTRACTION_TRACKER_H_
#define DFP_SRC_PROFILING_ABSTRACTION_TRACKER_H_

#include <vector>

#include "src/util/check.h"

namespace dfp {

template <typename Id>
class AbstractionTracker {
 public:
  void Push(Id id) { stack_.push_back(id); }
  void Pop() {
    DFP_CHECK(!stack_.empty());
    stack_.pop_back();
  }
  bool HasActive() const { return !stack_.empty(); }
  Id Active() const {
    DFP_CHECK(!stack_.empty());
    return stack_.back();
  }
  size_t depth() const { return stack_.size(); }

 private:
  std::vector<Id> stack_;
};

// RAII scope for tracker push/pop.
template <typename Id>
class TrackerScope {
 public:
  TrackerScope(AbstractionTracker<Id>* tracker, Id id) : tracker_(tracker) {
    if (tracker_ != nullptr) {
      tracker_->Push(id);
    }
  }
  ~TrackerScope() {
    if (tracker_ != nullptr) {
      tracker_->Pop();
    }
  }
  TrackerScope(const TrackerScope&) = delete;
  TrackerScope& operator=(const TrackerScope&) = delete;

 private:
  AbstractionTracker<Id>* tracker_;
};

}  // namespace dfp

#endif  // DFP_SRC_PROFILING_ABSTRACTION_TRACKER_H_
