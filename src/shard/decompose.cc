#include "src/shard/decompose.h"

#include <string>
#include <utility>

#include "src/util/check.h"

namespace dfp {
namespace {

// The plan spine above the fan-out GroupBy: the sink, the lifted stages (top-down), and the
// GroupBy itself. Shared shape validation for BuildPartialPlan and BuildMergeRecipe.
struct FanoutSpine {
  const PhysicalOp* sink = nullptr;
  std::vector<const PhysicalOp*> stages_top_down;  // kLimit / kSort / kMap between sink and gb.
  const PhysicalOp* group_by = nullptr;
};

FanoutSpine WalkSpine(const PhysicalOp& root) {
  if (root.kind != OpKind::kResultSink) {
    throw Error("fan-out decomposition: plan root is not a ResultSink");
  }
  FanoutSpine spine;
  spine.sink = &root;
  const PhysicalOp* node = root.child(0);
  while (node->kind == OpKind::kLimit || node->kind == OpKind::kSort ||
         node->kind == OpKind::kMap) {
    spine.stages_top_down.push_back(node);
    node = node->child(0);
  }
  if (node->kind != OpKind::kGroupBy) {
    throw Error(std::string("fan-out decomposition: unsupported spine operator ") +
                OpKindName(node->kind) + " (expected GroupBy under the sink stages)");
  }
  spine.group_by = node;
  return spine;
}

ColumnType AggInputType(const Expr& agg) {
  return agg.left != nullptr ? agg.left->type : ColumnType::kInt64;
}

// Type of the kSum partial accumulating `in_type` inputs: mirrors the interpreter's AggState —
// doubles accumulate in sum_double, everything else (int64, scaled decimal) in sum_int.
ColumnType SumPartialType(ColumnType in_type) {
  if (in_type == ColumnType::kDouble) {
    return ColumnType::kDouble;
  }
  return in_type == ColumnType::kDecimal ? ColumnType::kDecimal : ColumnType::kInt64;
}

}  // namespace

bool PlanTouchesPartitionedTable(const PhysicalOp& root) {
  if (root.kind == OpKind::kTableScan && root.table != nullptr) {
    const std::string& name = root.table->schema().name;
    if (name == "orders" || name == "lineitem") {
      return true;
    }
  }
  for (const PhysicalOpPtr& child : root.children) {
    if (PlanTouchesPartitionedTable(*child)) {
      return true;
    }
  }
  return false;
}

PhysicalOpPtr BuildPartialPlan(const PhysicalOp& root) {
  const FanoutSpine spine = WalkSpine(root);
  PhysicalOpPtr partial_gb = ClonePlan(*spine.group_by);

  std::vector<ExprPtr> partial_aggs;
  std::vector<OutputColumn> partial_cols;
  partial_aggs.reserve(partial_gb->exprs.size() + 1);
  size_t agg_index = 0;
  for (ExprPtr& agg : partial_gb->exprs) {
    DFP_CHECK(agg->kind == ExprKind::kAggregate);
    const std::string base = "p" + std::to_string(agg_index++);
    if (agg->agg == AggOp::kAvg) {
      // AVG is not directly mergeable; ship SUM and COUNT(*) and divide at the coordinator
      // with the engine's exact finalization arithmetic.
      const ColumnType in_type = AggInputType(*agg);
      ExprPtr sum = MakeAggregate(AggOp::kSum, agg->left->Clone());
      sum->type = SumPartialType(in_type);
      partial_cols.push_back({base + "_sum", sum->type});
      partial_aggs.push_back(std::move(sum));
      ExprPtr count = MakeAggregate(AggOp::kCountStar, nullptr);
      partial_cols.push_back({base + "_count", ColumnType::kInt64});
      partial_aggs.push_back(std::move(count));
    } else {
      // SUM/COUNT/MIN/MAX partials are the aggregate itself, combined at the coordinator by
      // sum (or min/max) over the per-shard values.
      partial_cols.push_back({base, agg->type});
      partial_aggs.push_back(std::move(agg));
    }
  }
  partial_gb->exprs = std::move(partial_aggs);

  std::vector<OutputColumn> output;
  const size_t keys = partial_gb->group_keys.size();
  output.reserve(keys + partial_cols.size());
  for (size_t k = 0; k < keys; ++k) {
    output.push_back(spine.group_by->output[k]);
  }
  for (OutputColumn& col : partial_cols) {
    output.push_back(std::move(col));
  }
  partial_gb->output = output;
  partial_gb->label = "GroupBy partial";

  auto sink = std::make_unique<PhysicalOp>();
  sink->kind = OpKind::kResultSink;
  sink->label = "ResultSink";
  sink->output = std::move(output);
  sink->children.push_back(std::move(partial_gb));
  FinalizePlan(*sink);
  return sink;
}

MergeRecipe BuildMergeRecipe(const PhysicalOp& root) {
  const FanoutSpine spine = WalkSpine(root);
  MergeRecipe recipe;
  recipe.group_keys = spine.group_by->group_keys.size();
  recipe.merged_output = spine.group_by->output;
  recipe.final_output = spine.sink->output;

  int col = static_cast<int>(recipe.group_keys);
  for (const ExprPtr& agg : spine.group_by->exprs) {
    DFP_CHECK(agg->kind == ExprKind::kAggregate);
    MergeAggSpec spec;
    spec.op = agg->agg;
    spec.in_type = AggInputType(*agg);
    spec.out_type = agg->type;
    spec.partial_col = col;
    spec.partial_cols = agg->agg == AggOp::kAvg ? 2 : 1;
    col += spec.partial_cols;
    recipe.aggs.push_back(spec);
  }

  // Lift the post-aggregation stages as childless clones, bottom-up (execution order).
  for (auto it = spine.stages_top_down.rbegin(); it != spine.stages_top_down.rend(); ++it) {
    const PhysicalOp& stage = **it;
    auto clone = std::make_unique<PhysicalOp>();
    clone->kind = stage.kind;
    clone->id = stage.id;
    clone->label = stage.label;
    clone->output = stage.output;
    clone->projecting = stage.projecting;
    clone->sort_items = stage.sort_items;
    clone->limit = stage.limit;
    clone->exprs.reserve(stage.exprs.size());
    for (const ExprPtr& expr : stage.exprs) {
      clone->exprs.push_back(expr->Clone());
    }
    recipe.stages.push_back(std::move(clone));
  }
  return recipe;
}

}  // namespace dfp
