#include "src/shard/coordinator.h"

#include <algorithm>
#include <utility>

#include "src/util/check.h"

namespace dfp {

uint64_t ShardArenaBytes(const ShardServiceConfig& config, uint32_t shards) {
  // Shard databases share one DatabaseConfig (the heap-replication invariant), so the extra
  // arena is sized for the hungriest shard: shard 0 hosts its service's session slots AND one
  // staging ring per remote shard.
  uint64_t bytes = ServiceArenaBytes(config.service);
  if (shards > 1) {
    bytes += static_cast<uint64_t>(shards - 1) * config.merge.stage_bytes;
  }
  return bytes;
}

SamplingConfig DefaultMergeSampling() {
  SamplingConfig sampling;
  sampling.enabled = true;
  sampling.event = PmuEvent::kCrossNode;
  sampling.period = 64;
  sampling.capture_address = true;  // Samples carry the cross-node flag (v7 `X` tokens).
  return sampling;
}

ShardedService::ShardedService(ShardCatalog& catalog, ShardServiceConfig config)
    : catalog_(catalog), config_(std::move(config)) {
  shards_.reserve(catalog_.shards());
  for (uint32_t s = 0; s < catalog_.shards(); ++s) {
    ServiceConfig shard_config = config_.service;
    // 1-based shard ids stamp samples (stream v7); the 1-shard degenerate case keeps id 0 so
    // its streams stay byte-identical to an unsharded service's (pre-v7 headers).
    shard_config.parallel.shard_id = catalog_.shards() > 1 ? s + 1 : 0;
    if (s > 0) {
      shard_config.state_path.clear();
    }
    shards_.push_back(std::make_unique<QueryService>(catalog_.db(s), shard_config));
  }
  if (catalog_.shards() > 1) {
    merger_ = std::make_unique<ShardMerger>(catalog_, config_.merge, config_.merge_sampling);
  }
  seen_catalog_version_ = catalog_.catalog_version();
}

void ShardedService::CheckCatalogVersion() {
  if (catalog_.catalog_version() == seen_catalog_version_) {
    return;
  }
  // Coordinated invalidation: the catalog moved (DDL), so every shard-local plan cache is
  // dropped in the same submission step — no shard may serve a stale artifact.
  for (auto& shard : shards_) {
    shard->InvalidateCache();
  }
  seen_catalog_version_ = catalog_.catalog_version();
  ++coordinated_invalidations_;
}

TicketId ShardedService::Submit(const std::string& name, const PlanBuilder& build,
                                uint64_t deadline_cycles, uint32_t weight) {
  // Build against EVERY shard database, even though routed queries discard all but one copy:
  // plan construction interns strings, and the shard heaps must replay identical intern
  // sequences to keep packed references aligned across shards (src/shard/partition.h).
  std::vector<PhysicalOpPtr> plans;
  plans.reserve(catalog_.shards());
  for (uint32_t s = 0; s < catalog_.shards(); ++s) {
    plans.push_back(build(catalog_.db(s)));
  }
  return SubmitClassified(name, std::move(plans), deadline_cycles, weight);
}

TicketId ShardedService::SubmitPlans(const std::string& name, std::vector<PhysicalOpPtr> plans,
                                     uint64_t deadline_cycles, uint32_t weight) {
  DFP_CHECK(plans.size() == catalog_.shards());
  return SubmitClassified(name, std::move(plans), deadline_cycles, weight);
}

TicketId ShardedService::SubmitClassified(const std::string& name,
                                          std::vector<PhysicalOpPtr> plans,
                                          uint64_t deadline_cycles, uint32_t weight) {
  CheckCatalogVersion();
  auto ticket = std::make_unique<ShardTicket>();
  ticket->id = static_cast<TicketId>(tickets_.size() + 1);
  ticket->name = name;
  ticket->fingerprint = FingerprintPlan(*plans[0], catalog_.catalog_version());

  PendingQuery pending;
  pending.id = ticket->id;
  if (catalog_.shards() > 1 && PlanTouchesPartitionedTable(*plans[0])) {
    // Fan-out: the same recipe is valid for every shard (identical plan shapes), derived once
    // from shard 0's copy.
    ticket->fanout = true;
    pending.recipe = BuildMergeRecipe(*plans[0]);
    for (uint32_t s = 0; s < catalog_.shards(); ++s) {
      PhysicalOpPtr partial = BuildPartialPlan(*plans[s]);
      ticket->shard_tickets.push_back(
          shards_[s]->Submit(std::move(partial), name, deadline_cycles, weight));
    }
    ++fanout_queries_;
  } else {
    // Routed: replicated-table plans run whole on the fingerprint-picked shard, so one
    // prepared-statement family keeps hitting one shard's plan cache.
    const uint32_t owner =
        catalog_.shards() > 1
            ? static_cast<uint32_t>(ticket->fingerprint.structure % catalog_.shards())
            : 0;
    ticket->owner_shard = owner;
    ticket->shard_tickets.push_back(
        shards_[owner]->Submit(std::move(plans[owner]), name, deadline_cycles, weight));
    ++routed_queries_;
  }
  pending_.push_back(std::move(pending));
  tickets_.push_back(std::move(ticket));
  return tickets_.back()->id;
}

void ShardedService::Drain() {
  for (auto& shard : shards_) {
    shard->Drain();
  }
  // Resolve in submission order: merges run serially on the coordinator's clock, so the
  // whole resolution pass is a pure function of the submission sequence.
  for (PendingQuery& pending : pending_) {
    ShardTicket& ticket = *tickets_[pending.id - 1];
    if (!ticket.fanout) {
      const QueryTicket& sub = shards_[ticket.owner_shard]->ticket(ticket.shard_tickets[0]);
      ticket.status = sub.status;
      ticket.result = sub.result;
      ticket.compile_cycles = sub.compile_cycles;
      ticket.execute_cycles = sub.execute_cycles;
      ticket.critical_cycles = sub.dag.critical_work_cycles;
      continue;
    }
    std::vector<Result> partials(catalog_.shards());
    uint64_t compile_max = 0;
    uint64_t execute_max = 0;
    uint64_t critical_max = 0;
    bool all_done = true;
    TicketStatus worst = TicketStatus::kDone;
    for (uint32_t s = 0; s < catalog_.shards(); ++s) {
      const QueryTicket& sub = shards_[s]->ticket(ticket.shard_tickets[s]);
      if (sub.status != TicketStatus::kDone) {
        all_done = false;
        worst = sub.status;
        continue;
      }
      partials[s] = sub.result;
      compile_max = std::max(compile_max, sub.compile_cycles);
      execute_max = std::max(execute_max, sub.execute_cycles);
      critical_max = std::max(critical_max, sub.dag.critical_work_cycles);
    }
    if (!all_done) {
      ticket.status = worst;
      continue;
    }
    MergeOutcome outcome = merger_->Merge(pending.recipe, partials);
    const std::vector<Sample> samples = merger_->TakeSamples();
    ticket.status = TicketStatus::kDone;
    ticket.result = std::move(outcome.result);
    ticket.compile_cycles = compile_max;
    // Shards execute concurrently; the merge starts when the slowest partial lands, which also
    // stitches the cross-shard critical path.
    ticket.execute_cycles = execute_max + outcome.merge_cycles;
    ticket.critical_cycles = critical_max + outcome.merge_cycles;
    ticket.merge_cycles = outcome.merge_cycles;
    ticket.staged_bytes = outcome.staged_bytes;
    cross_node_bytes_ += outcome.staged_bytes;
    merge_sample_total_ += samples.size();

    MergeLeafEntry& leaf = merge_leaf_[ticket.fingerprint.structure];
    if (leaf.name.empty() || ticket.name < leaf.name) {
      leaf.name = ticket.name;
    }
    leaf.samples += samples.size();
    leaf.merge_cycles += outcome.merge_cycles;
  }
  pending_.clear();
}

FleetAggregate ShardedService::AggregateFleet() const {
  std::vector<FleetAggregate> leaves;
  leaves.reserve(shards_.size() + 1);
  for (const auto& shard : shards_) {
    leaves.push_back(BuildShardLeaf(shard->fleet_profile(), shard->windows()));
  }
  if (!merge_leaf_.empty()) {
    // The coordinator's own leaf: Merge-operator samples per fan-out fingerprint, so fan-out
    // overhead appears in operator-level profiles next to the plan's ordinary operators.
    FleetAggregate coordinator;
    coordinator.leaves = 1;
    for (const auto& [fingerprint, entry] : merge_leaf_) {
      FleetPlanRollup& rollup = coordinator.plans[fingerprint];
      rollup.fingerprint = fingerprint;
      rollup.name = entry.name;
      rollup.samples = entry.samples;
      rollup.execute_cycles = entry.merge_cycles;
      FleetOperatorCost& merge_op = rollup.operators[kMergeOperatorId];
      merge_op.op = kMergeOperatorId;
      merge_op.label = kMergeOperatorLabel;
      merge_op.samples = entry.samples;
    }
    leaves.push_back(std::move(coordinator));
  }
  return AggregateShards(std::move(leaves), config_.rollup_cost_per_entry);
}

void ShardedService::SnapshotBaselines() {
  for (const auto& shard : shards_) {
    shard->SnapshotBaseline();
  }
}

std::vector<RegressionFinding> ShardedService::DetectRegressions() const {
  std::vector<RegressionFinding> findings;
  for (const auto& shard : shards_) {
    std::vector<RegressionFinding> local = shard->DetectRegressions();
    for (RegressionFinding& finding : local) {
      findings.push_back(std::move(finding));
    }
  }
  return findings;
}

const PmuCounters& ShardedService::coordinator_counters() const {
  static const PmuCounters kZero{};
  return merger_ != nullptr ? merger_->counters() : kZero;
}

const NumaStats& ShardedService::coordinator_numa_stats() const {
  static const NumaStats kZero{};
  return merger_ != nullptr ? merger_->numa_stats() : kZero;
}

}  // namespace dfp
