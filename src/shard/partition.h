// Range-partitioned TPC-H shard catalogs: the storage half of the sharded query service.
//
// A ShardCatalog owns N per-shard Databases holding one horizontal slice of the TPC-H dataset
// each. The fact tables (orders, lineitem) are range-partitioned by order key into N contiguous
// slices; every other table is replicated to every shard, so joins against dimensions stay
// shard-local and the orders-lineitem join is co-partitioned (both sides of an order key land on
// the same shard). Because the generator emits orders clustered ascending on o_orderkey (and
// lineitem per order), the concatenation of the shard slices in shard order reproduces the
// unsharded row order exactly — which is what makes fan-out results bit-identical to the
// unsharded engine (see src/shard/merge.h).
//
// String-heap replication: every shard database replays the reference heap's intern sequence
// (StringHeap::InternOrder) before any table is copied. Heap addresses are bump-allocated, so
// an identically configured arena reproduces every packed string reference bit for bit — plan
// literals, recorded trace bindings, and result cells are therefore valid in (and identical
// across) every shard database, and the coordinator can compare or merge rows from different
// shards without translation.
//
// A 1-shard catalog takes none of these detours: the dataset is generated straight into the
// single shard database, which is therefore byte-identical to an unsharded Database of the same
// configuration — the degenerate case the bench's byte-identity gate pins down.
#ifndef DFP_SRC_SHARD_PARTITION_H_
#define DFP_SRC_SHARD_PARTITION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/engine/database.h"
#include "src/tpch/datagen.h"

namespace dfp {

struct ShardCatalogConfig {
  // Number of shards (>= 1). 1 degenerates to an unsharded database.
  uint32_t shards = 1;
  // Per-shard database configuration — identical for every shard, and deliberately also the
  // configuration the reference dataset is generated under, so replayed string heaps and the
  // region layout match across shards (packed string references are absolute addresses).
  DatabaseConfig db;
  // Dataset generated into the reference database and sliced across the shards.
  TpchOptions tpch;
};

class ShardCatalog {
 public:
  explicit ShardCatalog(ShardCatalogConfig config);

  uint32_t shards() const { return config_.shards; }
  Database& db(uint32_t shard) { return *dbs_[shard]; }
  const Database& db(uint32_t shard) const { return *dbs_[shard]; }

  // Catalog version common to every shard database (they add the same tables in the same
  // order), and therefore the version plan fingerprints are computed against on every shard.
  uint64_t catalog_version() const { return dbs_[0]->catalog_version(); }

  const TpchRowCounts& counts() const { return counts_; }

  // True for the range-partitioned fact tables; false for replicated tables.
  static bool IsPartitionedTable(const std::string& name) {
    return name == "orders" || name == "lineitem";
  }

  // Shard owning order key `okey` (1-based keys; clamped into the valid range).
  uint32_t OwnerOfOrderKey(int64_t okey) const;

  // Orders rows resident on `shard` (the slice [lo, hi) of the reference table).
  uint64_t order_rows(uint32_t shard) const {
    return order_lo_[shard + 1] - order_lo_[shard];
  }

 private:
  // Copies `rows` of the reference table `name` into every shard it belongs on, cell payloads
  // verbatim (valid because the shard heaps replayed the reference intern sequence).
  void CopyTable(Database& reference, const std::string& name);

  ShardCatalogConfig config_;
  TpchRowCounts counts_;
  std::vector<std::unique_ptr<Database>> dbs_;
  // Slice boundaries of the orders table: shard s owns rows [order_lo_[s], order_lo_[s+1]),
  // i.e. order keys (order_lo_[s], order_lo_[s+1]] — o_orderkey at row r is r + 1.
  std::vector<uint64_t> order_lo_;
};

}  // namespace dfp

#endif  // DFP_SRC_SHARD_PARTITION_H_
