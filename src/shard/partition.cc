#include "src/shard/partition.h"

#include <algorithm>

#include "src/util/check.h"

namespace dfp {
namespace {

// Datagen's AddTable order — the copy must reproduce it so every shard database ends at the
// same catalog version with the same table registration sequence as an unsharded database.
constexpr const char* kTableOrder[] = {"region",   "nation", "supplier", "customer",
                                       "part",     "partsupp", "orders",  "lineitem"};

}  // namespace

ShardCatalog::ShardCatalog(ShardCatalogConfig config) : config_(std::move(config)) {
  DFP_CHECK(config_.shards >= 1);
  dbs_.reserve(config_.shards);
  for (uint32_t s = 0; s < config_.shards; ++s) {
    dbs_.push_back(std::make_unique<Database>(config_.db));
  }

  if (config_.shards == 1) {
    // Degenerate case: generate straight into the single shard. Byte-identical to an unsharded
    // Database of the same configuration — no reference copy, no heap replay.
    counts_ = GenerateTpch(*dbs_[0], config_.tpch);
    order_lo_ = {0, counts_.orders};
    return;
  }

  // Reference dataset, generated once and sliced; scoped so its arena is released after the
  // copy (only the shard databases survive construction).
  auto reference = std::make_unique<Database>(config_.db);
  counts_ = GenerateTpch(*reference, config_.tpch);

  // Replay the reference heap's intern sequence into every shard heap. Bump allocation over an
  // identically configured arena reproduces each packed reference bit for bit, so the raw cell
  // payloads copied below — and any plan literal bound later in the same order on every shard —
  // stay valid everywhere.
  const std::vector<std::string> intern_order = reference->strings().InternOrder();
  for (auto& db : dbs_) {
    for (const std::string& text : intern_order) {
      db->strings().Intern(text);
    }
  }

  order_lo_.resize(config_.shards + 1);
  for (uint32_t s = 0; s <= config_.shards; ++s) {
    order_lo_[s] = counts_.orders * s / config_.shards;
  }

  for (const char* name : kTableOrder) {
    CopyTable(*reference, name);
  }
}

uint32_t ShardCatalog::OwnerOfOrderKey(int64_t okey) const {
  // o_orderkey at reference row r is r + 1; shard s owns rows [order_lo_[s], order_lo_[s+1]).
  const uint64_t row = static_cast<uint64_t>(std::clamp<int64_t>(
      okey - 1, 0, static_cast<int64_t>(counts_.orders > 0 ? counts_.orders - 1 : 0)));
  const auto it = std::upper_bound(order_lo_.begin(), order_lo_.end(), row);
  return static_cast<uint32_t>(it - order_lo_.begin()) - 1;
}

void ShardCatalog::CopyTable(Database& reference, const std::string& name) {
  const Table& table = reference.table(name);
  const size_t columns = table.schema().columns.size();
  const bool partitioned = IsPartitionedTable(name);
  const int okey_column = partitioned ? table.schema().FindColumn(
                                            name == "orders" ? "o_orderkey" : "l_orderkey")
                                      : -1;
  std::vector<TableBuilder> builders;
  builders.reserve(config_.shards);
  for (auto& db : dbs_) {
    builders.push_back(db->CreateTableBuilder(table.schema()));
  }
  for (uint64_t r = 0; r < table.row_count(); ++r) {
    if (partitioned) {
      // Route the row to its owner; both fact tables are clustered ascending on the order key,
      // so each shard receives a contiguous slice in reference row order.
      const int64_t okey =
          table.Get(reference.mem(), static_cast<size_t>(okey_column), r);
      TableBuilder& builder = builders[OwnerOfOrderKey(okey)];
      builder.BeginRow();
      for (size_t c = 0; c < columns; ++c) {
        builder.SetI64(c, table.Get(reference.mem(), c, r));
      }
    } else {
      for (TableBuilder& builder : builders) {
        builder.BeginRow();
        for (size_t c = 0; c < columns; ++c) {
          builder.SetI64(c, table.Get(reference.mem(), c, r));
        }
      }
    }
  }
  for (uint32_t s = 0; s < config_.shards; ++s) {
    dbs_[s]->AddTable(builders[s].Finish());
  }
}

}  // namespace dfp
