// Hierarchical fleet-profile aggregation across shards.
//
// Every shard's QueryService already keeps a shard-local ServiceProfile (cumulative) and
// WindowedProfile (ring of recent windows). The aggregation tree rolls these up into one fleet
// view: each shard contributes a leaf, leaves merge pairwise up a balanced binary tree, and the
// root is the cross-shard profile the operator reads. The cost of the roll-up is bounded per
// level — each level touches every plan entry once — and modeled as
// levels * entries * cost_per_entry cycles, with levels = ceil(log2 leaves).
//
// Determinism is load-bearing: MergePair is commutative and associative (counters sum, names
// and bottleneck verdicts reduce by total orders, latency sketches vector-add), so aggregating
// the same shard leaves in ANY order — any tree shape, any shard permutation — produces a
// byte-identical rendered profile and JSON export. CI double-runs the sharded bench and diffs
// the exports; the shard tests shuffle the leaf order and compare bytes.
//
// Latency quantiles merge exactly because leaves export power-of-two histogram sketches
// (bucket = bit width of the latency) rather than precomputed per-shard quantiles: quantiles
// of a merged sketch are well-defined, quantiles of quantiles are not. The reported value is
// the nearest-rank bucket's upper bound; the maximum is carried exactly.
#ifndef DFP_SRC_SHARD_AGGTREE_H_
#define DFP_SRC_SHARD_AGGTREE_H_

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "src/service/service_profile.h"

namespace dfp {

// Power-of-two latency histogram: bucket index = std::bit_width(latency), saturated at 63.
// Mergeable by vector addition, unlike the quantiles it answers.
struct LatencySketch {
  std::array<uint64_t, 64> buckets{};

  void Add(uint64_t latency);
  void Merge(const LatencySketch& other);
  uint64_t total() const;
  // Nearest-rank percentile (pct in [1,100]): the upper bound of the bucket holding the
  // rank-th smallest latency, 0 when empty.
  uint64_t Quantile(uint32_t pct) const;
};

// One plan fingerprint's cross-shard rollup.
struct FleetPlanRollup {
  uint64_t fingerprint = 0;
  std::string name;  // Lexicographic-min non-empty name across shards (deterministic pick).
  uint64_t executions = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t compile_cycles = 0;
  uint64_t execute_cycles = 0;
  uint64_t samples = 0;
  uint64_t critical_cycles = 0;
  // Worst top-pipeline criticality share across shards, with its verdict; reduced as the
  // lexicographic max of (share, bottleneck) so the pick is order-independent.
  uint64_t top_share_pct = 0;
  std::string bottleneck;
  std::map<OperatorId, FleetOperatorCost> operators;
  LatencySketch latency;
  uint64_t latency_max = 0;
};

// One node of the aggregation tree: a shard leaf, an interior pairwise merge, or the root.
struct FleetAggregate {
  std::map<uint64_t, FleetPlanRollup> plans;  // Keyed by fingerprint (deterministic order).
  uint32_t leaves = 0;
  // Filled by AggregateShards on the root only: tree depth and the modeled roll-up cost
  // (levels * plan entries * cost_per_entry) — a pure function of the leaf SET, not the order.
  uint32_t levels = 0;
  uint64_t rollup_cycles = 0;
};

// Default modeled cost of merging one plan entry at one tree level.
inline constexpr uint64_t kRollupCyclesPerEntry = 400;

// Builds one shard's leaf from its service's cumulative profile and live window latencies.
FleetAggregate BuildShardLeaf(const ServiceProfile& profile, const WindowedProfile& windows);

// Pairwise merge; commutative and associative.
FleetAggregate MergePair(FleetAggregate a, const FleetAggregate& b);

// Rolls the shard leaves up a balanced binary tree and stamps the root's levels/rollup_cycles.
FleetAggregate AggregateShards(std::vector<FleetAggregate> leaves,
                               uint64_t cost_per_entry = kRollupCyclesPerEntry);

// Deterministic text report and JSON export (fixed key order; integer values plus names).
std::string RenderFleetAggregate(const FleetAggregate& fleet, size_t top_k = 10);
void WriteFleetAggregateJson(const FleetAggregate& fleet, std::ostream& out);

}  // namespace dfp

#endif  // DFP_SRC_SHARD_AGGTREE_H_
