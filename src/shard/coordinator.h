// ShardedService: the multi-node query service — a coordinator over N shard QueryServices
// plus the hierarchical profile aggregation tree.
//
// Each shard runs an ordinary QueryService over its slice of the catalog
// (src/shard/partition.h); the coordinator classifies every submission:
//
//  - Fan-out. Plans scanning a range-partitioned fact table are decomposed
//    (src/shard/decompose.h): the rewritten partial plan is submitted to EVERY shard, and at
//    drain time the coordinator's tagged Merge operator (src/shard/merge.h) recombines the
//    partials — staging remote cells across the shard fabric (CROSS_NODE PMU events, v7
//    `X`-token samples) — into a result bit-identical to the unsharded engine's.
//  - Routed. Plans over replicated tables only run whole on the shard picked by the
//    structural fingerprint (structure % shards), so repeated submissions of one family land
//    on one shard's plan cache.
//
// Two invariants make the whole construction deterministic and exact:
//
//  - Plans are BUILT against every shard database on every submission, even when all but one
//    copy is discarded: plan construction interns strings, and the shard heaps must replay
//    identical intern sequences to keep packed string references — in plans, results, and
//    recorded traces — valid on every shard (src/shard/partition.h).
//  - Shard drains and pending-ticket resolution happen in shard / submission order, so the
//    coordinator's clocks, samples, and profiles are a pure function of the submission
//    sequence, exactly like a single QueryService.
//
// Plan caches stay shard-local; the coordinator watches the (shared) catalog version and, when
// it moves, invalidates every shard's cache in the same submission step — the coordinated
// invalidation that keeps a fleet of caches coherent under DDL.
//
// The fleet profile is the root of the aggregation tree (src/shard/aggtree.h): shard-local
// ServiceProfiles + window rings roll up pairwise, with the coordinator contributing its own
// leaf carrying the Merge operator's samples per fan-out fingerprint — so fan-out overhead is
// visible in operator-level profiles next to ordinary plan operators.
//
// A 1-shard ShardedService is the degenerate tower: no merger, no staging regions, shard_id 0
// (pre-v7 sample streams), every submission routed to shard 0 — byte-identical behavior to a
// plain QueryService over the same database and configuration.
#ifndef DFP_SRC_SHARD_COORDINATOR_H_
#define DFP_SRC_SHARD_COORDINATOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/service/query_service.h"
#include "src/shard/aggtree.h"
#include "src/shard/decompose.h"
#include "src/shard/merge.h"
#include "src/shard/partition.h"

namespace dfp {

struct ShardServiceConfig {
  // Per-shard service configuration. The coordinator stamps parallel.shard_id (1-based; 0 in
  // the 1-shard degenerate case, keeping streams pre-v7) and clears state_path on the copies
  // it hands to shards beyond 0 (per-shard persistence would need per-shard paths).
  ServiceConfig service;
  // Coordinator merge cost model (staging rings live in shard 0's extra arena).
  MergeCosts merge;
  // Sampling of the coordinator's merge work. capture_address makes the staged-cell samples
  // carry the cross-node flag (v7 `X` tokens).
  SamplingConfig merge_sampling;
  // Modeled per-entry cost of one aggregation-tree level (src/shard/aggtree.h).
  uint64_t rollup_cost_per_entry = kRollupCyclesPerEntry;
};

// Extra-arena head room shard 0's DatabaseConfig needs: the per-session scratch slots of its
// own QueryService plus one staging ring per remote shard. Shards >= 1 need only the former.
uint64_t ShardArenaBytes(const ShardServiceConfig& config, uint32_t shards);

// Default merge-sampling configuration: enabled, address capture on (cross-node attribution).
SamplingConfig DefaultMergeSampling();

// One coordinator-level submission, resolved at Drain().
struct ShardTicket {
  TicketId id = 0;
  std::string name;
  TicketStatus status = TicketStatus::kQueued;
  PlanFingerprint fingerprint;  // Fingerprint of the ORIGINAL (undecomposed) plan.
  bool fanout = false;
  uint32_t owner_shard = 0;                // Routed queries: the executing shard.
  std::vector<TicketId> shard_tickets;     // Sub-ticket per shard (fan-out) or owner only.
  Result result;
  uint64_t compile_cycles = 0;  // Max across shards (they compile concurrently).
  uint64_t execute_cycles = 0;  // Max shard execute + coordinator merge.
  // Stitched critical path: max shard critical-path work + the coordinator merge (the merge
  // starts only when the slowest shard's partial lands).
  uint64_t critical_cycles = 0;
  uint64_t merge_cycles = 0;
  uint64_t staged_bytes = 0;
};

class ShardedService {
 public:
  // Builds a plan for one shard's database. Called once per shard per submission (see the
  // intern-sequence invariant above).
  using PlanBuilder = std::function<PhysicalOpPtr(Database&)>;

  ShardedService(ShardCatalog& catalog, ShardServiceConfig config = ShardServiceConfig());

  // Enqueues a query; classification (fan-out vs routed) happens here, execution at Drain().
  TicketId Submit(const std::string& name, const PlanBuilder& build,
                  uint64_t deadline_cycles = 0, uint32_t weight = 1);
  // Same with pre-built per-shard plans (plans.size() == shards()); the replay path uses this
  // to bind recorded literals itself.
  TicketId SubmitPlans(const std::string& name, std::vector<PhysicalOpPtr> plans,
                       uint64_t deadline_cycles = 0, uint32_t weight = 1);

  // Drains every shard (in shard order), then resolves tickets in submission order: fan-out
  // merges run here, on the coordinator's clock.
  void Drain();

  const ShardTicket& ticket(TicketId id) const { return *tickets_[id - 1]; }
  size_t ticket_count() const { return tickets_.size(); }

  uint32_t shards() const { return catalog_.shards(); }
  QueryService& shard(uint32_t s) { return *shards_[s]; }
  const QueryService& shard(uint32_t s) const { return *shards_[s]; }

  // Aggregation-tree root over all shard leaves plus the coordinator's Merge-operator leaf.
  FleetAggregate AggregateFleet() const;

  // Fleet-wide regression sweep: snapshots every shard's baseline / diffs every shard's
  // windows in shard order. Findings carry the owning shard's 1-based shard_id (0 in the
  // 1-shard degenerate case), so a fleet alert sink can name the regressed node.
  void SnapshotBaselines();
  std::vector<RegressionFinding> DetectRegressions() const;

  // Coordinator telemetry.
  uint64_t fanout_queries() const { return fanout_queries_; }
  uint64_t routed_queries() const { return routed_queries_; }
  uint64_t coordinated_invalidations() const { return coordinated_invalidations_; }
  uint64_t cross_node_bytes() const { return cross_node_bytes_; }
  uint64_t merge_sample_count() const { return merge_sample_total_; }
  // Merge-side PMU counters / NUMA stats (zero-valued defaults in the 1-shard case).
  const PmuCounters& coordinator_counters() const;
  const NumaStats& coordinator_numa_stats() const;

 private:
  struct PendingQuery {
    TicketId id = 0;
    MergeRecipe recipe;  // Fan-out only.
  };

  TicketId SubmitClassified(const std::string& name, std::vector<PhysicalOpPtr> plans,
                            uint64_t deadline_cycles, uint32_t weight);
  void CheckCatalogVersion();

  ShardCatalog& catalog_;
  ShardServiceConfig config_;
  std::vector<std::unique_ptr<QueryService>> shards_;
  std::unique_ptr<ShardMerger> merger_;  // Null in the 1-shard degenerate case.
  std::vector<std::unique_ptr<ShardTicket>> tickets_;
  std::vector<PendingQuery> pending_;  // Submission order; resolved and cleared by Drain().
  uint64_t seen_catalog_version_ = 0;

  // Coordinator leaf of the aggregation tree: Merge-operator samples per fan-out fingerprint.
  struct MergeLeafEntry {
    std::string name;
    uint64_t samples = 0;
    uint64_t merge_cycles = 0;
  };
  std::map<uint64_t, MergeLeafEntry> merge_leaf_;

  uint64_t fanout_queries_ = 0;
  uint64_t routed_queries_ = 0;
  uint64_t coordinated_invalidations_ = 0;
  uint64_t cross_node_bytes_ = 0;
  uint64_t merge_sample_total_ = 0;
};

}  // namespace dfp

#endif  // DFP_SRC_SHARD_COORDINATOR_H_
