#include "src/shard/merge.h"

#include <algorithm>
#include <bit>
#include <string>
#include <unordered_map>
#include <utility>

#include "src/plan/eval.h"
#include "src/util/check.h"

namespace dfp {
namespace {

using Row = std::vector<int64_t>;

struct KeyHash {
  size_t operator()(const Row& key) const {
    size_t hash = 14695981039346656037ull;
    for (int64_t value : key) {
      hash = (hash ^ static_cast<size_t>(value)) * 1099511628211ull;
    }
    return hash;
  }
};

// Merge-side aggregate accumulator — the same state machine as the interpreter's AggState,
// fed partial values instead of input rows.
struct PartialAcc {
  int64_t sum_int = 0;
  double sum_double = 0;
  int64_t count = 0;
  int64_t extreme_int = 0;
  double extreme_double = 0;
  bool seen = false;
};

void CombinePartial(const MergeAggSpec& spec, PartialAcc& acc, const Row& row) {
  const int64_t value = row[static_cast<size_t>(spec.partial_col)];
  switch (spec.op) {
    case AggOp::kSum:
    case AggOp::kAvg:
      if (spec.in_type == ColumnType::kDouble) {
        acc.sum_double += std::bit_cast<double>(value);
      } else {
        acc.sum_int += value;
      }
      if (spec.op == AggOp::kAvg) {
        acc.count += row[static_cast<size_t>(spec.partial_col) + 1];
      }
      break;
    case AggOp::kCount:
    case AggOp::kCountStar:
      acc.count += value;
      break;
    case AggOp::kMin:
    case AggOp::kMax:
      if (spec.in_type == ColumnType::kDouble) {
        double extreme = std::bit_cast<double>(value);
        if (!acc.seen || (spec.op == AggOp::kMin ? extreme < acc.extreme_double
                                                 : extreme > acc.extreme_double)) {
          acc.extreme_double = extreme;
        }
      } else {
        if (!acc.seen ||
            (spec.op == AggOp::kMin ? value < acc.extreme_int : value > acc.extreme_int)) {
          acc.extreme_int = value;
        }
      }
      acc.seen = true;
      break;
  }
}

// Mirrors the interpreter's FinalizeAgg exactly (bit-for-bit for the int/decimal aggregates).
int64_t FinalizePartial(const MergeAggSpec& spec, const PartialAcc& acc) {
  switch (spec.op) {
    case AggOp::kSum:
      return spec.in_type == ColumnType::kDouble ? std::bit_cast<int64_t>(acc.sum_double)
                                                 : acc.sum_int;
    case AggOp::kCount:
    case AggOp::kCountStar:
      return acc.count;
    case AggOp::kMin:
    case AggOp::kMax:
      return spec.in_type == ColumnType::kDouble ? std::bit_cast<int64_t>(acc.extreme_double)
                                                 : acc.extreme_int;
    case AggOp::kAvg: {
      double sum;
      if (spec.in_type == ColumnType::kDouble) {
        sum = acc.sum_double;
      } else if (spec.in_type == ColumnType::kDecimal) {
        sum = static_cast<double>(acc.sum_int) / 100.0;
      } else {
        sum = static_cast<double>(acc.sum_int);
      }
      return std::bit_cast<int64_t>(sum / static_cast<double>(acc.count));
    }
  }
  DFP_UNREACHABLE();
}

}  // namespace

ShardMerger::ShardMerger(ShardCatalog& catalog, MergeCosts costs, SamplingConfig sampling)
    : catalog_(catalog),
      costs_(costs),
      pmu_(catalog.db(0).pmu_costs()),
      cpu_(catalog.db(0).mem(), catalog.db(0).code_map(), pmu_),
      numa_(NumaConfig{}) {
  pmu_.Configure(sampling);
  segment_ = catalog_.db(0).code_map().AddHostSegment(SegmentKind::kKernel, "shard.merge",
                                                      64ull * 1024);
  stage_base_.resize(catalog_.shards(), 0);
  stage_offset_.resize(catalog_.shards(), 0);
  for (uint32_t s = 1; s < catalog_.shards(); ++s) {
    const uint32_t region = catalog_.db(0).CreateScratchRegion(
        "shard.stage" + std::to_string(s), costs_.stage_bytes);
    stage_base_[s] = catalog_.db(0).mem().region(region).base;
    numa_.AddCrossNode(stage_base_[s], costs_.stage_bytes, static_cast<uint8_t>(s));
  }
  numa_.Seal();
  cpu_.ConfigureNuma(&numa_, 0);
}

int64_t ShardMerger::StageCell(uint32_t shard, int64_t payload) {
  const VAddr addr = stage_base_[shard] + stage_offset_[shard];
  stage_offset_[shard] = (stage_offset_[shard] + sizeof(int64_t)) % costs_.stage_bytes;
  catalog_.db(0).mem().Write<int64_t>(addr, payload);
  cpu_.HostLoad(segment_, addr);
  return payload;
}

MergeOutcome ShardMerger::Merge(const MergeRecipe& recipe, const std::vector<Result>& partials) {
  const uint64_t tsc_start = cpu_.tsc();
  MergeOutcome outcome;

  // Combine partials group-by-group, first appearance across shards in shard order. Because
  // the fact-table slices are contiguous in generation order, this is the unsharded engine's
  // group emission order.
  std::unordered_map<Row, size_t, KeyHash> index;
  std::vector<Row> keys;
  std::vector<std::vector<PartialAcc>> accs;
  for (uint32_t s = 0; s < partials.size(); ++s) {
    for (const Row& row : partials[s].rows()) {
      Row key(row.begin(), row.begin() + static_cast<long>(recipe.group_keys));
      if (s != 0) {
        // Remote partial: every cell crosses the shard fabric through the staging ring.
        for (size_t c = 0; c < row.size(); ++c) {
          StageCell(s, row[c]);
        }
        outcome.staged_cells += row.size();
        outcome.staged_bytes += row.size() * sizeof(int64_t);
      }
      auto [it, inserted] = index.try_emplace(key, keys.size());
      if (inserted) {
        keys.push_back(key);
        accs.emplace_back(recipe.aggs.size());
      }
      std::vector<PartialAcc>& group = accs[it->second];
      for (size_t a = 0; a < recipe.aggs.size(); ++a) {
        CombinePartial(recipe.aggs[a], group[a], row);
      }
      outcome.merged_cells += row.size();
    }
  }

  std::vector<Row> rows;
  rows.reserve(keys.size());
  for (size_t g = 0; g < keys.size(); ++g) {
    Row row = std::move(keys[g]);
    for (size_t a = 0; a < recipe.aggs.size(); ++a) {
      row.push_back(FinalizePartial(recipe.aggs[a], accs[g][a]));
    }
    outcome.merged_cells += row.size();
    rows.push_back(std::move(row));
  }

  // Lifted post-aggregation stages, interpreter-identical semantics on the coordinator host.
  const StringHeap& strings = catalog_.db(0).strings();
  const std::vector<OutputColumn>* input_schema = &recipe.merged_output;
  for (const PhysicalOpPtr& stage : recipe.stages) {
    switch (stage->kind) {
      case OpKind::kMap: {
        EvalContext ctx;
        ctx.strings = &strings;
        std::vector<Row> output;
        output.reserve(rows.size());
        for (Row& row : rows) {
          ctx.tuple = row;
          if (stage->projecting) {
            Row projected;
            projected.reserve(stage->exprs.size());
            for (const ExprPtr& expr : stage->exprs) {
              projected.push_back(EvalScalar(*expr, ctx));
            }
            output.push_back(std::move(projected));
          } else {
            Row extended = row;
            for (const ExprPtr& expr : stage->exprs) {
              // Later computed columns may read earlier ones, as in the engine.
              ctx.tuple = extended;
              extended.push_back(EvalScalar(*expr, ctx));
            }
            output.push_back(std::move(extended));
          }
          outcome.merged_cells += stage->exprs.size();
        }
        rows = std::move(output);
        break;
      }
      case OpKind::kSort: {
        const std::vector<OutputColumn>& schema = *input_schema;
        std::stable_sort(rows.begin(), rows.end(), [&](const Row& a, const Row& b) {
          for (const SortItem& item : stage->sort_items) {
            const size_t slot = static_cast<size_t>(item.slot);
            const ColumnType type = schema[slot].type;
            int cmp = 0;
            if (type == ColumnType::kDouble) {
              double lhs = std::bit_cast<double>(a[slot]);
              double rhs = std::bit_cast<double>(b[slot]);
              cmp = lhs < rhs ? -1 : (lhs > rhs ? 1 : 0);
            } else if (type == ColumnType::kString) {
              auto lhs = strings.Get(static_cast<uint64_t>(a[slot]));
              auto rhs = strings.Get(static_cast<uint64_t>(b[slot]));
              int raw = lhs.compare(rhs);
              cmp = raw < 0 ? -1 : (raw > 0 ? 1 : 0);
            } else {
              cmp = a[slot] < b[slot] ? -1 : (a[slot] > b[slot] ? 1 : 0);
            }
            if (cmp != 0) {
              return item.descending ? cmp > 0 : cmp < 0;
            }
          }
          return false;
        });
        if (stage->limit >= 0 && rows.size() > static_cast<size_t>(stage->limit)) {
          rows.resize(static_cast<size_t>(stage->limit));
        }
        break;
      }
      case OpKind::kLimit:
        if (rows.size() > static_cast<size_t>(stage->limit)) {
          rows.resize(static_cast<size_t>(stage->limit));
        }
        break;
      default:
        throw Error("shard merge: unsupported lifted stage");
    }
    input_schema = &stage->output;
  }

  cpu_.HostWork(segment_, costs_.instrs_per_cell * outcome.merged_cells);
  outcome.merge_cycles = cpu_.tsc() - tsc_start;
  outcome.result = Result(recipe.final_output, std::move(rows));
  return outcome;
}

}  // namespace dfp
