// Fan-out decomposition: splitting an aggregation plan into per-shard partials plus a
// coordinator merge recipe.
//
// The coordinator classifies every submitted plan: plans that never scan a range-partitioned
// fact table run whole on one shard (routed by fingerprint); plans that do are decomposed. The
// supported fan-out shape is the aggregation spine every gated workload query has —
//
//   ResultSink -> {Limit | Sort | Map}* -> GroupBy -> <arbitrary shard-local subtree>
//
// The GroupBy and everything below it executes unchanged on every shard, except that its
// aggregate list is rewritten into mergeable partials (AVG becomes SUM + COUNT(*); SUM, COUNT,
// MIN, MAX are already decomposable). The operators above the GroupBy — final projections,
// ORDER BY, LIMIT — cannot run per shard (they need the global aggregate) and are lifted into
// the MergeRecipe, which the coordinator's ShardMerger (src/shard/merge.h) applies host-side
// after combining the partials.
//
// Correctness of the recombination is exact, not approximate: the merge replays the
// interpreter's AggState/FinalizeAgg arithmetic over the partial columns, and groups are
// emitted in first-appearance order across the shard partials taken in shard order — which,
// because the fact-table slices are contiguous in generation order (src/shard/partition.h),
// is the same first-appearance order the unsharded engine sees.
#ifndef DFP_SRC_SHARD_DECOMPOSE_H_
#define DFP_SRC_SHARD_DECOMPOSE_H_

#include <cstdint>
#include <vector>

#include "src/plan/physical.h"

namespace dfp {

// One original aggregate of the fan-out GroupBy, described for the merge: where its partial
// column(s) sit in the partial rows and how to combine and finalize them.
struct MergeAggSpec {
  AggOp op = AggOp::kSum;                    // The ORIGINAL aggregate (kAvg, not its partials).
  ColumnType in_type = ColumnType::kInt64;   // Aggregate input type (drives int/double paths).
  ColumnType out_type = ColumnType::kInt64;  // Finalized output column type.
  int partial_col = 0;   // First partial column in the partial row (keys precede partials).
  int partial_cols = 1;  // 1, or 2 for kAvg (sum then count).
};

// Everything the coordinator needs to recombine shard partials into the exact unsharded result.
struct MergeRecipe {
  size_t group_keys = 0;  // Key columns at the front of every partial row.
  std::vector<MergeAggSpec> aggs;
  // Schema of the merged (finalized) rows: the original GroupBy's output.
  std::vector<OutputColumn> merged_output;
  // Post-aggregation operators lifted off the plan spine, bottom-up (execution order): each is
  // a childless clone of a kMap / kSort / kLimit node, applied host-side by the merger. The
  // stage's own `output` is the schema after it runs; its input schema is the previous stage's
  // output (or `merged_output` for the first).
  std::vector<PhysicalOpPtr> stages;
  // Final result schema (the ResultSink's output = the last stage's, or merged_output).
  std::vector<OutputColumn> final_output;
};

// True when some table scan in the plan reads a range-partitioned fact table — the plan must
// fan out; plans over replicated tables only can run whole on any single shard.
bool PlanTouchesPartitionedTable(const PhysicalOp& root);

// Builds the per-shard partial plan: a finalized ResultSink over a clone of the fan-out
// GroupBy (and its whole input subtree) with the aggregate list rewritten into partials.
// Throws dfp::Error when the plan does not match the supported fan-out shape.
PhysicalOpPtr BuildPartialPlan(const PhysicalOp& root);

// Builds the merge recipe for the same plan (same shape validation as BuildPartialPlan).
MergeRecipe BuildMergeRecipe(const PhysicalOp& root);

}  // namespace dfp

#endif  // DFP_SRC_SHARD_DECOMPOSE_H_
