#include "src/shard/aggtree.h"

#include <algorithm>
#include <bit>
#include <ostream>
#include <sstream>
#include <utility>

#include <cstdio>

namespace dfp {
namespace {

std::string HexKey(uint64_t fingerprint) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx", static_cast<unsigned long long>(fingerprint));
  return buffer;
}

// Lexicographic-min non-empty string: the order-independent name pick.
void ReduceName(std::string& into, const std::string& other) {
  if (other.empty()) {
    return;
  }
  if (into.empty() || other < into) {
    into = other;
  }
}

void MergeRollup(FleetPlanRollup& into, const FleetPlanRollup& other) {
  ReduceName(into.name, other.name);
  into.executions += other.executions;
  into.cache_hits += other.cache_hits;
  into.cache_misses += other.cache_misses;
  into.compile_cycles += other.compile_cycles;
  into.execute_cycles += other.execute_cycles;
  into.samples += other.samples;
  into.critical_cycles += other.critical_cycles;
  if (std::make_pair(other.top_share_pct, other.bottleneck) >
      std::make_pair(into.top_share_pct, into.bottleneck)) {
    into.top_share_pct = other.top_share_pct;
    into.bottleneck = other.bottleneck;
  }
  for (const auto& [op, cost] : other.operators) {
    FleetOperatorCost& mine = into.operators[op];
    mine.op = op;
    ReduceName(mine.label, cost.label);
    mine.samples += cost.samples;
  }
  into.latency.Merge(other.latency);
  into.latency_max = std::max(into.latency_max, other.latency_max);
}

}  // namespace

void LatencySketch::Add(uint64_t latency) {
  const int bucket = std::min(static_cast<int>(std::bit_width(latency)), 63);
  ++buckets[static_cast<size_t>(bucket)];
}

void LatencySketch::Merge(const LatencySketch& other) {
  for (size_t b = 0; b < buckets.size(); ++b) {
    buckets[b] += other.buckets[b];
  }
}

uint64_t LatencySketch::total() const {
  uint64_t sum = 0;
  for (uint64_t count : buckets) {
    sum += count;
  }
  return sum;
}

uint64_t LatencySketch::Quantile(uint32_t pct) const {
  const uint64_t count = total();
  if (count == 0) {
    return 0;
  }
  const uint64_t rank = (count * pct + 99) / 100;  // Nearest rank, 1-based.
  uint64_t seen = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    seen += buckets[b];
    if (seen >= rank) {
      return (1ull << b) - 1;  // Bucket upper bound.
    }
  }
  return (1ull << 63) - 1;
}

FleetAggregate BuildShardLeaf(const ServiceProfile& profile, const WindowedProfile& windows) {
  FleetAggregate leaf;
  leaf.leaves = 1;
  for (const auto& [fingerprint, plan] : profile.plans()) {
    FleetPlanRollup& rollup = leaf.plans[fingerprint];
    rollup.fingerprint = fingerprint;
    rollup.name = plan.name;
    rollup.executions = plan.executions;
    rollup.cache_hits = plan.cache_hits;
    rollup.cache_misses = plan.cache_misses;
    rollup.compile_cycles = plan.compile_cycles;
    rollup.execute_cycles = plan.execute_cycles;
    rollup.samples = plan.samples;
    rollup.critical_cycles = plan.critical_cycles;
    rollup.top_share_pct = plan.top_share_pct;
    rollup.bottleneck = plan.bottleneck;
    rollup.operators = plan.operators;
  }
  // Live window latencies feed the mergeable sketch (quantiles of quantiles would not merge).
  for (const auto& [fingerprint, series] : windows.plans()) {
    FleetPlanRollup& rollup = leaf.plans[fingerprint];
    rollup.fingerprint = fingerprint;
    ReduceName(rollup.name, series.name);
    for (const ProfileWindow& window : series.windows) {
      for (uint64_t latency : window.latencies) {
        rollup.latency.Add(latency);
      }
      rollup.latency_max = std::max(rollup.latency_max, window.latency_max);
    }
  }
  return leaf;
}

FleetAggregate MergePair(FleetAggregate a, const FleetAggregate& b) {
  for (const auto& [fingerprint, rollup] : b.plans) {
    auto [it, inserted] = a.plans.try_emplace(fingerprint, rollup);
    if (!inserted) {
      MergeRollup(it->second, rollup);
    }
  }
  a.leaves += b.leaves;
  return a;
}

FleetAggregate AggregateShards(std::vector<FleetAggregate> leaves, uint64_t cost_per_entry) {
  if (leaves.empty()) {
    return FleetAggregate{};
  }
  uint32_t levels = 0;
  while (leaves.size() > 1) {
    // One tree level: merge adjacent pairs (an odd tail passes through unmerged).
    std::vector<FleetAggregate> next;
    next.reserve((leaves.size() + 1) / 2);
    for (size_t i = 0; i + 1 < leaves.size(); i += 2) {
      next.push_back(MergePair(std::move(leaves[i]), leaves[i + 1]));
    }
    if (leaves.size() % 2 != 0) {
      next.push_back(std::move(leaves.back()));
    }
    leaves = std::move(next);
    ++levels;
  }
  FleetAggregate root = std::move(leaves.front());
  root.levels = levels;
  // Bounded per-level cost: every level touches each plan entry of the final union once. A
  // pure function of the leaf set (levels from the count, entries from the union), so any
  // aggregation order reports the same cost.
  root.rollup_cycles = static_cast<uint64_t>(levels) * root.plans.size() * cost_per_entry;
  return root;
}

std::string RenderFleetAggregate(const FleetAggregate& fleet, size_t top_k) {
  std::ostringstream out;
  out << "fleet aggregate: " << fleet.leaves << " shard leaves, " << fleet.levels
      << " levels, " << fleet.plans.size() << " plans, rollup " << fleet.rollup_cycles
      << " cycles\n";
  for (const auto& [fingerprint, plan] : fleet.plans) {
    out << "  " << HexKey(fingerprint) << " " << (plan.name.empty() ? "?" : plan.name) << ": "
        << plan.executions << " execs (" << plan.cache_hits << " hits), compile "
        << plan.compile_cycles << ", execute " << plan.execute_cycles << ", samples "
        << plan.samples;
    if (plan.latency.total() > 0) {
      out << ", latency p50<=" << plan.latency.Quantile(50) << " p95<="
          << plan.latency.Quantile(95) << " max=" << plan.latency_max;
    }
    if (!plan.bottleneck.empty()) {
      out << ", critical " << plan.critical_cycles << " (top " << plan.top_share_pct << "% "
          << plan.bottleneck << ")";
    }
    out << "\n";
    size_t shown = 0;
    for (const auto& [op, cost] : plan.operators) {
      if (shown++ >= top_k) {
        break;
      }
      out << "    op " << op << " " << cost.label << ": " << cost.samples << " samples\n";
    }
  }
  return out.str();
}

void WriteFleetAggregateJson(const FleetAggregate& fleet, std::ostream& out) {
  out << "{\n";
  out << "  \"leaves\": " << fleet.leaves << ",\n";
  out << "  \"levels\": " << fleet.levels << ",\n";
  out << "  \"rollup_cycles\": " << fleet.rollup_cycles << ",\n";
  out << "  \"plans\": [\n";
  bool first_plan = true;
  for (const auto& [fingerprint, plan] : fleet.plans) {
    if (!first_plan) {
      out << ",\n";
    }
    first_plan = false;
    out << "    {\"fingerprint\": \"" << HexKey(fingerprint) << "\", \"name\": \"" << plan.name
        << "\", \"executions\": " << plan.executions << ", \"cache_hits\": " << plan.cache_hits
        << ", \"compile_cycles\": " << plan.compile_cycles
        << ", \"execute_cycles\": " << plan.execute_cycles << ", \"samples\": " << plan.samples
        << ", \"critical_cycles\": " << plan.critical_cycles
        << ", \"latency_p50\": " << plan.latency.Quantile(50)
        << ", \"latency_p95\": " << plan.latency.Quantile(95)
        << ", \"latency_max\": " << plan.latency_max << ", \"operators\": [";
    bool first_op = true;
    for (const auto& [op, cost] : plan.operators) {
      if (!first_op) {
        out << ", ";
      }
      first_op = false;
      out << "{\"op\": " << op << ", \"label\": \"" << cost.label
          << "\", \"samples\": " << cost.samples << "}";
    }
    out << "]}";
  }
  out << "\n  ]\n}\n";
}

}  // namespace dfp
