// The coordinator's tagged Merge operator: exact recombination of shard partials, costed on
// the simulated machine.
//
// Two halves, deliberately fused in one class so the profile can never drift from the result:
//
//  - Semantics. Partial rows from every shard are combined group-by-group with the exact
//    AggState/FinalizeAgg arithmetic of the engine (src/interp/interpreter.cc), in
//    first-appearance order across the shards taken in shard order; the lifted Map/Sort/Limit
//    stages of the MergeRecipe then run host-side with interpreter-identical semantics. For
//    integer and decimal aggregates the merged result is bit-identical to the unsharded
//    engine's. (Double SUM/AVG re-associate addition across shards — exact only when the
//    workload's double groups are single-shard, which the gated workload's are not; its
//    aggregates are all int64/decimal.)
//
//  - Cost. Remote shards' partial cells are staged into per-shard staging rings carved from
//    the coordinator (shard 0) database and registered as cross-node spans in a NumaMap: each
//    staged cell is a HostLoad that misses to DRAM and pays the cross-node fabric penalty,
//    ticking the CROSS_NODE PMU event and emitting `X`-token samples (stream v7). Merge
//    compute is HostWork on a dedicated "shard.merge" kernel segment. The resulting samples
//    are folded into the fleet profile under the reserved Merge operator id, so the fan-out
//    overhead shows up in operator-level profiles next to the ordinary plan operators.
#ifndef DFP_SRC_SHARD_MERGE_H_
#define DFP_SRC_SHARD_MERGE_H_

#include <cstdint>
#include <vector>

#include "src/engine/result.h"
#include "src/pmu/pmu.h"
#include "src/shard/decompose.h"
#include "src/shard/partition.h"
#include "src/vcpu/cpu.h"
#include "src/vcpu/numa.h"

namespace dfp {

// Reserved operator id of the coordinator's Merge operator in fleet profiles. High enough to
// never collide with FinalizePlan's pre-order ids, distinct from kNoOperator (0xFFFFFFFF).
inline constexpr OperatorId kMergeOperatorId = 0xFFFFFFF0u;
inline constexpr const char* kMergeOperatorLabel = "Merge";

struct MergeCosts {
  // Bytes of each per-remote-shard staging ring (wraps when a result exceeds it).
  uint64_t stage_bytes = 64ull * 1024;
  // Host instructions charged per merged cell (hash probe + accumulate amortized).
  uint32_t instrs_per_cell = 6;
};

// One fan-out merge, accounted.
struct MergeOutcome {
  Result result;
  uint64_t merge_cycles = 0;      // Coordinator TSC consumed by this merge.
  uint64_t staged_bytes = 0;      // Bytes pulled across the shard fabric.
  uint64_t staged_cells = 0;
  uint64_t merged_cells = 0;      // Cells touched by combine/finalize/stage compute.
};

class ShardMerger {
 public:
  // Builds the coordinator's staging topology on `catalog` shard 0: one staging ring per
  // remote shard (carved from shard 0's extra arena — budget (shards-1) * stage_bytes there),
  // registered as that shard's memory in a cross-node NumaMap.
  ShardMerger(ShardCatalog& catalog, MergeCosts costs, SamplingConfig sampling);

  // Combines per-shard partial results (indexed by shard) into the final result per `recipe`.
  MergeOutcome Merge(const MergeRecipe& recipe, const std::vector<Result>& partials);

  // Coordinator-side accounting: samples accumulated since the last TakeSamples() (all
  // attributable to the Merge operator), the PMU event counters, and the NUMA traffic stats
  // (cross_node_* count the fabric hops).
  std::vector<Sample> TakeSamples() { return pmu_.TakeSamples(); }
  const PmuCounters& counters() const { return pmu_.counters(); }
  const NumaStats& numa_stats() const { return cpu_.numa_stats(); }
  uint64_t tsc() const { return cpu_.tsc(); }

 private:
  // Stages one remote cell: writes it into the owning shard's ring and loads it back through
  // the cross-node span (the fabric hop). Returns the payload unchanged.
  int64_t StageCell(uint32_t shard, int64_t payload);

  ShardCatalog& catalog_;
  MergeCosts costs_;
  Pmu pmu_;
  Cpu cpu_;
  NumaMap numa_;
  uint32_t segment_ = 0;                 // "shard.merge" kernel segment.
  std::vector<VAddr> stage_base_;        // Ring base per shard (index 0 unused).
  std::vector<uint64_t> stage_offset_;   // Ring cursor per shard.
};

}  // namespace dfp

#endif  // DFP_SRC_SHARD_MERGE_H_
