#include "src/tpch/datagen.h"

#include <array>
#include <cmath>

#include "src/util/date.h"
#include "src/util/decimal.h"
#include "src/util/random.h"
#include "src/util/str.h"

namespace dfp {
namespace {

constexpr std::array<const char*, 25> kNations = {
    "ALGERIA", "ARGENTINA", "BRAZIL",  "CANADA",         "EGYPT",   "ETHIOPIA",     "FRANCE",
    "GERMANY", "INDIA",     "INDONESIA", "IRAN",         "IRAQ",    "JAPAN",        "JORDAN",
    "KENYA",   "MOROCCO",   "MOZAMBIQUE", "PERU",        "CHINA",   "ROMANIA",      "SAUDI ARABIA",
    "VIETNAM", "RUSSIA",    "UNITED KINGDOM", "UNITED STATES"};
constexpr std::array<int, 25> kNationRegion = {0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2,
                                               4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1};
constexpr std::array<const char*, 5> kRegions = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                                                 "MIDDLE EAST"};
constexpr std::array<const char*, 5> kSegments = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                                                  "HOUSEHOLD", "MACHINERY"};
constexpr std::array<const char*, 5> kPriorities = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                                    "4-NOT SPECIFIED", "5-LOW"};
constexpr std::array<const char*, 7> kShipModes = {"AIR", "FOB", "MAIL", "RAIL",
                                                   "REG AIR", "SHIP", "TRUCK"};
constexpr std::array<const char*, 4> kShipInstructs = {"COLLECT COD", "DELIVER IN PERSON",
                                                       "NONE", "TAKE BACK RETURN"};
constexpr std::array<const char*, 6> kTypeSyllable1 = {"STANDARD", "SMALL",  "MEDIUM",
                                                       "LARGE",    "ECONOMY", "PROMO"};
constexpr std::array<const char*, 5> kTypeSyllable2 = {"ANODIZED", "BURNISHED", "PLATED",
                                                       "POLISHED", "BRUSHED"};
constexpr std::array<const char*, 5> kTypeSyllable3 = {"TIN", "NICKEL", "BRASS", "STEEL",
                                                       "COPPER"};
constexpr std::array<const char*, 8> kContainers = {"SM CASE", "SM BOX",  "MED BAG", "MED BOX",
                                                    "LG CASE", "LG BOX",  "JUMBO PKG", "WRAP CASE"};
constexpr std::array<const char*, 16> kNameWords = {
    "almond", "antique",  "aquamarine", "azure",  "beige",  "bisque", "black",  "blanched",
    "blue",   "blush",    "brown",      "burlywood", "chartreuse", "chiffon", "chocolate",
    "coral"};

constexpr int kStartDate = 8035;   // 1992-01-01.
constexpr int kEndDate = 10441;    // 1998-08-02.

}  // namespace

TpchRowCounts TpchCountsForScale(double scale) {
  TpchRowCounts counts;
  auto scaled = [&](double base) {
    return std::max<uint64_t>(1, static_cast<uint64_t>(std::llround(base * scale)));
  };
  counts.supplier = scaled(10000);
  counts.customer = scaled(150000);
  counts.part = scaled(200000);
  counts.partsupp = counts.part * 4;
  counts.orders = scaled(1500000);
  counts.lineitem = counts.orders * 4;  // Expected value of uniform 1..7.
  return counts;
}

TpchRowCounts GenerateTpch(Database& db, const TpchOptions& options) {
  Random rng(options.seed);
  TpchRowCounts counts = TpchCountsForScale(options.scale);

  // --- region ---
  {
    TableBuilder builder = db.CreateTableBuilder(
        {"region", {{"r_regionkey", ColumnType::kInt64}, {"r_name", ColumnType::kString}}});
    for (uint64_t i = 0; i < counts.region; ++i) {
      builder.BeginRow();
      builder.SetI64(0, static_cast<int64_t>(i));
      builder.SetString(1, kRegions[i]);
    }
    db.AddTable(builder.Finish());
  }

  // --- nation ---
  {
    TableBuilder builder = db.CreateTableBuilder({"nation",
                                                  {{"n_nationkey", ColumnType::kInt64},
                                                   {"n_name", ColumnType::kString},
                                                   {"n_regionkey", ColumnType::kInt64}}});
    for (uint64_t i = 0; i < counts.nation; ++i) {
      builder.BeginRow();
      builder.SetI64(0, static_cast<int64_t>(i));
      builder.SetString(1, kNations[i]);
      builder.SetI64(2, kNationRegion[i]);
    }
    db.AddTable(builder.Finish());
  }

  // --- supplier ---
  {
    TableBuilder builder = db.CreateTableBuilder({"supplier",
                                                  {{"s_suppkey", ColumnType::kInt64},
                                                   {"s_name", ColumnType::kString},
                                                   {"s_nationkey", ColumnType::kInt64},
                                                   {"s_acctbal", ColumnType::kDecimal}}});
    for (uint64_t i = 1; i <= counts.supplier; ++i) {
      builder.BeginRow();
      builder.SetI64(0, static_cast<int64_t>(i));
      builder.SetString(1, StrFormat("Supplier#%09llu", static_cast<unsigned long long>(i)));
      builder.SetI64(2, rng.Uniform(0, 24));
      builder.SetDecimal(3, rng.Uniform(-99999, 999999));
    }
    db.AddTable(builder.Finish());
  }

  // --- customer ---
  {
    TableBuilder builder = db.CreateTableBuilder({"customer",
                                                  {{"c_custkey", ColumnType::kInt64},
                                                   {"c_name", ColumnType::kString},
                                                   {"c_nationkey", ColumnType::kInt64},
                                                   {"c_acctbal", ColumnType::kDecimal},
                                                   {"c_mktsegment", ColumnType::kString}}});
    for (uint64_t i = 1; i <= counts.customer; ++i) {
      builder.BeginRow();
      builder.SetI64(0, static_cast<int64_t>(i));
      builder.SetString(1, StrFormat("Customer#%09llu", static_cast<unsigned long long>(i)));
      builder.SetI64(2, rng.Uniform(0, 24));
      builder.SetDecimal(3, rng.Uniform(-99999, 999999));
      builder.SetString(4, kSegments[static_cast<size_t>(rng.Uniform(0, 4))]);
    }
    db.AddTable(builder.Finish());
  }

  // --- part ---
  std::vector<int64_t> part_price(counts.part + 1, 0);
  {
    TableBuilder builder = db.CreateTableBuilder({"part",
                                                  {{"p_partkey", ColumnType::kInt64},
                                                   {"p_name", ColumnType::kString},
                                                   {"p_brand", ColumnType::kString},
                                                   {"p_type", ColumnType::kString},
                                                   {"p_size", ColumnType::kInt64},
                                                   {"p_container", ColumnType::kString},
                                                   {"p_retailprice", ColumnType::kDecimal}}});
    for (uint64_t i = 1; i <= counts.part; ++i) {
      builder.BeginRow();
      builder.SetI64(0, static_cast<int64_t>(i));
      builder.SetString(
          1, StrFormat("%s %s", kNameWords[static_cast<size_t>(rng.Uniform(0, 15))],
                       kNameWords[static_cast<size_t>(rng.Uniform(0, 15))]));
      builder.SetString(2, StrFormat("Brand#%lld%lld", static_cast<long long>(rng.Uniform(1, 5)),
                                     static_cast<long long>(rng.Uniform(1, 5))));
      builder.SetString(3,
                        StrFormat("%s %s %s",
                                  kTypeSyllable1[static_cast<size_t>(rng.Uniform(0, 5))],
                                  kTypeSyllable2[static_cast<size_t>(rng.Uniform(0, 4))],
                                  kTypeSyllable3[static_cast<size_t>(rng.Uniform(0, 4))]));
      builder.SetI64(4, rng.Uniform(1, 50));
      builder.SetString(5, kContainers[static_cast<size_t>(rng.Uniform(0, 7))]);
      // TPC-H price formula shape: 900 + partkey/10 mod 2001 cents structure, scaled decimal.
      int64_t price = MakeDecimal(900, 0) + static_cast<int64_t>((i / 10) % 20001) +
                      100 * static_cast<int64_t>(i % 1000);
      part_price[i] = price;
      builder.SetDecimal(6, price);
    }
    db.AddTable(builder.Finish());
  }

  // --- partsupp --- (each part has 4 suppliers, derived deterministically)
  auto supplier_for = [&](uint64_t partkey, uint64_t copy) -> int64_t {
    const uint64_t s = counts.supplier;
    return static_cast<int64_t>((partkey + copy * ((s / 4) + (partkey - 1) / s)) % s + 1);
  };
  {
    TableBuilder builder = db.CreateTableBuilder({"partsupp",
                                                  {{"ps_partkey", ColumnType::kInt64},
                                                   {"ps_suppkey", ColumnType::kInt64},
                                                   {"ps_availqty", ColumnType::kInt64},
                                                   {"ps_supplycost", ColumnType::kDecimal}}});
    for (uint64_t i = 1; i <= counts.part; ++i) {
      for (uint64_t copy = 0; copy < 4; ++copy) {
        builder.BeginRow();
        builder.SetI64(0, static_cast<int64_t>(i));
        builder.SetI64(1, supplier_for(i, copy));
        builder.SetI64(2, rng.Uniform(1, 9999));
        builder.SetDecimal(3, rng.Uniform(100, 100000));
      }
    }
    db.AddTable(builder.Finish());
  }

  // --- orders + lineitem ---
  uint64_t lineitem_rows = 0;
  {
    TableBuilder orders = db.CreateTableBuilder({"orders",
                                                 {{"o_orderkey", ColumnType::kInt64},
                                                  {"o_custkey", ColumnType::kInt64},
                                                  {"o_orderstatus", ColumnType::kString},
                                                  {"o_totalprice", ColumnType::kDecimal},
                                                  {"o_orderdate", ColumnType::kDate},
                                                  {"o_orderpriority", ColumnType::kString},
                                                  {"o_shippriority", ColumnType::kInt64}}});
    TableBuilder lineitem = db.CreateTableBuilder({"lineitem",
                                                   {{"l_orderkey", ColumnType::kInt64},
                                                    {"l_partkey", ColumnType::kInt64},
                                                    {"l_suppkey", ColumnType::kInt64},
                                                    {"l_linenumber", ColumnType::kInt64},
                                                    {"l_quantity", ColumnType::kDecimal},
                                                    {"l_extendedprice", ColumnType::kDecimal},
                                                    {"l_discount", ColumnType::kDecimal},
                                                    {"l_tax", ColumnType::kDecimal},
                                                    {"l_returnflag", ColumnType::kString},
                                                    {"l_linestatus", ColumnType::kString},
                                                    {"l_shipdate", ColumnType::kDate},
                                                    {"l_commitdate", ColumnType::kDate},
                                                    {"l_receiptdate", ColumnType::kDate},
                                                    {"l_shipmode", ColumnType::kString},
                                                    {"l_shipinstruct", ColumnType::kString}}});
    const int64_t kCutoff = 10044;  // 1997-06-28: dates after this are "open" orders.
    for (uint64_t okey = 1; okey <= counts.orders; ++okey) {
      int32_t orderdate;
      if (options.correlated_order_dates) {
        orderdate = static_cast<int32_t>(
            kStartDate + (okey - 1) * static_cast<uint64_t>(kEndDate - kStartDate) /
                             std::max<uint64_t>(1, counts.orders - 1));
      } else {
        orderdate = static_cast<int32_t>(rng.Uniform(kStartDate, kEndDate));
      }
      const int64_t lines = rng.Uniform(1, 7);
      int64_t total = 0;
      for (int64_t line = 1; line <= lines; ++line) {
        const uint64_t partkey = static_cast<uint64_t>(rng.Uniform(1, static_cast<int64_t>(counts.part)));
        const int64_t quantity = MakeDecimal(rng.Uniform(1, 50), 0);
        const int64_t extended = DecimalMul(quantity, part_price[partkey]);
        const int32_t shipdate = orderdate + static_cast<int32_t>(rng.Uniform(1, 121));
        lineitem.BeginRow();
        lineitem.SetI64(0, static_cast<int64_t>(okey));
        lineitem.SetI64(1, static_cast<int64_t>(partkey));
        lineitem.SetI64(2, supplier_for(partkey, static_cast<uint64_t>(rng.Uniform(0, 3))));
        lineitem.SetI64(3, line);
        lineitem.SetDecimal(4, quantity);
        lineitem.SetDecimal(5, extended);
        lineitem.SetDecimal(6, rng.Uniform(0, 10));   // 0.00 .. 0.10
        lineitem.SetDecimal(7, rng.Uniform(0, 8));    // 0.00 .. 0.08
        lineitem.SetString(8, shipdate > kCutoff ? "N" : (rng.Chance(0.5) ? "R" : "A"));
        lineitem.SetString(9, shipdate > kCutoff ? "O" : "F");
        lineitem.SetDate(10, shipdate);
        lineitem.SetDate(11, orderdate + static_cast<int32_t>(rng.Uniform(30, 90)));
        lineitem.SetDate(12, shipdate + static_cast<int32_t>(rng.Uniform(1, 30)));
        lineitem.SetString(13, kShipModes[static_cast<size_t>(rng.Uniform(0, 6))]);
        lineitem.SetString(14, kShipInstructs[static_cast<size_t>(rng.Uniform(0, 3))]);
        total += extended;
        ++lineitem_rows;
      }
      orders.BeginRow();
      orders.SetI64(0, static_cast<int64_t>(okey));
      orders.SetI64(1, rng.Uniform(1, static_cast<int64_t>(counts.customer)));
      orders.SetString(2, orderdate > kCutoff ? "O" : "F");
      orders.SetDecimal(3, total);
      orders.SetDate(4, orderdate);
      orders.SetString(5, kPriorities[static_cast<size_t>(rng.Uniform(0, 4))]);
      orders.SetI64(6, 0);
      // lineitem is generated per order, so it is naturally clustered on l_orderkey.
    }
    db.AddTable(orders.Finish());
    db.AddTable(lineitem.Finish());
  }
  counts.lineitem = lineitem_rows;
  return counts;
}

}  // namespace dfp
