// Deterministic TPC-H-style synthetic data generator.
//
// Generates the eight TPC-H tables with spec-shaped schemas and distributions at a configurable
// scale (scale 1.0 corresponds to TPC-H SF1 row counts; the default simulation-friendly scale is
// much smaller). Substitution note (cf. DESIGN.md): this replaces dbgen; value distributions are
// simplified but preserve the join cardinalities (dense keys, PK-FK relationships) and the
// selectivity behaviour of the predicates used by the query suite.
#ifndef DFP_SRC_TPCH_DATAGEN_H_
#define DFP_SRC_TPCH_DATAGEN_H_

#include <cstdint>

#include "src/engine/database.h"

namespace dfp {

struct TpchOptions {
  double scale = 0.01;  // Fraction of TPC-H SF1 row counts.
  uint64_t seed = 19920401;
  // When set, o_orderdate grows monotonically with o_orderkey. Used by the Figure 11
  // reproduction: lineitem is clustered on l_orderkey, so a date filter on orders makes probe
  // matches arrive clustered in time (all matches first, then none).
  bool correlated_order_dates = false;
};

struct TpchRowCounts {
  uint64_t region = 5;
  uint64_t nation = 25;
  uint64_t supplier = 0;
  uint64_t customer = 0;
  uint64_t part = 0;
  uint64_t partsupp = 0;
  uint64_t orders = 0;
  uint64_t lineitem = 0;  // Approximate (lines per order vary).
};

TpchRowCounts TpchCountsForScale(double scale);

// Generates all eight tables into `db`. Returns the actual row counts.
TpchRowCounts GenerateTpch(Database& db, const TpchOptions& options = TpchOptions());

}  // namespace dfp

#endif  // DFP_SRC_TPCH_DATAGEN_H_
