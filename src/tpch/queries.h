// The TPC-H-derived query suite used by the evaluation experiments.
//
// Most queries are SQL texts bound through the SQL front end; a few use the plan-builder API for
// features the SQL subset does not express (semi/anti joins replacing EXISTS subqueries, the
// paper's hand-ordered plans). Substitution note (cf. DESIGN.md): queries whose original TPC-H
// form needs correlated subqueries are represented by simplified variants with the same operator
// mix; the suite's purpose — exercising every operator and feeding the attribution statistics of
// Table 2 — is preserved.
#ifndef DFP_SRC_TPCH_QUERIES_H_
#define DFP_SRC_TPCH_QUERIES_H_

#include <functional>
#include <string>
#include <vector>

#include "src/engine/database.h"
#include "src/plan/physical.h"

namespace dfp {

struct QuerySpec {
  std::string name;
  std::string description;
  std::string sql;  // Empty for plan-built queries.
  std::function<PhysicalOpPtr(Database&)> build;  // Used when sql is empty.
  bool ordered_result = false;  // Result comparison must respect row order.
};

// All queries of the suite.
const std::vector<QuerySpec>& TpchQuerySuite();

// Looks up a query by name; throws dfp::Error if absent.
const QuerySpec& FindQuery(const std::string& name);

// Produces the physical plan for a query (parsing + binding SQL queries).
PhysicalOpPtr BuildQueryPlan(Database& db, const QuerySpec& spec);

// The paper's Figure 9 use-case query (lineitem x orders, avg per orderkey).
PhysicalOpPtr BuildFig9Plan(Database& db);

// The paper's Figure 10 plans: the optimizer's choice (probe partsupp first) and the faster
// alternative (probe orders first). Both join lineitem with orders (date-filtered) and partsupp.
PhysicalOpPtr BuildFig10OptimizerPlan(Database& db, int32_t date_cutoff);
PhysicalOpPtr BuildFig10AlternativePlan(Database& db, int32_t date_cutoff);

}  // namespace dfp

#endif  // DFP_SRC_TPCH_QUERIES_H_
