#include "src/tpch/queries.h"

#include "src/plan/builder.h"
#include "src/sql/binder.h"
#include "src/util/check.h"
#include "src/util/date.h"

namespace dfp {
namespace {

// Q4 variant: EXISTS becomes a semi join (same operator mix as the original).
PhysicalOpPtr BuildQ4SemiJoin(Database& db) {
  PlanBuilder late = PlanBuilder::Scan(db.table("lineitem"));
  late.FilterBy(MakeBinary(BinOp::kLt, late.Col("l_commitdate"), late.Col("l_receiptdate")));
  PlanBuilder orders = PlanBuilder::Scan(db.table("orders"));
  orders.FilterBy(MakeBinary(
      BinOp::kAnd,
      MakeBinary(BinOp::kGe, orders.Col("o_orderdate"),
                 MakeLiteral(ColumnType::kDate, ParseDate("1993-07-01"))),
      MakeBinary(BinOp::kLt, orders.Col("o_orderdate"),
                 MakeLiteral(ColumnType::kDate, ParseDate("1993-10-01")))));
  orders.JoinWith(std::move(late), {"o_orderkey"}, {"l_orderkey"}, {}, JoinType::kSemi,
                  "SemiJoin lineitem");
  orders.GroupByKeys({"o_orderpriority"},
                     NamedExprs("order_count", MakeAggregate(AggOp::kCountStar, nullptr)));
  orders.OrderBy({{"o_orderpriority", false}});
  return orders.Build();
}

// Q22 variant: customers without recent orders (anti join), counted per nation.
PhysicalOpPtr BuildQ22AntiJoin(Database& db) {
  PlanBuilder orders = PlanBuilder::Scan(db.table("orders"));
  orders.FilterBy(MakeBinary(BinOp::kGe, orders.Col("o_orderdate"),
                             MakeLiteral(ColumnType::kDate, ParseDate("1998-01-01"))));
  PlanBuilder customers = PlanBuilder::Scan(db.table("customer"));
  customers.FilterBy(MakeBinary(BinOp::kGt, customers.Col("c_acctbal"),
                                MakeLiteral(ColumnType::kDecimal, 0)));
  customers.JoinWith(std::move(orders), {"c_custkey"}, {"o_custkey"}, {}, JoinType::kAnti,
                     "AntiJoin orders");
  customers.GroupByKeys(
      {"c_nationkey"},
      NamedExprs("numcust", MakeAggregate(AggOp::kCountStar, nullptr), "totacctbal",
                 MakeAggregate(AggOp::kSum, customers.Col("c_acctbal"))));
  customers.OrderBy({{"c_nationkey", false}});
  return customers.Build();
}

// Groupjoin showcase: per-supplier sales statistics using the fused operator (Section 5.4).
PhysicalOpPtr BuildGroupJoinQuery(Database& db) {
  PlanBuilder suppliers = PlanBuilder::Scan(db.table("supplier"));
  PlanBuilder lineitem = PlanBuilder::Scan(db.table("lineitem"));
  lineitem.GroupJoinWith(std::move(suppliers), {"l_suppkey"}, {"s_suppkey"},
                         {"s_suppkey", "s_name"},
                         NamedExprs("parts", MakeAggregate(AggOp::kCountStar, nullptr),
                                    "revenue",
                                    MakeAggregate(AggOp::kSum, lineitem.Col("l_extendedprice"))),
                         "GroupJoin supplier");
  return lineitem.Build();
}

std::vector<QuerySpec> BuildSuite() {
  std::vector<QuerySpec> suite;

  suite.push_back({"q1", "pricing summary report (aggregation-heavy)",
                   "select l_returnflag, l_linestatus, "
                   "sum(l_quantity) as sum_qty, "
                   "sum(l_extendedprice) as sum_base_price, "
                   "sum(l_extendedprice * (1 - l_discount)) as sum_disc_price, "
                   "sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) as sum_charge, "
                   "avg(l_quantity) as avg_qty, "
                   "avg(l_extendedprice) as avg_price, "
                   "avg(l_discount) as avg_disc, "
                   "count(*) as count_order "
                   "from lineitem "
                   "where l_shipdate <= date '1998-09-02' "
                   "group by l_returnflag, l_linestatus "
                   "order by l_returnflag, l_linestatus",
                   nullptr, true});

  suite.push_back({"q3", "shipping priority (3-way join, top-k)",
                   "select l_orderkey, "
                   "sum(l_extendedprice * (1 - l_discount)) as revenue, "
                   "o_orderdate, o_shippriority "
                   "from customer, orders, lineitem "
                   "where c_mktsegment = 'BUILDING' "
                   "and c_custkey = o_custkey and l_orderkey = o_orderkey "
                   "and o_orderdate < date '1995-03-15' and l_shipdate > date '1995-03-15' "
                   "group by l_orderkey, o_orderdate, o_shippriority "
                   "order by revenue desc, o_orderdate "
                   "limit 10",
                   nullptr, true});

  suite.push_back({"q4", "order priority checking (EXISTS as semi join)", "", BuildQ4SemiJoin,
                   true});

  suite.push_back({"q5", "local supplier volume (6-way join)",
                   "select n_name, sum(l_extendedprice * (1 - l_discount)) as revenue "
                   "from customer, orders, lineitem, supplier, nation, region "
                   "where c_custkey = o_custkey and l_orderkey = o_orderkey "
                   "and l_suppkey = s_suppkey and c_nationkey = s_nationkey "
                   "and s_nationkey = n_nationkey and n_regionkey = r_regionkey "
                   "and r_name = 'ASIA' "
                   "and o_orderdate >= date '1994-01-01' and o_orderdate < date '1995-01-01' "
                   "group by n_name "
                   "order by revenue desc",
                   nullptr, true});

  suite.push_back({"q6", "forecasting revenue change (selective scan)",
                   "select sum(l_extendedprice * l_discount) as revenue "
                   "from lineitem "
                   "where l_shipdate >= date '1994-01-01' and l_shipdate < date '1995-01-01' "
                   "and l_discount between 0.05 and 0.07 and l_quantity < 24",
                   nullptr, false});

  suite.push_back({"q10", "returned item reporting (4-way join, top-k)",
                   "select c_custkey, c_name, "
                   "sum(l_extendedprice * (1 - l_discount)) as revenue, c_acctbal, n_name "
                   "from customer, orders, lineitem, nation "
                   "where c_custkey = o_custkey and l_orderkey = o_orderkey "
                   "and o_orderdate >= date '1993-10-01' and o_orderdate < date '1994-01-01' "
                   "and l_returnflag = 'R' and c_nationkey = n_nationkey "
                   "group by c_custkey, c_name, c_acctbal, n_name "
                   "order by revenue desc "
                   "limit 20",
                   nullptr, true});

  suite.push_back({"q12", "shipping modes and order priority (CASE aggregation)",
                   "select l_shipmode, "
                   "sum(case when o_orderpriority = '1-URGENT' or o_orderpriority = '2-HIGH' "
                   "then 1 else 0 end) as high_line_count, "
                   "sum(case when o_orderpriority <> '1-URGENT' and o_orderpriority <> '2-HIGH' "
                   "then 1 else 0 end) as low_line_count "
                   "from orders, lineitem "
                   "where o_orderkey = l_orderkey "
                   "and l_shipmode in ('MAIL', 'SHIP') "
                   "and l_commitdate < l_receiptdate and l_shipdate < l_commitdate "
                   "and l_receiptdate >= date '1994-01-01' and l_receiptdate < date '1995-01-01' "
                   "group by l_shipmode "
                   "order by l_shipmode",
                   nullptr, true});

  suite.push_back({"q14", "promotion effect (LIKE + post-aggregation arithmetic)",
                   "select 100.00 * sum(case when p_type like 'PROMO%' "
                   "then l_extendedprice * (1 - l_discount) else 0.00 end) "
                   "/ sum(l_extendedprice * (1 - l_discount)) as promo_revenue "
                   "from lineitem, part "
                   "where l_partkey = p_partkey "
                   "and l_shipdate >= date '1995-09-01' and l_shipdate < date '1995-10-01'",
                   nullptr, false});

  suite.push_back({"q18", "large volume customer (HAVING on aggregate)",
                   "select c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice, "
                   "sum(l_quantity) as total_qty "
                   "from customer, orders, lineitem "
                   "where o_orderkey = l_orderkey and c_custkey = o_custkey "
                   "group by c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice "
                   "having sum(l_quantity) > 150 "
                   "order by o_totalprice desc, o_orderdate "
                   "limit 100",
                   nullptr, true});

  suite.push_back({"q19", "discounted revenue (disjunctive cross-table predicate)",
                   "select sum(l_extendedprice * (1 - l_discount)) as revenue "
                   "from lineitem, part "
                   "where p_partkey = l_partkey "
                   "and ((p_brand = 'Brand#12' and l_quantity between 1 and 11) "
                   "or (p_brand = 'Brand#23' and l_quantity between 10 and 20) "
                   "or (p_brand = 'Brand#34' and l_quantity between 20 and 30))",
                   nullptr, false});

  suite.push_back({"q7", "volume shipping (year() extraction, per-year grouping)",
                   "select n_name, year(l_shipdate) as l_year, "
                   "sum(l_extendedprice * (1 - l_discount)) as revenue "
                   "from supplier, lineitem, orders, nation "
                   "where s_suppkey = l_suppkey and o_orderkey = l_orderkey "
                   "and s_nationkey = n_nationkey "
                   "and l_shipdate between date '1995-01-01' and date '1996-12-31' "
                   "and (n_name = 'FRANCE' or n_name = 'GERMANY') "
                   "group by n_name, year(l_shipdate) "
                   "order by n_name, l_year",
                   nullptr, true});

  suite.push_back({"q8", "national market share (CASE share of a computed-year group)",
                   "select year(o_orderdate) as o_year, "
                   "sum(case when n_name = 'BRAZIL' then l_extendedprice * (1 - l_discount) "
                   "else 0.00 end) / sum(l_extendedprice * (1 - l_discount)) as mkt_share "
                   "from part, supplier, lineitem, orders, nation "
                   "where p_partkey = l_partkey and s_suppkey = l_suppkey "
                   "and l_orderkey = o_orderkey and s_nationkey = n_nationkey "
                   "and o_orderdate between date '1995-01-01' and date '1996-12-31' "
                   "and p_type = 'ECONOMY ANODIZED STEEL' "
                   "group by year(o_orderdate) "
                   "order by o_year",
                   nullptr, true});

  suite.push_back({"q16", "parts/supplier relationship (DISTINCT)",
                   "select distinct p_brand, p_type, p_size "
                   "from part, partsupp "
                   "where p_partkey = ps_partkey "
                   "and p_size in (1, 14, 23, 45, 19, 3, 36, 9) "
                   "and p_brand <> 'Brand#45' "
                   "order by p_brand, p_type, p_size "
                   "limit 40",
                   nullptr, true});

  suite.push_back({"q22", "global sales opportunity (anti join)", "", BuildQ22AntiJoin, true});

  suite.push_back({"qgj", "per-supplier statistics (fused groupjoin)", "", BuildGroupJoinQuery,
                   false});

  suite.push_back({"fig9", "paper Figure 9 use-case query",
                   "select l_orderkey, avg(l_extendedprice) as avg_price "
                   "from lineitem, orders "
                   "where o_orderdate < date '1995-04-01' and o_orderkey = l_orderkey "
                   "group by l_orderkey",
                   nullptr, false});

  return suite;
}

}  // namespace

const std::vector<QuerySpec>& TpchQuerySuite() {
  static const std::vector<QuerySpec> kSuite = BuildSuite();
  return kSuite;
}

const QuerySpec& FindQuery(const std::string& name) {
  for (const QuerySpec& spec : TpchQuerySuite()) {
    if (spec.name == name) {
      return spec;
    }
  }
  throw Error("unknown query: '" + name + "'");
}

PhysicalOpPtr BuildQueryPlan(Database& db, const QuerySpec& spec) {
  if (!spec.sql.empty()) {
    return PlanSql(db, spec.sql);
  }
  DFP_CHECK(spec.build != nullptr);
  return spec.build(db);
}

PhysicalOpPtr BuildFig9Plan(Database& db) {
  PlanBuilder orders = PlanBuilder::Scan(db.table("orders"));
  orders.FilterBy(MakeBinary(BinOp::kLt, orders.Col("o_orderdate"),
                             MakeLiteral(ColumnType::kDate, ParseDate("1995-04-01"))),
                  "Filter o_orderdate");
  PlanBuilder lineitem = PlanBuilder::Scan(db.table("lineitem"));
  lineitem.JoinWith(std::move(orders), {"l_orderkey"}, {"o_orderkey"}, {}, JoinType::kInner,
                    "HashJoin orders");
  lineitem.GroupByKeys(
      {"l_orderkey"},
      NamedExprs("avg_price", MakeAggregate(AggOp::kAvg, lineitem.Col("l_extendedprice"))),
      "GroupBy l_orderkey");
  return lineitem.Build();
}

namespace {

// Shared tail of the Figure 10 plans: aggregate the joined stream.
void FinishFig10(PlanBuilder& lineitem) {
  lineitem.GroupByKeys(
      {"l_suppkey"},
      NamedExprs("qty", MakeAggregate(AggOp::kSum, lineitem.Col("l_quantity"))),
      "GroupBy");
}

}  // namespace

PhysicalOpPtr BuildFig10OptimizerPlan(Database& db, int32_t date_cutoff) {
  // Optimizer's choice: probe the smaller hash table (partsupp, filtered) first, orders second.
  PlanBuilder partsupp = PlanBuilder::Scan(db.table("partsupp"));
  partsupp.FilterBy(MakeBinary(BinOp::kEq,
                               MakeBinary(BinOp::kRem, partsupp.Col("ps_suppkey"),
                                          MakeLiteral(ColumnType::kInt64, 2)),
                               MakeLiteral(ColumnType::kInt64, 0)),
                    "Filter partsupp");
  PlanBuilder orders = PlanBuilder::Scan(db.table("orders"));
  orders.FilterBy(MakeBinary(BinOp::kLt, orders.Col("o_orderdate"),
                             MakeLiteral(ColumnType::kDate, date_cutoff)),
                  "Filter o_orderdate");
  PlanBuilder lineitem = PlanBuilder::Scan(db.table("lineitem"));
  lineitem.JoinWith(std::move(partsupp), {"l_partkey", "l_suppkey"},
                    {"ps_partkey", "ps_suppkey"}, {}, JoinType::kInner, "Join part.");
  lineitem.JoinWith(std::move(orders), {"l_orderkey"}, {"o_orderkey"}, {}, JoinType::kInner,
                    "Join ord.");
  FinishFig10(lineitem);
  return lineitem.Build();
}

PhysicalOpPtr BuildFig10AlternativePlan(Database& db, int32_t date_cutoff) {
  // Alternative: probe orders (selective date filter) first, partsupp second.
  PlanBuilder partsupp = PlanBuilder::Scan(db.table("partsupp"));
  partsupp.FilterBy(MakeBinary(BinOp::kEq,
                               MakeBinary(BinOp::kRem, partsupp.Col("ps_suppkey"),
                                          MakeLiteral(ColumnType::kInt64, 2)),
                               MakeLiteral(ColumnType::kInt64, 0)),
                    "Filter partsupp");
  PlanBuilder orders = PlanBuilder::Scan(db.table("orders"));
  orders.FilterBy(MakeBinary(BinOp::kLt, orders.Col("o_orderdate"),
                             MakeLiteral(ColumnType::kDate, date_cutoff)),
                  "Filter o_orderdate");
  PlanBuilder lineitem = PlanBuilder::Scan(db.table("lineitem"));
  lineitem.JoinWith(std::move(orders), {"l_orderkey"}, {"o_orderkey"}, {}, JoinType::kInner,
                    "Join ord.");
  lineitem.JoinWith(std::move(partsupp), {"l_partkey", "l_suppkey"},
                    {"ps_partkey", "ps_suppkey"}, {}, JoinType::kInner, "Join part.");
  FinishFig10(lineitem);
  return lineitem.Build();
}

}  // namespace dfp
