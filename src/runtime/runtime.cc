#include "src/runtime/runtime.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>

#include "src/backend/compiler.h"
#include "src/ir/builder.h"
#include "src/runtime/hashtable.h"
#include "src/storage/stringheap.h"
#include "src/util/check.h"
#include "src/util/str.h"
#include "src/vcpu/cpu.h"

namespace dfp {
namespace {

// Runtime function ids live far above any query's id space.
constexpr uint32_t kRuntimeIrIdBase = 1u << 30;

CompileOptions RuntimeCompileOptions() {
  CompileOptions options;
  options.optimize = true;
  // Shared functions must never clobber the tag register: a sample taken inside them has to
  // observe the caller's tag. They are therefore always compiled with r15 reserved.
  options.reserve_tag_register = true;
  return options;
}

}  // namespace

Runtime::Runtime(VMem* mem, CodeMap* code_map, uint32_t hashtable_region)
    : mem_(mem), code_map_(code_map), hashtable_region_(hashtable_region) {
  RegisterKernelFunctions();
  RegisterSyslibFunctions();
  BuildHtInsert();
  BuildHtInsertLocked();
  BuildHtLookup();
}

void Runtime::BuildHtInsert() {
  IrFunction fn("rt_ht_insert", 2);  // r0 = table, r1 = hash
  IrIdAllocator ids(kRuntimeIrIdBase);
  IrBuilder b(&fn, &ids);
  const Value table = Value::Reg(0);
  const Value hash = Value::Reg(1);

  uint32_t entry = b.CreateBlock("entry");
  uint32_t grow = b.CreateBlock("grow");
  uint32_t link = b.CreateBlock("link");

  b.SetInsertPoint(entry);
  uint32_t bump = b.Load(Opcode::kLoad8, table, static_cast<int32_t>(kHtBumpNext), "bump next");
  uint32_t esz = b.Load(Opcode::kLoad8, table, static_cast<int32_t>(kHtEntrySize));
  uint32_t new_bump = b.Add(Value::Reg(bump), Value::Reg(esz));
  uint32_t end = b.Load(Opcode::kLoad8, table, static_cast<int32_t>(kHtBumpEnd));
  uint32_t fits = b.Binary(Opcode::kCmpLe, Value::Reg(new_bump), Value::Reg(end));
  b.CondBr(Value::Reg(fits), link, grow);

  b.SetInsertPoint(grow);
  b.Call(ht_grow_fn_, {table}, /*has_result=*/false, "extend entry space");
  b.Br(entry);

  b.SetInsertPoint(link);
  b.Store(Opcode::kStore8, Value::Reg(new_bump), table, static_cast<int32_t>(kHtBumpNext));
  uint32_t shift = b.Load(Opcode::kLoad8, table, static_cast<int32_t>(kHtDirShift));
  uint32_t index = b.Binary(Opcode::kShr, hash, Value::Reg(shift));
  uint32_t offset = b.Binary(Opcode::kShl, Value::Reg(index), Value::Imm(3));
  uint32_t dir = b.Load(Opcode::kLoad8, table, static_cast<int32_t>(kHtDirBase));
  uint32_t slot = b.Add(Value::Reg(dir), Value::Reg(offset));
  uint32_t head = b.Load(Opcode::kLoad8, Value::Reg(slot), 0, "directory head");
  b.Store(Opcode::kStore8, Value::Reg(head), Value::Reg(bump),
          static_cast<int32_t>(kHtEntryNext));
  b.Store(Opcode::kStore8, hash, Value::Reg(bump), static_cast<int32_t>(kHtEntryHash));
  b.Store(Opcode::kStore8, Value::Reg(bump), Value::Reg(slot), 0, "publish entry");
  uint32_t count = b.Load(Opcode::kLoad8, table, static_cast<int32_t>(kHtCount));
  uint32_t new_count = b.Add(Value::Reg(count), Value::Imm(1));
  b.Store(Opcode::kStore8, Value::Reg(new_count), table, static_cast<int32_t>(kHtCount));
  b.Ret(Value::Reg(bump));

  EmittedFunction emitted = CompileFunction(fn, RuntimeCompileOptions());
  ht_insert_segment_ =
      code_map_->AddSegment(SegmentKind::kRuntime, "rt_ht_insert", std::move(emitted.code));
  ht_insert_fn_ = code_map_->AddFunction("rt_ht_insert", ht_insert_segment_, 0,
                                         emitted.spill_slots, emitted.num_args);
}

void Runtime::BuildHtInsertLocked() {
  // Thread-safe wrapper around rt_ht_insert: takes the stripe lock for the hash before the
  // insert and releases it afterwards. In the simulation workers are interleaved at morsel
  // granularity, so the lock is always free — the spin loop models the uncontended fast path
  // (one locked read-modify-write per insert) and the code structure matches what a real
  // lock-striped build side executes.
  IrFunction fn("rt_ht_insert_locked", 2);  // r0 = table, r1 = hash
  IrIdAllocator ids(kRuntimeIrIdBase + (2u << 20));
  IrBuilder b(&fn, &ids);
  const Value table = Value::Reg(0);
  const Value hash = Value::Reg(1);

  uint32_t entry = b.CreateBlock("entry");
  uint32_t spin = b.CreateBlock("spin");
  uint32_t locked = b.CreateBlock("locked");

  b.SetInsertPoint(entry);
  uint32_t stripe =
      b.Binary(Opcode::kAnd, hash, Value::Imm(static_cast<int64_t>(kHtNumStripes - 1)));
  uint32_t offset = b.Binary(Opcode::kShl, Value::Reg(stripe), Value::Imm(3));
  uint32_t lock_base = b.Add(table, Value::Imm(kHtStripeLocks));
  uint32_t lock_addr = b.Add(Value::Reg(lock_base), Value::Reg(offset));
  b.Br(spin);

  b.SetInsertPoint(spin);
  uint32_t held = b.Load(Opcode::kLoad8, Value::Reg(lock_addr), 0, "acquire stripe lock");
  uint32_t busy = b.CmpNe(Value::Reg(held), Value::Imm(0));
  b.CondBr(Value::Reg(busy), spin, locked);

  b.SetInsertPoint(locked);
  b.Store(Opcode::kStore8, Value::Imm(1), Value::Reg(lock_addr), 0, "lock taken");
  uint32_t new_entry = b.Call(ht_insert_fn_, {table, hash}, /*has_result=*/true,
                              "insert under stripe lock");
  b.Store(Opcode::kStore8, Value::Imm(0), Value::Reg(lock_addr), 0, "release stripe lock");
  b.Ret(Value::Reg(new_entry));

  EmittedFunction emitted = CompileFunction(fn, RuntimeCompileOptions());
  uint32_t segment = code_map_->AddSegment(SegmentKind::kRuntime, "rt_ht_insert_locked",
                                           std::move(emitted.code));
  ht_insert_locked_fn_ = code_map_->AddFunction("rt_ht_insert_locked", segment, 0,
                                                emitted.spill_slots, emitted.num_args);
}

void Runtime::BuildHtLookup() {
  IrFunction fn("rt_ht_lookup", 2);  // r0 = table, r1 = hash
  IrIdAllocator ids(kRuntimeIrIdBase + (1u << 20));
  IrBuilder b(&fn, &ids);
  const Value table = Value::Reg(0);
  const Value hash = Value::Reg(1);

  uint32_t entry = b.CreateBlock("entry");
  uint32_t check = b.CreateBlock("check");
  uint32_t compare = b.CreateBlock("compare");
  uint32_t advance = b.CreateBlock("advance");
  uint32_t found = b.CreateBlock("found");
  uint32_t miss = b.CreateBlock("miss");

  b.SetInsertPoint(entry);
  uint32_t shift = b.Load(Opcode::kLoad8, table, static_cast<int32_t>(kHtDirShift));
  uint32_t index = b.Binary(Opcode::kShr, hash, Value::Reg(shift));
  uint32_t offset = b.Binary(Opcode::kShl, Value::Reg(index), Value::Imm(3));
  uint32_t dir = b.Load(Opcode::kLoad8, table, static_cast<int32_t>(kHtDirBase));
  uint32_t slot = b.Add(Value::Reg(dir), Value::Reg(offset));
  uint32_t cursor = b.Load(Opcode::kLoad8, Value::Reg(slot), 0, "directory lookup");
  b.Br(check);

  b.SetInsertPoint(check);
  uint32_t is_null = b.CmpEq(Value::Reg(cursor), Value::Imm(0));
  b.CondBr(Value::Reg(is_null), miss, compare);

  b.SetInsertPoint(compare);
  uint32_t entry_hash =
      b.Load(Opcode::kLoad8, Value::Reg(cursor), static_cast<int32_t>(kHtEntryHash));
  uint32_t equal = b.CmpEq(Value::Reg(entry_hash), hash);
  b.CondBr(Value::Reg(equal), found, advance);

  b.SetInsertPoint(advance);
  b.Assign(cursor, Opcode::kLoad8, Value::Reg(cursor), Value::None());
  fn.block(advance).instrs.back().disp = static_cast<int32_t>(kHtEntryNext);
  b.Br(check);

  b.SetInsertPoint(found);
  b.Ret(Value::Reg(cursor));

  b.SetInsertPoint(miss);
  b.Ret(Value::Imm(0));

  EmittedFunction emitted = CompileFunction(fn, RuntimeCompileOptions());
  uint32_t segment =
      code_map_->AddSegment(SegmentKind::kRuntime, "rt_ht_lookup", std::move(emitted.code));
  ht_lookup_fn_ =
      code_map_->AddFunction("rt_ht_lookup", segment, 0, emitted.spill_slots, emitted.num_args);
}

void Runtime::RegisterKernelFunctions() {
  // Hash-table growth: allocate a fresh entry chunk. Entry addresses remain stable; only the
  // bump window moves.
  uint32_t grow_segment = code_map_->AddHostSegment(SegmentKind::kKernel, "kernel.ht_grow", 48);
  ht_grow_fn_ = code_map_->AddHostFunction(
      "kernel.ht_grow", grow_segment,
      [this, grow_segment](Cpu& cpu, std::span<const uint64_t> args) -> uint64_t {
        const VAddr table = args[0];
        VMem& mem = cpu.mem();
        const uint64_t entry_size = mem.Read<uint64_t>(table + kHtEntrySize);
        const uint64_t chunk_entries = std::max<uint64_t>(1024, mem.Read<uint64_t>(table + kHtCount));
        const VAddr chunk = mem.Alloc(hashtable_region_, chunk_entries * entry_size);
        mem.Write<uint64_t>(table + kHtBumpNext, chunk);
        mem.Write<uint64_t>(table + kHtBumpEnd, chunk + chunk_entries * entry_size);
        cpu.HostWork(grow_segment, 400 + chunk_entries / 16);
        return 0;
      },
      1);

  // Stable sort of materialized rows by a registered key specification.
  sort_segment_ = code_map_->AddHostSegment(SegmentKind::kKernel, "kernel.sort", 160);
  sort_fn_ = code_map_->AddHostFunction(
      "kernel.sort", sort_segment_,
      [this](Cpu& cpu, std::span<const uint64_t> args) -> uint64_t {
        const VAddr buffer = args[0];
        const uint64_t rows = args[1];
        const SortSpec& spec = sort_specs_.at(args[2]);
        VMem& mem = cpu.mem();
        if (rows > 1) {
          std::vector<uint32_t> order(rows);
          for (uint64_t i = 0; i < rows; ++i) {
            order[i] = static_cast<uint32_t>(i);
          }
          auto key_less = [&](uint32_t lhs, uint32_t rhs) {
            for (const SortKey& key : spec.keys) {
              const VAddr a = buffer + lhs * spec.row_size + static_cast<uint64_t>(key.offset);
              const VAddr b = buffer + rhs * spec.row_size + static_cast<uint64_t>(key.offset);
              int cmp = 0;
              if (key.type == ColumnType::kDouble) {
                const double va = std::bit_cast<double>(mem.Read<uint64_t>(a));
                const double vb = std::bit_cast<double>(mem.Read<uint64_t>(b));
                cmp = va < vb ? -1 : (va > vb ? 1 : 0);
              } else if (key.type == ColumnType::kString) {
                const uint64_t pa = mem.Read<uint64_t>(a);
                const uint64_t pb = mem.Read<uint64_t>(b);
                std::string_view sa{reinterpret_cast<const char*>(mem.Data(StringRefAddr(pa))),
                                    StringRefLen(pa)};
                std::string_view sb{reinterpret_cast<const char*>(mem.Data(StringRefAddr(pb))),
                                    StringRefLen(pb)};
                cmp = sa.compare(sb);
                cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
              } else {
                const int64_t va = mem.Read<int64_t>(a);
                const int64_t vb = mem.Read<int64_t>(b);
                cmp = va < vb ? -1 : (va > vb ? 1 : 0);
              }
              if (cmp != 0) {
                return key.descending ? cmp > 0 : cmp < 0;
              }
            }
            return false;
          };
          std::stable_sort(order.begin(), order.end(), key_less);
          // Apply the permutation through a host-side staging copy.
          std::vector<uint8_t> staging(rows * spec.row_size);
          for (uint64_t i = 0; i < rows; ++i) {
            std::memcpy(staging.data() + i * spec.row_size,
                        mem.Data(buffer + order[i] * spec.row_size), spec.row_size);
          }
          std::memcpy(mem.Data(buffer), staging.data(), staging.size());
        }
        // Modeled cost: comparison-sort work plus the permutation traffic.
        const double logn = rows > 1 ? std::log2(static_cast<double>(rows)) : 1.0;
        cpu.HostWork(sort_segment_,
                     static_cast<uint64_t>(18.0 * static_cast<double>(rows) * logn) +
                         rows * (spec.row_size / 8) * 2);
        for (uint64_t i = 0; i < rows; i += 8) {
          cpu.HostLoad(sort_segment_, buffer + i * spec.row_size);
        }
        return 0;
      },
      3);

  kernel_exec_segment_ = code_map_->AddHostSegment(SegmentKind::kKernel, "kernel.exec", 64);
}

void Runtime::RegisterSyslibFunctions() {
  syslib_segment_ = code_map_->AddHostSegment(SegmentKind::kSyslib, "libc.str", 96);
  str_cmp_fn_ = code_map_->AddHostFunction(
      "sys_str_cmp", syslib_segment_,
      [this](Cpu& cpu, std::span<const uint64_t> args) -> uint64_t {
        VMem& mem = cpu.mem();
        std::string_view a{reinterpret_cast<const char*>(mem.Data(StringRefAddr(args[0]))),
                           StringRefLen(args[0])};
        std::string_view b{reinterpret_cast<const char*>(mem.Data(StringRefAddr(args[1]))),
                           StringRefLen(args[1])};
        cpu.HostWork(syslib_segment_, 10 + std::min(a.size(), b.size()) / 2);
        int cmp = a.compare(b);
        return static_cast<uint64_t>(static_cast<int64_t>(cmp < 0 ? -1 : (cmp > 0 ? 1 : 0)));
      },
      2);
  str_like_fn_ = code_map_->AddHostFunction(
      "sys_str_like", syslib_segment_,
      [this](Cpu& cpu, std::span<const uint64_t> args) -> uint64_t {
        VMem& mem = cpu.mem();
        std::string_view text{reinterpret_cast<const char*>(mem.Data(StringRefAddr(args[0]))),
                              StringRefLen(args[0])};
        const std::string& pattern = patterns_.at(args[1]);
        cpu.HostWork(syslib_segment_, 14 + text.size());
        return LikeMatch(text, pattern) ? 1 : 0;
      },
      2);
}

uint32_t Runtime::RegisterSortSpec(SortSpec spec) {
  DFP_CHECK(spec.row_size > 0);
  sort_specs_.push_back(std::move(spec));
  return static_cast<uint32_t>(sort_specs_.size() - 1);
}

uint32_t Runtime::RegisterPattern(std::string pattern) {
  patterns_.push_back(std::move(pattern));
  return static_cast<uint32_t>(patterns_.size() - 1);
}

}  // namespace dfp
