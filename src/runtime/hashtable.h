// Chaining hash table layout shared between generated code and the host.
//
// This is the paper's canonical "shared source location": every join build and every group-by in
// a query calls the same pre-compiled insert function, so samples landing inside it cannot be
// attributed to an operator without Register Tagging or call-stack sampling.
//
// Layout (all fields 8 bytes, little-endian, addresses are VMem offsets):
//   header:  +0  directory base   +8  directory shift (index = hash >> shift)
//            +16 entry size       +24 bump next (next free entry)
//            +32 bump end         +40 entry count
//            +48 directory slot count (for generated scans over all chains)
//            +56 stripe locks (64 x 8 bytes; taken by rt_ht_insert_locked, stripe = hash & 63)
//   entry:   +0  next entry (0 terminates the chain)
//            +8  hash
//            +16 payload (keys and aggregate state, layout decided by the code generator)
//
// The directory is indexed with the hash's HIGH bits (hash >> shift), matching the generated
// code in the paper's Listing 1 — the crc32+multiply mix has weak low bits.
#ifndef DFP_SRC_RUNTIME_HASHTABLE_H_
#define DFP_SRC_RUNTIME_HASHTABLE_H_

#include <cstdint>
#include <vector>

#include "src/vcpu/vmem.h"

namespace dfp {

inline constexpr int64_t kHtDirBase = 0;
inline constexpr int64_t kHtDirShift = 8;
inline constexpr int64_t kHtEntrySize = 16;
inline constexpr int64_t kHtBumpNext = 24;
inline constexpr int64_t kHtBumpEnd = 32;
inline constexpr int64_t kHtCount = 40;
inline constexpr int64_t kHtDirCount = 48;
inline constexpr int64_t kHtStripeLocks = 56;
inline constexpr uint64_t kHtNumStripes = 64;  // Must be a power of two (stripe = hash & 63).
inline constexpr uint64_t kHtHeaderBytes = 56 + kHtNumStripes * 8;

inline constexpr int64_t kHtEntryNext = 0;
inline constexpr int64_t kHtEntryHash = 8;
inline constexpr int64_t kHtEntryPayload = 16;

// Creates a hash table in `region` with room for exactly `capacity` entries of
// `payload_bytes` payload each. The directory is sized to the next power of two >= capacity.
// Entry memory is zero-initialized (fresh region bytes), so aggregate payloads start at zero.
VAddr CreateHashTable(VMem& mem, uint32_t region, uint64_t capacity, uint64_t payload_bytes);

// Host-side view of a table built by generated code (tests, Volcano interpreter, debugging).
class HashTableView {
 public:
  HashTableView(const VMem& mem, VAddr table) : mem_(mem), table_(table) {}

  uint64_t count() const { return mem_.Read<uint64_t>(table_ + kHtCount); }
  uint64_t entry_size() const { return mem_.Read<uint64_t>(table_ + kHtEntrySize); }

  // Addresses of all entries, enumerated directory-slot by directory-slot (the same order
  // generated table scans over the hash table observe).
  std::vector<VAddr> Entries() const;

  // Addresses of the entries in the chain for `hash`.
  std::vector<VAddr> Chain(uint64_t hash) const;

  uint64_t PayloadU64(VAddr entry, int64_t offset) const {
    return mem_.Read<uint64_t>(entry + kHtEntryPayload + offset);
  }

 private:
  const VMem& mem_;
  VAddr table_;
};

}  // namespace dfp

#endif  // DFP_SRC_RUNTIME_HASHTABLE_H_
