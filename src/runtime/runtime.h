// The engine runtime: pre-compiled shared functions and host-modeled kernel/system-library work.
//
// Three kinds of callables, matching the three sample-attribution classes of the paper's Table 2:
//  - Shared runtime functions (hash-table insert/lookup) are written in VIR and compiled through
//    the same backend as query code. Samples inside them need Register Tagging or call-stack
//    walks to be attributed to an operator.
//  - Kernel functions (sort, hash-table growth, generic engine work) run host-side with modeled
//    costs; their samples attribute to named "kernel tasks".
//  - System-library functions (string compare, LIKE) also run host-side but are NOT covered by
//    tagging — their samples stay unattributed, the paper's missing 2%.
#ifndef DFP_SRC_RUNTIME_RUNTIME_H_
#define DFP_SRC_RUNTIME_RUNTIME_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/storage/types.h"
#include "src/vcpu/code_map.h"
#include "src/vcpu/vmem.h"

namespace dfp {

struct SortKey {
  int64_t offset = 0;  // Byte offset within a materialized row.
  ColumnType type = ColumnType::kInt64;
  bool descending = false;
};

struct SortSpec {
  uint64_t row_size = 0;  // Bytes per materialized row.
  std::vector<SortKey> keys;
};

class Runtime {
 public:
  // Builds and compiles the shared VIR functions, and registers the host segments/functions.
  // `hashtable_region` is where hash-table growth allocates additional entry chunks.
  Runtime(VMem* mem, CodeMap* code_map, uint32_t hashtable_region);

  // rt_ht_insert(table, hash) -> new entry address. The paper's shared source location.
  uint32_t ht_insert_fn() const { return ht_insert_fn_; }
  // rt_ht_insert_locked(table, hash) -> new entry address, taking the table's stripe lock
  // (stripe = hash & 63) around the insert. Parallel pipelines call this variant so concurrent
  // workers never race on the bump allocator or a directory chain.
  uint32_t ht_insert_locked_fn() const { return ht_insert_locked_fn_; }
  // rt_ht_lookup(table, hash) -> first chain entry with that hash, or 0.
  uint32_t ht_lookup_fn() const { return ht_lookup_fn_; }

  // kernel_sort(buffer, row_count, spec_id): stable sort of materialized rows.
  uint32_t sort_fn() const { return sort_fn_; }
  // Generic kernel work segment for engine bookkeeping (query state setup, buffer management).
  uint32_t kernel_exec_segment() const { return kernel_exec_segment_; }

  // sys_str_cmp(a, b) -> -1/0/1 and sys_str_like(s, pattern_id) -> 0/1.
  uint32_t str_cmp_fn() const { return str_cmp_fn_; }
  uint32_t str_like_fn() const { return str_like_fn_; }

  // Registers a sort specification / LIKE pattern; returns the id passed to the host function.
  uint32_t RegisterSortSpec(SortSpec spec);
  uint32_t RegisterPattern(std::string pattern);

  // Machine-code segments of the compiled shared functions (for listings and tests).
  uint32_t ht_insert_segment() const { return ht_insert_segment_; }

 private:
  void BuildHtInsert();
  void BuildHtInsertLocked();
  void BuildHtLookup();
  void RegisterKernelFunctions();
  void RegisterSyslibFunctions();

  VMem* mem_;
  CodeMap* code_map_;
  uint32_t hashtable_region_;

  uint32_t ht_insert_fn_ = 0;
  uint32_t ht_insert_segment_ = 0;
  uint32_t ht_insert_locked_fn_ = 0;
  uint32_t ht_lookup_fn_ = 0;
  uint32_t sort_fn_ = 0;
  uint32_t ht_grow_fn_ = 0;
  uint32_t kernel_exec_segment_ = 0;
  uint32_t str_cmp_fn_ = 0;
  uint32_t str_like_fn_ = 0;
  uint32_t sort_segment_ = 0;
  uint32_t syslib_segment_ = 0;

  std::vector<SortSpec> sort_specs_;
  std::vector<std::string> patterns_;
};

}  // namespace dfp

#endif  // DFP_SRC_RUNTIME_RUNTIME_H_
