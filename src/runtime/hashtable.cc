#include "src/runtime/hashtable.h"

#include <bit>

#include "src/util/check.h"

namespace dfp {

VAddr CreateHashTable(VMem& mem, uint32_t region, uint64_t capacity, uint64_t payload_bytes) {
  DFP_CHECK(capacity > 0);
  const uint64_t entry_size = (kHtEntryPayload + payload_bytes + 7) & ~7ull;
  const uint64_t dir_size = std::bit_ceil(std::max<uint64_t>(capacity, 8));
  const uint64_t dir_shift = 64 - static_cast<uint64_t>(std::countr_zero(dir_size));

  VAddr table = mem.Alloc(region, kHtHeaderBytes);
  VAddr directory = mem.Alloc(region, dir_size * 8);
  VAddr entries = mem.Alloc(region, capacity * entry_size);

  mem.Write<uint64_t>(table + kHtDirBase, directory);
  mem.Write<uint64_t>(table + kHtDirShift, dir_shift);
  mem.Write<uint64_t>(table + kHtEntrySize, entry_size);
  mem.Write<uint64_t>(table + kHtBumpNext, entries);
  mem.Write<uint64_t>(table + kHtBumpEnd, entries + capacity * entry_size);
  mem.Write<uint64_t>(table + kHtCount, 0);
  mem.Write<uint64_t>(table + kHtDirCount, dir_size);
  return table;
}

std::vector<VAddr> HashTableView::Entries() const {
  std::vector<VAddr> out;
  const VAddr directory = mem_.Read<uint64_t>(table_ + kHtDirBase);
  const uint64_t slots = mem_.Read<uint64_t>(table_ + kHtDirCount);
  for (uint64_t slot = 0; slot < slots; ++slot) {
    VAddr entry = mem_.Read<uint64_t>(directory + slot * 8);
    while (entry != 0) {
      out.push_back(entry);
      entry = mem_.Read<uint64_t>(entry + kHtEntryNext);
    }
  }
  return out;
}

std::vector<VAddr> HashTableView::Chain(uint64_t hash) const {
  std::vector<VAddr> out;
  const uint64_t shift = mem_.Read<uint64_t>(table_ + kHtDirShift);
  const VAddr directory = mem_.Read<uint64_t>(table_ + kHtDirBase);
  VAddr entry = mem_.Read<uint64_t>(directory + (hash >> shift) * 8);
  while (entry != 0) {
    out.push_back(entry);
    entry = mem_.Read<uint64_t>(entry + kHtEntryNext);
  }
  return out;
}

}  // namespace dfp
