// Optimization passes over VIR functions.
//
// Each pass preserves semantics (property-tested against the IR interpreter) and reports code
// motion to the LineageListener so the Tagging Dictionary stays consistent (Table 1).
#ifndef DFP_SRC_BACKEND_PASSES_H_
#define DFP_SRC_BACKEND_PASSES_H_

#include "src/backend/lineage.h"
#include "src/ir/instr.h"

namespace dfp {

// Folds constant expressions and propagates constants within blocks. Folded instructions become
// kConst in place (same id); instructions that become dead are left for DCE.
// Returns the number of instructions changed.
int ConstantFoldPass(IrFunction& function, LineageListener* lineage);

// Algebraic simplifications and instruction fusing: strength reduction (multiply by a power of
// two becomes a shift), identity elimination, and folding of address arithmetic into load/store
// displacements. Absorbing rewrites are reported via OnAbsorb.
int CombineInstrsPass(IrFunction& function, LineageListener* lineage);

// Per-block common subexpression elimination via local value numbering. The duplicate
// computation becomes a register move; the surviving instruction absorbs the duplicate's owners.
int CommonSubexprPass(IrFunction& function, LineageListener* lineage);

// Removes instructions whose results are never observed. Removals are reported via OnRemove.
int DeadCodeElimPass(IrFunction& function, LineageListener* lineage);

// Standard pipeline: combine, fold, CSE, then DCE to a fixpoint.
void RunOptimizationPipeline(IrFunction& function, LineageListener* lineage);

}  // namespace dfp

#endif  // DFP_SRC_BACKEND_PASSES_H_
