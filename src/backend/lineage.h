// Lineage notifications emitted by optimization passes.
//
// The Tagging Dictionary subscribes to these to stay correct under code transformations,
// implementing the update rules of Table 1 in the paper: eliminated instructions are dropped,
// and an instruction that absorbs another's work (instruction fusing, CSE) inherits the absorbed
// instruction's higher-level owners.
#ifndef DFP_SRC_BACKEND_LINEAGE_H_
#define DFP_SRC_BACKEND_LINEAGE_H_

#include <cstdint>

namespace dfp {

class LineageListener {
 public:
  virtual ~LineageListener() = default;

  // `ir_id` was eliminated (dead code, constant folding). It can no longer be sampled.
  virtual void OnRemove(uint32_t ir_id) { (void)ir_id; }

  // `kept_id` now performs work that previously belonged to `absorbed_id` (instruction fusing,
  // common subexpression elimination). Samples on `kept_id` belong to the owners of both.
  virtual void OnAbsorb(uint32_t kept_id, uint32_t absorbed_id) {
    (void)kept_id;
    (void)absorbed_id;
  }
};

}  // namespace dfp

#endif  // DFP_SRC_BACKEND_LINEAGE_H_
