#include "src/backend/passes.h"

#include <bit>
#include <map>
#include <optional>
#include <unordered_map>
#include <utility>

#include "src/backend/liveness.h"
#include "src/util/check.h"
#include "src/util/hash.h"

namespace dfp {
namespace {

inline int64_t S(uint64_t v) { return static_cast<int64_t>(v); }
inline double D(uint64_t v) { return std::bit_cast<double>(v); }
inline uint64_t FromD(double v) { return std::bit_cast<uint64_t>(v); }

inline uint64_t RotateRight(uint64_t value, uint64_t amount) {
  amount &= 63u;
  if (amount == 0) {
    return value;
  }
  return (value >> amount) | (value << (64 - amount));
}

// Compile-time evaluation of a pure operation on constant operands.
std::optional<uint64_t> EvalPure(Opcode op, uint64_t a, uint64_t b) {
  switch (op) {
    case Opcode::kMov:
    case Opcode::kConst:
      return a;
    case Opcode::kAdd:
      return a + b;
    case Opcode::kSub:
      return a - b;
    case Opcode::kMul:
      return a * b;
    case Opcode::kDiv:
      if (b == 0) {
        return std::nullopt;  // Keep the runtime trap.
      }
      return static_cast<uint64_t>(S(a) / S(b));
    case Opcode::kRem:
      if (b == 0) {
        return std::nullopt;
      }
      return static_cast<uint64_t>(S(a) % S(b));
    case Opcode::kAnd:
      return a & b;
    case Opcode::kOr:
      return a | b;
    case Opcode::kXor:
      return a ^ b;
    case Opcode::kShl:
      return a << (b & 63);
    case Opcode::kShr:
      return a >> (b & 63);
    case Opcode::kRotr:
      return RotateRight(a, b);
    case Opcode::kNot:
      return ~a;
    case Opcode::kNeg:
      return static_cast<uint64_t>(-S(a));
    case Opcode::kCmpEq:
      return static_cast<uint64_t>(a == b);
    case Opcode::kCmpNe:
      return static_cast<uint64_t>(a != b);
    case Opcode::kCmpLt:
      return static_cast<uint64_t>(S(a) < S(b));
    case Opcode::kCmpLe:
      return static_cast<uint64_t>(S(a) <= S(b));
    case Opcode::kCmpGt:
      return static_cast<uint64_t>(S(a) > S(b));
    case Opcode::kCmpGe:
      return static_cast<uint64_t>(S(a) >= S(b));
    case Opcode::kFAdd:
      return FromD(D(a) + D(b));
    case Opcode::kFSub:
      return FromD(D(a) - D(b));
    case Opcode::kFMul:
      return FromD(D(a) * D(b));
    case Opcode::kFDiv:
      return FromD(D(a) / D(b));
    case Opcode::kFNeg:
      return FromD(-D(a));
    case Opcode::kFCmpEq:
      return static_cast<uint64_t>(D(a) == D(b));
    case Opcode::kFCmpNe:
      return static_cast<uint64_t>(D(a) != D(b));
    case Opcode::kFCmpLt:
      return static_cast<uint64_t>(D(a) < D(b));
    case Opcode::kFCmpLe:
      return static_cast<uint64_t>(D(a) <= D(b));
    case Opcode::kFCmpGt:
      return static_cast<uint64_t>(D(a) > D(b));
    case Opcode::kFCmpGe:
      return static_cast<uint64_t>(D(a) >= D(b));
    case Opcode::kSiToFp:
      return FromD(static_cast<double>(S(a)));
    case Opcode::kFpToSi:
      return static_cast<uint64_t>(static_cast<int64_t>(D(a)));
    case Opcode::kCrc32:
      return Crc32u64(static_cast<uint32_t>(a), b);
    default:
      return std::nullopt;
  }
}

// True for operations that read only operand `a`.
bool IsUnary(Opcode op) {
  switch (op) {
    case Opcode::kMov:
    case Opcode::kNot:
    case Opcode::kNeg:
    case Opcode::kFNeg:
    case Opcode::kSiToFp:
    case Opcode::kFpToSi:
      return true;
    default:
      return false;
  }
}

}  // namespace

int ConstantFoldPass(IrFunction& function, LineageListener* lineage) {
  (void)lineage;  // Folding keeps instruction ids in place; nothing to report.
  int changed = 0;
  for (IrBlock& block : function.blocks()) {
    // Known constant values of virtual registers within this block.
    std::unordered_map<uint32_t, int64_t> constants;
    for (IrInstr& instr : block.instrs) {
      // Substitute known-constant register operands with immediates.
      auto substitute = [&](Value& value) {
        if (value.IsReg()) {
          auto it = constants.find(value.vreg);
          if (it != constants.end()) {
            value = Value::Imm(it->second);
            ++changed;
          }
        }
      };
      substitute(instr.a);
      substitute(instr.b);
      substitute(instr.c);
      for (Value& arg : instr.args) {
        substitute(arg);
      }

      // Fold the instruction itself when all inputs are immediates. Parameterized immediates
      // (plan literals) are runtime values subject to patching — never bake them into results.
      if (IsFoldable(instr) && instr.a.IsImm() && !instr.a.IsParam() &&
          (IsUnary(instr.op) || (instr.b.IsImm() && !instr.b.IsParam()))) {
        std::optional<uint64_t> folded = EvalPure(instr.op, static_cast<uint64_t>(instr.a.imm),
                                                  instr.b.IsImm()
                                                      ? static_cast<uint64_t>(instr.b.imm)
                                                      : 0);
        if (folded.has_value()) {
          instr.op = Opcode::kConst;
          instr.a = Value::Imm(static_cast<int64_t>(*folded));
          instr.b = Value::None();
          instr.c = Value::None();
          ++changed;
        }
      }
      // Select with a constant condition degenerates to a move.
      if (instr.op == Opcode::kSelect && instr.a.IsImm() && !instr.a.IsParam()) {
        Value chosen = instr.a.imm != 0 ? instr.b : instr.c;
        instr.op = Opcode::kMov;
        instr.a = chosen;
        instr.b = Value::None();
        instr.c = Value::None();
        ++changed;
      }

      // Track constant definitions; any other definition invalidates. Parameterized constants
      // are not propagated: their register is the single patchable definition site.
      if (instr.HasDst()) {
        if (instr.op == Opcode::kConst && !instr.a.IsParam()) {
          constants[instr.dst] = instr.a.imm;
        } else {
          constants.erase(instr.dst);
        }
      }
    }
  }
  return changed;
}

int CombineInstrsPass(IrFunction& function, LineageListener* lineage) {
  int changed = 0;
  for (IrBlock& block : function.blocks()) {
    // Most recent in-block definition index of each vreg, for safe address folding.
    std::unordered_map<uint32_t, size_t> last_def;
    for (size_t i = 0; i < block.instrs.size(); ++i) {
      IrInstr& instr = block.instrs[i];

      // Strength reduction and identities on integer operations with immediate second operand.
      // Parameterized immediates are exempt: rewriting `mul x, 8` into `shl x, 3` would change
      // what a later literal patch of that immediate means.
      if (instr.b.IsImm() && !instr.b.IsParam() && instr.HasDst()) {
        const int64_t imm = instr.b.imm;
        if (instr.op == Opcode::kMul && imm > 0 && (imm & (imm - 1)) == 0) {
          instr.op = Opcode::kShl;
          instr.b = Value::Imm(std::countr_zero(static_cast<uint64_t>(imm)));
          ++changed;
        } else if ((instr.op == Opcode::kAdd || instr.op == Opcode::kSub ||
                    instr.op == Opcode::kOr || instr.op == Opcode::kXor ||
                    instr.op == Opcode::kShl || instr.op == Opcode::kShr) &&
                   imm == 0) {
          instr.op = Opcode::kMov;
          instr.b = Value::None();
          ++changed;
        } else if ((instr.op == Opcode::kMul || instr.op == Opcode::kDiv) && imm == 1) {
          instr.op = Opcode::kMov;
          instr.b = Value::None();
          ++changed;
        } else if ((instr.op == Opcode::kMul || instr.op == Opcode::kAnd) && imm == 0) {
          instr.op = Opcode::kConst;
          instr.a = Value::Imm(0);
          instr.b = Value::None();
          ++changed;
        }
      }

      // Address folding (instruction fusing): a load/store whose address comes from an in-block
      // `add base, imm` absorbs the addition into its displacement.
      const bool is_mem = IsLoad(instr.op) || IsStore(instr.op);
      if (is_mem) {
        Value& addr = IsLoad(instr.op) ? instr.a : instr.b;
        if (addr.IsReg()) {
          auto def_it = last_def.find(addr.vreg);
          if (def_it != last_def.end()) {
            const IrInstr& def = block.instrs[def_it->second];
            if (def.op == Opcode::kAdd && def.a.IsReg() && def.b.IsImm() && !def.b.IsParam()) {
              // The base register must not have been redefined between def and this use.
              auto base_def = last_def.find(def.a.vreg);
              const bool base_ok =
                  base_def == last_def.end() || base_def->second <= def_it->second;
              const int64_t new_disp = static_cast<int64_t>(instr.disp) + def.b.imm;
              if (base_ok && new_disp >= INT32_MIN && new_disp <= INT32_MAX) {
                addr = Value::Reg(def.a.vreg);
                instr.disp = static_cast<int32_t>(new_disp);
                if (lineage != nullptr) {
                  lineage->OnAbsorb(instr.id, def.id);
                }
                ++changed;
              }
            }
          }
        }
      }

      if (instr.HasDst()) {
        last_def[instr.dst] = i;
      }
    }
  }
  return changed;
}

int CommonSubexprPass(IrFunction& function, LineageListener* lineage) {
  int changed = 0;
  for (IrBlock& block : function.blocks()) {
    // Local value numbering. Each definition event gets a fresh value number; expression keys
    // are built over operand value numbers, so stale entries can never match.
    uint64_t next_vn = 1;
    std::unordered_map<uint32_t, uint64_t> reg_vn;  // vreg -> value number
    // Immediates are numbered by (value, literal slot): two parameterized literals that happen
    // to share a value today must not merge, or a later patch of one slot would leak into the
    // other's uses. Equal-slot occurrences still share a number (patching rewrites every
    // recorded site of a slot, so merging them is sound).
    std::map<std::pair<uint64_t, uint32_t>, uint64_t> imm_vn;
    struct Available {
      uint32_t vreg;
      uint32_t instr_id;
      uint64_t vn;  // Value number the result register must still hold.
    };
    std::unordered_map<std::string, Available> expressions;  // expression key -> availability

    auto vn_of = [&](const Value& value) -> uint64_t {
      if (value.IsImm()) {
        auto [it, inserted] = imm_vn.try_emplace(
            std::make_pair(static_cast<uint64_t>(value.imm), value.literal_slot), next_vn);
        if (inserted) {
          ++next_vn;
        }
        return it->second;
      }
      if (value.IsReg()) {
        auto [it, inserted] = reg_vn.try_emplace(value.vreg, next_vn);
        if (inserted) {
          ++next_vn;
        }
        return it->second;
      }
      return 0;
    };

    for (IrInstr& instr : block.instrs) {
      const bool eligible = IsPure(instr) && instr.HasDst() && !IsLoad(instr.op) &&
                            instr.op != Opcode::kGetTag && instr.op != Opcode::kConst &&
                            instr.op != Opcode::kMov;
      if (eligible) {
        char key[64];
        std::snprintf(key, sizeof(key), "%u|%llu|%llu|%llu|%d", static_cast<unsigned>(instr.op),
                      static_cast<unsigned long long>(vn_of(instr.a)),
                      static_cast<unsigned long long>(vn_of(instr.b)),
                      static_cast<unsigned long long>(vn_of(instr.c)), instr.disp);
        auto it = expressions.find(key);
        if (it != expressions.end() && reg_vn.count(it->second.vreg) != 0 &&
            reg_vn[it->second.vreg] == it->second.vn) {
          // Duplicate: reuse the earlier result via a move. The surviving computation now also
          // serves this instruction's owner.
          if (lineage != nullptr) {
            lineage->OnAbsorb(it->second.instr_id, instr.id);
          }
          const uint32_t source = it->second.vreg;
          instr.op = Opcode::kMov;
          instr.a = Value::Reg(source);
          instr.b = Value::None();
          instr.c = Value::None();
          instr.args.clear();
          // The destination now holds the same value number as the source.
          reg_vn[instr.dst] = it->second.vn;
          ++changed;
          continue;
        }
        // New expression: the destination gets a fresh value number and the expression becomes
        // available.
        const uint64_t vn = next_vn++;
        reg_vn[instr.dst] = vn;
        expressions[key] = Available{instr.dst, instr.id, vn};
        continue;
      }
      // Non-eligible definitions still update value numbers.
      if (instr.HasDst()) {
        if (instr.op == Opcode::kMov && instr.a.IsReg()) {
          reg_vn[instr.dst] = vn_of(instr.a);
        } else if (instr.op == Opcode::kConst) {
          reg_vn[instr.dst] = vn_of(instr.a);
        } else {
          reg_vn[instr.dst] = next_vn++;
        }
      }
    }
  }
  return changed;
}

int DeadCodeElimPass(IrFunction& function, LineageListener* lineage) {
  int removed_total = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    LivenessInfo liveness = ComputeLiveness(function);
    for (uint32_t b = 0; b < function.blocks().size(); ++b) {
      IrBlock& block = function.block(b);
      std::vector<bool> live = liveness.blocks[b].live_out;
      live.resize(function.next_vreg(), false);
      // Backward scan: an instruction writing a non-live register with no side effects is dead.
      for (size_t i = block.instrs.size(); i-- > 0;) {
        IrInstr& instr = block.instrs[i];
        const bool dead = instr.HasDst() && IsPure(instr) && !live[instr.dst];
        if (dead) {
          if (lineage != nullptr) {
            lineage->OnRemove(instr.id);
          }
          block.instrs.erase(block.instrs.begin() + static_cast<ptrdiff_t>(i));
          ++removed_total;
          changed = true;
          continue;
        }
        if (instr.HasDst()) {
          live[instr.dst] = false;
        }
        ForEachUse(instr, [&](uint32_t vreg) { live[vreg] = true; });
      }
    }
  }
  return removed_total;
}

void RunOptimizationPipeline(IrFunction& function, LineageListener* lineage) {
  // Two rounds: folding can expose combines and vice versa; DCE last cleans up.
  for (int round = 0; round < 2; ++round) {
    ConstantFoldPass(function, lineage);
    CombineInstrsPass(function, lineage);
    CommonSubexprPass(function, lineage);
  }
  DeadCodeElimPass(function, lineage);
}

}  // namespace dfp
