// Lowers register-allocated VIR to VCPU machine code, producing per-instruction debug info.
//
// Every emitted machine instruction carries the id of the VIR instruction it was lowered from
// (spill traffic and immediate materialization inherit their parent's id), which is the
// "DWARF line table" the sample resolver uses to map native samples back to Machine IR.
#ifndef DFP_SRC_BACKEND_EMITTER_H_
#define DFP_SRC_BACKEND_EMITTER_H_

#include <cstdint>
#include <vector>

#include "src/backend/regalloc.h"
#include "src/ir/instr.h"
#include "src/vcpu/minstr.h"

namespace dfp {

// One machine-code position holding the current value of a plan literal. The tiering layer's
// relocation table: patching a cached plan for new literals rewrites exactly these positions
// (an immediate field, or one argument of a call) inside the otherwise-unchanged segment.
struct LiteralSite {
  enum class Field : uint8_t {
    kImm,  // MInstr::imm (kConst materialization, b_is_imm operand, immediate ret).
    kArg,  // MInstr::args[arg_index].value (immediate call argument, e.g. a LIKE pattern id).
  };
  uint32_t slot = kNoLiteralSlot;  // Plan-literal ordinal (traversal order, see src/tiering/).
  uint32_t code_offset = 0;        // Index into the emitted code vector.
  Field field = Field::kImm;
  uint8_t arg_index = 0;           // Valid when field == kArg.
};

struct EmittedFunction {
  std::vector<MInstr> code;
  std::vector<LiteralSite> literal_sites;
  uint16_t spill_slots = 0;
  uint8_t num_args = 0;
};

EmittedFunction EmitMachineCode(const IrFunction& function, const Allocation& allocation);

}  // namespace dfp

#endif  // DFP_SRC_BACKEND_EMITTER_H_
