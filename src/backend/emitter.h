// Lowers register-allocated VIR to VCPU machine code, producing per-instruction debug info.
//
// Every emitted machine instruction carries the id of the VIR instruction it was lowered from
// (spill traffic and immediate materialization inherit their parent's id), which is the
// "DWARF line table" the sample resolver uses to map native samples back to Machine IR.
#ifndef DFP_SRC_BACKEND_EMITTER_H_
#define DFP_SRC_BACKEND_EMITTER_H_

#include <cstdint>
#include <vector>

#include "src/backend/regalloc.h"
#include "src/ir/instr.h"
#include "src/vcpu/minstr.h"

namespace dfp {

struct EmittedFunction {
  std::vector<MInstr> code;
  uint16_t spill_slots = 0;
  uint8_t num_args = 0;
};

EmittedFunction EmitMachineCode(const IrFunction& function, const Allocation& allocation);

}  // namespace dfp

#endif  // DFP_SRC_BACKEND_EMITTER_H_
