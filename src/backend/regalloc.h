// Linear-scan register allocation of VIR virtual registers onto the VCPU's physical registers.
//
// Registers r13 and r14 are backend scratch (used to stage spilled operands), r15 is the tag
// register: it is architecturally global across call frames, so the allocator only ever assigns
// it to live ranges that do not cross a call — and not at all when a profiling session reserves
// it for Register Tagging. That reservation shrinks the allocatable pool by one, which is the
// mechanism behind the paper's "2.8% overhead from reserving a register" experiment.
#ifndef DFP_SRC_BACKEND_REGALLOC_H_
#define DFP_SRC_BACKEND_REGALLOC_H_

#include <cstdint>
#include <vector>

#include "src/ir/instr.h"
#include "src/vcpu/minstr.h"

namespace dfp {

inline constexpr uint8_t kScratch0 = 13;
inline constexpr uint8_t kScratch1 = 14;
inline constexpr uint8_t kScratch2 = 12;  // Third scratch, needed only for kSelect.
inline constexpr uint8_t kFirstAllocatable = 0;
inline constexpr uint8_t kLastAllocatable = 11;  // r0..r11, plus r15 when not reserved.

struct VRegLocation {
  bool allocated = false;  // The vreg appears in the function at all.
  bool spilled = false;
  uint8_t preg = kNoPhysReg;
  uint16_t slot = 0;
};

struct Allocation {
  std::vector<VRegLocation> locations;  // Indexed by vreg.
  uint16_t spill_slot_count = 0;
  uint32_t spilled_vregs = 0;

  const VRegLocation& loc(uint32_t vreg) const { return locations[vreg]; }
};

// Allocates registers for `function`. When `reserve_tag_register` is set, r15 is excluded from
// the pool entirely (Register Tagging owns it).
Allocation AllocateRegisters(const IrFunction& function, bool reserve_tag_register);

}  // namespace dfp

#endif  // DFP_SRC_BACKEND_REGALLOC_H_
