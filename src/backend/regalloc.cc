#include "src/backend/regalloc.h"

#include <algorithm>

#include "src/backend/liveness.h"
#include "src/util/check.h"

namespace dfp {
namespace {

struct Interval {
  uint32_t vreg = 0;
  uint32_t lo = 0;
  uint32_t hi = 0;
  bool crosses_call = false;
};

}  // namespace

Allocation AllocateRegisters(const IrFunction& function, bool reserve_tag_register) {
  const uint32_t num_vregs = function.next_vreg();
  Allocation result;
  result.locations.resize(num_vregs);

  // --- Build live intervals over a linearization of the blocks. ---
  LivenessInfo liveness = ComputeLiveness(function);
  std::vector<Interval> intervals(num_vregs);
  std::vector<bool> seen(num_vregs, false);
  for (uint32_t v = 0; v < num_vregs; ++v) {
    intervals[v].vreg = v;
    intervals[v].lo = ~0u;
    intervals[v].hi = 0;
  }
  auto extend = [&](uint32_t vreg, uint32_t pos) {
    seen[vreg] = true;
    intervals[vreg].lo = std::min(intervals[vreg].lo, pos);
    intervals[vreg].hi = std::max(intervals[vreg].hi, pos);
  };

  std::vector<uint32_t> call_positions;
  uint32_t pos = 0;
  for (uint32_t b = 0; b < function.blocks().size(); ++b) {
    const IrBlock& block = function.block(b);
    const uint32_t block_start = pos;
    for (const IrInstr& instr : block.instrs) {
      ForEachUse(instr, [&](uint32_t vreg) { extend(vreg, pos); });
      if (instr.HasDst()) {
        extend(instr.dst, pos);
      }
      if (instr.op == Opcode::kCall) {
        call_positions.push_back(pos);
      }
      ++pos;
    }
    const uint32_t block_end = pos;  // One past the last instruction.
    for (uint32_t v = 0; v < num_vregs; ++v) {
      if (liveness.blocks[b].live_in[v]) {
        extend(v, block_start);
      }
      if (liveness.blocks[b].live_out[v]) {
        extend(v, block_end);
      }
    }
  }
  // Arguments are defined at entry (they arrive in r0..rN).
  for (uint8_t i = 0; i < function.num_args(); ++i) {
    if (seen[i]) {
      extend(i, 0);
    }
  }

  for (Interval& interval : intervals) {
    if (!seen[interval.vreg]) {
      continue;
    }
    for (uint32_t call_pos : call_positions) {
      if (interval.lo < call_pos && call_pos < interval.hi) {
        interval.crosses_call = true;
        break;
      }
    }
  }

  // --- Linear scan. ---
  std::vector<Interval> order;
  order.reserve(num_vregs);
  for (uint32_t v = 0; v < num_vregs; ++v) {
    if (seen[v]) {
      order.push_back(intervals[v]);
    }
  }
  std::sort(order.begin(), order.end(), [](const Interval& a, const Interval& b) {
    return a.lo != b.lo ? a.lo < b.lo : a.vreg < b.vreg;
  });

  const bool tag_reg_available = !reserve_tag_register;
  std::vector<bool> in_use(kNumPhysRegs, false);
  struct Active {
    Interval interval;
    uint8_t preg;
  };
  std::vector<Active> active;

  auto take_free_reg = [&](const Interval& interval) -> uint8_t {
    // Prefer the argument's incoming register to avoid a prologue move.
    if (interval.vreg < function.num_args()) {
      const uint8_t hint = static_cast<uint8_t>(interval.vreg);
      if (hint <= kLastAllocatable && !in_use[hint]) {
        return hint;
      }
    }
    for (uint8_t reg = kFirstAllocatable; reg <= kLastAllocatable; ++reg) {
      if (!in_use[reg]) {
        return reg;
      }
    }
    if (tag_reg_available && !in_use[kTagReg] && !interval.crosses_call) {
      return kTagReg;
    }
    return kNoPhysReg;
  };

  auto assign_slot = [&](uint32_t vreg) {
    VRegLocation& loc = result.locations[vreg];
    loc.allocated = true;
    loc.spilled = true;
    loc.slot = result.spill_slot_count++;
    ++result.spilled_vregs;
  };

  for (const Interval& interval : order) {
    // Expire intervals that ended before this one starts.
    for (size_t i = active.size(); i-- > 0;) {
      if (active[i].interval.hi < interval.lo) {
        in_use[active[i].preg] = false;
        active.erase(active.begin() + static_cast<ptrdiff_t>(i));
      }
    }
    const uint8_t reg = take_free_reg(interval);
    if (reg != kNoPhysReg) {
      in_use[reg] = true;
      VRegLocation& loc = result.locations[interval.vreg];
      loc.allocated = true;
      loc.preg = reg;
      active.push_back({interval, reg});
      continue;
    }
    // No free register: spill the active interval that ends last (or this one), provided the
    // candidate's register is usable by this interval (r15 cannot host call-crossing ranges).
    size_t victim = active.size();
    uint32_t victim_hi = interval.hi;
    for (size_t i = 0; i < active.size(); ++i) {
      if (active[i].preg == kTagReg && interval.crosses_call) {
        continue;  // This interval could not take r15 over.
      }
      if (active[i].interval.hi > victim_hi) {
        victim_hi = active[i].interval.hi;
        victim = i;
      }
    }
    if (victim == active.size()) {
      assign_slot(interval.vreg);
      continue;
    }
    // Steal the victim's register; the victim moves to a spill slot.
    const uint8_t stolen = active[victim].preg;
    assign_slot(active[victim].interval.vreg);
    result.locations[active[victim].interval.vreg].preg = kNoPhysReg;
    active.erase(active.begin() + static_cast<ptrdiff_t>(victim));
    VRegLocation& loc = result.locations[interval.vreg];
    loc.allocated = true;
    loc.preg = stolen;
    active.push_back({interval, stolen});
  }
  return result;
}

}  // namespace dfp
