#include "src/backend/compiler.h"

#include <cstdio>

#include "src/backend/passes.h"
#include "src/backend/regalloc.h"
#include "src/ir/printer.h"
#include "src/ir/verifier.h"
#include "src/util/check.h"

namespace dfp {
namespace {

void VerifyOrDie(const IrFunction& function, const char* phase) {
  std::vector<std::string> problems = VerifyFunction(function);
  if (!problems.empty()) {
    std::fprintf(stderr, "IR verification failed (%s) in %s:\n", phase, function.name().c_str());
    for (const std::string& problem : problems) {
      std::fprintf(stderr, "  %s\n", problem.c_str());
    }
    std::fprintf(stderr, "%s", PrintFunction(function).ToString().c_str());
    DFP_CHECK(false);
  }
}

}  // namespace

EmittedFunction CompileFunction(IrFunction& function, const CompileOptions& options,
                                CompileStats* stats) {
  if (options.verify) {
    VerifyOrDie(function, "pre-optimization");
  }
  if (options.optimize) {
    RunOptimizationPipeline(function, options.lineage);
    if (options.verify) {
      VerifyOrDie(function, "post-optimization");
    }
  }
  Allocation allocation = AllocateRegisters(function, options.reserve_tag_register);
  EmittedFunction emitted = EmitMachineCode(function, allocation);
  if (stats != nullptr) {
    stats->ir_instrs = static_cast<uint32_t>(function.InstrCount());
    stats->machine_instrs = static_cast<uint32_t>(emitted.code.size());
    stats->spilled_vregs = allocation.spilled_vregs;
    stats->spill_slots = allocation.spill_slot_count;
  }
  return emitted;
}

}  // namespace dfp
