// Backend driver: optimization pipeline + register allocation + machine code emission.
//
// This is the engine's third lowering step (Machine IR -> machine instructions). The debug info
// it produces (per-machine-instruction VIR ids) plays the role DWARF plays for Umbra/LLVM.
#ifndef DFP_SRC_BACKEND_COMPILER_H_
#define DFP_SRC_BACKEND_COMPILER_H_

#include "src/backend/emitter.h"
#include "src/backend/lineage.h"
#include "src/ir/instr.h"

namespace dfp {

struct CompileOptions {
  bool optimize = true;
  // Reserve r15 for Register Tagging (shrinks the allocatable pool by one register).
  bool reserve_tag_register = false;
  // Receives lineage notifications from optimization passes (the Tagging Dictionary).
  LineageListener* lineage = nullptr;
  // Run the IR verifier before and after optimization (aborts on structural errors).
  bool verify = true;
};

struct CompileStats {
  uint32_t ir_instrs = 0;
  uint32_t machine_instrs = 0;
  uint32_t spilled_vregs = 0;
  uint16_t spill_slots = 0;
};

// Optimizes `function` in place, then lowers it. Aborts on verification failure.
EmittedFunction CompileFunction(IrFunction& function, const CompileOptions& options,
                                CompileStats* stats = nullptr);

}  // namespace dfp

#endif  // DFP_SRC_BACKEND_COMPILER_H_
