// Virtual-register liveness analysis over the (non-SSA) VIR control-flow graph.
//
// Used by dead-code elimination and by the register allocator's live-interval construction.
#ifndef DFP_SRC_BACKEND_LIVENESS_H_
#define DFP_SRC_BACKEND_LIVENESS_H_

#include <cstdint>
#include <vector>

#include "src/ir/instr.h"

namespace dfp {

struct BlockLiveness {
  // Indexed by virtual register.
  std::vector<bool> live_in;
  std::vector<bool> live_out;
};

struct LivenessInfo {
  std::vector<BlockLiveness> blocks;

  bool LiveIn(uint32_t block, uint32_t vreg) const { return blocks[block].live_in[vreg]; }
  bool LiveOut(uint32_t block, uint32_t vreg) const { return blocks[block].live_out[vreg]; }
};

// Successor block ids of a block's terminator.
std::vector<uint32_t> BlockSuccessors(const IrBlock& block);

// Iterative backward dataflow to a fixpoint.
LivenessInfo ComputeLiveness(const IrFunction& function);

// Calls `fn(vreg)` for every register operand the instruction reads.
template <typename Fn>
void ForEachUse(const IrInstr& instr, Fn&& fn) {
  if (instr.a.IsReg()) {
    fn(instr.a.vreg);
  }
  if (instr.b.IsReg()) {
    fn(instr.b.vreg);
  }
  if (instr.c.IsReg()) {
    fn(instr.c.vreg);
  }
  for (const Value& arg : instr.args) {
    if (arg.IsReg()) {
      fn(arg.vreg);
    }
  }
}

// True if the instruction has no observable effect besides writing its destination register.
// Loads count as pure: eliminating a dead load changes timing but not results.
inline bool IsPure(const IrInstr& instr) {
  switch (instr.op) {
    case Opcode::kCall:
    case Opcode::kBr:
    case Opcode::kCondBr:
    case Opcode::kRet:
    case Opcode::kSetTag:
    case Opcode::kStore1:
    case Opcode::kStore2:
    case Opcode::kStore4:
    case Opcode::kStore8:
      return false;
    default:
      return true;
  }
}

// True if the instruction's value can be computed at compile time from constant operands.
// Loads and GetTag are excluded (their value depends on runtime state); division is excluded
// when the divisor is zero (the trap must stay).
inline bool IsFoldable(const IrInstr& instr) {
  if (!IsPure(instr) || IsLoad(instr.op) || instr.op == Opcode::kGetTag ||
      instr.op == Opcode::kSelect) {
    return false;
  }
  return instr.HasDst();
}

}  // namespace dfp

#endif  // DFP_SRC_BACKEND_LIVENESS_H_
