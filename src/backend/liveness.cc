#include "src/backend/liveness.h"

namespace dfp {

std::vector<uint32_t> BlockSuccessors(const IrBlock& block) {
  std::vector<uint32_t> successors;
  if (block.instrs.empty()) {
    return successors;
  }
  const IrInstr& term = block.instrs.back();
  if (term.op == Opcode::kBr) {
    successors.push_back(term.target0);
  } else if (term.op == Opcode::kCondBr) {
    successors.push_back(term.target0);
    if (term.target1 != term.target0) {
      successors.push_back(term.target1);
    }
  }
  return successors;
}

LivenessInfo ComputeLiveness(const IrFunction& function) {
  const uint32_t num_vregs = function.next_vreg();
  const size_t num_blocks = function.blocks().size();
  LivenessInfo info;
  info.blocks.resize(num_blocks);
  for (BlockLiveness& bl : info.blocks) {
    bl.live_in.assign(num_vregs, false);
    bl.live_out.assign(num_vregs, false);
  }

  // Per-block gen (upward-exposed uses) and kill (definitions) sets.
  std::vector<std::vector<bool>> gen(num_blocks), kill(num_blocks);
  for (size_t b = 0; b < num_blocks; ++b) {
    gen[b].assign(num_vregs, false);
    kill[b].assign(num_vregs, false);
    for (const IrInstr& instr : function.blocks()[b].instrs) {
      ForEachUse(instr, [&](uint32_t vreg) {
        if (!kill[b][vreg]) {
          gen[b][vreg] = true;
        }
      });
      if (instr.HasDst()) {
        kill[b][instr.dst] = true;
      }
    }
  }

  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t b = num_blocks; b-- > 0;) {
      BlockLiveness& bl = info.blocks[b];
      // live_out = union of successors' live_in.
      for (uint32_t succ : BlockSuccessors(function.blocks()[b])) {
        const std::vector<bool>& succ_in = info.blocks[succ].live_in;
        for (uint32_t v = 0; v < num_vregs; ++v) {
          if (succ_in[v] && !bl.live_out[v]) {
            bl.live_out[v] = true;
            changed = true;
          }
        }
      }
      // live_in = gen | (live_out & ~kill).
      for (uint32_t v = 0; v < num_vregs; ++v) {
        bool in = gen[b][v] || (bl.live_out[v] && !kill[b][v]);
        if (in && !bl.live_in[v]) {
          bl.live_in[v] = true;
          changed = true;
        }
      }
    }
  }
  return info;
}

}  // namespace dfp
