#include "src/backend/emitter.h"

#include <unordered_map>
#include <utility>

#include "src/util/check.h"

namespace dfp {
namespace {

// Emission context for one function.
class Emitter {
 public:
  Emitter(const IrFunction& function, const Allocation& allocation)
      : function_(function), alloc_(allocation) {}

  EmittedFunction Run() {
    EmitPrologue();
    for (uint32_t b = 0; b < function_.blocks().size(); ++b) {
      block_offsets_[b] = static_cast<uint32_t>(out_.size());
      for (const IrInstr& instr : function_.block(b).instrs) {
        EmitInstr(instr);
      }
    }
    PatchBranches();
    EmittedFunction result;
    result.code = std::move(out_);
    result.literal_sites = std::move(literal_sites_);
    result.spill_slots = alloc_.spill_slot_count;
    result.num_args = function_.num_args();
    return result;
  }

 private:
  MInstr& Emit(Opcode op, uint32_t ir_id) {
    MInstr instr;
    instr.op = op;
    instr.ir_id = ir_id;
    out_.push_back(std::move(instr));
    return out_.back();
  }

  // Records that the most recently emitted instruction carries literal `slot` in `field`.
  void RecordSite(uint32_t slot, LiteralSite::Field field, uint8_t arg_index = 0) {
    LiteralSite site;
    site.slot = slot;
    site.code_offset = static_cast<uint32_t>(out_.size() - 1);
    site.field = field;
    site.arg_index = arg_index;
    literal_sites_.push_back(site);
  }

  // Materializes an operand into a register: the assigned physical register, or `scratch` after
  // loading a spill slot / an immediate.
  uint8_t UseReg(const Value& value, uint8_t scratch, uint32_t ir_id, bool is_tag = false) {
    if (value.IsImm()) {
      MInstr& instr = Emit(Opcode::kConst, ir_id);
      instr.dst = scratch;
      instr.a_is_imm = true;
      instr.imm = value.imm;
      instr.is_tag = is_tag;
      if (value.IsParam()) {
        RecordSite(value.literal_slot, LiteralSite::Field::kImm);
      }
      return scratch;
    }
    DFP_CHECK(value.IsReg());
    const VRegLocation& loc = alloc_.loc(value.vreg);
    DFP_CHECK(loc.allocated);
    if (!loc.spilled) {
      return loc.preg;
    }
    MInstr& instr = Emit(Opcode::kLoadSpill, ir_id);
    instr.dst = scratch;
    instr.spill_slot = loc.slot;
    instr.is_tag = is_tag;
    return scratch;
  }

  // Returns the register the result should be computed into, and emits the store-back afterwards
  // via FinishDst.
  uint8_t DstReg(uint32_t vreg) {
    const VRegLocation& loc = alloc_.loc(vreg);
    DFP_CHECK(loc.allocated);
    return loc.spilled ? kScratch0 : loc.preg;
  }

  void FinishDst(uint32_t vreg, uint8_t computed_in, uint32_t ir_id, bool is_tag = false) {
    const VRegLocation& loc = alloc_.loc(vreg);
    if (loc.spilled) {
      MInstr& instr = Emit(Opcode::kStoreSpill, ir_id);
      instr.ra = computed_in;
      instr.spill_slot = loc.slot;
      instr.is_tag = is_tag;
    }
  }

  void EmitPrologue() {
    // Arguments arrive in r0..rN; move them to their allocated homes. Spills first (they free
    // their source registers for the permutation), then register moves in clobber-safe order.
    const uint32_t first_id = FirstInstrId();
    struct Move {
      uint8_t src;
      uint8_t dst;
    };
    std::vector<Move> reg_moves;
    for (uint8_t i = 0; i < function_.num_args(); ++i) {
      const VRegLocation& loc = alloc_.loc(i);
      if (!loc.allocated) {
        continue;  // Unused argument.
      }
      if (loc.spilled) {
        MInstr& instr = Emit(Opcode::kStoreSpill, first_id);
        instr.ra = i;
        instr.spill_slot = loc.slot;
      } else if (loc.preg != i) {
        reg_moves.push_back({i, loc.preg});
      }
    }
    // Emit register moves, breaking cycles through a scratch register.
    while (!reg_moves.empty()) {
      bool progress = false;
      for (size_t i = 0; i < reg_moves.size(); ++i) {
        const Move move = reg_moves[i];
        bool dst_is_pending_src = false;
        for (const Move& other : reg_moves) {
          if (other.src == move.dst) {
            dst_is_pending_src = true;
            break;
          }
        }
        if (!dst_is_pending_src) {
          MInstr& instr = Emit(Opcode::kMov, first_id);
          instr.dst = move.dst;
          instr.ra = move.src;
          reg_moves.erase(reg_moves.begin() + static_cast<ptrdiff_t>(i));
          progress = true;
          break;
        }
      }
      if (!progress) {
        // Pure cycle: rotate through scratch.
        const Move move = reg_moves.front();
        MInstr& save = Emit(Opcode::kMov, first_id);
        save.dst = kScratch0;
        save.ra = move.src;
        for (Move& other : reg_moves) {
          if (other.src == move.src) {
            other.src = kScratch0;
          }
        }
      }
    }
  }

  uint32_t FirstInstrId() const {
    for (const IrBlock& block : function_.blocks()) {
      if (!block.instrs.empty()) {
        return block.instrs.front().id;
      }
    }
    return kNoIrId;
  }

  void EmitInstr(const IrInstr& ir) {
    const bool tag_related = ir.op == Opcode::kSetTag || ir.op == Opcode::kGetTag;
    switch (ir.op) {
      case Opcode::kConst:
      case Opcode::kMov: {
        const uint8_t dst = DstReg(ir.dst);
        if (ir.a.IsImm()) {
          MInstr& instr = Emit(Opcode::kConst, ir.id);
          instr.type = ir.type;
          instr.dst = dst;
          instr.a_is_imm = true;
          instr.imm = ir.a.imm;
          if (ir.a.IsParam()) {
            RecordSite(ir.a.literal_slot, LiteralSite::Field::kImm);
          }
        } else {
          const uint8_t src = UseReg(ir.a, kScratch0, ir.id);
          MInstr& instr = Emit(Opcode::kMov, ir.id);
          instr.type = ir.type;
          instr.dst = dst;
          instr.ra = src;
        }
        FinishDst(ir.dst, dst, ir.id);
        break;
      }
      case Opcode::kNot:
      case Opcode::kNeg:
      case Opcode::kFNeg:
      case Opcode::kSiToFp:
      case Opcode::kFpToSi: {
        const uint8_t src = UseReg(ir.a, kScratch0, ir.id);
        const uint8_t dst = DstReg(ir.dst);
        MInstr& instr = Emit(ir.op, ir.id);
        instr.type = ir.type;
        instr.dst = dst;
        instr.ra = src;
        FinishDst(ir.dst, dst, ir.id);
        break;
      }
      case Opcode::kAdd:
      case Opcode::kSub:
      case Opcode::kMul:
      case Opcode::kDiv:
      case Opcode::kRem:
      case Opcode::kAnd:
      case Opcode::kOr:
      case Opcode::kXor:
      case Opcode::kShl:
      case Opcode::kShr:
      case Opcode::kRotr:
      case Opcode::kCmpEq:
      case Opcode::kCmpNe:
      case Opcode::kCmpLt:
      case Opcode::kCmpLe:
      case Opcode::kCmpGt:
      case Opcode::kCmpGe:
      case Opcode::kFAdd:
      case Opcode::kFSub:
      case Opcode::kFMul:
      case Opcode::kFDiv:
      case Opcode::kFCmpEq:
      case Opcode::kFCmpNe:
      case Opcode::kFCmpLt:
      case Opcode::kFCmpLe:
      case Opcode::kFCmpGt:
      case Opcode::kFCmpGe:
      case Opcode::kCrc32: {
        const uint8_t lhs = UseReg(ir.a, kScratch0, ir.id);
        const uint8_t dst = DstReg(ir.dst);
        MInstr instr;
        instr.op = ir.op;
        instr.ir_id = ir.id;
        instr.type = ir.type;
        instr.dst = dst;
        instr.ra = lhs;
        if (ir.b.IsImm()) {
          instr.b_is_imm = true;
          instr.imm = ir.b.imm;
          out_.push_back(std::move(instr));
          if (ir.b.IsParam()) {
            RecordSite(ir.b.literal_slot, LiteralSite::Field::kImm);
          }
        } else {
          instr.rb = UseReg(ir.b, kScratch1, ir.id);
          out_.push_back(std::move(instr));
        }
        FinishDst(ir.dst, dst, ir.id);
        break;
      }
      case Opcode::kLoad1:
      case Opcode::kLoad2:
      case Opcode::kLoad4:
      case Opcode::kLoad8: {
        const uint8_t addr = UseReg(ir.a, kScratch0, ir.id);
        const uint8_t dst = DstReg(ir.dst);
        MInstr& instr = Emit(ir.op, ir.id);
        instr.dst = dst;
        instr.ra = addr;
        instr.disp = ir.disp;
        FinishDst(ir.dst, dst, ir.id);
        break;
      }
      case Opcode::kStore1:
      case Opcode::kStore2:
      case Opcode::kStore4:
      case Opcode::kStore8: {
        const uint8_t value = UseReg(ir.a, kScratch0, ir.id);
        const uint8_t addr = UseReg(ir.b, kScratch1, ir.id);
        MInstr& instr = Emit(ir.op, ir.id);
        instr.ra = value;
        instr.rb = addr;
        instr.disp = ir.disp;
        break;
      }
      case Opcode::kSelect: {
        const uint8_t cond = UseReg(ir.a, kScratch0, ir.id);
        const uint8_t then_value = UseReg(ir.b, kScratch1, ir.id);
        const uint8_t else_value = UseReg(ir.c, kScratch2, ir.id);
        const uint8_t dst = DstReg(ir.dst);
        MInstr& instr = Emit(Opcode::kSelect, ir.id);
        instr.type = ir.type;
        instr.dst = dst;
        instr.ra = cond;
        instr.rb = then_value;
        instr.rc = else_value;
        FinishDst(ir.dst, dst, ir.id);
        break;
      }
      case Opcode::kBr: {
        MInstr& instr = Emit(Opcode::kBr, ir.id);
        pending_branches_.push_back({static_cast<uint32_t>(out_.size() - 1), ir.target0, 0});
        instr.target0 = 0;
        break;
      }
      case Opcode::kCondBr: {
        const uint8_t cond = UseReg(ir.a, kScratch0, ir.id);
        MInstr& instr = Emit(Opcode::kCondBr, ir.id);
        instr.ra = cond;
        pending_branches_.push_back({static_cast<uint32_t>(out_.size() - 1), ir.target0, 0});
        pending_branches_.push_back({static_cast<uint32_t>(out_.size() - 1), ir.target1, 1});
        break;
      }
      case Opcode::kCall: {
        MInstr instr;
        instr.op = Opcode::kCall;
        instr.ir_id = ir.id;
        instr.callee = ir.callee;
        for (const Value& arg : ir.args) {
          MArg marg;
          if (arg.IsImm()) {
            marg.kind = MArg::Kind::kImm;
            marg.value = static_cast<uint64_t>(arg.imm);
            if (arg.IsParam()) {
              pending_arg_sites_.push_back(
                  {arg.literal_slot, static_cast<uint8_t>(instr.args.size())});
            }
          } else {
            const VRegLocation& loc = alloc_.loc(arg.vreg);
            DFP_CHECK(loc.allocated);
            if (loc.spilled) {
              marg.kind = MArg::Kind::kSpill;
              marg.value = loc.slot;
            } else {
              marg.kind = MArg::Kind::kReg;
              marg.value = loc.preg;
            }
          }
          instr.args.push_back(marg);
        }
        if (ir.HasDst()) {
          const uint8_t dst = DstReg(ir.dst);
          instr.dst = dst;
          out_.push_back(std::move(instr));
          FlushArgSites();
          FinishDst(ir.dst, dst, ir.id);
        } else {
          out_.push_back(std::move(instr));
          FlushArgSites();
        }
        break;
      }
      case Opcode::kRet: {
        MInstr instr;
        instr.op = Opcode::kRet;
        instr.ir_id = ir.id;
        if (ir.a.IsImm()) {
          instr.a_is_imm = true;
          instr.imm = ir.a.imm;
        } else if (ir.a.IsReg()) {
          instr.ra = UseReg(ir.a, kScratch0, ir.id);
        }
        out_.push_back(std::move(instr));
        if (ir.a.IsParam()) {
          RecordSite(ir.a.literal_slot, LiteralSite::Field::kImm);
        }
        break;
      }
      case Opcode::kGetTag: {
        const uint8_t dst = DstReg(ir.dst);
        MInstr& instr = Emit(Opcode::kGetTag, ir.id);
        instr.dst = dst;
        instr.is_tag = true;
        FinishDst(ir.dst, dst, ir.id, /*is_tag=*/true);
        break;
      }
      case Opcode::kSetTag: {
        MInstr instr;
        instr.op = Opcode::kSetTag;
        instr.ir_id = ir.id;
        instr.is_tag = true;
        if (ir.a.IsImm()) {
          instr.a_is_imm = true;
          instr.imm = ir.a.imm;
        } else {
          instr.ra = UseReg(ir.a, kScratch0, ir.id, /*is_tag=*/true);
        }
        out_.push_back(std::move(instr));
        break;
      }
      case Opcode::kLoadSpill:
      case Opcode::kStoreSpill:
        DFP_UNREACHABLE();
    }
    (void)tag_related;
  }

  void PatchBranches() {
    for (const PendingBranch& pending : pending_branches_) {
      auto it = block_offsets_.find(pending.block);
      DFP_CHECK(it != block_offsets_.end());
      if (pending.which == 0) {
        out_[pending.instr].target0 = it->second;
      } else {
        out_[pending.instr].target1 = it->second;
      }
    }
  }

  // Immediate call arguments are discovered while the MInstr is still being assembled locally;
  // their sites are recorded once it lands in out_ and has a code offset.
  void FlushArgSites() {
    for (const auto& [slot, arg_index] : pending_arg_sites_) {
      RecordSite(slot, LiteralSite::Field::kArg, arg_index);
    }
    pending_arg_sites_.clear();
  }

  struct PendingBranch {
    uint32_t instr;
    uint32_t block;
    int which;
  };

  const IrFunction& function_;
  const Allocation& alloc_;
  std::vector<MInstr> out_;
  std::unordered_map<uint32_t, uint32_t> block_offsets_;
  std::vector<PendingBranch> pending_branches_;
  std::vector<std::pair<uint32_t, uint8_t>> pending_arg_sites_;
  std::vector<LiteralSite> literal_sites_;
};

}  // namespace

EmittedFunction EmitMachineCode(const IrFunction& function, const Allocation& allocation) {
  Emitter emitter(function, allocation);
  return emitter.Run();
}

}  // namespace dfp
