// Calendar dates stored as days since 1970-01-01 (int32), the representation used in VCPU memory.
#ifndef DFP_SRC_UTIL_DATE_H_
#define DFP_SRC_UTIL_DATE_H_

#include <cstdint>
#include <string>

namespace dfp {

// Days since the Unix epoch for the given proleptic Gregorian calendar date.
int32_t DateFromYmd(int year, int month, int day);

// Inverse of DateFromYmd.
void YmdFromDate(int32_t days, int* year, int* month, int* day);

// Parses "yyyy-mm-dd". Throws dfp::Error on malformed input.
int32_t ParseDate(const std::string& text);

// Renders as "yyyy-mm-dd".
std::string DateToString(int32_t days);

}  // namespace dfp

#endif  // DFP_SRC_UTIL_DATE_H_
