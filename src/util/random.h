// Deterministic pseudo-random generation used by the synthetic data generator and property tests.
#ifndef DFP_SRC_UTIL_RANDOM_H_
#define DFP_SRC_UTIL_RANDOM_H_

#include <cstdint>
#include <string>

#include "src/util/check.h"

namespace dfp {

// xorshift128+ generator: fast, deterministic, and identical on every platform, so that the
// synthetic TPC-H-style dataset is reproducible bit-for-bit across runs.
class Random {
 public:
  explicit Random(uint64_t seed) {
    // SplitMix64 seeding to avoid poor low-entropy states.
    state0_ = SplitMix(seed);
    state1_ = SplitMix(state0_);
  }

  uint64_t Next() {
    uint64_t x = state0_;
    const uint64_t y = state1_;
    state0_ = y;
    x ^= x << 23;
    state1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return state1_ + y;
  }

  // Uniform integer in [lo, hi], inclusive.
  int64_t Uniform(int64_t lo, int64_t hi) {
    DFP_CHECK(lo <= hi);
    uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(Next() % range);
  }

  // Uniform double in [0, 1).
  double UniformDouble() { return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0); }

  // True with probability `p`.
  bool Chance(double p) { return UniformDouble() < p; }

  // Random lowercase alphabetic string of the given length.
  std::string AlphaString(int length) {
    std::string out;
    out.reserve(static_cast<size_t>(length));
    for (int i = 0; i < length; ++i) {
      out.push_back(static_cast<char>('a' + Uniform(0, 25)));
    }
    return out;
  }

 private:
  static uint64_t SplitMix(uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

  uint64_t state0_;
  uint64_t state1_;
};

}  // namespace dfp

#endif  // DFP_SRC_UTIL_RANDOM_H_
