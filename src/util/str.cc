#include "src/util/str.h"

#include <cctype>
#include <cstdio>

namespace dfp {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string PercentString(double share) {
  return StrFormat("%.1f%%", share * 100.0);
}

std::string PadLeft(const std::string& text, size_t width) {
  if (text.size() >= width) {
    return text;
  }
  return std::string(width - text.size(), ' ') + text;
}

std::string PadRight(const std::string& text, size_t width) {
  if (text.size() >= width) {
    return text;
  }
  return text + std::string(width - text.size(), ' ');
}

bool LikeMatch(std::string_view text, std::string_view pattern) {
  // Iterative wildcard matching with backtracking over the last '%'.
  size_t t = 0;
  size_t p = 0;
  size_t star_p = std::string_view::npos;
  size_t star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') {
    ++p;
  }
  return p == pattern.size();
}

}  // namespace dfp
