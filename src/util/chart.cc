#include "src/util/chart.h"

#include <algorithm>
#include <cmath>

#include "src/util/str.h"

namespace dfp {
namespace {

// Five intensity levels from empty to full.
char IntensityChar(double share) {
  if (share <= 0.02) {
    return ' ';
  }
  if (share < 0.25) {
    return '.';
  }
  if (share < 0.5) {
    return ':';
  }
  if (share < 0.75) {
    return '*';
  }
  return '#';
}

}  // namespace

std::string RenderBarChart(const std::vector<std::pair<std::string, double>>& entries, int width) {
  double max_value = 0.0;
  size_t label_width = 0;
  for (const auto& [label, value] : entries) {
    max_value = std::max(max_value, value);
    label_width = std::max(label_width, label.size());
  }
  std::string out;
  for (const auto& [label, value] : entries) {
    int bar = max_value > 0 ? static_cast<int>(std::lround(value / max_value * width)) : 0;
    out += PadRight(label, label_width);
    out += " |";
    out += std::string(static_cast<size_t>(bar), '#');
    out += StrFormat(" %.1f%%\n", value * 100.0);
  }
  return out;
}

std::string RenderTimeSeriesChart(const TimeSeriesChart& chart) {
  if (chart.values.empty()) {
    return "(no data)\n";
  }
  size_t buckets = chart.values.front().size();
  size_t label_width = 0;
  for (const auto& name : chart.series_names) {
    label_width = std::max(label_width, name.size());
  }
  // Normalize each bucket so cells show the share of that bucket's total activity.
  std::vector<double> bucket_totals(buckets, 0.0);
  for (const auto& series : chart.values) {
    for (size_t b = 0; b < buckets; ++b) {
      bucket_totals[b] += series[b];
    }
  }
  std::string out;
  for (size_t s = 0; s < chart.values.size(); ++s) {
    out += PadRight(s < chart.series_names.size() ? chart.series_names[s] : "?", label_width);
    out += " |";
    for (size_t b = 0; b < buckets; ++b) {
      double share = bucket_totals[b] > 0 ? chart.values[s][b] / bucket_totals[b] : 0.0;
      out.push_back(IntensityChar(share));
    }
    out += "|\n";
  }
  out += std::string(label_width, ' ');
  out += " +";
  out += std::string(buckets, '-');
  out += "+\n";
  out += std::string(label_width, ' ');
  out += StrFormat("  0%sms (time ->)%s\n", "", StrFormat("  total %.2f ms", chart.total_duration_ms).c_str());
  return out;
}

std::string RenderScatterPlot(const ScatterPlot& plot) {
  std::vector<std::string> grid(static_cast<size_t>(plot.height),
                                std::string(static_cast<size_t>(plot.width), ' '));
  for (const auto& [x, y] : plot.points) {
    if (plot.x_max <= 0 || plot.y_max <= 0) {
      continue;
    }
    int col = std::min(plot.width - 1, static_cast<int>(x / plot.x_max * plot.width));
    int row = std::min(plot.height - 1, static_cast<int>(y / plot.y_max * plot.height));
    if (col >= 0 && row >= 0) {
      // Row 0 rendered at the bottom (y grows upward).
      grid[static_cast<size_t>(plot.height - 1 - row)][static_cast<size_t>(col)] = '.';
    }
  }
  std::string out = plot.title.empty() ? "" : plot.title + "\n";
  for (const auto& row : grid) {
    out += "|" + row + "|\n";
  }
  out += "+" + std::string(static_cast<size_t>(plot.width), '-') + "+\n";
  out += StrFormat("x: %s (0..%.2f)   y: %s (0..%.1f MB)\n", plot.x_label.c_str(), plot.x_max,
                   plot.y_label.c_str(), plot.y_max / (1024.0 * 1024.0));
  return out;
}

}  // namespace dfp
