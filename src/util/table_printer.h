// Aligned text table rendering for benchmark output and query results.
#ifndef DFP_SRC_UTIL_TABLE_PRINTER_H_
#define DFP_SRC_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace dfp {

// Collects rows of string cells and renders them with aligned columns.
class TablePrinter {
 public:
  // `right_align[i]` selects right alignment for column i (defaults to left for all).
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);
  void SetRightAlign(size_t column, bool right);

  std::string Render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<bool> right_align_;
};

}  // namespace dfp

#endif  // DFP_SRC_UTIL_TABLE_PRINTER_H_
