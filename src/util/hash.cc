#include "src/util/hash.h"

#include <array>

namespace dfp {
namespace {

// CRC32-C (polynomial 0x1EDC6F41, reflected 0x82F63B78) lookup table, computed at start-up.
std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256> kCrcTable = BuildCrcTable();

inline uint32_t CrcByte(uint32_t crc, uint8_t byte) {
  return (crc >> 8) ^ kCrcTable[(crc ^ byte) & 0xFFu];
}

inline uint64_t RotateRight(uint64_t value, unsigned amount) {
  amount &= 63u;
  if (amount == 0) {
    return value;
  }
  return (value >> amount) | (value << (64 - amount));
}

}  // namespace

uint32_t Crc32u64(uint32_t seed, uint64_t value) {
  uint32_t crc = seed;
  for (int i = 0; i < 8; ++i) {
    crc = CrcByte(crc, static_cast<uint8_t>(value >> (i * 8)));
  }
  return crc;
}

uint64_t HashKey(uint64_t key) {
  // Matches the instruction sequence emitted by the code generator:
  //   %7 = crc32 kHashSeed1, %key
  //   %8 = crc32 kHashSeed2, %key
  //   %9 = rotr %8, 32
  //   %10 = xor %7, %9
  //   %11 = mul %10, kHashMultiplier
  uint64_t lane1 = Crc32u64(static_cast<uint32_t>(kHashSeed1), key);
  uint64_t lane2 = Crc32u64(static_cast<uint32_t>(kHashSeed2), key);
  uint64_t mixed = lane1 ^ RotateRight(lane2, 32);
  return mixed * kHashMultiplier;
}

uint64_t HashCombine(uint64_t a, uint64_t b) {
  return RotateRight(a, 17) ^ (b * kHashMultiplier);
}

}  // namespace dfp
