// Fixed-point decimal arithmetic with two fractional digits, matching TPC-H money semantics.
//
// Decimals are stored as scaled int64 values (price 12.34 -> 1234) both host-side and in VCPU
// memory; the code generator emits plain integer instructions with explicit rescaling, which is
// what makes division show up as a hotspot in generated code, as in Listing 1 of the paper.
#ifndef DFP_SRC_UTIL_DECIMAL_H_
#define DFP_SRC_UTIL_DECIMAL_H_

#include <cstdint>
#include <string>

namespace dfp {

inline constexpr int64_t kDecimalScale = 100;  // Two fractional digits.

// Constructs a scaled decimal from whole and fractional (cent) parts.
inline constexpr int64_t MakeDecimal(int64_t whole, int64_t cents) {
  return whole * kDecimalScale + (whole < 0 ? -cents : cents);
}

// Multiplication of two scale-2 decimals, truncating to scale 2 (matches generated code).
inline constexpr int64_t DecimalMul(int64_t a, int64_t b) { return a * b / kDecimalScale; }

// Division of two scale-2 decimals, truncating to scale 2 (matches generated code).
inline constexpr int64_t DecimalDiv(int64_t a, int64_t b) { return a * kDecimalScale / b; }

// Renders a scaled decimal as "-12.34".
inline std::string DecimalToString(int64_t value) {
  int64_t whole = value / kDecimalScale;
  int64_t cents = value % kDecimalScale;
  if (cents < 0) {
    cents = -cents;
  }
  std::string out = (value < 0 && whole == 0) ? "-0" : std::to_string(whole);
  out.push_back('.');
  out.push_back(static_cast<char>('0' + cents / 10));
  out.push_back(static_cast<char>('0' + cents % 10));
  return out;
}

// Converts a scaled decimal to a double (used when aggregates produce averages).
inline constexpr double DecimalToDouble(int64_t value) {
  return static_cast<double>(value) / static_cast<double>(kDecimalScale);
}

}  // namespace dfp

#endif  // DFP_SRC_UTIL_DECIMAL_H_
