#include "src/util/date.h"

#include <cstdio>

#include "src/util/check.h"

namespace dfp {

// Conversion based on Howard Hinnant's public-domain civil-days algorithms.
int32_t DateFromYmd(int year, int month, int day) {
  year -= month <= 2;
  const int era = (year >= 0 ? year : year - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(year - era * 400);
  const unsigned doy =
      static_cast<unsigned>((153 * (month + (month > 2 ? -3 : 9)) + 2) / 5 + day - 1);
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return static_cast<int32_t>(era * 146097 + static_cast<int>(doe) - 719468);
}

void YmdFromDate(int32_t days, int* year, int* month, int* day) {
  int32_t z = days + 719468;
  const int era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int y = static_cast<int>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  *day = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  *month = static_cast<int>(mp + (mp < 10 ? 3 : -9));
  *year = y + (*month <= 2);
}

int32_t ParseDate(const std::string& text) {
  int year = 0;
  int month = 0;
  int day = 0;
  if (std::sscanf(text.c_str(), "%d-%d-%d", &year, &month, &day) != 3 || month < 1 || month > 12 ||
      day < 1 || day > 31) {
    throw Error("malformed date literal: '" + text + "'");
  }
  return DateFromYmd(year, month, day);
}

std::string DateToString(int32_t days) {
  int year = 0;
  int month = 0;
  int day = 0;
  YmdFromDate(days, &year, &month, &day);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", year, month, day);
  return buf;
}

}  // namespace dfp
