// Small string helpers used by report rendering and the SQL front end.
#ifndef DFP_SRC_UTIL_STR_H_
#define DFP_SRC_UTIL_STR_H_

#include <cstdarg>
#include <string>
#include <vector>

namespace dfp {

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Lowercases ASCII.
std::string ToLower(std::string_view text);

// "12.3%"-style percentage with one decimal place; `share` in [0, 1].
std::string PercentString(double share);

// Left-pads (align right) or right-pads (align left) to the given width.
std::string PadLeft(const std::string& text, size_t width);
std::string PadRight(const std::string& text, size_t width);

// Matches a SQL LIKE pattern ('%' any run, '_' any single char) against `text`.
bool LikeMatch(std::string_view text, std::string_view pattern);

}  // namespace dfp

#endif  // DFP_SRC_UTIL_STR_H_
