// Hashing primitives shared by the query engine and the generated code's semantics.
//
// The VCPU exposes a `crc32` instruction whose behaviour must match the host-side implementation
// here, because hash tables are built by generated code but are also inspected by host-side
// components (the Volcano interpreter oracle and tests).
#ifndef DFP_SRC_UTIL_HASH_H_
#define DFP_SRC_UTIL_HASH_H_

#include <cstdint>

namespace dfp {

// CRC32-C (Castagnoli) of an 8-byte value folded into `seed`, mirroring the x86 crc32q
// instruction semantics that compiling engines such as Umbra emit for hashing.
uint32_t Crc32u64(uint32_t seed, uint64_t value);

// 64-bit hash of a 64-bit key built from two crc32 lanes, a rotate, and a multiplicative mix.
// This is the exact sequence the code generator emits (cf. Listing 1 of the paper), so host and
// generated code agree on hash values.
uint64_t HashKey(uint64_t key);

// Combines two hashes (for multi-column keys).
uint64_t HashCombine(uint64_t a, uint64_t b);

// Seeds used by the generated hashing sequence. Exposed so the code generator can emit them as
// immediates and tests can cross-check.
inline constexpr uint64_t kHashSeed1 = 5961697176435608501ull;
inline constexpr uint64_t kHashSeed2 = 2231409791114444147ull;
inline constexpr uint64_t kHashMultiplier = 2685821657736338717ull;

}  // namespace dfp

#endif  // DFP_SRC_UTIL_HASH_H_
