// Lightweight invariant checking and error reporting used across the library.
//
// DFP_CHECK aborts on violated internal invariants (programming errors); dfp::Error is thrown for
// recoverable, user-facing failures (parse errors, binding errors, bad configuration).
#ifndef DFP_SRC_UTIL_CHECK_H_
#define DFP_SRC_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace dfp {

// Exception type for user-facing errors (malformed SQL, unknown tables, invalid configuration).
class Error : public std::runtime_error {
 public:
  explicit Error(std::string message) : std::runtime_error(std::move(message)) {}
};

namespace internal {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "DFP_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace internal

}  // namespace dfp

// Aborts the process when `cond` is false. Used for internal invariants that indicate bugs in the
// library itself, never for input validation.
#define DFP_CHECK(cond)                                         \
  do {                                                          \
    if (!(cond)) {                                              \
      ::dfp::internal::CheckFailed(#cond, __FILE__, __LINE__);  \
    }                                                           \
  } while (false)

// Marks unreachable code paths.
#define DFP_UNREACHABLE() ::dfp::internal::CheckFailed("unreachable", __FILE__, __LINE__)

#endif  // DFP_SRC_UTIL_CHECK_H_
