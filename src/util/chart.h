// ASCII chart rendering for profiling reports (terminal equivalents of the paper's figures).
#ifndef DFP_SRC_UTIL_CHART_H_
#define DFP_SRC_UTIL_CHART_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dfp {

// Horizontal bar chart: one labelled bar per entry, scaled to the maximum value.
// Used for per-operator cost summaries (Figure 9b style).
std::string RenderBarChart(const std::vector<std::pair<std::string, double>>& entries, int width);

// Activity-over-time chart: one row per series, one column per time bucket; cell intensity
// reflects the series' share of activity within the bucket (Figure 7 / Figure 11 style).
// `values[s][b]` is the activity share of series `s` in bucket `b` (any non-negative scale).
struct TimeSeriesChart {
  std::vector<std::string> series_names;
  std::vector<std::vector<double>> values;  // [series][bucket]
  double total_duration_ms = 0.0;
};
std::string RenderTimeSeriesChart(const TimeSeriesChart& chart);

// Scatter plot of (x, y) points on a character grid (Figure 12 style: time vs. address).
struct ScatterPlot {
  std::string title;
  std::string x_label;
  std::string y_label;
  double x_max = 0.0;
  double y_max = 0.0;
  std::vector<std::pair<double, double>> points;
  int width = 72;
  int height = 12;
};
std::string RenderScatterPlot(const ScatterPlot& plot);

}  // namespace dfp

#endif  // DFP_SRC_UTIL_CHART_H_
