#include "src/util/table_printer.h"

#include <algorithm>

#include "src/util/str.h"

namespace dfp {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)), right_align_(header_.size(), false) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::SetRightAlign(size_t column, bool right) {
  if (column < right_align_.size()) {
    right_align_[column] = right;
  }
}

std::string TablePrinter::Render() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t i = 0; i < header_.size(); ++i) {
    widths[i] = header_[i].size();
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t i = 0; i < row.size(); ++i) {
      line += (right_align_[i] ? PadLeft(row[i], widths[i]) : PadRight(row[i], widths[i]));
      if (i + 1 < row.size()) {
        line += "  ";
      }
    }
    // Trim trailing spaces for stable golden output.
    while (!line.empty() && line.back() == ' ') {
      line.pop_back();
    }
    return line + "\n";
  };
  std::string out = render_row(header_);
  size_t total = 0;
  for (size_t w : widths) {
    total += w + 2;
  }
  out += std::string(total > 2 ? total - 2 : total, '-') + "\n";
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  return out;
}

}  // namespace dfp
