// Windowed fleet profiles: a ring of fixed-width simulated-TSC windows per plan fingerprint.
//
// The cumulative ServiceProfile answers "what is hot overall"; a long-lived serving process also
// needs "what changed since yesterday". Each completed execution folds into the window of the
// service clock at completion time (window index = service TSC / width). A window holds the
// per-operator sample histogram (sample counts plus period-scaled cycle estimates), cache-miss
// and REMOTE_DRAM event counters, and latency quantiles of the executions that completed inside
// it. Only the newest `ring_windows` windows per fingerprint are retained, so the structure is a
// bounded sliding history rather than an ever-growing log. Roll-up, text rendering, and a
// deterministic JSON export make the windows consumable offline; the service-profile text format
// (v2) embeds them next to the cumulative counters (see src/service/service_profile.h).
//
// This layer is deliberately service-agnostic: it keys on the raw structural fingerprint hash
// and consumes the same OperatorProfile/PmuCounters every report is built from, so it can also
// aggregate streams replayed from serialized profiles.
#ifndef DFP_SRC_CONTINUOUS_WINDOW_H_
#define DFP_SRC_CONTINUOUS_WINDOW_H_

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "src/engine/exec_plan.h"
#include "src/profiling/reports.h"
#include "src/tiering/tier.h"

namespace dfp {

struct WindowConfig {
  // Width of one window in simulated service-clock cycles. The default is ~5 simulated ms at
  // the 4 GHz clock — several queries per window at the experiment scales.
  uint64_t width_cycles = 20'000'000;
  // Windows retained per fingerprint; older windows fall off the ring.
  size_t ring_windows = 8;
};

// One operator's slice of one window.
struct WindowOperatorStats {
  OperatorId op = kNoOperator;
  std::string label;
  uint64_t samples = 0;
  // Samples scaled by the sampling period in force when they were folded — an estimate of the
  // cycles this operator consumed in the window that stays comparable while the adaptive
  // governor retunes the period between executions.
  uint64_t sample_cycles = 0;
};

// One fixed-width window of one fingerprint's history.
struct ProfileWindow {
  uint64_t index = 0;  // Service TSC / width: [index * width, (index + 1) * width).
  uint64_t executions = 0;
  uint64_t samples = 0;  // Operator-attributed samples folded into this window.
  // Slice of the above that ran at the baseline (cheap-compile) tier; the optimized-tier share
  // is the difference. These make tier transitions visible in the window history itself: a
  // promoted fingerprint's rings show baseline counts draining to zero.
  uint64_t baseline_executions = 0;
  uint64_t baseline_samples = 0;
  uint64_t execute_cycles = 0;  // Summed per-execution simulated wall clocks.
  uint64_t rows = 0;            // Summed result rows (cycles-per-row denominator).
  // Event counters summed over the executions of this window.
  uint64_t loads = 0;
  uint64_t l1_misses = 0;
  uint64_t l2_misses = 0;
  uint64_t l3_misses = 0;
  uint64_t remote_dram = 0;
  // Latency quantiles (simulated cycles) over this window's completed executions,
  // nearest-rank. Recomputed as executions fold in; serialized as plain fields so loaded
  // profiles render identically.
  uint64_t latency_p50 = 0;
  uint64_t latency_p95 = 0;
  uint64_t latency_max = 0;
  std::map<OperatorId, WindowOperatorStats> operators;

  // Raw latencies backing the quantiles; kept only on live windows (not serialized).
  std::vector<uint64_t> latencies;

  double CyclesPerRow() const;
  double RemoteDramShare() const;  // REMOTE_DRAM events per sampled load.
};

// The retained window ring of one fingerprint.
struct PlanWindowSeries {
  uint64_t fingerprint = 0;
  std::string name;
  std::deque<ProfileWindow> windows;  // Ascending by index; bounded by WindowConfig.
};

// All retained windows of one fingerprint collapsed into a single aggregate — the shape the
// regression differ and the fleet reports consume.
struct WindowRollup {
  uint64_t fingerprint = 0;
  std::string name;
  uint64_t window_count = 0;
  uint64_t executions = 0;
  uint64_t samples = 0;
  uint64_t baseline_executions = 0;
  uint64_t baseline_samples = 0;
  uint64_t execute_cycles = 0;
  uint64_t rows = 0;
  uint64_t loads = 0;
  uint64_t l1_misses = 0;
  uint64_t l2_misses = 0;
  uint64_t l3_misses = 0;
  uint64_t remote_dram = 0;
  uint64_t latency_p50 = 0;  // Execution-weighted median of the window medians.
  uint64_t latency_p95 = 0;  // Max over windows (conservative tail).
  uint64_t latency_max = 0;
  std::map<OperatorId, WindowOperatorStats> operators;

  double CyclesPerRow() const;
  double RemoteDramShare() const;
  // This operator's share of the rollup's attributed samples (0 when empty).
  double OperatorShare(OperatorId op) const;
};

class WindowedProfile {
 public:
  explicit WindowedProfile(WindowConfig config = WindowConfig());

  const WindowConfig& config() const { return config_; }
  void set_config(const WindowConfig& config) { config_ = config; }

  // Folds one completed execution into `fingerprint`'s window at service time `now_cycles`.
  // `profile` carries the per-operator sample aggregation, `counters` the execution's merged
  // PMU event counts, and `sampling_period` the period the samples were taken at (scales the
  // per-operator cycle estimate). Executions without operator attribution still contribute
  // latency, counters, and row counts. `tier` is the compilation tier the execution ran at;
  // the default keeps pre-tiering callers unchanged.
  void Record(uint64_t fingerprint, const std::string& name, uint64_t now_cycles,
              const OperatorProfile& profile, const PmuCounters& counters,
              uint64_t execute_cycles, uint64_t result_rows, uint64_t sampling_period,
              PlanTier tier = PlanTier::kOptimized);

  bool empty() const { return plans_.empty(); }
  const std::map<uint64_t, PlanWindowSeries>& plans() const { return plans_; }

  // Collapses one fingerprint's retained windows (empty rollup if unknown).
  WindowRollup RollUp(uint64_t fingerprint) const;
  // Same, restricted to windows with index >= `min_index` — "everything since the watermark",
  // the aggregate the regression detector compares against a baseline snapshot.
  WindowRollup RollUpSince(uint64_t fingerprint, uint64_t min_index) const;
  // Rollups of every fingerprint, ascending by fingerprint.
  std::vector<WindowRollup> RollUpAll() const;

  // The newest retained window of `fingerprint`, or null — the "current mix" the regression
  // detector compares against a baseline snapshot.
  const ProfileWindow* LatestWindow(uint64_t fingerprint) const;

  // Human-readable report: per fingerprint, one line per retained window plus a rollup line.
  std::string Render() const;

  // Deterministic JSON export (integers only; key order fixed) — diffable across runs, which
  // is what the continuous-smoke CI job checks.
  void WriteJson(std::ostream& out) const;

  // Loading hooks used by ReadServiceProfile (v2): windows and their operator rows arrive in
  // file order; the ring bound is enforced as they load.
  void LoadWindow(uint64_t fingerprint, const std::string& name, ProfileWindow window);
  void LoadWindowOperator(uint64_t fingerprint, uint64_t window_index, WindowOperatorStats stats);

 private:
  ProfileWindow& WindowFor(PlanWindowSeries& series, uint64_t index);

  WindowConfig config_;
  std::map<uint64_t, PlanWindowSeries> plans_;
};

}  // namespace dfp

#endif  // DFP_SRC_CONTINUOUS_WINDOW_H_
