// Adaptive sampling governor: auto-tunes the PMU sampling period per plan fingerprint so that
// measured profiling overhead stays under a configurable budget.
//
// The simulated PMU charges real cycles for every sample capture and buffer flush (PmuCosts),
// and the Pmu now reports exactly what it charged (SamplingOverhead). The governor closes the
// loop: after each execution it observes (overhead cycles, busy cycles, armed-event count,
// period used) and solves for the period that puts the plan's CUMULATIVE overhead share at the
// budget — samples(P) = events / P at cost-per-sample cps gives share f(P) = events * cps /
// (P * base), so P* = events * cps / (budget * base), evaluated on the fingerprint's running
// totals. On steady load this is the per-execution analytic optimum and lands in one or two
// observations; on bursty load solving against the totals converges the long-run average share
// to the budget instead of oscillating anti-phase with the bursts. An EWMA damps the step.
//
// The governor is OFF by default: changing the period between executions changes the sample
// stream, which would silently break workflows that rely on byte-identical profiles across
// reruns (warm == cold). Serving layers that want bounded always-on profiling opt in.
#ifndef DFP_SRC_CONTINUOUS_GOVERNOR_H_
#define DFP_SRC_CONTINUOUS_GOVERNOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/pmu/pmu.h"

namespace dfp {

struct GovernorConfig {
  bool enabled = false;
  // Target ceiling for sampling overhead as a share of non-overhead execution cycles.
  double overhead_budget = 0.02;
  // Clamp range for chosen periods (events between samples).
  uint64_t min_period = 500;
  uint64_t max_period = 5'000'000;
  // EWMA weight of the newest analytic solve (1.0 = jump straight to it).
  double smoothing = 0.7;
  // Weight per-pipeline sampling periods by critical-path share (fed via ObserveCriticality):
  // pipelines on a plan's critical path are sampled at a shorter period, off-path pipelines at
  // a longer one, concentrating the fixed overhead budget where the latency actually lives.
  // Takes effect only when the governor itself is enabled.
  bool criticality_weighting = true;
};

// Per-fingerprint tuning state, exposed for reports and benchmarks.
struct GovernorPlanState {
  uint64_t fingerprint = 0;
  std::string name;
  uint64_t period = 0;            // Period the next execution of this plan will be armed with.
  uint64_t observations = 0;      // Executions folded in.
  uint64_t overhead_cycles = 0;   // Measured capture+flush cycles, cumulative.
  uint64_t busy_cycles = 0;       // Worker busy cycles (includes overhead), cumulative.
  uint64_t samples = 0;           // Samples recorded, cumulative.
  uint64_t armed_events = 0;      // Occurrences of the armed event, cumulative.
  double last_share = 0;          // Overhead share of the most recent observation.
  // Last observed per-pipeline critical-path shares (percent, indexed by pipeline id) and the
  // top share among them, from ObserveCriticality. Empty until criticality is reported.
  std::vector<uint64_t> pipeline_criticality_pct;
  uint64_t top_criticality_pct = 0;

  // Cumulative overhead share: overhead / (busy - overhead).
  double OverheadShare() const;
};

class SamplingGovernor {
 public:
  explicit SamplingGovernor(GovernorConfig config = GovernorConfig());

  const GovernorConfig& config() const { return config_; }
  bool enabled() const { return config_.enabled; }

  // Period to arm the next execution of `fingerprint` with. Falls back to `default_period`
  // (clamped) on the first sighting or when disabled (then unclamped, pass-through).
  uint64_t PeriodFor(uint64_t fingerprint, uint64_t default_period) const;

  // Folds one completed execution: the overhead the PMU charged, the workers' busy cycles, the
  // total armed-event count the samples were drawn from, and the period that was in force.
  // No-op when disabled.
  void Observe(uint64_t fingerprint, const std::string& name, const SamplingOverhead& overhead,
               uint64_t busy_cycles, uint64_t armed_events, uint64_t period_used);

  // Folds one execution's critical-path analysis (per-pipeline criticality shares in percent,
  // indexed by pipeline id — src/critpath/). No-op when disabled.
  void ObserveCriticality(uint64_t fingerprint, const std::string& name,
                          std::vector<uint64_t> pipeline_share_pct);

  // Per-pipeline periods for the next execution of `fingerprint`, derived from the last
  // observed criticality. Shares are mean-centered: a pipeline sitting d points above the mean
  // share samples at base * 100 / (100 + d) — strictly shorter than the base — and one d
  // points below at the mirrored strictly longer period, so the critical path's owner is
  // always sampled strictly finer than every off-path pipeline. Because the rate multipliers
  // (100 + d) / 100 sum to the pipeline count, the redistribution is budget-neutral: the
  // samples the budget pays for move from the pipelines that merely burn cycles to the ones
  // that gate latency without raising the total rate the analytic solve in Observe()
  // regulated. Returns an empty vector (uniform sampling) when disabled, when weighting is
  // off, or before any criticality was observed.
  std::vector<uint64_t> PipelinePeriods(uint64_t fingerprint, uint64_t base_period,
                                        size_t pipelines) const;

  const std::map<uint64_t, GovernorPlanState>& plans() const { return plans_; }
  const GovernorPlanState* Find(uint64_t fingerprint) const;

  // Fleet-wide cumulative overhead share across all observed executions.
  double OverallShare() const;

  // One line per fingerprint: chosen period, observations, measured share vs. budget.
  std::string Render() const;

 private:
  uint64_t Clamp(uint64_t period) const;

  GovernorConfig config_;
  std::map<uint64_t, GovernorPlanState> plans_;
};

}  // namespace dfp

#endif  // DFP_SRC_CONTINUOUS_GOVERNOR_H_
