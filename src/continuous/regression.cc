#include "src/continuous/regression.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <sstream>

#include "src/profiling/reports.h"
#include "src/util/check.h"

namespace dfp {
namespace {

// Per-fingerprint diff shared by DetectRegressions and JudgeRegression: fills `finding` from
// `base` vs `current` and returns true when any check fired. `current` must already have
// enough samples (the callers gate on thresholds.min_samples).
bool DiffAgainstBaseline(const PlanBaseline& base, const WindowRollup& current,
                         const RegressionThresholds& thresholds, RegressionFinding* finding) {
  finding->fingerprint = base.fingerprint;
  finding->name = base.name;
  finding->baseline_cycles_per_row = base.cycles_per_row;
  finding->current_cycles_per_row = current.CyclesPerRow();
  finding->baseline_remote_share = base.remote_share;
  finding->current_remote_share = current.RemoteDramShare();

  // Union of operators on either side, in operator-id order.
  std::set<OperatorId> ops;
  for (const auto& [op, stats] : base.operators) {
    (void)stats;
    ops.insert(op);
  }
  for (const auto& [op, stats] : current.operators) {
    (void)stats;
    ops.insert(op);
  }
  for (OperatorId op : ops) {
    OperatorDrift drift;
    drift.op = op;
    auto base_it = base.operators.find(op);
    auto cur_it = current.operators.find(op);
    drift.label = cur_it != current.operators.end() ? cur_it->second.label
                                                    : base_it->second.label;
    drift.baseline_share = base.OperatorShare(op);
    drift.current_share = current.OperatorShare(op);
    const bool above_floor = drift.baseline_share >= thresholds.min_share ||
                             drift.current_share >= thresholds.min_share;
    if (!above_floor) {
      continue;
    }
    const uint64_t base_hits = base_it != base.operators.end() ? base_it->second.samples : 0;
    const uint64_t cur_hits = cur_it != current.operators.end() ? cur_it->second.samples : 0;
    const double pooled = static_cast<double>(base_hits + cur_hits) /
                          static_cast<double>(base.samples + current.samples);
    const double stderr_drift =
        std::sqrt(pooled * (1.0 - pooled) *
                  (1.0 / static_cast<double>(base.samples) +
                   1.0 / static_cast<double>(current.samples)));
    drift.flagged = std::abs(drift.current_share - drift.baseline_share) >
                    thresholds.share_drift + thresholds.share_noise_z * stderr_drift;
    finding->share_regressed |= drift.flagged;
    finding->drifts.push_back(std::move(drift));
  }

  finding->cycles_per_row_regressed =
      base.cycles_per_row > 0 &&
      finding->current_cycles_per_row > base.cycles_per_row * thresholds.cycles_per_row_ratio;
  finding->remote_regressed = finding->current_remote_share - finding->baseline_remote_share >
                              thresholds.remote_share_drift;
  return finding->share_regressed || finding->cycles_per_row_regressed ||
         finding->remote_regressed;
}

}  // namespace

double PlanBaseline::OperatorShare(OperatorId op) const {
  if (samples == 0) {
    return 0;
  }
  auto it = operators.find(op);
  if (it == operators.end()) {
    return 0;
  }
  return static_cast<double>(it->second.samples) / static_cast<double>(samples);
}

void BaselineStore::Snapshot(const WindowedProfile& profile, uint64_t min_samples) {
  baselines_.clear();
  for (const WindowRollup& rollup : profile.RollUpAll()) {
    if (rollup.samples < min_samples) {
      continue;
    }
    PlanBaseline baseline;
    baseline.fingerprint = rollup.fingerprint;
    baseline.name = rollup.name;
    baseline.samples = rollup.samples;
    if (const ProfileWindow* latest = profile.LatestWindow(rollup.fingerprint)) {
      baseline.watermark = latest->index;
    }
    baseline.cycles_per_row = rollup.CyclesPerRow();
    baseline.remote_share = rollup.RemoteDramShare();
    baseline.operators = rollup.operators;
    baselines_[rollup.fingerprint] = std::move(baseline);
  }
}

const PlanBaseline* BaselineStore::Find(uint64_t fingerprint) const {
  auto it = baselines_.find(fingerprint);
  return it == baselines_.end() ? nullptr : &it->second;
}

void BaselineStore::AddLoadedBaseline(PlanBaseline baseline) {
  baselines_[baseline.fingerprint] = std::move(baseline);
}

void BaselineStore::AddLoadedBaselineOperator(uint64_t fingerprint, WindowOperatorStats stats) {
  auto it = baselines_.find(fingerprint);
  if (it == baselines_.end()) {
    throw Error("service profile bop line without its baseline line");
  }
  it->second.operators[stats.op] = std::move(stats);
}

RegressionAlertFn DefaultRegressionAlert() {
  return [](const RegressionFinding& finding) {
    std::string shard;
    if (finding.shard_id != 0) {
      shard = " shard " + std::to_string(finding.shard_id);
    }
    std::fprintf(stderr, "ALERT regression plan %016llx %s [%s%s%s ]%s\n",
                 static_cast<unsigned long long>(finding.fingerprint), finding.name.c_str(),
                 finding.share_regressed ? " mix" : "",
                 finding.cycles_per_row_regressed ? " cycles/row" : "",
                 finding.remote_regressed ? " +remote" : "", shard.c_str());
  };
}

std::vector<RegressionFinding> DetectRegressions(const BaselineStore& baseline,
                                                 const WindowedProfile& profile,
                                                 const RegressionThresholds& thresholds,
                                                 const RegressionAlertFn& alert,
                                                 uint32_t shard_id) {
  std::vector<RegressionFinding> findings;
  for (const auto& [fingerprint, series] : profile.plans()) {
    (void)series;
    const PlanBaseline* base = baseline.Find(fingerprint);
    if (base == nullptr) {
      continue;
    }
    // Everything that arrived since the snapshot; pre-baseline windows never dilute the diff.
    const WindowRollup current = profile.RollUpSince(fingerprint, base->watermark + 1);
    if (current.samples < thresholds.min_samples) {
      continue;
    }

    RegressionFinding finding;
    finding.shard_id = shard_id;
    if (DiffAgainstBaseline(*base, current, thresholds, &finding)) {
      if (alert) {
        alert(finding);
      }
      findings.push_back(std::move(finding));
    }
  }
  return findings;
}

const char* GuardVerdictName(GuardVerdict verdict) {
  switch (verdict) {
    case GuardVerdict::kInsufficientEvidence:
      return "insufficient-evidence";
    case GuardVerdict::kClean:
      return "clean";
    case GuardVerdict::kRegressed:
      return "regressed";
  }
  return "?";
}

GuardVerdict JudgeRegression(const BaselineStore& baseline, const WindowedProfile& profile,
                             uint64_t fingerprint, const RegressionThresholds& thresholds,
                             RegressionFinding* finding) {
  const PlanBaseline* base = baseline.Find(fingerprint);
  if (base == nullptr) {
    return GuardVerdict::kInsufficientEvidence;
  }
  const WindowRollup current = profile.RollUpSince(fingerprint, base->watermark + 1);
  if (current.samples < thresholds.min_samples) {
    return GuardVerdict::kInsufficientEvidence;
  }
  RegressionFinding local;
  const bool regressed = DiffAgainstBaseline(*base, current, thresholds, &local);
  if (regressed && finding != nullptr) {
    *finding = std::move(local);
  }
  return regressed ? GuardVerdict::kRegressed : GuardVerdict::kClean;
}

std::string RenderRegressionReport(const std::vector<RegressionFinding>& findings) {
  std::ostringstream out;
  if (findings.empty()) {
    out << "=== Regression report: no drift beyond thresholds ===\n";
    return out.str();
  }
  char line[256];
  out << "=== Regression report: " << findings.size() << " plan(s) drifted ===\n";
  for (const RegressionFinding& finding : findings) {
    std::snprintf(line, sizeof(line), "plan %016llx  %s  [%s%s%s]\n",
                  static_cast<unsigned long long>(finding.fingerprint), finding.name.c_str(),
                  finding.share_regressed ? " mix" : "",
                  finding.cycles_per_row_regressed ? " cycles/row" : "",
                  finding.remote_regressed ? " +remote" : "");
    out << line;
    std::snprintf(line, sizeof(line), "  cycles/row %.1f -> %.1f   remote/load %.3f -> %.3f\n",
                  finding.baseline_cycles_per_row, finding.current_cycles_per_row,
                  finding.baseline_remote_share, finding.current_remote_share);
    out << line;
    std::vector<CostDiffRow> rows;
    rows.reserve(finding.drifts.size());
    for (const OperatorDrift& drift : finding.drifts) {
      CostDiffRow row;
      row.label = drift.label;
      row.before_share = drift.baseline_share;
      row.after_share = drift.current_share;
      row.flagged = drift.flagged;
      rows.push_back(std::move(row));
    }
    out << RenderCostDiff(rows, "baseline", "current");
  }
  return out.str();
}

}  // namespace dfp
