#include "src/continuous/window.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "src/util/check.h"

namespace dfp {
namespace {

std::string HexKey(uint64_t fingerprint) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx", static_cast<unsigned long long>(fingerprint));
  return buffer;
}

// Nearest-rank quantile of an ascending-sorted vector.
uint64_t Quantile(const std::vector<uint64_t>& sorted, double q) {
  if (sorted.empty()) {
    return 0;
  }
  size_t rank = static_cast<size_t>(q * static_cast<double>(sorted.size()) + 0.5);
  rank = std::clamp<size_t>(rank, 1, sorted.size());
  return sorted[rank - 1];
}

}  // namespace

double ProfileWindow::CyclesPerRow() const {
  return static_cast<double>(execute_cycles) / static_cast<double>(std::max<uint64_t>(1, rows));
}

double ProfileWindow::RemoteDramShare() const {
  return loads == 0 ? 0 : static_cast<double>(remote_dram) / static_cast<double>(loads);
}

double WindowRollup::CyclesPerRow() const {
  return static_cast<double>(execute_cycles) / static_cast<double>(std::max<uint64_t>(1, rows));
}

double WindowRollup::RemoteDramShare() const {
  return loads == 0 ? 0 : static_cast<double>(remote_dram) / static_cast<double>(loads);
}

double WindowRollup::OperatorShare(OperatorId op) const {
  if (samples == 0) {
    return 0;
  }
  auto it = operators.find(op);
  if (it == operators.end()) {
    return 0;
  }
  return static_cast<double>(it->second.samples) / static_cast<double>(samples);
}

WindowedProfile::WindowedProfile(WindowConfig config) : config_(config) {
  DFP_CHECK(config_.width_cycles > 0 && config_.ring_windows >= 1);
}

ProfileWindow& WindowedProfile::WindowFor(PlanWindowSeries& series, uint64_t index) {
  // The service clock is monotone, so a new index only ever extends the ring at the back.
  if (series.windows.empty() || series.windows.back().index < index) {
    ProfileWindow window;
    window.index = index;
    series.windows.push_back(std::move(window));
    while (series.windows.size() > config_.ring_windows) {
      series.windows.pop_front();
    }
  }
  DFP_CHECK(series.windows.back().index == index);
  return series.windows.back();
}

void WindowedProfile::Record(uint64_t fingerprint, const std::string& name, uint64_t now_cycles,
                             const OperatorProfile& profile, const PmuCounters& counters,
                             uint64_t execute_cycles, uint64_t result_rows,
                             uint64_t sampling_period, PlanTier tier) {
  PlanWindowSeries& series = plans_[fingerprint];
  if (series.name.empty()) {
    series.fingerprint = fingerprint;
    series.name = name;
  }
  ProfileWindow& window = WindowFor(series, now_cycles / config_.width_cycles);
  ++window.executions;
  if (tier == PlanTier::kBaseline) {
    ++window.baseline_executions;
  }
  window.execute_cycles += execute_cycles;
  window.rows += result_rows;
  window.loads += counters[PmuEvent::kLoads];
  window.l1_misses += counters[PmuEvent::kL1Miss];
  window.l2_misses += counters[PmuEvent::kL2Miss];
  window.l3_misses += counters[PmuEvent::kL3Miss];
  window.remote_dram += counters[PmuEvent::kRemoteDram];

  for (const OperatorCost& cost : profile.operators) {
    WindowOperatorStats& stats = window.operators[cost.op];
    stats.op = cost.op;
    if (stats.label.empty()) {
      stats.label = cost.label;
    }
    stats.samples += cost.samples;
    stats.sample_cycles += cost.samples * sampling_period;
    window.samples += cost.samples;
    if (tier == PlanTier::kBaseline) {
      window.baseline_samples += cost.samples;
    }
  }

  // Insert the latency in sorted position and refresh the stored quantiles.
  auto pos = std::upper_bound(window.latencies.begin(), window.latencies.end(), execute_cycles);
  window.latencies.insert(pos, execute_cycles);
  window.latency_p50 = Quantile(window.latencies, 0.50);
  window.latency_p95 = Quantile(window.latencies, 0.95);
  window.latency_max = window.latencies.back();
}

WindowRollup WindowedProfile::RollUp(uint64_t fingerprint) const {
  return RollUpSince(fingerprint, 0);
}

WindowRollup WindowedProfile::RollUpSince(uint64_t fingerprint, uint64_t min_index) const {
  WindowRollup rollup;
  rollup.fingerprint = fingerprint;
  auto it = plans_.find(fingerprint);
  if (it == plans_.end()) {
    return rollup;
  }
  const PlanWindowSeries& series = it->second;
  rollup.name = series.name;
  // Execution-weighted median of window medians: deterministic and computable from loaded
  // profiles (raw latencies are not serialized).
  std::vector<std::pair<uint64_t, uint64_t>> medians;  // (p50, executions)
  for (const ProfileWindow& window : series.windows) {
    if (window.index < min_index) {
      continue;
    }
    ++rollup.window_count;
    rollup.executions += window.executions;
    rollup.samples += window.samples;
    rollup.baseline_executions += window.baseline_executions;
    rollup.baseline_samples += window.baseline_samples;
    rollup.execute_cycles += window.execute_cycles;
    rollup.rows += window.rows;
    rollup.loads += window.loads;
    rollup.l1_misses += window.l1_misses;
    rollup.l2_misses += window.l2_misses;
    rollup.l3_misses += window.l3_misses;
    rollup.remote_dram += window.remote_dram;
    rollup.latency_p95 = std::max(rollup.latency_p95, window.latency_p95);
    rollup.latency_max = std::max(rollup.latency_max, window.latency_max);
    medians.push_back({window.latency_p50, window.executions});
    for (const auto& [op, stats] : window.operators) {
      WindowOperatorStats& total = rollup.operators[op];
      total.op = op;
      if (total.label.empty()) {
        total.label = stats.label;
      }
      total.samples += stats.samples;
      total.sample_cycles += stats.sample_cycles;
    }
  }
  std::sort(medians.begin(), medians.end());
  uint64_t half = rollup.executions / 2;
  uint64_t seen = 0;
  for (const auto& [p50, executions] : medians) {
    seen += executions;
    if (seen > half) {
      rollup.latency_p50 = p50;
      break;
    }
  }
  return rollup;
}

std::vector<WindowRollup> WindowedProfile::RollUpAll() const {
  std::vector<WindowRollup> rollups;
  rollups.reserve(plans_.size());
  for (const auto& [fingerprint, series] : plans_) {
    (void)series;
    rollups.push_back(RollUp(fingerprint));
  }
  return rollups;
}

const ProfileWindow* WindowedProfile::LatestWindow(uint64_t fingerprint) const {
  auto it = plans_.find(fingerprint);
  if (it == plans_.end() || it->second.windows.empty()) {
    return nullptr;
  }
  return &it->second.windows.back();
}

std::string WindowedProfile::Render() const {
  std::ostringstream out;
  out << "=== Windowed fleet profile (width " << config_.width_cycles << " cyc, ring "
      << config_.ring_windows << ") ===\n";
  for (const auto& [fingerprint, series] : plans_) {
    out << "plan " << HexKey(fingerprint) << "  " << series.name << "\n";
    for (const ProfileWindow& window : series.windows) {
      out << "  w" << window.index << "  exec " << window.executions << "  samples "
          << window.samples << "  lat p50/p95/max " << window.latency_p50 << "/"
          << window.latency_p95 << "/" << window.latency_max << "  l3miss " << window.l3_misses
          << "  remote " << window.remote_dram;
      if (window.baseline_executions > 0) {
        out << "  baseline " << window.baseline_executions << "/" << window.executions
            << " exec " << window.baseline_samples << " samples";
      }
      out << "\n";
      // Operators, hottest first (ties by operator id for a stable report).
      std::vector<const WindowOperatorStats*> ops;
      for (const auto& [op, stats] : window.operators) {
        (void)op;
        ops.push_back(&stats);
      }
      std::sort(ops.begin(), ops.end(), [](const WindowOperatorStats* a,
                                           const WindowOperatorStats* b) {
        return a->samples != b->samples ? a->samples > b->samples : a->op < b->op;
      });
      for (const WindowOperatorStats* stats : ops) {
        char share[32];
        std::snprintf(share, sizeof(share), "%5.1f%%",
                      window.samples == 0 ? 0.0
                                          : 100.0 * static_cast<double>(stats->samples) /
                                                static_cast<double>(window.samples));
        out << "    " << share << "  " << stats->label << "  " << stats->samples << " samples\n";
      }
    }
  }
  return out.str();
}

void WindowedProfile::WriteJson(std::ostream& out) const {
  out << "{\"width_cycles\":" << config_.width_cycles
      << ",\"ring_windows\":" << config_.ring_windows << ",\"plans\":[";
  bool first_plan = true;
  for (const auto& [fingerprint, series] : plans_) {
    if (!first_plan) {
      out << ",";
    }
    first_plan = false;
    out << "{\"fingerprint\":\"" << HexKey(fingerprint) << "\",\"name\":\"" << series.name
        << "\",\"windows\":[";
    bool first_window = true;
    for (const ProfileWindow& window : series.windows) {
      if (!first_window) {
        out << ",";
      }
      first_window = false;
      out << "{\"index\":" << window.index << ",\"executions\":" << window.executions
          << ",\"samples\":" << window.samples
          << ",\"baseline_executions\":" << window.baseline_executions
          << ",\"baseline_samples\":" << window.baseline_samples
          << ",\"execute_cycles\":" << window.execute_cycles
          << ",\"rows\":" << window.rows << ",\"loads\":" << window.loads
          << ",\"l1_misses\":" << window.l1_misses << ",\"l2_misses\":" << window.l2_misses
          << ",\"l3_misses\":" << window.l3_misses << ",\"remote_dram\":" << window.remote_dram
          << ",\"latency_p50\":" << window.latency_p50
          << ",\"latency_p95\":" << window.latency_p95
          << ",\"latency_max\":" << window.latency_max << ",\"operators\":[";
      bool first_op = true;
      for (const auto& [op, stats] : window.operators) {
        if (!first_op) {
          out << ",";
        }
        first_op = false;
        out << "{\"op\":" << op << ",\"label\":\"" << stats.label
            << "\",\"samples\":" << stats.samples << ",\"sample_cycles\":" << stats.sample_cycles
            << "}";
      }
      out << "]}";
    }
    out << "]}";
  }
  out << "]}\n";
}

void WindowedProfile::LoadWindow(uint64_t fingerprint, const std::string& name,
                                 ProfileWindow window) {
  PlanWindowSeries& series = plans_[fingerprint];
  if (series.name.empty()) {
    series.fingerprint = fingerprint;
    series.name = name;
  }
  if (!series.windows.empty() && series.windows.back().index >= window.index) {
    throw Error("service profile window lines out of order");
  }
  series.windows.push_back(std::move(window));
  while (series.windows.size() > config_.ring_windows) {
    series.windows.pop_front();
  }
}

void WindowedProfile::LoadWindowOperator(uint64_t fingerprint, uint64_t window_index,
                                         WindowOperatorStats stats) {
  auto it = plans_.find(fingerprint);
  if (it == plans_.end() || it->second.windows.empty() ||
      it->second.windows.back().index != window_index) {
    throw Error("service profile wop line without its window line");
  }
  ProfileWindow& window = it->second.windows.back();
  window.samples += stats.samples;
  window.operators[stats.op] = std::move(stats);
}

}  // namespace dfp
