#include "src/continuous/governor.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "src/util/check.h"

namespace dfp {

double GovernorPlanState::OverheadShare() const {
  if (busy_cycles <= overhead_cycles) {
    return 0;
  }
  return static_cast<double>(overhead_cycles) /
         static_cast<double>(busy_cycles - overhead_cycles);
}

SamplingGovernor::SamplingGovernor(GovernorConfig config) : config_(config) {
  DFP_CHECK(config_.overhead_budget > 0 && config_.min_period >= 1 &&
            config_.min_period <= config_.max_period);
  DFP_CHECK(config_.smoothing > 0 && config_.smoothing <= 1.0);
}

uint64_t SamplingGovernor::Clamp(uint64_t period) const {
  return std::clamp(period, config_.min_period, config_.max_period);
}

uint64_t SamplingGovernor::PeriodFor(uint64_t fingerprint, uint64_t default_period) const {
  if (!config_.enabled) {
    return default_period;
  }
  auto it = plans_.find(fingerprint);
  if (it != plans_.end() && it->second.period != 0) {
    return it->second.period;
  }
  return Clamp(default_period);
}

void SamplingGovernor::Observe(uint64_t fingerprint, const std::string& name,
                               const SamplingOverhead& overhead, uint64_t busy_cycles,
                               uint64_t armed_events, uint64_t period_used) {
  if (!config_.enabled || period_used == 0) {
    return;
  }
  GovernorPlanState& state = plans_[fingerprint];
  if (state.observations == 0) {
    state.fingerprint = fingerprint;
    state.name = name;
    state.period = Clamp(period_used);
  }
  ++state.observations;
  state.overhead_cycles += overhead.total_cycles();
  state.busy_cycles += busy_cycles;
  state.samples += overhead.samples;
  state.armed_events += armed_events;

  const uint64_t obs_overhead = overhead.total_cycles();
  const uint64_t obs_base =
      busy_cycles > obs_overhead ? busy_cycles - obs_overhead : busy_cycles;
  state.last_share = obs_base == 0 ? 0 : static_cast<double>(obs_overhead) /
                                             static_cast<double>(obs_base);

  uint64_t target = state.period;
  const uint64_t cum_base = state.busy_cycles > state.overhead_cycles
                                ? state.busy_cycles - state.overhead_cycles
                                : state.busy_cycles;
  if (state.samples == 0) {
    // Period too coarse to see anything yet: halve towards the floor so the plan stays profiled.
    target = Clamp(period_used / 2);
  } else if (cum_base > 0 && state.armed_events > 0) {
    // Solved on the fingerprint's running totals: the per-event average sample cost and event
    // density over all observations, so bursts average out instead of whipsawing the period.
    // `cum_base` excludes the overhead itself — the budget is relative to useful work.
    const double cps = static_cast<double>(state.overhead_cycles) /
                       static_cast<double>(state.samples);
    const double events_per_obs = static_cast<double>(state.armed_events) /
                                  static_cast<double>(state.observations);
    const double base_per_obs = static_cast<double>(cum_base) /
                                static_cast<double>(state.observations);
    const double solved = events_per_obs * cps / (config_.overhead_budget * base_per_obs);
    target = Clamp(static_cast<uint64_t>(solved + 0.5));
  }
  const double blended = config_.smoothing * static_cast<double>(target) +
                         (1.0 - config_.smoothing) * static_cast<double>(state.period);
  state.period = Clamp(static_cast<uint64_t>(blended + 0.5));
}

void SamplingGovernor::ObserveCriticality(uint64_t fingerprint, const std::string& name,
                                          std::vector<uint64_t> pipeline_share_pct) {
  if (!config_.enabled) {
    return;
  }
  GovernorPlanState& state = plans_[fingerprint];
  if (state.observations == 0 && state.name.empty()) {
    state.fingerprint = fingerprint;
    state.name = name;
  }
  state.top_criticality_pct = 0;
  for (uint64_t share : pipeline_share_pct) {
    state.top_criticality_pct = std::max(state.top_criticality_pct, share);
  }
  state.pipeline_criticality_pct = std::move(pipeline_share_pct);
}

std::vector<uint64_t> SamplingGovernor::PipelinePeriods(uint64_t fingerprint,
                                                        uint64_t base_period,
                                                        size_t pipelines) const {
  if (!config_.enabled || !config_.criticality_weighting || base_period == 0) {
    return {};
  }
  auto it = plans_.find(fingerprint);
  if (it == plans_.end() || it->second.top_criticality_pct == 0) {
    return {};  // No criticality signal yet (or a degenerate DAG): keep uniform sampling.
  }
  const GovernorPlanState& state = it->second;
  // Mean-centered redistribution: a pipeline whose criticality share sits `d` points above the
  // mean samples at base * 100 / (100 + d), one below the mean at the mirrored longer period.
  // The rate multipliers (100 + d) / 100 sum to the pipeline count by construction, so the
  // expected total sample rate — and with it the overhead the budget solve regulated — is
  // unchanged; the weighting only moves samples from the pipelines that merely burn cycles to
  // the ones that gate latency.
  uint64_t share_sum = 0;
  for (size_t p = 0; p < pipelines; ++p) {
    share_sum +=
        p < state.pipeline_criticality_pct.size() ? state.pipeline_criticality_pct[p] : 0;
  }
  const uint64_t mean_share = pipelines == 0 ? 0 : share_sum / pipelines;
  std::vector<uint64_t> periods(pipelines, 0);
  for (size_t p = 0; p < pipelines; ++p) {
    const uint64_t share =
        p < state.pipeline_criticality_pct.size() ? state.pipeline_criticality_pct[p] : 0;
    if (share > mean_share) {
      // Above the mean (the critical path's owner): strictly below the base (the clamp floor
      // cannot collide — the base itself is already clamped to >= min_period).
      periods[p] = std::max<uint64_t>(1, base_period * 100 / (100 + share - mean_share));
    } else if (share < mean_share) {
      // Below the mean (off-path, or barely on it): strictly above the base by the mirrored
      // factor, bounded by the clamp ceiling.
      const uint64_t denom = std::max<uint64_t>(1, 100 - (mean_share - share));
      periods[p] = std::min(config_.max_period,
                            std::max(base_period + 1, base_period * 100 / denom));
    } else {
      periods[p] = base_period;  // At the mean: nothing to redistribute.
    }
  }
  return periods;
}

const GovernorPlanState* SamplingGovernor::Find(uint64_t fingerprint) const {
  auto it = plans_.find(fingerprint);
  return it == plans_.end() ? nullptr : &it->second;
}

double SamplingGovernor::OverallShare() const {
  uint64_t overhead = 0;
  uint64_t busy = 0;
  for (const auto& [fingerprint, state] : plans_) {
    (void)fingerprint;
    overhead += state.overhead_cycles;
    busy += state.busy_cycles;
  }
  if (busy <= overhead) {
    return 0;
  }
  return static_cast<double>(overhead) / static_cast<double>(busy - overhead);
}

std::string SamplingGovernor::Render() const {
  std::ostringstream out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "=== Sampling governor (budget %.2f%%, period [%llu, %llu]) ===\n",
                100.0 * config_.overhead_budget,
                static_cast<unsigned long long>(config_.min_period),
                static_cast<unsigned long long>(config_.max_period));
  out << line;
  for (const auto& [fingerprint, state] : plans_) {
    std::snprintf(line, sizeof(line),
                  "%016llx  %-24s period %8llu  obs %4llu  samples %8llu  overhead %.3f%%\n",
                  static_cast<unsigned long long>(fingerprint), state.name.c_str(),
                  static_cast<unsigned long long>(state.period),
                  static_cast<unsigned long long>(state.observations),
                  static_cast<unsigned long long>(state.samples),
                  100.0 * state.OverheadShare());
    out << line;
  }
  std::snprintf(line, sizeof(line), "overall overhead %.3f%% of useful cycles\n",
                100.0 * OverallShare());
  out << line;
  return out.str();
}

}  // namespace dfp
