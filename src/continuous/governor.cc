#include "src/continuous/governor.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "src/util/check.h"

namespace dfp {

double GovernorPlanState::OverheadShare() const {
  if (busy_cycles <= overhead_cycles) {
    return 0;
  }
  return static_cast<double>(overhead_cycles) /
         static_cast<double>(busy_cycles - overhead_cycles);
}

SamplingGovernor::SamplingGovernor(GovernorConfig config) : config_(config) {
  DFP_CHECK(config_.overhead_budget > 0 && config_.min_period >= 1 &&
            config_.min_period <= config_.max_period);
  DFP_CHECK(config_.smoothing > 0 && config_.smoothing <= 1.0);
}

uint64_t SamplingGovernor::Clamp(uint64_t period) const {
  return std::clamp(period, config_.min_period, config_.max_period);
}

uint64_t SamplingGovernor::PeriodFor(uint64_t fingerprint, uint64_t default_period) const {
  if (!config_.enabled) {
    return default_period;
  }
  auto it = plans_.find(fingerprint);
  if (it != plans_.end() && it->second.period != 0) {
    return it->second.period;
  }
  return Clamp(default_period);
}

void SamplingGovernor::Observe(uint64_t fingerprint, const std::string& name,
                               const SamplingOverhead& overhead, uint64_t busy_cycles,
                               uint64_t armed_events, uint64_t period_used) {
  if (!config_.enabled || period_used == 0) {
    return;
  }
  GovernorPlanState& state = plans_[fingerprint];
  if (state.observations == 0) {
    state.fingerprint = fingerprint;
    state.name = name;
    state.period = Clamp(period_used);
  }
  ++state.observations;
  state.overhead_cycles += overhead.total_cycles();
  state.busy_cycles += busy_cycles;
  state.samples += overhead.samples;
  state.armed_events += armed_events;

  const uint64_t obs_overhead = overhead.total_cycles();
  const uint64_t obs_base =
      busy_cycles > obs_overhead ? busy_cycles - obs_overhead : busy_cycles;
  state.last_share = obs_base == 0 ? 0 : static_cast<double>(obs_overhead) /
                                             static_cast<double>(obs_base);

  uint64_t target = state.period;
  const uint64_t cum_base = state.busy_cycles > state.overhead_cycles
                                ? state.busy_cycles - state.overhead_cycles
                                : state.busy_cycles;
  if (state.samples == 0) {
    // Period too coarse to see anything yet: halve towards the floor so the plan stays profiled.
    target = Clamp(period_used / 2);
  } else if (cum_base > 0 && state.armed_events > 0) {
    // Solved on the fingerprint's running totals: the per-event average sample cost and event
    // density over all observations, so bursts average out instead of whipsawing the period.
    // `cum_base` excludes the overhead itself — the budget is relative to useful work.
    const double cps = static_cast<double>(state.overhead_cycles) /
                       static_cast<double>(state.samples);
    const double events_per_obs = static_cast<double>(state.armed_events) /
                                  static_cast<double>(state.observations);
    const double base_per_obs = static_cast<double>(cum_base) /
                                static_cast<double>(state.observations);
    const double solved = events_per_obs * cps / (config_.overhead_budget * base_per_obs);
    target = Clamp(static_cast<uint64_t>(solved + 0.5));
  }
  const double blended = config_.smoothing * static_cast<double>(target) +
                         (1.0 - config_.smoothing) * static_cast<double>(state.period);
  state.period = Clamp(static_cast<uint64_t>(blended + 0.5));
}

const GovernorPlanState* SamplingGovernor::Find(uint64_t fingerprint) const {
  auto it = plans_.find(fingerprint);
  return it == plans_.end() ? nullptr : &it->second;
}

double SamplingGovernor::OverallShare() const {
  uint64_t overhead = 0;
  uint64_t busy = 0;
  for (const auto& [fingerprint, state] : plans_) {
    (void)fingerprint;
    overhead += state.overhead_cycles;
    busy += state.busy_cycles;
  }
  if (busy <= overhead) {
    return 0;
  }
  return static_cast<double>(overhead) / static_cast<double>(busy - overhead);
}

std::string SamplingGovernor::Render() const {
  std::ostringstream out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "=== Sampling governor (budget %.2f%%, period [%llu, %llu]) ===\n",
                100.0 * config_.overhead_budget,
                static_cast<unsigned long long>(config_.min_period),
                static_cast<unsigned long long>(config_.max_period));
  out << line;
  for (const auto& [fingerprint, state] : plans_) {
    std::snprintf(line, sizeof(line),
                  "%016llx  %-24s period %8llu  obs %4llu  samples %8llu  overhead %.3f%%\n",
                  static_cast<unsigned long long>(fingerprint), state.name.c_str(),
                  static_cast<unsigned long long>(state.period),
                  static_cast<unsigned long long>(state.observations),
                  static_cast<unsigned long long>(state.samples),
                  100.0 * state.OverheadShare());
    out << line;
  }
  std::snprintf(line, sizeof(line), "overall overhead %.3f%% of useful cycles\n",
                100.0 * OverallShare());
  out << line;
  return out.str();
}

}  // namespace dfp
