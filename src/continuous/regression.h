// Operator-level regression detection over windowed fleet profiles.
//
// A baseline is a snapshot of each fingerprint's current window rollup (the per-operator sample
// mix plus cycles-per-row and remote-DRAM rates) together with a watermark: the newest window
// index at snapshot time. The detector aggregates every window strictly newer than the
// watermark — all evidence that arrived since the baseline, uncontaminated by pre-baseline
// executions — and flags fingerprints whose mix drifted: an operator's share of attributed
// samples moved beyond a threshold, cycles-per-row grew beyond a ratio, or the remote-DRAM
// share of sampled loads rose. Findings render as a side-by-side cost-annotated diff
// ("HashJoin probe 21% -> 38%, +remote") via RenderCostDiff.
//
// Because the whole engine is deterministic, re-running an identical workload reproduces the
// baseline mix exactly — the detector is silent on identical reruns by construction, which the
// continuous-smoke CI job asserts.
#ifndef DFP_SRC_CONTINUOUS_REGRESSION_H_
#define DFP_SRC_CONTINUOUS_REGRESSION_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/continuous/window.h"

namespace dfp {

struct RegressionThresholds {
  // Operators below this share in both baseline and current are ignored (noise floor).
  double min_share = 0.05;
  // Absolute drift in an operator's share of attributed samples that fires a finding.
  double share_drift = 0.10;
  // Sampled shares are estimates: at n samples a share is only resolved to a few points. The
  // drift must additionally exceed `share_noise_z` two-proportion standard errors
  // (z * sqrt(p(1-p)(1/n_base + 1/n_current)), pooled p) before it counts — otherwise sparse
  // windows fire on sampling jitter, e.g. when the governor coarsens the period. Exact
  // counters (cycles/row, remote share) carry no such margin.
  double share_noise_z = 3.0;
  // Current cycles-per-row must exceed baseline * ratio to fire.
  double cycles_per_row_ratio = 1.25;
  // Absolute rise of REMOTE_DRAM events per sampled load that fires.
  double remote_share_drift = 0.10;
  // Post-baseline aggregates with fewer attributed samples than this are skipped entirely
  // (quantization guard: at N samples the share resolution is 1/N).
  uint64_t min_samples = 20;
};

// Frozen per-fingerprint reference mix.
struct PlanBaseline {
  uint64_t fingerprint = 0;
  std::string name;
  uint64_t samples = 0;
  uint64_t watermark = 0;  // Newest window index at snapshot time; newer windows are "current".
  double cycles_per_row = 0;
  double remote_share = 0;
  std::map<OperatorId, WindowOperatorStats> operators;  // Sample mix at snapshot time.

  double OperatorShare(OperatorId op) const;
};

class BaselineStore {
 public:
  // Replaces the stored baselines with a snapshot of `profile`'s current rollups. Fingerprints
  // whose rollup has fewer than `min_samples` attributed samples are not snapshotted.
  void Snapshot(const WindowedProfile& profile, uint64_t min_samples = 0);

  bool empty() const { return baselines_.empty(); }
  const std::map<uint64_t, PlanBaseline>& baselines() const { return baselines_; }
  const PlanBaseline* Find(uint64_t fingerprint) const;

  // Loading hooks used by ReadServiceProfile (v3): restore one persisted baseline (operator
  // rows arrive separately, after their baseline line) so a restarted service resumes
  // regression detection against its pre-restart reference mix.
  void AddLoadedBaseline(PlanBaseline baseline);
  void AddLoadedBaselineOperator(uint64_t fingerprint, WindowOperatorStats stats);

 private:
  std::map<uint64_t, PlanBaseline> baselines_;
};

// One operator's movement between baseline and current mix.
struct OperatorDrift {
  OperatorId op = kNoOperator;
  std::string label;
  double baseline_share = 0;
  double current_share = 0;
  bool flagged = false;  // |current - baseline| > share_drift (above the noise floor).
};

// One fingerprint that drifted beyond the thresholds.
struct RegressionFinding {
  uint64_t fingerprint = 0;
  std::string name;
  // Service shard whose profile produced the finding (1-based; 0 = unsharded). Stamped before
  // the alert hook fires, so fleet-wide alert sinks can tell WHERE a plan regressed without
  // re-deriving it from which shard's detector they subscribed to.
  uint32_t shard_id = 0;
  bool share_regressed = false;
  bool cycles_per_row_regressed = false;
  bool remote_regressed = false;
  double baseline_cycles_per_row = 0;
  double current_cycles_per_row = 0;
  double baseline_remote_share = 0;
  double current_remote_share = 0;
  std::vector<OperatorDrift> drifts;  // Every operator above the noise floor, flagged or not.
};

// Alerting hook: invoked once per finding, in fingerprint order, as DetectRegressions flags
// it — the push path that turns the pull-style report into an operational signal.
using RegressionAlertFn = std::function<void(const RegressionFinding&)>;

// The default hook: one line per finding on stderr,
//   "ALERT regression plan <fingerprint> <name> [mix cycles/row +remote] [shard N]"
// (the shard suffix appears only for findings from a sharded service, shard_id != 0).
RegressionAlertFn DefaultRegressionAlert();

// Diffs each fingerprint's post-watermark window aggregate against its `baseline` entry.
// Fingerprints without a baseline, without post-watermark windows, or with fewer than
// min_samples attributed post-watermark samples are skipped. Each finding is stamped with
// `shard_id` and then pushed through `alert` when one is set.
std::vector<RegressionFinding> DetectRegressions(
    const BaselineStore& baseline, const WindowedProfile& profile,
    const RegressionThresholds& thresholds = RegressionThresholds(),
    const RegressionAlertFn& alert = nullptr, uint32_t shard_id = 0);

// Side-by-side cost-annotated report of all findings (empty-finding list renders a quiet note).
std::string RenderRegressionReport(const std::vector<RegressionFinding>& findings);

// Three-way verdict for closed-loop actions (propose -> apply -> re-measure -> keep-or-revert):
// a guarded optimization keeps waiting on kInsufficientEvidence, keeps the action on kClean,
// and reverts on kRegressed. Distinct from DetectRegressions' findings list because "no
// finding" must not be conflated with "not enough post-action windows to judge yet".
enum class GuardVerdict : uint8_t {
  kInsufficientEvidence,  // No baseline, or too few post-watermark samples — keep measuring.
  kClean,                 // Enough evidence, no drift beyond thresholds — keep the action.
  kRegressed,             // The action made the fingerprint worse — revert it.
};

const char* GuardVerdictName(GuardVerdict verdict);

// Judges one fingerprint's post-watermark windows against its entry in `baseline` using the
// same drift checks as DetectRegressions. `finding` (optional) receives the diff when the
// verdict is kRegressed.
GuardVerdict JudgeRegression(const BaselineStore& baseline, const WindowedProfile& profile,
                             uint64_t fingerprint,
                             const RegressionThresholds& thresholds = RegressionThresholds(),
                             RegressionFinding* finding = nullptr);

}  // namespace dfp

#endif  // DFP_SRC_CONTINUOUS_REGRESSION_H_
