#include "src/pmu/pmu.h"

namespace dfp {

uint64_t SamplingConfig::SampleBytes(uint64_t callstack_depth) const {
  uint64_t bytes = 8 /* ip */ + 8 /* tsc */;
  if (capture_address) {
    bytes += 8;
  }
  if (capture_registers) {
    bytes += 8ull * kNumMachineRegs;
  }
  if (capture_callstack) {
    bytes += 8 /* depth */ + 8ull * callstack_depth;
  }
  return bytes;
}

uint64_t Pmu::Record(Sample sample) {
  uint64_t capture = costs_.record_base;
  if (config_.capture_registers) {
    capture += costs_.record_registers;
  }
  if (config_.capture_callstack) {
    capture += costs_.record_callstack_base +
               costs_.record_callstack_per_frame * sample.callstack.size();
  }
  samples_.push_back(std::move(sample));
  overhead_.capture_cycles += capture;
  ++overhead_.samples;
  uint64_t cost = capture;
  if (++buffered_ >= costs_.buffer_capacity) {
    buffered_ = 0;
    cost += costs_.flush_cost;
    overhead_.flush_cycles += costs_.flush_cost;
    ++overhead_.flushes;
  }
  return cost;
}

uint64_t Pmu::StoredSampleBytes() const {
  uint64_t total = 0;
  for (const Sample& sample : samples_) {
    total += config_.SampleBytes(sample.callstack.size());
  }
  return total;
}

const char* PmuEventName(PmuEvent event) {
  switch (event) {
    case PmuEvent::kInstrRetired:
      return "INSTR_RETIRED";
    case PmuEvent::kLoads:
      return "MEM_LOADS";
    case PmuEvent::kL1Miss:
      return "L1_MISS";
    case PmuEvent::kL2Miss:
      return "L2_MISS";
    case PmuEvent::kL3Miss:
      return "L3_MISS";
    case PmuEvent::kBranchMiss:
      return "BRANCH_MISS";
    case PmuEvent::kRemoteDram:
      return "REMOTE_DRAM";
    case PmuEvent::kCrossNode:
      return "CROSS_NODE";
    case PmuEvent::kEventCount:
      break;
  }
  return "?";
}

}  // namespace dfp
