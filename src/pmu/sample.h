// Profiling sample records, the raw material of Tailored Profiling.
#ifndef DFP_SRC_PMU_SAMPLE_H_
#define DFP_SRC_PMU_SAMPLE_H_

#include <array>
#include <cstdint>
#include <vector>

namespace dfp {

inline constexpr int kNumMachineRegs = 16;
inline constexpr int kTagRegister = 15;  // Architecturally global register used by Register Tagging.

// `Sample::mem_node` value for accesses outside NUMA-managed memory (or runs without a NUMA
// topology).
inline constexpr uint8_t kNoNumaNode = 0xFF;

// One PEBS-style sample. `ip` is a global instruction pointer (code-segment base + offset).
// `callstack` holds return addresses, innermost caller first, when call-stack sampling is on.
// `worker_id` identifies the VCPU that took the sample; single-threaded runs use worker 0.
// `session_id` identifies the query session the VCPU was executing for when the service layer
// multiplexes concurrent sessions over one worker pool. It is a runtime demultiplexing key and
// is not serialized: dumped streams are always per-session, so the id would be redundant there.
// `mem_node`/`numa_remote` describe the NUMA placement of `addr` when addresses are captured on
// a run with a NUMA topology; `stolen` marks samples taken while the worker executed a morsel
// stolen from another worker's deque (the locality fields of the Figure-12 machinery).
// `tier` records the compilation tier of the code the sample hit (PlanTier numeric value;
// 0 = optimized) so tiered-compilation profiles can attribute cost per tier. The zero default
// keeps pre-tiering sample streams byte-identical on disk.
struct Sample {
  uint64_t tsc = 0;
  uint64_t ip = 0;
  uint64_t addr = 0;  // Accessed address for memory events, 0 otherwise.
  uint32_t worker_id = 0;
  uint32_t session_id = 0;
  uint8_t mem_node = kNoNumaNode;  // NUMA node owning `addr`; kNoNumaNode when unmanaged.
  uint8_t tier = 0;                // Compilation tier of the sampled code (PlanTier value).
  bool numa_remote = false;        // `addr` lives on a different node than the sampling worker.
  bool stolen = false;             // Taken while executing a stolen morsel.
  bool has_registers = false;
  std::array<uint64_t, kNumMachineRegs> regs{};
  std::vector<uint64_t> callstack;
};

}  // namespace dfp

#endif  // DFP_SRC_PMU_SAMPLE_H_
