// Profiling sample records, the raw material of Tailored Profiling.
#ifndef DFP_SRC_PMU_SAMPLE_H_
#define DFP_SRC_PMU_SAMPLE_H_

#include <array>
#include <cstdint>
#include <vector>

namespace dfp {

inline constexpr int kNumMachineRegs = 16;
inline constexpr int kTagRegister = 15;  // Architecturally global register used by Register Tagging.

// `Sample::mem_node` value for accesses outside NUMA-managed memory (or runs without a NUMA
// topology).
inline constexpr uint8_t kNoNumaNode = 0xFF;

// One PEBS-style sample. `ip` is a global instruction pointer (code-segment base + offset).
// `callstack` holds return addresses, innermost caller first, when call-stack sampling is on.
// `worker_id` identifies the VCPU that took the sample; single-threaded runs use worker 0.
// `session_id` identifies the query session the VCPU was executing for when the service layer
// multiplexes concurrent sessions over one worker pool. It is a runtime demultiplexing key and
// is not serialized: dumped streams are always per-session, so the id would be redundant there.
// `mem_node`/`numa_remote` describe the NUMA placement of `addr` when addresses are captured on
// a run with a NUMA topology; `stolen` marks samples taken while the worker executed a morsel
// stolen from another worker's deque (the locality fields of the Figure-12 machinery).
// `tier` records the compilation tier of the code the sample hit (PlanTier numeric value;
// 0 = optimized) so tiered-compilation profiles can attribute cost per tier. The zero default
// keeps pre-tiering sample streams byte-identical on disk.
// `shard_id` identifies the service shard whose worker pool took the sample (1-based; 0 =
// unsharded service or single-shard run) so fan-out attribution survives the coordinator's
// merge. `cross_node` marks accesses served by another *machine node's* memory — the shard
// interconnect hop, a distinct and costlier tier than cross-socket `numa_remote`. Both default
// to the pre-sharding values, keeping v1–v6 streams byte-identical on disk.
struct Sample {
  uint64_t tsc = 0;
  uint64_t ip = 0;
  uint64_t addr = 0;  // Accessed address for memory events, 0 otherwise.
  uint32_t worker_id = 0;
  uint32_t session_id = 0;
  uint32_t shard_id = 0;           // Service shard owning the sampling worker (1-based; 0 = none).
  uint8_t mem_node = kNoNumaNode;  // NUMA node owning `addr`; kNoNumaNode when unmanaged.
  uint8_t tier = 0;                // Compilation tier of the sampled code (PlanTier value).
  bool numa_remote = false;        // `addr` lives on a different node than the sampling worker.
  bool cross_node = false;         // `addr` lives on a different machine node (shard hop).
  bool stolen = false;             // Taken while executing a stolen morsel.
  bool has_registers = false;
  std::array<uint64_t, kNumMachineRegs> regs{};
  std::vector<uint64_t> callstack;
};

// What one task-boundary record delimits. A "task" is one work unit of the morsel-driven
// executor: a host step (hash-table creation, buffer allocation), one scan morsel, one
// sequential (non-scan) pipeline run, or a sort.
enum class TaskKind : uint8_t {
  kHostStep = 0,
  kMorsel = 1,
  kSequentialPipeline = 2,
  kSort = 3,
};

// `TaskBoundary::pipeline` value for tasks that execute no pipeline (host steps, sorts).
inline constexpr uint32_t kNoPipeline = 0xFFFFFFFF;

// One task-boundary record, emitted by ParallelRun for every work unit it executes. The record
// carries everything needed to rebuild the run's task DAG *and* classify its pipelines from a
// recorded stream alone: timestamps and worker id recover the schedule (same-worker chains plus
// the barrier between consecutive exec steps), `step` recovers the barrier groups, and the
// per-task PMU counter deltas feed the roofline-style bottleneck classifier without access to
// the live worker state. Serialized as `task` lines in v5 sample streams (src/profiling/
// serialize.h) and analyzed by src/critpath/.
struct TaskBoundary {
  uint64_t start_tsc = 0;
  uint64_t end_tsc = 0;
  uint32_t worker_id = 0;
  TaskKind kind = TaskKind::kHostStep;
  uint32_t step = 0;                 // Index into CompiledQuery::exec_steps (barrier group).
  uint32_t pipeline = kNoPipeline;   // Pipeline id for kMorsel/kSequentialPipeline tasks.
  uint64_t morsel_begin = 0;         // Row range for kMorsel tasks (after endgame splitting).
  uint64_t morsel_end = 0;
  bool stolen = false;               // Morsel was stolen from another worker's deque.
  // PMU counter deltas over this task (worker counters sampled before/after execution).
  uint64_t instructions = 0;
  uint64_t loads = 0;
  uint64_t l1_misses = 0;
  uint64_t l2_misses = 0;
  uint64_t l3_misses = 0;
  uint64_t remote_dram = 0;

  uint64_t duration() const { return end_tsc - start_tsc; }
};

}  // namespace dfp

#endif  // DFP_SRC_PMU_SAMPLE_H_
