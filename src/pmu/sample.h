// Profiling sample records, the raw material of Tailored Profiling.
#ifndef DFP_SRC_PMU_SAMPLE_H_
#define DFP_SRC_PMU_SAMPLE_H_

#include <array>
#include <cstdint>
#include <vector>

namespace dfp {

inline constexpr int kNumMachineRegs = 16;
inline constexpr int kTagRegister = 15;  // Architecturally global register used by Register Tagging.

// One PEBS-style sample. `ip` is a global instruction pointer (code-segment base + offset).
// `callstack` holds return addresses, innermost caller first, when call-stack sampling is on.
// `worker_id` identifies the VCPU that took the sample; single-threaded runs use worker 0.
// `session_id` identifies the query session the VCPU was executing for when the service layer
// multiplexes concurrent sessions over one worker pool. It is a runtime demultiplexing key and
// is not serialized: dumped streams are always per-session, so the id would be redundant there.
struct Sample {
  uint64_t tsc = 0;
  uint64_t ip = 0;
  uint64_t addr = 0;  // Accessed address for memory events, 0 otherwise.
  uint32_t worker_id = 0;
  uint32_t session_id = 0;
  bool has_registers = false;
  std::array<uint64_t, kNumMachineRegs> regs{};
  std::vector<uint64_t> callstack;
};

}  // namespace dfp

#endif  // DFP_SRC_PMU_SAMPLE_H_
