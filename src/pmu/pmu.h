// PEBS-like performance monitoring unit for the simulated CPU.
//
// The PMU counts hardware events, and — when armed on one event with a sampling period — collects
// samples into an in-memory buffer. Recording and buffer flushing are charged to the simulated
// clock, which is what makes the paper's overhead experiments (Figure 13) reproducible: overhead
// is a deterministic function of sampling frequency and of which fields each sample captures.
// Call-stack capture is modeled as interrupt-based sampling (PEBS cannot record stacks by itself),
// hence its much higher per-sample cost.
#ifndef DFP_SRC_PMU_PMU_H_
#define DFP_SRC_PMU_PMU_H_

#include <cstdint>
#include <vector>

#include "src/pmu/event.h"
#include "src/pmu/sample.h"

namespace dfp {

struct SamplingConfig {
  bool enabled = false;
  PmuEvent event = PmuEvent::kInstrRetired;
  uint64_t period = 5000;
  bool capture_registers = false;
  bool capture_callstack = false;
  bool capture_address = false;  // Record the accessed address for memory events.

  // Per-pipeline period overrides, indexed by pipeline id; 0 (or an index past the end) falls
  // back to `period`. Empty means uniform sampling. Filled by the sampling governor when it
  // weights periods by critical-path share (src/critpath/); ParallelRun re-arms each worker's
  // PMU with the pipeline's period at morsel dispatch, so samples concentrate on the pipelines
  // that actually gate latency while the total stays within the overhead budget.
  std::vector<uint64_t> pipeline_periods;

  // Bytes one stored sample occupies under this configuration (reported by the storage
  // experiment; depth is the call-stack depth for stack samples).
  uint64_t SampleBytes(uint64_t callstack_depth = 0) const;
};

// Cycle costs of the sampling machinery. Defaults are calibrated against the numbers reported in
// the paper's Section 6.2 (35% overhead for IP+time at a 5000-event period, +3% for registers,
// 529% for call-stack sampling).
struct PmuCosts {
  uint64_t record_base = 6700;             // PEBS assist + amortized kernel buffer handling.
  uint64_t record_registers = 580;         // Extra state captured per sample.
  uint64_t record_callstack_base = 95000;  // Interrupt entry/exit for stack-walking samples.
  uint64_t record_callstack_per_frame = 400;
  uint64_t buffer_capacity = 4096;         // Samples per PEBS buffer.
  uint64_t flush_cost = 60000;             // Kernel involvement when the buffer fills.
};

struct PmuCounters {
  uint64_t values[kPmuEventCount] = {};

  uint64_t operator[](PmuEvent event) const { return values[static_cast<int>(event)]; }
};

// Measured cost of the sampling machinery for one sample buffer, split the way the paper's
// Section 6.2 decomposes overhead: per-sample capture (PEBS assist + extra fields) versus the
// kernel buffer flushes. These are the cycles Record() actually charged to the VCPU clock, so
// a consumer (the adaptive sampling governor, bench_overhead) reads measured — not estimated —
// cost.
struct SamplingOverhead {
  uint64_t capture_cycles = 0;  // Per-sample recording cost, summed over all samples.
  uint64_t flush_cycles = 0;    // Buffer-full flushes, summed.
  uint64_t samples = 0;         // Samples recorded into this buffer.
  uint64_t flushes = 0;         // Buffer flushes that occurred.

  uint64_t total_cycles() const { return capture_cycles + flush_cycles; }

  SamplingOverhead& operator+=(const SamplingOverhead& other) {
    capture_cycles += other.capture_cycles;
    flush_cycles += other.flush_cycles;
    samples += other.samples;
    flushes += other.flushes;
    return *this;
  }
};

class Pmu {
 public:
  explicit Pmu(PmuCosts costs = PmuCosts()) : costs_(costs) {}

  void Configure(const SamplingConfig& config) {
    config_ = config;
    armed_counter_ = 0;
    buffered_ = 0;
    overhead_ = SamplingOverhead();
  }
  const SamplingConfig& config() const { return config_; }
  const PmuCosts& costs() const { return costs_; }

  // Re-arms the sampling period without disturbing the armed counter or the buffer — the
  // hardware analogue of rewriting the PEBS reset value between overflows. Used by ParallelRun
  // to apply per-pipeline periods at morsel dispatch; a carried-over armed counter at or past
  // the new period simply fires on the next tick, so the switch stays deterministic.
  void set_period(uint64_t period) {
    if (period != 0) {
      config_.period = period;
    }
  }

  // Counts `n` occurrences of `event`; returns true if the armed event's period elapsed and a
  // sample must be taken now.
  bool Tick(PmuEvent event, uint64_t n = 1) {
    counters_.values[static_cast<int>(event)] += n;
    if (!config_.enabled || event != config_.event) {
      return false;
    }
    armed_counter_ += n;
    if (armed_counter_ >= config_.period) {
      armed_counter_ -= config_.period;
      if (armed_counter_ >= config_.period) {
        armed_counter_ = 0;  // Multiple crossings collapse into one sample (hardware throttling).
      }
      return true;
    }
    return false;
  }

  // Stores a sample and returns the cycle cost of recording it (including the amortized buffer
  // flush when the PEBS buffer fills up).
  uint64_t Record(Sample sample);

  const std::vector<Sample>& samples() const { return samples_; }
  std::vector<Sample> TakeSamples() { return std::move(samples_); }
  const PmuCounters& counters() const { return counters_; }

  // Cycles Record() charged for sampling since the last Configure()/Reset() — the measured
  // overhead of this buffer.
  const SamplingOverhead& overhead() const { return overhead_; }

  void ResetCounters() { counters_ = PmuCounters(); }
  void Reset() {
    counters_ = PmuCounters();
    samples_.clear();
    armed_counter_ = 0;
    buffered_ = 0;
    overhead_ = SamplingOverhead();
  }

  // Total bytes occupied by the collected samples under the current configuration.
  uint64_t StoredSampleBytes() const;

 private:
  PmuCosts costs_;
  SamplingConfig config_;
  PmuCounters counters_;
  SamplingOverhead overhead_;
  std::vector<Sample> samples_;
  uint64_t armed_counter_ = 0;
  uint64_t buffered_ = 0;
};

}  // namespace dfp

#endif  // DFP_SRC_PMU_PMU_H_
