// Hardware events observable by the performance monitoring unit.
#ifndef DFP_SRC_PMU_EVENT_H_
#define DFP_SRC_PMU_EVENT_H_

#include <cstdint>

namespace dfp {

enum class PmuEvent : uint8_t {
  kInstrRetired,  // Every retired instruction (INST_RETIRED.PREC_DIST analogue).
  kLoads,         // Retired load instructions (MEM_INST_RETIRED.ALL_LOADS analogue).
  kL1Miss,
  kL2Miss,
  kL3Miss,
  kBranchMiss,
  kRemoteDram,  // Accesses served by a remote NUMA node's DRAM (OFFCORE remote analogue).
  kCrossNode,   // Accesses served by another machine node's memory (shard interconnect).
  kEventCount,
};

inline constexpr int kPmuEventCount = static_cast<int>(PmuEvent::kEventCount);

const char* PmuEventName(PmuEvent event);

}  // namespace dfp

#endif  // DFP_SRC_PMU_EVENT_H_
