#include "src/storage/stringheap.h"

#include <cstring>

namespace dfp {

uint64_t StringHeap::Intern(std::string_view text) {
  auto it = interned_.find(std::string(text));
  if (it != interned_.end()) {
    return it->second;
  }
  VAddr addr = mem_->Alloc(region_, text.size() == 0 ? 1 : text.size(), 1);
  std::memcpy(mem_->Data(addr), text.data(), text.size());
  uint64_t packed = PackStringRef(addr, text.size());
  interned_.emplace(std::string(text), packed);
  return packed;
}

}  // namespace dfp
