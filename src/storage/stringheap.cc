#include "src/storage/stringheap.h"

#include <algorithm>
#include <cstring>
#include <utility>

namespace dfp {

uint64_t StringHeap::Intern(std::string_view text) {
  auto it = interned_.find(std::string(text));
  if (it != interned_.end()) {
    return it->second;
  }
  VAddr addr = mem_->Alloc(region_, text.size() == 0 ? 1 : text.size(), 1);
  std::memcpy(mem_->Data(addr), text.data(), text.size());
  uint64_t packed = PackStringRef(addr, text.size());
  interned_.emplace(std::string(text), packed);
  return packed;
}

std::vector<std::string> StringHeap::InternOrder() const {
  std::vector<std::pair<VAddr, const std::string*>> by_addr;
  by_addr.reserve(interned_.size());
  for (const auto& [text, packed] : interned_) {
    by_addr.emplace_back(StringRefAddr(packed), &text);
  }
  // Heap addresses are allocated by a bump pointer, so address order is intern order.
  std::sort(by_addr.begin(), by_addr.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<std::string> order;
  order.reserve(by_addr.size());
  for (const auto& [addr, text] : by_addr) {
    order.push_back(*text);
  }
  return order;
}

}  // namespace dfp
