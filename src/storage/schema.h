// Table schemas and the catalog.
#ifndef DFP_SRC_STORAGE_SCHEMA_H_
#define DFP_SRC_STORAGE_SCHEMA_H_

#include <string>
#include <vector>

#include "src/storage/types.h"

namespace dfp {

struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kInt64;
};

struct TableSchema {
  std::string name;
  std::vector<ColumnDef> columns;

  // Index of the named column, or -1.
  int FindColumn(const std::string& column_name) const {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (columns[i].name == column_name) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }
};

}  // namespace dfp

#endif  // DFP_SRC_STORAGE_SCHEMA_H_
