// Interned string storage in VCPU memory.
//
// Strings are deduplicated at load time, so two equal strings always share one heap location and
// string equality in generated code is a single 64-bit compare of packed references. Ordering
// and pattern matching go through the (untagged) system-library runtime.
#ifndef DFP_SRC_STORAGE_STRINGHEAP_H_
#define DFP_SRC_STORAGE_STRINGHEAP_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/vcpu/vmem.h"

namespace dfp {

// Packed reference: bits [63..24] = absolute VMem address, bits [23..0] = length.
inline constexpr uint64_t PackStringRef(VAddr addr, uint64_t length) {
  return (addr << 24) | (length & 0xFFFFFFull);
}
inline constexpr VAddr StringRefAddr(uint64_t packed) { return packed >> 24; }
inline constexpr uint64_t StringRefLen(uint64_t packed) { return packed & 0xFFFFFFull; }

class StringHeap {
 public:
  StringHeap(VMem* mem, uint32_t region) : mem_(mem), region_(region) {}

  // Returns the packed reference for `text`, storing it on first sight.
  uint64_t Intern(std::string_view text);

  // Reads the bytes a packed reference points at.
  std::string_view Get(uint64_t packed) const {
    return {reinterpret_cast<const char*>(mem_->Data(StringRefAddr(packed))),
            StringRefLen(packed)};
  }

  size_t interned_count() const { return interned_.size(); }

  // Every interned string in heap-address (= first-intern) order. Replaying this sequence into
  // a fresh heap over an identically configured arena reproduces every packed reference bit for
  // bit — the property shard catalogs rely on to share plan templates and literal bindings with
  // the unsharded database (src/shard/partition.h).
  std::vector<std::string> InternOrder() const;

 private:
  VMem* mem_;
  uint32_t region_;
  std::unordered_map<std::string, uint64_t> interned_;
};

}  // namespace dfp

#endif  // DFP_SRC_STORAGE_STRINGHEAP_H_
