// Columnar tables stored in VCPU memory.
#ifndef DFP_SRC_STORAGE_TABLE_H_
#define DFP_SRC_STORAGE_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/storage/schema.h"
#include "src/storage/stringheap.h"
#include "src/vcpu/vmem.h"

namespace dfp {

// A fully loaded table: one contiguous column array per column, laid out in the columns region.
class Table {
 public:
  Table(TableSchema schema, uint64_t row_count, std::vector<VAddr> column_bases)
      : schema_(std::move(schema)), row_count_(row_count), column_bases_(std::move(column_bases)) {}

  const TableSchema& schema() const { return schema_; }
  const std::string& name() const { return schema_.name; }
  uint64_t row_count() const { return row_count_; }
  VAddr column_base(size_t column) const { return column_bases_[column]; }

  // Host-side read of one cell's register payload (sign-extending narrow columns).
  int64_t Get(const VMem& mem, size_t column, uint64_t row) const {
    const ColumnType type = schema_.columns[column].type;
    const VAddr addr = column_bases_[column] + row * ColumnWidth(type);
    switch (ColumnWidth(type)) {
      case 1:
        return mem.Read<uint8_t>(addr);
      case 4:
        return mem.Read<int32_t>(addr);
      default:
        return mem.Read<int64_t>(addr);
    }
  }

 private:
  TableSchema schema_;
  uint64_t row_count_;
  std::vector<VAddr> column_bases_;
};

// Accumulates rows host-side and writes the columnar representation on Finish().
class TableBuilder {
 public:
  TableBuilder(TableSchema schema, VMem* mem, uint32_t region, StringHeap* strings);

  // Starts a new row; every column must then be set exactly once (unset columns default to 0).
  void BeginRow();
  void SetI64(size_t column, int64_t value) { current_[column] = value; }
  void SetDecimal(size_t column, int64_t scaled) { current_[column] = scaled; }
  void SetDate(size_t column, int32_t days) { current_[column] = days; }
  void SetDouble(size_t column, double value);
  void SetString(size_t column, std::string_view text);
  void SetBool(size_t column, bool value) { current_[column] = value ? 1 : 0; }

  uint64_t row_count() const { return rows_ - (in_row_ ? 1 : 0); }

  // Writes all columns into the region and returns the finished table.
  Table Finish();

 private:
  void FlushRow();

  TableSchema schema_;
  VMem* mem_;
  uint32_t region_;
  StringHeap* strings_;
  std::vector<std::vector<int64_t>> columns_;  // Host staging, per column.
  std::vector<int64_t> current_;
  uint64_t rows_ = 0;
  bool in_row_ = false;
};

}  // namespace dfp

#endif  // DFP_SRC_STORAGE_TABLE_H_
