// Column types of the relational engine and their physical encodings.
//
// All values are carried as 64-bit payloads in registers: decimals are scale-2 integers, dates
// are days since epoch (stored as 4 bytes), strings are packed references into the string heap,
// doubles are bit-cast. Columns store 4 or 8 bytes per row accordingly.
#ifndef DFP_SRC_STORAGE_TYPES_H_
#define DFP_SRC_STORAGE_TYPES_H_

#include <cstdint>

#include "src/ir/opcode.h"

namespace dfp {

enum class ColumnType : uint8_t {
  kInt64,
  kDecimal,  // Scale-2 fixed point in an int64.
  kDate,     // Days since 1970-01-01, stored as int32.
  kString,   // Packed reference into the string heap (interned: equality is payload equality).
  kDouble,   // IEEE double, bit-cast in an int64 payload.
  kBool,     // 0/1 in an int64 payload, stored as 1 byte.
};

inline uint32_t ColumnWidth(ColumnType type) {
  switch (type) {
    case ColumnType::kDate:
      return 4;
    case ColumnType::kBool:
      return 1;
    default:
      return 8;
  }
}

inline Opcode LoadOpcodeFor(ColumnType type) {
  switch (type) {
    case ColumnType::kDate:
      return Opcode::kLoad4;
    case ColumnType::kBool:
      return Opcode::kLoad1;
    default:
      return Opcode::kLoad8;
  }
}

inline Opcode StoreOpcodeFor(ColumnType type) {
  switch (type) {
    case ColumnType::kDate:
      return Opcode::kStore4;
    case ColumnType::kBool:
      return Opcode::kStore1;
    default:
      return Opcode::kStore8;
  }
}

const char* ColumnTypeName(ColumnType type);

// True for types whose register payload is an IEEE double.
inline bool IsFloatingType(ColumnType type) { return type == ColumnType::kDouble; }

}  // namespace dfp

#endif  // DFP_SRC_STORAGE_TYPES_H_
