#include "src/storage/table.h"

#include <bit>

#include "src/util/check.h"

namespace dfp {

const char* ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kInt64:
      return "int64";
    case ColumnType::kDecimal:
      return "decimal";
    case ColumnType::kDate:
      return "date";
    case ColumnType::kString:
      return "string";
    case ColumnType::kDouble:
      return "double";
    case ColumnType::kBool:
      return "bool";
  }
  return "?";
}

TableBuilder::TableBuilder(TableSchema schema, VMem* mem, uint32_t region, StringHeap* strings)
    : schema_(std::move(schema)), mem_(mem), region_(region), strings_(strings) {
  columns_.resize(schema_.columns.size());
  current_.resize(schema_.columns.size(), 0);
}

void TableBuilder::BeginRow() {
  FlushRow();
  std::fill(current_.begin(), current_.end(), 0);
  in_row_ = true;
  ++rows_;
}

void TableBuilder::SetDouble(size_t column, double value) {
  current_[column] = std::bit_cast<int64_t>(value);
}

void TableBuilder::SetString(size_t column, std::string_view text) {
  DFP_CHECK(schema_.columns[column].type == ColumnType::kString);
  current_[column] = static_cast<int64_t>(strings_->Intern(text));
}

void TableBuilder::FlushRow() {
  if (!in_row_) {
    return;
  }
  for (size_t c = 0; c < current_.size(); ++c) {
    columns_[c].push_back(current_[c]);
  }
  in_row_ = false;
}

Table TableBuilder::Finish() {
  FlushRow();
  std::vector<VAddr> bases;
  bases.reserve(schema_.columns.size());
  const uint64_t rows = rows_;
  for (size_t c = 0; c < schema_.columns.size(); ++c) {
    const uint32_t width = ColumnWidth(schema_.columns[c].type);
    // Pad so that generated code may safely load one element past the end.
    VAddr base = mem_->Alloc(region_, (rows + 1) * width, 64);
    // Column arrays are NUMA-partitionable: a topology range-partitions them so that row r of
    // every column of the table lands on the same node as scan morsels starting at row r.
    mem_->MarkPartitioned(base, (rows + 1) * width);
    for (uint64_t r = 0; r < rows; ++r) {
      const int64_t value = columns_[c][r];
      switch (width) {
        case 1:
          mem_->Write<uint8_t>(base + r, static_cast<uint8_t>(value));
          break;
        case 4:
          mem_->Write<int32_t>(base + r * 4, static_cast<int32_t>(value));
          break;
        default:
          mem_->Write<int64_t>(base + r * 8, value);
          break;
      }
    }
    bases.push_back(base);
  }
  return Table(std::move(schema_), rows, std::move(bases));
}

}  // namespace dfp
